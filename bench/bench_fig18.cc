/**
 * @file
 * Figure 18: IPC speedup with doubled DRAM channels — Prophet's
 * advantage must survive abundant memory bandwidth.
 *
 * Paper shape: Prophet 1.323, Triangel 1.182, RPG2 1.001 geomean.
 */

#include "bench_util.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace prophet;
    unsigned threads = bench::parseThreads(argc, argv);
    sim::SystemConfig base = sim::SystemConfig::table1();
    base.hier.dram.channels = 2;
    sim::Runner runner(base);

    const auto &workloads = workloads::specWorkloads();
    auto results = bench::runTrios(runner, workloads, threads);
    std::printf("\n== Figure 18: IPC speedup with 2 DRAM channels "
                "==\n\n");
    bench::printTrioTable(runner, workloads, results,
                          "Performance Speedup",
                          bench::speedupMetric);
    return 0;
}
