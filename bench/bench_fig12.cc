/**
 * @file
 * Figure 12: prefetching coverage (demand-miss reduction) and
 * accuracy (useful / issued).
 *
 * Paper shape: Prophet's coverage (~0.43 mean) well above Triangel's
 * (~0.28) at comparable accuracy — the evidence that the gain comes
 * from metadata management, not aggressiveness. RPG2's accuracy is 0
 * by definition on the workloads where it finds no kernels
 * (mcf/omnetpp/soplex, footnote 6).
 */

#include "bench_util.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace prophet;
    unsigned threads = bench::parseThreads(argc, argv);
    sim::Runner runner;
    const auto &workloads = workloads::specWorkloads();

    auto results = bench::runTrios(runner, workloads, threads);
    std::printf("\n== Figure 12(a): Prefetching coverage ==\n\n");
    bench::printTrioTable(runner, workloads, results,
                          "Prefetching Coverage",
                          bench::coverageMetric);
    std::printf("\n== Figure 12(b): Prefetching accuracy ==\n\n");
    bench::printTrioTable(runner, workloads, results,
                          "Prefetching Accuracy",
                          bench::accuracyMetric);
    return 0;
}
