/**
 * @file
 * Section 5.11: memory-hierarchy energy of Prophet vs Triangel
 * (DRAM access = 25x LLC access). The paper reports Prophet adds
 * only ~1.6% energy over Triangel while gaining 14% performance.
 */

#include <cstdio>

#include "sim/energy.hh"
#include "sim/runner.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "workloads/registry.hh"

int
main()
{
    using namespace prophet;
    sim::Runner runner;
    const auto &workloads = workloads::specWorkloads();

    stats::Table table({"workload", "Triangel (uJ)", "Prophet (uJ)",
                        "Prophet / Triangel"});
    std::vector<double> ratios;
    for (const auto &w : workloads) {
        std::printf("running %s...\n", w.c_str());
        auto tri = runner.runTriangel(w);
        auto pro = runner.runProphet(w).stats;
        double e_tri = sim::memoryEnergy(tri).totalNj() / 1000.0;
        double e_pro = sim::memoryEnergy(pro).totalNj() / 1000.0;
        double ratio = e_tri > 0.0 ? e_pro / e_tri : 1.0;
        ratios.push_back(ratio);
        table.addRow({w, stats::Table::fmt(e_tri, 1),
                      stats::Table::fmt(e_pro, 1),
                      stats::Table::fmt(ratio)});
    }
    table.addRow({"Geomean", "-", "-",
                  stats::Table::fmt(stats::geomean(ratios))});

    std::printf("\n== Section 5.11: memory-hierarchy energy ==\n\n"
                "%s\n",
                table.render().c_str());
    return 0;
}
