/**
 * @file
 * Section 5.11: memory-hierarchy energy of Prophet vs Triangel
 * (DRAM access = 25x LLC access). The paper reports Prophet adds
 * only ~1.6% energy over Triangel while gaining 14% performance.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/energy.hh"
#include "sim/runner.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace prophet;
    unsigned threads = bench::parseThreads(argc, argv);
    sim::Runner runner;
    sim::SweepEngine engine(runner, threads);
    const auto &workloads = workloads::specWorkloads();

    // One job per (workload x system) cell, merged by index so the
    // table is identical at any thread count; progress goes to
    // stderr.
    std::vector<sim::RunStats> tri(workloads.size());
    std::vector<sim::RunStats> pro(workloads.size());
    engine.forEach(workloads.size() * 2, [&](std::size_t j) {
        const auto &w = workloads[j / 2];
        if (j % 2 == 0)
            tri[j / 2] = runner.run("triangel", w);
        else
            pro[j / 2] = runner.runProphet(w).stats;
        std::fprintf(stderr, "  %s %s done\n", w.c_str(),
                     j % 2 == 0 ? "triangel" : "prophet");
    });

    stats::Table table({"workload", "Triangel (uJ)", "Prophet (uJ)",
                        "Prophet / Triangel"});
    std::vector<double> ratios;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        double e_tri = sim::memoryEnergy(tri[i]).totalNj() / 1000.0;
        double e_pro = sim::memoryEnergy(pro[i]).totalNj() / 1000.0;
        double ratio = e_tri > 0.0 ? e_pro / e_tri : 1.0;
        ratios.push_back(ratio);
        table.addRow({workloads[i], stats::Table::fmt(e_tri, 1),
                      stats::Table::fmt(e_pro, 1),
                      stats::Table::fmt(ratio)});
    }
    table.addRow({"Geomean", "-", "-",
                  stats::Table::fmt(stats::geomean(ratios))});

    std::printf("\n== Section 5.11: memory-hierarchy energy ==\n\n"
                "%s\n",
                table.render().c_str());
    return 0;
}
