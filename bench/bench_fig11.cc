/**
 * @file
 * Figure 11: DRAM traffic (reads + writes) normalized to the
 * no-temporal baseline.
 *
 * Paper shape: RPG2 ~1.00, Triangel ~1.10, Prophet ~1.19 — Prophet
 * buys its coverage with only modestly more traffic.
 */

#include "bench_util.hh"
#include "workloads/registry.hh"

int
main()
{
    using namespace prophet;
    sim::Runner runner;
    const auto &workloads = workloads::specWorkloads();

    std::map<std::string, bench::TrioResult> results;
    for (const auto &w : workloads) {
        std::printf("running %s...\n", w.c_str());
        results[w] = bench::runTrio(runner, w);
    }
    std::printf("\n== Figure 11: Normalized DRAM traffic ==\n\n");
    bench::printTrioTable(runner, workloads, results,
                          "Normalized DRAM Traffic",
                          bench::trafficMetric);
    return 0;
}
