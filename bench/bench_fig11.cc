/**
 * @file
 * Figure 11: DRAM traffic (reads + writes) normalized to the
 * no-temporal baseline.
 *
 * Paper shape: RPG2 ~1.00, Triangel ~1.10, Prophet ~1.19 — Prophet
 * buys its coverage with only modestly more traffic.
 */

#include "bench_util.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace prophet;
    unsigned threads = bench::parseThreads(argc, argv);
    sim::Runner runner;
    const auto &workloads = workloads::specWorkloads();

    auto results = bench::runTrios(runner, workloads, threads);
    std::printf("\n== Figure 11: Normalized DRAM traffic ==\n\n");
    bench::printTrioTable(runner, workloads, results,
                          "Normalized DRAM Traffic",
                          bench::trafficMetric);
    return 0;
}
