/**
 * @file
 * Section 5.10: storage-overhead accounting for Prophet's additions
 * (replacement state, hint buffer, Multi-path Victim Buffer) and the
 * management structures of Triage and Triangel it is compared
 * against in Section 2.1.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/storage.hh"
#include "stats/table.hh"

namespace
{

void
printBreakdown(const char *title,
               const std::vector<prophet::sim::StorageItem> &items)
{
    using prophet::stats::Table;
    Table t({"component", "KiB"});
    for (const auto &it : items)
        t.addRow({it.component, Table::fmt(it.kib(), 2)});
    t.addRow({"total",
              Table::fmt(static_cast<double>(
                             prophet::sim::totalBits(items))
                             / 8192.0,
                         2)});
    std::printf("%s\n%s\n", title, t.render().c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    // No simulation here — the flag is accepted (and ignored) so
    // sweep scripts can pass a uniform --threads N to every bench.
    (void)prophet::bench::parseThreads(argc, argv);
    std::printf("== Section 5.10: storage overhead ==\n\n");
    printBreakdown("Prophet", prophet::sim::prophetStorage());
    printBreakdown("Triage management structures",
                   prophet::sim::triageStorage());
    printBreakdown("Triangel management structures",
                   prophet::sim::triangelStorage());
    return 0;
}
