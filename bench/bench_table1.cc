/**
 * @file
 * Table 1: system configuration. Prints the simulated machine's
 * parameters so runs are auditable against the paper. Equivalent to
 * `prophet run specs/table1.json` — both print the shared
 * sim::systemConfigReport.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/config_report.hh"

int
main(int argc, char **argv)
{
    // No simulation here — the flag is accepted (and ignored) so
    // sweep scripts can pass a uniform --threads N to every bench.
    (void)prophet::bench::parseThreads(argc, argv);
    std::fputs(prophet::sim::systemConfigReport(
                   prophet::sim::SystemConfig::table1())
                   .c_str(),
               stdout);
    return 0;
}
