/**
 * @file
 * Figure 8: distribution of Markov target counts (T = 1..5) — for
 * each memory line address in a workload's L2-relevant stream, how
 * many distinct successor lines follow it across the trace (per-PC
 * streams, as the temporal prefetcher trains).
 *
 * Paper shape: ~55% of addresses have a single target, ~21% two,
 * ~10% three — the motivation for the Multi-path Victim Buffer.
 */

#include <cstdio>
#include <map>
#include <set>
#include <unordered_map>

#include "bench_util.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "trace/trace.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace prophet;
    constexpr unsigned kMaxT = 5;
    unsigned threads = bench::parseThreads(argc, argv);
    sim::Runner runner;
    sim::SweepEngine engine(runner, threads);
    const auto &workloads = workloads::specWorkloads();

    // One trace-analysis job per workload, merged by index; progress
    // goes to stderr so stdout is bit-identical across thread counts.
    std::vector<std::vector<double>> fracs(workloads.size());
    engine.forEach(workloads.size(), [&](std::size_t wi) {
        const auto &w = workloads[wi];
        std::fprintf(stderr, "analyzing %s...\n", w.c_str());
        const trace::Trace &t = runner.traceFor(w);

        // Per-PC successor sets per line address, as the training
        // unit observes them. Only PCs and line addresses are
        // needed, so the pass streams the trace's SoA arrays.
        const std::size_t n = t.size();
        const PC *pcs = t.pcData();
        const Addr *lines = t.lineAddrData();
        std::unordered_map<PC, Addr> last;
        std::unordered_map<Addr, std::set<Addr>> successors;
        for (std::size_t i = 0; i < n; ++i) {
            Addr line = lines[i];
            auto it = last.find(pcs[i]);
            if (it != last.end() && it->second != line)
                successors[it->second].insert(line);
            last[pcs[i]] = line;
        }

        std::vector<std::uint64_t> counts(kMaxT, 0);
        std::uint64_t total = 0;
        for (const auto &[addr, succ] : successors) {
            (void)addr;
            std::size_t n = std::min<std::size_t>(succ.size(), kMaxT);
            ++counts[n - 1];
            ++total;
        }
        fracs[wi].resize(kMaxT);
        for (unsigned i = 0; i < kMaxT; ++i)
            fracs[wi][i] = total ? static_cast<double>(counts[i])
                    / static_cast<double>(total)
                                 : 0.0;
    });

    stats::Table table({"workload", "T=1", "T=2", "T=3", "T=4",
                        "T=5+"});
    std::vector<std::vector<double>> cols(kMaxT);
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        std::vector<std::string> row{workloads[wi]};
        for (unsigned i = 0; i < kMaxT; ++i) {
            double frac = fracs[wi][i];
            row.push_back(stats::Table::fmt(frac));
            if (frac > 0.0)
                cols[i].push_back(frac);
        }
        table.addRow(std::move(row));
    }

    std::vector<std::string> geo{"Geomean"};
    for (unsigned i = 0; i < kMaxT; ++i)
        geo.push_back(stats::Table::fmt(stats::geomean(cols[i])));
    table.addRow(std::move(geo));

    std::printf("\n== Figure 8: Markov target count distribution "
                "==\n\n%s\n",
                table.render().c_str());
    return 0;
}
