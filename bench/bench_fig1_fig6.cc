/**
 * @file
 * Figures 1 and 6: the motivational analyses.
 *
 * Figure 1: the metadata access pattern of omnetpp's hot event-queue
 * PC under a no-insertion-policy temporal prefetcher, and how
 * Triangel's PatternConf tracks it — including the fraction of
 * genuinely-repeating accesses rejected while the confidence sits
 * below threshold (the "blue stars" falsely filtered out).
 *
 * Figure 6: per-PC prefetching accuracy of omnetpp under the
 * simplified temporal prefetcher, showing the distinct accuracy
 * levels that make profile-guided classification possible.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.hh"
#include "prefetch/triangel.hh"
#include "sim/runner.hh"
#include "stats/table.hh"
#include "workloads/registry.hh"

namespace
{

/** Figure 1 reproduction: PatternConf vs ground truth on omnetpp. */
std::string
figure1(const prophet::trace::Trace &t)
{
    using namespace prophet;

    // This pass only needs PCs and line addresses: stream the
    // trace's SoA arrays directly.
    const std::size_t n = t.size();
    const PC *pcs = t.pcData();
    const Addr *lines = t.lineAddrData();

    // Identify the hottest PC (the event-queue walk).
    std::unordered_map<PC, std::uint64_t> counts;
    for (std::size_t i = 0; i < n; ++i)
        ++counts[pcs[i]];
    PC hot = 0;
    std::uint64_t best = 0;
    for (const auto &[pc, c] : counts) {
        if (c > best) {
            best = c;
            hot = pc;
        }
    }

    // Ground truth per access: does this (prev -> cur) correlation
    // ever repeat later? (Blue vs red dots.)
    std::vector<std::pair<Addr, Addr>> stream;
    Addr last = kInvalidAddr;
    for (std::size_t i = 0; i < n; ++i) {
        if (pcs[i] != hot)
            continue;
        Addr line = lines[i];
        if (last != kInvalidAddr)
            stream.emplace_back(last, line);
        last = line;
    }
    std::map<std::pair<Addr, Addr>, unsigned> pair_counts;
    for (const auto &p : stream)
        ++pair_counts[p];

    // Triangel's PatternConf walking the same stream.
    pf::TriangelConfig cfg;
    cfg.numSets = 2048;
    cfg.maxWays = 8;
    cfg.duellerResizing = false;
    pf::TriangelPrefetcher tri(cfg);
    std::vector<pf::PrefetchRequest> sink;

    std::uint64_t useful = 0, useless = 0;
    std::uint64_t rejected_useful = 0, low_conf_samples = 0;
    Addr prev = kInvalidAddr;
    std::size_t idx = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (pcs[i] != hot)
            continue;
        Addr line = lines[i];
        if (prev != kInvalidAddr && idx < stream.size()) {
            bool repeats = pair_counts[stream[idx]] > 1;
            if (repeats)
                ++useful;
            else
                ++useless;
            bool conf_low = tri.patternConf(hot) < cfg.confThreshold;
            if (conf_low) {
                ++low_conf_samples;
                if (repeats)
                    ++rejected_useful; // a falsely-filtered blue star
            }
            ++idx;
        }
        sink.clear();
        tri.observe(hot, line, false, 0, sink);
        prev = line;
    }

    prophet::stats::Table table({"quantity", "value"});
    auto pct = [](std::uint64_t a, std::uint64_t b) {
        return prophet::stats::Table::fmt(
            b ? 100.0 * static_cast<double>(a)
                    / static_cast<double>(b)
              : 0.0, 1) + "%";
    };
    table.addRow({"hot-PC metadata accesses",
                  std::to_string(useful + useless)});
    table.addRow({"repeating (blue) accesses",
                  pct(useful, useful + useless)});
    table.addRow({"one-off (red) accesses",
                  pct(useless, useful + useless)});
    table.addRow({"accesses seen at PatternConf < threshold",
                  pct(low_conf_samples, useful + useless)});
    table.addRow({"repeating accesses rejected by PatternConf",
                  pct(rejected_useful, useful)});
    return "== Figure 1: omnetpp hot-PC metadata access pattern "
           "==\n\n"
        + table.render() + "\n";
}

/** Figure 6: per-PC accuracy levels under the simplified TP. */
std::string
figure6(prophet::sim::Runner &runner)
{
    using namespace prophet;
    auto profile = runner.profileWorkload("omnetpp");

    std::vector<std::pair<PC, core::PcProfile>> pcs(
        profile.perPc.begin(), profile.perPc.end());
    std::sort(pcs.begin(), pcs.end(), [](auto &a, auto &b) {
        return a.second.accuracy > b.second.accuracy;
    });

    stats::Table table({"PC", "issued", "accuracy", "level"});
    for (const auto &[pc, prof] : pcs) {
        if (prof.issuedPrefetches < 100)
            continue;
        const char *level = prof.accuracy >= 0.6
            ? "High"
            : prof.accuracy >= 0.25 ? "Medium" : "Low";
        table.addRow({std::to_string(pc & 0xffffff),
                      std::to_string(prof.issuedPrefetches),
                      stats::Table::fmt(prof.accuracy), level});
    }
    return "== Figure 6: omnetpp per-PC prefetching accuracy "
           "levels ==\n\n"
        + table.render() + "\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    unsigned threads = prophet::bench::parseThreads(argc, argv);
    prophet::sim::Runner runner;
    prophet::sim::SweepEngine engine(runner, threads);

    // The two analyses are independent jobs; rendering into strings
    // keeps stdout in figure order at any thread count.
    std::string reports[2];
    engine.forEach(2, [&](std::size_t i) {
        if (i == 0)
            reports[0] = figure1(runner.traceFor("omnetpp"));
        else
            reports[1] = figure6(runner);
    });
    for (const auto &r : reports)
        std::fputs(r.c_str(), stdout);
    return 0;
}
