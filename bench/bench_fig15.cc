/**
 * @file
 * Figure 15: IPC speedup on the CRONO-like graph workloads, where
 * stride prefetch kernels put RPG2 on home turf.
 *
 * Paper shape: Prophet 1.149, RPG2 1.091, Triangel 1.084 geomean —
 * RPG2 beats Triangel here, and Prophet still wins by covering the
 * temporal patterns beyond RPG2's reach.
 */

#include "bench_util.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace prophet;
    unsigned threads = bench::parseThreads(argc, argv);
    sim::Runner runner;
    const auto &workloads = workloads::graphWorkloads();

    auto results = bench::runTrios(runner, workloads, threads);
    std::printf("\n== Figure 15: IPC speedup on graph workloads "
                "==\n\n");
    bench::printTrioTable(runner, workloads, results,
                          "Performance Speedup",
                          bench::speedupMetric);
    return 0;
}
