/**
 * @file
 * Figure 15: IPC speedup on the CRONO-like graph workloads, where
 * stride prefetch kernels put RPG2 on home turf.
 *
 * Paper shape: Prophet 1.149, RPG2 1.091, Triangel 1.084 geomean —
 * RPG2 beats Triangel here, and Prophet still wins by covering the
 * temporal patterns beyond RPG2's reach.
 */

#include "bench_util.hh"
#include "workloads/registry.hh"

int
main()
{
    using namespace prophet;
    sim::Runner runner;
    const auto &workloads = workloads::graphWorkloads();

    std::map<std::string, bench::TrioResult> results;
    for (const auto &w : workloads) {
        std::printf("running %s...\n", w.c_str());
        results[w] = bench::runTrio(runner, w);
    }
    std::printf("\n== Figure 15: IPC speedup on graph workloads "
                "==\n\n");
    bench::printTrioTable(runner, workloads, results,
                          "Performance Speedup",
                          bench::speedupMetric);
    return 0;
}
