/**
 * @file
 * Figure 13: Prophet learns counters from gcc's inputs. One row per
 * learning stage:
 *
 *   Disable  — Triage4 + Triangel metadata (no Prophet hints)
 *   +166     — hints from profiling gcc_166 only (Steps 1+2)
 *   +expr    — after merging gcc_expr's counters (Step 3 + 2)
 *   +typeck  — after merging gcc_typeck
 *   +expr2   — after merging gcc_expr2
 *   Direct   — each input profiled individually (the learning goal)
 *
 * Every stage's single binary is evaluated on all nine gcc inputs.
 * Paper shape: each merge lifts the inputs that share patterns with
 * the newly learned one (gcc_200 improves when gcc_expr is learned),
 * and four rounds approach the Direct bars.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/learner.hh"
#include "sim/runner.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace prophet;
    unsigned threads = bench::parseThreads(argc, argv);
    sim::Runner runner;
    sim::SweepEngine engine(runner, threads);
    const auto &inputs = workloads::gccInputs();
    const std::vector<std::string> learn_order{
        "gcc_166", "gcc_expr", "gcc_typeck", "gcc_expr2"};

    stats::Table table([&] {
        std::vector<std::string> hdr{"stage"};
        for (const auto &in : inputs)
            hdr.push_back(in.substr(4));
        hdr.push_back("Geomean");
        return hdr;
    }());

    auto add_row = [&](const std::string &label,
                       const std::vector<double> &speedups) {
        std::vector<std::string> row{label};
        for (double s : speedups)
            row.push_back(stats::Table::fmt(s));
        row.push_back(stats::Table::fmt(stats::geomean(speedups)));
        table.addRow(std::move(row));
    };

    // Baselines first (speedup normalizes to them), one job per
    // input; each row below then fans its nine evaluations across
    // the pool. Stages themselves stay sequential — each one's
    // binary depends on the previous merges. Progress goes to
    // stderr so stdout is bit-identical across thread counts.
    engine.warmBaselines(inputs);

    // "Disable": Triage4 + Triangel metadata (Section 5.3's leftmost
    // bar) — the Prophet prefetcher with every feature off.
    {
        std::vector<double> speedups(inputs.size());
        core::ProphetConfig bare;
        bare.features = core::ProphetFeatures{false, false, false,
                                              false};
        engine.forEach(inputs.size(), [&](std::size_t i) {
            std::fprintf(stderr, "disable: %s\n", inputs[i].c_str());
            auto s = runner.runProphetWithBinary(
                inputs[i], core::OptimizedBinary{}, bare);
            speedups[i] = runner.speedup(inputs[i], s);
        });
        add_row("Disable", speedups);
    }

    // Learning stages.
    core::Learner learner;
    core::Analyzer analyzer;
    for (const auto &learned : learn_order) {
        std::fprintf(stderr, "learning %s\n", learned.c_str());
        learner.learn(runner.profileWorkload(learned));
        auto binary = analyzer.analyze(learner.merged());
        std::vector<double> speedups(inputs.size());
        engine.forEach(inputs.size(), [&](std::size_t i) {
            auto s = runner.runProphetWithBinary(inputs[i], binary);
            speedups[i] = runner.speedup(inputs[i], s);
        });
        add_row("+" + learned.substr(4), speedups);
    }

    // "Direct": profile each input individually.
    {
        std::vector<double> speedups(inputs.size());
        engine.forEach(inputs.size(), [&](std::size_t i) {
            std::fprintf(stderr, "direct: %s\n", inputs[i].c_str());
            auto out = runner.runProphet(inputs[i]);
            speedups[i] = runner.speedup(inputs[i], out.stats);
        });
        add_row("Direct", speedups);
    }

    std::printf("\n== Figure 13: Prophet learning across gcc inputs "
                "(IPC speedup) ==\n\n%s\n",
                table.render().c_str());
    return 0;
}
