/**
 * @file
 * Shared plumbing for the figure-reproduction benches: the standard
 * RPG2 / Triangel / Prophet comparison across a workload list, with
 * geomean rows, as Figures 10-12, 15, 17 and 18 report.
 */

#ifndef PROPHET_BENCH_BENCH_UTIL_HH
#define PROPHET_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "stats/summary.hh"
#include "stats/table.hh"

namespace prophet::bench
{

/** The three systems every headline figure compares. */
struct TrioResult
{
    sim::RunStats rpg2;
    sim::RunStats triangel;
    sim::RunStats prophet;
};

/**
 * Parse the shared bench flag `--threads N` (also `--threads=N`).
 * Defaults to 1 (serial); 0 selects the hardware concurrency;
 * malformed or negative values fall back to the default. Any thread
 * count produces bit-identical tables — the sweep engine merges
 * results by job index.
 */
inline unsigned
parseThreads(int argc, char **argv, unsigned fallback = 1)
{
    auto parse = [fallback](const char *s) -> unsigned {
        char *end = nullptr;
        long v = std::strtol(s, &end, 10);
        if (end == s || *end != '\0' || v < 0) {
            std::fprintf(stderr,
                         "--threads: invalid value '%s', using %u\n",
                         s, fallback);
            return fallback;
        }
        return static_cast<unsigned>(v);
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0) {
            if (i + 1 < argc)
                return parse(argv[i + 1]);
            std::fprintf(stderr,
                         "--threads: missing value, using %u\n",
                         fallback);
            return fallback;
        }
        if (std::strncmp(argv[i], "--threads=", 10) == 0)
            return parse(argv[i] + 10);
    }
    return fallback;
}

/** Run RPG2, Triangel, and the Prophet pipeline on one workload. */
inline TrioResult
runTrio(sim::Runner &runner, const std::string &workload)
{
    TrioResult r;
    r.rpg2 = runner.runRpg2(workload).stats;
    r.triangel = runner.run("triangel", workload);
    r.prophet = runner.runProphet(workload).stats;
    return r;
}

/**
 * The standard figure sweep: every workload's trio, fanned across
 * the sweep engine's thread pool. Results are keyed by workload and
 * independent of the thread count.
 */
inline std::map<std::string, TrioResult>
runTrios(sim::Runner &runner,
         const std::vector<std::string> &workloads, unsigned threads)
{
    sim::SweepEngine engine(runner, threads);
    std::printf("sweeping %zu workloads x 3 systems on %u thread%s\n",
                workloads.size(), engine.threads(),
                engine.threads() == 1 ? "" : "s");
    auto outcomes = engine.runTrios(workloads);
    std::map<std::string, TrioResult> results;
    for (auto &[w, o] : outcomes) {
        TrioResult r;
        r.rpg2 = o.rpg2.stats;
        r.triangel = o.triangel;
        r.prophet = o.prophet.stats;
        results.emplace(w, std::move(r));
    }
    return results;
}

/** Metric extractor signature: (runner, workload, stats) -> value. */
using Metric = double (*)(sim::Runner &, const std::string &,
                          const sim::RunStats &);

inline double
speedupMetric(sim::Runner &r, const std::string &w,
              const sim::RunStats &s)
{
    return r.speedup(w, s);
}

inline double
trafficMetric(sim::Runner &r, const std::string &w,
              const sim::RunStats &s)
{
    return r.trafficNorm(w, s);
}

inline double
coverageMetric(sim::Runner &r, const std::string &w,
               const sim::RunStats &s)
{
    return r.coverage(w, s);
}

inline double
accuracyMetric(sim::Runner &, const std::string &,
               const sim::RunStats &s)
{
    return s.prefetchAccuracy();
}

/**
 * Render the standard per-workload trio table for one metric, with
 * a geomean row (matching the figures' "Geomean" bar).
 */
inline void
printTrioTable(sim::Runner &runner,
               const std::vector<std::string> &workloads,
               const std::map<std::string, TrioResult> &results,
               const char *metric_name, Metric metric)
{
    stats::Table table({"workload", "RPG2", "Triangel", "Prophet"});
    std::vector<double> g_rpg2, g_tri, g_pro;
    // Geomean per system over its positive values; a system stuck at
    // zero (RPG2's coverage on kernel-less workloads, footnote 6)
    // reports the arithmetic-mean-compatible 0 instead.
    auto note = [](std::vector<double> &col, double v) {
        if (v > 0.0)
            col.push_back(v);
    };
    for (const auto &w : workloads) {
        const TrioResult &r = results.at(w);
        double v_rpg2 = metric(runner, w, r.rpg2);
        double v_tri = metric(runner, w, r.triangel);
        double v_pro = metric(runner, w, r.prophet);
        table.addRow({w, stats::Table::fmt(v_rpg2),
                      stats::Table::fmt(v_tri),
                      stats::Table::fmt(v_pro)});
        note(g_rpg2, v_rpg2);
        note(g_tri, v_tri);
        note(g_pro, v_pro);
    }
    table.addRow({"Geomean", stats::Table::fmt(stats::geomean(g_rpg2)),
                  stats::Table::fmt(stats::geomean(g_tri)),
                  stats::Table::fmt(stats::geomean(g_pro))});
    std::printf("%s\n%s\n", metric_name, table.render().c_str());
}

} // namespace prophet::bench

#endif // PROPHET_BENCH_BENCH_UTIL_HH
