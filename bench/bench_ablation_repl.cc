/**
 * @file
 * Design-choice ablation (Section 2.1.2): metadata-table replacement
 * policy under Triage. The paper's argument for Triangel's SRRIP —
 * Hawkeye costs ~13 KB for <0.25% speedup over simpler policies —
 * and for Prophet's accuracy-priority replacement is that reuse-
 * distance prediction alone barely moves temporal prefetching.
 * This bench measures Triage (degree 4) with Hawkeye, SRRIP, LRU and
 * random metadata replacement, plus Prophet's priority-aware
 * replacement on the same profile, on the replacement-sensitive
 * workloads.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/runner.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace prophet;
    unsigned threads = bench::parseThreads(argc, argv);
    sim::Runner runner;
    sim::SweepEngine engine(runner, threads);
    const std::vector<std::string> workloads{"mcf", "omnetpp",
                                             "soplex_pds-50"};
    const std::vector<std::string> policies{"hawkeye", "srrip", "lru",
                                            "random"};

    stats::Table table({"workload", "Hawkeye", "SRRIP", "LRU",
                        "Random", "Prophet(+Repla)"});
    std::vector<std::vector<double>> cols(policies.size() + 1);

    // One job per (workload x policy) cell — the last column is
    // Prophet restricted to its replacement feature (the accuracy-
    // priority victim filter on top of the runtime policy), which
    // profiles inside its own job. Baselines are warmed up front so
    // speedup normalization never races.
    engine.warmBaselines(workloads);
    std::size_t per = policies.size() + 1;
    std::vector<double> cells(workloads.size() * per);
    engine.forEach(cells.size(), [&](std::size_t j) {
        const auto &w = workloads[j / per];
        std::size_t i = j % per;
        sim::RunStats stats;
        if (i < policies.size()) {
            sim::SystemConfig cfg = runner.baseConfig();
            cfg.l2Pf = sim::L2PfKind::Triage4;
            cfg.triage.metaReplacement = policies[i];
            cfg.triage.bloomResizing = false;
            stats = runner.runConfig(w, cfg);
        } else {
            core::Analyzer analyzer;
            auto binary =
                analyzer.analyze(runner.profileWorkload(w));
            core::ProphetConfig pcfg;
            pcfg.features = core::ProphetFeatures{true, false, false,
                                                  false};
            stats = runner.runProphetWithBinary(w, binary, pcfg);
        }
        cells[j] = runner.speedup(w, stats);
        std::fprintf(stderr, "  %s [%zu/%zu] done\n", w.c_str(),
                     i + 1, per);
    });

    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        std::vector<std::string> row{workloads[wi]};
        for (std::size_t i = 0; i < per; ++i) {
            double s = cells[wi * per + i];
            row.push_back(stats::Table::fmt(s));
            cols[i].push_back(s);
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> geo{"Geomean"};
    for (auto &c : cols)
        geo.push_back(stats::Table::fmt(stats::geomean(c)));
    table.addRow(std::move(geo));

    std::printf("\n== Ablation: metadata replacement policy (Triage4 "
                "base) ==\n\n%s\n"
                "Section 2.1.2's point: reuse-distance-only policies "
                "(Hawkeye/SRRIP/LRU) are\nnearly interchangeable; "
                "accuracy-priority replacement is what moves the "
                "needle.\n",
                table.render().c_str());
    return 0;
}
