/**
 * @file
 * Design-choice ablation (Section 2.1.2): metadata-table replacement
 * policy under Triage. The paper's argument for Triangel's SRRIP —
 * Hawkeye costs ~13 KB for <0.25% speedup over simpler policies —
 * and for Prophet's accuracy-priority replacement is that reuse-
 * distance prediction alone barely moves temporal prefetching.
 * This bench measures Triage (degree 4) with Hawkeye, SRRIP, LRU and
 * random metadata replacement, plus Prophet's priority-aware
 * replacement on the same profile, on the replacement-sensitive
 * workloads.
 */

#include <cstdio>

#include "sim/runner.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "workloads/registry.hh"

int
main()
{
    using namespace prophet;
    sim::Runner runner;
    const std::vector<std::string> workloads{"mcf", "omnetpp",
                                             "soplex_pds-50"};
    const std::vector<std::string> policies{"hawkeye", "srrip", "lru",
                                            "random"};

    stats::Table table({"workload", "Hawkeye", "SRRIP", "LRU",
                        "Random", "Prophet(+Repla)"});
    std::vector<std::vector<double>> cols(policies.size() + 1);

    core::Analyzer analyzer;
    for (const auto &w : workloads) {
        std::printf("running %s...\n", w.c_str());
        std::vector<std::string> row{w};
        for (std::size_t i = 0; i < policies.size(); ++i) {
            sim::SystemConfig cfg = runner.baseConfig();
            cfg.l2Pf = sim::L2PfKind::Triage4;
            cfg.triage.metaReplacement = policies[i];
            cfg.triage.bloomResizing = false;
            auto stats = runner.runConfig(w, cfg);
            double s = runner.speedup(w, stats);
            row.push_back(stats::Table::fmt(s));
            cols[i].push_back(s);
        }
        // Prophet with only the replacement feature: the accuracy-
        // priority victim filter on top of the runtime policy.
        auto binary = analyzer.analyze(runner.profileWorkload(w));
        core::ProphetConfig pcfg;
        pcfg.features = core::ProphetFeatures{true, false, false,
                                              false};
        auto stats = runner.runProphetWithBinary(w, binary, pcfg);
        double s = runner.speedup(w, stats);
        row.push_back(stats::Table::fmt(s));
        cols.back().push_back(s);
        table.addRow(std::move(row));
    }
    std::vector<std::string> geo{"Geomean"};
    for (auto &c : cols)
        geo.push_back(stats::Table::fmt(stats::geomean(c)));
    table.addRow(std::move(geo));

    std::printf("\n== Ablation: metadata replacement policy (Triage4 "
                "base) ==\n\n%s\n"
                "Section 2.1.2's point: reuse-distance-only policies "
                "(Hawkeye/SRRIP/LRU) are\nnearly interchangeable; "
                "accuracy-priority replacement is what moves the "
                "needle.\n",
                table.render().c_str());
    return 0;
}
