/**
 * @file
 * Figure 17: IPC speedup with a richer commercial-style L1
 * prefetcher (IPCP replacing the stride prefetcher), emulating a
 * Neoverse V2-class L1. Baseline normalization also uses IPCP.
 *
 * Paper shape: Prophet 1.300, Triangel 1.175, RPG2 1.004 geomean —
 * the temporal prefetchers' ordering is robust to the L1 choice.
 */

#include "bench_util.hh"
#include "workloads/registry.hh"

int
main()
{
    using namespace prophet;
    sim::SystemConfig base = sim::SystemConfig::table1();
    base.l1Pf = sim::L1PfKind::Ipcp;
    sim::Runner runner(base);

    const auto &workloads = workloads::specWorkloads();
    std::map<std::string, bench::TrioResult> results;
    for (const auto &w : workloads) {
        std::printf("running %s...\n", w.c_str());
        results[w] = bench::runTrio(runner, w);
    }
    std::printf("\n== Figure 17: IPC speedup with IPCP L1 prefetcher "
                "==\n\n");
    bench::printTrioTable(runner, workloads, results,
                          "Performance Speedup",
                          bench::speedupMetric);
    return 0;
}
