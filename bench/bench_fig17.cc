/**
 * @file
 * Figure 17: IPC speedup with a richer commercial-style L1
 * prefetcher (IPCP replacing the stride prefetcher), emulating a
 * Neoverse V2-class L1. Baseline normalization also uses IPCP.
 *
 * Paper shape: Prophet 1.300, Triangel 1.175, RPG2 1.004 geomean —
 * the temporal prefetchers' ordering is robust to the L1 choice.
 */

#include "bench_util.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace prophet;
    unsigned threads = bench::parseThreads(argc, argv);
    sim::SystemConfig base = sim::SystemConfig::table1();
    base.l1Pf = sim::L1PfKind::Ipcp;
    sim::Runner runner(base);

    const auto &workloads = workloads::specWorkloads();
    auto results = bench::runTrios(runner, workloads, threads);
    std::printf("\n== Figure 17: IPC speedup with IPCP L1 prefetcher "
                "==\n\n");
    bench::printTrioTable(runner, workloads, results,
                          "Performance Speedup",
                          bench::speedupMetric);
    return 0;
}
