/**
 * @file
 * Design-choice ablation (Section 2.1's motivation): on-chip vs
 * off-chip metadata. Compares the off-chip-metadata temporal
 * prefetchers (STMS, Domino) against on-chip Triage/Triangel/Prophet
 * on speedup and on the DRAM traffic their metadata management adds —
 * the cost that motivated moving the Markov table into the LLC.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/runner.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace prophet;
    unsigned threads = bench::parseThreads(argc, argv);
    sim::Runner runner;
    sim::SweepEngine engine(runner, threads);

    const std::vector<std::string> workloads{"mcf", "omnetpp",
                                             "sphinx3"};
    stats::Table perf({"workload", "STMS", "Domino", "Triage",
                       "Triangel", "Prophet"});
    stats::Table meta({"workload", "STMS md-lines", "Domino md-lines",
                       "on-chip md-lines (all on-chip schemes)"});

    // One job per (workload x system), merged by index; the STMS and
    // Domino rows also feed the metadata-traffic table.
    enum { kStms, kDomino, kTriage, kTriangel, kProphet, kSystems };
    engine.warmBaselines(workloads);
    std::vector<sim::RunStats> cells(workloads.size() * kSystems);
    engine.forEach(cells.size(), [&](std::size_t j) {
        const auto &w = workloads[j / kSystems];
        switch (j % kSystems) {
          case kStms: {
            sim::SystemConfig cfg = runner.baseConfig();
            cfg.l2Pf = sim::L2PfKind::Stms;
            cells[j] = runner.runConfig(w, cfg);
            break;
          }
          case kDomino: {
            sim::SystemConfig cfg = runner.baseConfig();
            cfg.l2Pf = sim::L2PfKind::Domino;
            cells[j] = runner.runConfig(w, cfg);
            break;
          }
          case kTriage:
            cells[j] = runner.run("triage4", w);
            break;
          case kTriangel:
            cells[j] = runner.run("triangel", w);
            break;
          default:
            cells[j] = runner.runProphet(w).stats;
            break;
        }
        std::fprintf(stderr, "  %s [%zu/%u] done\n", w.c_str(),
                     j % kSystems + 1, unsigned{kSystems});
    });

    std::vector<double> g_stms, g_dom, g_tri, g_tgl, g_pro;
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        const auto &w = workloads[wi];
        const sim::RunStats *row = &cells[wi * kSystems];
        auto s = [&](const sim::RunStats &r) {
            return runner.speedup(w, r);
        };
        perf.addRow({w, stats::Table::fmt(s(row[kStms])),
                     stats::Table::fmt(s(row[kDomino])),
                     stats::Table::fmt(s(row[kTriage])),
                     stats::Table::fmt(s(row[kTriangel])),
                     stats::Table::fmt(s(row[kProphet]))});
        meta.addRow(
            {w, std::to_string(row[kStms].offchipMeta.total()),
             std::to_string(row[kDomino].offchipMeta.total()), "0"});
        g_stms.push_back(s(row[kStms]));
        g_dom.push_back(s(row[kDomino]));
        g_tri.push_back(s(row[kTriage]));
        g_tgl.push_back(s(row[kTriangel]));
        g_pro.push_back(s(row[kProphet]));
    }
    perf.addRow({"Geomean", stats::Table::fmt(stats::geomean(g_stms)),
                 stats::Table::fmt(stats::geomean(g_dom)),
                 stats::Table::fmt(stats::geomean(g_tri)),
                 stats::Table::fmt(stats::geomean(g_tgl)),
                 stats::Table::fmt(stats::geomean(g_pro))});

    std::printf("\n== Ablation: on-chip vs off-chip metadata — IPC "
                "speedup ==\n\n%s\n",
                perf.render().c_str());
    std::printf("== DRAM lines moved for metadata (the traffic "
                "on-chip tables eliminate) ==\n\n%s\n",
                meta.render().c_str());
    return 0;
}
