/**
 * @file
 * Design-choice ablation (Section 2.1's motivation): on-chip vs
 * off-chip metadata. Compares the off-chip-metadata temporal
 * prefetchers (STMS, Domino) against on-chip Triage/Triangel/Prophet
 * on speedup and on the DRAM traffic their metadata management adds —
 * the cost that motivated moving the Markov table into the LLC.
 */

#include <cstdio>

#include "sim/runner.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "workloads/registry.hh"

int
main()
{
    using namespace prophet;
    sim::Runner runner;

    const std::vector<std::string> workloads{"mcf", "omnetpp",
                                             "sphinx3"};
    stats::Table perf({"workload", "STMS", "Domino", "Triage",
                       "Triangel", "Prophet"});
    stats::Table meta({"workload", "STMS md-lines", "Domino md-lines",
                       "on-chip md-lines (all on-chip schemes)"});

    std::vector<double> g_stms, g_dom, g_tri, g_tgl, g_pro;
    for (const auto &w : workloads) {
        std::printf("running %s...\n", w.c_str());
        sim::SystemConfig stms_cfg = runner.baseConfig();
        stms_cfg.l2Pf = sim::L2PfKind::Stms;
        auto stms = runner.runConfig(w, stms_cfg);

        sim::SystemConfig dom_cfg = runner.baseConfig();
        dom_cfg.l2Pf = sim::L2PfKind::Domino;
        auto dom = runner.runConfig(w, dom_cfg);

        auto tri = runner.runTriage(w, 4);
        auto tgl = runner.runTriangel(w);
        auto pro = runner.runProphet(w).stats;

        auto s = [&](const sim::RunStats &r) {
            return runner.speedup(w, r);
        };
        perf.addRow({w, stats::Table::fmt(s(stms)),
                     stats::Table::fmt(s(dom)),
                     stats::Table::fmt(s(tri)),
                     stats::Table::fmt(s(tgl)),
                     stats::Table::fmt(s(pro))});
        meta.addRow({w, std::to_string(stms.offchipMeta.total()),
                     std::to_string(dom.offchipMeta.total()), "0"});
        g_stms.push_back(s(stms));
        g_dom.push_back(s(dom));
        g_tri.push_back(s(tri));
        g_tgl.push_back(s(tgl));
        g_pro.push_back(s(pro));
    }
    perf.addRow({"Geomean", stats::Table::fmt(stats::geomean(g_stms)),
                 stats::Table::fmt(stats::geomean(g_dom)),
                 stats::Table::fmt(stats::geomean(g_tri)),
                 stats::Table::fmt(stats::geomean(g_tgl)),
                 stats::Table::fmt(stats::geomean(g_pro))});

    std::printf("\n== Ablation: on-chip vs off-chip metadata — IPC "
                "speedup ==\n\n%s\n",
                perf.render().c_str());
    std::printf("== DRAM lines moved for metadata (the traffic "
                "on-chip tables eliminate) ==\n\n%s\n",
                meta.render().c_str());
    return 0;
}
