/**
 * @file
 * Figure 10: IPC speedup of RPG2, Triangel, and Prophet over the
 * baseline without a temporal prefetcher, across the seven SPEC
 * workloads, with the geomean bar.
 *
 * Paper shape to reproduce: Prophet > Triangel >> RPG2 (~1.0);
 * geomeans 1.346 / 1.203 / 1.001 in the paper.
 */

#include "bench_util.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace prophet;
    unsigned threads = bench::parseThreads(argc, argv);
    sim::Runner runner;
    const auto &workloads = workloads::specWorkloads();

    auto results = bench::runTrios(runner, workloads, threads);
    std::printf("\n== Figure 10: IPC speedup vs no-temporal "
                "baseline ==\n\n");
    bench::printTrioTable(runner, workloads, results,
                          "Performance Speedup",
                          bench::speedupMetric);
    return 0;
}
