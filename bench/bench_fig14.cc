/**
 * @file
 * Figure 14: the learning feature generalizes beyond gcc — astar
 * (biglakes/rivers) and soplex (pds-50/ref). Stages as in Figure 13:
 * Disable, +first input, +second input, Direct.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/learner.hh"
#include "sim/runner.hh"
#include "stats/summary.hh"
#include "stats/table.hh"

namespace
{

void
runPair(prophet::sim::SweepEngine &engine, const char *app,
        const std::vector<std::string> &inputs,
        const std::vector<std::string> &stage_labels)
{
    using namespace prophet;
    sim::Runner &runner = engine.runner();
    engine.warmBaselines(inputs);

    stats::Table table([&] {
        std::vector<std::string> hdr{"stage"};
        for (const auto &in : inputs)
            hdr.push_back(in);
        hdr.push_back("Geomean");
        return hdr;
    }());

    auto add_row = [&](const std::string &label,
                       const std::vector<double> &speedups) {
        std::vector<std::string> row{label};
        for (double s : speedups)
            row.push_back(stats::Table::fmt(s));
        row.push_back(stats::Table::fmt(stats::geomean(speedups)));
        table.addRow(std::move(row));
    };

    // Disable row (fanned across the engine's pool; stage order and
    // stdout stay deterministic, progress goes to stderr).
    {
        core::ProphetConfig bare;
        bare.features = core::ProphetFeatures{false, false, false,
                                              false};
        std::vector<double> speedups(inputs.size());
        engine.forEach(inputs.size(), [&](std::size_t i) {
            auto s = runner.runProphetWithBinary(
                inputs[i], core::OptimizedBinary{}, bare);
            speedups[i] = runner.speedup(inputs[i], s);
        });
        add_row("Disable", speedups);
    }

    // Learning stages.
    core::Learner learner;
    core::Analyzer analyzer;
    for (std::size_t stage = 0; stage < inputs.size(); ++stage) {
        std::fprintf(stderr, "%s: learning %s\n", app,
                     inputs[stage].c_str());
        learner.learn(runner.profileWorkload(inputs[stage]));
        auto binary = analyzer.analyze(learner.merged());
        std::vector<double> speedups(inputs.size());
        engine.forEach(inputs.size(), [&](std::size_t i) {
            auto s = runner.runProphetWithBinary(inputs[i], binary);
            speedups[i] = runner.speedup(inputs[i], s);
        });
        add_row(stage_labels[stage], speedups);
    }

    // Direct row.
    {
        std::vector<double> speedups(inputs.size());
        engine.forEach(inputs.size(), [&](std::size_t i) {
            auto out = runner.runProphet(inputs[i]);
            speedups[i] = runner.speedup(inputs[i], out.stats);
        });
        add_row("Direct", speedups);
    }

    std::printf("\n== Figure 14 (%s): learning generalization ==\n\n"
                "%s\n",
                app, table.render().c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    unsigned threads = prophet::bench::parseThreads(argc, argv);
    prophet::sim::Runner runner;
    prophet::sim::SweepEngine engine(runner, threads);
    runPair(engine, "astar", {"astar_biglakes", "astar_rivers"},
            {"+lake", "+river"});
    runPair(engine, "soplex", {"soplex_pds-50", "soplex_ref"},
            {"+pds", "+ref"});
    return 0;
}
