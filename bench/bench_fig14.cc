/**
 * @file
 * Figure 14: the learning feature generalizes beyond gcc — astar
 * (biglakes/rivers) and soplex (pds-50/ref). Stages as in Figure 13:
 * Disable, +first input, +second input, Direct.
 */

#include <cstdio>

#include "core/learner.hh"
#include "sim/runner.hh"
#include "stats/summary.hh"
#include "stats/table.hh"

namespace
{

void
runPair(prophet::sim::Runner &runner, const char *app,
        const std::vector<std::string> &inputs,
        const std::vector<std::string> &stage_labels)
{
    using namespace prophet;

    stats::Table table([&] {
        std::vector<std::string> hdr{"stage"};
        for (const auto &in : inputs)
            hdr.push_back(in);
        hdr.push_back("Geomean");
        return hdr;
    }());

    auto add_row = [&](const std::string &label,
                       const std::vector<double> &speedups) {
        std::vector<std::string> row{label};
        for (double s : speedups)
            row.push_back(stats::Table::fmt(s));
        row.push_back(stats::Table::fmt(stats::geomean(speedups)));
        table.addRow(std::move(row));
    };

    // Disable row.
    {
        core::ProphetConfig bare;
        bare.features = core::ProphetFeatures{false, false, false,
                                              false};
        std::vector<double> speedups;
        for (const auto &in : inputs) {
            auto s = runner.runProphetWithBinary(
                in, core::OptimizedBinary{}, bare);
            speedups.push_back(runner.speedup(in, s));
        }
        add_row("Disable", speedups);
    }

    // Learning stages.
    core::Learner learner;
    core::Analyzer analyzer;
    for (std::size_t stage = 0; stage < inputs.size(); ++stage) {
        std::printf("%s: learning %s\n", app, inputs[stage].c_str());
        learner.learn(runner.profileWorkload(inputs[stage]));
        auto binary = analyzer.analyze(learner.merged());
        std::vector<double> speedups;
        for (const auto &in : inputs) {
            auto s = runner.runProphetWithBinary(in, binary);
            speedups.push_back(runner.speedup(in, s));
        }
        add_row(stage_labels[stage], speedups);
    }

    // Direct row.
    {
        std::vector<double> speedups;
        for (const auto &in : inputs) {
            auto out = runner.runProphet(in);
            speedups.push_back(runner.speedup(in, out.stats));
        }
        add_row("Direct", speedups);
    }

    std::printf("\n== Figure 14 (%s): learning generalization ==\n\n"
                "%s\n",
                app, table.render().c_str());
}

} // anonymous namespace

int
main()
{
    prophet::sim::Runner runner;
    runPair(runner, "astar", {"astar_biglakes", "astar_rivers"},
            {"+lake", "+river"});
    runPair(runner, "soplex", {"soplex_pds-50", "soplex_ref"},
            {"+pds", "+ref"});
    return 0;
}
