/**
 * @file
 * Figure 16: sensitivity studies over Prophet's parameters.
 *  (a) EL_ACC in the insertion policy: 0.05 / 0.15 / 0.25 — both
 *      extremes hurt (under- vs over-filtering).
 *  (b) n in the replacement policy: 1 / 2 / 3 priority bits — finer
 *      classes help slightly, at storage cost.
 *  (c) Candidates per entry in the MVB: 1 / 2 / 4 — one candidate is
 *      the sweet spot; more pollute bandwidth-sensitive workloads.
 *
 * Profiles are collected once per workload and reused across all
 * parameter points (the profile does not depend on the parameters).
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "core/analyzer.hh"
#include "sim/runner.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "workloads/registry.hh"

namespace
{

using prophet::core::AnalyzerConfig;
using prophet::core::ProphetConfig;

void
sweep(prophet::sim::SweepEngine &engine,
      const std::map<std::string, prophet::core::ProfileSnapshot>
          &profiles,
      const char *title, const std::vector<std::string> &labels,
      const std::vector<AnalyzerConfig> &acfgs,
      const std::vector<ProphetConfig> &pcfgs)
{
    using namespace prophet;
    sim::Runner &runner = engine.runner();
    const auto &workloads = workloads::specWorkloads();

    stats::Table table([&] {
        std::vector<std::string> hdr{"workload"};
        for (const auto &l : labels)
            hdr.push_back(l);
        return hdr;
    }());

    // Every (workload x parameter point) cell is an independent job;
    // the value matrix is merged by index, so the table is identical
    // at any thread count.
    std::vector<double> cells(workloads.size() * labels.size());
    engine.forEach(cells.size(), [&](std::size_t j) {
        const auto &w = workloads[j / labels.size()];
        std::size_t i = j % labels.size();
        core::Analyzer analyzer(acfgs[i]);
        auto binary = analyzer.analyze(profiles.at(w));
        auto stats = runner.runProphetWithBinary(w, binary, pcfgs[i]);
        cells[j] = runner.speedup(w, stats);
    });

    std::vector<std::vector<double>> cols(labels.size());
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        std::vector<std::string> row{workloads[wi]};
        for (std::size_t i = 0; i < labels.size(); ++i) {
            double s = cells[wi * labels.size() + i];
            row.push_back(stats::Table::fmt(s));
            cols[i].push_back(s);
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> geo{"Geomean"};
    for (auto &c : cols)
        geo.push_back(stats::Table::fmt(stats::geomean(c)));
    table.addRow(std::move(geo));

    std::printf("\n== Figure 16%s ==\n\n%s\n", title,
                table.render().c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace prophet;
    unsigned threads = bench::parseThreads(argc, argv);
    sim::Runner runner;
    sim::SweepEngine engine(runner, threads);
    const auto &workloads = workloads::specWorkloads();

    // Baselines + one profiling job per workload up front; every
    // parameter point below reuses the snapshots.
    engine.warmBaselines(workloads);
    std::map<std::string, core::ProfileSnapshot> profiles;
    for (const auto &w : workloads)
        profiles[w] = core::ProfileSnapshot{};
    engine.forEach(workloads.size(), [&](std::size_t i) {
        std::fprintf(stderr, "profiling %s...\n",
                     workloads[i].c_str());
        profiles[workloads[i]] =
            runner.profileWorkload(workloads[i]);
    });

    // (a) EL_ACC sweep.
    {
        std::vector<AnalyzerConfig> acfgs(3);
        acfgs[0].elAcc = 0.05;
        acfgs[1].elAcc = 0.15;
        acfgs[2].elAcc = 0.25;
        std::vector<ProphetConfig> pcfgs(3);
        sweep(engine, profiles,
              "(a): EL_ACC sensitivity (insertion policy)",
              {"EL_ACC=0.05", "EL_ACC=0.15", "EL_ACC=0.25"}, acfgs,
              pcfgs);
    }

    // (b) n sweep.
    {
        std::vector<AnalyzerConfig> acfgs(3);
        acfgs[0].nBits = 1;
        acfgs[1].nBits = 2;
        acfgs[2].nBits = 3;
        std::vector<ProphetConfig> pcfgs(3);
        sweep(engine, profiles,
              "(b): n sensitivity (replacement priority bits)",
              {"n=1", "n=2", "n=3"}, acfgs, pcfgs);
    }

    // (c) MVB candidates sweep.
    {
        std::vector<AnalyzerConfig> acfgs(3);
        std::vector<ProphetConfig> pcfgs(3);
        pcfgs[0].mvbCandidates = 1;
        pcfgs[1].mvbCandidates = 2;
        pcfgs[2].mvbCandidates = 4;
        sweep(engine, profiles,
              "(c): Multi-path Victim Buffer candidates",
              {"Candidate=1", "Candidate=2", "Candidate=4"}, acfgs,
              pcfgs);
    }
    return 0;
}
