/**
 * @file
 * google-benchmark microbenchmarks for the hot simulator structures:
 * metadata-table insert/lookup, cache lookup, Bloom filter, training
 * unit, and the full per-record system step. These guard the
 * simulator's own performance (figure benches run hundreds of
 * millions of these operations).
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>
#include <unistd.h>

#include "common/time.hh"
#include "mem/cache.hh"
#include "mem/replacement.hh"
#include "prefetch/bloom.hh"
#include "prefetch/markov_table.hh"
#include "prefetch/training_unit.hh"
#include "sim/system.hh"
#include "trace/trace_cache.hh"
#include "workloads/pattern_lib.hh"

namespace
{

using namespace prophet;

void
BM_MarkovInsert(benchmark::State &state)
{
    pf::MarkovTable table(2048, 8,
                          std::make_unique<mem::SrripPolicy>());
    Addr key = 0;
    for (auto _ : state) {
        table.insert(key, key + 1, 0);
        key = (key + 12345) & 0xfffff;
    }
}
BENCHMARK(BM_MarkovInsert);

void
BM_MarkovLookup(benchmark::State &state)
{
    pf::MarkovTable table(2048, 8,
                          std::make_unique<mem::SrripPolicy>());
    for (Addr k = 0; k < 100000; ++k)
        table.insert(k, k + 1, 0);
    Addr key = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.lookup(key));
        key = (key + 7919) % 100000;
    }
}
BENCHMARK(BM_MarkovLookup);

void
BM_CacheLookupHit(benchmark::State &state)
{
    mem::Cache cache(
        mem::CacheConfig{"L2", 512 * 1024, 8, 9, 32, "plru"});
    for (Addr a = 0; a < 8192; ++a)
        cache.fill(a, 0, mem::PfClass::None, kInvalidPC, false);
    Addr a = 0;
    Cycle cycle = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.lookupDemand(a, cycle++));
        a = (a + 37) & 8191;
    }
}
BENCHMARK(BM_CacheLookupHit);

void
BM_BloomInsertEstimate(benchmark::State &state)
{
    pf::BloomFilter bloom(1 << 18, 4);
    std::uint64_t k = 0;
    for (auto _ : state) {
        bloom.insert(k++);
        if ((k & 0xfff) == 0)
            benchmark::DoNotOptimize(bloom.estimateCardinality());
    }
}
BENCHMARK(BM_BloomInsertEstimate);

void
BM_TrainingUnitSwap(benchmark::State &state)
{
    pf::TrainingUnit tu;
    PC pc = 0;
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tu.swap(pc, a));
        pc = (pc + 0x40) & 0x3fff;
        ++a;
    }
}
BENCHMARK(BM_TrainingUnitSwap);

/** Records driven through BM_SystemStep (also recorded in the JSON
 *  context so per-record throughput is comparable across PRs). */
constexpr int kSystemStepRecords = 500000;

/** The shared BM_SystemStep workload: a mutating pointer chase, the
 *  access idiom the temporal-prefetcher pipelines are built for. */
const trace::Trace &
systemStepTrace()
{
    static const trace::Trace t = [] {
        workloads::StreamParams p;
        p.pc = 0x400000;
        p.regionBase = 1ull << 33;
        p.seed = 11;
        workloads::ChaseStream stream(p, 50000, 0.02);
        trace::Trace trace;
        for (int i = 0; i < kSystemStepRecords; ++i)
            stream.emit(trace);
        return trace;
    }();
    return t;
}

/**
 * End-to-end records/sec of the per-record system step, one bench per
 * pipeline. items_per_second in BENCH_micro.json is the regression
 * gate: it must not drift down across PRs.
 */
void
BM_SystemStep(benchmark::State &state, sim::L2PfKind l2_kind)
{
    const trace::Trace &t = systemStepTrace();

    sim::SystemConfig cfg = sim::SystemConfig::table1();
    cfg.l2Pf = l2_kind;
    cfg.warmupRecords = 0;

    for (auto _ : state) {
        state.PauseTiming();
        sim::System sys(cfg);
        state.ResumeTiming();
        benchmark::DoNotOptimize(sys.run(t));
        state.SetItemsProcessed(state.items_processed()
                                + static_cast<std::int64_t>(t.size()));
    }
}
// "prophet" runs with a default (hint-free) binary: the hint-buffer,
// MVB and CSR machinery is exercised, which is what the throughput
// gate cares about.
BENCHMARK_CAPTURE(BM_SystemStep, none, sim::L2PfKind::None)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(BM_SystemStep, triage, sim::L2PfKind::Triage)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(BM_SystemStep, triangel, sim::L2PfKind::Triangel)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(BM_SystemStep, prophet, sim::L2PfKind::Prophet)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

/**
 * Sampled fast-mode counterpart of BM_SystemStep: same trace, same
 * pipelines, a representative sparse schedule (20k warm + 10k window
 * per 100k interval = 30% of records stepped). items_per_second
 * counts *effective* (trace) records — the number sweeps experience
 * — so its ratio over BM_SystemStep is the fast mode's speedup and
 * the perf-diff step catches regressions in the skip machinery.
 */
void
BM_SystemStepSampled(benchmark::State &state, sim::L2PfKind l2_kind)
{
    const trace::Trace &t = systemStepTrace();

    sim::SystemConfig cfg = sim::SystemConfig::table1();
    cfg.l2Pf = l2_kind;
    cfg.warmupRecords = 0;
    cfg.sampling.enabled = true;
    cfg.sampling.warmupRecords = 20000;
    cfg.sampling.windowRecords = 10000;
    cfg.sampling.intervalRecords = 100000;

    for (auto _ : state) {
        state.PauseTiming();
        sim::System sys(cfg);
        state.ResumeTiming();
        benchmark::DoNotOptimize(sys.run(t));
        state.SetItemsProcessed(state.items_processed()
                                + static_cast<std::int64_t>(t.size()));
    }
}
BENCHMARK_CAPTURE(BM_SystemStepSampled, none, sim::L2PfKind::None)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(BM_SystemStepSampled, triage, sim::L2PfKind::Triage)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(BM_SystemStepSampled, triangel,
                  sim::L2PfKind::Triangel)
    ->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK_CAPTURE(BM_SystemStepSampled, prophet,
                  sim::L2PfKind::Prophet)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

/** Scratch trace-cache directory, removed at process scope end. */
struct ScratchCacheDir
{
    ScratchCacheDir()
        : path(std::filesystem::temp_directory_path()
               / ("prophet_bench_cache_"
                  + std::to_string(static_cast<unsigned long>(
                      ::getpid()))))
    {
        std::filesystem::remove_all(path);
    }

    ~ScratchCacheDir() { std::filesystem::remove_all(path); }

    std::filesystem::path path;
};

/**
 * Trace-cache I/O throughput (records/sec under items_per_second),
 * so the warm-load speed the on-disk cache exists for is tracked in
 * BENCH_micro.json alongside the system-step numbers.
 */
void
BM_TraceCacheStore(benchmark::State &state)
{
    const trace::Trace &t = systemStepTrace();
    ScratchCacheDir scratch;
    trace::TraceCache cache(scratch.path.string());
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.store("bench", t.size(), t));
        state.SetItemsProcessed(state.items_processed()
                                + static_cast<std::int64_t>(t.size()));
    }
}
BENCHMARK(BM_TraceCacheStore)
    ->Unit(benchmark::kMillisecond)->Iterations(5);

void
BM_TraceCacheLoad(benchmark::State &state)
{
    const trace::Trace &t = systemStepTrace();
    ScratchCacheDir scratch;
    trace::TraceCache cache(scratch.path.string());
    if (!cache.store("bench", t.size(), t)) {
        state.SkipWithError("store failed");
        return;
    }
    trace::Trace out;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.load("bench", t.size(), out));
        state.SetItemsProcessed(state.items_processed()
                                + static_cast<std::int64_t>(t.size()));
    }
    if (out.size() != t.size())
        state.SkipWithError("load mismatch");
}
BENCHMARK(BM_TraceCacheLoad)
    ->Unit(benchmark::kMillisecond)->Iterations(5);

} // anonymous namespace

/**
 * Like BENCHMARK_MAIN(), but defaults to also writing the results as
 * machine-readable JSON (wall-clock per component) to
 * BENCH_micro.json, so CI can track the simulator's own performance
 * trajectory across PRs. Explicit --benchmark_out flags override.
 */
int
main(int argc, char **argv)
{
    bool has_out = false, fmt_is_json = true, has_fmt = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0
            || std::strcmp(argv[i], "--benchmark_out") == 0) {
            has_out = true;
        } else if (std::strncmp(argv[i], "--benchmark_out_format=",
                                23) == 0) {
            has_fmt = true;
            fmt_is_json = std::strcmp(argv[i] + 23, "json") == 0;
        }
    }

    std::vector<char *> args(argv, argv + argc);
    static char out_flag[] = "--benchmark_out=BENCH_micro.json";
    static char fmt_flag[] = "--benchmark_out_format=json";
    if (!has_out) {
        if (fmt_is_json) {
            // Default output; add the format flag only when the user
            // didn't supply their own.
            args.push_back(out_flag);
            if (!has_fmt)
                args.push_back(fmt_flag);
        } else {
            // A non-JSON format with no out file: don't write a
            // mis-labelled BENCH_micro.json.
            std::fprintf(stderr,
                         "bench_micro: non-json --benchmark_out_format "
                         "without --benchmark_out; skipping default "
                         "BENCH_micro.json\n");
        }
    }

    int eff_argc = static_cast<int>(args.size());
    benchmark::Initialize(&eff_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(eff_argc, args.data()))
        return 1;

    // Run metadata in the JSON context block, so the perf trajectory
    // stays interpretable across machines and PRs: how parallel the
    // host is, how much work BM_SystemStep represents, and when the
    // numbers were taken.
    {
        benchmark::AddCustomContext("timestamp_iso8601",
                                    prophet::iso8601UtcNow());
        benchmark::AddCustomContext(
            "hardware_threads",
            std::to_string(std::thread::hardware_concurrency()));
        benchmark::AddCustomContext(
            "system_step_records",
            std::to_string(kSystemStepRecords));
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
