/**
 * @file
 * Figure 19: Prophet features breakdown — starting from Triage at
 * degree 4 with Triangel's metadata format, layer Prophet's
 * components on cumulatively:
 *
 *   Triage4+Meta -> +Repla -> +Insert -> +MVB -> +Resize
 *
 * reporting (a) IPC speedup and (b) normalized DRAM traffic.
 *
 * Paper shape: replacement, insertion and the MVB contribute most of
 * the speedup (mcf +16.7% from insertion, soplex +13.5% from the
 * MVB); resizing mainly helps small-footprint workloads (sphinx3)
 * and the insertion policy cuts traffic.
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "sim/runner.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "workloads/registry.hh"

int
main(int argc, char **argv)
{
    using namespace prophet;
    unsigned threads = bench::parseThreads(argc, argv);
    sim::Runner runner;
    sim::SweepEngine engine(runner, threads);
    const auto &workloads = workloads::specWorkloads();

    struct Stage
    {
        const char *label;
        core::ProphetFeatures features;
    };
    const std::vector<Stage> stages{
        {"Triage4+Meta", {false, false, false, false}},
        {"+Repla", {true, false, false, false}},
        {"+Insert", {true, true, false, false}},
        {"+MVB", {true, true, true, false}},
        {"+Resize", {true, true, true, true}},
    };

    // Profile once per workload — one job each, baselines warmed
    // first so the speedup divisions below never race to compute
    // them. Each stage then re-analyzes with the default analyzer
    // and runs with its feature subset.
    engine.warmBaselines(workloads);
    std::map<std::string, core::OptimizedBinary> binaries;
    for (const auto &w : workloads)
        binaries[w] = core::OptimizedBinary{};
    engine.forEach(workloads.size(), [&](std::size_t i) {
        std::fprintf(stderr, "profiling %s...\n",
                     workloads[i].c_str());
        core::Analyzer analyzer;
        binaries[workloads[i]] =
            analyzer.analyze(runner.profileWorkload(workloads[i]));
    });

    auto hdr = [&] {
        std::vector<std::string> h{"workload"};
        for (const auto &s : stages)
            h.push_back(s.label);
        return h;
    };
    stats::Table perf(hdr());
    stats::Table traffic(hdr());
    std::vector<std::vector<double>> perf_cols(stages.size());
    std::vector<std::vector<double>> traffic_cols(stages.size());

    // One job per (workload x stage) cell, merged by index.
    std::vector<double> cell_s(workloads.size() * stages.size());
    std::vector<double> cell_t(cell_s.size());
    engine.forEach(cell_s.size(), [&](std::size_t j) {
        const auto &w = workloads[j / stages.size()];
        std::size_t i = j % stages.size();
        core::ProphetConfig cfg;
        cfg.features = stages[i].features;
        auto stats = runner.runProphetWithBinary(w, binaries[w], cfg);
        cell_s[j] = runner.speedup(w, stats);
        cell_t[j] = runner.trafficNorm(w, stats);
        std::fprintf(stderr, "  %s %s done\n", w.c_str(),
                     stages[i].label);
    });

    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        std::vector<std::string> prow{workloads[wi]};
        std::vector<std::string> trow{workloads[wi]};
        for (std::size_t i = 0; i < stages.size(); ++i) {
            double s = cell_s[wi * stages.size() + i];
            double t = cell_t[wi * stages.size() + i];
            prow.push_back(stats::Table::fmt(s));
            trow.push_back(stats::Table::fmt(t));
            perf_cols[i].push_back(s);
            traffic_cols[i].push_back(t);
        }
        perf.addRow(std::move(prow));
        traffic.addRow(std::move(trow));
    }
    std::vector<std::string> pg{"Geomean"}, tg{"Geomean"};
    for (std::size_t i = 0; i < stages.size(); ++i) {
        pg.push_back(stats::Table::fmt(stats::geomean(perf_cols[i])));
        tg.push_back(
            stats::Table::fmt(stats::geomean(traffic_cols[i])));
    }
    perf.addRow(std::move(pg));
    traffic.addRow(std::move(tg));

    std::printf("\n== Figure 19(a): Prophet features breakdown — IPC "
                "speedup ==\n\n%s\n",
                perf.render().c_str());
    std::printf("== Figure 19(b): Prophet features breakdown — "
                "normalized DRAM traffic ==\n\n%s\n",
                traffic.render().c_str());
    return 0;
}
