/**
 * @file
 * Figure 19: Prophet features breakdown — starting from Triage at
 * degree 4 with Triangel's metadata format, layer Prophet's
 * components on cumulatively:
 *
 *   Triage4+Meta -> +Repla -> +Insert -> +MVB -> +Resize
 *
 * reporting (a) IPC speedup and (b) normalized DRAM traffic.
 *
 * Paper shape: replacement, insertion and the MVB contribute most of
 * the speedup (mcf +16.7% from insertion, soplex +13.5% from the
 * MVB); resizing mainly helps small-footprint workloads (sphinx3)
 * and the insertion policy cuts traffic.
 */

#include <cstdio>
#include <map>

#include "sim/runner.hh"
#include "stats/summary.hh"
#include "stats/table.hh"
#include "workloads/registry.hh"

int
main()
{
    using namespace prophet;
    sim::Runner runner;
    const auto &workloads = workloads::specWorkloads();

    struct Stage
    {
        const char *label;
        core::ProphetFeatures features;
    };
    const std::vector<Stage> stages{
        {"Triage4+Meta", {false, false, false, false}},
        {"+Repla", {true, false, false, false}},
        {"+Insert", {true, true, false, false}},
        {"+MVB", {true, true, true, false}},
        {"+Resize", {true, true, true, true}},
    };

    // Profile once per workload; each stage re-analyzes with the
    // default analyzer and runs with its feature subset.
    std::map<std::string, core::OptimizedBinary> binaries;
    core::Analyzer analyzer;
    for (const auto &w : workloads) {
        std::printf("profiling %s...\n", w.c_str());
        binaries[w] = analyzer.analyze(runner.profileWorkload(w));
    }

    auto hdr = [&] {
        std::vector<std::string> h{"workload"};
        for (const auto &s : stages)
            h.push_back(s.label);
        return h;
    };
    stats::Table perf(hdr());
    stats::Table traffic(hdr());
    std::vector<std::vector<double>> perf_cols(stages.size());
    std::vector<std::vector<double>> traffic_cols(stages.size());

    for (const auto &w : workloads) {
        std::printf("running %s...\n", w.c_str());
        std::vector<std::string> prow{w}, trow{w};
        for (std::size_t i = 0; i < stages.size(); ++i) {
            core::ProphetConfig cfg;
            cfg.features = stages[i].features;
            auto stats =
                runner.runProphetWithBinary(w, binaries[w], cfg);
            double s = runner.speedup(w, stats);
            double t = runner.trafficNorm(w, stats);
            prow.push_back(stats::Table::fmt(s));
            trow.push_back(stats::Table::fmt(t));
            perf_cols[i].push_back(s);
            traffic_cols[i].push_back(t);
        }
        perf.addRow(std::move(prow));
        traffic.addRow(std::move(trow));
    }
    std::vector<std::string> pg{"Geomean"}, tg{"Geomean"};
    for (std::size_t i = 0; i < stages.size(); ++i) {
        pg.push_back(stats::Table::fmt(stats::geomean(perf_cols[i])));
        tg.push_back(
            stats::Table::fmt(stats::geomean(traffic_cols[i])));
    }
    perf.addRow(std::move(pg));
    traffic.addRow(std::move(tg));

    std::printf("\n== Figure 19(a): Prophet features breakdown — IPC "
                "speedup ==\n\n%s\n",
                perf.render().c_str());
    std::printf("== Figure 19(b): Prophet features breakdown — "
                "normalized DRAM traffic ==\n\n%s\n",
                traffic.render().c_str());
    return 0;
}
