/**
 * @file
 * The `prophet` CLI: the single entry point the declarative
 * experiment layer exposes.
 *
 *   prophet run <spec.json> [--threads N] [--records N]
 *               [--no-trace-cache] [--trace-cache-dir DIR]
 *               [--keep-going | --fail-fast] [--progress]
 *               [--metrics-out FILE] [--trace-out FILE]
 *   prophet list-workloads
 *   prophet list-pipelines
 *   prophet trace-cache warm <spec.json | workload...>
 *               [--threads N] [--records N] [--trace-cache-dir DIR]
 *   prophet trace-cache clear [--trace-cache-dir DIR]
 *   prophet trace-cache stats [--trace-cache-dir DIR]
 *
 * `run` executes a spec and streams results to its sinks; CLI flags
 * override the spec's thread/record counts and failure policy.
 * `trace-cache warm` pre-generates the traces a spec (or an explicit
 * workload list) needs, so subsequent runs skip generation.
 *
 * Exit codes (documented in --help): 0 success, 2 usage error,
 * 3 spec parse/validation error, 4 runtime failure (a job or sink
 * failed and the run could not complete fully under fail-fast),
 * 5 partial failure (--keep-going: some jobs failed, the rest
 * completed and the partial results were written), 6 interrupted
 * (SIGINT/SIGTERM drained the run; completed jobs were journaled
 * when --resume/--journal was on, so rerunning with --resume
 * continues where it stopped).
 */

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancellation.hh"
#include "common/exit_codes.hh"
#include "driver/driver.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "sim/pipelines.hh"
#include "trace/trace_io.hh"
#include "sim/sweep.hh"
#include "workloads/registry.hh"

namespace
{

using namespace prophet;

/**
 * Graceful-shutdown plumbing for `prophet run`: the handler fires the
 * driver's shutdown token (CancellationToken::cancel is
 * async-signal-safe — one relaxed atomic store) and records which
 * signal arrived so cmdRun can exit 6. SA_RESETHAND restores the
 * default disposition, so a second ^C force-kills a run whose drain
 * is stuck.
 */
CancellationToken gShutdown;
volatile std::sig_atomic_t gSignal = 0;

extern "C" void
onShutdownSignal(int sig)
{
    gSignal = sig;
    gShutdown.cancel();
}

void
installShutdownHandlers()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onShutdownSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESETHAND;
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: prophet <command> [args]\n"
        "\n"
        "  run <spec.json> [--threads N] [--records N]\n"
        "      [--no-trace-cache] [--trace-cache-dir DIR]\n"
        "      [--keep-going | --fail-fast] [--progress]\n"
        "      [--metrics-out FILE] [--trace-out FILE]\n"
        "      [--resume | --journal FILE] [--no-journal-fsync]\n"
        "      [--job-timeout SEC]\n"
        "  list-workloads\n"
        "  list-pipelines\n"
        "  trace-cache warm <spec.json | workload...>\n"
        "      [--threads N] [--records N] [--trace-cache-dir DIR]\n"
        "  trace-cache clear [--trace-cache-dir DIR]\n"
        "  trace-cache stats [--trace-cache-dir DIR]\n"
        "  serve --socket PATH [--serve-workers N]\n"
        "      [--max-queue N] [--max-frame-bytes N]\n"
        "      [--io-timeout-ms N] [--request-deadline SEC]\n"
        "      [--max-rss-mb N] [--drain-grace SEC]\n"
        "      [--no-trace-cache] [--trace-cache-dir DIR]\n"
        "  client run <spec.json> --socket PATH [--deadline SEC]\n"
        "      [--timeout-ms N]\n"
        "  client health --socket PATH\n"
        "  client ping --socket PATH\n"
        "\n"
        "observability (run; all off by default — outputs are\n"
        "byte-identical to a run without these flags):\n"
        "  --progress         live jobs/rate/ETA line on stderr\n"
        "  --metrics-out FILE write a JSON metrics report (phase\n"
        "                     timings, counters, per-job timings,\n"
        "                     peak RSS, thread utilization)\n"
        "  --trace-out FILE   write a Chrome trace_event span trace\n"
        "                     (open in https://ui.perfetto.dev)\n"
        "  PROPHET_LOG=error|warn|info|debug filters stderr logging\n"
        "                     (default info)\n"
        "\n"
        "failure policy (run):\n"
        "  --keep-going   run every job even after one fails; render\n"
        "                 partial results with failed cells marked\n"
        "  --fail-fast    cancel remaining jobs on the first failure\n"
        "                 (the default unless the spec sets\n"
        "                 \"keep_going\": true)\n"
        "\n"
        "long-running sweeps (run):\n"
        "  --resume       checkpoint each completed job to\n"
        "                 <spec>.journal and replay completed jobs\n"
        "                 from it on restart (output is\n"
        "                 byte-identical to an uninterrupted run)\n"
        "  --journal FILE same, with an explicit journal path\n"
        "  --no-journal-fsync\n"
        "                 skip the per-append fsync (faster; an\n"
        "                 entry then survives process death, not\n"
        "                 power loss)\n"
        "  --job-timeout SEC\n"
        "                 per-job watchdog deadline: an overrunning\n"
        "                 job is cancelled, recorded as a transient\n"
        "                 timeout, and retried; overrides the spec's\n"
        "                 \"deadline_s\" (0 disables both)\n"
        "  SIGINT/SIGTERM drain in-flight jobs, flush the journal\n"
        "                 and partial sinks, and exit 6; a second\n"
        "                 signal force-kills\n"
        "\n"
        "serving (serve / client; protocol in README \"Serving\"):\n"
        "  serve keeps traces and baselines resident, so a repeated\n"
        "  spec skips every trace load; client run is a drop-in for\n"
        "  run against a warm daemon (same sinks, same exit codes).\n"
        "  SIGINT/SIGTERM drain the daemon: stop accepting, finish\n"
        "  or cancel in-flight requests, flush, exit 6.\n"
        "\n");
    // One shared block (common/exit_codes.hh): run, serve, and
    // client compute their exits from the same enum this prints.
    std::fputs(exitCodesHelp(), stderr);
    return 2;
}

/** Shared flag state across subcommands. */
struct Flags
{
    driver::DriverOptions opts;
    std::vector<std::string> positional;

    /** --resume: journal at <spec>.journal (path known post-parse). */
    bool resume = false;

    // serve / client flags (ignored by the other subcommands).
    std::string socketPath;          ///< --socket (required)
    serve::ServeOptions serveOpts;   ///< daemon knobs
    double clientDeadlineS = 0.0;    ///< client run --deadline
    int clientTimeoutMs = -1;        ///< client --timeout-ms
};

bool
parseFlags(int argc, char **argv, int from, Flags &flags)
{
    auto needValue = [&](int &i, const char *flag) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "prophet: %s needs a value\n", flag);
            return nullptr;
        }
        return argv[++i];
    };
    // Bounds match the spec parser's: an overflowing value must be
    // an error, not a silent truncation — and never a value that
    // collides with the kNoThreads/kNoRecords "unset" sentinels.
    auto parseCount = [](const char *flag, const char *s,
                         unsigned long long max,
                         unsigned long long &out) {
        char *end = nullptr;
        errno = 0;
        unsigned long long v = std::strtoull(s, &end, 10);
        if (end == s || *end != '\0' || errno == ERANGE || v > max) {
            std::fprintf(stderr,
                         "prophet: %s: invalid value '%s'\n", flag,
                         s);
            return false;
        }
        out = v;
        return true;
    };
    constexpr unsigned long long kMaxThreads = 65536;
    constexpr unsigned long long kMaxRecords =
        1ull << 53; // the spec schema's bound
    for (int i = from; i < argc; ++i) {
        unsigned long long v = 0;
        if (!std::strcmp(argv[i], "--threads")) {
            const char *s = needValue(i, "--threads");
            if (!s || !parseCount("--threads", s, kMaxThreads, v))
                return false;
            flags.opts.threads = static_cast<unsigned>(v);
        } else if (!std::strncmp(argv[i], "--threads=", 10)) {
            if (!parseCount("--threads", argv[i] + 10, kMaxThreads,
                            v))
                return false;
            flags.opts.threads = static_cast<unsigned>(v);
        } else if (!std::strcmp(argv[i], "--records")) {
            const char *s = needValue(i, "--records");
            if (!s || !parseCount("--records", s, kMaxRecords, v))
                return false;
            flags.opts.records = static_cast<std::size_t>(v);
        } else if (!std::strncmp(argv[i], "--records=", 10)) {
            if (!parseCount("--records", argv[i] + 10, kMaxRecords,
                            v))
                return false;
            flags.opts.records = static_cast<std::size_t>(v);
        } else if (!std::strcmp(argv[i], "--no-trace-cache")) {
            flags.opts.traceCache = 0;
        } else if (!std::strcmp(argv[i], "--keep-going")) {
            flags.opts.keepGoing = 1;
        } else if (!std::strcmp(argv[i], "--fail-fast")) {
            flags.opts.keepGoing = 0;
        } else if (!std::strcmp(argv[i], "--trace-cache-dir")) {
            const char *s = needValue(i, "--trace-cache-dir");
            if (!s)
                return false;
            flags.opts.traceCacheDir = s;
        } else if (!std::strncmp(argv[i], "--trace-cache-dir=", 18)) {
            flags.opts.traceCacheDir = argv[i] + 18;
        } else if (!std::strcmp(argv[i], "--progress")) {
            flags.opts.progress = true;
        } else if (!std::strcmp(argv[i], "--metrics-out")) {
            const char *s = needValue(i, "--metrics-out");
            if (!s)
                return false;
            flags.opts.metricsOut = s;
        } else if (!std::strncmp(argv[i], "--metrics-out=", 14)) {
            flags.opts.metricsOut = argv[i] + 14;
        } else if (!std::strcmp(argv[i], "--trace-out")) {
            const char *s = needValue(i, "--trace-out");
            if (!s)
                return false;
            flags.opts.traceOut = s;
        } else if (!std::strncmp(argv[i], "--trace-out=", 12)) {
            flags.opts.traceOut = argv[i] + 12;
        } else if (!std::strcmp(argv[i], "--resume")) {
            flags.resume = true;
        } else if (!std::strcmp(argv[i], "--journal")) {
            const char *s = needValue(i, "--journal");
            if (!s)
                return false;
            flags.opts.journalPath = s;
        } else if (!std::strncmp(argv[i], "--journal=", 10)) {
            flags.opts.journalPath = argv[i] + 10;
        } else if (!std::strcmp(argv[i], "--no-journal-fsync")) {
            flags.opts.journalFsync = false;
        } else if (!std::strcmp(argv[i], "--job-timeout")
                   || !std::strncmp(argv[i], "--job-timeout=", 14)) {
            const char *s = argv[i][13] == '='
                ? argv[i] + 14
                : needValue(i, "--job-timeout");
            if (!s)
                return false;
            char *end = nullptr;
            errno = 0;
            double secs = std::strtod(s, &end);
            if (end == s || *end != '\0' || errno == ERANGE
                || !(secs >= 0.0) || secs >= 1e9) {
                std::fprintf(
                    stderr,
                    "prophet: --job-timeout: invalid value '%s'\n",
                    s);
                return false;
            }
            flags.opts.jobTimeoutS = secs;
        } else if (!std::strcmp(argv[i], "--socket")) {
            const char *s = needValue(i, "--socket");
            if (!s)
                return false;
            flags.socketPath = s;
        } else if (!std::strncmp(argv[i], "--socket=", 9)) {
            flags.socketPath = argv[i] + 9;
        } else if (!std::strcmp(argv[i], "--serve-workers")) {
            const char *s = needValue(i, "--serve-workers");
            if (!s || !parseCount("--serve-workers", s, 1024, v))
                return false;
            flags.serveOpts.workers = static_cast<unsigned>(v);
        } else if (!std::strcmp(argv[i], "--max-queue")) {
            const char *s = needValue(i, "--max-queue");
            if (!s || !parseCount("--max-queue", s, 1 << 20, v))
                return false;
            flags.serveOpts.maxQueue =
                static_cast<std::size_t>(v);
        } else if (!std::strcmp(argv[i], "--max-frame-bytes")) {
            const char *s = needValue(i, "--max-frame-bytes");
            if (!s
                || !parseCount("--max-frame-bytes", s,
                               ~std::uint32_t{0}, v))
                return false;
            flags.serveOpts.maxFrameBytes =
                static_cast<std::uint32_t>(v);
        } else if (!std::strcmp(argv[i], "--io-timeout-ms")) {
            const char *s = needValue(i, "--io-timeout-ms");
            if (!s
                || !parseCount("--io-timeout-ms", s, 86400000, v))
                return false;
            flags.serveOpts.ioTimeoutMs = static_cast<int>(v);
        } else if (!std::strcmp(argv[i], "--max-rss-mb")) {
            const char *s = needValue(i, "--max-rss-mb");
            if (!s || !parseCount("--max-rss-mb", s, 1 << 24, v))
                return false;
            flags.serveOpts.maxRssMb =
                static_cast<std::size_t>(v);
        } else if (!std::strcmp(argv[i], "--timeout-ms")) {
            const char *s = needValue(i, "--timeout-ms");
            if (!s || !parseCount("--timeout-ms", s, 86400000, v))
                return false;
            flags.clientTimeoutMs = static_cast<int>(v);
        } else if (!std::strcmp(argv[i], "--request-deadline")
                   || !std::strcmp(argv[i], "--drain-grace")
                   || !std::strcmp(argv[i], "--deadline")) {
            const std::string flag = argv[i];
            const char *s = needValue(i, flag.c_str());
            if (!s)
                return false;
            char *end = nullptr;
            errno = 0;
            double secs = std::strtod(s, &end);
            if (end == s || *end != '\0' || errno == ERANGE
                || !(secs >= 0.0) || secs >= 1e9) {
                std::fprintf(stderr,
                             "prophet: %s: invalid value '%s'\n",
                             flag.c_str(), s);
                return false;
            }
            if (flag == "--request-deadline")
                flags.serveOpts.requestDeadlineS = secs;
            else if (flag == "--drain-grace")
                flags.serveOpts.drainGraceS = secs;
            else
                flags.clientDeadlineS = secs;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "prophet: unknown flag %s\n",
                         argv[i]);
            return false;
        } else {
            flags.positional.push_back(argv[i]);
        }
    }
    return true;
}

int
cmdRun(const Flags &flags)
{
    if (flags.positional.size() != 1) {
        std::fprintf(stderr, "prophet run: expected one spec file\n");
        return 2;
    }
    try {
        auto spec =
            driver::ExperimentSpec::fromFile(flags.positional[0]);
        driver::DriverOptions opts = flags.opts;
        if (flags.resume && opts.journalPath.empty())
            opts.journalPath = flags.positional[0] + ".journal";
        // The shutdown token rides along unconditionally: without a
        // journal an interrupt still drains cleanly and exits 6, it
        // just has nothing to resume from.
        installShutdownHandlers();
        opts.shutdown = &gShutdown;
        driver::ExperimentDriver drv(std::move(spec),
                                     std::move(opts));
        bool keep_going = drv.keepGoingEnabled();
        auto report = drv.run();
        // The report-to-exit mapping is shared with the serve
        // daemon's response frames (driver::exitCodeForReport), so
        // the two entry points cannot disagree on a verdict.
        int rc = driver::exitCodeForReport(report, keep_going);
        if (report.failedJobs > 0)
            std::fprintf(
                stderr, "prophet run: %zu of %zu job%s failed%s\n",
                report.failedJobs, report.results.size(),
                report.results.size() == 1 ? "" : "s",
                keep_going ? " (keep-going: partial results written)"
                           : "");
        if (!report.sinksOk)
            std::fprintf(stderr,
                         "prophet run: one or more sinks failed to "
                         "write\n");
        // A signal trumps the failure codes: the skipped/cancelled
        // jobs are the interrupt's doing, and exit 6 tells scripts
        // "rerun with --resume", not "a job is broken".
        if (gSignal != 0) {
            std::fprintf(
                stderr,
                "prophet run: interrupted by signal %d "
                "(%zu job%s completed%s)\n",
                static_cast<int>(gSignal),
                report.results.size() - report.failedJobs,
                report.results.size() - report.failedJobs == 1
                    ? ""
                    : "s",
                flags.resume || !flags.opts.journalPath.empty()
                    ? "; rerun with --resume to continue"
                    : "");
            rc = static_cast<int>(ExitCode::Interrupted);
        }
        return rc;
    } catch (const Error &e) {
        std::fprintf(stderr, "prophet run: %s\n", e.what());
        return static_cast<int>(exitCodeForError(e.code()));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "prophet run: %s\n", e.what());
        return static_cast<int>(ExitCode::RuntimeFailure);
    }
}

/**
 * `prophet serve`: run the resident daemon until SIGINT/SIGTERM,
 * then drain gracefully and exit 6 — the same interrupt code a
 * drained `prophet run` uses.
 */
int
cmdServe(Flags &flags)
{
    if (flags.socketPath.empty()) {
        std::fprintf(stderr, "prophet serve: --socket is required\n");
        return static_cast<int>(ExitCode::Usage);
    }
    serve::ServeOptions sopts = flags.serveOpts;
    sopts.socketPath = flags.socketPath;
    sopts.traceCache = flags.opts.traceCache;
    sopts.traceCacheDir = flags.opts.traceCacheDir;
    sopts.maxAttempts = flags.opts.maxAttempts;
    sopts.retryBackoffMs = flags.opts.retryBackoffMs;

    try {
        serve::ServeDaemon daemon(std::move(sopts));
        daemon.start();
        installShutdownHandlers();
        while (gSignal == 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        std::fprintf(stderr,
                     "prophet serve: signal %d; draining\n",
                     static_cast<int>(gSignal));
        daemon.drainAndStop();
        return static_cast<int>(ExitCode::Interrupted);
    } catch (const Error &e) {
        std::fprintf(stderr, "prophet serve: %s\n", e.what());
        return static_cast<int>(exitCodeForError(e.code()));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "prophet serve: %s\n", e.what());
        return static_cast<int>(ExitCode::RuntimeFailure);
    }
}

/** `prophet client run|health|ping` against a serve daemon. */
int
cmdClient(const std::string &sub, const Flags &flags)
{
    if (flags.socketPath.empty()) {
        std::fprintf(stderr,
                     "prophet client: --socket is required\n");
        return static_cast<int>(ExitCode::Usage);
    }
    if (sub == "run") {
        if (flags.positional.size() != 1) {
            std::fprintf(stderr,
                         "prophet client run: expected one spec "
                         "file\n");
            return static_cast<int>(ExitCode::Usage);
        }
        return serve::clientRun(flags.socketPath,
                                flags.positional[0],
                                flags.clientDeadlineS,
                                flags.clientTimeoutMs);
    }
    if (sub == "health" || sub == "ping")
        return serve::clientSimpleRequest(flags.socketPath, sub,
                                          flags.clientTimeoutMs);
    std::fprintf(stderr,
                 "prophet client: unknown subcommand \"%s\"\n",
                 sub.c_str());
    return static_cast<int>(ExitCode::Usage);
}

int
cmdListWorkloads()
{
    std::printf("SPEC (Figures 10-12, 16-19):\n");
    for (const auto &w : workloads::specWorkloads())
        std::printf("  %s\n", w.c_str());
    std::printf("graph (Figure 15):\n");
    for (const auto &w : workloads::graphWorkloads())
        std::printf("  %s\n", w.c_str());
    std::printf("gcc inputs (Figure 13):\n");
    for (const auto &w : workloads::gccInputs())
        std::printf("  %s\n", w.c_str());
    std::printf("\nGraph labels follow <kernel>_<vertices>_<degree> "
                "with kernels\nbfs dfs sssp bc pagerank, so labels "
                "beyond Figure 15's are valid too.\n"
                "Spec aliases: @spec @graph @gcc\n");
    return 0;
}

int
cmdListPipelines()
{
    // Everything printed here comes from the pipeline registry —
    // names, display names, and the accepted parameters. Adding a
    // registry entry updates this listing (and the spec schema)
    // automatically.
    for (const auto &def : sim::pipelineRegistry()) {
        std::printf("%-10s %s\n", def.name.c_str(),
                    def.displayName.c_str());
        if (def.params.empty()) {
            std::printf("  (no parameters)\n");
            continue;
        }
        for (const auto &p : def.params)
            std::printf("  %-16s %-16s %s\n", p.key.c_str(),
                        sim::paramTypeName(p.type).c_str(),
                        p.doc.c_str());
    }
    std::printf(
        "\nSpec usage: a \"pipelines\" element is a name or an "
        "object, e.g.\n"
        "  {\"name\": \"triage\", \"degree\": 4, \"label\": "
        "\"triage-d4\"}\n"
        "and a top-level \"sweep\": {\"param\": ..., \"values\": "
        "[...]} cross-products\n"
        "every pipeline with every value.\n");
    return 0;
}

int
cmdTraceCacheWarm(const Flags &flags)
{
    if (flags.positional.empty()) {
        std::fprintf(stderr,
                     "prophet trace-cache warm: expected a spec file "
                     "or workload names\n");
        return 2;
    }

    // Cache keys are (workload, records), and each spec file may
    // use a different record override — so warming tracks the pair
    // per workload, never one global record count.
    std::vector<std::pair<std::string, std::size_t>> jobs;
    unsigned threads = 1;
    try {
        for (const auto &arg : flags.positional) {
            if (arg.size() > 5
                && arg.compare(arg.size() - 5, 5, ".json") == 0) {
                auto spec = driver::ExperimentSpec::fromFile(arg);
                for (const auto &w : spec.workloads)
                    jobs.emplace_back(w, spec.records);
                threads = spec.threads;
            } else if (workloads::isKnown(arg)) {
                jobs.emplace_back(arg, std::size_t{0});
            } else {
                std::fprintf(stderr,
                             "prophet trace-cache warm: unknown "
                             "workload \"%s\"\n",
                             arg.c_str());
                return 1;
            }
        }
    } catch (const driver::SpecError &e) {
        std::fprintf(stderr, "prophet trace-cache warm: %s\n",
                     e.what());
        return 1;
    }
    if (flags.opts.records != driver::DriverOptions::kNoRecords)
        for (auto &[w, r] : jobs)
            r = flags.opts.records;
    if (flags.opts.threads != driver::DriverOptions::kNoThreads)
        threads = flags.opts.threads;

    // One Runner per distinct record override (a Runner generates at
    // a single trace length); duplicates within a group collapse.
    std::map<std::size_t, std::vector<std::string>> groups;
    for (const auto &[w, r] : jobs) {
        auto &names = groups[r];
        if (std::find(names.begin(), names.end(), w) == names.end())
            names.push_back(w);
    }
    auto cache = std::make_shared<trace::TraceCache>(
        flags.opts.traceCacheDir);
    std::size_t warmed = 0;
    for (const auto &[records, names] : groups) {
        sim::Runner runner(sim::SystemConfig::table1(), records);
        runner.setTraceCache(cache);
        sim::SweepEngine engine(runner, threads);
        engine.forEach(names.size(), [&](std::size_t i) {
            runner.traceFor(names[i]);
        });
        warmed += names.size();
    }
    auto st = cache->stats();
    std::printf("warmed %zu workload(s) into %s "
                "(%llu already cached, %llu generated)\n",
                warmed, cache->dir().c_str(),
                static_cast<unsigned long long>(st.hits),
                static_cast<unsigned long long>(st.stores));
    return 0;
}

int
cmdTraceCacheClear(const Flags &flags)
{
    trace::TraceCache cache(flags.opts.traceCacheDir);
    std::size_t removed = cache.clear();
    std::printf("removed %zu cached trace(s) from %s\n", removed,
                cache.dir().c_str());
    return 0;
}

int
cmdTraceCacheStats(const Flags &flags)
{
    trace::TraceCache cache(flags.opts.traceCacheDir);
    auto entries = cache.entries();
    std::uint64_t total = 0;
    std::map<std::uint32_t, std::size_t> by_version;
    for (const auto &e : entries) {
        std::printf("  %10llu  v%u  %s\n",
                    static_cast<unsigned long long>(e.bytes),
                    e.version, e.file.c_str());
        total += e.bytes;
        ++by_version[e.version];
    }
    std::printf("%zu cached trace(s), %llu bytes in %s\n",
                entries.size(),
                static_cast<unsigned long long>(total),
                cache.dir().c_str());
    for (const auto &[version, count] : by_version) {
        if (version == 0)
            std::printf("  format unreadable: %zu entr%s\n", count,
                        count == 1 ? "y" : "ies");
        else
            std::printf("  format v%u: %zu entr%s%s\n", version,
                        count, count == 1 ? "y" : "ies",
                        version < trace::kTraceFormatV3
                            ? " (legacy; upgraded on next load)"
                            : "");
    }

    // Quarantined entries and the durable health counters
    // (accumulated across every process that used this directory).
    auto quarantined = cache.quarantined();
    if (!quarantined.empty()) {
        std::printf("%zu quarantined entr%s (corrupt, renamed to "
                    ".corrupt; removed by trace-cache clear):\n",
                    quarantined.size(),
                    quarantined.size() == 1 ? "y" : "ies");
        for (const auto &e : quarantined)
            std::printf("  %10llu  %s\n",
                        static_cast<unsigned long long>(e.bytes),
                        e.file.c_str());
    }
    auto pc = cache.persistentCounters();
    std::printf("health counters (lifetime of %s):\n"
                "  checksum failures: %llu\n"
                "  quarantines:       %llu\n"
                "  lock contention:   %llu\n"
                "  store failures:    %llu\n",
                cache.dir().c_str(),
                static_cast<unsigned long long>(pc.checksumFailures),
                static_cast<unsigned long long>(pc.quarantines),
                static_cast<unsigned long long>(pc.lockContention),
                static_cast<unsigned long long>(pc.storeFailures));
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string cmd = argv[1];

    if (cmd == "run") {
        Flags flags;
        if (!parseFlags(argc, argv, 2, flags))
            return 2;
        return cmdRun(flags);
    }
    if (cmd == "serve") {
        Flags flags;
        if (!parseFlags(argc, argv, 2, flags))
            return 2;
        return cmdServe(flags);
    }
    if (cmd == "client") {
        if (argc < 3)
            return usage();
        std::string sub = argv[2];
        Flags flags;
        if (!parseFlags(argc, argv, 3, flags))
            return 2;
        return cmdClient(sub, flags);
    }
    if (cmd == "list-workloads")
        return cmdListWorkloads();
    if (cmd == "list-pipelines")
        return cmdListPipelines();
    if (cmd == "trace-cache") {
        if (argc < 3)
            return usage();
        std::string sub = argv[2];
        Flags flags;
        if (!parseFlags(argc, argv, 3, flags))
            return 2;
        if (sub == "warm")
            return cmdTraceCacheWarm(flags);
        if (sub == "clear")
            return cmdTraceCacheClear(flags);
        if (sub == "stats")
            return cmdTraceCacheStats(flags);
        return usage();
    }
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
        usage();
        return 0;
    }
    std::fprintf(stderr, "prophet: unknown command \"%s\"\n",
                 cmd.c_str());
    return usage();
}
