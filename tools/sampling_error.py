#!/usr/bin/env python3
"""Sampled-vs-full validation harness.

Runs an experiment spec twice through the prophet driver -- once
exactly (any "sampling" key stripped) and once in sampled fast mode
-- and reports, per (workload, pipeline, metric), the relative error
of the sampled estimate, plus the effective speedup from the driver's
phase metrics.

Typical use:

    python3 tools/sampling_error.py specs/fig10.json \
        --prophet build/prophet \
        --sampling '{"warmup_records": 25000, "window_records": 10000,
                     "interval_records": 300000}' \
        --max-error 2.0 --report sampling_report.json

Exit status: 0 when every compared metric is within --max-error
(always 0 when no gate is given), 1 otherwise, 2 on usage/run errors.
"""

import argparse
import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

DEFAULT_SAMPLING = {
    "warmup_records": 25000,
    "window_records": 10000,
    "interval_records": 300000,
}


def load_spec(path):
    """Parse a spec file, tolerating the // comments and trailing
    commas the driver's JSON reader accepts."""
    text = Path(path).read_text()
    text = re.sub(r"^\s*//.*$", "", text, flags=re.MULTILINE)
    text = re.sub(r",(\s*[}\]])", r"\1", text)
    return json.loads(text)


def run_variant(args, spec, tag, tmp):
    """Write a spec variant, run it, return (rows, phases)."""
    results_path = tmp / f"{tag}_results.json"
    metrics_path = tmp / f"{tag}_metrics.json"
    spec = dict(spec)
    spec["name"] = f"{spec.get('name', 'experiment')}-{tag}"
    # The json sink is the comparison input; drop table/csv noise.
    spec["sinks"] = [{"type": "json", "path": str(results_path)}]
    spec_path = tmp / f"{tag}_spec.json"
    spec_path.write_text(json.dumps(spec, indent=2))

    cmd = [args.prophet, "run", str(spec_path),
           "--metrics-out", str(metrics_path)]
    if args.threads:
        cmd += ["--threads", str(args.threads)]
    if args.trace_cache_dir:
        cmd += ["--trace-cache-dir", args.trace_cache_dir]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        sys.exit(2)

    rows = json.loads(results_path.read_text())["results"]
    phases = json.loads(metrics_path.read_text()).get("phases", {})
    return rows, phases


def phase_seconds(phases, keys):
    return sum(phases.get(k, {}).get("seconds", 0.0) for k in keys)


def compare(full_rows, sampled_rows):
    """Yield (workload, pipeline, metric, full, sampled, rel_error)."""
    sampled = {(r["workload"], r["pipeline"]): r for r in sampled_rows}
    for f in full_rows:
        key = (f["workload"], f["pipeline"])
        s = sampled.get(key)
        if s is None:
            continue
        pairs = list(f.get("metrics", {}).items())
        # IPC is the headline per-workload stat even when the spec
        # only asked for derived metrics like speedup.
        if "ipc" not in f.get("metrics", {}):
            pairs.append(("ipc", f["stats"]["ipc"]))
        for name, fv in pairs:
            sv = (s.get("metrics", {}).get(name)
                  if name in s.get("metrics", {})
                  else s["stats"].get(name))
            if sv is None:
                continue
            err = abs(sv - fv) / abs(fv) if fv else abs(sv - fv)
            yield key[0], key[1], name, fv, sv, err


def main():
    ap = argparse.ArgumentParser(
        description="sampled-vs-full relative-error report")
    ap.add_argument("spec", help="experiment spec (specs/*.json)")
    ap.add_argument("--prophet", default="build/prophet",
                    help="driver binary (default: build/prophet)")
    ap.add_argument("--sampling", default=None,
                    help="sampling object as JSON (default: the "
                         "spec's own \"sampling\" object, else "
                         + json.dumps(DEFAULT_SAMPLING) + ")")
    ap.add_argument("--max-error", type=float, default=None,
                    help="fail (exit 1) if any relative error "
                         "exceeds this percentage")
    ap.add_argument("--report", default=None,
                    help="write the JSON report here")
    ap.add_argument("--threads", type=int, default=0)
    ap.add_argument("--trace-cache-dir", default=None)
    args = ap.parse_args()

    spec = load_spec(args.spec)
    if spec.get("report"):
        sys.exit("report specs run no jobs; nothing to validate")
    # Schedule precedence: explicit --sampling, then the spec's own
    # "sampling" object (so `sampling_error.py specs/foo.json`
    # validates the schedule foo.json actually ships), then the
    # small built-in default.
    sampling = (json.loads(args.sampling) if args.sampling
                else spec.get("sampling") or dict(DEFAULT_SAMPLING))

    full_spec = {k: v for k, v in spec.items() if k != "sampling"}
    sampled_spec = dict(full_spec)
    sampled_spec["sampling"] = sampling

    with tempfile.TemporaryDirectory(prefix="sampling_err_") as d:
        tmp = Path(d)
        full_rows, full_ph = run_variant(args, full_spec, "full", tmp)
        sampled_rows, sampled_ph = run_variant(args, sampled_spec,
                                               "sampled", tmp)

    rows = list(compare(full_rows, sampled_rows))
    if not rows:
        sys.exit("no comparable (workload, pipeline) rows")

    # Pure timing-simulation time: Prophet's offline profiling pass
    # reports under its own "profile" phase and is identical (never
    # sampled) in both variants, so it is excluded from the ratio.
    sim_phases = ["warmup", "warm", "simulate"]
    full_sim = phase_seconds(full_ph, sim_phases)
    sampled_sim = phase_seconds(sampled_ph, sim_phases)
    profile_s = phase_seconds(sampled_ph, ["profile"])
    speedup = full_sim / sampled_sim if sampled_sim > 0 else 0.0

    print(f"{'workload':<16} {'pipeline':<14} {'metric':<10} "
          f"{'full':>12} {'sampled':>12} {'err%':>7}")
    worst = 0.0
    for wl, pl, name, fv, sv, err in rows:
        worst = max(worst, err)
        print(f"{wl:<16} {pl:<14} {name:<10} "
              f"{fv:>12.6g} {sv:>12.6g} {err * 100:>6.2f}%")
    print(f"\nmax relative error: {worst * 100:.2f}%")
    print(f"simulate phase: full {full_sim:.2f}s, "
          f"sampled {sampled_sim:.2f}s, speedup {speedup:.1f}x"
          + (f" (+ {profile_s:.2f}s unsampled profiling)"
             if profile_s else ""))

    if args.report:
        doc = {
            "spec": args.spec,
            "sampling": sampling,
            "max_error_pct": worst * 100,
            "speedup": speedup,
            "full_simulate_seconds": full_sim,
            "sampled_simulate_seconds": sampled_sim,
            "profile_seconds": profile_s,
            "metrics": [
                {"workload": wl, "pipeline": pl, "metric": name,
                 "full": fv, "sampled": sv, "error_pct": err * 100}
                for wl, pl, name, fv, sv, err in rows
            ],
        }
        Path(args.report).write_text(json.dumps(doc, indent=2) + "\n")
        print(f"report written to {args.report}")

    if args.max_error is not None and worst * 100 > args.max_error:
        print(f"FAIL: max error {worst * 100:.2f}% exceeds gate "
              f"{args.max_error:.2f}%", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
