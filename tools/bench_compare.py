#!/usr/bin/env python3
"""Compare two BENCH_micro.json files benchmark by benchmark.

Usage:
    tools/bench_compare.py OLD.json NEW.json [--tolerance PCT]
                           [--metric METRIC] [--gate]
    tools/bench_compare.py OLD_metrics.json NEW_metrics.json --phases

For every benchmark name present in both files, the median METRIC
(default: items_per_second, i.e. records/sec for the system-step and
trace-cache benches) is compared and the relative change printed.
Multiple entries with the same name (e.g. --benchmark_repetitions
runs) are reduced to their median, which is robust against one noisy
repetition; aggregate rows google-benchmark synthesizes itself
(name_mean/_median/_stddev/_cv) are ignored.

With --phases the inputs are two `prophet run --metrics-out` files
instead: the per-phase cumulative seconds (trace_load, warmup,
simulate, sink_render, ...) from their "phases" sections are diffed.
Phase timings are durations, so *increases* beyond the tolerance are
the regressions.

By default the comparison is informational: the exit status is 0 no
matter what changed, so noisy CI runners cannot block a merge. Pass
--gate to exit 1 when any benchmark regressed by more than
--tolerance percent (default 5).
"""

import argparse
import json
import statistics
import sys


def load_medians(path, metric):
    """name -> median metric value, skipping aggregate rows."""
    with open(path) as f:
        doc = json.load(f)
    values = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        if name is None or metric not in bench:
            continue
        values.setdefault(name, []).append(float(bench[metric]))
    return {name: statistics.median(vals)
            for name, vals in values.items()}


def load_phases(path):
    """phase name -> cumulative seconds from a --metrics-out file."""
    with open(path) as f:
        doc = json.load(f)
    return {name: float(entry.get("seconds", 0.0))
            for name, entry in doc.get("phases", {}).items()}


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("old", help="baseline BENCH_micro.json")
    parser.add_argument("new", help="candidate BENCH_micro.json")
    parser.add_argument("--tolerance", type=float, default=5.0,
                        help="regression threshold in percent "
                             "(default: 5)")
    parser.add_argument("--metric", default="items_per_second",
                        help="JSON field to compare "
                             "(default: items_per_second)")
    parser.add_argument("--gate", action="store_true",
                        help="exit 1 on a regression beyond the "
                             "tolerance (default: informational)")
    parser.add_argument("--phases", action="store_true",
                        help="inputs are `prophet run --metrics-out` "
                             "files; diff their per-phase seconds "
                             "(lower is better)")
    args = parser.parse_args()

    # Phase timings are durations: a regression is an *increase*.
    # Benchmark throughput is the opposite.
    lower_is_better = args.phases
    try:
        if args.phases:
            old = load_phases(args.old)
            new = load_phases(args.new)
        else:
            old = load_medians(args.old, args.metric)
            new = load_medians(args.new, args.metric)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        # Unreadable inputs are not a benchmark regression; stay
        # informational unless gating was requested.
        return 1 if args.gate else 0

    names = sorted(set(old) & set(new))
    if not names:
        what = "phases" if args.phases else "benchmarks"
        print(f"bench_compare: no common {what} to compare")
        return 0

    title = "phase" if args.phases else "benchmark"
    width = max(len(title), max(len(n) for n in names))
    print(f"{title:<{width}}  {'old':>14}  {'new':>14}  "
          f"{'change':>8}")
    regressions = []
    for name in names:
        o, n = old[name], new[name]
        change = (n / o - 1.0) * 100.0 if o else float("inf")
        worse = change > args.tolerance if lower_is_better \
            else change < -args.tolerance
        better = change < -args.tolerance if lower_is_better \
            else change > args.tolerance
        flag = ""
        if worse:
            flag = "  REGRESSED"
            regressions.append(name)
        elif better:
            flag = "  improved"
        print(f"{name:<{width}}  {o:>14.4g}  {n:>14.4g}  "
              f"{change:>+7.1f}%{flag}")

    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    if only_old:
        print(f"only in {args.old}: {', '.join(only_old)}")
    if only_new:
        print(f"only in {args.new}: {', '.join(only_new)}")

    if regressions:
        what = "phase(s)" if args.phases else "benchmark(s)"
        sign = "+" if lower_is_better else "-"
        print(f"{len(regressions)} {what} beyond the "
              f"{sign}{args.tolerance}% tolerance: "
              f"{', '.join(regressions)}")
        if args.gate:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
