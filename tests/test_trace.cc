/**
 * @file
 * Unit tests for the trace substrate: record accounting and the
 * instruction-count bookkeeping IPC depends on.
 */

#include <gtest/gtest.h>

#include "trace/trace.hh"

namespace prophet::trace
{
namespace
{

TEST(Trace, EmptyOnConstruction)
{
    Trace t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.totalInstructions(), 0u);
}

TEST(Trace, AppendCountsInstructions)
{
    Trace t;
    t.append(0x400, 0x1000, 4);
    // One memory instruction + 4 gap instructions.
    EXPECT_EQ(t.totalInstructions(), 5u);
    t.append(0x404, 0x2000, 0);
    EXPECT_EQ(t.totalInstructions(), 6u);
    EXPECT_EQ(t.size(), 2u);
}

TEST(Trace, RecordFieldsPreserved)
{
    Trace t;
    t.append(0x400, 0x1040, 7, true, true);
    const TraceRecord &r = t[0];
    EXPECT_EQ(r.pc, 0x400u);
    EXPECT_EQ(r.addr, 0x1040u);
    EXPECT_EQ(r.instGap, 7u);
    EXPECT_TRUE(r.dependsOnPrev);
    EXPECT_TRUE(r.isWrite);
}

TEST(Trace, DefaultsAreIndependentLoads)
{
    Trace t;
    t.append(1, 2);
    EXPECT_FALSE(t[0].dependsOnPrev);
    EXPECT_FALSE(t[0].isWrite);
}

TEST(Trace, IterationVisitsAllRecords)
{
    Trace t;
    for (int i = 0; i < 10; ++i)
        t.append(i, i * 64);
    int n = 0;
    for (const auto &rec : t) {
        EXPECT_EQ(rec.pc, static_cast<PC>(n));
        ++n;
    }
    EXPECT_EQ(n, 10);
}

} // anonymous namespace
} // namespace prophet::trace
