/**
 * @file
 * Tests for the workload registry and the structural properties the
 * evaluation depends on: every figure label instantiates; gcc inputs
 * share Load-A/Load-E PCs and differ in exclusive PCs (Figure 7);
 * SPEC-like workloads expose no RPG2 resolver while graph workloads
 * do.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/registry.hh"

namespace prophet::workloads
{
namespace
{

std::set<PC>
pcsOf(const std::string &name, std::size_t records = 30000)
{
    auto g = makeWorkload(name, records);
    auto t = g->generate();
    std::set<PC> pcs;
    for (const auto &r : t)
        pcs.insert(r.pc);
    return pcs;
}

TEST(Registry, AllSpecWorkloadsInstantiate)
{
    for (const auto &name : specWorkloads()) {
        auto g = makeWorkload(name, 2000);
        EXPECT_EQ(g->name(), name);
        auto t = g->generate();
        EXPECT_GE(t.size(), 2000u);
    }
}

TEST(Registry, AllGraphWorkloadsInstantiate)
{
    for (const auto &name : graphWorkloads()) {
        auto g = makeWorkload(name, 2000);
        EXPECT_EQ(g->name(), name);
        EXPECT_NE(g->resolver(), nullptr);
    }
}

TEST(Registry, AllGccInputsInstantiate)
{
    EXPECT_EQ(gccInputs().size(), 9u);
    for (const auto &name : gccInputs()) {
        auto g = makeWorkload(name, 2000);
        EXPECT_EQ(g->name(), name);
    }
}

TEST(Registry, SpecWorkloadsHaveNoResolver)
{
    // Pointer-chasing and computed-kernel workloads are outside
    // RPG2's reach (Section 2.2): no resolver is exposed.
    for (const char *name : {"mcf", "omnetpp", "sphinx3"}) {
        auto g = makeWorkload(name, 1000);
        EXPECT_EQ(g->resolver(), nullptr) << name;
    }
}

TEST(Registry, TracesAreDeterministic)
{
    auto a = makeWorkload("mcf", 5000)->generate();
    auto b = makeWorkload("mcf", 5000)->generate();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].addr, b[i].addr);
    }
}

TEST(Registry, GccInputsShareCommonPcs)
{
    // Figure 7 Load A: shared code paths keep the same PCs.
    auto a = pcsOf("gcc_166");
    auto b = pcsOf("gcc_typeck");
    std::set<PC> shared;
    for (PC pc : a)
        if (b.count(pc))
            shared.insert(pc);
    EXPECT_GE(shared.size(), 4u); // 3 Load-A + Load-E + stride/noise
}

TEST(Registry, GccFamiliesHaveExclusivePcs)
{
    // Figure 7 Loads B/C: different input families execute disjoint
    // exclusive PCs.
    auto a = pcsOf("gcc_166");
    auto b = pcsOf("gcc_typeck");
    std::set<PC> only_a, only_b;
    for (PC pc : a)
        if (!b.count(pc))
            only_a.insert(pc);
    for (PC pc : b)
        if (!a.count(pc))
            only_b.insert(pc);
    EXPECT_GE(only_a.size(), 1u);
    EXPECT_GE(only_b.size(), 1u);
}

TEST(Registry, GccFamilyMembersShareExclusivePcs)
{
    // gcc_200 and gcc_expr share their pattern family (the paper
    // observes they "share similar memory access patterns").
    auto a = pcsOf("gcc_200");
    auto b = pcsOf("gcc_expr");
    EXPECT_EQ(a, b);
}

TEST(Registry, AstarInputsDiffer)
{
    auto a = pcsOf("astar_biglakes");
    auto b = pcsOf("astar_rivers");
    EXPECT_NE(a, b);
    // But they share the solver PCs.
    std::set<PC> shared;
    for (PC pc : a)
        if (b.count(pc))
            shared.insert(pc);
    EXPECT_GE(shared.size(), 3u);
}

TEST(Registry, WorkloadsUseDisjointPcRanges)
{
    auto a = pcsOf("mcf", 10000);
    auto b = pcsOf("omnetpp", 10000);
    for (PC pc : a)
        EXPECT_EQ(b.count(pc), 0u);
}

TEST(Registry, DefaultRecordCountApplied)
{
    auto t = makeWorkload("sphinx3")->generate();
    EXPECT_GE(t.size(), 1'000'000u);
}

} // anonymous namespace
} // namespace prophet::workloads
