/**
 * @file
 * Cross-module property tests: randomized operation sequences driven
 * against structural invariants. These catch state-machine bugs that
 * example-based tests miss.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/prophet.hh"
#include "mem/hierarchy.hh"
#include "prefetch/markov_table.hh"
#include "prefetch/triangel.hh"

namespace prophet
{
namespace
{

// ------------------------------------------------- Markov invariants

/** Randomized op mix over the metadata table. */
class MarkovRandomOps
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(MarkovRandomOps, InvariantsHoldUnderChurn)
{
    Rng rng(GetParam());
    pf::MarkovTable table(16, 2, std::make_unique<mem::SrripPolicy>());
    table.setPriorityAware(rng.chance(0.5));

    std::uint64_t offered = 0;
    table.setEvictionCallback(
        [&](const pf::MarkovTable::Entry &e) {
            EXPECT_TRUE(e.valid);
            ++offered;
        });

    for (int i = 0; i < 20000; ++i) {
        double op = rng.uniform();
        Addr key = rng.below(3000);
        if (op < 0.55) {
            table.insert(key, rng.below(100000),
                         static_cast<std::uint8_t>(rng.below(4)));
        } else if (op < 0.9) {
            auto t = table.lookup(key);
            if (t) {
                auto p = table.peek(key);
                ASSERT_TRUE(p.has_value());
                EXPECT_EQ(*p, *t);
            }
        } else if (op < 0.95) {
            table.setAllocatedWays(
                static_cast<unsigned>(rng.range(0, 2)));
        } else {
            table.setAllocatedWays(2);
        }
        // Size never exceeds the current capacity.
        EXPECT_LE(table.size(), table.capacityEntries());
    }
    // Conservation: inserts = live + replacements + resize drops.
    const auto &s = table.stats();
    EXPECT_EQ(s.inserts,
              table.size() + s.replacements + s.resizeDrops);
    // The MVB callback fired for every replacement and update.
    EXPECT_EQ(offered, s.replacements + s.updates);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarkovRandomOps,
                         ::testing::Values(1u, 2u, 3u, 42u, 1337u));

// ---------------------------------------------- hierarchy invariants

class HierarchyRandomAccesses
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(HierarchyRandomAccesses, TimingAndCountersConsistent)
{
    Rng rng(GetParam());
    mem::HierarchyConfig cfg;
    cfg.l1d = {"L1D", 4 * 1024, 4, 2, 8, "lru"};
    cfg.l2 = {"L2", 16 * 1024, 8, 9, 8, "lru"};
    cfg.llc = {"LLC", 64 * 1024, 16, 20, 8, "lru"};
    mem::Hierarchy h(cfg);

    Cycle cycle = 0;
    std::uint64_t l2_accesses = 0;
    for (int i = 0; i < 30000; ++i) {
        cycle += rng.range(1, 4);
        Addr addr = rng.below(4096) * kLineSize;
        double op = rng.uniform();
        if (op < 0.8) {
            auto out =
                h.access(rng.below(16), addr, rng.chance(0.2), cycle);
            // Data can never be ready before the access begins.
            EXPECT_GT(out.readyAt, cycle);
            if (out.l2Accessed)
                ++l2_accesses;
            // An L1 hit never touches the L2.
            if (out.level == mem::HitLevel::L1)
                EXPECT_FALSE(out.l2Accessed);
        } else if (op < 0.9) {
            h.prefetchL2(rng.below(16), lineAddr(addr), cycle);
        } else {
            h.prefetchL1(rng.below(16), lineAddr(addr), cycle);
        }
    }

    const auto &l2s = h.l2().stats();
    // Every demand L2 access was either a hit or a miss.
    EXPECT_EQ(l2s.demandHits + l2s.demandMisses, l2_accesses);
    // Prefetch hits are a subset of demand hits.
    EXPECT_LE(l2s.prefetchHits, l2s.demandHits);
    // DRAM reads cover at least the LLC demand misses.
    EXPECT_GE(h.dram().stats().reads,
              h.llc().stats().demandMisses);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchyRandomAccesses,
                         ::testing::Values(7u, 21u, 99u));

// ------------------------------------------ Prophet ablation lattice

/** Every feature combination must run cleanly and sanely. */
class ProphetFeatureLattice : public ::testing::TestWithParam<unsigned>
{};

TEST_P(ProphetFeatureLattice, AnyFeatureSubsetIsWellBehaved)
{
    unsigned mask = GetParam();
    core::ProphetConfig cfg;
    cfg.numSets = 64;
    cfg.maxWays = 4;
    cfg.mvbEntries = 256;
    cfg.features.replacement = mask & 1;
    cfg.features.insertion = mask & 2;
    cfg.features.mvb = mask & 4;
    cfg.features.resizing = mask & 8;

    core::OptimizedBinary bin;
    bin.hints.install(1, core::Hint{true, 3});
    bin.hints.install(2, core::Hint{false, 0});
    bin.csr.prophetEnabled = true;
    bin.csr.metadataWays = 2;

    core::ProphetPrefetcher pf(cfg, bin);
    Rng rng(mask + 1);
    std::vector<pf::PrefetchRequest> out;
    std::uint64_t issued = 0;
    for (int i = 0; i < 20000; ++i) {
        out.clear();
        PC pc = rng.below(4);
        Addr line = rng.below(500);
        pf.observe(pc, line, rng.chance(0.5), 0, out);
        issued += out.size();
        for (const auto &req : out) {
            EXPECT_EQ(req.creditPc, pc);
            pf.notifyIssued(req.creditPc);
            if (rng.chance(0.5))
                pf.notifyUseful(req.creditPc);
        }
    }
    // The table respects the (possibly resized) capacity.
    EXPECT_LE(pf.markovTable().size(),
              pf.markovTable().capacityEntries());
    if (cfg.features.resizing)
        EXPECT_EQ(pf.metadataWays(), 2u);
    else
        EXPECT_EQ(pf.metadataWays(), 4u);

    // Profiling counters are internally consistent.
    auto snap = pf.takeSnapshot();
    for (const auto &[pc, prof] : snap.perPc) {
        EXPECT_GE(prof.accuracy, 0.0);
        EXPECT_LE(prof.accuracy, 1.0);
    }
    (void)issued;
}

INSTANTIATE_TEST_SUITE_P(AllSixteen, ProphetFeatureLattice,
                         ::testing::Range(0u, 16u));

// ----------------------------------------- Triangel stability sweep

class TriangelChurn : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(TriangelChurn, ConfidencesStayInRange)
{
    Rng rng(GetParam());
    pf::TriangelConfig cfg;
    cfg.numSets = 64;
    cfg.maxWays = 2;
    cfg.duellerResizing = true;
    cfg.duellerWindow = 4096;
    pf::TriangelPrefetcher tri(cfg);

    std::vector<pf::PrefetchRequest> out;
    for (int i = 0; i < 50000; ++i) {
        out.clear();
        PC pc = rng.below(8);
        Addr line = rng.chance(0.5) ? rng.below(64)
                                    : rng.below(100000);
        tri.observe(pc, line, false, 0, out);
        EXPECT_LE(tri.patternConf(pc), cfg.confMax);
        EXPECT_LE(tri.reuseConf(pc), cfg.confMax);
        EXPECT_LE(tri.metadataWays(), cfg.maxWays);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TriangelChurn,
                         ::testing::Values(11u, 13u, 17u));

} // anonymous namespace
} // namespace prophet
