/**
 * @file
 * Unit tests for the 128-entry hint buffer (Section 4.4).
 */

#include <gtest/gtest.h>

#include "core/hint_buffer.hh"

namespace prophet::core
{
namespace
{

TEST(HintBuffer, InstallAndLookup)
{
    HintBuffer hb(128);
    EXPECT_TRUE(hb.install(0x400, Hint{true, 2}));
    auto h = hb.lookup(0x400);
    ASSERT_TRUE(h.has_value());
    EXPECT_TRUE(h->allowInsert);
    EXPECT_EQ(h->priority, 2);
}

TEST(HintBuffer, MissingPcReturnsNothing)
{
    HintBuffer hb(128);
    EXPECT_FALSE(hb.lookup(0x999).has_value());
}

TEST(HintBuffer, CapacityEnforced)
{
    HintBuffer hb(2);
    EXPECT_TRUE(hb.install(1, {}));
    EXPECT_TRUE(hb.install(2, {}));
    EXPECT_FALSE(hb.install(3, {}));
    EXPECT_EQ(hb.size(), 2u);
    EXPECT_FALSE(hb.lookup(3).has_value());
}

TEST(HintBuffer, ReinstallUpdatesInPlace)
{
    HintBuffer hb(1);
    hb.install(1, Hint{true, 0});
    EXPECT_TRUE(hb.install(1, Hint{false, 3}));
    auto h = hb.lookup(1);
    ASSERT_TRUE(h.has_value());
    EXPECT_FALSE(h->allowInsert);
    EXPECT_EQ(h->priority, 3);
    EXPECT_EQ(hb.size(), 1u);
}

TEST(HintBuffer, ClearEmpties)
{
    HintBuffer hb(8);
    hb.install(1, {});
    hb.clear();
    EXPECT_EQ(hb.size(), 0u);
    EXPECT_TRUE(hb.install(2, {}));
}

TEST(HintBuffer, StorageMatchesPaperQuote)
{
    // 128 entries at 19 bits each ~ 0.19 KB (Section 5.10).
    HintBuffer hb(128);
    double kib = static_cast<double>(hb.storageBits()) / 8.0 / 1024.0;
    EXPECT_NEAR(kib, 0.19, 0.15);
}

TEST(HintBuffer, IterationCoversAllEntries)
{
    HintBuffer hb(16);
    for (PC pc = 0; pc < 5; ++pc)
        hb.install(pc, Hint{true, static_cast<std::uint8_t>(pc % 4)});
    std::size_t n = 0;
    for (const auto &kv : hb) {
        (void)kv;
        ++n;
    }
    EXPECT_EQ(n, 5u);
}

} // anonymous namespace
} // namespace prophet::core
