/**
 * @file
 * End-to-end tests for the experiment driver: a spec run's JSON-sink
 * output must match the equivalent direct Runner calls bit-for-bit
 * (same doubles, same counters), results must be independent of the
 * thread count, and the run must carry its metadata.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "common/error.hh"
#include "common/fault_injection.hh"
#include "driver/driver.hh"
#include "driver/json.hh"
#include "sim/runner.hh"

namespace fs = std::filesystem;

namespace prophet::driver
{
namespace
{

/** Short traces keep the end-to-end runs fast. */
constexpr std::size_t kRecords = 20'000;

ExperimentSpec
smokeSpec(const std::string &json_path)
{
    json::Value doc;
    std::string text =
        "{\"name\": \"e2e\","
        " \"workloads\": [\"mcf\", \"omnetpp\"],"
        " \"pipelines\": [\"baseline\", \"triangel\", \"triage4\"],"
        " \"metrics\": [\"ipc\", \"speedup\", \"traffic\"],"
        " \"records\": " + std::to_string(kRecords) + ","
        " \"trace_cache\": false,"
        " \"sinks\": [{\"type\": \"json\","
        "              \"path\": \"" + json_path + "\"}]}";
    EXPECT_TRUE(json::parse(text, doc, nullptr));
    return ExperimentSpec::fromJson(doc);
}

json::Value
readJson(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    json::Value doc;
    std::string err;
    EXPECT_TRUE(json::parse(buf.str(), doc, &err)) << err;
    return doc;
}

class DriverTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = (fs::temp_directory_path()
               / ("prophet_driver_test_"
                  + std::to_string(::getpid())))
                  .string();
        fs::remove_all(dir);
        fs::create_directories(dir);
    }

    void TearDown() override { fs::remove_all(dir); }

    std::string dir;
};

TEST_F(DriverTest, JsonSinkMatchesDirectRunnerBitForBit)
{
    std::string out_path = dir + "/results.json";
    ExperimentDriver drv(smokeSpec(out_path));
    auto report = drv.run();
    ASSERT_EQ(report.results.size(), 6u);

    auto doc = readJson(out_path);
    const json::Value *results = doc.find("results");
    ASSERT_NE(results, nullptr);
    ASSERT_EQ(results->asArray().size(), 6u);

    // The ground truth: the same experiment spelled out directly
    // against the Runner, no driver involved.
    sim::Runner runner(sim::SystemConfig::table1(), kRecords);
    const std::vector<std::string> workloads{"mcf", "omnetpp"};
    const std::vector<std::string> pipelines{"baseline", "triangel",
                                             "triage4"};
    std::size_t idx = 0;
    for (const auto &w : workloads) {
        for (const auto &p : pipelines) {
            sim::RunStats direct = runner.run(p, w);
            const json::Value &row = results->asArray()[idx++];
            EXPECT_EQ(row.find("workload")->asString(), w);
            EXPECT_EQ(row.find("pipeline")->asString(), p);

            const json::Value *stats = row.find("stats");
            ASSERT_NE(stats, nullptr);
            // Bit-for-bit: the JSON writer's %.17g round-trips the
            // exact double, and counters are exact integers.
            EXPECT_EQ(stats->find("ipc")->asNumber(), direct.ipc)
                << w << "/" << p;
            EXPECT_EQ(stats->find("cycles")->asNumber(),
                      static_cast<double>(direct.cycles));
            EXPECT_EQ(stats->find("instructions")->asNumber(),
                      static_cast<double>(direct.instructions));
            EXPECT_EQ(stats->find("l2_demand_misses")->asNumber(),
                      static_cast<double>(direct.l2DemandMisses));
            EXPECT_EQ(stats->find("dram_reads")->asNumber(),
                      static_cast<double>(direct.dramReads));
            EXPECT_EQ(stats->find("dram_writes")->asNumber(),
                      static_cast<double>(direct.dramWrites));
            EXPECT_EQ(
                stats->find("l2_prefetches_issued")->asNumber(),
                static_cast<double>(direct.l2PrefetchesIssued));

            const json::Value *metrics = row.find("metrics");
            ASSERT_NE(metrics, nullptr);
            EXPECT_EQ(metrics->find("ipc")->asNumber(), direct.ipc);
            EXPECT_EQ(metrics->find("speedup")->asNumber(),
                      runner.speedup(w, direct));
            EXPECT_EQ(metrics->find("traffic")->asNumber(),
                      runner.trafficNorm(w, direct));
        }
    }

    // Run metadata rides along.
    EXPECT_EQ(doc.find("experiment")->asString(), "e2e");
    EXPECT_EQ(doc.find("records")->asNumber(),
              static_cast<double>(kRecords));
    EXPECT_EQ(doc.find("threads")->asNumber(), 1.0);
    EXPECT_FALSE(doc.find("timestamp")->asString().empty());
    EXPECT_GE(doc.find("wall_seconds")->asNumber(), 0.0);
    // The archived hash identifies the results: the effective record
    // count is included, result-irrelevant fields (threads, sinks,
    // trace-cache switch, name) are not.
    char expect_hash[24];
    std::snprintf(expect_hash, sizeof(expect_hash), "%016llx",
                  static_cast<unsigned long long>(
                      smokeSpec(out_path).resultHash(kRecords)));
    EXPECT_EQ(doc.find("spec_hash")->asString(), expect_hash);
    auto variant = smokeSpec(out_path);
    variant.threads = 7;
    variant.name = "renamed";
    variant.sinks.clear();
    EXPECT_EQ(variant.resultHash(kRecords),
              smokeSpec(out_path).resultHash(kRecords));
    EXPECT_NE(smokeSpec(out_path).resultHash(kRecords + 1),
              smokeSpec(out_path).resultHash(kRecords));
}

TEST_F(DriverTest, ResultsIndependentOfThreadCount)
{
    std::string p1 = dir + "/t1.json", p4 = dir + "/t4.json";
    DriverOptions o1, o4;
    o1.threads = 1;
    o4.threads = 4;
    ExperimentDriver d1(smokeSpec(p1), o1);
    ExperimentDriver d4(smokeSpec(p4), o4);
    auto r1 = d1.run();
    auto r4 = d4.run();
    ASSERT_EQ(r1.results.size(), r4.results.size());
    for (std::size_t i = 0; i < r1.results.size(); ++i) {
        EXPECT_EQ(r1.results[i].workload, r4.results[i].workload);
        EXPECT_EQ(r1.results[i].pipeline, r4.results[i].pipeline);
        EXPECT_EQ(r1.results[i].stats.ipc, r4.results[i].stats.ipc);
        EXPECT_EQ(r1.results[i].stats.cycles,
                  r4.results[i].stats.cycles);
        EXPECT_EQ(r1.results[i].stats.dramReads,
                  r4.results[i].stats.dramReads);
        ASSERT_EQ(r1.results[i].metrics.size(),
                  r4.results[i].metrics.size());
        for (std::size_t m = 0; m < r1.results[i].metrics.size();
             ++m)
            EXPECT_EQ(r1.results[i].metrics[m].second,
                      r4.results[i].metrics[m].second);
    }
}

TEST_F(DriverTest, TraceCacheDoesNotChangeResults)
{
    std::string pa = dir + "/a.json", pb = dir + "/b.json";
    auto spec_a = smokeSpec(pa);
    auto spec_b = smokeSpec(pb);
    spec_b.traceCache = true;

    DriverOptions opts;
    opts.traceCacheDir = dir + "/cache";
    ExperimentDriver plain(spec_a);
    ExperimentDriver cold(spec_b, opts);
    auto r_plain = plain.run();
    auto r_cold = cold.run();
    EXPECT_GT(r_cold.meta.traceCacheMisses, 0u);

    // Second cached run: all hits, same numbers.
    auto spec_warm = smokeSpec(pb);
    spec_warm.traceCache = true;
    ExperimentDriver warm(std::move(spec_warm), opts);
    auto r_warm = warm.run();
    EXPECT_EQ(r_warm.meta.traceCacheHits, 2u);
    EXPECT_EQ(r_warm.meta.traceCacheMisses, 0u);

    ASSERT_EQ(r_plain.results.size(), r_warm.results.size());
    for (std::size_t i = 0; i < r_plain.results.size(); ++i) {
        EXPECT_EQ(r_plain.results[i].stats.ipc,
                  r_warm.results[i].stats.ipc);
        EXPECT_EQ(r_plain.results[i].stats.cycles,
                  r_warm.results[i].stats.cycles);
        EXPECT_EQ(r_cold.results[i].stats.cycles,
                  r_warm.results[i].stats.cycles);
    }
}

TEST_F(DriverTest, UnwritableSinkIsReportedNotSilent)
{
    auto spec = smokeSpec(dir + "/no/such/directory/out.json");
    ExperimentDriver drv(std::move(spec));
    auto report = drv.run();
    EXPECT_FALSE(report.sinksOk);
    EXPECT_EQ(report.results.size(), 6u); // results still computed
}

TEST_F(DriverTest, CsvSinkWritesOneRowPerJob)
{
    std::string csv_path = dir + "/out.csv";
    auto spec = smokeSpec(dir + "/unused.json");
    spec.sinks.clear();
    SinkSpec csv;
    csv.kind = SinkSpec::Kind::CsvFile;
    csv.path = csv_path;
    spec.sinks.push_back(csv);

    ExperimentDriver drv(std::move(spec));
    drv.run();

    std::ifstream in(csv_path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 7u); // header + 6 jobs
    EXPECT_EQ(lines[0].rfind("workload,pipeline,ipc,speedup,traffic,"
                             "stats_ipc",
                             0),
              0u);
    EXPECT_EQ(lines[1].rfind("mcf,baseline,", 0), 0u);
    EXPECT_EQ(lines[6].rfind("omnetpp,triage4,", 0), 0u);
}

TEST_F(DriverTest, KeepGoingIsolatesAnInjectedJobFailure)
{
    std::string out_path = dir + "/partial.json";
    auto spec = smokeSpec(out_path);
    spec.keepGoing = true;

    fault::reset();
    fault::arm("job.mcf/triangel", 1); // every attempt, one job
    ExperimentDriver drv(std::move(spec));
    EXPECT_TRUE(drv.keepGoingEnabled());
    auto report = drv.run();
    fault::reset();

    // The sibling jobs all completed with full metrics; only the
    // injected one carries an error instead of stats.
    ASSERT_EQ(report.results.size(), 6u);
    EXPECT_EQ(report.failedJobs, 1u);
    EXPECT_FALSE(report.ok());
    for (const auto &r : report.results) {
        if (r.workload == "mcf" && r.pipeline == "triangel") {
            EXPECT_FALSE(r.ok);
            EXPECT_EQ(r.errorCode, ErrorCode::FaultInjected);
            EXPECT_NE(r.errorMessage.find("injected job failure"),
                      std::string::npos);
            EXPECT_TRUE(r.metrics.empty());
            // FaultInjected is permanent: no retry burned.
            EXPECT_EQ(r.attempts, 1u);
        } else {
            EXPECT_TRUE(r.ok) << r.workload << "/" << r.pipeline;
            EXPECT_EQ(r.metrics.size(), 3u);
            EXPECT_GT(r.stats.ipc, 0.0);
        }
    }

    // The JSON sink renders the partial run: a failed_jobs count at
    // the root and an error object on exactly the failed row.
    auto doc = readJson(out_path);
    EXPECT_EQ(doc.find("failed_jobs")->asNumber(), 1.0);
    const auto &rows = doc.find("results")->asArray();
    ASSERT_EQ(rows.size(), 6u);
    std::size_t errored = 0;
    for (const auto &row : rows) {
        const json::Value *err = row.find("error");
        if (!err)
            continue;
        ++errored;
        EXPECT_EQ(row.find("workload")->asString(), "mcf");
        EXPECT_EQ(row.find("pipeline")->asString(), "triangel");
        EXPECT_EQ(err->find("code")->asString(), "fault-injected");
        EXPECT_EQ(err->find("attempts")->asNumber(), 1.0);
    }
    EXPECT_EQ(errored, 1u);
}

TEST_F(DriverTest, TransientFailureIsRetriedToSuccess)
{
    std::string out_path = dir + "/retry.json";
    auto spec = smokeSpec(out_path);
    spec.keepGoing = true;
    DriverOptions opts;
    opts.retryBackoffMs = 0; // keep the test fast

    // Reference run, no faults.
    auto ref_spec = smokeSpec(dir + "/ref.json");
    ExperimentDriver ref_drv(std::move(ref_spec));
    auto ref = ref_drv.run();

    fault::reset();
    // Fires exactly once: the first attempt fails with a transient
    // class, the driver's bounded retry clears it.
    fault::arm("job-transient.mcf/baseline", 1, 1);
    ExperimentDriver drv(std::move(spec), opts);
    auto report = drv.run();
    fault::reset();

    EXPECT_EQ(report.failedJobs, 0u);
    ASSERT_EQ(report.results.size(), ref.results.size());
    for (std::size_t i = 0; i < report.results.size(); ++i) {
        const JobResult &r = report.results[i];
        EXPECT_TRUE(r.ok);
        // The retried job reports its attempt count; the result is
        // bit-identical to the unfaulted run.
        bool retried =
            r.workload == "mcf" && r.pipeline == "baseline";
        EXPECT_EQ(r.attempts, retried ? 2u : 1u)
            << r.workload << "/" << r.pipeline;
        EXPECT_EQ(r.stats.ipc, ref.results[i].stats.ipc);
        EXPECT_EQ(r.stats.cycles, ref.results[i].stats.cycles);
    }
}

TEST_F(DriverTest, FailFastSkipsTheRemainingJobs)
{
    std::string out_path = dir + "/failfast.json";
    auto spec = smokeSpec(out_path); // keepGoing defaults to false

    fault::reset();
    fault::arm("job.mcf/baseline", 1); // the very first job
    ExperimentDriver drv(std::move(spec));
    EXPECT_FALSE(drv.keepGoingEnabled());
    auto report = drv.run();
    fault::reset();

    // Single-threaded fail-fast: the first job fails, everything
    // after it is skipped with a Cancelled marker, and every slot
    // still carries its (workload, pipeline) identity for the table.
    ASSERT_EQ(report.results.size(), 6u);
    EXPECT_EQ(report.failedJobs, 6u);
    EXPECT_EQ(report.results[0].errorCode, ErrorCode::FaultInjected);
    for (std::size_t i = 1; i < report.results.size(); ++i) {
        const JobResult &r = report.results[i];
        EXPECT_FALSE(r.ok);
        EXPECT_EQ(r.errorCode, ErrorCode::Cancelled);
        EXPECT_FALSE(r.workload.empty());
        EXPECT_FALSE(r.pipeline.empty());
    }
}

TEST_F(DriverTest, MetricsOutWritesReportAndResetsBetweenRuns)
{
    std::string out_path = dir + "/results.json";
    std::string metrics_path = dir + "/metrics.json";

    DriverOptions opts;
    opts.metricsOut = metrics_path;
    {
        ExperimentDriver drv(smokeSpec(out_path), opts);
        auto report = drv.run();
        EXPECT_TRUE(report.ok());
    }
    auto first = readJson(metrics_path);

    // Required report sections.
    for (const char *key :
         {"phases", "counters", "histograms", "jobs",
          "peak_rss_bytes", "thread_pool", "wall_seconds"})
        EXPECT_NE(first.find(key), nullptr) << key;

    // Six jobs, each with its timing fields.
    const json::Value *jobs = first.find("jobs");
    ASSERT_NE(jobs, nullptr);
    ASSERT_EQ(jobs->asArray().size(), 6u);
    for (const auto &j : jobs->asArray()) {
        EXPECT_TRUE(j.find("ok")->asBool());
        EXPECT_GT(j.find("seconds")->asNumber(), 0.0);
        EXPECT_GT(j.find("records")->asNumber(), 0.0);
    }

    // The phase split covers trace loading and simulation.
    const json::Value *phases = first.find("phases");
    ASSERT_NE(phases, nullptr);
    for (const char *p : {"trace_load", "warmup", "simulate"}) {
        const json::Value *ph = phases->find(p);
        ASSERT_NE(ph, nullptr) << p;
        EXPECT_GT(ph->find("seconds")->asNumber(), 0.0) << p;
        EXPECT_GT(ph->find("count")->asNumber(), 0.0) << p;
    }

    double first_records =
        first.find("counters")->find("sim.records")->asNumber();
    EXPECT_GT(first_records, 0.0);

    // A second driver run resets the registry: its report counts
    // only its own work, not the accumulated total of both runs.
    {
        ExperimentDriver drv(smokeSpec(out_path), opts);
        auto report = drv.run();
        EXPECT_TRUE(report.ok());
    }
    auto second = readJson(metrics_path);
    EXPECT_EQ(
        second.find("counters")->find("sim.records")->asNumber(),
        first_records);
}

} // anonymous namespace
} // namespace prophet::driver
