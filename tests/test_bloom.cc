/**
 * @file
 * Unit tests for the counting Bloom filter behind Triage's resizing.
 */

#include <gtest/gtest.h>

#include "prefetch/bloom.hh"

namespace prophet::pf
{
namespace
{

TEST(Bloom, NoFalseNegatives)
{
    BloomFilter b(1 << 12, 4);
    for (std::uint64_t k = 0; k < 500; ++k)
        b.insert(k * 977 + 13);
    for (std::uint64_t k = 0; k < 500; ++k)
        EXPECT_TRUE(b.mayContain(k * 977 + 13));
}

TEST(Bloom, MostlyRejectsAbsentKeys)
{
    BloomFilter b(1 << 14, 4);
    for (std::uint64_t k = 0; k < 1000; ++k)
        b.insert(k);
    int false_pos = 0;
    for (std::uint64_t k = 1'000'000; k < 1'010'000; ++k)
        if (b.mayContain(k))
            ++false_pos;
    EXPECT_LT(false_pos, 200); // < 2%
}

TEST(Bloom, CardinalityEstimateAccurate)
{
    BloomFilter b(1 << 16, 4);
    for (std::uint64_t k = 0; k < 20000; ++k)
        b.insert(k * 2654435761ULL);
    double est = b.estimateCardinality();
    EXPECT_NEAR(est, 20000.0, 20000.0 * 0.05);
}

TEST(Bloom, EstimateIgnoresDuplicates)
{
    BloomFilter b(1 << 14, 4);
    for (int rep = 0; rep < 10; ++rep)
        for (std::uint64_t k = 0; k < 100; ++k)
            if (!b.mayContain(k))
                b.insert(k);
    EXPECT_NEAR(b.estimateCardinality(), 100.0, 15.0);
}

TEST(Bloom, RemoveRestoresAbsence)
{
    BloomFilter b(1 << 12, 4);
    b.insert(42);
    EXPECT_TRUE(b.mayContain(42));
    b.remove(42);
    EXPECT_FALSE(b.mayContain(42));
}

TEST(Bloom, ClearEmptiesFilter)
{
    BloomFilter b(1 << 12, 4);
    for (std::uint64_t k = 0; k < 100; ++k)
        b.insert(k);
    b.clear();
    EXPECT_DOUBLE_EQ(b.estimateCardinality(), 0.0);
    EXPECT_FALSE(b.mayContain(5));
}

TEST(Bloom, StorageBitsMatchGeometry)
{
    BloomFilter b(1 << 18, 4);
    // 2^18 counters x 4 bits: the >200 KB the paper cites for
    // tracking ~200K entries (Section 2.1.3).
    EXPECT_EQ(b.storageBits(), (1ull << 18) * 4);
    EXPECT_GT(b.storageBits() / 8 / 1024, 100u); // > 100 KB
}

} // anonymous namespace
} // namespace prophet::pf
