/**
 * @file
 * Integration tests for the experiment runner: the Prophet pipeline
 * (profile -> analyze -> run), the RPG2 pipeline, learning across
 * gcc inputs, and the normalization helpers every figure uses.
 *
 * These are the repository's end-to-end checks that the paper's
 * headline orderings emerge from the mechanisms.
 */

#include <gtest/gtest.h>

#include "sim/runner.hh"

namespace prophet::sim
{
namespace
{

/**
 * Full-length traces: mcf's chase ring needs multiple traversals to
 * train, so shortening below the workload default changes behaviour.
 */
constexpr std::size_t kRecords = 0; // workload default


TEST(Runner, BaselineIsCachedAndStable)
{
    Runner r(SystemConfig::table1(), kRecords);
    const auto &a = r.baseline("sphinx3");
    const auto &b = r.baseline("sphinx3");
    EXPECT_EQ(&a, &b);
    EXPECT_GT(a.ipc, 0.0);
}

TEST(Runner, SpeedupOfBaselineIsOne)
{
    Runner r(SystemConfig::table1(), kRecords);
    const auto &b = r.baseline("sphinx3");
    EXPECT_DOUBLE_EQ(r.speedup("sphinx3", b), 1.0);
    EXPECT_DOUBLE_EQ(r.trafficNorm("sphinx3", b), 1.0);
    EXPECT_DOUBLE_EQ(r.coverage("sphinx3", b), 0.0);
}

TEST(Runner, TriangelBeatsBaselineOnTemporalWorkload)
{
    Runner r(SystemConfig::table1(), kRecords);
    auto tri = r.run("triangel", "mcf");
    EXPECT_GT(r.speedup("mcf", tri), 1.05);
    EXPECT_GT(r.coverage("mcf", tri), 0.05);
}

TEST(Runner, ProphetPipelineProducesHintsAndWins)
{
    Runner r(SystemConfig::table1(), kRecords);
    auto out = r.runProphet("mcf");
    EXPECT_GT(out.binary.hints.size(), 0u);
    EXPECT_TRUE(out.binary.csr.prophetEnabled);
    EXPECT_GT(r.speedup("mcf", out.stats), 1.1);

    auto tri = r.run("triangel", "mcf");
    // The paper's headline: Prophet outperforms Triangel.
    EXPECT_GT(out.stats.ipc, tri.ipc);
}

TEST(Runner, ProphetResizesSmallFootprintWorkload)
{
    Runner r(SystemConfig::table1(), kRecords);
    auto out = r.runProphet("sphinx3");
    // sphinx3's temporal working set is far below 1 MB: profile-
    // guided resizing allocates fewer than the maximum ways.
    EXPECT_LT(out.binary.csr.metadataWays, 8u);
    EXPECT_GT(r.speedup("sphinx3", out.stats), 1.0);
}

TEST(Runner, Rpg2FindsNoKernelsOnPointerChasing)
{
    Runner r(SystemConfig::table1(), kRecords);
    auto out = r.runRpg2("mcf");
    // mcf's kernels are computed, not strides (Section 5.2): RPG2
    // inserts nothing and performance equals the baseline.
    EXPECT_TRUE(out.kernels.empty());
    EXPECT_DOUBLE_EQ(out.stats.ipc, r.baseline("mcf").ipc);
}

TEST(Runner, Rpg2WorksOnGraphWorkloads)
{
    Runner r(SystemConfig::table1(), kRecords);
    auto out = r.runRpg2("sssp_100000_5");
    ASSERT_FALSE(out.kernels.empty());
    EXPECT_GT(out.tunedDistance, 0);
    // CRONO-like kernels are RPG2's strength (Section 5.5).
    EXPECT_GT(r.speedup("sssp_100000_5", out.stats), 1.02);
}

TEST(Runner, LearningImprovesUnseenInput)
{
    // Figure 13's mechanism in miniature: hints learned from
    // gcc_166 alone are sub-optimal for gcc_typeck; after learning
    // typeck's counters, performance improves.
    Runner r(SystemConfig::table1(), kRecords);

    core::Learner learner;
    learner.learn(r.profileWorkload("gcc_166"));
    core::Analyzer analyzer;
    auto bin_166 = analyzer.analyze(learner.merged());
    auto on_typeck_before =
        r.runProphetWithBinary("gcc_typeck", bin_166);

    learner.learn(r.profileWorkload("gcc_typeck"));
    auto bin_both = analyzer.analyze(learner.merged());
    auto on_typeck_after =
        r.runProphetWithBinary("gcc_typeck", bin_both);

    EXPECT_GE(on_typeck_after.ipc, on_typeck_before.ipc * 0.98);

    // And the "Direct" target: profiling typeck alone.
    auto direct = r.runProphet("gcc_typeck");
    EXPECT_GE(on_typeck_after.ipc, direct.stats.ipc * 0.9);
}

TEST(Runner, AblationFeatureOrderingOnMcf)
{
    // Figure 19's skeleton: the full feature set beats the bare
    // Triage4+metadata baseline.
    Runner r(SystemConfig::table1(), kRecords);

    core::ProphetConfig bare;
    bare.features = core::ProphetFeatures{false, false, false, false};
    auto baseline = r.runProphetWithBinary(
        "mcf", core::OptimizedBinary{}, bare);

    auto full = r.runProphet("mcf");
    EXPECT_GT(full.stats.ipc, baseline.ipc * 0.98);
}

TEST(Runner, TrafficNormAboveOneWithPrefetching)
{
    Runner r(SystemConfig::table1(), kRecords);
    auto tri = r.run("triangel", "omnetpp");
    // Prefetching trades DRAM traffic for latency (Figure 11).
    EXPECT_GE(r.trafficNorm("omnetpp", tri), 0.99);
}

} // anonymous namespace
} // namespace prophet::sim
