/**
 * @file
 * Tests for the on-disk trace cache: a hit must reproduce the fresh
 * generation record-for-record, corrupt or truncated entries must
 * fall back to regeneration (and be repaired), and the Runner
 * integration must leave simulation results bit-identical with the
 * cache on, off, cold, or poisoned.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "common/fault_injection.hh"
#include "sim/runner.hh"
#include "trace/trace_cache.hh"
#include "trace/trace_io.hh"
#include "workloads/registry.hh"

namespace fs = std::filesystem;

namespace prophet::trace
{
namespace
{

/** Short traces keep these tests fast. */
constexpr std::size_t kRecords = 20'000;

class TraceCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = (fs::temp_directory_path()
               / ("prophet_cache_test_"
                  + std::to_string(::getpid())))
                  .string();
        fs::remove_all(dir);
    }

    void TearDown() override { fs::remove_all(dir); }

    std::string dir;
};

void
expectTraceEq(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].pc, b[i].pc) << "record " << i;
        ASSERT_EQ(a[i].addr, b[i].addr) << "record " << i;
        ASSERT_EQ(a[i].instGap, b[i].instGap) << "record " << i;
        ASSERT_EQ(a[i].dependsOnPrev, b[i].dependsOnPrev);
        ASSERT_EQ(a[i].isWrite, b[i].isWrite);
    }
    EXPECT_EQ(a.totalInstructions(), b.totalInstructions());
}

TEST_F(TraceCacheTest, HitReproducesFreshGenerationExactly)
{
    Trace fresh =
        workloads::makeWorkload("mcf", kRecords)->generate();

    TraceCache cache(dir);
    ASSERT_TRUE(cache.store("mcf", kRecords, fresh));
    Trace loaded;
    ASSERT_TRUE(cache.load("mcf", kRecords, loaded));
    expectTraceEq(fresh, loaded);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().stores, 1u);
}

TEST_F(TraceCacheTest, MissOnEmptyAndDistinctKeys)
{
    TraceCache cache(dir);
    Trace out;
    EXPECT_FALSE(cache.load("mcf", kRecords, out));
    EXPECT_EQ(cache.stats().misses, 1u);

    // Same workload, different record override: a different key.
    Trace fresh =
        workloads::makeWorkload("mcf", kRecords)->generate();
    ASSERT_TRUE(cache.store("mcf", kRecords, fresh));
    EXPECT_FALSE(cache.load("mcf", kRecords + 1, out));
    EXPECT_NE(cache.path("mcf", kRecords),
              cache.path("mcf", kRecords + 1));
}

TEST_F(TraceCacheTest, CorruptFileFallsBackToRegeneration)
{
    Trace fresh =
        workloads::makeWorkload("mcf", kRecords)->generate();
    TraceCache cache(dir);
    ASSERT_TRUE(cache.store("mcf", kRecords, fresh));

    // Stomp the file with garbage: load must fail cleanly.
    {
        std::ofstream f(cache.path("mcf", kRecords),
                        std::ios::binary | std::ios::trunc);
        f << "this is not a trace";
    }
    Trace out;
    EXPECT_FALSE(cache.load("mcf", kRecords, out));
    EXPECT_TRUE(out.empty());

    // Re-store repairs the entry.
    ASSERT_TRUE(cache.store("mcf", kRecords, fresh));
    ASSERT_TRUE(cache.load("mcf", kRecords, out));
    expectTraceEq(fresh, out);
}

TEST_F(TraceCacheTest, CorruptCountFieldFallsBackCleanly)
{
    Trace fresh =
        workloads::makeWorkload("mcf", kRecords)->generate();
    TraceCache cache(dir);
    ASSERT_TRUE(cache.store("mcf", kRecords, fresh));

    // Valid magic/version but an absurd record count: the loader
    // must reject it against the payload size, not reserve() it.
    auto path = cache.path("mcf", kRecords);
    {
        std::fstream f(path,
                       std::ios::binary | std::ios::in
                           | std::ios::out);
        f.seekp(8); // past 4-byte magic + 4-byte version
        std::uint64_t absurd = ~std::uint64_t{0} >> 3;
        f.write(reinterpret_cast<const char *>(&absurd),
                sizeof(absurd));
    }
    Trace out;
    EXPECT_FALSE(cache.load("mcf", kRecords, out));
    EXPECT_TRUE(out.empty());
}

TEST_F(TraceCacheTest, TruncatedFileFallsBackToRegeneration)
{
    Trace fresh =
        workloads::makeWorkload("mcf", kRecords)->generate();
    TraceCache cache(dir);
    ASSERT_TRUE(cache.store("mcf", kRecords, fresh));

    auto path = cache.path("mcf", kRecords);
    auto full = fs::file_size(path);
    fs::resize_file(path, full / 2);

    Trace out;
    EXPECT_FALSE(cache.load("mcf", kRecords, out));
    EXPECT_TRUE(out.empty());
}

TEST_F(TraceCacheTest, StoresWriteTheV3ChecksummedFormat)
{
    Trace fresh =
        workloads::makeWorkload("mcf", kRecords)->generate();
    TraceCache cache(dir);
    ASSERT_TRUE(cache.store("mcf", kRecords, fresh));

    std::uint32_t version = 0;
    Trace loaded;
    ASSERT_TRUE(loadBinary(loaded, cache.path("mcf", kRecords),
                           &version));
    EXPECT_EQ(version, kTraceFormatV3);
    expectTraceEq(fresh, loaded);
    auto entries = cache.entries();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].version, kTraceFormatV3);
}

TEST_F(TraceCacheTest, V1EntryLoadsAndIsUpgradedInPlace)
{
    Trace fresh =
        workloads::makeWorkload("mcf", kRecords)->generate();
    TraceCache cache(dir);
    // Fabricate a legacy cache directory: one v1 entry under the
    // current key.
    fs::create_directories(dir);
    ASSERT_TRUE(saveBinaryV1(fresh, cache.path("mcf", kRecords)));
    ASSERT_EQ(cache.entries().at(0).version, kTraceFormatV1);

    // The v1 fallback serves the hit...
    Trace out;
    ASSERT_TRUE(cache.load("mcf", kRecords, out));
    expectTraceEq(fresh, out);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().upgrades, 1u);
    // A repair rewrite is not a caller-visible store.
    EXPECT_EQ(cache.stats().stores, 0u);

    // ...and repairs the entry to the current checksummed format,
    // byte-compatible with a fresh store.
    ASSERT_EQ(cache.entries().at(0).version, kTraceFormatV3);
    Trace again;
    ASSERT_TRUE(cache.load("mcf", kRecords, again));
    expectTraceEq(fresh, again);
    EXPECT_EQ(cache.stats().upgrades, 1u);
}

TEST_F(TraceCacheTest, V2EntryLoadsAndIsUpgradedInPlace)
{
    Trace fresh =
        workloads::makeWorkload("mcf", kRecords)->generate();
    TraceCache cache(dir);
    fs::create_directories(dir);
    ASSERT_TRUE(saveBinaryV2(fresh, cache.path("mcf", kRecords)));
    ASSERT_EQ(cache.entries().at(0).version, kTraceFormatV2);

    Trace out;
    ASSERT_TRUE(cache.load("mcf", kRecords, out));
    expectTraceEq(fresh, out);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().upgrades, 1u);
    ASSERT_EQ(cache.entries().at(0).version, kTraceFormatV3);
}

TEST_F(TraceCacheTest, BitFlippedEntryIsQuarantinedThenRegenerated)
{
    Trace fresh =
        workloads::makeWorkload("mcf", kRecords)->generate();
    TraceCache cache(dir);
    ASSERT_TRUE(cache.store("mcf", kRecords, fresh));

    // Flip one payload bit past the header + checksum block. Only
    // the per-array checksum can catch this: the header is intact
    // and the size is exactly right.
    auto path = cache.path("mcf", kRecords);
    {
        std::fstream f(path,
                       std::ios::binary | std::ios::in
                           | std::ios::out);
        f.seekg(16 + 24 + 100);
        char c = 0;
        f.get(c);
        f.seekp(16 + 24 + 100);
        f.put(static_cast<char>(c ^ 0x04));
    }

    // The damaged entry is a miss, counted and quarantined: the bad
    // bytes survive as "<entry>.corrupt" for inspection.
    Trace out;
    EXPECT_FALSE(cache.load("mcf", kRecords, out));
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(cache.stats().checksumFailures, 1u);
    EXPECT_EQ(cache.stats().quarantines, 1u);
    EXPECT_FALSE(fs::exists(path));
    auto q = cache.quarantined();
    ASSERT_EQ(q.size(), 1u);
    EXPECT_EQ(q[0].file,
              fs::path(path).filename().string() + ".corrupt");
    EXPECT_TRUE(cache.entries().empty());

    // The persistent counters recorded the event durably.
    auto pc = cache.persistentCounters();
    EXPECT_EQ(pc.checksumFailures, 1u);
    EXPECT_EQ(pc.quarantines, 1u);

    // Regeneration stores a good entry under the original name and
    // serves it; the quarantined evidence is untouched.
    ASSERT_TRUE(cache.store("mcf", kRecords, fresh));
    ASSERT_TRUE(cache.load("mcf", kRecords, out));
    expectTraceEq(fresh, out);
    EXPECT_EQ(cache.quarantined().size(), 1u);
}

TEST_F(TraceCacheTest, FailedStoreLeavesNoPartialEntry)
{
    Trace fresh =
        workloads::makeWorkload("mcf", kRecords)->generate();
    TraceCache cache(dir);

    // Simulated ENOSPC mid-payload: the store fails, and neither the
    // final name nor any temp file survives in the directory.
    fault::reset();
    fault::arm("trace_io.fwrite", 1, 1);
    EXPECT_FALSE(cache.store("mcf", kRecords, fresh));
    fault::reset();
    EXPECT_EQ(cache.stats().storeFailures, 1u);
    EXPECT_EQ(cache.stats().stores, 0u);
    EXPECT_FALSE(fs::exists(cache.path("mcf", kRecords)));
    std::size_t files = 0;
    for ([[maybe_unused]] const auto &e : fs::directory_iterator(dir))
        if (e.path().filename().string().find(".ptrc")
            != std::string::npos)
            ++files;
    EXPECT_EQ(files, 0u);
    EXPECT_EQ(cache.persistentCounters().storeFailures, 1u);

    // The whole-store fault point behaves the same way.
    fault::arm("cache.store", 1, 1);
    EXPECT_FALSE(cache.store("mcf", kRecords, fresh));
    fault::reset();
    EXPECT_EQ(cache.stats().storeFailures, 2u);
    EXPECT_FALSE(fs::exists(cache.path("mcf", kRecords)));

    // Once the fault clears, the store goes through.
    ASSERT_TRUE(cache.store("mcf", kRecords, fresh));
    Trace out;
    ASSERT_TRUE(cache.load("mcf", kRecords, out));
    expectTraceEq(fresh, out);
}

TEST_F(TraceCacheTest, PersistentCountersAccumulateAcrossInstances)
{
    Trace fresh =
        workloads::makeWorkload("mcf", kRecords)->generate();
    {
        TraceCache cache(dir);
        fault::reset();
        fault::arm("cache.store", 1, 1);
        EXPECT_FALSE(cache.store("mcf", kRecords, fresh));
        fault::reset();
    }
    // A fresh instance on the same directory sees the durable count;
    // its in-memory counters start at zero.
    TraceCache cache(dir);
    EXPECT_EQ(cache.stats().storeFailures, 0u);
    EXPECT_EQ(cache.persistentCounters().storeFailures, 1u);
}

TEST_F(TraceCacheTest, TruncatedV2EntryFallsBackAndRepairs)
{
    Trace fresh =
        workloads::makeWorkload("mcf", kRecords)->generate();
    TraceCache cache(dir);
    ASSERT_TRUE(cache.store("mcf", kRecords, fresh));

    // Truncate inside the bulk arrays: the header still promises
    // kRecords, so the load must fail cleanly, not return a short
    // trace.
    auto path = cache.path("mcf", kRecords);
    fs::resize_file(path, fs::file_size(path) - 6);
    Trace out;
    EXPECT_FALSE(cache.load("mcf", kRecords, out));
    EXPECT_TRUE(out.empty());

    // The regenerate-and-store path repairs it.
    ASSERT_TRUE(cache.store("mcf", kRecords, fresh));
    ASSERT_TRUE(cache.load("mcf", kRecords, out));
    expectTraceEq(fresh, out);
}

TEST_F(TraceCacheTest, ClearAndEntries)
{
    Trace fresh =
        workloads::makeWorkload("mcf", kRecords)->generate();
    TraceCache cache(dir);
    ASSERT_TRUE(cache.store("mcf", kRecords, fresh));
    ASSERT_TRUE(cache.store("omnetpp", kRecords, fresh));

    auto entries = cache.entries();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].file,
              "mcf-r20000.g"
                  + std::to_string(kGeneratorSchemaVersion)
                  + ".ptrc");
    EXPECT_GT(entries[0].bytes, 0u);

    EXPECT_EQ(cache.clear(), 2u);
    EXPECT_TRUE(cache.entries().empty());
    EXPECT_EQ(cache.clear(), 0u);
}

TEST_F(TraceCacheTest, RunnerResultsIdenticalColdWarmAndPoisoned)
{
    // Reference: no cache at all.
    sim::Runner plain(sim::SystemConfig::table1(), kRecords);
    sim::RunStats ref = plain.run("triangel", "mcf");

    auto cache = std::make_shared<TraceCache>(dir);

    // Cold: generates and stores.
    {
        sim::Runner r(sim::SystemConfig::table1(), kRecords);
        r.setTraceCache(cache);
        sim::RunStats s = r.run("triangel", "mcf");
        EXPECT_EQ(s.ipc, ref.ipc);
        EXPECT_EQ(s.cycles, ref.cycles);
        EXPECT_EQ(s.l2DemandMisses, ref.l2DemandMisses);
    }
    EXPECT_EQ(cache->stats().stores, 1u);

    // Warm: loads from disk, bit-identical stats.
    {
        sim::Runner r(sim::SystemConfig::table1(), kRecords);
        r.setTraceCache(cache);
        sim::RunStats s = r.run("triangel", "mcf");
        EXPECT_EQ(s.ipc, ref.ipc);
        EXPECT_EQ(s.cycles, ref.cycles);
        EXPECT_EQ(s.l2DemandMisses, ref.l2DemandMisses);
    }
    EXPECT_EQ(cache->stats().hits, 1u);

    // Poisoned: truncate the entry; the Runner regenerates and the
    // repaired cache serves identical results again.
    auto path = cache->path("mcf", kRecords);
    fs::resize_file(path, fs::file_size(path) / 3);
    {
        sim::Runner r(sim::SystemConfig::table1(), kRecords);
        r.setTraceCache(cache);
        sim::RunStats s = r.run("triangel", "mcf");
        EXPECT_EQ(s.ipc, ref.ipc);
        EXPECT_EQ(s.cycles, ref.cycles);
    }
    EXPECT_EQ(cache->stats().stores, 2u);
    {
        Trace repaired;
        ASSERT_TRUE(cache->load("mcf", kRecords, repaired));
        Trace fresh =
            workloads::makeWorkload("mcf", kRecords)->generate();
        expectTraceEq(fresh, repaired);
    }

    // The RPG2 resolver still works on a cache hit (the generator is
    // constructed even when generate() is skipped).
    {
        sim::Runner r(sim::SystemConfig::table1(), kRecords);
        r.setTraceCache(cache);
        sim::RunStats rpg2 = r.runRpg2("mcf").stats;
        sim::RunStats rpg2_ref = plain.runRpg2("mcf").stats;
        EXPECT_EQ(rpg2.ipc, rpg2_ref.ipc);
        EXPECT_EQ(rpg2.cycles, rpg2_ref.cycles);
    }
}

} // anonymous namespace
} // namespace prophet::trace
