/**
 * @file
 * Unit and property tests for the replacement policies backing the
 * caches and the metadata table.
 */

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "mem/replacement.hh"

namespace prophet::mem
{
namespace
{

std::vector<unsigned>
allWays(unsigned assoc)
{
    std::vector<unsigned> v(assoc);
    std::iota(v.begin(), v.end(), 0u);
    return v;
}

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruPolicy lru;
    lru.reset(1, 4);
    for (unsigned w = 0; w < 4; ++w)
        lru.insert(0, w);
    lru.touch(0, 0); // way 0 is now MRU; way 1 is LRU
    EXPECT_EQ(lru.victim(0, allWays(4)), 1u);
}

TEST(Lru, RespectsCandidateRestriction)
{
    LruPolicy lru;
    lru.reset(1, 4);
    for (unsigned w = 0; w < 4; ++w)
        lru.insert(0, w);
    // Way 0 is globally LRU but not a candidate.
    EXPECT_EQ(lru.victim(0, {2, 3}), 2u);
}

TEST(Lru, PerSetIndependence)
{
    LruPolicy lru;
    lru.reset(2, 2);
    lru.insert(0, 0);
    lru.insert(0, 1);
    lru.insert(1, 1);
    lru.insert(1, 0);
    EXPECT_EQ(lru.victim(0, allWays(2)), 0u);
    EXPECT_EQ(lru.victim(1, allWays(2)), 1u);
}

TEST(TreePlru, ProtectsRecentlyTouched)
{
    TreePlruPolicy plru;
    plru.reset(1, 4);
    for (unsigned w = 0; w < 4; ++w)
        plru.insert(0, w);
    plru.touch(0, 2);
    EXPECT_NE(plru.victim(0, allWays(4)), 2u);
}

TEST(TreePlru, FallsBackUnderCandidateRestriction)
{
    TreePlruPolicy plru;
    plru.reset(1, 8);
    for (unsigned w = 0; w < 8; ++w)
        plru.insert(0, w);
    plru.touch(0, 5);
    unsigned v = plru.victim(0, {4, 5});
    EXPECT_EQ(v, 4u); // 5 was just touched
}

TEST(Srrip, InsertsAtDistantRrpv)
{
    SrripPolicy srrip;
    srrip.reset(1, 4);
    srrip.insert(0, 0);
    EXPECT_EQ(srrip.rrpv(0, 0), 2); // maxRrpv(3) - 1
    srrip.touch(0, 0);
    EXPECT_EQ(srrip.rrpv(0, 0), 0);
}

TEST(Srrip, EvictsDistantFirst)
{
    SrripPolicy srrip;
    srrip.reset(1, 4);
    for (unsigned w = 0; w < 4; ++w)
        srrip.insert(0, w);
    srrip.touch(0, 1); // rrpv 0
    // Victim must be one of the untouched (rrpv 2, aged to 3) ways.
    unsigned v = srrip.victim(0, allWays(4));
    EXPECT_NE(v, 1u);
}

TEST(Srrip, AgingTerminates)
{
    SrripPolicy srrip;
    srrip.reset(1, 2);
    srrip.insert(0, 0);
    srrip.insert(0, 1);
    srrip.touch(0, 0);
    srrip.touch(0, 1);
    // All at rrpv 0: victim() must still return via aging.
    unsigned v = srrip.victim(0, allWays(2));
    EXPECT_LT(v, 2u);
}

TEST(Brrip, MostInsertionsAtMax)
{
    BrripPolicy brrip(1.0 / 32.0);
    brrip.reset(1, 4);
    // After an insert, the line should usually be immediately
    // evictable (scan resistance).
    int immediate = 0;
    for (int i = 0; i < 200; ++i) {
        brrip.insert(0, 0);
        brrip.touch(0, 1);
        if (brrip.victim(0, {0, 1}) == 0u)
            ++immediate;
    }
    EXPECT_GT(immediate, 150);
}

TEST(Random, AlwaysReturnsACandidate)
{
    RandomPolicy rnd(3);
    rnd.reset(1, 8);
    for (int i = 0; i < 100; ++i) {
        unsigned v = rnd.victim(0, {2, 5, 7});
        EXPECT_TRUE(v == 2u || v == 5u || v == 7u);
    }
}

/**
 * The span form of victim() — (const unsigned *, n) — is the hot-path
 * API the cache and metadata table call with pre-built scratch
 * buffers. Exercise it directly across all five policies, including
 * restricted candidate subsets.
 */
TEST(SpanVictim, AllPoliciesHonourRestrictedSpans)
{
    for (const char *name : {"lru", "plru", "srrip", "brrip",
                             "random"}) {
        auto policy = makePolicy(name);
        policy->reset(4, 8);
        for (unsigned set = 0; set < 4; ++set)
            for (unsigned w = 0; w < 8; ++w)
                policy->insert(set, w);

        const unsigned single[] = {5};
        const unsigned pair[] = {1, 6};
        const unsigned evens[] = {0, 2, 4, 6};
        const unsigned full[] = {0, 1, 2, 3, 4, 5, 6, 7};
        struct { const unsigned *p; unsigned n; } spans[] = {
            {single, 1}, {pair, 2}, {evens, 4}, {full, 8}};

        for (unsigned set = 0; set < 4; ++set) {
            for (const auto &s : spans) {
                unsigned v = policy->victim(set, s.p, s.n);
                bool found = false;
                for (unsigned i = 0; i < s.n; ++i)
                    found = found || s.p[i] == v;
                EXPECT_TRUE(found)
                    << name << " returned non-candidate " << v;
            }
        }
    }
}

TEST(SpanVictim, LruSpanMatchesVectorOverload)
{
    LruPolicy lru;
    lru.reset(1, 4);
    for (unsigned w = 0; w < 4; ++w)
        lru.insert(0, w);
    lru.touch(0, 2);
    // LRU victim selection is stateless, so both call forms must
    // agree exactly — the vector overload is a thin span wrapper.
    const unsigned span[] = {2, 3};
    EXPECT_EQ(lru.victim(0, span, 2),
              lru.victim(0, std::vector<unsigned>{2, 3}));
    EXPECT_EQ(lru.victim(0, span, 2), 3u); // 2 was just touched
}

TEST(SpanVictim, TreePlruFallbackWorksThroughSpan)
{
    TreePlruPolicy plru;
    plru.reset(1, 8);
    for (unsigned w = 0; w < 8; ++w)
        plru.insert(0, w);
    plru.touch(0, 5);
    // The tree's preferred way (somewhere in 0..3 after touching 5)
    // is outside the span, forcing the timestamp fallback.
    const unsigned span[] = {4, 5};
    EXPECT_EQ(plru.victim(0, span, 2), 4u); // 5 was just touched
}

TEST(SpanVictim, SrripSingleCandidateSpan)
{
    SrripPolicy srrip;
    srrip.reset(1, 4);
    for (unsigned w = 0; w < 4; ++w)
        srrip.insert(0, w);
    srrip.touch(0, 3); // rrpv 0, the most protected line
    const unsigned span[] = {3};
    // Aging must terminate even when the only candidate is hot.
    EXPECT_EQ(srrip.victim(0, span, 1), 3u);
}

TEST(Factory, KnownNames)
{
    EXPECT_EQ(makePolicy("lru")->name(), "LRU");
    EXPECT_EQ(makePolicy("plru")->name(), "TreePLRU");
    EXPECT_EQ(makePolicy("srrip")->name(), "SRRIP");
    EXPECT_EQ(makePolicy("brrip")->name(), "BRRIP");
    EXPECT_EQ(makePolicy("random")->name(), "Random");
}

/**
 * Property sweep over all policies: a victim is always drawn from
 * the candidate list, for varying candidate subsets.
 */
class PolicyProperty
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(PolicyProperty, VictimAlwaysAmongCandidates)
{
    auto policy = makePolicy(GetParam());
    policy->reset(4, 8);
    for (unsigned set = 0; set < 4; ++set)
        for (unsigned w = 0; w < 8; ++w)
            policy->insert(set, w);

    std::vector<std::vector<unsigned>> candidate_sets{
        {0}, {7}, {1, 3}, {0, 2, 4, 6}, allWays(8)};
    for (unsigned set = 0; set < 4; ++set) {
        for (const auto &cands : candidate_sets) {
            unsigned v = policy->victim(set, cands);
            EXPECT_NE(std::find(cands.begin(), cands.end(), v),
                      cands.end());
        }
    }
}

TEST_P(PolicyProperty, HitPromotionReducesEviction)
{
    auto policy = makePolicy(GetParam());
    if (std::string(GetParam()) == "random")
        GTEST_SKIP() << "random has no recency state";
    policy->reset(1, 4);
    for (unsigned w = 0; w < 4; ++w)
        policy->insert(0, w);
    // Touch everything but way 3 repeatedly.
    for (int i = 0; i < 8; ++i)
        for (unsigned w = 0; w < 3; ++w)
            policy->touch(0, w);
    unsigned v = policy->victim(0, allWays(4));
    if (std::string(GetParam()) == "plru") {
        // Tree PLRU is only pseudo-LRU: it may not find the exact
        // coldest way, but it must never evict the hottest one.
        EXPECT_NE(v, 2u);
    } else {
        EXPECT_EQ(v, 3u);
    }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyProperty,
                         ::testing::Values("lru", "plru", "srrip",
                                           "brrip", "random"));

} // anonymous namespace
} // namespace prophet::mem
