/**
 * @file
 * Integration tests for the assembled system: end-to-end simulation
 * over synthetic traces, temporal prefetching benefit on pointer
 * chases, partition synchronization, and statistics sanity.
 */

#include <gtest/gtest.h>

#include "common/cancellation.hh"
#include "common/error.hh"
#include "sim/system.hh"
#include "workloads/pattern_lib.hh"

namespace prophet::sim
{
namespace
{

trace::Trace
chaseTrace(std::size_t nodes, std::size_t records)
{
    workloads::StreamParams p;
    p.pc = 0x400000;
    p.regionBase = 1ull << 33;
    p.instGap = 4;
    p.seed = 3;
    workloads::ChaseStream s(p, nodes, 0.0);
    trace::Trace t;
    for (std::size_t i = 0; i < records; ++i)
        s.emit(t);
    return t;
}

SystemConfig
baseCfg()
{
    SystemConfig cfg = SystemConfig::table1();
    cfg.warmupRecords = 20000;
    return cfg;
}

TEST(System, BaselineRunsAndReportsSaneStats)
{
    auto t = chaseTrace(30000, 200000);
    System sys(baseCfg());
    auto s = sys.run(t);
    EXPECT_GT(s.ipc, 0.0);
    EXPECT_GT(s.l2DemandMisses, 0u);
    EXPECT_GT(s.dramReads, 0u);
    EXPECT_EQ(s.l2PrefetchesIssued, 0u);
    EXPECT_EQ(s.records, 200000u);
}

TEST(System, TemporalPrefetcherAcceleratesChase)
{
    // The paper's headline mechanism: a pointer chase too big for
    // the LLC is dramatically faster with a temporal prefetcher.
    auto t = chaseTrace(60000, 300000);

    System base(baseCfg());
    auto sb = base.run(t);

    SystemConfig cfg = baseCfg();
    cfg.l2Pf = L2PfKind::Triage;
    System tri(cfg);
    auto st = tri.run(t);

    EXPECT_GT(st.ipc, sb.ipc * 1.2);
    EXPECT_LT(st.l2DemandMisses, sb.l2DemandMisses);
    EXPECT_GT(st.l2PrefetchesIssued, 0u);
    EXPECT_GT(st.prefetchAccuracy(), 0.8); // perfect repetition
}

TEST(System, SimplifiedModeProducesSnapshot)
{
    auto t = chaseTrace(20000, 150000);
    SystemConfig cfg = baseCfg();
    cfg.l2Pf = L2PfKind::Simplified;
    System sys(cfg);
    sys.run(t);
    ASSERT_NE(sys.prophet(), nullptr);
    auto snap = sys.prophet()->takeSnapshot();
    ASSERT_TRUE(snap.perPc.count(0x400000));
    // A perfectly repeating chase profiles at high accuracy.
    EXPECT_GT(snap.perPc.at(0x400000).accuracy, 0.8);
    EXPECT_GT(snap.allocatedEntries, 10000u);
}

TEST(System, PartitionSyncReservesLlcWays)
{
    auto t = chaseTrace(20000, 100000);
    SystemConfig cfg = baseCfg();
    cfg.l2Pf = L2PfKind::Triangel;
    System sys(cfg);
    sys.run(t);
    // The LLC partition mirrors the prefetcher's table size.
    EXPECT_EQ(sys.hierarchy().llc().reservedWays(),
              sys.prophet() ? 0u : sys.hierarchy().llc().reservedWays());
    EXPECT_LE(sys.hierarchy().llc().reservedWays(), 8u);
}

TEST(System, ProphetModeUsesBinary)
{
    auto t = chaseTrace(20000, 100000);
    SystemConfig cfg = baseCfg();
    cfg.l2Pf = L2PfKind::Prophet;
    cfg.binary.csr.prophetEnabled = true;
    cfg.binary.csr.metadataWays = 2;
    System sys(cfg);
    auto s = sys.run(t);
    EXPECT_EQ(s.finalMetadataWays, 2u);
    EXPECT_EQ(sys.hierarchy().llc().reservedWays(), 2u);
}

TEST(System, ProphetDisabledCsrMeansNoTemporalTraffic)
{
    auto t = chaseTrace(20000, 100000);
    SystemConfig cfg = baseCfg();
    cfg.l2Pf = L2PfKind::Prophet;
    cfg.binary.csr.prophetEnabled = true;
    cfg.binary.csr.temporalDisabled = true;
    cfg.binary.csr.metadataWays = 0;
    System sys(cfg);
    auto s = sys.run(t);
    EXPECT_EQ(s.l2PrefetchesIssued, 0u);
    EXPECT_EQ(s.finalMetadataWays, 0u);
}

TEST(System, PartitionSyncIntervalNormalization)
{
    // The helper rounds up to the power of two the mask test needs.
    EXPECT_EQ(normalizePartitionSyncInterval(0), 1u);
    EXPECT_EQ(normalizePartitionSyncInterval(1), 1u);
    EXPECT_EQ(normalizePartitionSyncInterval(2), 2u);
    EXPECT_EQ(normalizePartitionSyncInterval(3000), 4096u);
    EXPECT_EQ(normalizePartitionSyncInterval(4096), 4096u);
    EXPECT_EQ(normalizePartitionSyncInterval(4097), 8192u);
}

TEST(System, NonPowerOfTwoPartitionSyncIntervalBehavesLikeRounded)
{
    // Regression: the record loop checks `(i & (interval - 1)) == 0`,
    // which silently misfires for a non-power-of-two interval (3000
    // would have synced at records 0, 2048, 4096, 6144, ... or worse
    // depending on the bit pattern). A non-power-of-two request must
    // behave exactly like its rounded-up power of two.
    auto t = chaseTrace(30000, 120000);

    SystemConfig odd = baseCfg();
    odd.l2Pf = L2PfKind::Triangel;
    odd.partitionSyncInterval = 3000;
    System sys_odd(odd);
    auto so = sys_odd.run(t);

    SystemConfig pow2 = baseCfg();
    pow2.l2Pf = L2PfKind::Triangel;
    pow2.partitionSyncInterval = 4096;
    System sys_pow2(pow2);
    auto sp = sys_pow2.run(t);

    EXPECT_EQ(so.cycles, sp.cycles);
    EXPECT_EQ(so.l2DemandMisses, sp.l2DemandMisses);
    EXPECT_EQ(so.l2PrefetchesIssued, sp.l2PrefetchesIssued);
    EXPECT_EQ(so.finalMetadataWays, sp.finalMetadataWays);
    EXPECT_EQ(so.pcMisses, sp.pcMisses);
}

TEST(System, PcMissesAttributedToPcs)
{
    auto t = chaseTrace(40000, 150000);
    System sys(baseCfg());
    auto s = sys.run(t);
    ASSERT_TRUE(s.pcMisses.count(0x400000));
    EXPECT_GT(s.pcMisses.at(0x400000), 1000u);
}

TEST(System, StridePrefetcherCoversSequentialTrace)
{
    // A dense stride trace should mostly hit in L1 thanks to the
    // degree-8 stride prefetcher of Table 1.
    workloads::StreamParams p;
    p.pc = 0x500000;
    p.regionBase = 1ull << 34;
    p.instGap = 4;
    p.seed = 4;
    workloads::StrideStream s(p, 100000);
    trace::Trace t;
    for (int i = 0; i < 200000; ++i)
        s.emit(t);

    SystemConfig with = baseCfg();
    System sys_with(with);
    auto sw = sys_with.run(t);

    SystemConfig without = baseCfg();
    without.l1Pf = L1PfKind::None;
    System sys_without(without);
    auto so = sys_without.run(t);

    // Independent stride misses are bandwidth-bound with or without
    // prefetching; the stride prefetcher's effect is the L1 miss
    // reduction (and it must never hurt).
    EXPECT_LT(sw.l1Misses, so.l1Misses / 4);
    EXPECT_GE(sw.ipc, so.ipc * 0.98);
}

TEST(System, WritebacksGenerateDramWrites)
{
    // Writes to a working set larger than the LLC must eventually
    // produce DRAM write traffic.
    workloads::StreamParams p;
    p.pc = 0x600000;
    p.regionBase = 1ull << 35;
    p.instGap = 4;
    p.seed = 5;
    workloads::StrideStream s(p, 100000);
    trace::Trace raw;
    for (int i = 0; i < 150000; ++i)
        s.emit(raw);
    trace::Trace t;
    for (const auto &r : raw)
        t.append(r.pc, r.addr, r.instGap, false, /*write=*/true);

    SystemConfig cfg = baseCfg();
    cfg.l1Pf = L1PfKind::None;
    System sys(cfg);
    auto st = sys.run(t);
    EXPECT_GT(st.dramWrites, 0u);
}

TEST(System, AttachedButUnfiredCancellationIsBitIdentical)
{
    // The poll is `(recordIndex & mask) == 0 && token.cancelled()` —
    // no simulation state is touched, so attaching a token that
    // never fires must reproduce the plain run bit for bit. This is
    // what lets the driver attach one unconditionally.
    auto t = chaseTrace(30000, 200000);

    System plain(baseCfg());
    auto ref = plain.run(t);

    CancellationToken token;
    System sys(baseCfg());
    sys.setCancellation(&token, 1024);
    auto s = sys.run(t);
    EXPECT_EQ(s.ipc, ref.ipc);
    EXPECT_EQ(s.cycles, ref.cycles);
    EXPECT_EQ(s.instructions, ref.instructions);
    EXPECT_EQ(s.l1Misses, ref.l1Misses);
    EXPECT_EQ(s.l2DemandMisses, ref.l2DemandMisses);
    EXPECT_EQ(s.llcMisses, ref.llcMisses);
    EXPECT_EQ(s.dramReads, ref.dramReads);
    EXPECT_EQ(s.dramWrites, ref.dramWrites);
    EXPECT_EQ(s.records, ref.records);
    EXPECT_FALSE(token.cancelled());
}

TEST(System, CancelledTokenUnwindsWithStructuredError)
{
    auto t = chaseTrace(30000, 200000);
    CancellationToken token;
    token.cancel();
    System sys(baseCfg());
    sys.setCancellation(&token);
    try {
        sys.run(t);
        FAIL() << "run did not observe the cancelled token";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::Cancelled);
        EXPECT_FALSE(e.transient());
        // The context pins down how far the run got.
        EXPECT_NE(e.context().offset, ErrorContext::kNoOffset);
    }
}

} // anonymous namespace
} // namespace prophet::sim
