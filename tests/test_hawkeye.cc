/**
 * @file
 * Unit tests for the Hawkeye replacement policy (Triage's original
 * metadata replacement): predictor training through OPTgen and
 * friendly/averse victim selection.
 */

#include <gtest/gtest.h>

#include "common/types.hh"
#include "mem/hawkeye.hh"

namespace prophet::mem
{
namespace
{

TEST(Hawkeye, StartsWeaklyFriendly)
{
    HawkeyePolicy h;
    h.reset(64, 4);
    EXPECT_TRUE(h.isFriendly(0x42));
    EXPECT_EQ(h.predictorValue(0x42), 4u);
}

TEST(Hawkeye, ReusedSignatureBecomesFriendlier)
{
    HawkeyePolicy h(64, 2048);
    h.reset(64, 4);
    // Signature 7 repeatedly accesses the same line in a sampled set
    // with short reuse: OPT would cache it.
    for (int i = 0; i < 32; ++i) {
        h.setSignature(7);
        h.setAddress(0x1000);
        h.touch(0, 0);
    }
    EXPECT_GE(h.predictorValue(7), 4u);
    EXPECT_TRUE(h.isFriendly(7));
}

TEST(Hawkeye, StreamingSignatureBecomesAverse)
{
    HawkeyePolicy h(64, 2048);
    h.reset(64, 2); // tiny associativity: long reuse never fits
    // Signature 9 streams over many addresses, each reused only
    // after far too many intervening accesses.
    for (int round = 0; round < 6; ++round) {
        for (Addr a = 0; a < 12; ++a) {
            h.setSignature(9);
            h.setAddress(0x2000 + a);
            h.touch(0, static_cast<unsigned>(a % 2));
        }
    }
    EXPECT_LT(h.predictorValue(9), 4u);
}

TEST(Hawkeye, AverseLinesEvictedFirst)
{
    HawkeyePolicy h(64, 2048);
    h.reset(64, 4);

    // Make signature 50 averse.
    for (int round = 0; round < 8; ++round) {
        for (Addr a = 0; a < 16; ++a) {
            h.setSignature(50);
            h.setAddress(0x9000 + a);
            h.touch(0, static_cast<unsigned>(a % 4));
        }
    }
    ASSERT_FALSE(h.isFriendly(50));

    // Insert friendly lines in ways 0-2 and an averse line in way 3.
    h.setSignature(1);
    h.setAddress(0x100);
    h.insert(1, 0);
    h.setSignature(2);
    h.setAddress(0x200);
    h.insert(1, 1);
    h.setSignature(3);
    h.setAddress(0x300);
    h.insert(1, 2);
    h.setSignature(50);
    h.setAddress(0x900);
    h.insert(1, 3);

    EXPECT_EQ(h.victim(1, {0, 1, 2, 3}), 3u);
}

TEST(Hawkeye, VictimAlwaysACandidate)
{
    HawkeyePolicy h;
    h.reset(16, 8);
    for (unsigned w = 0; w < 8; ++w) {
        h.setSignature(w);
        h.setAddress(0x100 + w);
        h.insert(3, w);
    }
    for (int i = 0; i < 50; ++i) {
        unsigned v = h.victim(3, {1, 4, 6});
        EXPECT_TRUE(v == 1u || v == 4u || v == 6u);
    }
}

TEST(Hawkeye, EvictingFriendlyDetrainsItsSignature)
{
    HawkeyePolicy h(64, 2048);
    h.reset(64, 2);
    unsigned before = h.predictorValue(11);
    // All candidates friendly: evicting one must detrain.
    h.setSignature(11);
    h.setAddress(0x500);
    h.insert(2, 0);
    h.setSignature(11);
    h.setAddress(0x540);
    h.insert(2, 1);
    h.victim(2, {0, 1});
    EXPECT_LE(h.predictorValue(11), before);
}

} // anonymous namespace
} // namespace prophet::mem
