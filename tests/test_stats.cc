/**
 * @file
 * Unit tests for the statistics substrate: histograms (Figure 8's
 * Markov-target distribution), geometric means (every speedup
 * figure), and table rendering.
 */

#include <gtest/gtest.h>

#include "stats/counter.hh"
#include "stats/histogram.hh"
#include "stats/summary.hh"
#include "stats/table.hh"

namespace prophet::stats
{
namespace
{

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(4);
    h.add(0);
    h.add(1);
    h.add(1);
    h.add(3);
    h.add(10); // overflow -> last bucket
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, Fractions)
{
    Histogram h(3);
    for (int i = 0; i < 3; ++i)
        h.add(0);
    h.add(1);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.25);
    EXPECT_DOUBLE_EQ(h.fraction(2), 0.0);
}

TEST(Histogram, EmptyFractionIsZero)
{
    Histogram h(2);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, MeanCapsOverflow)
{
    Histogram h(4);
    h.add(100); // counted as 3
    h.add(1);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, Reset)
{
    Histogram h(2);
    h.add(0);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.bucket(0), 0u);
}

TEST(Summary, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({2.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Summary, GeomeanOfSpeedupsBelowArithmetic)
{
    std::vector<double> v{1.0, 1.2, 1.6, 2.0};
    EXPECT_LT(geomean(v), mean(v));
    EXPECT_GT(geomean(v), 1.0);
}

TEST(Summary, WeightedMean)
{
    EXPECT_DOUBLE_EQ(weightedMean({1.0, 3.0}, {1.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(weightedMean({1.0, 3.0}, {3.0, 1.0}), 1.5);
    EXPECT_DOUBLE_EQ(weightedMean({5.0}, {0.0}), 0.0);
}

TEST(CounterGroup, CreatesOnDemand)
{
    CounterGroup g;
    EXPECT_EQ(g.get("x"), 0u);
    g["x"] += 3;
    EXPECT_EQ(g.get("x"), 3u);
    EXPECT_EQ(g.size(), 1u);
    g.reset();
    EXPECT_EQ(g.get("x"), 0u);
    EXPECT_EQ(g.size(), 1u); // names persist
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "2.5"});
    std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
    // Header and separator and two rows -> 4 lines.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, FmtPrecision)
{
    EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(Table::fmt(2.0, 3), "2.000");
}

} // anonymous namespace
} // namespace prophet::stats
