/**
 * @file
 * The crash-safe result journal, unit and end-to-end:
 *
 *  - entries round-trip bit-for-bit (every RunStats field, including
 *    the per-PC miss map RPG2 consumes);
 *  - a torn tail (writer killed mid-append) is truncated on load and
 *    everything before it replays;
 *  - a bit-flipped mid-file entry is skipped — later intact entries
 *    still replay;
 *  - a journal written by a different spec is refused (SpecError);
 *  - the "journal.load" / "journal.append" fault sites degrade
 *    gracefully (skipped entry / lost checkpoint, never a crash);
 *  - a resumed driver run merges journaled and fresh jobs into
 *    output byte-identical to a from-scratch run;
 *  - the watchdog cancels an overrunning job as a transient
 *    JobTimeout, and a pre-fired shutdown token drains the run.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>
#include <vector>

#include "common/cancellation.hh"
#include "common/error.hh"
#include "common/fault_injection.hh"
#include "common/metrics.hh"
#include "driver/driver.hh"
#include "driver/journal.hh"
#include "driver/json.hh"

namespace fs = std::filesystem;

namespace prophet::driver
{
namespace
{

constexpr std::uint64_t kHash = 0x1234'5678'9abc'def0ull;

/** A RunStats with every serialized field distinct and non-zero. */
sim::RunStats
fabricatedStats(unsigned seed)
{
    sim::RunStats s;
    std::uint64_t v = 1000ull * seed + 1;
    s.ipc = 0.5 + 0.01 * seed;
    s.cycles = v++;
    s.instructions = v++;
    s.records = v++;
    s.l1Misses = v++;
    s.l2DemandAccesses = v++;
    s.l2DemandMisses = v++;
    s.llcMisses = v++;
    s.l2PrefetchesIssued = v++;
    s.l2PrefetchesUseful = v++;
    s.latePrefetches = v++;
    s.dramReads = v++;
    s.dramWrites = v++;
    s.dramPrefetchReads = v++;
    s.markov.lookups = v++;
    s.markov.hits = v++;
    s.markov.inserts = v++;
    s.markov.updates = v++;
    s.markov.replacements = v++;
    s.markov.resizeDrops = v++;
    s.finalMetadataWays = 3 + seed;
    s.sampled = (seed % 2) != 0;
    s.sampledRecords = v++;
    s.sampleScale = 1.0 + 0.25 * seed;
    s.offchipMeta.metadataReads = v++;
    s.offchipMeta.metadataWrites = v++;
    s.l1Accesses = v++;
    s.l2Accesses = v++;
    s.llcAccesses = v++;
    for (unsigned i = 0; i < 4; ++i)
        s.pcMisses.emplace(0x4000'0000ull + seed * 16 + i,
                           v + i * 7);
    return s;
}

JournalEntry
fabricatedEntry(unsigned seed)
{
    JournalEntry e;
    e.kind = seed % 3 == 0 ? JournalEntry::Kind::Baseline
                           : JournalEntry::Kind::Job;
    e.jobIndex = seed;
    e.workload = "wl" + std::to_string(seed);
    e.pipeline = e.kind == JournalEntry::Kind::Baseline
        ? ""
        : "pipe" + std::to_string(seed);
    e.attempts = 1 + seed % 3;
    e.stats = fabricatedStats(seed);
    return e;
}

void
expectStatsEqual(const sim::RunStats &a, const sim::RunStats &b)
{
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.records, b.records);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l2DemandAccesses, b.l2DemandAccesses);
    EXPECT_EQ(a.l2DemandMisses, b.l2DemandMisses);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.l2PrefetchesIssued, b.l2PrefetchesIssued);
    EXPECT_EQ(a.l2PrefetchesUseful, b.l2PrefetchesUseful);
    EXPECT_EQ(a.latePrefetches, b.latePrefetches);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    EXPECT_EQ(a.dramPrefetchReads, b.dramPrefetchReads);
    EXPECT_EQ(a.markov.lookups, b.markov.lookups);
    EXPECT_EQ(a.markov.hits, b.markov.hits);
    EXPECT_EQ(a.markov.inserts, b.markov.inserts);
    EXPECT_EQ(a.markov.updates, b.markov.updates);
    EXPECT_EQ(a.markov.replacements, b.markov.replacements);
    EXPECT_EQ(a.markov.resizeDrops, b.markov.resizeDrops);
    EXPECT_EQ(a.finalMetadataWays, b.finalMetadataWays);
    EXPECT_EQ(a.sampled, b.sampled);
    EXPECT_EQ(a.sampledRecords, b.sampledRecords);
    EXPECT_EQ(a.sampleScale, b.sampleScale);
    EXPECT_EQ(a.offchipMeta.metadataReads, b.offchipMeta.metadataReads);
    EXPECT_EQ(a.offchipMeta.metadataWrites,
              b.offchipMeta.metadataWrites);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.llcAccesses, b.llcAccesses);
    ASSERT_EQ(a.pcMisses.size(), b.pcMisses.size());
    auto ia = a.pcMisses.begin();
    auto ib = b.pcMisses.begin();
    for (; ia != a.pcMisses.end(); ++ia, ++ib) {
        EXPECT_EQ(ia->first, ib->first);
        EXPECT_EQ(ia->second, ib->second);
    }
}

std::vector<unsigned char>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<unsigned char>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path,
               const std::vector<unsigned char> &bytes)
{
    std::ofstream out(path,
                      std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
}

/**
 * Frame boundaries of the on-disk entries: byte offset where each
 * entry's frame starts (after the 16-byte header). Mirrors the
 * format so corruption tests can hit exact bytes.
 */
std::vector<std::size_t>
frameOffsets(const std::vector<unsigned char> &bytes)
{
    std::vector<std::size_t> offsets;
    std::size_t pos = 16;
    while (pos + 8 <= bytes.size()) {
        offsets.push_back(pos);
        std::uint32_t len = 0;
        std::memcpy(&len, bytes.data() + pos + 4, 4);
        pos += 8 + len + 8;
    }
    return offsets;
}

class JournalTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fault::reset();
        dir = (fs::temp_directory_path()
               / ("prophet_journal_test_"
                  + std::to_string(::getpid())))
                  .string();
        fs::remove_all(dir);
        fs::create_directories(dir);
        path = dir + "/run.journal";
    }

    void
    TearDown() override
    {
        fault::reset();
        fs::remove_all(dir);
    }

    std::string dir;
    std::string path;
};

TEST_F(JournalTest, EntriesRoundTripBitForBit)
{
    {
        ResultJournal j(path, kHash);
        EXPECT_TRUE(j.entries().empty());
        for (unsigned i = 0; i < 5; ++i)
            EXPECT_TRUE(j.append(fabricatedEntry(i)));
    }
    ResultJournal j(path, kHash);
    EXPECT_EQ(j.corruptSkipped(), 0u);
    EXPECT_EQ(j.truncatedBytes(), 0u);
    ASSERT_EQ(j.entries().size(), 5u);
    for (unsigned i = 0; i < 5; ++i) {
        const JournalEntry &e = j.entries()[i];
        JournalEntry want = fabricatedEntry(i);
        EXPECT_EQ(e.kind, want.kind);
        EXPECT_EQ(e.jobIndex, want.jobIndex);
        EXPECT_EQ(e.workload, want.workload);
        EXPECT_EQ(e.pipeline, want.pipeline);
        EXPECT_EQ(e.attempts, want.attempts);
        expectStatsEqual(e.stats, want.stats);
    }
}

TEST_F(JournalTest, TornTailIsTruncatedAndPrefixReplays)
{
    {
        ResultJournal j(path, kHash);
        for (unsigned i = 0; i < 3; ++i)
            EXPECT_TRUE(j.append(fabricatedEntry(i)));
    }
    auto bytes = readFileBytes(path);
    auto offsets = frameOffsets(bytes);
    ASSERT_EQ(offsets.size(), 3u);
    // Kill the writer mid-append: chop the file partway into the
    // third frame (several split points, including inside the
    // magic, the payload, and the trailing checksum).
    for (std::size_t cut : {offsets[2] + 2, offsets[2] + 9,
                            bytes.size() - 3}) {
        std::vector<unsigned char> torn(bytes.begin(),
                                        bytes.begin()
                                            + static_cast<long>(cut));
        writeFileBytes(path, torn);
        ResultJournal j(path, kHash);
        EXPECT_EQ(j.entries().size(), 2u) << "cut at " << cut;
        EXPECT_GT(j.truncatedBytes(), 0u);
        EXPECT_EQ(fs::file_size(path), offsets[2]);
    }
}

TEST_F(JournalTest, AppendAfterTruncatedTailKeepsJournalValid)
{
    {
        ResultJournal j(path, kHash);
        for (unsigned i = 0; i < 2; ++i)
            EXPECT_TRUE(j.append(fabricatedEntry(i)));
    }
    auto bytes = readFileBytes(path);
    bytes.resize(bytes.size() - 5); // torn tail on entry 1
    writeFileBytes(path, bytes);
    {
        ResultJournal j(path, kHash);
        ASSERT_EQ(j.entries().size(), 1u);
        EXPECT_TRUE(j.append(fabricatedEntry(7)));
    }
    ResultJournal j(path, kHash);
    ASSERT_EQ(j.entries().size(), 2u);
    EXPECT_EQ(j.entries()[1].workload, "wl7");
    EXPECT_EQ(j.corruptSkipped(), 0u);
}

TEST_F(JournalTest, BitFlippedEntryIsSkippedLaterEntriesSurvive)
{
    {
        ResultJournal j(path, kHash);
        for (unsigned i = 0; i < 3; ++i)
            EXPECT_TRUE(j.append(fabricatedEntry(i)));
    }
    auto bytes = readFileBytes(path);
    auto offsets = frameOffsets(bytes);
    ASSERT_EQ(offsets.size(), 3u);
    // Flip one payload byte of the middle entry (past the frame
    // header, so the frame structure stays intact).
    bytes[offsets[1] + 8 + 20] ^= 0x40;
    writeFileBytes(path, bytes);

    ResultJournal j(path, kHash);
    EXPECT_EQ(j.corruptSkipped(), 1u);
    ASSERT_EQ(j.entries().size(), 2u);
    EXPECT_EQ(j.entries()[0].workload, "wl0");
    EXPECT_EQ(j.entries()[1].workload, "wl2");
}

TEST_F(JournalTest, SpecHashMismatchIsRefused)
{
    {
        ResultJournal j(path, kHash);
        EXPECT_TRUE(j.append(fabricatedEntry(0)));
    }
    try {
        ResultJournal j(path, kHash + 1);
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_NE(std::string(e.what()).find("different experiment"),
                  std::string::npos)
            << e.what();
    }
    // The original spec can still open and extend it.
    ResultJournal j(path, kHash);
    EXPECT_EQ(j.entries().size(), 1u);
}

TEST_F(JournalTest, UnrelatedFileIsRestartedNotReplayed)
{
    {
        std::ofstream out(path, std::ios::binary);
        out << "not a journal";
    }
    ResultJournal j(path, kHash);
    EXPECT_TRUE(j.entries().empty());
    EXPECT_TRUE(j.append(fabricatedEntry(0)));
    ResultJournal again(path, kHash);
    EXPECT_EQ(again.entries().size(), 1u);
}

TEST_F(JournalTest, LoadFaultSiteDropsExactlyThatEntry)
{
    {
        ResultJournal j(path, kHash);
        for (unsigned i = 0; i < 3; ++i)
            EXPECT_TRUE(j.append(fabricatedEntry(i)));
    }
    fault::arm("journal.load", 2, 1); // second entry only
    ResultJournal j(path, kHash);
    EXPECT_EQ(j.corruptSkipped(), 1u);
    ASSERT_EQ(j.entries().size(), 2u);
    EXPECT_EQ(j.entries()[0].workload, "wl0");
    EXPECT_EQ(j.entries()[1].workload, "wl2");
}

TEST_F(JournalTest, AppendFaultSiteLosesOnlyThatCheckpoint)
{
    {
        ResultJournal j(path, kHash);
        EXPECT_TRUE(j.append(fabricatedEntry(0)));
        fault::arm("journal.append", 1, 1);
        EXPECT_FALSE(j.append(fabricatedEntry(1))); // injected loss
        EXPECT_TRUE(j.append(fabricatedEntry(2)));  // recovers
    }
    ResultJournal j(path, kHash);
    EXPECT_EQ(j.corruptSkipped(), 0u);
    ASSERT_EQ(j.entries().size(), 2u);
    EXPECT_EQ(j.entries()[0].workload, "wl0");
    EXPECT_EQ(j.entries()[1].workload, "wl2");
}

// ---------------------------------------------------------------
// End-to-end: the driver resuming, timing out, and draining.
// ---------------------------------------------------------------

constexpr std::size_t kRecords = 20'000;

/** mcf+omnetpp x baseline+triangel with a CSV sink: 4 jobs, and
 *  "speedup" forces the per-workload baseline phase. */
ExperimentSpec
resumableSpec(const std::string &csv_path)
{
    json::Value doc;
    std::string text =
        "{\"name\": \"resumable\","
        " \"workloads\": [\"mcf\", \"omnetpp\"],"
        " \"pipelines\": [\"baseline\", \"triangel\"],"
        " \"metrics\": [\"ipc\", \"speedup\"],"
        " \"records\": " + std::to_string(kRecords) + ","
        " \"trace_cache\": false,"
        " \"sinks\": [{\"type\": \"csv\","
        "              \"path\": \"" + csv_path + "\"}]}";
    EXPECT_TRUE(json::parse(text, doc, nullptr));
    return ExperimentSpec::fromJson(doc);
}

std::uint64_t
counterValue(const std::string &name)
{
    return metrics::counter(name).value();
}

TEST_F(JournalTest, ResumedRunMergesByteIdenticalWithScratchRun)
{
    const std::string ref_csv = dir + "/ref.csv";
    const std::string csv = dir + "/out.csv";
    const std::string journal = dir + "/spec.journal";

    // Ground truth: one uninterrupted run, no journal.
    {
        ExperimentDriver drv(resumableSpec(ref_csv));
        auto report = drv.run();
        EXPECT_TRUE(report.ok());
    }

    // First attempt: journaled, one job fails permanently — the
    // other three complete and checkpoint.
    DriverOptions opts;
    opts.journalPath = journal;
    opts.keepGoing = 1;
    opts.retryBackoffMs = 0;
    fault::arm("job.omnetpp/triangel", 1);
    {
        ExperimentDriver drv(resumableSpec(csv), opts);
        auto report = drv.run();
        EXPECT_EQ(report.failedJobs, 1u);
        EXPECT_EQ(report.resumedJobs, 0u);
    }
    fault::reset();

    // Resume: the three journaled jobs replay (counted), only the
    // failed one re-simulates, and the merged CSV is byte-identical
    // to the scratch run's.
    {
        ExperimentDriver drv(resumableSpec(csv), opts);
        auto report = drv.run();
        EXPECT_TRUE(report.ok());
        EXPECT_EQ(report.resumedJobs, 3u);
        EXPECT_EQ(counterValue("journal.hits"), 3u);
        std::size_t resumed = 0;
        for (const auto &r : report.results)
            resumed += r.resumed ? 1 : 0;
        EXPECT_EQ(resumed, 3u);
    }
    EXPECT_EQ(readFileBytes(ref_csv), readFileBytes(csv));
}

TEST_F(JournalTest, ResumeAfterCompletionReplaysEverything)
{
    const std::string csv = dir + "/out.csv";
    DriverOptions opts;
    opts.journalPath = dir + "/spec.journal";
    {
        ExperimentDriver drv(resumableSpec(csv), opts);
        EXPECT_TRUE(drv.run().ok());
    }
    auto first = readFileBytes(csv);
    ExperimentDriver drv(resumableSpec(csv), opts);
    auto report = drv.run();
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.resumedJobs, 4u);
    EXPECT_EQ(readFileBytes(csv), first);
}

TEST_F(JournalTest, JournalFromDifferentSpecRefusesToResume)
{
    DriverOptions opts;
    opts.journalPath = dir + "/spec.journal";
    {
        ExperimentDriver drv(resumableSpec(dir + "/a.csv"), opts);
        EXPECT_TRUE(drv.run().ok());
    }
    // Same journal, different experiment (records changed).
    auto spec = resumableSpec(dir + "/b.csv");
    spec.records = kRecords / 2;
    ExperimentDriver drv(std::move(spec), opts);
    EXPECT_THROW(drv.run(), SpecError);
}

TEST_F(JournalTest, WatchdogTimesOutAnOverrunningJob)
{
    json::Value doc;
    std::string text =
        "{\"name\": \"slow\","
        " \"workloads\": [\"mcf\"],"
        " \"pipelines\": [\"triangel\"],"
        " \"metrics\": [\"ipc\"],"
        " \"records\": 2000000,"
        " \"trace_cache\": false,"
        " \"sinks\": [{\"type\": \"csv\","
        "              \"path\": \"" + dir + "/slow.csv\"}]}";
    ASSERT_TRUE(json::parse(text, doc, nullptr));
    DriverOptions opts;
    opts.jobTimeoutS = 0.001; // 2M records cannot finish in 1 ms
    opts.keepGoing = 1;
    opts.maxAttempts = 2;
    opts.retryBackoffMs = 0;
    ExperimentDriver drv(ExperimentSpec::fromJson(doc), opts);
    auto report = drv.run();
    ASSERT_EQ(report.results.size(), 1u);
    const JobResult &r = report.results[0];
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.errorCode, ErrorCode::JobTimeout);
    EXPECT_EQ(r.attempts, 2u); // transient: retried, timed out again
    EXPECT_NE(r.errorMessage.find("deadline"), std::string::npos);
    EXPECT_GE(counterValue("watchdog.fires"), 2u);
    EXPECT_FALSE(report.interrupted);
}

TEST_F(JournalTest, SpecDeadlineDrivesTheWatchdogToo)
{
    json::Value doc;
    std::string text =
        "{\"name\": \"slow\","
        " \"workloads\": [\"mcf\"],"
        " \"pipelines\": [\"triangel\"],"
        " \"metrics\": [\"ipc\"],"
        " \"records\": 2000000,"
        " \"deadline_s\": 0.001,"
        " \"trace_cache\": false,"
        " \"sinks\": [{\"type\": \"csv\","
        "              \"path\": \"" + dir + "/slow.csv\"}]}";
    ASSERT_TRUE(json::parse(text, doc, nullptr));
    DriverOptions opts;
    opts.keepGoing = 1;
    opts.maxAttempts = 1;
    opts.retryBackoffMs = 0;
    ExperimentDriver drv(ExperimentSpec::fromJson(doc), opts);
    auto report = drv.run();
    ASSERT_EQ(report.results.size(), 1u);
    EXPECT_EQ(report.results[0].errorCode, ErrorCode::JobTimeout);

    // And --job-timeout 0 overrides the spec deadline off.
    DriverOptions off = opts;
    off.jobTimeoutS = 0.0;
    ExperimentDriver drv2(ExperimentSpec::fromJson(doc), off);
    EXPECT_TRUE(drv2.run().ok());
}

TEST_F(JournalTest, PreFiredShutdownTokenDrainsTheRun)
{
    const std::string csv = dir + "/out.csv";
    CancellationToken shutdown;
    shutdown.cancel();
    DriverOptions opts;
    opts.shutdown = &shutdown;
    opts.keepGoing = 1;
    opts.journalPath = dir + "/spec.journal";
    ExperimentDriver drv(resumableSpec(csv), opts);
    auto report = drv.run();
    EXPECT_TRUE(report.interrupted);
    EXPECT_EQ(report.failedJobs, report.results.size());
    for (const auto &r : report.results) {
        EXPECT_EQ(r.errorCode, ErrorCode::Cancelled);
        EXPECT_NE(r.errorMessage.find("resume"), std::string::npos)
            << r.errorMessage;
    }
    // Nothing completed, so a resume from this journal starts
    // cleanly and finishes the whole sweep.
    CancellationToken fresh;
    opts.shutdown = &fresh;
    ExperimentDriver again(resumableSpec(csv), opts);
    auto done = again.run();
    EXPECT_TRUE(done.ok());
    EXPECT_FALSE(done.interrupted);
}

} // anonymous namespace
} // namespace prophet::driver
