/**
 * @file
 * Unit tests for the DRAM model: latency, channel bandwidth
 * contention (Figure 18's axis), and traffic counters (Figure 11).
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"

namespace prophet::mem
{
namespace
{

TEST(Dram, ReadLatency)
{
    Dram d(DramConfig{150, 8, 1});
    EXPECT_EQ(d.read(100, false), 250u);
}

TEST(Dram, BackToBackReadsQueueOnOneChannel)
{
    Dram d(DramConfig{150, 8, 1});
    Cycle first = d.read(0, false);
    Cycle second = d.read(0, false);
    EXPECT_EQ(first, 150u);
    EXPECT_EQ(second, 158u); // delayed by channel occupancy
}

TEST(Dram, TwoChannelsAbsorbTwoRequests)
{
    Dram d(DramConfig{150, 8, 2});
    Cycle first = d.read(0, false);
    Cycle second = d.read(0, false);
    EXPECT_EQ(first, 150u);
    EXPECT_EQ(second, 150u); // second channel, no delay
    Cycle third = d.read(0, false);
    EXPECT_EQ(third, 158u);
}

TEST(Dram, WritesConsumeBandwidth)
{
    Dram d(DramConfig{150, 8, 1});
    d.write(0);
    Cycle read = d.read(0, false);
    EXPECT_EQ(read, 158u); // delayed behind the write burst
}

TEST(Dram, TrafficCounters)
{
    Dram d(DramConfig{});
    d.read(0, false);
    d.read(0, true);
    d.read(0, true);
    d.write(0);
    EXPECT_EQ(d.stats().reads, 3u);
    EXPECT_EQ(d.stats().prefetchReads, 2u);
    EXPECT_EQ(d.stats().writes, 1u);
    EXPECT_EQ(d.stats().total(), 4u);
    d.resetStats();
    EXPECT_EQ(d.stats().total(), 0u);
}

TEST(Dram, IdleChannelRecovers)
{
    Dram d(DramConfig{150, 8, 1});
    d.read(0, false);
    // Long after the burst, no queueing remains.
    EXPECT_EQ(d.read(1000, false), 1150u);
}

/** Property: with more channels, total queueing never increases. */
class ChannelSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(ChannelSweep, MoreChannelsNeverSlower)
{
    unsigned channels = GetParam();
    Dram narrow(DramConfig{150, 8, 1});
    Dram wide(DramConfig{150, 8, channels});
    Cycle last_narrow = 0, last_wide = 0;
    for (int i = 0; i < 64; ++i) {
        last_narrow = narrow.read(0, false);
        last_wide = wide.read(0, false);
    }
    EXPECT_LE(last_wide, last_narrow);
}

INSTANTIATE_TEST_SUITE_P(Channels, ChannelSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

} // anonymous namespace
} // namespace prophet::mem
