/**
 * @file
 * Structural property tests over the generated workloads: each
 * workload must actually exhibit the memory-behaviour signature its
 * paper counterpart is chosen for, since the figures depend on those
 * signatures (pointer-chasing dependence in mcf, interleaved
 * useful/useless in omnetpp, small temporal footprint in sphinx3,
 * multi-target nodes in soplex, ...).
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "workloads/registry.hh"

namespace prophet::workloads
{
namespace
{

struct TraceProfile
{
    double dependentFraction = 0.0;
    std::size_t distinctLines = 0;
    std::size_t distinctPcs = 0;
    double multiTargetFraction = 0.0;
};

TraceProfile
profileTrace(const std::string &name, std::size_t records = 400000)
{
    auto t = makeWorkload(name, records)->generate();
    TraceProfile p;
    std::set<Addr> lines;
    std::set<PC> pcs;
    std::uint64_t dependent = 0;
    std::unordered_map<PC, Addr> last;
    std::unordered_map<Addr, std::set<Addr>> succ;
    for (const auto &rec : t) {
        Addr line = lineAddr(rec.addr);
        lines.insert(line);
        pcs.insert(rec.pc);
        if (rec.dependsOnPrev)
            ++dependent;
        auto it = last.find(rec.pc);
        if (it != last.end() && it->second != line)
            succ[it->second].insert(line);
        last[rec.pc] = line;
    }
    p.dependentFraction =
        static_cast<double>(dependent) / static_cast<double>(t.size());
    p.distinctLines = lines.size();
    p.distinctPcs = pcs.size();
    std::uint64_t multi = 0;
    for (const auto &[a, s] : succ)
        if (s.size() > 1)
            ++multi;
    p.multiTargetFraction = succ.empty()
        ? 0.0
        : static_cast<double>(multi)
            / static_cast<double>(succ.size());
    return p;
}

TEST(WorkloadStats, McfIsDependenceDominated)
{
    auto p = profileTrace("mcf");
    // Pointer chasing dominates: most accesses are dependent loads.
    EXPECT_GT(p.dependentFraction, 0.4);
    // Working set far exceeds the 32K-line LLC.
    EXPECT_GT(p.distinctLines, 150000u);
}

TEST(WorkloadStats, SoplexHasMultiTargetNodes)
{
    auto p = profileTrace("soplex_pds-50");
    // The MVB's reason to exist (Figure 8): a healthy fraction of
    // addresses with 2+ Markov targets.
    EXPECT_GT(p.multiTargetFraction, 0.10);
}

TEST(WorkloadStats, Sphinx3FootprintIsSmall)
{
    auto p = profileTrace("sphinx3");
    // Under 1 MB of metadata (196K entries) by a wide margin — the
    // resizing showcase.
    EXPECT_LT(p.distinctLines, 120000u);
}

TEST(WorkloadStats, AstarStrideHeavy)
{
    auto p = profileTrace("astar_biglakes");
    // Bandwidth-pressure signature: lots of lines, moderate
    // dependence.
    EXPECT_GT(p.distinctLines, 80000u);
    EXPECT_LT(p.dependentFraction, 0.7);
}

TEST(WorkloadStats, EveryWorkloadHasMultiplePcs)
{
    for (const auto &w : specWorkloads()) {
        auto p = profileTrace(w, 100000);
        EXPECT_GE(p.distinctPcs, 4u) << w;
        EXPECT_LE(p.distinctPcs, 64u) << w;
    }
}

TEST(WorkloadStats, OmnetppHasUselessBursts)
{
    // The Figure 1 signature: a meaningful share of the hot PC's
    // correlations never repeat.
    auto t = makeWorkload("omnetpp", 400000)->generate();
    std::unordered_map<PC, std::uint64_t> counts;
    for (const auto &rec : t)
        ++counts[rec.pc];
    PC hot = 0;
    std::uint64_t best = 0;
    for (auto &[pc, c] : counts)
        if (c > best) {
            best = c;
            hot = pc;
        }
    std::unordered_map<Addr, std::set<Addr>> succ;
    std::map<std::pair<Addr, Addr>, unsigned> pair_counts;
    Addr last = kInvalidAddr;
    for (const auto &rec : t) {
        if (rec.pc != hot)
            continue;
        Addr line = lineAddr(rec.addr);
        if (last != kInvalidAddr)
            ++pair_counts[{last, line}];
        last = line;
    }
    std::uint64_t repeating = 0, oneoff = 0;
    for (const auto &[pair, c] : pair_counts) {
        if (c > 1)
            repeating += c;
        else
            ++oneoff;
    }
    EXPECT_GT(oneoff, 1000u); // red dots exist
    EXPECT_GT(repeating, oneoff); // but blue dominates
}

TEST(WorkloadStats, GccEInputSensitivity)
{
    // The Load E mechanism: the shared PC's successor stability
    // differs strongly between a stable input (166) and an unstable
    // one (typeck). Measured as repeat fraction of its pairs.
    auto repeat_fraction = [](const std::string &name) {
        auto t = makeWorkload(name, 400000)->generate();
        // Load E is slot 5 of workload id 7.
        PC e_pc = 0x400000 + 7 * 0x10000 + 5 * 0x40;
        std::map<std::pair<Addr, Addr>, unsigned> pairs;
        Addr last = kInvalidAddr;
        for (const auto &rec : t) {
            if (rec.pc != e_pc)
                continue;
            Addr line = lineAddr(rec.addr);
            if (last != kInvalidAddr)
                ++pairs[{last, line}];
            last = line;
        }
        std::uint64_t rep = 0, total = 0;
        for (const auto &[p, c] : pairs) {
            total += c;
            if (c > 1)
                rep += c;
        }
        return total ? static_cast<double>(rep)
                / static_cast<double>(total)
                     : 0.0;
    };
    double stable = repeat_fraction("gcc_166");
    double unstable = repeat_fraction("gcc_typeck");
    EXPECT_GT(stable, unstable + 0.15);
}

} // anonymous namespace
} // namespace prophet::workloads
