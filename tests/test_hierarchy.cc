/**
 * @file
 * Integration tests for the L1 -> L2 -> LLC -> DRAM hierarchy:
 * demand paths, prefetch injection at both levels, usefulness
 * attribution, and writeback routing.
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

namespace prophet::mem
{
namespace
{

HierarchyConfig
tinyConfig()
{
    HierarchyConfig cfg;
    cfg.l1d = {"L1D", 4 * 1024, 4, 2, 8, "lru"};
    cfg.l2 = {"L2", 16 * 1024, 8, 9, 8, "lru"};
    cfg.llc = {"LLC", 64 * 1024, 16, 20, 8, "lru"};
    cfg.dram = DramConfig{150, 8, 1};
    return cfg;
}

TEST(Hierarchy, ColdMissGoesToDram)
{
    Hierarchy h(tinyConfig());
    auto out = h.access(0x400, 0x10000, false, 0);
    EXPECT_EQ(out.level, HitLevel::Dram);
    EXPECT_TRUE(out.l2Accessed);
    EXPECT_FALSE(out.l2Hit);
    EXPECT_GE(out.readyAt, 150u);
    EXPECT_EQ(h.dram().stats().reads, 1u);
}

TEST(Hierarchy, SecondAccessHitsL1)
{
    Hierarchy h(tinyConfig());
    h.access(0x400, 0x10000, false, 0);
    auto out = h.access(0x400, 0x10000, false, 1000);
    EXPECT_EQ(out.level, HitLevel::L1);
    EXPECT_FALSE(out.l2Accessed);
    EXPECT_EQ(out.readyAt, 1002u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    HierarchyConfig cfg = tinyConfig();
    Hierarchy h(cfg);
    Addr target = 0x10000;
    h.access(0x400, target, false, 0);
    // Evict the line from the 64-set L1 by filling its set (sets are
    // 16 for 4KB/4way/64B: stride 16 lines = 1024 bytes).
    unsigned l1_sets = h.l1().numSets();
    for (unsigned i = 1; i <= 4; ++i)
        h.access(0x404, target + i * l1_sets * kLineSize, false,
                 1000 + i);
    auto out = h.access(0x400, target, false, 5000);
    EXPECT_EQ(out.level, HitLevel::L2);
    EXPECT_TRUE(out.l2Hit);
}

TEST(Hierarchy, L2PrefetchInstallsInL2NotL1)
{
    Hierarchy h(tinyConfig());
    EXPECT_TRUE(h.prefetchL2(0x999, 0x77, 0));
    EXPECT_TRUE(h.l2().contains(0x77));
    EXPECT_FALSE(h.l1().contains(0x77));
    // The demand that consumes it is credited to the prefetch PC.
    auto out = h.access(0x400, 0x77 << kLineShift, false, 1000);
    EXPECT_EQ(out.level, HitLevel::L2);
    EXPECT_TRUE(out.prefetchUseful);
    EXPECT_EQ(out.prefetchClass, PfClass::L2);
    EXPECT_EQ(out.prefetchPc, 0x999u);
}

TEST(Hierarchy, RedundantL2PrefetchSquashed)
{
    Hierarchy h(tinyConfig());
    EXPECT_TRUE(h.prefetchL2(0x1, 0x88, 0));
    EXPECT_FALSE(h.prefetchL2(0x1, 0x88, 10));
    EXPECT_EQ(h.l2PrefetchesIssued(), 1u);
}

TEST(Hierarchy, L1PrefetchReportsL2Observation)
{
    Hierarchy h(tinyConfig());
    auto out = h.prefetchL1(0x2, 0x55, 0);
    EXPECT_TRUE(out.issued);
    EXPECT_TRUE(out.l2Accessed);
    EXPECT_FALSE(out.l2Hit);
    EXPECT_TRUE(h.l1().contains(0x55));
    EXPECT_TRUE(h.l2().contains(0x55));

    // Now that it's in L1, a repeat is redundant.
    auto again = h.prefetchL1(0x2, 0x55, 100);
    EXPECT_FALSE(again.issued);
}

TEST(Hierarchy, L1PrefetchHitInL2DoesNotTouchDram)
{
    Hierarchy h(tinyConfig());
    h.prefetchL2(0x1, 0x44, 0);
    auto before = h.dram().stats().reads;
    auto out = h.prefetchL1(0x2, 0x44, 100);
    EXPECT_TRUE(out.l2Hit);
    EXPECT_EQ(h.dram().stats().reads, before);
}

TEST(Hierarchy, PrefetchReadsCountedSeparately)
{
    Hierarchy h(tinyConfig());
    h.prefetchL2(0x1, 0x200, 0);
    h.access(0x400, 0x90000, false, 0);
    EXPECT_EQ(h.dram().stats().reads, 2u);
    EXPECT_EQ(h.dram().stats().prefetchReads, 1u);
}

TEST(Hierarchy, DirtyEvictionReachesDram)
{
    HierarchyConfig cfg = tinyConfig();
    Hierarchy h(cfg);
    // Write a line, then stream enough conflicting lines through the
    // whole hierarchy to force it out everywhere.
    h.access(0x400, 0x10000, true, 0);
    unsigned llc_sets = h.llc().numSets();
    for (unsigned i = 1; i <= 40; ++i)
        h.access(0x404, 0x10000 + i * llc_sets * kLineSize, false,
                 i * 10);
    EXPECT_GT(h.dram().stats().writes, 0u);
}

TEST(Hierarchy, LatePrefetchReported)
{
    Hierarchy h(tinyConfig());
    h.prefetchL2(0x9, 0x300, 0); // completes ~150+ cycles later
    auto out = h.access(0x400, 0x300 << kLineShift, false, 5);
    EXPECT_TRUE(out.prefetchUseful);
    EXPECT_TRUE(out.prefetchLate);
    EXPECT_GT(out.readyAt, 100u);
}

TEST(Hierarchy, TimelyPrefetchFullCredit)
{
    Hierarchy h(tinyConfig());
    h.prefetchL2(0x9, 0x300, 0);
    auto out = h.access(0x400, 0x300 << kLineShift, false, 5000);
    EXPECT_TRUE(out.prefetchUseful);
    EXPECT_FALSE(out.prefetchLate);
    // L1 miss + L2 hit latency only.
    EXPECT_LE(out.readyAt - 5000, 20u);
}

TEST(Hierarchy, ResetStatsClearsAllLevels)
{
    Hierarchy h(tinyConfig());
    h.access(0x1, 0x5000, false, 0);
    h.prefetchL2(0x2, 0x600, 0);
    h.resetStats();
    EXPECT_EQ(h.l1().stats().demandMisses, 0u);
    EXPECT_EQ(h.dram().stats().reads, 0u);
    EXPECT_EQ(h.l2PrefetchesIssued(), 0u);
}

} // anonymous namespace
} // namespace prophet::mem
