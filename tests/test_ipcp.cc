/**
 * @file
 * Unit tests for the IPCP-style L1 prefetcher (Figure 17's richer
 * commercial L1 configuration).
 */

#include <gtest/gtest.h>

#include "prefetch/ipcp.hh"

namespace prophet::pf
{
namespace
{

TEST(Ipcp, ConstantStrideClassified)
{
    IpcpPrefetcher pf(6, 4);
    std::vector<Addr> out;
    for (Addr a = 100; a < 106; ++a) {
        out.clear();
        pf.observe(1, a, false, out);
    }
    ASSERT_GE(out.size(), 6u);
    EXPECT_EQ(out[0], 106u);
    EXPECT_EQ(out[5], 111u);
}

TEST(Ipcp, ComplexRepeatingDeltasCovered)
{
    IpcpPrefetcher pf(6, 4);
    std::vector<Addr> out;
    // Repeating +1,+3,+1,+3 is not a constant stride but the CPLX
    // signature predictor learns it.
    Addr a = 1000;
    bool predicted = false;
    for (int i = 0; i < 64; ++i) {
        out.clear();
        pf.observe(2, a, false, out);
        if (!out.empty())
            predicted = true;
        a += (i % 2 == 0) ? 1 : 3;
    }
    EXPECT_TRUE(predicted);
}

TEST(Ipcp, RandomAccessesStayQuiet)
{
    IpcpPrefetcher pf(6, 4);
    std::vector<Addr> out;
    std::uint64_t x = 12345;
    int issued = 0;
    for (int i = 0; i < 200; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        out.clear();
        pf.observe(3, (x >> 20) & 0xffffff, false, out);
        issued += static_cast<int>(out.size());
    }
    EXPECT_LT(issued, 40);
}

TEST(Ipcp, DenseRegionTriggersStreamBurst)
{
    IpcpPrefetcher pf(6, 4);
    std::vector<Addr> out;
    // Touch a 32-line region densely in a scrambled order that
    // defeats stride/CPLX classification.
    const Addr base = 64000;
    int order[] = {0, 7, 2, 9, 4, 11, 6, 1, 8, 3, 10, 5, 12, 19, 14,
                   21, 16, 23, 18, 13, 20, 15, 22, 17, 24, 26, 28,
                   30, 25, 27, 29, 31};
    std::size_t total = 0;
    for (int idx : order) {
        out.clear();
        pf.observe(4, base + static_cast<Addr>(idx), false, out);
        total += out.size();
    }
    EXPECT_GT(total, 0u);
}

TEST(Ipcp, PerPcClassIsolation)
{
    IpcpPrefetcher pf(4, 4);
    std::vector<Addr> out;
    for (int i = 0; i < 8; ++i) {
        out.clear();
        pf.observe(10, 100 + static_cast<Addr>(i), false, out);
        out.clear();
        pf.observe(11, 90000 - 2 * static_cast<Addr>(i), false, out);
    }
    out.clear();
    pf.observe(10, 108, false, out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], 109u);
    out.clear();
    pf.observe(11, 90000 - 18, false, out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], 90000u - 20);
}

} // anonymous namespace
} // namespace prophet::pf
