/**
 * @file
 * Unit tests for the CSR graph substrate and the CRONO-like graph
 * workloads (Figure 15).
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/graph/graph.hh"
#include "workloads/graph/graph_workloads.hh"

namespace prophet::workloads::graph
{
namespace
{

TEST(Graph, UniformWellFormed)
{
    auto g = makeUniformGraph(1000, 8, 42);
    EXPECT_EQ(g.numVertices(), 1000u);
    EXPECT_EQ(g.rowOffsets.front(), 0u);
    EXPECT_EQ(g.rowOffsets.back(), g.numEdges());
    for (std::uint32_t v = 0; v < g.numVertices(); ++v) {
        EXPECT_LE(g.rowOffsets[v], g.rowOffsets[v + 1]);
        EXPECT_GE(g.degree(v), 4u);
        EXPECT_LE(g.degree(v), 12u);
    }
    for (auto c : g.colIndices)
        EXPECT_LT(c, 1000u);
    EXPECT_EQ(g.weights.size(), g.colIndices.size());
}

TEST(Graph, AverageDegreeNearTarget)
{
    auto g = makeUniformGraph(5000, 10, 7);
    double avg = static_cast<double>(g.numEdges()) / 5000.0;
    EXPECT_NEAR(avg, 10.0, 1.0);
}

TEST(Graph, DeterministicPerSeed)
{
    auto a = makeUniformGraph(500, 6, 9);
    auto b = makeUniformGraph(500, 6, 9);
    EXPECT_EQ(a.colIndices, b.colIndices);
    auto c = makeUniformGraph(500, 6, 10);
    EXPECT_NE(a.colIndices, c.colIndices);
}

TEST(Graph, SkewedConcentratesOnLowRanks)
{
    auto g = makeSkewedGraph(10000, 8, 11);
    std::uint64_t low = 0;
    for (auto c : g.colIndices)
        if (c < 1000)
            ++low;
    double frac = static_cast<double>(low)
        / static_cast<double>(g.numEdges());
    // Zipf-ish: the lowest 10% of ranks draw far more than 10%.
    EXPECT_GT(frac, 0.25);
}

TEST(GraphWorkloadTest, BudgetRespected)
{
    auto w = makeGraphWorkload("bfs_100000_16", 50000);
    auto t = w->generate();
    EXPECT_GE(t.size(), 50000u);
    EXPECT_LE(t.size(), 50008u);
}

TEST(GraphWorkloadTest, AllKernelsParse)
{
    for (const char *label :
         {"bfs_80000_8", "dfs_800000_800", "sssp_100000_5",
          "pagerank_100000_100", "bc_40000_10"}) {
        auto w = makeGraphWorkload(label, 5000);
        EXPECT_EQ(w->name(), label);
        auto t = w->generate();
        EXPECT_GE(t.size(), 5000u);
    }
}

TEST(GraphWorkloadTest, ResolverPredictsIndirectTargets)
{
    auto w = makeGraphWorkload("sssp_100000_5", 40000);
    auto t = w->generate();
    const auto *resolver = w->resolver();
    ASSERT_NE(resolver, nullptr);

    auto *gw = dynamic_cast<GraphWorkload *>(w.get());
    ASSERT_NE(gw, nullptr);
    PC kernel = gw->edgeScanPc();

    // For each edge-scan access followed later by the edge-scan at
    // +d, the resolver's answer must equal the data access that
    // follows that future kernel access.
    int checked = 0;
    std::vector<std::size_t> kernel_idx;
    for (std::size_t i = 0; i < t.size(); ++i)
        if (t[i].pc == kernel)
            kernel_idx.push_back(i);
    for (std::size_t k = 0; k + 2 < kernel_idx.size() && checked < 50;
         ++k) {
        std::size_t i = kernel_idx[k];
        std::size_t j = kernel_idx[k + 2];
        // The record after a kernel access is its indirect target
        // (SSSP emits weights between; find the dependent load).
        std::size_t target_j = j + 1;
        while (target_j < t.size() && !t[target_j].dependsOnPrev)
            ++target_j;
        if (target_j >= t.size())
            break;
        auto resolved = resolver->resolve(kernel, t[i].addr, 2);
        if (resolved) {
            EXPECT_EQ(lineAddr(*resolved), lineAddr(t[target_j].addr));
            ++checked;
        }
    }
    EXPECT_GT(checked, 10);
}

TEST(GraphWorkloadTest, SsspRoundsRepeat)
{
    // Bellman-Ford rounds produce identical access sequences —
    // the temporal pattern hardware prefetchers learn.
    auto w = makeGraphWorkload("sssp_2000_4", 60000);
    auto t = w->generate();
    // Find the period: the first record's (pc, addr) recurs at the
    // round boundary.
    std::size_t period = 0;
    for (std::size_t i = 1; i < t.size(); ++i) {
        if (t[i].pc == t[0].pc && t[i].addr == t[0].addr) {
            period = i;
            break;
        }
    }
    ASSERT_GT(period, 0u);
    for (std::size_t i = 0; i < 200 && period + i < t.size(); ++i) {
        EXPECT_EQ(t[i].pc, t[period + i].pc);
        EXPECT_EQ(t[i].addr, t[period + i].addr);
    }
}

TEST(GraphWorkloadTest, DistinctKernelsUseDistinctPcs)
{
    auto bfs = makeGraphWorkload("bfs_10000_8", 2000);
    auto sssp = makeGraphWorkload("sssp_10000_8", 2000);
    auto tb = bfs->generate();
    auto ts = sssp->generate();
    std::set<PC> pcs_b, pcs_s;
    for (const auto &r : tb)
        pcs_b.insert(r.pc);
    for (const auto &r : ts)
        pcs_s.insert(r.pc);
    for (PC pc : pcs_b)
        EXPECT_EQ(pcs_s.count(pc), 0u);
}

} // anonymous namespace
} // namespace prophet::workloads::graph
