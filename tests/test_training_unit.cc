/**
 * @file
 * Unit tests for the PC-indexed training unit shared by the temporal
 * prefetchers.
 */

#include <gtest/gtest.h>

#include "prefetch/training_unit.hh"

namespace prophet::pf
{
namespace
{

TEST(TrainingUnit, FirstAccessHasNoPredecessor)
{
    TrainingUnit tu;
    EXPECT_FALSE(tu.swap(0x400, 100).has_value());
}

TEST(TrainingUnit, SwapReturnsPrevious)
{
    TrainingUnit tu;
    tu.swap(0x400, 100);
    auto prev = tu.swap(0x400, 200);
    ASSERT_TRUE(prev.has_value());
    EXPECT_EQ(*prev, 100u);
    auto prev2 = tu.swap(0x400, 300);
    ASSERT_TRUE(prev2.has_value());
    EXPECT_EQ(*prev2, 200u);
}

TEST(TrainingUnit, PerPcChains)
{
    TrainingUnit tu;
    tu.swap(1, 10);
    tu.swap(2, 20);
    EXPECT_EQ(*tu.swap(1, 11), 10u);
    EXPECT_EQ(*tu.swap(2, 21), 20u);
}

TEST(TrainingUnit, PeekDoesNotUpdate)
{
    TrainingUnit tu;
    tu.swap(5, 500);
    EXPECT_EQ(*tu.peek(5), 500u);
    EXPECT_EQ(*tu.peek(5), 500u);
    EXPECT_FALSE(tu.peek(6).has_value());
}

TEST(TrainingUnit, CapacityEvictsLru)
{
    // 1 set x 2 ways: third distinct PC in the set evicts the LRU.
    TrainingUnit tu(1, 2);
    tu.swap(1, 10);
    tu.swap(2, 20);
    tu.swap(1, 11); // PC 1 refreshed; PC 2 is now LRU
    tu.swap(3, 30); // evicts PC 2
    EXPECT_TRUE(tu.peek(1).has_value());
    EXPECT_FALSE(tu.peek(2).has_value());
    EXPECT_TRUE(tu.peek(3).has_value());
}

TEST(TrainingUnit, EvictedPcRestartsCold)
{
    TrainingUnit tu(1, 1);
    tu.swap(1, 10);
    tu.swap(2, 20); // evicts PC 1
    EXPECT_FALSE(tu.swap(1, 11).has_value()); // cold restart
}

TEST(TrainingUnit, ManyPcsTracked)
{
    TrainingUnit tu(256, 4);
    for (PC pc = 0; pc < 500; ++pc)
        tu.swap(pc * 0x40, pc);
    int remembered = 0;
    for (PC pc = 0; pc < 500; ++pc)
        if (tu.peek(pc * 0x40).has_value())
            ++remembered;
    // 1024 slots for 500 PCs: nearly all should be retained.
    EXPECT_GT(remembered, 450);
}

} // anonymous namespace
} // namespace prophet::pf
