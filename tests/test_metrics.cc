/**
 * @file
 * Tests for the metrics registry: concurrent counter increments sum
 * exactly, histogram bucket edges follow the log2 rule, references
 * survive resetValues() (the driver resets between runs while
 * subsystems keep cached references), and snapshots are
 * deterministic name order.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/metrics.hh"

namespace prophet
{
namespace
{

TEST(Metrics, ConcurrentIncrementsSumExactly)
{
    metrics::Counter &c =
        metrics::counter("test.concurrent_increments");
    c.reset();
    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kPerThread = 100000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&c] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                c.inc();
        });
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Metrics, CounterIncByDelta)
{
    metrics::Counter &c = metrics::counter("test.counter_delta");
    c.reset();
    c.inc(41);
    c.inc();
    EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, HistogramBucketEdges)
{
    // Bucket 0 holds exact zeros; bucket i >= 1 holds [2^(i-1), 2^i).
    EXPECT_EQ(metrics::Histogram::bucketOf(0), 0u);
    EXPECT_EQ(metrics::Histogram::bucketOf(1), 1u);
    EXPECT_EQ(metrics::Histogram::bucketOf(2), 2u);
    EXPECT_EQ(metrics::Histogram::bucketOf(3), 2u);
    EXPECT_EQ(metrics::Histogram::bucketOf(4), 3u);
    EXPECT_EQ(metrics::Histogram::bucketOf(7), 3u);
    EXPECT_EQ(metrics::Histogram::bucketOf(8), 4u);
    EXPECT_EQ(metrics::Histogram::bucketOf(1023), 10u);
    EXPECT_EQ(metrics::Histogram::bucketOf(1024), 11u);
    // The top bucket absorbs everything past 2^62.
    EXPECT_EQ(metrics::Histogram::bucketOf(~std::uint64_t{0}),
              metrics::Histogram::kBuckets - 1);

    EXPECT_EQ(metrics::Histogram::bucketLowerBound(0), 0u);
    EXPECT_EQ(metrics::Histogram::bucketLowerBound(1), 1u);
    EXPECT_EQ(metrics::Histogram::bucketLowerBound(2), 2u);
    EXPECT_EQ(metrics::Histogram::bucketLowerBound(3), 4u);
    EXPECT_EQ(metrics::Histogram::bucketLowerBound(11), 1024u);

    // Round-trip: every sample lands in a bucket whose bound is <=
    // the sample.
    for (std::uint64_t s : {0ull, 1ull, 5ull, 100ull, 1ull << 20,
                            ~0ull >> 1}) {
        std::size_t b = metrics::Histogram::bucketOf(s);
        EXPECT_LE(metrics::Histogram::bucketLowerBound(b), s);
    }
}

TEST(Metrics, HistogramCountSumMinMax)
{
    metrics::Histogram &h = metrics::histogram("test.hist_stats");
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u); // empty histogram reports 0, not 2^64-1
    EXPECT_EQ(h.max(), 0u);

    h.record(5);
    h.record(100);
    h.record(3);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 108u);
    EXPECT_EQ(h.min(), 3u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_EQ(h.bucket(metrics::Histogram::bucketOf(5)), 1u);

    auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 3u);
    EXPECT_EQ(snap.sum, 108u);
    EXPECT_EQ(snap.min, 3u);
    EXPECT_EQ(snap.max, 100u);
    ASSERT_EQ(snap.buckets.size(), metrics::Histogram::kBuckets);
}

TEST(Metrics, GaugeSetAddReset)
{
    metrics::Gauge &g = metrics::gauge("test.gauge");
    g.reset();
    g.set(10);
    g.add(-3);
    EXPECT_EQ(g.value(), 7);
    g.reset();
    EXPECT_EQ(g.value(), 0);
}

TEST(Metrics, ResetValuesKeepsRegistrationsAndAddresses)
{
    // The driver calls resetValues() at the start of every run while
    // subsystems hold cached references from earlier runs — the
    // whole design hinges on those references staying valid.
    metrics::Counter &before = metrics::counter("test.reset_keep");
    before.inc(7);
    metrics::Registry::instance().resetValues();
    EXPECT_EQ(before.value(), 0u);
    metrics::Counter &after = metrics::counter("test.reset_keep");
    EXPECT_EQ(&before, &after);
    after.inc();
    EXPECT_EQ(before.value(), 1u);
}

TEST(Metrics, SnapshotIsNameOrdered)
{
    metrics::counter("test.zzz_order").inc();
    metrics::counter("test.aaa_order").inc();
    auto snap = metrics::Registry::instance().snapshot();
    ASSERT_GE(snap.counters.size(), 2u);
    for (std::size_t i = 1; i < snap.counters.size(); ++i)
        EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
}

TEST(Metrics, KindCollisionDies)
{
    metrics::counter("test.kind_collision");
    EXPECT_DEATH(metrics::gauge("test.kind_collision"), "");
}

TEST(Metrics, ScopedTimerRecordsIntoHistogram)
{
    metrics::Histogram &h = metrics::histogram("test.scoped_timer");
    h.reset();
    {
        metrics::ScopedTimer t(h);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(h.count(), 1u);
    EXPECT_GE(h.sum(), 1000000u); // slept >= 1 ms

    // stop() records once and detaches; destruction adds nothing.
    {
        metrics::ScopedTimer t(h);
        EXPECT_GT(t.stop(), 0u);
    }
    EXPECT_EQ(h.count(), 2u);
}

} // anonymous namespace
} // namespace prophet
