/**
 * @file
 * Tests for the parallel sweep engine and thread pool: parallel
 * execution must produce results bit-identical to serial execution,
 * field by field, because every job is an independent deterministic
 * System over a shared immutable trace and merging is by job index.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "sim/sweep.hh"
#include "sim/thread_pool.hh"

namespace prophet::sim
{
namespace
{

/** Short traces keep the sweep tests fast; determinism is per-run. */
constexpr std::size_t kRecords = 60'000;

void
expectStatsEq(const RunStats &a, const RunStats &b)
{
    EXPECT_EQ(a.ipc, b.ipc); // bit-identical, not just approximate
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.records, b.records);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l2DemandAccesses, b.l2DemandAccesses);
    EXPECT_EQ(a.l2DemandMisses, b.l2DemandMisses);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.l2PrefetchesIssued, b.l2PrefetchesIssued);
    EXPECT_EQ(a.l2PrefetchesUseful, b.l2PrefetchesUseful);
    EXPECT_EQ(a.latePrefetches, b.latePrefetches);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    EXPECT_EQ(a.dramPrefetchReads, b.dramPrefetchReads);
    EXPECT_EQ(a.markov.lookups, b.markov.lookups);
    EXPECT_EQ(a.markov.hits, b.markov.hits);
    EXPECT_EQ(a.markov.inserts, b.markov.inserts);
    EXPECT_EQ(a.markov.updates, b.markov.updates);
    EXPECT_EQ(a.markov.replacements, b.markov.replacements);
    EXPECT_EQ(a.markov.resizeDrops, b.markov.resizeDrops);
    EXPECT_EQ(a.finalMetadataWays, b.finalMetadataWays);
    EXPECT_EQ(a.offchipMeta.metadataReads, b.offchipMeta.metadataReads);
    EXPECT_EQ(a.offchipMeta.metadataWrites,
              b.offchipMeta.metadataWrites);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.llcAccesses, b.llcAccesses);
    EXPECT_EQ(a.pcMisses, b.pcMisses);
}

TEST(ThreadPool, RunsEverySubmittedJob)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);

    // The pool is reusable across batches.
    for (int i = 0; i < 50; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 150);
}

TEST(ThreadPool, ResolveThreadsDefaultsToHardware)
{
    EXPECT_GE(ThreadPool::resolveThreads(0), 1u);
    EXPECT_EQ(ThreadPool::resolveThreads(3), 3u);
}

TEST(Sweep, ForEachCoversAllIndicesOnce)
{
    Runner r(SystemConfig::table1(), kRecords);
    SweepEngine engine(r, 4);
    std::vector<std::atomic<int>> hits(64);
    engine.forEach(64, [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(Sweep, ForEachPropagatesJobException)
{
    Runner r(SystemConfig::table1(), kRecords);
    SweepEngine engine(r, 4);
    EXPECT_THROW(engine.forEach(8,
                                [](std::size_t i) {
                                    if (i == 5)
                                        throw std::runtime_error("boom");
                                }),
                 std::runtime_error);
}

TEST(Sweep, ParallelConfigSweepMatchesSerial)
{
    std::vector<SweepJob> jobs;
    for (const char *w : {"sphinx3", "gcc_166"}) {
        for (L2PfKind kind : {L2PfKind::None, L2PfKind::Triangel,
                              L2PfKind::Triage}) {
            SweepJob j;
            j.workload = w;
            j.cfg = SystemConfig::table1();
            j.cfg.l2Pf = kind;
            jobs.push_back(std::move(j));
        }
    }

    Runner serialRunner(SystemConfig::table1(), kRecords);
    SweepEngine serial(serialRunner, 1);
    EXPECT_EQ(serial.threads(), 1u);
    auto a = serial.runConfigs(jobs);

    Runner parallelRunner(SystemConfig::table1(), kRecords);
    SweepEngine parallel(parallelRunner, 4);
    EXPECT_EQ(parallel.threads(), 4u);
    auto b = parallel.runConfigs(jobs);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectStatsEq(a[i], b[i]);
}

TEST(Sweep, ParallelTrioMatchesSerialFieldByField)
{
    // The acceptance bar for the sweep engine: the full trio
    // pipeline — RPG2 identify/tune (its ~7 binary-search runs),
    // Triangel, and Prophet profile/analyze/run — over a small
    // workload set, serially and with 4 threads, must agree on every
    // statistic bit for bit.
    std::vector<std::string> workloads{"sphinx3", "sssp_100000_5"};

    Runner serialRunner(SystemConfig::table1(), kRecords);
    SweepEngine serial(serialRunner, 1);
    auto a = serial.runTrios(workloads);

    Runner parallelRunner(SystemConfig::table1(), kRecords);
    SweepEngine parallel(parallelRunner, 4);
    auto b = parallel.runTrios(workloads);

    ASSERT_EQ(a.size(), b.size());
    for (const auto &w : workloads) {
        SCOPED_TRACE(w);
        const TrioOutcome &x = a.at(w);
        const TrioOutcome &y = b.at(w);
        expectStatsEq(x.rpg2.stats, y.rpg2.stats);
        EXPECT_EQ(x.rpg2.tunedDistance, y.rpg2.tunedDistance);
        EXPECT_EQ(x.rpg2.kernels.size(), y.rpg2.kernels.size());
        expectStatsEq(x.triangel, y.triangel);
        expectStatsEq(x.prophet.stats, y.prophet.stats);
        EXPECT_EQ(x.prophet.binary.hints.size(),
                  y.prophet.binary.hints.size());
        // Baselines cached by racing workers must also agree.
        expectStatsEq(serialRunner.baseline(w),
                      parallelRunner.baseline(w));
    }
}

TEST(SweepEngine, TryForEachKeepGoingIsolatesTheFailingJob)
{
    Runner runner(SystemConfig::table1(), kRecords);
    SweepEngine engine(runner, 4);
    std::atomic<int> ran{0};
    auto failures = engine.tryForEach(
        8,
        [&](std::size_t i) {
            if (i == 3)
                throw std::runtime_error("job 3 boom");
            ++ran;
        },
        SweepEngine::FailurePolicy::KeepGoing);
    // Every sibling of the failing job still ran.
    EXPECT_EQ(ran.load(), 7);
    ASSERT_EQ(failures.size(), 8u);
    for (std::size_t i = 0; i < failures.size(); ++i) {
        if (i == 3)
            continue;
        EXPECT_TRUE(failures[i].ok()) << "job " << i;
    }
    ASSERT_TRUE(failures[3].error);
    EXPECT_FALSE(failures[3].skipped);
    try {
        std::rethrow_exception(failures[3].error);
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "job 3 boom");
    }
}

TEST(SweepEngine, TryForEachFailFastSkipsTheRestAndFiresTheToken)
{
    // Serial engine: job order is deterministic, so the failure at
    // index 1 must leave 0 complete and 2..3 skipped-not-run.
    Runner runner(SystemConfig::table1(), kRecords);
    SweepEngine engine(runner, 1);
    CancellationToken token;
    std::atomic<int> ran{0};
    auto failures = engine.tryForEach(
        4,
        [&](std::size_t i) {
            if (i == 1)
                throw std::runtime_error("first failure");
            ++ran;
        },
        SweepEngine::FailurePolicy::FailFast, &token);
    EXPECT_EQ(ran.load(), 1);
    ASSERT_EQ(failures.size(), 4u);
    EXPECT_TRUE(failures[0].ok());
    EXPECT_TRUE(failures[1].error);
    EXPECT_TRUE(failures[2].skipped);
    EXPECT_TRUE(failures[3].skipped);
    EXPECT_FALSE(failures[2].error);
    EXPECT_TRUE(token.cancelled());
}

TEST(ThreadPool, EscapedExceptionIsCountedNotFatal)
{
    // forEach/tryForEach capture failures inside the closure; a job
    // that leaks an exception anyway (a caller bug) must not kill
    // the worker — it is logged, counted, and dropped.
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("leaked"); });
    pool.submit([] {});
    pool.wait();
    EXPECT_EQ(pool.swallowedExceptions(), 1u);

    // The pool still works afterwards.
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 8);
    EXPECT_EQ(pool.swallowedExceptions(), 1u);
}

} // anonymous namespace
} // namespace prophet::sim
