/**
 * @file
 * Tests for the structured error model: code names are stable (the
 * CLI and sinks print them), the transient classification drives the
 * driver's retry policy, and what() renders the context block the
 * failure site attached.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/error.hh"

namespace prophet
{
namespace
{

TEST(Error, CodeNamesAreStableAndLowerCase)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::Ok), "ok");
    EXPECT_STREQ(errorCodeName(ErrorCode::SpecParse), "spec-parse");
    EXPECT_STREQ(errorCodeName(ErrorCode::PipelineConfig),
                 "pipeline-config");
    EXPECT_STREQ(errorCodeName(ErrorCode::WorkloadUnknown),
                 "workload-unknown");
    EXPECT_STREQ(errorCodeName(ErrorCode::TraceIo), "trace-io");
    EXPECT_STREQ(errorCodeName(ErrorCode::TraceCorrupt),
                 "trace-corrupt");
    EXPECT_STREQ(errorCodeName(ErrorCode::CacheLock), "cache-lock");
    EXPECT_STREQ(errorCodeName(ErrorCode::DiskFull), "disk-full");
    EXPECT_STREQ(errorCodeName(ErrorCode::Cancelled), "cancelled");
    EXPECT_STREQ(errorCodeName(ErrorCode::FaultInjected),
                 "fault-injected");
    EXPECT_STREQ(errorCodeName(ErrorCode::Internal), "internal");
    EXPECT_STREQ(errorCodeName(ErrorCode::JournalCorrupt),
                 "journal-corrupt");
    EXPECT_STREQ(errorCodeName(ErrorCode::JobTimeout), "job-timeout");
    EXPECT_STREQ(errorCodeName(ErrorCode::ServerOverloaded),
                 "server-overloaded");
    EXPECT_STREQ(errorCodeName(ErrorCode::ProtocolError),
                 "protocol-error");
    EXPECT_STREQ(errorCodeName(ErrorCode::SocketBusy),
                 "socket-busy");
}

TEST(Error, OnlyIoLockAndTimeoutClassesAreTransient)
{
    // The retry policy keys off this: an I/O hiccup, a briefly held
    // lock, or a deadline blown on an overloaded machine can clear
    // on their own; corruption, bad specs, and cancellation cannot.
    EXPECT_TRUE(isTransientError(ErrorCode::TraceIo));
    EXPECT_TRUE(isTransientError(ErrorCode::CacheLock));
    EXPECT_TRUE(isTransientError(ErrorCode::JobTimeout));
    // Overload clears as the daemon drains its queue — the error
    // frame even carries a retry_after_ms hint.
    EXPECT_TRUE(isTransientError(ErrorCode::ServerOverloaded));

    EXPECT_FALSE(isTransientError(ErrorCode::Ok));
    EXPECT_FALSE(isTransientError(ErrorCode::SpecParse));
    EXPECT_FALSE(isTransientError(ErrorCode::PipelineConfig));
    EXPECT_FALSE(isTransientError(ErrorCode::WorkloadUnknown));
    EXPECT_FALSE(isTransientError(ErrorCode::TraceCorrupt));
    EXPECT_FALSE(isTransientError(ErrorCode::DiskFull));
    EXPECT_FALSE(isTransientError(ErrorCode::Cancelled));
    EXPECT_FALSE(isTransientError(ErrorCode::FaultInjected));
    EXPECT_FALSE(isTransientError(ErrorCode::Internal));
    EXPECT_FALSE(isTransientError(ErrorCode::JournalCorrupt));
    EXPECT_FALSE(isTransientError(ErrorCode::ProtocolError));
    EXPECT_FALSE(isTransientError(ErrorCode::SocketBusy));
}

TEST(Error, CarriesCodeContextAndTransience)
{
    ErrorContext ctx;
    ctx.workload = "mcf";
    ctx.path = "/tmp/x.ptrc";
    ctx.offset = 40;
    Error e(ErrorCode::TraceCorrupt, "pc[] checksum mismatch",
            std::move(ctx));
    EXPECT_EQ(e.code(), ErrorCode::TraceCorrupt);
    EXPECT_FALSE(e.transient());
    EXPECT_EQ(e.context().workload, "mcf");
    EXPECT_EQ(e.context().path, "/tmp/x.ptrc");
    EXPECT_EQ(e.context().offset, 40u);
    EXPECT_TRUE(e.context().pipeline.empty());

    Error t(ErrorCode::TraceIo, "short read");
    EXPECT_TRUE(t.transient());
}

TEST(Error, WhatRendersCodeMessageAndPopulatedContext)
{
    ErrorContext ctx;
    ctx.workload = "mcf";
    ctx.pipeline = "prophet";
    Error e(ErrorCode::FaultInjected, "injected job failure",
            std::move(ctx));
    std::string what = e.what();
    EXPECT_NE(what.find("fault-injected"), std::string::npos) << what;
    EXPECT_NE(what.find("injected job failure"), std::string::npos);
    EXPECT_NE(what.find("mcf"), std::string::npos);
    EXPECT_NE(what.find("prophet"), std::string::npos);
    // Unpopulated fields stay out of the rendering.
    EXPECT_EQ(what.find("offset"), std::string::npos) << what;

    Error bare(ErrorCode::Internal, "boom");
    std::string bare_what = bare.what();
    EXPECT_NE(bare_what.find("internal"), std::string::npos);
    EXPECT_NE(bare_what.find("boom"), std::string::npos);
    EXPECT_EQ(bare_what.find('['), std::string::npos) << bare_what;
}

TEST(Error, IsCatchableAsRuntimeError)
{
    // One `catch (const prophet::Error &)` at the CLI top sees every
    // structured failure; plain runtime_error handlers still work.
    try {
        throw Error(ErrorCode::Cancelled, "stop");
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("stop"),
                  std::string::npos);
    }
}

} // anonymous namespace
} // namespace prophet
