/**
 * @file
 * Pipeline-registry tests. The registry replaced four hand-written
 * dispatch chains (driver dispatch, spec name/display lists, the
 * Runner's per-pipeline methods); these tests pin two properties:
 *
 *  1. Completeness/equivalence: every registered pipeline, run
 *     through the uniform Runner::run, is bit-for-bit identical to
 *     the legacy per-pipeline configuration it replaced (spelled out
 *     here exactly as the deleted code spelled it), and the
 *     parameterized paths (degree, replacement policy, Prophet
 *     features/learning) match their hand-built equivalents.
 *
 *  2. Validation: unknown pipeline names, unknown parameter keys,
 *     ill-typed or out-of-range values, and malformed "sweep" blocks
 *     are rejected at spec-parse time with errors that name the
 *     offender — never mid-run aborts.
 */

#include <gtest/gtest.h>

#include "core/analyzer.hh"
#include "core/learner.hh"
#include "driver/json.hh"
#include "driver/spec.hh"
#include "sim/pipelines.hh"
#include "sim/runner.hh"
#include "workloads/registry.hh"

namespace prophet::sim
{
namespace
{

/** Short traces keep the full-registry sweep fast. */
constexpr std::size_t kRecords = 20'000;

void
expectSameRun(const RunStats &a, const RunStats &b,
              const std::string &what)
{
    EXPECT_EQ(a.ipc, b.ipc) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.l2DemandMisses, b.l2DemandMisses) << what;
    EXPECT_EQ(a.l2PrefetchesIssued, b.l2PrefetchesIssued) << what;
    EXPECT_EQ(a.l2PrefetchesUseful, b.l2PrefetchesUseful) << what;
    EXPECT_EQ(a.dramReads, b.dramReads) << what;
    EXPECT_EQ(a.dramWrites, b.dramWrites) << what;
    EXPECT_EQ(a.offchipMeta.total(), b.offchipMeta.total()) << what;
}

/**
 * The legacy per-pipeline Runner path for every registered name,
 * captured verbatim before its deletion (Runner::runTriage/
 * runTriangel and the driver.cc if-chain).
 */
RunStats
legacyRun(Runner &runner, const std::string &pipeline,
          const std::string &workload)
{
    if (pipeline == "baseline")
        return runner.baseline(workload);
    if (pipeline == "rpg2")
        return runner.runRpg2(workload).stats;
    if (pipeline == "triage" || pipeline == "triage4") {
        SystemConfig cfg = runner.baseConfig();
        cfg.l2Pf = pipeline == "triage4" ? L2PfKind::Triage4
                                         : L2PfKind::Triage;
        return runner.runConfig(workload, cfg);
    }
    if (pipeline == "triangel") {
        SystemConfig cfg = runner.baseConfig();
        cfg.l2Pf = L2PfKind::Triangel;
        return runner.runConfig(workload, cfg);
    }
    if (pipeline == "prophet")
        return runner.runProphet(workload).stats;
    if (pipeline == "stms" || pipeline == "domino") {
        SystemConfig cfg = runner.baseConfig();
        cfg.l2Pf = pipeline == "stms" ? L2PfKind::Stms
                                      : L2PfKind::Domino;
        return runner.runConfig(workload, cfg);
    }
    ADD_FAILURE() << "legacyRun has no recipe for a newly "
                     "registered pipeline \""
                  << pipeline
                  << "\" — add one (and keep this test complete)";
    return RunStats{};
}

TEST(PipelineRegistry, EveryPipelineMatchesLegacyPathBitForBit)
{
    Runner registry_runner(SystemConfig::table1(), kRecords);
    Runner legacy_runner(SystemConfig::table1(), kRecords);
    ASSERT_FALSE(pipelineRegistry().empty());
    for (const auto &def : pipelineRegistry()) {
        SCOPED_TRACE(def.name);
        RunStats via_registry =
            registry_runner.run(def.name, "mcf");
        RunStats via_legacy = legacyRun(legacy_runner, def.name,
                                        "mcf");
        expectSameRun(via_registry, via_legacy, def.name);
    }
}

TEST(PipelineRegistry, LookupAndDisplayNames)
{
    EXPECT_NE(findPipeline("prophet"), nullptr);
    EXPECT_EQ(findPipeline("warpspeed"), nullptr);
    EXPECT_EQ(pipelineDisplayName("rpg2"), "RPG2");
    EXPECT_EQ(pipelineDisplayName("stms"), "STMS");
    EXPECT_EQ(pipelineDisplayName("unregistered"), "unregistered");
    EXPECT_EQ(pipelineNames().size(), pipelineRegistry().size());
    // Column titles: explicit labels win over display names.
    PipelineInstance labelled("triage");
    EXPECT_EQ(pipelineColumnTitle(labelled), "Triage");
    labelled.label = "triage-d4";
    EXPECT_EQ(pipelineColumnTitle(labelled), "triage-d4");
}

TEST(PipelineRegistry, RunnerRunValidatesParameterBags)
{
    // The uniform entry point enforces the same validation as the
    // spec parser — a programmatic caller cannot silently run a
    // different configuration than the one it named.
    Runner runner(SystemConfig::table1(), kRecords);
    PipelineInstance bad_degree("triage");
    bad_degree.params["degree"] = ParamValue::makeNumber(2);
    EXPECT_THROW(runner.run(bad_degree, "mcf"), PipelineError);
    PipelineInstance unknown_param("triage4");
    unknown_param.params["degree"] = ParamValue::makeNumber(4);
    EXPECT_THROW(runner.run(unknown_param, "mcf"), PipelineError);
}

TEST(PipelineRegistry, UnknownNameThrowsListingRegistered)
{
    Runner runner(SystemConfig::table1(), kRecords);
    try {
        runner.run("warpspeed", "mcf");
        FAIL() << "unknown pipeline accepted";
    } catch (const PipelineError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("warpspeed"), std::string::npos) << msg;
        EXPECT_NE(msg.find("prophet"), std::string::npos) << msg;
        EXPECT_NE(msg.find("triangel"), std::string::npos) << msg;
    }
}

TEST(PipelineRegistry, TriageDegreeParamMatchesTriage4Kind)
{
    Runner runner(SystemConfig::table1(), kRecords);
    PipelineInstance d4("triage");
    d4.params["degree"] = ParamValue::makeNumber(4);
    expectSameRun(runner.run(d4, "mcf"),
                  runner.run("triage4", "mcf"), "triage degree=4");
}

TEST(PipelineRegistry, TriageReplacementParamMatchesHandBuiltConfig)
{
    Runner runner(SystemConfig::table1(), kRecords);
    PipelineInstance p("triage4");
    p.params["meta_replacement"] = ParamValue::makeString("srrip");
    p.params["bloom_resizing"] = ParamValue::makeBool(false);

    SystemConfig cfg = runner.baseConfig();
    cfg.l2Pf = L2PfKind::Triage4;
    cfg.triage.metaReplacement = "srrip";
    cfg.triage.bloomResizing = false;
    expectSameRun(runner.run(p, "mcf"), runner.runConfig("mcf", cfg),
                  "triage4 srrip");
}

TEST(PipelineRegistry, ProphetFeatureAndKnobParamsMatchDirectCalls)
{
    Runner runner(SystemConfig::table1(), kRecords);

    // Feature subset (the Figure 19 stages).
    PipelineInstance repla("prophet");
    repla.params["features"] =
        ParamValue::makeList({"replacement", "insertion"});
    core::ProphetConfig pcfg;
    pcfg.features = core::ProphetFeatures{true, true, false, false};
    expectSameRun(runner.run(repla, "mcf"),
                  runner.runProphet("mcf", {}, pcfg).stats,
                  "prophet features");

    // Analyzer knob (the Figure 16 sweeps).
    PipelineInstance el("prophet");
    el.params["el_acc"] = ParamValue::makeNumber(0.25);
    core::AnalyzerConfig acfg;
    acfg.elAcc = 0.25;
    expectSameRun(
        runner.run(el, "mcf"),
        runner.runProphet("mcf", acfg, core::ProphetConfig{}).stats,
        "prophet el_acc");

    // "binary": "none" — the unmodified-binary Disable bars.
    PipelineInstance off("prophet");
    off.params["binary"] = ParamValue::makeString("none");
    off.params["features"] = ParamValue::makeList({});
    core::ProphetConfig bare;
    bare.features = core::ProphetFeatures{false, false, false, false};
    expectSameRun(runner.run(off, "mcf"),
                  runner.runProphetWithBinary(
                      "mcf", core::OptimizedBinary{}, bare),
                  "prophet disable");
}

TEST(PipelineRegistry, ProphetLearnMatchesIncrementalLearner)
{
    Runner runner(SystemConfig::table1(), kRecords);
    PipelineInstance learned("prophet");
    learned.params["learn"] =
        ParamValue::makeList({"astar_biglakes", "astar_rivers"});
    RunStats via_registry = runner.run(learned, "astar_rivers");

    // The Figure 13/14 loop, incrementally, as the benches spell it.
    core::Learner learner;
    learner.learn(runner.profileWorkload("astar_biglakes"));
    learner.learn(runner.profileWorkload("astar_rivers"));
    core::Analyzer analyzer;
    RunStats direct = runner.runProphetWithBinary(
        "astar_rivers", analyzer.analyze(learner.merged()));
    expectSameRun(via_registry, direct, "prophet learn");
}

TEST(PipelineRegistry, ParamBagAccessorsValidateTypes)
{
    PipelineInstance p("prophet");
    p.params["el_acc"] = ParamValue::makeNumber(0.05);
    EXPECT_EQ(p.number("el_acc", 0.15), 0.05);
    EXPECT_EQ(p.number("n_bits", 2.0), 2.0); // absent -> default
    EXPECT_THROW(p.boolean("el_acc", true), PipelineError);
    EXPECT_THROW(p.string("el_acc", ""), PipelineError);
    EXPECT_THROW(p.stringList("el_acc"), PipelineError);
    EXPECT_EQ(p.stringList("features"), nullptr);
}

TEST(PipelineRegistry, ValidateRejectsBadParams)
{
    auto bad = [](PipelineInstance p, const std::string &needle) {
        try {
            validatePipeline(p);
            ADD_FAILURE() << "accepted; wanted error with \""
                          << needle << "\"";
        } catch (const PipelineError &e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << e.what();
        }
    };
    PipelineInstance unknown_key("triangel");
    unknown_key.params["degree"] = ParamValue::makeNumber(4);
    bad(unknown_key, "accepts no parameters");

    PipelineInstance typo("triage");
    typo.params["degre"] = ParamValue::makeNumber(4);
    bad(typo, "degre");

    PipelineInstance ill_typed("triage");
    ill_typed.params["degree"] = ParamValue::makeString("four");
    bad(ill_typed, "must be a number");

    PipelineInstance bad_degree("triage");
    bad_degree.params["degree"] = ParamValue::makeNumber(3);
    bad(bad_degree, "1 or 4");

    // Numeric constraints from ParamInfo: fractions and
    // out-of-range values must fail loudly, never truncate or hit
    // an undefined double -> unsigned cast.
    PipelineInstance fractional("triage");
    fractional.params["degree"] = ParamValue::makeNumber(2.5);
    bad(fractional, "integer");

    PipelineInstance huge("prophet");
    huge.params["mvb_entries"] = ParamValue::makeNumber(1e10);
    bad(huge, "mvb_entries");

    PipelineInstance negative("prophet");
    negative.params["el_acc"] = ParamValue::makeNumber(-0.1);
    bad(negative, "el_acc");

    PipelineInstance bad_policy("triage");
    bad_policy.params["meta_replacement"] =
        ParamValue::makeString("fifo");
    bad(bad_policy, "fifo");

    PipelineInstance bad_feature("prophet");
    bad_feature.params["features"] =
        ParamValue::makeList({"telepathy"});
    bad(bad_feature, "telepathy");

    PipelineInstance bad_binary("prophet");
    bad_binary.params["binary"] = ParamValue::makeString("jit");
    bad(bad_binary, "jit");

    PipelineInstance bad_learn("prophet");
    bad_learn.params["learn"] = ParamValue::makeList({"mcf_typo"});
    bad(bad_learn, "mcf_typo");

    PipelineInstance learn_vs_none("prophet");
    learn_vs_none.params["learn"] = ParamValue::makeList({"mcf"});
    learn_vs_none.params["binary"] = ParamValue::makeString("none");
    bad(learn_vs_none, "conflicts");
}

/**
 * Everything a run reports, compared field by field (closer to
 * bit-identity than expectSameRun: also per-PC miss maps, Markov
 * statistics, and DRAM traffic splits).
 */
void
expectIdenticalStats(const RunStats &a, const RunStats &b,
                     const std::string &what)
{
    EXPECT_EQ(a.ipc, b.ipc) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.records, b.records) << what;
    EXPECT_EQ(a.l1Misses, b.l1Misses) << what;
    EXPECT_EQ(a.l2DemandAccesses, b.l2DemandAccesses) << what;
    EXPECT_EQ(a.l2DemandMisses, b.l2DemandMisses) << what;
    EXPECT_EQ(a.llcMisses, b.llcMisses) << what;
    EXPECT_EQ(a.l2PrefetchesIssued, b.l2PrefetchesIssued) << what;
    EXPECT_EQ(a.l2PrefetchesUseful, b.l2PrefetchesUseful) << what;
    EXPECT_EQ(a.latePrefetches, b.latePrefetches) << what;
    EXPECT_EQ(a.dramReads, b.dramReads) << what;
    EXPECT_EQ(a.dramWrites, b.dramWrites) << what;
    EXPECT_EQ(a.dramPrefetchReads, b.dramPrefetchReads) << what;
    EXPECT_EQ(a.markov.lookups, b.markov.lookups) << what;
    EXPECT_EQ(a.markov.hits, b.markov.hits) << what;
    EXPECT_EQ(a.markov.inserts, b.markov.inserts) << what;
    EXPECT_EQ(a.markov.replacements, b.markov.replacements) << what;
    EXPECT_EQ(a.offchipMeta.metadataReads, b.offchipMeta.metadataReads)
        << what;
    EXPECT_EQ(a.offchipMeta.metadataWrites,
              b.offchipMeta.metadataWrites)
        << what;
    EXPECT_EQ(a.finalMetadataWays, b.finalMetadataWays) << what;
    ASSERT_EQ(a.pcMisses.size(), b.pcMisses.size()) << what;
    for (const auto &[pc, misses] : a.pcMisses) {
        auto it = b.pcMisses.find(pc);
        ASSERT_NE(it, b.pcMisses.end()) << what;
        EXPECT_EQ(misses, it->second) << what;
    }
}

/**
 * The tentpole invariant of the lookahead-prefetched run() loop:
 * software prefetching is architecturally invisible, so driving a
 * system record by record through the scalar step() API must produce
 * results bit-identical to the blocked/prefetched whole-trace run()
 * — for every pipeline's system configuration, on the smoke
 * workloads.
 */
TEST(SystemRunLookahead, BitIdenticalToScalarStepLoop)
{
    const std::pair<L2PfKind, const char *> kinds[] = {
        {L2PfKind::None, "none"},
        {L2PfKind::Triage, "triage"},
        {L2PfKind::Triage4, "triage4"},
        {L2PfKind::Triangel, "triangel"},
        {L2PfKind::Prophet, "prophet"},
        {L2PfKind::Simplified, "simplified"},
        {L2PfKind::Stms, "stms"},
        {L2PfKind::Domino, "domino"},
    };
    for (const char *workload : {"mcf", "omnetpp"}) {
        auto gen = workloads::makeWorkload(workload, kRecords);
        const trace::Trace t = gen->generate();
        for (const auto &[kind, name] : kinds) {
            SystemConfig cfg = SystemConfig::table1();
            cfg.l2Pf = kind;

            System via_run(cfg, gen->resolver());
            RunStats run_stats = via_run.run(t);

            System via_step(cfg, gen->resolver());
            via_step.beginRun(t.size());
            for (std::size_t i = 0; i < t.size(); ++i)
                via_step.step(t[i]);
            RunStats step_stats = via_step.finish();

            expectIdenticalStats(run_stats, step_stats,
                                 std::string(workload) + "/" + name);
        }
    }
}

} // anonymous namespace
} // namespace prophet::sim

// ------------------------------------------------ spec-layer errors

namespace prophet::driver
{
namespace
{

json::Value
parseOk(const std::string &text)
{
    json::Value v;
    std::string err;
    EXPECT_TRUE(json::parse(text, v, &err)) << err;
    return v;
}

ExperimentSpec
specOk(const std::string &text)
{
    return ExperimentSpec::fromJson(parseOk(text));
}

std::string
specErr(const std::string &text)
{
    auto doc = parseOk(text);
    try {
        ExperimentSpec::fromJson(doc);
    } catch (const SpecError &e) {
        return e.what();
    }
    ADD_FAILURE() << "spec accepted: " << text;
    return {};
}

TEST(PipelineSpec, ObjectFormParsesNameLabelAndParams)
{
    auto spec = specOk(
        "{\"workloads\": [\"mcf\"],"
        " \"pipelines\": [\"baseline\","
        "   {\"name\": \"triage\", \"degree\": 4,"
        "    \"meta_replacement\": \"srrip\","
        "    \"label\": \"triage-d4\"},"
        "   {\"name\": \"prophet\","
        "    \"features\": [\"replacement\", \"mvb\"]}]}");
    ASSERT_EQ(spec.pipelines.size(), 3u);
    EXPECT_EQ(spec.pipelines[0].name, "baseline");
    EXPECT_EQ(spec.pipelines[0].resultName(), "baseline");
    EXPECT_EQ(spec.pipelines[1].name, "triage");
    EXPECT_EQ(spec.pipelines[1].resultName(), "triage-d4");
    EXPECT_EQ(spec.pipelines[1].number("degree", 1), 4.0);
    EXPECT_EQ(spec.pipelines[1].string("meta_replacement", ""),
              "srrip");
    ASSERT_NE(spec.pipelines[2].stringList("features"), nullptr);
    EXPECT_EQ(spec.pipelines[2].stringList("features")->size(), 2u);
}

TEST(PipelineSpec, UnknownPipelineErrorListsRegisteredOnes)
{
    auto err = specErr("{\"workloads\": [\"mcf\"],"
                       " \"pipelines\": [\"warpspeed\"]}");
    EXPECT_NE(err.find("warpspeed"), std::string::npos) << err;
    EXPECT_NE(err.find("registered:"), std::string::npos) << err;
    EXPECT_NE(err.find("triangel"), std::string::npos) << err;
}

TEST(PipelineSpec, UnknownOrIllTypedParamsAreParseErrors)
{
    auto err = specErr(
        "{\"workloads\": [\"mcf\"],"
        " \"pipelines\": [{\"name\": \"triage\", \"degre\": 4}]}");
    EXPECT_NE(err.find("degre"), std::string::npos) << err;
    EXPECT_NE(err.find("accepted:"), std::string::npos) << err;

    specErr("{\"workloads\": [\"mcf\"],"
            " \"pipelines\": [{\"name\": \"triage\","
            "                  \"degree\": \"four\"}]}");
    specErr("{\"workloads\": [\"mcf\"],"
            " \"pipelines\": [{\"name\": \"prophet\","
            "                  \"el_acc\": 7}]}");
    specErr("{\"workloads\": [\"mcf\"],"
            " \"pipelines\": [{\"name\": \"prophet\","
            "                  \"features\": [1, 2]}]}");
    specErr("{\"workloads\": [\"mcf\"],"
            " \"pipelines\": [{\"label\": \"x\"}]}"); // no name
    specErr("{\"workloads\": [\"mcf\"],"
            " \"pipelines\": [42]}");
}

TEST(PipelineSpec, DuplicateResultNamesRejected)
{
    auto err = specErr("{\"workloads\": [\"mcf\"],"
                       " \"pipelines\": [\"prophet\","
                       "                 \"prophet\"]}");
    EXPECT_NE(err.find("duplicate"), std::string::npos) << err;
    // Distinct labels resolve the collision.
    specOk("{\"workloads\": [\"mcf\"],"
           " \"pipelines\": [\"prophet\","
           "  {\"name\": \"prophet\", \"label\": \"p2\"}]}");
}

TEST(PipelineSpec, SweepCrossProductsPipelinesWithValues)
{
    auto spec = specOk(
        "{\"workloads\": [\"mcf\"],"
        " \"pipelines\": [{\"name\": \"prophet\"},"
        "   {\"name\": \"prophet\", \"features\": [\"mvb\"],"
        "    \"label\": \"mvb-only\"}],"
        " \"sweep\": {\"param\": \"el_acc\","
        "             \"values\": [0.05, 0.25]}}");
    ASSERT_EQ(spec.pipelines.size(), 4u);
    EXPECT_EQ(spec.pipelines[0].resultName(), "prophet el_acc=0.05");
    EXPECT_EQ(spec.pipelines[1].resultName(), "prophet el_acc=0.25");
    EXPECT_EQ(spec.pipelines[2].resultName(), "mvb-only el_acc=0.05");
    EXPECT_EQ(spec.pipelines[3].resultName(), "mvb-only el_acc=0.25");
    EXPECT_EQ(spec.pipelines[1].number("el_acc", 0.15), 0.25);
    // The sweep changes results, so it must change the result hash.
    auto base = specOk("{\"workloads\": [\"mcf\"],"
                       " \"pipelines\": [{\"name\": \"prophet\"}]}");
    EXPECT_NE(spec.resultHash(0), base.resultHash(0));
}

TEST(PipelineSpec, MalformedSweepBlocksRejected)
{
    const char *head = "{\"workloads\": [\"mcf\"],"
                       " \"pipelines\": [\"prophet\"],";
    specErr(std::string(head) + " \"sweep\": 4}");
    specErr(std::string(head) + " \"sweep\": {}}");
    specErr(std::string(head)
            + " \"sweep\": {\"param\": \"el_acc\"}}");
    specErr(std::string(head)
            + " \"sweep\": {\"param\": \"el_acc\","
              " \"values\": []}}");
    specErr(std::string(head)
            + " \"sweep\": {\"param\": \"el_acc\","
              " \"values\": [0.1], \"extra\": 1}}");
    // A parameter some listed pipeline does not accept.
    specErr("{\"workloads\": [\"mcf\"],"
            " \"pipelines\": [\"prophet\", \"triangel\"],"
            " \"sweep\": {\"param\": \"el_acc\","
            "             \"values\": [0.1]}}");
    // A parameter already pinned on an instance.
    specErr("{\"workloads\": [\"mcf\"],"
            " \"pipelines\": [{\"name\": \"prophet\","
            "                  \"el_acc\": 0.15}],"
            " \"sweep\": {\"param\": \"el_acc\","
            "             \"values\": [0.1]}}");
    // Sweep values are validated like pinned values.
    specErr(std::string(head)
            + " \"sweep\": {\"param\": \"el_acc\","
              " \"values\": [0.1, 7]}}");
    // No pipelines to expand.
    specErr("{\"workloads\": [\"mcf\"],"
            " \"sweep\": {\"param\": \"el_acc\","
            " \"values\": [0.1]}}");
}

TEST(PipelineSpec, HashCanonicalizesObjectForm)
{
    // A bare name and its object form with no overrides hash alike;
    // parameter overrides change the hash; labels change only the
    // full hash, never the result hash.
    auto bare = specOk("{\"workloads\": [\"mcf\"],"
                       " \"pipelines\": [\"prophet\"]}");
    auto object = specOk("{\"workloads\": [\"mcf\"],"
                         " \"pipelines\": [{\"name\": "
                         "\"prophet\"}]}");
    EXPECT_EQ(bare.hash(), object.hash());
    EXPECT_EQ(bare.resultHash(0), object.resultHash(0));

    auto tuned = specOk("{\"workloads\": [\"mcf\"],"
                        " \"pipelines\": [{\"name\": \"prophet\","
                        " \"el_acc\": 0.05}]}");
    EXPECT_NE(bare.resultHash(0), tuned.resultHash(0));

    auto labelled = specOk("{\"workloads\": [\"mcf\"],"
                           " \"pipelines\": [{\"name\": "
                           "\"prophet\", \"label\": \"p\"}]}");
    EXPECT_EQ(bare.resultHash(0), labelled.resultHash(0));
    EXPECT_NE(bare.hash(), labelled.hash());
}

TEST(PipelineSpec, SystemConfigReportSpecParses)
{
    auto spec = specOk("{\"name\": \"table1\","
                       " \"report\": \"system-config\"}");
    EXPECT_EQ(spec.report, ExperimentSpec::Report::SystemConfig);
    EXPECT_TRUE(spec.workloads.empty());
    EXPECT_TRUE(spec.pipelines.empty());
    specErr("{\"report\": \"vibes\"}");
    // Without a report, workloads/pipelines stay required.
    specErr("{}");
    // Job-matrix keys would be silently ignored by a report spec,
    // so they are rejected; config keys remain legal.
    auto err = specErr("{\"report\": \"system-config\","
                       " \"sinks\": [{\"type\": \"json\","
                       " \"path\": \"o.json\"}]}");
    EXPECT_NE(err.find("sinks"), std::string::npos) << err;
    specErr("{\"report\": \"system-config\","
            " \"workloads\": [\"mcf\"]}");
    specErr("{\"report\": \"system-config\", \"threads\": 2}");
    auto cfg = specOk("{\"report\": \"system-config\","
                      " \"dram_channels\": 2}");
    EXPECT_EQ(cfg.baseConfig().hier.dram.channels, 2u);
}

} // anonymous namespace
} // namespace prophet::driver
