/**
 * @file
 * Tests for the driver's JSON layer and the experiment-spec parser:
 * malformed documents, unknown keys, and bad workload names must
 * produce clear recoverable errors — never crashes or silently
 * defaulted experiments.
 */

#include <gtest/gtest.h>

#include "driver/json.hh"
#include "driver/spec.hh"

namespace prophet::driver
{
namespace
{

// --------------------------------------------------------- JSON layer

json::Value
parseOk(const std::string &text)
{
    json::Value v;
    std::string err;
    EXPECT_TRUE(json::parse(text, v, &err)) << err;
    return v;
}

std::string
parseErr(const std::string &text)
{
    json::Value v;
    std::string err;
    EXPECT_FALSE(json::parse(text, v, &err)) << "accepted: " << text;
    EXPECT_FALSE(err.empty());
    return err;
}

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_EQ(parseOk("true").asBool(), true);
    EXPECT_EQ(parseOk("false").asBool(), false);
    EXPECT_DOUBLE_EQ(parseOk("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(parseOk("-1.5e3").asNumber(), -1500.0);
    EXPECT_EQ(parseOk("\"hi\\n\\\"there\\\"\"").asString(),
              "hi\n\"there\"");
    EXPECT_EQ(parseOk("\"\\u0041\\u00e9\"").asString(), "A\xc3\xa9");
}

TEST(Json, ParsesContainers)
{
    auto v = parseOk("{\"a\": [1, 2, {\"b\": true}], \"c\": null}");
    ASSERT_TRUE(v.isObject());
    const json::Value *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->asArray().size(), 3u);
    EXPECT_TRUE(a->asArray()[2].find("b")->asBool());
    EXPECT_TRUE(v.find("c")->isNull());
    EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, AllowsCommentsAndTrailingCommas)
{
    auto v = parseOk("// leading comment\n"
                     "{\n"
                     "  \"a\": 1, // trailing comment\n"
                     "  \"b\": [1, 2,],\n"
                     "}\n");
    EXPECT_DOUBLE_EQ(v.find("a")->asNumber(), 1.0);
    EXPECT_EQ(v.find("b")->asArray().size(), 2u);
}

TEST(Json, RejectsMalformedInput)
{
    parseErr("");
    parseErr("{");
    parseErr("[1, 2");
    parseErr("{\"a\" 1}");
    parseErr("{\"a\": }");
    parseErr("\"unterminated");
    parseErr("tru");
    parseErr("1.2.3");
    parseErr("{} trailing");
    parseErr("{\"a\": 1, \"a\": 2}"); // duplicate key
    parseErr("\"bad \\q escape\"");
}

TEST(Json, RejectsPathologicalNestingWithoutCrashing)
{
    std::string deep(100000, '[');
    auto err = parseErr(deep);
    EXPECT_NE(err.find("nesting"), std::string::npos) << err;
    // Legitimate nesting well past any real spec still parses.
    std::string ok(100, '[');
    ok += "1";
    ok += std::string(100, ']');
    parseOk(ok);
}

TEST(Json, ErrorsCarryLineAndColumn)
{
    std::string err = parseErr("{\n  \"a\": nope\n}");
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
}

TEST(Json, DumpRoundTripsDoublesExactly)
{
    json::Value v = json::Value::makeObject();
    v.set("ipc", json::Value(0.1234567890123456789));
    v.set("count", json::Value(std::uint64_t{123456789012345ull}));
    auto text = json::dump(v);
    json::Value back;
    ASSERT_TRUE(json::parse(text, back, nullptr));
    // Bit-for-bit: the writer uses %.17g for non-integral doubles
    // and integer form for integral ones.
    EXPECT_EQ(back.find("ipc")->asNumber(),
              v.find("ipc")->asNumber());
    EXPECT_EQ(back.find("count")->asNumber(),
              v.find("count")->asNumber());
    EXPECT_NE(text.find("123456789012345"), std::string::npos);
}

// --------------------------------------------------------- spec layer

ExperimentSpec
specOk(const std::string &text)
{
    return ExperimentSpec::fromJson(parseOk(text));
}

std::string
specErr(const std::string &text)
{
    auto doc = parseOk(text);
    try {
        ExperimentSpec::fromJson(doc);
    } catch (const SpecError &e) {
        return e.what();
    }
    ADD_FAILURE() << "spec accepted: " << text;
    return {};
}

TEST(Spec, ParsesFullSpec)
{
    auto spec = specOk(
        "{\"name\": \"t\", \"workloads\": [\"mcf\", \"@gcc\"],"
        " \"pipelines\": [\"baseline\", \"prophet\"],"
        " \"metrics\": [\"ipc\"], \"records\": 1000,"
        " \"threads\": 3, \"l1\": \"ipcp\", \"dram_channels\": 2,"
        " \"warmup_records\": 5, \"trace_cache\": false,"
        " \"sinks\": [{\"type\": \"json\", \"path\": \"o.json\"}]}");
    EXPECT_EQ(spec.name, "t");
    EXPECT_EQ(spec.workloads.size(), 10u); // mcf + 9 gcc inputs
    EXPECT_EQ(spec.workloads[0], "mcf");
    EXPECT_EQ(spec.workloads[1], "gcc_166");
    EXPECT_EQ(spec.pipelines.size(), 2u);
    EXPECT_EQ(spec.records, 1000u);
    EXPECT_EQ(spec.threads, 3u);
    EXPECT_EQ(spec.dramChannels, 2u);
    EXPECT_FALSE(spec.traceCache);
    ASSERT_EQ(spec.sinks.size(), 1u);
    EXPECT_EQ(spec.sinks[0].kind, SinkSpec::Kind::JsonFile);
    EXPECT_EQ(spec.sinks[0].path, "o.json");

    auto cfg = spec.baseConfig();
    EXPECT_EQ(cfg.l1Pf, sim::L1PfKind::Ipcp);
    EXPECT_EQ(cfg.hier.dram.channels, 2u);
    EXPECT_EQ(cfg.warmupRecords, 5u);
}

TEST(Spec, DeduplicatesExpandedWorkloads)
{
    auto spec = specOk("{\"workloads\": [\"mcf\", \"@spec\","
                       " \"mcf\"],"
                       " \"pipelines\": [\"prophet\"]}");
    // "@spec" contains mcf; first mention wins and nothing repeats.
    EXPECT_EQ(spec.workloads.size(), 7u);
    EXPECT_EQ(spec.workloads[0], "mcf");
}

TEST(Spec, DefaultsAreMinimal)
{
    auto spec = specOk("{\"workloads\": [\"@spec\"],"
                       " \"pipelines\": [\"triangel\"]}");
    EXPECT_EQ(spec.workloads.size(), 7u);
    EXPECT_EQ(spec.metrics, std::vector<std::string>{"speedup"});
    EXPECT_EQ(spec.records, 0u);
    EXPECT_EQ(spec.threads, 1u);
    EXPECT_TRUE(spec.traceCache);
    EXPECT_TRUE(spec.sinks.empty());
    // Default config: no warmup override.
    EXPECT_EQ(spec.baseConfig().warmupRecords,
              sim::SystemConfig::table1().warmupRecords);
}

TEST(Spec, RejectsUnknownTopLevelKey)
{
    auto err = specErr("{\"workloads\": [\"mcf\"],"
                       " \"pipelines\": [\"prophet\"],"
                       " \"theads\": 4}");
    EXPECT_NE(err.find("theads"), std::string::npos) << err;
}

TEST(Spec, RejectsBadWorkloadName)
{
    auto err = specErr("{\"workloads\": [\"mcf_typo\"],"
                       " \"pipelines\": [\"prophet\"]}");
    EXPECT_NE(err.find("mcf_typo"), std::string::npos) << err;
    specErr("{\"workloads\": [\"gcc_nope\"],"
            " \"pipelines\": [\"prophet\"]}");
    specErr("{\"workloads\": [\"@nope\"],"
            " \"pipelines\": [\"prophet\"]}");
    specErr("{\"workloads\": [\"bfs_abc_8\"],"
            " \"pipelines\": [\"prophet\"]}");
    // Vertex counts the generators reject (they assert >= 2, and
    // the factory casts through uint32) must fail validation up
    // front, not abort mid-run.
    specErr("{\"workloads\": [\"bfs_0_8\"],"
            " \"pipelines\": [\"prophet\"]}");
    specErr("{\"workloads\": [\"bfs_1_8\"],"
            " \"pipelines\": [\"prophet\"]}");
    specErr("{\"workloads\": [\"bfs_4294967296_8\"],"
            " \"pipelines\": [\"prophet\"]}");
    // Graph labels beyond the figure's list are legal if well-formed.
    auto spec = specOk("{\"workloads\": [\"bfs_1234_7\"],"
                       " \"pipelines\": [\"prophet\"]}");
    EXPECT_EQ(spec.workloads[0], "bfs_1234_7");
}

TEST(Spec, RejectsBadPipelinesMetricsAndSinks)
{
    specErr("{\"workloads\": [\"mcf\"], \"pipelines\": []}");
    specErr("{\"workloads\": [\"mcf\"],"
            " \"pipelines\": [\"warpspeed\"]}");
    specErr("{\"workloads\": [\"mcf\"], \"pipelines\": [\"prophet\"],"
            " \"metrics\": [\"vibes\"]}");
    specErr("{\"workloads\": [\"mcf\"], \"pipelines\": [\"prophet\"],"
            " \"sinks\": [{\"type\": \"json\"}]}"); // missing path
    specErr("{\"workloads\": [\"mcf\"], \"pipelines\": [\"prophet\"],"
            " \"sinks\": [{\"type\": \"xml\", \"path\": \"x\"}]}");
    specErr("{\"workloads\": [\"mcf\"], \"pipelines\": [\"prophet\"],"
            " \"sinks\": [{\"type\": \"table\", \"pth\": \"x\"}]}");
    specErr("{\"workloads\": [\"mcf\"], \"pipelines\": [\"prophet\"],"
            " \"records\": -5}");
    specErr("{\"workloads\": [\"mcf\"], \"pipelines\": [\"prophet\"],"
            " \"records\": 1.5}");
    // Out-of-range counts must error, not wrap/truncate into a
    // silently different experiment.
    specErr("{\"workloads\": [\"mcf\"], \"pipelines\": [\"prophet\"],"
            " \"records\": 1e20}");
    specErr("{\"workloads\": [\"mcf\"], \"pipelines\": [\"prophet\"],"
            " \"threads\": 4294967297}");
    specErr("{\"workloads\": [\"mcf\"], \"pipelines\": [\"prophet\"],"
            " \"l1\": \"bogus\"}");
    specErr("{\"workloads\": [\"mcf\"], \"pipelines\": [\"prophet\"],"
            " \"dram_channels\": 0}");
    specErr("{\"workloads\": \"mcf\", \"pipelines\": [\"prophet\"]}");
    specErr("{\"pipelines\": [\"prophet\"]}"); // missing workloads
    specErr("{\"workloads\": [\"mcf\"]}");     // missing pipelines
    specErr("[]");                             // not an object
}

TEST(Spec, HashIsContentBased)
{
    // Aliases, comments and formatting do not change the hash;
    // the experiment's content does.
    auto a = specOk("{\"workloads\": [\"@spec\"],"
                    " \"pipelines\": [\"prophet\"]}");
    auto b = specOk("// same thing, spelled out\n"
                    "{\"workloads\": [\"astar_biglakes\","
                    " \"gcc_166\", \"mcf\", \"omnetpp\","
                    " \"soplex_pds-50\", \"sphinx3\","
                    " \"xalancbmk\"],\n"
                    " \"pipelines\": [\"prophet\",],}");
    EXPECT_EQ(a.hash(), b.hash());
    auto c = specOk("{\"workloads\": [\"@spec\"],"
                    " \"pipelines\": [\"triangel\"]}");
    EXPECT_NE(a.hash(), c.hash());
}

TEST(Spec, FromFileReportsIoAndParseErrors)
{
    EXPECT_THROW(ExperimentSpec::fromFile("/nonexistent/x.json"),
                 SpecError);
}

TEST(Spec, ParsesSamplingObject)
{
    auto spec = specOk(
        "{\"workloads\": [\"mcf\"], \"pipelines\": [\"prophet\"],"
        " \"sampling\": {\"warmup_records\": 20000,"
        " \"window_records\": 10000,"
        " \"interval_records\": 300000, \"offset\": 7}}");
    EXPECT_TRUE(spec.sampling.enabled);
    EXPECT_EQ(spec.sampling.warmupRecords, 20000u);
    EXPECT_EQ(spec.sampling.windowRecords, 10000u);
    EXPECT_EQ(spec.sampling.intervalRecords, 300000u);
    EXPECT_EQ(spec.sampling.offset, 7u);
    EXPECT_TRUE(spec.baseConfig().sampling.enabled);
    EXPECT_EQ(spec.baseConfig().sampling.windowRecords, 10000u);

    // Empty object: sampling on with every default.
    auto defaults = specOk(
        "{\"workloads\": [\"mcf\"], \"pipelines\": [\"prophet\"],"
        " \"sampling\": {}}");
    EXPECT_TRUE(defaults.sampling.enabled);
    EXPECT_EQ(defaults.sampling.windowRecords,
              sim::SamplingConfig{}.windowRecords);
}

TEST(Spec, RejectsBadSampling)
{
    // Not an object / unknown key inside.
    specErr("{\"workloads\": [\"mcf\"], \"pipelines\": [\"prophet\"],"
            " \"sampling\": true}");
    specErr("{\"workloads\": [\"mcf\"], \"pipelines\": [\"prophet\"],"
            " \"sampling\": {\"windw_records\": 5}}");
    // Degenerate schedules are parse errors, never silent clamps.
    specErr("{\"workloads\": [\"mcf\"], \"pipelines\": [\"prophet\"],"
            " \"sampling\": {\"window_records\": 0}}");
    specErr("{\"workloads\": [\"mcf\"], \"pipelines\": [\"prophet\"],"
            " \"sampling\": {\"interval_records\": 0}}");
    specErr("{\"workloads\": [\"mcf\"], \"pipelines\": [\"prophet\"],"
            " \"sampling\": {\"window_records\": 1000,"
            " \"interval_records\": 500}}");
    // Sampling in a static report spec is meaningless.
    specErr("{\"report\": \"system-config\","
            " \"sampling\": {\"window_records\": 1000}}");
}

TEST(Spec, SamplingChangesHashesOnlyWhenPresent)
{
    auto plain = specOk(
        "{\"workloads\": [\"mcf\"], \"pipelines\": [\"prophet\"]}");
    auto sampled = specOk(
        "{\"workloads\": [\"mcf\"], \"pipelines\": [\"prophet\"],"
        " \"sampling\": {\"interval_records\": 300000}}");
    // Pre-sampling canonical form carries no "sampling" key, so old
    // spec hashes and archived dumps are unchanged.
    EXPECT_EQ(plain.toJson().find("sampling"), nullptr);
    ASSERT_NE(sampled.toJson().find("sampling"), nullptr);
    EXPECT_NE(plain.hash(), sampled.hash());
    // Sampling changes the numbers: results must not compare equal.
    EXPECT_NE(plain.resultHash(1000), sampled.resultHash(1000));
}

} // anonymous namespace
} // namespace prophet::driver
