/**
 * @file
 * Tests for the deterministic fault-injection harness: nth/count
 * window semantics, spec-string arming (the $PROPHET_FAULTS syntax),
 * per-site hit accounting, and the idle fast path (an unarmed
 * harness neither counts nor fires).
 */

#include <gtest/gtest.h>

#include <string>

#include "common/fault_injection.hh"

namespace prophet
{
namespace
{

class FaultInjectionTest : public ::testing::Test
{
  protected:
    // Every test starts and ends disarmed, so ordering between test
    // cases (and other suites using the harness) cannot leak.
    void SetUp() override { fault::reset(); }
    void TearDown() override { fault::reset(); }
};

TEST_F(FaultInjectionTest, IdleHarnessNeverFiresAndDoesNotCount)
{
    EXPECT_FALSE(fault::shouldFail("some.site"));
    EXPECT_FALSE(fault::shouldFail("some.site"));
    // The idle fast path skips hit accounting entirely: zero cost,
    // zero bookkeeping.
    EXPECT_EQ(fault::hits("some.site"), 0u);
    EXPECT_EQ(fault::totalFired(), 0u);
    EXPECT_TRUE(fault::armedSites().empty());
}

TEST_F(FaultInjectionTest, NthAndCountDefineTheFiringWindow)
{
    // Fire on hits [3, 5): exactly the 3rd and 4th.
    fault::arm("win.site", 3, 2);
    EXPECT_FALSE(fault::shouldFail("win.site")); // hit 1
    EXPECT_FALSE(fault::shouldFail("win.site")); // hit 2
    EXPECT_TRUE(fault::shouldFail("win.site"));  // hit 3
    EXPECT_TRUE(fault::shouldFail("win.site"));  // hit 4
    EXPECT_FALSE(fault::shouldFail("win.site")); // hit 5
    EXPECT_EQ(fault::hits("win.site"), 5u);
    EXPECT_EQ(fault::fired("win.site"), 2u);
}

TEST_F(FaultInjectionTest, CountZeroMeansEveryHitFromNthOn)
{
    fault::arm("forever.site", 2);
    EXPECT_FALSE(fault::shouldFail("forever.site"));
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(fault::shouldFail("forever.site"));
    EXPECT_EQ(fault::fired("forever.site"), 5u);
}

TEST_F(FaultInjectionTest, SitesAreIndependent)
{
    fault::arm("a.site", 1, 1);
    // When anything is armed, every site's hits are counted — but
    // only the armed site fires.
    EXPECT_TRUE(fault::shouldFail("a.site"));
    EXPECT_FALSE(fault::shouldFail("b.site"));
    EXPECT_EQ(fault::hits("b.site"), 1u);
    EXPECT_EQ(fault::fired("b.site"), 0u);
    EXPECT_EQ(fault::totalFired(), 1u);
}

TEST_F(FaultInjectionTest, ArmFromSpecParsesTheEnvSyntax)
{
    ASSERT_TRUE(
        fault::armFromSpec("one.site:2:1,two.site:1"));
    auto sites = fault::armedSites();
    ASSERT_EQ(sites.size(), 2u);

    EXPECT_TRUE(fault::shouldFail("two.site"));  // nth=1, unlimited
    EXPECT_TRUE(fault::shouldFail("two.site"));
    EXPECT_FALSE(fault::shouldFail("one.site")); // hit 1 < nth 2
    EXPECT_TRUE(fault::shouldFail("one.site"));  // hit 2, count 1
    EXPECT_FALSE(fault::shouldFail("one.site")); // window closed
}

TEST_F(FaultInjectionTest, MalformedSpecsAreRejected)
{
    EXPECT_FALSE(fault::armFromSpec("missing-colon"));
    EXPECT_FALSE(fault::armFromSpec("site:notanumber"));
    EXPECT_FALSE(fault::armFromSpec("site:"));
    EXPECT_FALSE(fault::armFromSpec(":3"));
    EXPECT_FALSE(fault::armFromSpec("site:0")); // nth is 1-based
}

TEST_F(FaultInjectionTest, ResetDisarmsAndZeroes)
{
    fault::arm("gone.site", 1);
    EXPECT_TRUE(fault::shouldFail("gone.site"));
    fault::reset();
    EXPECT_FALSE(fault::shouldFail("gone.site"));
    EXPECT_EQ(fault::hits("gone.site"), 0u);
    EXPECT_EQ(fault::fired("gone.site"), 0u);
    EXPECT_EQ(fault::totalFired(), 0u);
    EXPECT_TRUE(fault::armedSites().empty());
}

} // anonymous namespace
} // namespace prophet
