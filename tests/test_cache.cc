/**
 * @file
 * Unit tests for the set-associative cache model: hits/misses,
 * prefetch-bit accounting, fill timing (late prefetches), way
 * reservation for the metadata partition, and writeback tracking.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "mem/cache.hh"

/**
 * Allocation counter: global operator new replacement so tests can
 * assert that the steady-state miss path performs zero heap
 * allocations (the eviction hot path uses pre-built candidate spans).
 */
namespace
{
std::atomic<std::uint64_t> g_heapAllocs{0};
} // anonymous namespace

void *
operator new(std::size_t n)
{
    ++g_heapAllocs;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void *
operator new(std::size_t n, std::align_val_t align)
{
    ++g_heapAllocs;
    // aligned_alloc requires the size to be a multiple of alignment.
    std::size_t a = static_cast<std::size_t>(align);
    std::size_t size = ((n ? n : 1) + a - 1) / a * a;
    if (void *p = std::aligned_alloc(a, size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n, std::align_val_t align)
{
    return ::operator new(n, align);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace prophet::mem
{
namespace
{

CacheConfig
smallConfig()
{
    // 16 sets x 4 ways.
    return CacheConfig{"test", 16 * 4 * 64, 4, 2, 8, "lru"};
}

TEST(Cache, MissThenHit)
{
    Cache c(smallConfig());
    EXPECT_FALSE(c.lookupDemand(5, 0).hit);
    c.fill(5, 10, PfClass::None, kInvalidPC, false);
    auto r = c.lookupDemand(5, 20);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.readyAt, 22u); // cycle + hit latency
    EXPECT_EQ(c.stats().demandHits, 1u);
    EXPECT_EQ(c.stats().demandMisses, 1u);
}

TEST(Cache, InFlightFillPaysResidualLatency)
{
    Cache c(smallConfig());
    c.fill(5, 100, PfClass::L2, 0x400, false);
    auto r = c.lookupDemand(5, 50); // before the fill lands
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(r.wasLate);
    EXPECT_EQ(r.readyAt, 102u); // fill time + latency
    EXPECT_EQ(c.stats().latePrefetchHits, 1u);
}

TEST(Cache, PrefetchBitConsumedOnce)
{
    Cache c(smallConfig());
    c.fill(7, 0, PfClass::L2, 0x1234, false);
    auto first = c.lookupDemand(7, 10);
    EXPECT_TRUE(first.wasPrefetched);
    EXPECT_EQ(first.prefetchClass, PfClass::L2);
    EXPECT_EQ(first.prefetchPc, 0x1234u);
    auto second = c.lookupDemand(7, 20);
    EXPECT_FALSE(second.wasPrefetched);
    EXPECT_EQ(c.stats().prefetchHits, 1u);
}

TEST(Cache, PrefetchClassDistinguishesL1FromL2)
{
    Cache c(smallConfig());
    c.fill(1, 0, PfClass::L1, 0x10, false);
    c.fill(2, 0, PfClass::L2, 0x20, false);
    EXPECT_EQ(c.lookupDemand(1, 5).prefetchClass, PfClass::L1);
    EXPECT_EQ(c.lookupDemand(2, 5).prefetchClass, PfClass::L2);
}

TEST(Cache, EvictionReportsDirtyLine)
{
    Cache c(smallConfig());
    // Fill one set (addresses congruent mod 16) to capacity.
    c.fill(0, 0, PfClass::None, kInvalidPC, true); // dirty
    c.fill(16, 0, PfClass::None, kInvalidPC, false);
    c.fill(32, 0, PfClass::None, kInvalidPC, false);
    c.fill(48, 0, PfClass::None, kInvalidPC, false);
    auto ev = c.fill(64, 0, PfClass::None, kInvalidPC, false);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, 0u); // LRU victim
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, UnusedPrefetchEvictionCounted)
{
    Cache c(smallConfig());
    c.fill(0, 0, PfClass::L2, 0x1, false);
    for (Addr a = 16; a <= 64; a += 16)
        c.fill(a, 0, PfClass::None, kInvalidPC, false);
    EXPECT_EQ(c.stats().unusedPrefetchEvictions, 1u);
}

TEST(Cache, RefillMergesDirtyState)
{
    Cache c(smallConfig());
    c.fill(3, 0, PfClass::None, kInvalidPC, false);
    c.fill(3, 0, PfClass::None, kInvalidPC, true);
    for (Addr a = 3 + 16; a <= 3 + 64; a += 16)
        c.fill(a, 0, PfClass::None, kInvalidPC, false);
    // Line 3 must have been evicted dirty.
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, RefillMergesEarlierReadyTime)
{
    Cache c(smallConfig());
    // A prefetch lands the line at cycle 100; a second (e.g. demand)
    // fill of the same line arrives earlier, at cycle 50. The line
    // must take the earlier ready time, or demands between 50 and
    // 100 would keep paying the stale later timestamp.
    c.fill(5, 100, PfClass::L2, 0x400, false);
    c.fill(5, 50, PfClass::None, kInvalidPC, false);
    auto r = c.lookupDemand(5, 60);
    EXPECT_TRUE(r.hit);
    EXPECT_FALSE(r.wasLate);
    EXPECT_EQ(r.readyAt, 62u); // cycle + hit latency
}

TEST(Cache, RefillNeverDelaysReadyTime)
{
    Cache c(smallConfig());
    // The merge is one-directional: a refill with a *later* ready
    // time must not push back a line already (about to be) present.
    c.fill(5, 50, PfClass::None, kInvalidPC, false);
    c.fill(5, 100, PfClass::L2, 0x400, false);
    auto r = c.lookupDemand(5, 60);
    EXPECT_TRUE(r.hit);
    EXPECT_FALSE(r.wasLate);
}

TEST(Cache, SteadyStateMissPathDoesNotAllocate)
{
    for (const char *policy : {"lru", "plru", "srrip", "random"}) {
        CacheConfig cfg = smallConfig();
        cfg.replacement = policy;
        Cache c(cfg);
        // Warm every way of every set so each subsequent fill evicts.
        for (Addr a = 0; a < 16 * 4; ++a)
            c.fill(a, 0, PfClass::None, kInvalidPC, false);

        std::uint64_t before = g_heapAllocs.load();
        Cycle cycle = 0;
        for (Addr a = 16 * 4; a < 16 * 4 + 512; ++a) {
            auto miss = c.lookupDemand(a, cycle);
            ASSERT_FALSE(miss.hit);
            auto ev = c.fill(a, cycle + 30, PfClass::None,
                             kInvalidPC, false);
            ASSERT_TRUE(ev.valid); // every fill evicts a valid line
            ++cycle;
        }
        EXPECT_EQ(g_heapAllocs.load(), before)
            << "demand miss + eviction allocated under " << policy;
    }
}

TEST(Cache, MarkDirtyAndInvalidate)
{
    Cache c(smallConfig());
    c.fill(9, 0, PfClass::None, kInvalidPC, false);
    c.markDirty(9);
    auto ev = c.invalidate(9);
    EXPECT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_FALSE(c.contains(9));
    EXPECT_FALSE(c.invalidate(9).valid);
}

TEST(Cache, ReservedWaysShrinkDemandCapacity)
{
    Cache c(smallConfig());
    EXPECT_EQ(c.effectiveBytes(), 16u * 4 * 64);
    c.setReservedWays(2);
    EXPECT_EQ(c.effectiveBytes(), 16u * 2 * 64);
    EXPECT_EQ(c.reservedWays(), 2u);
}

TEST(Cache, GrowingReservationInvalidatesLines)
{
    Cache c(smallConfig());
    // Fill ways 0..3 of set 0.
    for (Addr a = 0; a < 4 * 16; a += 16)
        c.fill(a, 0, PfClass::None, kInvalidPC, false);
    c.setReservedWays(3);
    // Only one demand way remains; at most one line can still hit.
    int hits = 0;
    for (Addr a = 0; a < 4 * 16; a += 16)
        if (c.contains(a))
            ++hits;
    EXPECT_LE(hits, 1);
}

TEST(Cache, ReservedWaysStillAllowFills)
{
    Cache c(smallConfig());
    c.setReservedWays(3);
    // One way left: every new fill in a set evicts the previous.
    c.fill(0, 0, PfClass::None, kInvalidPC, false);
    auto ev = c.fill(16, 0, PfClass::None, kInvalidPC, false);
    EXPECT_TRUE(ev.valid);
    EXPECT_EQ(ev.lineAddr, 0u);
    EXPECT_TRUE(c.contains(16));
}

TEST(Cache, LookupPrefetchDoesNotPerturbStats)
{
    Cache c(smallConfig());
    c.fill(4, 0, PfClass::L2, 0x99, false);
    auto r = c.lookupPrefetch(4, 10);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(c.stats().demandHits, 0u);
    // The prefetch bit survives for the real demand.
    EXPECT_TRUE(c.lookupDemand(4, 20).wasPrefetched);
}

TEST(Cache, SetIndexingSeparatesSets)
{
    Cache c(smallConfig());
    // Same tag bits, different sets: both must coexist.
    c.fill(0, 0, PfClass::None, kInvalidPC, false);
    c.fill(1, 0, PfClass::None, kInvalidPC, false);
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(1));
}

TEST(Cache, StatsResetKeepsContents)
{
    Cache c(smallConfig());
    c.fill(2, 0, PfClass::None, kInvalidPC, false);
    c.lookupDemand(2, 5);
    c.resetStats();
    EXPECT_EQ(c.stats().demandHits, 0u);
    EXPECT_TRUE(c.contains(2));
}

} // anonymous namespace
} // namespace prophet::mem
