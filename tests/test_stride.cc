/**
 * @file
 * Unit tests for the degree-8 L1 stride prefetcher of Table 1.
 */

#include <gtest/gtest.h>

#include "prefetch/stride.hh"

namespace prophet::pf
{
namespace
{

std::vector<Addr>
feed(StridePrefetcher &pf, PC pc, std::initializer_list<Addr> lines)
{
    std::vector<Addr> out;
    for (Addr a : lines) {
        out.clear();
        pf.observe(pc, a, false, out);
    }
    return out;
}

TEST(Stride, NoPrefetchBeforeConfidence)
{
    StridePrefetcher pf(8);
    auto out = feed(pf, 1, {100, 101});
    EXPECT_TRUE(out.empty());
}

TEST(Stride, ConfidentUnitStridePrefetchesDegreeAhead)
{
    StridePrefetcher pf(8);
    auto out = feed(pf, 1, {100, 101, 102, 103});
    ASSERT_EQ(out.size(), 8u);
    for (unsigned d = 0; d < 8; ++d)
        EXPECT_EQ(out[d], 104u + d);
}

TEST(Stride, NegativeStrideSupported)
{
    StridePrefetcher pf(4);
    auto out = feed(pf, 1, {100, 98, 96, 94});
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], 92u);
    EXPECT_EQ(out[3], 86u);
}

TEST(Stride, LargeStrideSupported)
{
    StridePrefetcher pf(2);
    auto out = feed(pf, 1, {0, 16, 32, 48});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 64u);
    EXPECT_EQ(out[1], 80u);
}

TEST(Stride, RandomStreamStaysQuiet)
{
    StridePrefetcher pf(8);
    auto out = feed(pf, 1, {5, 999, 17, 20480, 3, 777});
    EXPECT_TRUE(out.empty());
}

TEST(Stride, PerPcIsolation)
{
    StridePrefetcher pf(4);
    std::vector<Addr> out;
    // Interleave two PCs with different strides.
    for (int i = 0; i < 6; ++i) {
        out.clear();
        pf.observe(10, 100 + static_cast<Addr>(i), false, out);
        out.clear();
        pf.observe(11, 1000 + 4 * static_cast<Addr>(i), false, out);
    }
    out.clear();
    pf.observe(10, 106, false, out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], 107u);
    out.clear();
    pf.observe(11, 1024, false, out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], 1028u);
}

TEST(Stride, SameLineReaccessIsNeutral)
{
    StridePrefetcher pf(4);
    feed(pf, 1, {100, 101, 102, 103});
    std::vector<Addr> out;
    pf.observe(1, 103, false, out); // same line again
    EXPECT_TRUE(out.empty());
    out.clear();
    pf.observe(1, 104, false, out); // stride resumes
    EXPECT_FALSE(out.empty());
}

TEST(Stride, DegreeParameterRespected)
{
    for (unsigned degree : {1u, 2u, 8u, 16u}) {
        StridePrefetcher pf(degree);
        auto out = feed(pf, 1, {10, 11, 12, 13});
        EXPECT_EQ(out.size(), degree);
    }
}

} // anonymous namespace
} // namespace prophet::pf
