/**
 * @file
 * Unit tests for the LLC-resident metadata (Markov) table:
 * insert/lookup/update semantics, way-partition capacity, priority-
 * aware victim filtering (Prophet replacement), the eviction
 * callback feeding the Multi-path Victim Buffer, and resizing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mem/replacement.hh"
#include "prefetch/markov_table.hh"

namespace prophet::pf
{
namespace
{

MarkovTable
smallTable(unsigned sets = 4, unsigned ways = 1)
{
    return MarkovTable(sets, ways,
                       std::make_unique<mem::LruPolicy>());
}

TEST(MarkovTable, InsertThenLookup)
{
    auto t = smallTable();
    t.insert(100, 200, 0);
    auto target = t.lookup(100);
    ASSERT_TRUE(target.has_value());
    EXPECT_EQ(*target, 200u);
    EXPECT_EQ(t.stats().hits, 1u);
    EXPECT_EQ(t.stats().inserts, 1u);
}

TEST(MarkovTable, MissOnAbsentKey)
{
    auto t = smallTable();
    EXPECT_FALSE(t.lookup(7).has_value());
    EXPECT_EQ(t.stats().lookups, 1u);
    EXPECT_EQ(t.stats().hits, 0u);
}

TEST(MarkovTable, UpdateOverwritesTarget)
{
    auto t = smallTable();
    t.insert(100, 200, 0);
    t.insert(100, 300, 0);
    EXPECT_EQ(*t.peek(100), 300u);
    EXPECT_EQ(t.stats().inserts, 1u);
    EXPECT_EQ(t.stats().updates, 1u);
    EXPECT_EQ(t.size(), 1u);
}

TEST(MarkovTable, SameTargetReinsertIsNotAnUpdate)
{
    auto t = smallTable();
    t.insert(100, 200, 0);
    t.insert(100, 200, 0);
    EXPECT_EQ(t.stats().updates, 0u);
}

TEST(MarkovTable, CapacityMatchesGeometry)
{
    MarkovTable t(2048, 8, std::make_unique<mem::SrripPolicy>());
    // 2048 sets x 8 ways x 12 entries/line = 196,608 entries = 1 MB,
    // the paper's maximum (Section 5.10).
    EXPECT_EQ(t.capacityEntries(), 196608u);
}

TEST(MarkovTable, EvictionCallbackOnReplacement)
{
    auto t = smallTable(1, 1); // 12 entries total
    std::vector<MarkovTable::Entry> evicted;
    t.setEvictionCallback([&](const MarkovTable::Entry &e) {
        evicted.push_back(e);
    });
    for (Addr k = 0; k < 13; ++k)
        t.insert(k * 1000 + 1, k, static_cast<std::uint8_t>(1));
    EXPECT_EQ(t.stats().replacements, 1u);
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_TRUE(evicted[0].valid);
}

TEST(MarkovTable, EvictionCallbackOnTargetOverwrite)
{
    auto t = smallTable();
    std::vector<MarkovTable::Entry> displaced;
    t.setEvictionCallback([&](const MarkovTable::Entry &e) {
        displaced.push_back(e);
    });
    t.insert(100, 200, 2);
    t.insert(100, 300, 2); // displaces target 200
    ASSERT_EQ(displaced.size(), 1u);
    EXPECT_EQ(displaced[0].key, 100u);
    EXPECT_EQ(displaced[0].target, 200u);
}

TEST(MarkovTable, PriorityAwareVictimFiltering)
{
    // One set, 12 entries. Fill with high priority except one low-
    // priority entry; the next insert must evict the low one.
    auto t = smallTable(1, 1);
    t.setPriorityAware(true);
    for (Addr k = 0; k < 11; ++k)
        t.insert(0x1000 + k * 64, k, 3);
    t.insert(0x9999, 7, 1); // the only low-priority entry
    // Touch the low-priority entry so pure LRU would protect it.
    t.lookup(0x9999);
    t.insert(0xabcd, 8, 3); // forces a replacement
    EXPECT_FALSE(t.peek(0x9999).has_value());
    // All high-priority entries survive.
    for (Addr k = 0; k < 11; ++k)
        EXPECT_TRUE(t.peek(0x1000 + k * 64).has_value());
}

TEST(MarkovTable, WithoutPriorityAwarenessLruWins)
{
    auto t = smallTable(1, 1);
    t.setPriorityAware(false);
    for (Addr k = 0; k < 12; ++k)
        t.insert(0x1000 + k * 64, k, 0);
    // Refresh everything except the first entry.
    for (Addr k = 1; k < 12; ++k)
        t.lookup(0x1000 + k * 64);
    t.insert(0xabcd, 99, 0);
    EXPECT_FALSE(t.peek(0x1000).has_value());
}

TEST(MarkovTable, PriorityRecorded)
{
    auto t = smallTable();
    t.insert(100, 200, 3);
    auto p = t.priorityOf(100);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, 3u);
}

TEST(MarkovTable, ShrinkDropsEntriesBeyondCapacity)
{
    MarkovTable t(4, 2, std::make_unique<mem::LruPolicy>());
    for (Addr k = 0; k < 150; ++k)
        t.insert(k * 131 + 7, k, 0);
    std::uint64_t before = t.size();
    t.setAllocatedWays(1);
    EXPECT_LT(t.size(), before);
    EXPECT_GT(t.stats().resizeDrops, 0u);
    EXPECT_EQ(t.allocatedWays(), 1u);
    EXPECT_EQ(t.capacityEntries(), 4u * 12);
}

TEST(MarkovTable, ZeroWaysDisablesTable)
{
    auto t = smallTable();
    t.setAllocatedWays(0);
    t.insert(1, 2, 0);
    EXPECT_FALSE(t.lookup(1).has_value());
    EXPECT_EQ(t.size(), 0u);
    // Re-enable.
    t.setAllocatedWays(1);
    t.insert(1, 2, 0);
    EXPECT_TRUE(t.lookup(1).has_value());
}

TEST(MarkovTable, AllocatedEntriesCounter)
{
    auto t = smallTable(1, 1);
    for (Addr k = 0; k < 12; ++k)
        t.insert(0x2000 + k * 64, k, 0);
    EXPECT_EQ(t.stats().allocatedEntries(), 12u);
    t.insert(0x9000, 1, 0); // replacement
    // Insertions - replacements stays at live size (Section 4.1).
    EXPECT_EQ(t.stats().allocatedEntries(), 12u);
    EXPECT_EQ(t.stats().allocatedEntries(), t.size());
}

TEST(MarkovTable, ClearInvalidatesEverything)
{
    auto t = smallTable();
    t.insert(1, 2, 0);
    t.insert(3, 4, 0);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_FALSE(t.peek(1).has_value());
}

TEST(MarkovTable, PeekDoesNotTouchReplacement)
{
    auto t = smallTable(1, 1);
    for (Addr k = 0; k < 12; ++k)
        t.insert(0x3000 + k * 64, k, 0);
    // Peeking the oldest entry must not rescue it from LRU eviction.
    t.peek(0x3000);
    t.insert(0x7777, 9, 0);
    EXPECT_FALSE(t.peek(0x3000).has_value());
}

TEST(MarkovTable, ChainsComposable)
{
    auto t = smallTable(16, 2);
    // Store A->B->C->D and follow the chain.
    t.insert(10, 20, 0);
    t.insert(20, 30, 0);
    t.insert(30, 40, 0);
    Addr cur = 10;
    std::vector<Addr> chain;
    for (int d = 0; d < 3; ++d) {
        auto n = t.lookup(cur);
        ASSERT_TRUE(n.has_value());
        chain.push_back(*n);
        cur = *n;
    }
    EXPECT_EQ(chain, (std::vector<Addr>{20, 30, 40}));
}

} // anonymous namespace
} // namespace prophet::pf
