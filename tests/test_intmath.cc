/**
 * @file
 * Unit tests for common/intmath.hh — the helpers behind cache
 * geometry and Prophet's Eq. 3 rounding.
 */

#include <gtest/gtest.h>

#include "common/intmath.hh"
#include "common/types.hh"

namespace prophet
{
namespace
{

TEST(IntMath, PowerOfTwoDetection)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(IntMath, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(196608), 17u);
}

TEST(IntMath, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(2048), 11u);
    EXPECT_EQ(ceilLog2(2049), 12u);
}

TEST(IntMath, NextPowerOf2)
{
    EXPECT_EQ(nextPowerOf2(1), 1ull);
    EXPECT_EQ(nextPowerOf2(3), 4ull);
    EXPECT_EQ(nextPowerOf2(4), 4ull);
    EXPECT_EQ(nextPowerOf2(100000), 131072ull);
}

TEST(IntMath, RoundNearestPowerOf2TiesUp)
{
    EXPECT_EQ(roundNearestPowerOf2(0), 0ull);
    EXPECT_EQ(roundNearestPowerOf2(1), 1ull);
    EXPECT_EQ(roundNearestPowerOf2(5), 4ull);
    EXPECT_EQ(roundNearestPowerOf2(6), 8ull);  // tie rounds up
    EXPECT_EQ(roundNearestPowerOf2(7), 8ull);
    EXPECT_EQ(roundNearestPowerOf2(12), 16ull); // tie rounds up
    EXPECT_EQ(roundNearestPowerOf2(11), 8ull);
}

TEST(IntMath, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0ull);
    EXPECT_EQ(divCeil(1, 4), 1ull);
    EXPECT_EQ(divCeil(4, 4), 1ull);
    EXPECT_EQ(divCeil(5, 4), 2ull);
    // Eq. 3 use case: entries / entries-per-way.
    EXPECT_EQ(divCeil(196608, 24576), 8ull);
    EXPECT_EQ(divCeil(24577, 24576), 2ull);
}

/** Property sweep: round-nearest never moves more than half away. */
class RoundNearestSweep : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RoundNearestSweep, WithinHalfOfInput)
{
    std::uint64_t n = GetParam();
    std::uint64_t r = roundNearestPowerOf2(n);
    EXPECT_TRUE(isPowerOf2(r));
    double ratio = static_cast<double>(r) / static_cast<double>(n);
    EXPECT_GE(ratio, 0.5);
    EXPECT_LE(ratio, 1.5);
}

INSTANTIATE_TEST_SUITE_P(
    Values, RoundNearestSweep,
    ::testing::Values(1, 2, 3, 5, 9, 17, 100, 1000, 4097, 100000,
                      196608, 1000000));

TEST(Types, LineAddressHelpers)
{
    EXPECT_EQ(lineAddr(0), 0ull);
    EXPECT_EQ(lineAddr(63), 0ull);
    EXPECT_EQ(lineAddr(64), 1ull);
    EXPECT_EQ(lineToByte(lineAddr(12345)), alignToLine(12345));
    EXPECT_EQ(alignToLine(127), 64ull);
}

} // anonymous namespace
} // namespace prophet
