/**
 * @file
 * Unit tests for the off-chip-metadata temporal prefetchers (STMS
 * and Domino) and their metadata-traffic accounting.
 */

#include <gtest/gtest.h>

#include "prefetch/domino.hh"
#include "prefetch/stms.hh"

namespace prophet::pf
{
namespace
{

template <typename Pf>
std::vector<PrefetchRequest>
observe(Pf &pf, PC pc, Addr line, bool hit = false)
{
    std::vector<PrefetchRequest> out;
    pf.observe(pc, line, hit, 0, out);
    return out;
}

TEST(Stms, ReplaysHistoryAfterRepeat)
{
    StmsPrefetcher pf(StmsConfig{1024, 3, 16, false});
    for (Addr a : {10, 20, 30, 40})
        observe(pf, 1, a);
    auto out = observe(pf, 1, 10); // 10 recurs: replay 20,30,40
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0].lineAddr, 20u);
    EXPECT_EQ(out[1].lineAddr, 30u);
    EXPECT_EQ(out[2].lineAddr, 40u);
}

TEST(Stms, ColdAddressPredictsNothing)
{
    StmsPrefetcher pf;
    auto out = observe(pf, 1, 99);
    EXPECT_TRUE(out.empty());
}

TEST(Stms, TrainOnMissesOnlyRespected)
{
    StmsPrefetcher pf(StmsConfig{1024, 2, 16, true});
    observe(pf, 1, 10, /*hit=*/true); // ignored
    observe(pf, 1, 20, false);
    auto out = observe(pf, 1, 10, false);
    // 10 was never recorded, so nothing to replay.
    EXPECT_TRUE(out.empty());
}

TEST(Stms, MetadataTrafficAccumulates)
{
    StmsPrefetcher pf(StmsConfig{1024, 2, 16, false});
    for (Addr a = 0; a < 100; ++a)
        observe(pf, 1, a);
    // Every append writes the index table; history spills per line.
    EXPECT_GE(pf.metadataStats().metadataWrites, 100u);
    observe(pf, 1, 0); // a hit in the index: reads charged
    EXPECT_GE(pf.metadataStats().metadataReads, 1u);
}

TEST(Stms, HistoryWrapsWithoutCrashing)
{
    StmsPrefetcher pf(StmsConfig{64, 2, 16, false});
    for (Addr a = 0; a < 500; ++a)
        observe(pf, 1, a % 90);
    EXPECT_EQ(pf.historySize(), 64u);
}

TEST(Stms, OccupiesNoLlcWays)
{
    StmsPrefetcher pf;
    EXPECT_EQ(pf.metadataWays(), 0u);
}

TEST(Domino, PairIndexDisambiguatesStreams)
{
    // Two streams share address B with different successors:
    // (A,B,C) and (X,B,D). Single-address indexing confuses them;
    // the pair index keeps them apart.
    DominoPrefetcher pf(DominoConfig{1024, 1, 16, false});
    // Stream 1: A B C, twice so the pairs are indexed.
    for (int r = 0; r < 2; ++r)
        for (Addr a : {100, 200, 300}) // A B C
            observe(pf, 1, a);
    // Stream 2: X B D, twice.
    for (int r = 0; r < 2; ++r)
        for (Addr a : {900, 200, 400}) // X B D
            observe(pf, 1, a);

    // Now replay stream 1's prefix: after (A, B) Domino must predict
    // C, not D, despite B's latest single-index position preceding D.
    observe(pf, 1, 100);
    auto out = observe(pf, 1, 200);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].lineAddr, 300u);

    // And after (X, B) it must predict D.
    observe(pf, 1, 900);
    auto out2 = observe(pf, 1, 200);
    ASSERT_FALSE(out2.empty());
    EXPECT_EQ(out2[0].lineAddr, 400u);
}

TEST(Domino, FallsBackToSingleIndexWhenPairCold)
{
    DominoPrefetcher pf(DominoConfig{1024, 2, 16, false});
    for (Addr a : {10, 20, 30})
        observe(pf, 1, a);
    // A fresh predecessor (99, 10) has no pair entry, but 10's
    // single-address entry still replays 20, 30.
    observe(pf, 1, 99);
    auto out = observe(pf, 1, 10);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].lineAddr, 20u);
}

TEST(Domino, MetadataTrafficChargedPerLookup)
{
    DominoPrefetcher pf(DominoConfig{1024, 1, 16, false});
    observe(pf, 1, 1);
    observe(pf, 1, 2);
    auto reads_before = pf.metadataStats().metadataReads;
    observe(pf, 1, 3);
    EXPECT_GT(pf.metadataStats().metadataReads, reads_before);
}

} // anonymous namespace
} // namespace prophet::pf
