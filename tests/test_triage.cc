/**
 * @file
 * Unit tests for the Triage temporal prefetcher: PC-localized
 * training without an insertion filter, chained degree prefetching,
 * and Bloom-filter resizing.
 */

#include <gtest/gtest.h>

#include "prefetch/triage.hh"

namespace prophet::pf
{
namespace
{

TriageConfig
tinyConfig(unsigned degree = 1)
{
    TriageConfig cfg;
    cfg.degree = degree;
    cfg.metaReplacement = "lru";
    cfg.numSets = 64;
    cfg.maxWays = 2;
    cfg.bloomResizing = false;
    return cfg;
}

std::vector<PrefetchRequest>
observe(TriagePrefetcher &pf, PC pc, Addr line)
{
    std::vector<PrefetchRequest> out;
    pf.observe(pc, line, false, 0, out);
    return out;
}

TEST(Triage, LearnsSuccessorAfterOnePass)
{
    TriagePrefetcher pf(tinyConfig());
    observe(pf, 1, 100);
    observe(pf, 1, 200); // stores 100 -> 200
    auto out = observe(pf, 1, 100);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].lineAddr, 200u);
    EXPECT_EQ(out[0].creditPc, 1u);
}

TEST(Triage, NoInsertionFilterStoresEverything)
{
    TriagePrefetcher pf(tinyConfig());
    // Even a never-repeating stream is inserted (Triage's documented
    // weakness, Section 2.1.1).
    for (Addr a = 0; a < 20; ++a)
        observe(pf, 2, 1000 + a * 7);
    EXPECT_GE(pf.markovTable().stats().inserts, 19u);
}

TEST(Triage, DegreeChainsLookups)
{
    TriagePrefetcher pf(tinyConfig(4));
    // Teach the chain A->B->C->D->E.
    for (Addr a : {10, 20, 30, 40, 50})
        observe(pf, 1, a);
    auto out = observe(pf, 1, 10);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0].lineAddr, 20u);
    EXPECT_EQ(out[3].lineAddr, 50u);
}

TEST(Triage, ChainStopsAtUnknownLink)
{
    TriagePrefetcher pf(tinyConfig(4));
    observe(pf, 1, 10);
    observe(pf, 1, 20); // only 10 -> 20 known
    // Query from a fresh PC so the lookup itself trains nothing.
    auto out = observe(pf, 3, 10);
    EXPECT_EQ(out.size(), 1u);
}

TEST(Triage, PcLocalizedTraining)
{
    TriagePrefetcher pf(tinyConfig());
    observe(pf, 1, 100);
    observe(pf, 2, 500); // different PC: no 100 -> 500 link
    observe(pf, 1, 200); // 100 -> 200 via PC 1
    auto out = observe(pf, 3, 100);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].lineAddr, 200u);
}

TEST(Triage, SameLineRunsDoNotSelfLink)
{
    TriagePrefetcher pf(tinyConfig());
    observe(pf, 1, 100);
    observe(pf, 1, 100); // must not store 100 -> 100
    auto out = observe(pf, 1, 100);
    EXPECT_TRUE(out.empty());
}

TEST(Triage, BloomResizeShrinksForSmallWorkingSet)
{
    TriageConfig cfg;
    cfg.degree = 1;
    cfg.metaReplacement = "lru";
    cfg.numSets = 64;
    cfg.maxWays = 8;
    cfg.bloomResizing = true;
    cfg.resizeWindow = 4096;
    TriagePrefetcher pf(cfg);
    EXPECT_EQ(pf.metadataWays(), 8u);
    // A small ring: ~32 distinct keys, far below one way's capacity
    // (64 sets x 12 = 768 entries).
    for (int round = 0; round < 200; ++round)
        for (Addr a = 0; a < 32; ++a)
            observe(pf, 1, 7000 + a);
    EXPECT_EQ(pf.metadataWays(), 1u);
}

TEST(Triage, BloomResizeGrowsForLargeWorkingSet)
{
    TriageConfig cfg;
    cfg.degree = 1;
    cfg.metaReplacement = "lru";
    cfg.numSets = 64;
    cfg.maxWays = 8;
    cfg.bloomResizing = true;
    cfg.resizeWindow = 8192;
    TriagePrefetcher pf(cfg);
    // Drive enough distinct keys to need several ways.
    for (int round = 0; round < 4; ++round)
        for (Addr a = 0; a < 3000; ++a)
            observe(pf, 1, 100000 + a);
    EXPECT_GE(pf.metadataWays(), 3u);
}

TEST(Triage, HawkeyeReplacementConfigurable)
{
    TriageConfig cfg = tinyConfig();
    cfg.metaReplacement = "hawkeye";
    TriagePrefetcher pf(cfg);
    observe(pf, 1, 100);
    observe(pf, 1, 200);
    auto out = observe(pf, 1, 100);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].lineAddr, 200u);
}

} // anonymous namespace
} // namespace prophet::pf
