/**
 * @file
 * Unit tests for Prophet's learning step (Section 4.3): the Eq. 4
 * merge across inputs — the Load A / Load C / Load E cases of
 * Figure 7 — and the Eq. 5 max-merge of allocated entries.
 */

#include <gtest/gtest.h>

#include "core/learner.hh"

namespace prophet::core
{
namespace
{

ProfileSnapshot
snapWith(PC pc, double acc, std::uint64_t entries = 1000)
{
    ProfileSnapshot s;
    s.perPc[pc] = {acc, 1000, 1000};
    s.allocatedEntries = entries;
    return s;
}

TEST(Learner, FirstSnapshotAdopted)
{
    Learner l;
    l.learn(snapWith(1, 0.8, 5000));
    EXPECT_EQ(l.loops(), 1u);
    EXPECT_DOUBLE_EQ(l.merged().perPc.at(1).accuracy, 0.8);
    EXPECT_EQ(l.merged().allocatedEntries, 5000u);
}

TEST(Learner, LoadACaseStableHint)
{
    // Same PC, same behaviour under both inputs: the merged accuracy
    // stays in the same Eq. 1/Eq. 2 band.
    Learner l;
    l.learn(snapWith(1, 0.80));
    l.learn(snapWith(1, 0.82));
    double merged = l.merged().perPc.at(1).accuracy;
    EXPECT_GE(merged, 0.75); // still priority level 3
    EXPECT_LE(merged, 0.82);
}

TEST(Learner, LoadCCaseNewPcAdopted)
{
    // A PC first seen under input Y adopts the new counters outright
    // (second branch of Eq. 4).
    Learner l;
    l.learn(snapWith(1, 0.8));
    l.learn(snapWith(2, 0.3));
    EXPECT_DOUBLE_EQ(l.merged().perPc.at(2).accuracy, 0.3);
    EXPECT_TRUE(l.merged().perPc.count(1));
}

TEST(Learner, LoadECaseMovesTowardNewObservation)
{
    // Same PC, different behaviour: the estimate moves by
    // (n - o) / min(l + 1, L); with l = 1 the weight is 1/2.
    Learner l(4);
    l.learn(snapWith(1, 0.9));
    l.learn(snapWith(1, 0.1));
    EXPECT_NEAR(l.merged().perPc.at(1).accuracy, 0.5, 1e-9);
}

TEST(Learner, LoopCapLimitsForgetting)
{
    // After many loops the weight floors at 1/L, so frequently
    // observed values keep influencing the estimate.
    Learner l(4);
    for (int i = 0; i < 10; ++i)
        l.learn(snapWith(1, 0.8));
    l.learn(snapWith(1, 0.0));
    // Weight is 1/4: estimate drops from 0.8 to 0.6, not to 0.
    EXPECT_NEAR(l.merged().perPc.at(1).accuracy, 0.6, 1e-9);
}

TEST(Learner, RepeatedObservationConverges)
{
    // The dominant behaviour wins over time ("frequently observed
    // counter values dominate merged results").
    Learner l(4);
    l.learn(snapWith(1, 0.0));
    for (int i = 0; i < 12; ++i)
        l.learn(snapWith(1, 0.8));
    EXPECT_GT(l.merged().perPc.at(1).accuracy, 0.7);
}

TEST(Learner, Eq5TakesMaxEntries)
{
    Learner l;
    l.learn(snapWith(1, 0.5, 30000));
    l.learn(snapWith(1, 0.5, 10000));
    EXPECT_EQ(l.merged().allocatedEntries, 30000u);
    l.learn(snapWith(1, 0.5, 90000));
    EXPECT_EQ(l.merged().allocatedEntries, 90000u);
}

TEST(Learner, ResetForgets)
{
    Learner l;
    l.learn(snapWith(1, 0.5));
    l.reset();
    EXPECT_EQ(l.loops(), 0u);
    EXPECT_TRUE(l.merged().perPc.empty());
}

TEST(Learner, MultiPcMergeIndependent)
{
    Learner l(4);
    ProfileSnapshot a;
    a.perPc[1] = {0.8, 100, 100};
    a.perPc[2] = {0.2, 100, 100};
    l.learn(a);
    ProfileSnapshot b;
    b.perPc[1] = {0.8, 100, 100};
    b.perPc[2] = {0.6, 100, 100};
    l.learn(b);
    EXPECT_NEAR(l.merged().perPc.at(1).accuracy, 0.8, 1e-9);
    EXPECT_NEAR(l.merged().perPc.at(2).accuracy, 0.4, 1e-9);
}

} // anonymous namespace
} // namespace prophet::core
