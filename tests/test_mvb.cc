/**
 * @file
 * Unit tests for the Multi-path Victim Buffer (Section 4.5):
 * priority-gated insertion, alternative-target lookup, counter-based
 * replacement, and candidate capacity (Figure 16(c)).
 */

#include <gtest/gtest.h>

#include "core/mvb.hh"

namespace prophet::core
{
namespace
{

pf::MarkovTable::Entry
entry(Addr key, Addr target, std::uint8_t priority)
{
    pf::MarkovTable::Entry e;
    e.key = key;
    e.target = target;
    e.priority = priority;
    e.valid = true;
    return e;
}

TEST(Mvb, RejectsPriorityZeroVictims)
{
    // Insertion rule: only targets with priority > 0 (acc > EL_ACC)
    // deserve buffer space.
    MultiPathVictimBuffer mvb(64, 1, 4);
    mvb.offer(entry(100, 200, 0));
    EXPECT_EQ(mvb.stats().inserts, 0u);
    EXPECT_EQ(mvb.stats().rejectedLowPriority, 1u);
    std::vector<Addr> out;
    mvb.lookup(100, kInvalidAddr, out);
    EXPECT_TRUE(out.empty());
}

TEST(Mvb, StoresAndReturnsDisplacedTarget)
{
    MultiPathVictimBuffer mvb(64, 1, 4);
    mvb.offer(entry(100, 200, 2));
    std::vector<Addr> out;
    mvb.lookup(100, kInvalidAddr, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 200u);
    EXPECT_EQ(mvb.stats().hits, 1u);
}

TEST(Mvb, ExcludesTableTarget)
{
    // Figure 9: the table already supplies C; the MVB must only add
    // *different* Markov targets (D).
    MultiPathVictimBuffer mvb(64, 2, 4);
    mvb.offer(entry(100, 200, 2));
    std::vector<Addr> out;
    mvb.lookup(100, 200, out); // 200 is what the table returned
    EXPECT_TRUE(out.empty());
}

TEST(Mvb, MultiplePathsPerKey)
{
    MultiPathVictimBuffer mvb(64, 2, 4);
    mvb.offer(entry(100, 200, 2));
    mvb.offer(entry(100, 300, 2));
    std::vector<Addr> out;
    mvb.lookup(100, kInvalidAddr, out);
    EXPECT_EQ(out.size(), 2u);
}

TEST(Mvb, CandidateCapEnforced)
{
    // candidates = 1: a key keeps at most one buffered target.
    MultiPathVictimBuffer mvb(64, 1, 4);
    mvb.offer(entry(100, 200, 2));
    mvb.offer(entry(100, 300, 2));
    std::vector<Addr> out;
    mvb.lookup(100, kInvalidAddr, out);
    EXPECT_EQ(out.size(), 1u);
}

TEST(Mvb, DuplicateOfferRefreshesCounter)
{
    MultiPathVictimBuffer mvb(64, 2, 4);
    mvb.offer(entry(100, 200, 2));
    mvb.offer(entry(100, 200, 2));
    EXPECT_EQ(mvb.stats().inserts, 1u); // no duplicate slot
}

TEST(Mvb, FrequentlyUsedTargetSurvivesReplacement)
{
    // One set of 4 ways shared by aliasing keys: the target whose
    // counter is highest must be retained preferentially.
    MultiPathVictimBuffer mvb(4, 1, 4); // single set
    mvb.offer(entry(10, 111, 2));
    // Pump its counter.
    std::vector<Addr> out;
    for (int i = 0; i < 4; ++i) {
        out.clear();
        mvb.lookup(10, kInvalidAddr, out);
    }
    // Now flood the set with other keys.
    mvb.offer(entry(20, 222, 2));
    mvb.offer(entry(30, 333, 2));
    mvb.offer(entry(40, 444, 2));
    mvb.offer(entry(50, 555, 2)); // must evict a low-counter slot
    out.clear();
    mvb.lookup(10, kInvalidAddr, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 111u);
}

TEST(Mvb, InvalidVictimIgnored)
{
    MultiPathVictimBuffer mvb(64, 1, 4);
    pf::MarkovTable::Entry e; // invalid
    mvb.offer(e);
    EXPECT_EQ(mvb.stats().inserts, 0u);
}

TEST(Mvb, StorageBitsPerPaper)
{
    // 65,536 entries x 43 bits = 344 KB (Section 5.10).
    MultiPathVictimBuffer mvb(65536, 1, 4);
    EXPECT_EQ(mvb.storageBits(), 65536ull * 43);
    EXPECT_NEAR(static_cast<double>(mvb.storageBits()) / 8 / 1024,
                344.0, 1.0);
}

TEST(Mvb, LookupCountsExtraTargets)
{
    MultiPathVictimBuffer mvb(64, 2, 4);
    mvb.offer(entry(7, 70, 1));
    mvb.offer(entry(7, 71, 1));
    std::vector<Addr> out;
    mvb.lookup(7, 70, out);
    EXPECT_EQ(out.size(), 1u); // 70 excluded, 71 returned
    EXPECT_EQ(mvb.stats().extraTargets, 1u);
}

} // anonymous namespace
} // namespace prophet::core
