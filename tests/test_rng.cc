/**
 * @file
 * Unit tests for the deterministic RNG workload generation depends
 * on: identical seeds must produce identical traces on any platform.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"

namespace prophet
{
namespace
{

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedRemapped)
{
    Rng z(0);
    EXPECT_NE(z.next(), 0u);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        auto v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all values hit
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        if (r.chance(0.25))
            ++hits;
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng r(17);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    auto orig = v;
    r.shuffle(v);
    std::multiset<int> a(v.begin(), v.end());
    std::multiset<int> b(orig.begin(), orig.end());
    EXPECT_EQ(a, b);
}

TEST(Rng, ShuffleDeterministic)
{
    std::vector<int> v1{1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> v2 = v1;
    Rng a(23), b(23);
    a.shuffle(v1);
    b.shuffle(v2);
    EXPECT_EQ(v1, v2);
}

} // anonymous namespace
} // namespace prophet
