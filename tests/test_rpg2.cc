/**
 * @file
 * Unit tests for the RPG2 baseline: kernel identification (stride
 * kernels with resolvers only), distance tuning, and the software-
 * prefetch plan.
 */

#include <gtest/gtest.h>

#include "rpg2/distance_tuner.hh"
#include "rpg2/kernel_id.hh"
#include "rpg2/rpg2.hh"
#include "workloads/pattern_lib.hh"

namespace prophet::rpg2
{
namespace
{

using workloads::IndirectStream;
using workloads::PcResolver;
using workloads::StreamParams;

StreamParams
params()
{
    StreamParams p;
    p.pc = 0x1000;
    p.regionBase = 1ull << 32;
    p.seed = 5;
    return p;
}

/** Build a trace + resolver from an indirect stream. */
struct KernelFixture
{
    IndirectStream stream;
    trace::Trace t;
    PcResolver resolver;
    FlatMap<PC, std::uint64_t> misses;

    explicit KernelFixture(bool stride)
        : stream(params(), 512, 4096, stride)
    {
        for (int i = 0; i < 2000; ++i)
            stream.emit(t);
        resolver.registerKernel(
            stream.kernelPc(),
            [this](Addr a, std::int64_t d) {
                return stream.resolve(a, d);
            });
        // The indirect consumer causes most misses.
        misses[stream.targetPc()] = 9000;
        misses[stream.kernelPc()] = 500;
    }
};

TEST(KernelId, FindsStrideKernelWithResolver)
{
    KernelFixture f(true);
    auto kernels = identifyKernels(f.t, f.misses, &f.resolver);
    ASSERT_EQ(kernels.size(), 1u);
    EXPECT_EQ(kernels[0].pc, f.stream.kernelPc());
    EXPECT_EQ(kernels[0].stride, 4); // 4-byte index elements
    EXPECT_GT(kernels[0].strideCoverage, 0.9);
    EXPECT_GT(kernels[0].missShare, 0.9);
}

TEST(KernelId, RejectsShuffledKernel)
{
    // Computed kernels (mcf-style) have no stride: nothing
    // qualifies even though the resolver map is populated.
    KernelFixture f(false);
    auto kernels = identifyKernels(f.t, f.misses, &f.resolver);
    EXPECT_TRUE(kernels.empty());
}

TEST(KernelId, RejectsWithoutResolver)
{
    KernelFixture f(true);
    auto kernels = identifyKernels(f.t, f.misses, nullptr);
    EXPECT_TRUE(kernels.empty());
}

TEST(KernelId, MissShareThresholdEnforced)
{
    KernelFixture f(true);
    // The kernel + consumer cause only 5% of all misses.
    f.misses[0xdead] = 200000;
    auto kernels = identifyKernels(f.t, f.misses, &f.resolver);
    EXPECT_TRUE(kernels.empty());
}

TEST(KernelId, MinAccessThreshold)
{
    KernelFixture f(true);
    KernelIdConfig cfg;
    cfg.minAccesses = 1'000'000; // more than the trace has
    auto kernels = identifyKernels(f.t, f.misses, &f.resolver, cfg);
    EXPECT_TRUE(kernels.empty());
}

TEST(Plan, PrefetchAddrsComputeKernelAndIndirect)
{
    KernelFixture f(true);
    auto kernels = identifyKernels(f.t, f.misses, &f.resolver);
    ASSERT_FALSE(kernels.empty());
    auto plan = buildPlan(kernels, 8);
    EXPECT_EQ(plan.size(), 1u);

    // The kernel access at trace position 0.
    Addr kaddr = f.t[0].addr;
    auto addrs =
        plan.prefetchAddrs(f.stream.kernelPc(), kaddr, &f.resolver);
    ASSERT_EQ(addrs.size(), 2u);
    EXPECT_EQ(addrs[0], kaddr + 8 * 4); // b[i + 8]
    EXPECT_EQ(addrs[1], *f.stream.resolve(kaddr, 8)); // a[b[i + 8]]
}

TEST(Plan, NonKernelPcIssuesNothing)
{
    Rpg2Plan plan;
    plan.arm(1, 4, 8);
    EXPECT_TRUE(plan.prefetchAddrs(2, 100, nullptr).empty());
}

TEST(Plan, SetDistanceUpdatesAllKernels)
{
    Rpg2Plan plan;
    plan.arm(1, 4, 8);
    plan.arm(2, 8, 8);
    plan.setDistance(16);
    auto a1 = plan.prefetchAddrs(1, 1000, nullptr);
    ASSERT_EQ(a1.size(), 1u);
    EXPECT_EQ(a1[0], 1000u + 16 * 4);
}

TEST(Plan, EmptyPlanReportsEmpty)
{
    Rpg2Plan plan;
    EXPECT_TRUE(plan.empty());
    plan.arm(1, 4, 8);
    EXPECT_FALSE(plan.empty());
}

TEST(Tuner, FindsPeakOfUnimodalCurve)
{
    // IPC peaks at distance 20.
    auto eval = [](std::int64_t d) {
        double x = static_cast<double>(d) - 20.0;
        return 2.0 - x * x / 400.0;
    };
    auto r = tuneDistance(eval, {1, 64});
    EXPECT_NEAR(static_cast<double>(r.bestDistance), 20.0, 8.0);
    EXPECT_GT(r.bestIpc, 1.8);
}

TEST(Tuner, LogarithmicEvaluationCount)
{
    int calls = 0;
    auto eval = [&](std::int64_t d) {
        ++calls;
        return static_cast<double>(d); // monotone: best at max
    };
    auto r = tuneDistance(eval, {1, 64});
    EXPECT_EQ(r.bestDistance, 64);
    EXPECT_LE(calls, 10); // binary search, not a full sweep
}

TEST(Tuner, MonotoneDecreasingPicksMin)
{
    auto eval = [](std::int64_t d) {
        return 100.0 - static_cast<double>(d);
    };
    auto r = tuneDistance(eval, {1, 64});
    EXPECT_EQ(r.bestDistance, 1);
}

} // anonymous namespace
} // namespace prophet::rpg2
