/**
 * @file
 * Unit tests for Prophet's analysis step (Section 4.2): Eq. 1
 * insertion decisions, Eq. 2 priority levels, Eq. 3 resizing, and
 * top-miss-PC hint selection.
 */

#include <gtest/gtest.h>

#include "core/analyzer.hh"

namespace prophet::core
{
namespace
{

TEST(Analyzer, Eq1InsertionThreshold)
{
    Analyzer a(AnalyzerConfig{});
    EXPECT_FALSE(a.insertionAllowed(0.0));
    EXPECT_FALSE(a.insertionAllowed(0.1499));
    EXPECT_TRUE(a.insertionAllowed(0.15));
    EXPECT_TRUE(a.insertionAllowed(1.0));
}

TEST(Analyzer, Eq1ThresholdConfigurable)
{
    AnalyzerConfig cfg;
    cfg.elAcc = 0.25;
    Analyzer a(cfg);
    EXPECT_FALSE(a.insertionAllowed(0.2));
    EXPECT_TRUE(a.insertionAllowed(0.25));
}

TEST(Analyzer, Eq2PriorityLevelsN2)
{
    Analyzer a(AnalyzerConfig{}); // n = 2: four levels
    EXPECT_EQ(a.priorityLevel(0.0), 0);
    EXPECT_EQ(a.priorityLevel(0.24), 0);
    EXPECT_EQ(a.priorityLevel(0.25), 1);
    EXPECT_EQ(a.priorityLevel(0.49), 1);
    EXPECT_EQ(a.priorityLevel(0.5), 2);
    EXPECT_EQ(a.priorityLevel(0.75), 3);
    EXPECT_EQ(a.priorityLevel(1.0), 3); // clamped to 2^n - 1
}

/** Eq. 2 sweep over n: levels partition [0,1) evenly. */
class PrioritySweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(PrioritySweep, LevelsMatchFloor)
{
    AnalyzerConfig cfg;
    cfg.nBits = GetParam();
    Analyzer a(cfg);
    unsigned levels = 1u << cfg.nBits;
    for (unsigned k = 0; k < levels; ++k) {
        double low = static_cast<double>(k) / levels;
        double high = static_cast<double>(k + 1) / levels - 1e-9;
        EXPECT_EQ(a.priorityLevel(low), k);
        EXPECT_EQ(a.priorityLevel(high), k);
    }
    EXPECT_EQ(a.priorityLevel(1.0), levels - 1);
}

INSTANTIATE_TEST_SUITE_P(N, PrioritySweep,
                         ::testing::Values(1u, 2u, 3u));

TEST(Analyzer, Eq3ExactFit)
{
    Analyzer a(AnalyzerConfig{}); // 2048 sets, 24576 entries/way
    Csr csr = a.resize(196608);   // exactly 8 ways
    EXPECT_FALSE(csr.temporalDisabled);
    EXPECT_EQ(csr.metadataWays, 8u);
}

TEST(Analyzer, Eq3RoundsToNearestPow2)
{
    Analyzer a(AnalyzerConfig{});
    // 40,000 rounds to 32,768 entries -> ceil(32768/24576) = 2 ways.
    Csr csr = a.resize(40000);
    EXPECT_EQ(csr.metadataWays, 2u);
    // 16,000 rounds (tie-up) to 16,384 -> 1 way (the sphinx3-style
    // small-footprint case).
    EXPECT_EQ(a.resize(16000).metadataWays, 1u);
    EXPECT_FALSE(a.resize(16000).temporalDisabled);
}

TEST(Analyzer, Eq3DisablesBelowHalfWay)
{
    Analyzer a(AnalyzerConfig{});
    // Half a way is 12,288 entries; rounded value 8,192 is below.
    Csr csr = a.resize(8000);
    EXPECT_TRUE(csr.temporalDisabled);
    EXPECT_EQ(csr.metadataWays, 0u);
}

TEST(Analyzer, Eq3CapsAtOneMegabyte)
{
    Analyzer a(AnalyzerConfig{});
    // Footnote 4: the rounded value never exceeds a 1 MB table.
    Csr csr = a.resize(10'000'000);
    EXPECT_EQ(csr.metadataWays, 8u);
}

TEST(Analyzer, HintsSelectTopMissPcs)
{
    AnalyzerConfig cfg;
    cfg.hintCapacity = 2;
    Analyzer a(cfg);
    ProfileSnapshot snap;
    snap.perPc[1] = {0.9, 1000, 50};   // few misses
    snap.perPc[2] = {0.8, 1000, 5000}; // most misses
    snap.perPc[3] = {0.7, 1000, 3000}; // second most
    snap.allocatedEntries = 196608;
    auto bin = a.analyze(snap);
    EXPECT_EQ(bin.hints.size(), 2u);
    EXPECT_TRUE(bin.hints.lookup(2).has_value());
    EXPECT_TRUE(bin.hints.lookup(3).has_value());
    EXPECT_FALSE(bin.hints.lookup(1).has_value());
}

TEST(Analyzer, LowAccuracyPcCondemned)
{
    Analyzer a(AnalyzerConfig{});
    ProfileSnapshot snap;
    snap.perPc[7] = {0.01, 10000, 9000};
    snap.allocatedEntries = 196608;
    auto bin = a.analyze(snap);
    auto hint = bin.hints.lookup(7);
    ASSERT_TRUE(hint.has_value());
    EXPECT_FALSE(hint->allowInsert);
}

TEST(Analyzer, InsufficientEvidenceStaysConservative)
{
    Analyzer a(AnalyzerConfig{});
    ProfileSnapshot snap;
    // Accuracy 0 but only 3 issued prefetches: too little evidence
    // to condemn (Prophet filters only clear non-temporal PCs).
    snap.perPc[8] = {0.0, 3, 9000};
    snap.allocatedEntries = 196608;
    auto bin = a.analyze(snap);
    auto hint = bin.hints.lookup(8);
    ASSERT_TRUE(hint.has_value());
    EXPECT_TRUE(hint->allowInsert);
}

TEST(Analyzer, PriorityEncodedInHint)
{
    Analyzer a(AnalyzerConfig{});
    ProfileSnapshot snap;
    snap.perPc[9] = {0.8, 10000, 9000};
    snap.allocatedEntries = 196608;
    auto bin = a.analyze(snap);
    auto hint = bin.hints.lookup(9);
    ASSERT_TRUE(hint.has_value());
    EXPECT_TRUE(hint->allowInsert);
    EXPECT_EQ(hint->priority, 3);
}

TEST(Analyzer, CsrEnabledInAnalyzedBinary)
{
    Analyzer a(AnalyzerConfig{});
    ProfileSnapshot snap;
    snap.allocatedEntries = 100000;
    auto bin = a.analyze(snap);
    EXPECT_TRUE(bin.csr.prophetEnabled);
    EXPECT_EQ(bin.csr.metadataWays, 6u); // 131072 / 24576 -> ceil = 6
}

TEST(Analyzer, DeterministicTieBreaking)
{
    AnalyzerConfig cfg;
    cfg.hintCapacity = 1;
    Analyzer a(cfg);
    ProfileSnapshot snap;
    snap.perPc[20] = {0.5, 100, 1000};
    snap.perPc[10] = {0.5, 100, 1000}; // same miss count
    snap.allocatedEntries = 196608;
    auto b1 = a.analyze(snap);
    auto b2 = a.analyze(snap);
    // Lower PC wins the tie, reproducibly.
    EXPECT_TRUE(b1.hints.lookup(10).has_value());
    EXPECT_TRUE(b2.hints.lookup(10).has_value());
}

} // anonymous namespace
} // namespace prophet::core
