/**
 * @file
 * Unit tests for the Prophet prefetcher (Figure 4): hint-driven
 * insertion filtering, priority recording, CSR-driven resizing and
 * the disable path, MVB integration, feature-flag ablation, and the
 * simplified profiling mode (Section 3.2).
 */

#include <gtest/gtest.h>

#include "core/prophet.hh"

namespace prophet::core
{
namespace
{

ProphetConfig
tinyConfig()
{
    ProphetConfig cfg;
    cfg.degree = 4;
    cfg.numSets = 64;
    cfg.maxWays = 4;
    cfg.mvbEntries = 256;
    cfg.mvbCandidates = 1;
    return cfg;
}

OptimizedBinary
binaryWith(std::initializer_list<std::pair<PC, Hint>> hints,
           unsigned ways = 4, bool disabled = false)
{
    OptimizedBinary bin;
    for (const auto &[pc, h] : hints)
        bin.hints.install(pc, h);
    bin.csr.prophetEnabled = true;
    bin.csr.metadataWays = ways;
    bin.csr.temporalDisabled = disabled;
    return bin;
}

std::vector<pf::PrefetchRequest>
observe(ProphetPrefetcher &pf, PC pc, Addr line, bool l2_hit = false)
{
    std::vector<pf::PrefetchRequest> out;
    pf.observe(pc, line, l2_hit, 0, out);
    return out;
}

TEST(Prophet, LearnsAndPrefetchesLikeATemporalPrefetcher)
{
    ProphetPrefetcher pf(tinyConfig(),
                         binaryWith({{1, Hint{true, 3}}}));
    observe(pf, 1, 100);
    observe(pf, 1, 200);
    auto out = observe(pf, 1, 100);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].lineAddr, 200u);
}

TEST(Prophet, CondemnedPcFullyDiscarded)
{
    // "Prophet instructs the temporal prefetcher to discard all
    // demand requests associated with that PC": no training, no
    // prediction.
    ProphetPrefetcher pf(tinyConfig(),
                         binaryWith({{1, Hint{false, 0}},
                                     {2, Hint{true, 3}}}));
    observe(pf, 1, 100);
    observe(pf, 1, 200);
    EXPECT_EQ(pf.markovTable().stats().inserts, 0u);
    EXPECT_EQ(pf.markovTable().stats().lookups, 0u);

    // Another PC teaches the same correlation; the condemned PC
    // still never predicts from it.
    observe(pf, 2, 100);
    observe(pf, 2, 200);
    auto out = observe(pf, 1, 100);
    EXPECT_TRUE(out.empty());
}

TEST(Prophet, PriorityFromHintRecordedInTable)
{
    ProphetPrefetcher pf(tinyConfig(),
                         binaryWith({{1, Hint{true, 2}}}));
    observe(pf, 1, 100);
    observe(pf, 1, 200);
    auto p = pf.markovTable().priorityOf(100);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, 2u);
}

TEST(Prophet, UnhintedPcInsertsAtLowestPriority)
{
    ProphetPrefetcher pf(tinyConfig(), binaryWith({}));
    observe(pf, 9, 100);
    observe(pf, 9, 200);
    auto p = pf.markovTable().priorityOf(100);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(*p, 0u);
}

TEST(Prophet, CsrResizesTableAtConstruction)
{
    ProphetPrefetcher pf(tinyConfig(),
                         binaryWith({{1, Hint{true, 3}}}, 2));
    EXPECT_EQ(pf.metadataWays(), 2u);
}

TEST(Prophet, CsrDisableTurnsTemporalOff)
{
    ProphetPrefetcher pf(tinyConfig(),
                         binaryWith({{1, Hint{true, 3}}}, 0, true));
    EXPECT_EQ(pf.metadataWays(), 0u);
    observe(pf, 1, 100);
    observe(pf, 1, 200);
    auto out = observe(pf, 1, 100);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(pf.markovTable().stats().inserts, 0u);
}

TEST(Prophet, ResizingFeatureOffIgnoresCsr)
{
    ProphetConfig cfg = tinyConfig();
    cfg.features.resizing = false;
    ProphetPrefetcher pf(cfg, binaryWith({}, 1));
    EXPECT_EQ(pf.metadataWays(), cfg.maxWays);
}

TEST(Prophet, InsertionFeatureOffIgnoresCondemnation)
{
    ProphetConfig cfg = tinyConfig();
    cfg.features.insertion = false;
    ProphetPrefetcher pf(cfg, binaryWith({{1, Hint{false, 0}}}));
    observe(pf, 1, 100);
    observe(pf, 1, 200);
    EXPECT_GT(pf.markovTable().stats().inserts, 0u);
}

TEST(Prophet, AllFeaturesOffActsLikeTriage4)
{
    // The Figure 19 baseline: degree-4 chaining, no filtering, fixed
    // table size, SRRIP replacement.
    ProphetConfig cfg = tinyConfig();
    cfg.features = ProphetFeatures{false, false, false, false};
    ProphetPrefetcher pf(cfg, OptimizedBinary{});
    for (Addr a : {10, 20, 30, 40, 50})
        observe(pf, 1, a);
    auto out = observe(pf, 1, 10);
    EXPECT_EQ(out.size(), 4u); // full-depth chain
    EXPECT_EQ(pf.metadataWays(), cfg.maxWays);
}

TEST(Prophet, DegreeScalesWithPriority)
{
    // Fine-grained aggressiveness: a priority-0 PC chases depth 1,
    // a priority-3 PC the full configured degree.
    ProphetPrefetcher pf(tinyConfig(),
                         binaryWith({{1, Hint{true, 0}},
                                     {2, Hint{true, 3}}}));
    for (Addr a : {10, 20, 30, 40, 50})
        observe(pf, 1, a);
    auto low = observe(pf, 1, 10);
    EXPECT_EQ(low.size(), 1u);

    for (Addr a : {110, 120, 130, 140, 150})
        observe(pf, 2, a);
    auto high = observe(pf, 2, 110);
    EXPECT_EQ(high.size(), 4u);
}

TEST(Prophet, MvbSuppliesAlternativePath)
{
    // (A,B,C) and (A,B,D): after C is displaced by D, a lookup on B
    // prefetches both paths (Figure 9).
    ProphetPrefetcher pf(tinyConfig(),
                         binaryWith({{1, Hint{true, 3}}}));
    observe(pf, 1, 1); // A
    observe(pf, 1, 2); // B   (A->B)
    observe(pf, 1, 3); // C   (B->C)
    observe(pf, 1, 1); // back to A
    observe(pf, 1, 2); // B
    observe(pf, 1, 4); // D   (B->D, displacing C into the MVB)
    auto out = observe(pf, 1, 2);
    std::vector<Addr> addrs;
    for (const auto &r : out)
        addrs.push_back(r.lineAddr);
    EXPECT_NE(std::find(addrs.begin(), addrs.end(), 4u), addrs.end());
    EXPECT_NE(std::find(addrs.begin(), addrs.end(), 3u), addrs.end());
}

TEST(Prophet, MvbFeatureOffNoAlternatives)
{
    ProphetConfig cfg = tinyConfig();
    cfg.features.mvb = false;
    ProphetPrefetcher pf(cfg, binaryWith({{1, Hint{true, 3}}}));
    observe(pf, 1, 1);
    observe(pf, 1, 2);
    observe(pf, 1, 3);
    observe(pf, 1, 1);
    observe(pf, 1, 2);
    observe(pf, 1, 4);
    auto out = observe(pf, 1, 2);
    for (const auto &r : out)
        EXPECT_NE(r.lineAddr, 3u); // the displaced path stays gone
}

TEST(Prophet, ProfilingModeIsSimplified)
{
    // Section 3.2: degree 1, fixed table, no insertion policy.
    ProphetConfig cfg = tinyConfig();
    cfg.profilingMode = true;
    ProphetPrefetcher pf(cfg, OptimizedBinary{});
    EXPECT_EQ(pf.name(), "prophet-simplified");
    EXPECT_EQ(pf.metadataWays(), cfg.maxWays);
    for (Addr a : {10, 20, 30, 40, 50})
        observe(pf, 1, a);
    auto out = observe(pf, 1, 10);
    EXPECT_EQ(out.size(), 1u); // degree 1
}

TEST(Prophet, ProfilingCollectsCounters)
{
    ProphetConfig cfg = tinyConfig();
    cfg.profilingMode = true;
    ProphetPrefetcher pf(cfg, OptimizedBinary{});
    observe(pf, 1, 100, false); // L2 miss recorded
    observe(pf, 1, 200, false);
    pf.notifyIssued(1);
    pf.notifyUseful(1);
    auto snap = pf.takeSnapshot();
    ASSERT_TRUE(snap.perPc.count(1));
    EXPECT_EQ(snap.perPc.at(1).l2Misses, 2u);
    EXPECT_DOUBLE_EQ(snap.perPc.at(1).accuracy, 1.0);
    EXPECT_EQ(snap.allocatedEntries,
              pf.markovTable().stats().allocatedEntries());
}

} // anonymous namespace
} // namespace prophet::core
