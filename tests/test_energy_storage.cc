/**
 * @file
 * Unit tests for the energy (Section 5.11) and storage-overhead
 * (Section 5.10) accounting.
 */

#include <gtest/gtest.h>

#include "sim/energy.hh"
#include "sim/storage.hh"

namespace prophet::sim
{
namespace
{

TEST(Energy, DramDominatesAtPaperRatio)
{
    RunStats s;
    s.l1Accesses = 1000;
    s.l2Accesses = 100;
    s.llcAccesses = 100;
    s.dramReads = 100;
    s.dramWrites = 0;
    auto r = memoryEnergy(s);
    // DRAM = 25x LLC per access (Section 5.11).
    EXPECT_DOUBLE_EQ(r.dramNj / r.llcNj, 25.0);
    EXPECT_GT(r.dramNj, r.totalNj() * 0.5);
}

TEST(Energy, MetadataCountsLookupsAndWrites)
{
    RunStats s;
    s.markov.lookups = 10;
    s.markov.inserts = 5;
    s.markov.updates = 5;
    auto r = memoryEnergy(s);
    EXPECT_DOUBLE_EQ(r.metadataNj, 20.0 * 1.0);
}

TEST(Energy, ZeroRunZeroEnergy)
{
    RunStats s;
    EXPECT_DOUBLE_EQ(memoryEnergy(s).totalNj(), 0.0);
}

TEST(Energy, ParamsScaleLinearly)
{
    RunStats s;
    s.dramReads = 10;
    EnergyParams p;
    p.dramAccessNj = 50.0;
    EXPECT_DOUBLE_EQ(memoryEnergy(s, p).dramNj, 500.0);
}

TEST(Storage, ProphetBreakdownMatchesSection510)
{
    auto items = prophetStorage();
    ASSERT_EQ(items.size(), 3u);
    // Replacement state: 196,608 entries x 2 bits = 48 KB.
    EXPECT_NEAR(items[0].kib(), 48.0, 0.01);
    // Hint buffer ~ 0.19 KB.
    EXPECT_NEAR(items[1].kib(), 0.19, 0.15);
    // MVB: 65,536 x 43 bits ~ 344 KB.
    EXPECT_NEAR(items[2].kib(), 344.0, 1.0);
}

TEST(Storage, TriageCitesHawkeyeAndBloomCosts)
{
    auto items = triageStorage();
    // Section 2.1: Hawkeye ~13 KB, Bloom filter > 200 KB.
    EXPECT_NEAR(items[0].kib(), 13.0, 0.01);
    EXPECT_GE(items[1].kib(), 200.0);
}

TEST(Storage, TriangelCheaperManagementThanTriage)
{
    // Triangel replaced Hawkeye+Bloom with SRRIP+Dueller to cut
    // management storage (Section 2.1).
    auto triage = totalBits(triageStorage());
    auto triangel = totalBits(triangelStorage());
    EXPECT_LT(triangel, triage);
}

TEST(Storage, TotalsSum)
{
    std::vector<StorageItem> items{{"a", 8}, {"b", 16}};
    EXPECT_EQ(totalBits(items), 24u);
}

TEST(Storage, ScalesWithConfiguration)
{
    auto small = prophetStorage(196608, 2, 128, 1024);
    auto big = prophetStorage(196608, 2, 128, 65536);
    EXPECT_LT(totalBits(small), totalBits(big));
    auto n3 = prophetStorage(196608, 3, 128, 65536);
    EXPECT_GT(totalBits(n3), totalBits(big));
}

} // anonymous namespace
} // namespace prophet::sim
