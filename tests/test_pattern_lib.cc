/**
 * @file
 * Unit and property tests for the workload pattern library:
 * determinism, coverage, phase structure, branching, and the
 * indirect resolver contract RPG2 relies on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "workloads/pattern_lib.hh"

namespace prophet::workloads
{
namespace
{

StreamParams
params(std::uint64_t seed = 1)
{
    StreamParams p;
    p.pc = 0x400000;
    p.regionBase = 1ull << 32;
    p.instGap = 4;
    p.seed = seed;
    return p;
}

trace::Trace
emitN(Stream &s, std::size_t n)
{
    trace::Trace t;
    for (std::size_t i = 0; i < n; ++i)
        s.emit(t);
    return t;
}

TEST(ChaseStream, VisitsEveryNodeEachRound)
{
    ChaseStream s(params(), 64, 0.0);
    auto t = emitN(s, 64);
    std::set<Addr> lines;
    for (const auto &r : t)
        lines.insert(lineAddr(r.addr));
    EXPECT_EQ(lines.size(), 64u); // a full traversal covers the ring
}

TEST(ChaseStream, RepeatsExactlyWithoutMutation)
{
    ChaseStream s(params(), 32, 0.0);
    auto first = emitN(s, 32);
    auto second = emitN(s, 32);
    for (std::size_t i = 0; i < 32; ++i)
        EXPECT_EQ(first[i].addr, second[i].addr);
}

TEST(ChaseStream, MutationPerturbsSuccessors)
{
    ChaseStream s(params(), 256, 0.3);
    auto first = emitN(s, 256);
    auto second = emitN(s, 256);
    std::unordered_map<Addr, Addr> succ1;
    for (std::size_t i = 0; i + 1 < 256; ++i)
        succ1[first[i].addr] = first[i + 1].addr;
    int changed = 0, checked = 0;
    for (std::size_t i = 0; i + 1 < 256; ++i) {
        auto it = succ1.find(second[i].addr);
        if (it != succ1.end()) {
            ++checked;
            if (it->second != second[i + 1].addr)
                ++changed;
        }
    }
    EXPECT_GT(changed, 0);
    EXPECT_LT(changed, checked); // but most links survive
}

TEST(ChaseStream, AccessesAreDependent)
{
    ChaseStream s(params(), 16, 0.0);
    auto t = emitN(s, 8);
    for (const auto &r : t)
        EXPECT_TRUE(r.dependsOnPrev);
}

TEST(ChaseStream, DeterministicPerSeed)
{
    ChaseStream a(params(7), 64, 0.1);
    ChaseStream b(params(7), 64, 0.1);
    auto ta = emitN(a, 200);
    auto tb = emitN(b, 200);
    for (std::size_t i = 0; i < 200; ++i)
        EXPECT_EQ(ta[i].addr, tb[i].addr);
}

TEST(AlternatingStream, PhasesAlternate)
{
    AlternatingStream s(params(), 64, 8, 4, 1024);
    auto t = emitN(s, 36);
    // Ring region is the first 64 lines; noise lives beyond.
    Addr ring_end = params().regionBase + 64 * kLineSize;
    // First 8 accesses useful, next 4 useless, and so on.
    for (int i = 0; i < 8; ++i)
        EXPECT_LT(t[i].addr, ring_end) << i;
    for (int i = 8; i < 12; ++i)
        EXPECT_GE(t[i].addr, ring_end) << i;
    for (int i = 12; i < 20; ++i)
        EXPECT_LT(t[i].addr, ring_end) << i;
}

TEST(AlternatingStream, RingPositionPersistsAcrossBursts)
{
    // The useful-phase pattern must repeat across bursts (that's
    // what makes the blue dots of Figure 1 useful).
    AlternatingStream s(params(), 16, 8, 4, 1024);
    std::vector<Addr> useful;
    trace::Trace t;
    for (int i = 0; i < 120; ++i)
        s.emit(t);
    Addr ring_end = params().regionBase + 16 * kLineSize;
    for (const auto &r : t)
        if (r.addr < ring_end)
            useful.push_back(r.addr);
    // Ring of 16: the sequence of useful accesses is periodic.
    ASSERT_GE(useful.size(), 48u);
    for (std::size_t i = 0; i + 16 < useful.size(); ++i)
        EXPECT_EQ(useful[i], useful[i + 16]);
}

TEST(BranchingChase, BranchNodesAlternateSuccessors)
{
    BranchingChaseStream s(params(), 128, 1.0); // every node branches
    auto t = emitN(s, 4096);
    std::unordered_map<Addr, std::set<Addr>> succ;
    for (std::size_t i = 0; i + 1 < t.size(); ++i)
        succ[t[i].addr].insert(t[i + 1].addr);
    int multi = 0;
    for (const auto &[a, ss] : succ)
        if (ss.size() >= 2)
            ++multi;
    EXPECT_GT(multi, 10); // plenty of multi-target nodes (Figure 8)
}

TEST(BranchingChase, ZeroFractionIsPlainRing)
{
    BranchingChaseStream s(params(), 64, 0.0);
    auto t = emitN(s, 256);
    std::unordered_map<Addr, std::set<Addr>> succ;
    for (std::size_t i = 0; i + 1 < t.size(); ++i)
        succ[t[i].addr].insert(t[i + 1].addr);
    for (const auto &[a, ss] : succ)
        EXPECT_EQ(ss.size(), 1u);
}

TEST(IndirectStream, StrideKernelEmitsKernelThenTarget)
{
    IndirectStream s(params(), 64, 128, true);
    auto t = emitN(s, 8); // 8 emissions = 16 records
    ASSERT_EQ(t.size(), 16u);
    for (std::size_t i = 0; i < t.size(); i += 2) {
        EXPECT_EQ(t[i].pc, s.kernelPc());
        EXPECT_EQ(t[i + 1].pc, s.targetPc());
        EXPECT_TRUE(t[i + 1].dependsOnPrev);
    }
    // Stride kernel: b addresses advance by 4 bytes.
    EXPECT_EQ(t[2].addr, t[0].addr + 4);
}

TEST(IndirectStream, ResolverMatchesFutureTarget)
{
    IndirectStream s(params(), 64, 128, true);
    auto t = emitN(s, 64); // one full kernel pass
    // resolve(kernel_addr_of_i, d) must equal the target accessed at
    // iteration i + d.
    for (std::size_t i = 0; i + 3 < 64; ++i) {
        Addr kernel_addr = t[2 * i].addr;
        auto resolved = s.resolve(kernel_addr, 3);
        ASSERT_TRUE(resolved.has_value());
        EXPECT_EQ(*resolved, t[2 * (i + 3) + 1].addr);
    }
}

TEST(IndirectStream, ShuffledKernelRefusesResolution)
{
    IndirectStream s(params(), 64, 128, false);
    auto t = emitN(s, 4);
    EXPECT_FALSE(s.resolve(t[0].addr, 1).has_value());
    EXPECT_FALSE(s.strideKernel());
}

TEST(IndirectStream, TraversalRepeatsAcrossRounds)
{
    IndirectStream s(params(), 32, 64, false);
    auto first = emitN(s, 32);
    auto second = emitN(s, 32);
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(first[i].addr, second[i].addr);
}

TEST(StrideStream, AdvancesByStrideAndWraps)
{
    StrideStream s(params(), 8, 2);
    auto t = emitN(s, 8);
    EXPECT_EQ(lineAddr(t[1].addr) - lineAddr(t[0].addr), 2u);
    // Wraps within the region.
    for (const auto &r : t)
        EXPECT_LT(lineAddr(r.addr) - lineAddr(params().regionBase),
                  8u);
}

TEST(NoiseStream, StaysInRegionAndSpreads)
{
    NoiseStream s(params(), 1024);
    auto t = emitN(s, 2000);
    std::set<Addr> lines;
    for (const auto &r : t) {
        Addr off = lineAddr(r.addr) - lineAddr(params().regionBase);
        EXPECT_LT(off, 1024u);
        lines.insert(off);
    }
    EXPECT_GT(lines.size(), 500u);
}

TEST(Composite, HonorsTotalRecords)
{
    CompositeGenerator g("t", 1000, 1);
    g.addStream(std::make_unique<StrideStream>(params(), 64), 1.0);
    auto t = g.generate();
    EXPECT_GE(t.size(), 1000u);
    EXPECT_LE(t.size(), 1002u);
}

TEST(Composite, WeightsShapeMix)
{
    CompositeGenerator g("t", 10000, 1);
    StreamParams p1 = params();
    StreamParams p2 = params();
    p2.pc = 0x500000;
    p2.regionBase = 1ull << 40;
    g.addStream(std::make_unique<StrideStream>(p1, 64), 3.0);
    g.addStream(std::make_unique<StrideStream>(p2, 64), 1.0);
    auto t = g.generate();
    std::size_t first = 0;
    for (const auto &r : t)
        if (r.pc == p1.pc)
            ++first;
    double frac = static_cast<double>(first)
        / static_cast<double>(t.size());
    EXPECT_NEAR(frac, 0.75, 0.05);
}

TEST(Composite, DeterministicPerSeed)
{
    auto make = [] {
        CompositeGenerator g("t", 500, 99);
        g.addStream(std::make_unique<ChaseStream>(params(3), 64, 0.1),
                    1.0);
        g.addStream(std::make_unique<NoiseStream>(params(4), 256),
                    1.0);
        return g.generate();
    };
    auto a = make();
    auto b = make();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].addr, b[i].addr);
}

TEST(PcResolverTest, DispatchesByPc)
{
    PcResolver r;
    r.registerKernel(5, [](Addr a, std::int64_t d) {
        return std::optional<Addr>(a + static_cast<Addr>(d) * 10);
    });
    EXPECT_EQ(*r.resolve(5, 100, 3), 130u);
    EXPECT_FALSE(r.resolve(6, 100, 3).has_value());
    EXPECT_EQ(r.size(), 1u);
}

} // anonymous namespace
} // namespace prophet::workloads
