/**
 * @file
 * Unit tests for the profiling counters (Section 4.1): the
 * PEBS-event stand-ins and the snapshot arithmetic
 * (accuracy = useful/issued, allocated = insertions - replacements).
 */

#include <gtest/gtest.h>

#include "core/profile.hh"

namespace prophet::core
{
namespace
{

TEST(PcCounters, AccuracyFormula)
{
    PcCounters c;
    EXPECT_DOUBLE_EQ(c.accuracy(), 0.0); // no issues: defined as 0
    c.issuedPrefetches = 100;
    c.usefulPrefetches = 40;
    EXPECT_DOUBLE_EQ(c.accuracy(), 0.4);
}

TEST(Collector, EventsAccumulatePerPc)
{
    ProfileCollector pc;
    pc.notifyIssued(1);
    pc.notifyIssued(1);
    pc.notifyUseful(1);
    pc.notifyIssued(2);
    pc.notifyL2Miss(2);

    auto c1 = pc.rawCounters(1);
    EXPECT_EQ(c1.issuedPrefetches, 2u);
    EXPECT_EQ(c1.usefulPrefetches, 1u);
    EXPECT_EQ(c1.l2Misses, 0u);

    auto c2 = pc.rawCounters(2);
    EXPECT_EQ(c2.issuedPrefetches, 1u);
    EXPECT_EQ(c2.l2Misses, 1u);
    EXPECT_EQ(pc.numPcs(), 2u);
}

TEST(Collector, UnknownPcIsZero)
{
    ProfileCollector pc;
    auto c = pc.rawCounters(77);
    EXPECT_EQ(c.issuedPrefetches, 0u);
    EXPECT_EQ(c.usefulPrefetches, 0u);
}

TEST(Collector, SnapshotDistillsAccuracy)
{
    ProfileCollector pc;
    for (int i = 0; i < 10; ++i)
        pc.notifyIssued(5);
    for (int i = 0; i < 7; ++i)
        pc.notifyUseful(5);
    pc.notifyL2Miss(5);
    pc.setTableCounters(1000, 400);

    auto snap = pc.snapshot();
    ASSERT_TRUE(snap.perPc.count(5));
    EXPECT_DOUBLE_EQ(snap.perPc.at(5).accuracy, 0.7);
    EXPECT_EQ(snap.perPc.at(5).l2Misses, 1u);
    // Allocated Entries = Insertions - Replacements (Section 4.1).
    EXPECT_EQ(snap.allocatedEntries, 600u);
}

TEST(Collector, AllocatedEntriesNeverUnderflow)
{
    ProfileCollector pc;
    pc.setTableCounters(10, 20);
    EXPECT_EQ(pc.snapshot().allocatedEntries, 0u);
}

TEST(Collector, ResetClearsEverything)
{
    ProfileCollector pc;
    pc.notifyIssued(1);
    pc.setTableCounters(5, 1);
    pc.reset();
    EXPECT_EQ(pc.numPcs(), 0u);
    EXPECT_EQ(pc.snapshot().allocatedEntries, 0u);
}

} // anonymous namespace
} // namespace prophet::core
