/**
 * @file
 * End-to-end tests for the resident serve daemon, exercising the
 * whole robustness envelope promised in serve/server.hh: stale-socket
 * recovery and live-socket refusal, request/response equivalence with
 * the standalone driver (byte-for-byte), resident-trace reuse across
 * requests, fault containment (malformed frames, bad specs, oversize
 * payloads, injected mid-run failures — each answered with a
 * structured frame while the daemon keeps serving), admission-control
 * shedding with a retry hint, client-disconnect slot reclamation,
 * per-request deadlines, RSS-watermark eviction, and graceful drain.
 *
 * The metrics registry is process-wide and the daemon deliberately
 * never resets it, so every assertion on a serve.* counter reads a
 * delta around the action, not an absolute value.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.hh"
#include "common/fault_injection.hh"
#include "common/metrics.hh"
#include "driver/driver.hh"
#include "driver/json.hh"
#include "driver/sink.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

namespace fs = std::filesystem;

namespace prophet::serve
{
namespace
{

namespace json = driver::json;

/** Short traces keep the round-trips fast. */
constexpr std::size_t kRecords = 20'000;

std::uint64_t
counterValue(const std::string &name)
{
    return metrics::counter(name).value();
}

/** A fresh socket path per test: stale state cannot leak across. */
std::string
freshSocketPath()
{
    static int n = 0;
    return "/tmp/prophet_serve_" + std::to_string(::getpid()) + "_"
        + std::to_string(++n) + ".sock";
}

/** Spec text shared by the daemon and the standalone reference. */
std::string
specText(std::size_t records = kRecords)
{
    return "{\"name\": \"serve-e2e\","
           " \"workloads\": [\"mcf\"],"
           " \"pipelines\": [\"baseline\", \"triangel\"],"
           " \"metrics\": [\"ipc\", \"speedup\"],"
           " \"records\": " + std::to_string(records) + ","
           " \"trace_cache\": false,"
           " \"sinks\": [{\"type\": \"csv\","
           "              \"path\": \"out.csv\"}]}";
}

/** A {"type":"run"} request frame payload around @p spec_text. */
std::string
runRequest(const std::string &spec_text, double deadline_s = 0.0)
{
    json::Value req = json::Value::makeObject();
    req.set("type", json::Value("run"));
    req.set("spec_text", json::Value(spec_text));
    if (deadline_s > 0.0)
        req.set("deadline_s", json::Value(deadline_s));
    return json::dump(req);
}

/** Exchange @p payload with the daemon; ASSERT-parses the reply. */
json::Value
roundTrip(const std::string &socket_path, const std::string &payload,
         int timeout_ms = 30000)
{
    std::string response, err;
    EXPECT_TRUE(clientExchange(socket_path, payload, response, err,
                               timeout_ms))
        << err;
    json::Value resp;
    std::string perr;
    EXPECT_TRUE(json::parse(response, resp, &perr)) << perr;
    return resp;
}

std::string
frameType(const json::Value &resp)
{
    const json::Value *t = resp.find("type");
    return t && t->isString() ? t->asString() : "";
}

std::string
errorCodeOf(const json::Value &resp)
{
    const json::Value *c = resp.find("code");
    return c && c->isString() ? c->asString() : "";
}

/** The one CSV sink's rendered bytes from a result frame. */
std::string
csvContent(const json::Value &result)
{
    const json::Value *sinks = result.find("sinks");
    EXPECT_TRUE(sinks && sinks->isArray()
                && sinks->asArray().size() == 1u);
    if (!sinks || !sinks->isArray() || sinks->asArray().empty())
        return "";
    const json::Value *content =
        sinks->asArray()[0].find("content");
    EXPECT_TRUE(content && content->isString());
    return content && content->isString() ? content->asString()
                                          : "";
}

/** Connect a raw fd to the daemon socket (tests drive half-open
 *  and mid-run-disconnect scenarios the client API never would). */
int
rawConnect(const std::string &path)
{
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    EXPECT_LT(path.size(), sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(0, ::connect(fd,
                           reinterpret_cast<struct sockaddr *>(&addr),
                           sizeof(addr)))
        << std::strerror(errno);
    return fd;
}

/** Poll @p cond up to @p budget; true when it held in time. */
bool
eventually(const std::function<bool()> &cond,
           std::chrono::milliseconds budget =
               std::chrono::milliseconds(15000))
{
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (std::chrono::steady_clock::now() < deadline) {
        if (cond())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return cond();
}

class ServeDaemonTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        fault::reset();
        sock = freshSocketPath();
        opts.socketPath = sock;
        opts.workers = 2;
        opts.retryBackoffMs = 0;
        opts.traceCache = 0; // resident Runner reuse is the cache
    }

    void TearDown() override { fault::reset(); }

    std::string sock;
    ServeOptions opts;
};

TEST_F(ServeDaemonTest, StartRecoversStaleSocketFile)
{
    // A crashed daemon leaves the socket file behind but not the
    // pidfile lock; a restart must reclaim the path, not fail with
    // "address in use".
    { std::ofstream stale(sock); stale << "stale"; }
    ASSERT_TRUE(fs::exists(sock));
    ServeDaemon daemon(opts);
    ASSERT_NO_THROW(daemon.start());
    json::Value resp = roundTrip(sock, "{\"type\":\"ping\"}");
    EXPECT_EQ(frameType(resp), "pong");
    daemon.drainAndStop();
}

TEST_F(ServeDaemonTest, SecondDaemonOnSameSocketIsRefused)
{
    ServeDaemon first(opts);
    first.start();
    ServeDaemon second(opts);
    try {
        second.start();
        FAIL() << "second start() on a live socket must throw";
    } catch (const Error &e) {
        EXPECT_EQ(e.code(), ErrorCode::SocketBusy);
        EXPECT_NE(std::string(e.what()).find("pid"),
                  std::string::npos);
    }
    // The loser must not have torn down the winner's socket.
    json::Value resp = roundTrip(sock, "{\"type\":\"ping\"}");
    EXPECT_EQ(frameType(resp), "pong");
    first.drainAndStop();
}

TEST_F(ServeDaemonTest, RunMatchesStandaloneDriverByteForByte)
{
    ServeDaemon daemon(opts);
    daemon.start();
    json::Value resp = roundTrip(sock, runRequest(specText()));
    ASSERT_EQ(frameType(resp), "result") << errorCodeOf(resp);
    const json::Value *ec = resp.find("exit_code");
    ASSERT_TRUE(ec && ec->isNumber());
    EXPECT_EQ(static_cast<int>(ec->asNumber()), 0);
    const std::string served = csvContent(resp);
    ASSERT_FALSE(served.empty());
    daemon.drainAndStop();

    // Ground truth: the same spec through the standalone driver,
    // rendered by the same capturing-sink path the daemon uses.
    json::Value doc;
    ASSERT_TRUE(json::parse(specText(), doc, nullptr));
    driver::DriverOptions dopts;
    dopts.resetMetrics = false; // keep serve.* deltas readable
    dopts.suppressSpecSinks = true;
    dopts.traceCache = 0;
    driver::ExperimentDriver drv(
        driver::ExperimentSpec::fromJson(doc), dopts);
    driver::SinkSpec csv;
    csv.kind = driver::SinkSpec::Kind::CsvFile;
    csv.path = "out.csv";
    std::string direct;
    drv.addSink(driver::makeCapturingSink(csv, &direct));
    ASSERT_TRUE(drv.run().ok());
    EXPECT_EQ(served, direct);
}

TEST_F(ServeDaemonTest, WarmRepeatHitsResidentTraces)
{
    ServeDaemon daemon(opts);
    daemon.start();
    const std::uint64_t hits0 =
        counterValue("runner.trace_resident_hits");
    const std::uint64_t created0 =
        counterValue("serve.runners_created");

    json::Value first = roundTrip(sock, runRequest(specText()));
    ASSERT_EQ(frameType(first), "result");
    json::Value second = roundTrip(sock, runRequest(specText()));
    ASSERT_EQ(frameType(second), "result");
    EXPECT_EQ(csvContent(first), csvContent(second));

    // Same base-config tuple: one resident runner, and the repeat
    // request's trace loads were all satisfied from residency.
    EXPECT_EQ(counterValue("serve.runners_created") - created0, 1u);
    EXPECT_GT(counterValue("runner.trace_resident_hits"), hits0);

    // The health report names the resident workload.
    json::Value health = roundTrip(sock, "{\"type\":\"health\"}");
    ASSERT_EQ(frameType(health), "health");
    const json::Value *resident = health.find("resident");
    ASSERT_TRUE(resident && resident->isArray());
    ASSERT_EQ(resident->asArray().size(), 1u);
    const json::Value *traces =
        resident->asArray()[0].find("traces");
    ASSERT_TRUE(traces && traces->isArray());
    bool saw_mcf = false;
    for (const auto &t : traces->asArray())
        if (t.find("workload")
            && t.find("workload")->asString() == "mcf")
            saw_mcf = true;
    EXPECT_TRUE(saw_mcf);
    const json::Value *counters = health.find("counters");
    ASSERT_TRUE(counters && counters->isObject());
    EXPECT_NE(counters->find("serve.requests"), nullptr);
    daemon.drainAndStop();
}

TEST_F(ServeDaemonTest, ConcurrentClientsGetIdenticalResults)
{
    opts.workers = 4;
    ServeDaemon daemon(opts);
    daemon.start();
    constexpr int kClients = 4;
    std::vector<std::string> contents(kClients);
    std::vector<int> exit_codes(kClients, -1);
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i)
        clients.emplace_back([&, i] {
            std::string response, err;
            if (!clientExchange(sock, runRequest(specText()),
                                response, err, 60000))
                return;
            json::Value resp;
            if (!json::parse(response, resp, nullptr))
                return;
            if (frameType(resp) != "result")
                return;
            const json::Value *ec = resp.find("exit_code");
            exit_codes[i] = ec && ec->isNumber()
                ? static_cast<int>(ec->asNumber())
                : -1;
            contents[i] = csvContent(resp);
        });
    for (auto &t : clients)
        t.join();
    for (int i = 0; i < kClients; ++i) {
        EXPECT_EQ(exit_codes[i], 0) << "client " << i;
        EXPECT_FALSE(contents[i].empty()) << "client " << i;
        EXPECT_EQ(contents[i], contents[0]) << "client " << i;
    }
    EXPECT_TRUE(eventually([&] {
        return daemon.activeRequests() == 0;
    }));
    daemon.drainAndStop();
}

TEST_F(ServeDaemonTest, MalformedRequestsAreContained)
{
    ServeDaemon daemon(opts);
    daemon.start();

    // Valid frame, invalid JSON payload.
    json::Value resp = roundTrip(sock, "this is not json");
    EXPECT_EQ(frameType(resp), "error");
    EXPECT_EQ(errorCodeOf(resp), "protocol-error");

    // Valid JSON, unknown request type.
    resp = roundTrip(sock, "{\"type\":\"frobnicate\"}");
    EXPECT_EQ(frameType(resp), "error");
    EXPECT_EQ(errorCodeOf(resp), "protocol-error");

    // A run request carrying neither spec nor spec_text.
    resp = roundTrip(sock, "{\"type\":\"run\"}");
    EXPECT_EQ(frameType(resp), "error");
    EXPECT_EQ(errorCodeOf(resp), "protocol-error");

    // An unknown spec field fails spec validation, not the daemon.
    resp = roundTrip(
        sock, runRequest("{\"bogus_knob\": 1, \"workloads\": []}"));
    EXPECT_EQ(frameType(resp), "error");
    EXPECT_EQ(errorCodeOf(resp), "spec-parse");
    const json::Value *msg = resp.find("message");
    ASSERT_TRUE(msg && msg->isString());
    EXPECT_NE(msg->asString().find("bogus_knob"),
              std::string::npos);

    // After all four failures the daemon still serves.
    resp = roundTrip(sock, "{\"type\":\"ping\"}");
    EXPECT_EQ(frameType(resp), "pong");
    daemon.drainAndStop();
}

TEST_F(ServeDaemonTest, OversizePayloadShedBeforeParsing)
{
    opts.maxFrameBytes = 1024;
    ServeDaemon daemon(opts);
    daemon.start();
    // 4 KiB of padding blows the 1 KiB cap: the decoder classifies
    // it from the header alone and the daemon answers with a
    // structured frame instead of reading (or allocating) the body.
    std::string fat = "{\"type\":\"ping\",\"pad\":\""
        + std::string(4096, 'x') + "\"}";
    json::Value resp = roundTrip(sock, fat);
    EXPECT_EQ(frameType(resp), "error");
    EXPECT_EQ(errorCodeOf(resp), "protocol-error");
    const json::Value *msg = resp.find("message");
    ASSERT_TRUE(msg && msg->isString());
    EXPECT_NE(msg->asString().find("cap"), std::string::npos);

    resp = roundTrip(sock, "{\"type\":\"ping\"}");
    EXPECT_EQ(frameType(resp), "pong");
    daemon.drainAndStop();
}

TEST_F(ServeDaemonTest, MidRunJobFaultYieldsFailedResultFrame)
{
    ServeDaemon daemon(opts);
    daemon.start();
    fault::arm("job.mcf/triangel", 1, 1);
    json::Value resp = roundTrip(sock, runRequest(specText()));
    fault::reset();
    // The failure is the request's, not the daemon's: a result
    // frame with the documented runtime-failure exit code.
    ASSERT_EQ(frameType(resp), "result");
    const json::Value *ec = resp.find("exit_code");
    ASSERT_TRUE(ec && ec->isNumber());
    EXPECT_EQ(static_cast<int>(ec->asNumber()), 4);
    const json::Value *failed = resp.find("failed_jobs");
    ASSERT_TRUE(failed && failed->isNumber());
    EXPECT_GE(failed->asNumber(), 1.0);

    // The same spec immediately succeeds on the same runner.
    resp = roundTrip(sock, runRequest(specText()));
    ASSERT_EQ(frameType(resp), "result");
    EXPECT_EQ(static_cast<int>(resp.find("exit_code")->asNumber()),
              0);
    daemon.drainAndStop();
}

TEST_F(ServeDaemonTest, OverloadShedsWithRetryAfterHint)
{
    opts.workers = 1;
    opts.maxQueue = 1;
    opts.ioTimeoutMs = 10000;
    ServeDaemon daemon(opts);
    daemon.start();
    const std::uint64_t shed0 = counterValue("serve.rejected");

    // Occupy the only worker with an idle connection (it blocks in
    // readFrame until we close), then fill the one queue slot.
    const int busy = rawConnect(sock);
    ASSERT_TRUE(eventually(
        [&] { return daemon.activeRequests() == 1; }));
    const int queued = rawConnect(sock);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // The next arrival must be shed — a structured frame with a
    // retry hint, never a silent hang on a full daemon.
    json::Value resp = roundTrip(sock, "{\"type\":\"ping\"}", 5000);
    EXPECT_EQ(frameType(resp), "error");
    EXPECT_EQ(errorCodeOf(resp), "server-overloaded");
    const json::Value *retry = resp.find("retry_after_ms");
    ASSERT_TRUE(retry && retry->isNumber());
    EXPECT_GT(retry->asNumber(), 0.0);
    EXPECT_EQ(counterValue("serve.rejected") - shed0, 1u);

    ::close(busy);
    ::close(queued);
    EXPECT_TRUE(eventually(
        [&] { return daemon.activeRequests() == 0; }));
    // Capacity freed: admission works again.
    resp = roundTrip(sock, "{\"type\":\"ping\"}");
    EXPECT_EQ(frameType(resp), "pong");
    daemon.drainAndStop();
}

TEST_F(ServeDaemonTest, DisconnectedClientFreesItsSlotMidRun)
{
    ServeDaemon daemon(opts);
    daemon.start();
    const std::uint64_t disc0 = counterValue("serve.disconnects");

    // A run big enough to still be in flight when the client dies.
    const int fd = rawConnect(sock);
    ASSERT_TRUE(writeFrame(fd, runRequest(specText(2'000'000)),
                           5000));
    ASSERT_TRUE(eventually(
        [&] { return daemon.activeRequests() == 1; }));
    ::close(fd);

    // The monitor notices the dead peer, fires the request's token,
    // and the slot drains without anyone reading the result.
    EXPECT_TRUE(eventually(
        [&] { return daemon.activeRequests() == 0; }));
    EXPECT_GE(counterValue("serve.disconnects") - disc0, 1u);

    // The worker the orphan occupied is back in rotation.
    json::Value resp = roundTrip(sock, "{\"type\":\"ping\"}");
    EXPECT_EQ(frameType(resp), "pong");
    daemon.drainAndStop();
}

TEST_F(ServeDaemonTest, RequestDeadlineCancelsAsJobTimeout)
{
    opts.maxAttempts = 1; // one doomed attempt is enough
    ServeDaemon daemon(opts);
    daemon.start();
    // 2M records cannot finish in 1 ms: the per-request deadline
    // fires and the request reports its own failure while the
    // daemon (and its resident runner) stay healthy.
    json::Value resp = roundTrip(
        sock, runRequest(specText(2'000'000), 0.001), 60000);
    ASSERT_EQ(frameType(resp), "result") << errorCodeOf(resp);
    const json::Value *ec = resp.find("exit_code");
    ASSERT_TRUE(ec && ec->isNumber());
    EXPECT_EQ(static_cast<int>(ec->asNumber()), 4);
    EXPECT_GE(resp.find("failed_jobs")->asNumber(), 1.0);

    // A deadline-free request on the same daemon still completes.
    resp = roundTrip(sock, runRequest(specText()));
    ASSERT_EQ(frameType(resp), "result");
    EXPECT_EQ(static_cast<int>(resp.find("exit_code")->asNumber()),
              0);
    daemon.drainAndStop();
}

TEST_F(ServeDaemonTest, RssWatermarkEvictsIdleTraces)
{
    opts.maxRssMb = 1; // any real process sits above 1 MiB
    ServeDaemon daemon(opts);
    daemon.start();
    const std::uint64_t evict0 = counterValue("serve.evictions");

    json::Value resp = roundTrip(sock, runRequest(specText()));
    ASSERT_EQ(frameType(resp), "result");
    // Idle + over the watermark: the monitor evicts the resident
    // traces LRU-first.
    EXPECT_TRUE(eventually([&] {
        return counterValue("serve.evictions") > evict0;
    }));

    // Eviction degrades warmth, not correctness: the next request
    // reloads what it needs and succeeds.
    resp = roundTrip(sock, runRequest(specText()));
    ASSERT_EQ(frameType(resp), "result");
    EXPECT_EQ(static_cast<int>(resp.find("exit_code")->asNumber()),
              0);
    daemon.drainAndStop();
}

TEST_F(ServeDaemonTest, DrainRemovesSocketAndPidfileAndIsIdempotent)
{
    ServeDaemon daemon(opts);
    daemon.start();
    ASSERT_TRUE(fs::exists(sock));
    ASSERT_TRUE(fs::exists(sock + ".pid"));
    daemon.drainAndStop();
    EXPECT_FALSE(fs::exists(sock));
    EXPECT_FALSE(fs::exists(sock + ".pid"));
    // Second drain is a no-op, and the path is free for a restart.
    daemon.drainAndStop();
    ServeDaemon next(opts);
    ASSERT_NO_THROW(next.start());
    json::Value resp = roundTrip(sock, "{\"type\":\"ping\"}");
    EXPECT_EQ(frameType(resp), "pong");
    next.drainAndStop();
}

} // anonymous namespace
} // namespace prophet::serve
