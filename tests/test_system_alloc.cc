/**
 * @file
 * Allocation-freedom of the warmed-up per-record system step: once a
 * System has seen its working set, driving further records through the
 * L1-hit, L2-miss, and prefetch-issue paths must perform zero heap
 * allocations, for every pipeline the records/sec benches gate
 * (none/triage/triangel/prophet). Enforced with a counting global
 * operator new (the same technique as test_cache.cc) around
 * System::step().
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "sim/system.hh"
#include "workloads/pattern_lib.hh"

namespace
{
std::atomic<std::uint64_t> g_heapAllocs{0};
} // anonymous namespace

void *
operator new(std::size_t n)
{
    ++g_heapAllocs;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void *
operator new(std::size_t n, std::align_val_t align)
{
    ++g_heapAllocs;
    // aligned_alloc requires the size to be a multiple of alignment.
    std::size_t a = static_cast<std::size_t>(align);
    std::size_t size = ((n ? n : 1) + a - 1) / a * a;
    if (void *p = std::aligned_alloc(a, size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n, std::align_val_t align)
{
    return ::operator new(n, align);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace prophet::sim
{
namespace
{

/**
 * A pointer chase over more lines than the L2 holds (8192): repeated
 * traversals keep generating L2 misses and give the temporal
 * prefetchers a pattern to issue on, while revisited lines produce
 * L1/L2 hits. The second trace half replays the same ring, so by the
 * time the first half has been stepped, every structure the loop
 * touches has reached its steady-state footprint.
 */
trace::Trace
chaseTrace(std::size_t records)
{
    workloads::StreamParams p;
    p.pc = 0x400000;
    p.regionBase = 1ull << 33;
    p.seed = 7;
    workloads::ChaseStream stream(p, 20000, 0.0);
    trace::Trace t;
    for (std::size_t i = 0; i < records; ++i)
        stream.emit(t);
    return t;
}

class WarmSystemStep : public ::testing::TestWithParam<L2PfKind>
{
};

TEST_P(WarmSystemStep, WarmedInnerStepDoesNotAllocate)
{
    trace::Trace t = chaseTrace(150000);

    SystemConfig cfg = SystemConfig::table1();
    cfg.l2Pf = GetParam();
    cfg.warmupRecords = 0;

    System sys(cfg);
    sys.beginRun(t.size() * 2);

    // Warm: several full ring traversals. Every PC, line, metadata
    // set, sampler set, and scratch buffer the loop will ever touch
    // is touched here.
    std::size_t warm = 100000;
    for (std::size_t i = 0; i < warm; ++i)
        sys.step(t[i]);

    // The measured window replays the same ring — L2 misses (the
    // ring exceeds L2 capacity) and prefetch issues (repeating
    // successor pattern) — plus a block of back-to-back accesses to
    // one line, the L1-hit path. See the assertions on the final
    // stats below.
    std::uint64_t before = g_heapAllocs.load();
    for (std::size_t i = warm; i < t.size(); ++i)
        sys.step(t[i]);
    trace::TraceRecord same{0x400000, 1ull << 33, 4, false, false};
    for (int i = 0; i < 64; ++i)
        sys.step(same);
    std::uint64_t during = g_heapAllocs.load() - before;

    RunStats s = sys.finish();
    EXPECT_EQ(during, 0u)
        << "warmed per-record step allocated on the "
        << (cfg.l2Pf == L2PfKind::None ? "baseline" : "prefetcher")
        << " path";

    // Prove the window exercised the paths the satellite names.
    EXPECT_GT(s.l1Accesses, s.l1Misses); // L1 hits happened
    EXPECT_GT(s.l2DemandMisses, 0u);     // L2 misses happened
    if (cfg.l2Pf != L2PfKind::None)
        EXPECT_GT(s.l2PrefetchesIssued, 0u); // prefetch-issue path
}

INSTANTIATE_TEST_SUITE_P(
    Pipelines, WarmSystemStep,
    ::testing::Values(L2PfKind::None, L2PfKind::Triage,
                      L2PfKind::Triangel, L2PfKind::Prophet),
    [](const ::testing::TestParamInfo<L2PfKind> &info) {
        switch (info.param) {
          case L2PfKind::None:
            return "none";
          case L2PfKind::Triage:
            return "triage";
          case L2PfKind::Triangel:
            return "triangel";
          case L2PfKind::Prophet:
            return "prophet";
          default:
            return "other";
        }
    });

} // anonymous namespace
} // namespace prophet::sim
