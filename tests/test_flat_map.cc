/**
 * @file
 * Unit tests for common/flat_map.hh: lookup/insert semantics, growth
 * and rehashing, erase-and-reinsert, deterministic insertion-order
 * iteration, equality, and the zero-allocations-after-reserve()
 * guarantee the simulator's record loop depends on (proved with a
 * counting allocator, so only the map's own allocations are counted).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/flat_map.hh"

namespace prophet
{
namespace
{

TEST(FlatMap, InsertFindBasics)
{
    FlatMap<std::uint64_t, int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.find(7), m.end());
    EXPECT_EQ(m.count(7), 0u);

    m[7] = 42;
    EXPECT_EQ(m.size(), 1u);
    ASSERT_NE(m.find(7), m.end());
    EXPECT_EQ(m.find(7)->second, 42);
    EXPECT_EQ(m.at(7), 42);
    EXPECT_TRUE(m.contains(7));

    // operator[] on an existing key returns the same slot.
    m[7] += 1;
    EXPECT_EQ(m.at(7), 43);

    // emplace on an existing key does not overwrite.
    auto [it, inserted] = m.emplace(7, 99);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(it->second, 43);
}

TEST(FlatMap, GrowthRehashesAndKeepsEveryEntry)
{
    FlatMap<std::uint64_t, std::uint64_t> m;
    // Push through many doublings from the default capacity.
    constexpr std::uint64_t n = 20000;
    for (std::uint64_t k = 0; k < n; ++k)
        m[k * 0x9e3779b9ull] = k;
    EXPECT_EQ(m.size(), n);
    for (std::uint64_t k = 0; k < n; ++k) {
        ASSERT_TRUE(m.contains(k * 0x9e3779b9ull)) << k;
        EXPECT_EQ(m.at(k * 0x9e3779b9ull), k);
    }
    // Absent keys stay absent after all that probing.
    EXPECT_FALSE(m.contains(123457));
}

TEST(FlatMap, DeterministicInsertionOrderIteration)
{
    FlatMap<std::uint64_t, int> m;
    const std::uint64_t keys[] = {900, 3, 512, 77, 1u << 30, 42};
    int v = 0;
    for (std::uint64_t k : keys)
        m[k] = v++;

    // Iteration yields exactly the insertion sequence — not hash
    // order — so every consumer is reproducible across platforms.
    std::vector<std::uint64_t> seen;
    for (const auto &[k, val] : m)
        seen.push_back(k);
    EXPECT_EQ(seen,
              (std::vector<std::uint64_t>{900, 3, 512, 77, 1u << 30,
                                          42}));

    // Growth must preserve the order too.
    for (std::uint64_t k = 1000000; k < 1002000; ++k)
        m[k] = 0;
    EXPECT_EQ(m.begin()->first, 900u);
    EXPECT_EQ((m.begin() + 5)->first, 42u);
}

TEST(FlatMap, EraseAndReinsert)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 100; ++k)
        m[k] = static_cast<int>(k);

    EXPECT_EQ(m.erase(50), 1u);
    EXPECT_EQ(m.erase(50), 0u); // already gone
    EXPECT_EQ(m.size(), 99u);
    EXPECT_FALSE(m.contains(50));
    // Neighbours on the probe chain must remain reachable after the
    // index rebuild.
    for (std::uint64_t k = 0; k < 100; ++k)
        if (k != 50)
            EXPECT_TRUE(m.contains(k)) << k;

    // Erase preserves the order of the survivors; a reinserted key
    // goes to the back.
    m[50] = -1;
    EXPECT_EQ(m.size(), 100u);
    EXPECT_EQ(m.at(50), -1);
    EXPECT_EQ((m.end() - 1)->first, 50u);
    EXPECT_EQ(m.begin()->first, 0u);
    EXPECT_EQ((m.begin() + 50)->first, 51u); // shifted down by one
}

TEST(FlatMap, ClearKeepsNothingButAcceptsReinsertion)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 64; ++k)
        m[k] = 1;
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_FALSE(m.contains(3));
    m[3] = 7;
    EXPECT_EQ(m.at(3), 7);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, EqualityIsOrderIndependent)
{
    FlatMap<std::uint64_t, int> a, b;
    a[1] = 10;
    a[2] = 20;
    b[2] = 20;
    b[1] = 10;
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a != b);
    b[3] = 30;
    EXPECT_TRUE(a != b);
    a[3] = 31;
    EXPECT_TRUE(a != b); // same keys, one differing value
}

/**
 * Allocator that counts allocate() calls, so the no-allocation
 * guarantee is proved against the map's own behaviour regardless of
 * what the test harness allocates around it.
 */
template <typename T>
struct CountingAllocator
{
    using value_type = T;

    std::uint64_t *counter;

    explicit CountingAllocator(std::uint64_t *c) : counter(c) {}
    template <typename U>
    CountingAllocator(const CountingAllocator<U> &o)
        : counter(o.counter)
    {}

    T *
    allocate(std::size_t n)
    {
        ++*counter;
        return std::allocator<T>().allocate(n);
    }

    void
    deallocate(T *p, std::size_t n)
    {
        std::allocator<T>().deallocate(p, n);
    }

    template <typename U>
    bool operator==(const CountingAllocator<U> &o) const
    {
        return counter == o.counter;
    }
    template <typename U>
    bool operator!=(const CountingAllocator<U> &o) const
    {
        return counter != o.counter;
    }
};

TEST(FlatMap, NoAllocationsAfterReserve)
{
    std::uint64_t allocs = 0;
    using Alloc = CountingAllocator<std::pair<std::uint64_t, int>>;
    FlatMap<std::uint64_t, int, Alloc> m{Alloc(&allocs)};

    constexpr std::size_t n = 5000;
    m.reserve(n);
    std::uint64_t after_reserve = allocs;
    EXPECT_GT(after_reserve, 0u);

    for (std::uint64_t k = 0; k < n; ++k)
        m[k * 7919] = static_cast<int>(k);
    EXPECT_EQ(m.size(), n);
    EXPECT_EQ(allocs, after_reserve)
        << "insertions within reserve() allocated";

    // Lookups, overwrites, and a capacity-keeping clear/refill cycle
    // (the warmup-boundary pattern in System::run) stay free too.
    for (std::uint64_t k = 0; k < n; ++k)
        m[k * 7919] += 1;
    m.clear();
    for (std::uint64_t k = 0; k < n; ++k)
        m[k * 7919] = 0;
    EXPECT_EQ(allocs, after_reserve)
        << "clear()+reinsert or overwrite allocated";
}

} // anonymous namespace
} // namespace prophet
