/**
 * @file
 * Unit tests for trace serialization and the Section 4.4 hint
 * encodings.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <vector>
#include <unistd.h>

#include "common/fault_injection.hh"
#include "core/hint_encoding.hh"
#include "trace/trace_io.hh"

namespace prophet
{
namespace
{

trace::Trace
sampleTrace()
{
    trace::Trace t;
    t.append(0x400100, 0x7000, 4, false, false);
    t.append(0x400104, 0x7040, 2, true, false);
    t.append(0x400108, 0x9000, 7, false, true);
    return t;
}

void
expectEqual(const trace::Trace &a, const trace::Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].pc, b[i].pc);
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(a[i].instGap, b[i].instGap);
        EXPECT_EQ(a[i].dependsOnPrev, b[i].dependsOnPrev);
        EXPECT_EQ(a[i].isWrite, b[i].isWrite);
    }
    EXPECT_EQ(a.totalInstructions(), b.totalInstructions());
}

TEST(TraceIo, BinaryRoundTrip)
{
    auto t = sampleTrace();
    const char *path = "/tmp/prophet_test_trace.bin";
    ASSERT_TRUE(trace::saveBinary(t, path));
    trace::Trace loaded;
    std::uint32_t version = 0;
    ASSERT_TRUE(trace::loadBinary(loaded, path, &version));
    EXPECT_EQ(version, trace::kTraceFormatV3);
    expectEqual(t, loaded);
    std::remove(path);
}

TEST(TraceIo, LegacyV2FilesStillLoad)
{
    auto t = sampleTrace();
    const char *path = "/tmp/prophet_test_trace_v2.bin";
    ASSERT_TRUE(trace::saveBinaryV2(t, path));
    trace::Trace loaded;
    std::uint32_t version = 0;
    ASSERT_TRUE(trace::loadBinary(loaded, path, &version));
    EXPECT_EQ(version, trace::kTraceFormatV2);
    expectEqual(t, loaded);
    std::remove(path);
}

TEST(TraceIo, BitFlipCaughtByArrayChecksum)
{
    auto t = sampleTrace();
    const char *path = "/tmp/prophet_test_bitflip.bin";
    ASSERT_TRUE(trace::saveBinary(t, path));
    // Flip one payload bit past the header + checksum block. The
    // header stays plausible, so only the checksum can catch it.
    {
        std::FILE *f = std::fopen(path, "rb+");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 16 + 24 + 3, SEEK_SET); // inside pc[]
        int c = std::fgetc(f);
        ASSERT_NE(c, EOF);
        std::fseek(f, -1, SEEK_CUR);
        std::fputc(c ^ 0x10, f);
        std::fclose(f);
    }
    trace::Trace loaded;
    trace::LoadReport report;
    EXPECT_FALSE(trace::loadBinary(loaded, path, report));
    EXPECT_EQ(report.status, trace::LoadStatus::ChecksumMismatch);
    EXPECT_TRUE(report.corrupt());
    EXPECT_EQ(report.version, trace::kTraceFormatV3);
    EXPECT_TRUE(loaded.empty());
    std::remove(path);
}

TEST(TraceIo, InjectedReadFaultReportsReadFailNotCorruption)
{
    auto t = sampleTrace();
    const char *path = "/tmp/prophet_test_readfault.bin";
    ASSERT_TRUE(trace::saveBinary(t, path));
    fault::reset();
    fault::arm("trace_io.fread", 1, 1);
    trace::Trace loaded;
    trace::LoadReport report;
    EXPECT_FALSE(trace::loadBinary(loaded, path, report));
    EXPECT_EQ(report.status, trace::LoadStatus::ReadFail);
    // An I/O error is not evidence of on-disk damage: the cache must
    // not quarantine on it.
    EXPECT_FALSE(report.corrupt());
    fault::reset();
    // The fault cleared; the same file now loads fine.
    ASSERT_TRUE(trace::loadBinary(loaded, path));
    expectEqual(t, loaded);
    std::remove(path);
}

TEST(TraceIo, InjectedWriteFaultFailsTheSave)
{
    auto t = sampleTrace();
    const char *path = "/tmp/prophet_test_writefault.bin";
    fault::reset();
    fault::arm("trace_io.fwrite", 1, 1);
    EXPECT_FALSE(trace::saveBinary(t, path));
    fault::reset();
    ASSERT_TRUE(trace::saveBinary(t, path));
    trace::Trace loaded;
    ASSERT_TRUE(trace::loadBinary(loaded, path));
    expectEqual(t, loaded);
    std::remove(path);
}

TEST(TraceIo, LegacyV1FilesStillLoad)
{
    auto t = sampleTrace();
    const char *path = "/tmp/prophet_test_trace_v1.bin";
    ASSERT_TRUE(trace::saveBinaryV1(t, path));
    trace::Trace loaded;
    std::uint32_t version = 0;
    ASSERT_TRUE(trace::loadBinary(loaded, path, &version));
    EXPECT_EQ(version, trace::kTraceFormatV1);
    expectEqual(t, loaded);
    std::remove(path);
}

TEST(TraceIo, V1WriterOutputIsDeterministic)
{
    // The v1 packed record has 4 padding bytes (2 internal via `pad`,
    // 2 trailing); both writes must produce identical bytes, or cache
    // files would differ run to run (and trip MSAN/valgrind).
    auto t = sampleTrace();
    const char *p1 = "/tmp/prophet_test_det1.bin";
    const char *p2 = "/tmp/prophet_test_det2.bin";
    ASSERT_TRUE(trace::saveBinaryV1(t, p1));
    ASSERT_TRUE(trace::saveBinaryV1(t, p2));
    auto slurp = [](const char *p) {
        std::FILE *f = std::fopen(p, "rb");
        EXPECT_NE(f, nullptr);
        std::vector<unsigned char> bytes;
        int c;
        while ((c = std::fgetc(f)) != EOF)
            bytes.push_back(static_cast<unsigned char>(c));
        std::fclose(f);
        return bytes;
    };
    auto b1 = slurp(p1), b2 = slurp(p2);
    EXPECT_FALSE(b1.empty());
    EXPECT_EQ(b1, b2);
    // 16-byte header + 24 bytes per record.
    EXPECT_EQ(b1.size(), 16u + 24u * t.size());
    std::remove(p1);
    std::remove(p2);
}

TEST(TraceIo, TruncatedV2PayloadRejected)
{
    auto t = sampleTrace();
    const char *path = "/tmp/prophet_test_trunc.bin";
    ASSERT_TRUE(trace::saveBinary(t, path));
    // Chop into the meta array: header count no longer fits.
    std::FILE *f = std::fopen(path, "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path, size - 2), 0);
    trace::Trace loaded;
    EXPECT_FALSE(trace::loadBinary(loaded, path));
    EXPECT_TRUE(loaded.empty());
    std::remove(path);
}

TEST(TraceIo, TextRoundTrip)
{
    auto t = sampleTrace();
    const char *path = "/tmp/prophet_test_trace.txt";
    ASSERT_TRUE(trace::saveText(t, path));
    trace::Trace loaded;
    ASSERT_TRUE(trace::loadText(loaded, path));
    expectEqual(t, loaded);
    std::remove(path);
}

TEST(TraceIo, LoadRejectsGarbage)
{
    const char *path = "/tmp/prophet_test_garbage.bin";
    std::FILE *f = std::fopen(path, "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a trace", f);
    std::fclose(f);
    trace::Trace loaded;
    EXPECT_FALSE(trace::loadBinary(loaded, path));
    EXPECT_TRUE(loaded.empty());
    std::remove(path);
}

TEST(TraceIo, LoadMissingFileFails)
{
    trace::Trace loaded;
    EXPECT_FALSE(trace::loadBinary(loaded, "/nonexistent/x.bin"));
}

TEST(HintEncoding, PackUnpackRoundTrip)
{
    using namespace core;
    for (unsigned allow = 0; allow <= 1; ++allow) {
        for (std::uint8_t prio = 0; prio < 4; ++prio) {
            Hint h{allow != 0, prio};
            Hint back = unpackHint(packHint(h));
            EXPECT_EQ(back.allowInsert, h.allowInsert);
            EXPECT_EQ(back.priority, h.priority);
        }
    }
}

TEST(HintEncoding, ThreeBitsSuffice)
{
    // Section 4.4: each memory instruction needs at most 3 bits.
    using namespace core;
    EXPECT_LE(packHint(Hint{true, 3}), 0x7);
}

TEST(HintEncoding, InstructionRoundTrip)
{
    using namespace core;
    HintBuffer hb(128);
    hb.install(0x400, Hint{true, 2});
    hb.install(0x404, Hint{false, 0});
    auto insts = encodeHintInstructions(hb);
    EXPECT_EQ(insts.size(), 2u);
    auto back = decodeHintInstructions(insts);
    auto h = back.lookup(0x400);
    ASSERT_TRUE(h.has_value());
    EXPECT_TRUE(h->allowInsert);
    EXPECT_EQ(h->priority, 2);
    auto h2 = back.lookup(0x404);
    ASSERT_TRUE(h2.has_value());
    EXPECT_FALSE(h2->allowInsert);
}

TEST(HintEncoding, FootprintMatchesPaperClaims)
{
    using namespace core;
    // Hint instructions: 128 once-executed instructions, ~0.19 KB
    // buffer.
    auto fi = footprintOf(HintEncoding::HintInstructions, 128);
    EXPECT_EQ(fi.staticInstructions, 128u);
    EXPECT_EQ(fi.dynamicInstructions, 128u);
    EXPECT_NEAR(static_cast<double>(fi.bufferBits) / 8.0 / 1024.0,
                0.19, 0.15);

    // Prefix scheme: no instructions, 3*128/64 = 6 bytes of I-cache
    // footprint (Section 4.4), no buffer.
    auto fp = footprintOf(HintEncoding::InstructionPrefix, 128);
    EXPECT_EQ(fp.staticInstructions, 0u);
    EXPECT_EQ(fp.codeBytes, 6u);
    EXPECT_EQ(fp.bufferBits, 0u);
}

} // anonymous namespace
} // namespace prophet
