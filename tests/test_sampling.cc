/**
 * @file
 * Sampled fast-mode execution: determinism, the degenerate
 * full-coverage schedule's bit-identity with the exact run, window
 * scheduler edge cases (window > trace, zero interval, last partial
 * window, schedule past the trace), and scaling sanity.
 */

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "workloads/pattern_lib.hh"

namespace prophet::sim
{
namespace
{

trace::Trace
chaseTrace(std::size_t nodes, std::size_t records)
{
    workloads::StreamParams p;
    p.pc = 0x400000;
    p.regionBase = 1ull << 33;
    p.instGap = 4;
    p.seed = 3;
    workloads::ChaseStream s(p, nodes, 0.0);
    trace::Trace t;
    for (std::size_t i = 0; i < records; ++i)
        s.emit(t);
    return t;
}

SystemConfig
baseCfg()
{
    SystemConfig cfg = SystemConfig::table1();
    cfg.warmupRecords = 20000;
    // A temporal prefetcher exercises the warm path's training,
    // usefulness feedback, and partition sync.
    cfg.l2Pf = L2PfKind::Triangel;
    return cfg;
}

/** Field-by-field equality, pcMisses compared as a set of pairs. */
void
expectStatsEqual(const RunStats &a, const RunStats &b)
{
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.records, b.records);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l2DemandAccesses, b.l2DemandAccesses);
    EXPECT_EQ(a.l2DemandMisses, b.l2DemandMisses);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.l2PrefetchesIssued, b.l2PrefetchesIssued);
    EXPECT_EQ(a.l2PrefetchesUseful, b.l2PrefetchesUseful);
    EXPECT_EQ(a.latePrefetches, b.latePrefetches);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    EXPECT_EQ(a.dramPrefetchReads, b.dramPrefetchReads);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.llcAccesses, b.llcAccesses);
    EXPECT_EQ(a.markov.lookups, b.markov.lookups);
    EXPECT_EQ(a.markov.hits, b.markov.hits);
    EXPECT_EQ(a.markov.inserts, b.markov.inserts);
    EXPECT_EQ(a.markov.replacements, b.markov.replacements);
    EXPECT_EQ(a.offchipMeta.metadataReads, b.offchipMeta.metadataReads);
    EXPECT_EQ(a.offchipMeta.metadataWrites,
              b.offchipMeta.metadataWrites);
    EXPECT_EQ(a.finalMetadataWays, b.finalMetadataWays);
    ASSERT_EQ(a.pcMisses.size(), b.pcMisses.size());
    for (const auto &[pc, count] : a.pcMisses) {
        auto it = b.pcMisses.find(pc);
        ASSERT_NE(it, b.pcMisses.end());
        EXPECT_EQ(count, it->second);
    }
}

TEST(Sampling, SameScheduleTwiceIsDeterministic)
{
    auto t = chaseTrace(30000, 200000);
    SystemConfig cfg = baseCfg();
    cfg.sampling.enabled = true;
    cfg.sampling.warmupRecords = 5000;
    cfg.sampling.windowRecords = 4000;
    cfg.sampling.intervalRecords = 40000;

    System a(cfg), b(cfg);
    auto sa = a.run(t);
    auto sb = b.run(t);
    EXPECT_TRUE(sa.sampled);
    EXPECT_EQ(sa.sampledRecords, sb.sampledRecords);
    EXPECT_EQ(sa.sampleScale, sb.sampleScale);
    expectStatsEqual(sa, sb);
}

TEST(Sampling, FullCoverageScheduleIsBitIdenticalToFullRun)
{
    // One window spanning everything past the full run's statistics
    // warmup boundary, warmed over the entire prefix: the sampled
    // run steps every record exactly like the full run and its scale
    // is exactly 1, so every statistic must match bit for bit.
    const std::size_t n = 200000;
    auto t = chaseTrace(30000, n);
    SystemConfig cfg = baseCfg();
    const std::size_t boundary = std::min(cfg.warmupRecords, n / 2);

    System full(cfg);
    auto sf = full.run(t);

    cfg.sampling.enabled = true;
    cfg.sampling.warmupRecords = n;
    cfg.sampling.windowRecords = n - boundary;
    cfg.sampling.intervalRecords = n;
    cfg.sampling.offset = 0;
    System sampled(cfg);
    auto ss = sampled.run(t);

    EXPECT_TRUE(ss.sampled);
    EXPECT_FALSE(sf.sampled);
    EXPECT_EQ(ss.sampledRecords, n - boundary);
    EXPECT_EQ(ss.sampleScale, 1.0);
    expectStatsEqual(sf, ss);
}

TEST(Sampling, WindowLargerThanTraceCoversWholeTrace)
{
    // Schedule far wider than the trace: the single (clipped) window
    // starts at 0 and covers every record.
    const std::size_t n = 10000;
    auto t = chaseTrace(3000, n);
    SystemConfig cfg = baseCfg();
    cfg.sampling.enabled = true;
    cfg.sampling.warmupRecords = 0;
    cfg.sampling.windowRecords = 50000;
    cfg.sampling.intervalRecords = 50000;
    System sys(cfg);
    auto s = sys.run(t);
    EXPECT_TRUE(s.sampled);
    EXPECT_EQ(s.sampledRecords, n);
    EXPECT_EQ(s.records, n);
}

TEST(Sampling, ZeroIntervalClampsToBackToBackWindows)
{
    // A direct System user passing interval 0 (the spec parser
    // rejects it) gets interval = window: wall-to-wall windows, full
    // coverage, never a division by zero or an empty schedule.
    const std::size_t n = 20000;
    auto t = chaseTrace(3000, n);
    SystemConfig cfg = baseCfg();
    cfg.sampling.enabled = true;
    cfg.sampling.warmupRecords = 0;
    cfg.sampling.windowRecords = 1000;
    cfg.sampling.intervalRecords = 0;
    System sys(cfg);
    auto s = sys.run(t);
    EXPECT_TRUE(s.sampled);
    EXPECT_EQ(s.sampledRecords, n);
}

TEST(Sampling, LastPartialWindowIsClippedAtTraceEnd)
{
    // 48000 records, interval 25000, window 8000: window 0 is
    // [17000, 25000), window 1 is scheduled [42000, 50000) and clips
    // to [42000, 48000) — 8000 + 6000 detailed records.
    const std::size_t n = 48000;
    auto t = chaseTrace(3000, n);
    SystemConfig cfg = baseCfg();
    cfg.sampling.enabled = true;
    cfg.sampling.warmupRecords = 2000;
    cfg.sampling.windowRecords = 8000;
    cfg.sampling.intervalRecords = 25000;
    System sys(cfg);
    auto s = sys.run(t);
    EXPECT_TRUE(s.sampled);
    EXPECT_EQ(s.sampledRecords, 14000u);
    EXPECT_EQ(s.records, n);
}

TEST(Sampling, ScheduleBeyondTraceFallsBackToFullRun)
{
    // No window fits (offset past the trace): the run falls back to
    // the exact full loop and reports unsampled statistics.
    const std::size_t n = 30000;
    auto t = chaseTrace(3000, n);
    SystemConfig cfg = baseCfg();

    System full(cfg);
    auto sf = full.run(t);

    cfg.sampling.enabled = true;
    cfg.sampling.offset = 1000000;
    System sampled(cfg);
    auto ss = sampled.run(t);

    EXPECT_FALSE(ss.sampled);
    expectStatsEqual(sf, ss);
}

TEST(Sampling, SparseScheduleScalesToFullTraceEstimates)
{
    // A genuinely sparse schedule: detailed records are a small
    // fraction, the scale is > 1, and the scaled estimates land in
    // the same ballpark as the exact run (loose 25% bands — this is
    // a sanity check, tools/sampling_error.py measures real error).
    // Uniform-random accesses over a region far beyond the LLC:
    // the miss rate is a history-free steady state sampling can
    // estimate — not an LRU scan transient, which by design it
    // cannot.
    const std::size_t n = 400000;
    workloads::StreamParams p;
    p.pc = 0x400000;
    p.regionBase = 1ull << 33;
    p.instGap = 4;
    p.seed = 3;
    workloads::NoiseStream stream(p, 200000);
    trace::Trace t;
    for (std::size_t i = 0; i < n; ++i)
        stream.emit(t);
    SystemConfig cfg = SystemConfig::table1();
    cfg.warmupRecords = 20000;

    System full(cfg);
    auto sf = full.run(t);

    cfg.sampling.enabled = true;
    cfg.sampling.warmupRecords = 10000;
    cfg.sampling.windowRecords = 5000;
    cfg.sampling.intervalRecords = 50000;
    System sampled(cfg);
    auto ss = sampled.run(t);

    EXPECT_TRUE(ss.sampled);
    EXPECT_LT(ss.sampledRecords, n / 8);
    EXPECT_GT(ss.sampleScale, 1.0);
    EXPECT_EQ(ss.records, sf.records);
    EXPECT_NEAR(ss.ipc, sf.ipc, sf.ipc * 0.25);
    EXPECT_NEAR(static_cast<double>(ss.llcMisses),
                static_cast<double>(sf.llcMisses),
                static_cast<double>(sf.llcMisses) * 0.25);
    EXPECT_NEAR(static_cast<double>(ss.dramReads),
                static_cast<double>(sf.dramReads),
                static_cast<double>(sf.dramReads) * 0.25);
}

} // anonymous namespace
} // namespace prophet::sim
