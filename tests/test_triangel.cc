/**
 * @file
 * Unit tests for Triangel: PatternConf training on repeating vs
 * erratic streams, insertion filtering (the Figure 1 behaviour the
 * paper critiques), ReuseConf, and dueller-driven resizing.
 */

#include <gtest/gtest.h>

#include "prefetch/triangel.hh"

namespace prophet::pf
{
namespace
{

TriangelConfig
tinyConfig()
{
    TriangelConfig cfg;
    cfg.degree = 2;
    cfg.numSets = 64;
    cfg.maxWays = 2;
    cfg.duellerResizing = false;
    cfg.reuseSampleRate = 1; // sample every address in tests
    return cfg;
}

void
observe(TriangelPrefetcher &pf, PC pc, Addr line,
        std::vector<PrefetchRequest> *out = nullptr)
{
    std::vector<PrefetchRequest> local;
    pf.observe(pc, line, false, 0, out ? *out : local);
}

void
runRing(TriangelPrefetcher &pf, PC pc, Addr base, unsigned n,
        unsigned rounds)
{
    for (unsigned r = 0; r < rounds; ++r)
        for (unsigned i = 0; i < n; ++i)
            observe(pf, pc, base + i);
}

TEST(Triangel, PatternConfRisesOnRepeatingStream)
{
    TriangelPrefetcher pf(tinyConfig());
    runRing(pf, 1, 1000, 16, 6);
    EXPECT_GT(pf.patternConf(1), 8);
}

TEST(Triangel, PatternConfFallsOnErraticStream)
{
    TriangelPrefetcher pf(tinyConfig());
    // Figure 1's red dots: successors never repeat. Revisit the
    // same keys with fresh successors each round.
    Addr fresh = 100000;
    for (int round = 0; round < 8; ++round) {
        for (Addr key = 5000; key < 5016; ++key) {
            observe(pf, 1, key);
            observe(pf, 1, fresh++);
        }
    }
    EXPECT_LT(pf.patternConf(1), 8);
}

TEST(Triangel, LowPatternConfBlocksInsertionAndPrefetch)
{
    TriangelPrefetcher pf(tinyConfig());
    Addr fresh = 200000;
    for (int round = 0; round < 10; ++round) {
        for (Addr key = 6000; key < 6016; ++key) {
            observe(pf, 2, key);
            observe(pf, 2, fresh++);
        }
    }
    ASSERT_LT(pf.patternConf(2), 8);
    auto inserts_before = pf.markovTable().stats().inserts;
    auto lookups_before = pf.markovTable().stats().lookups;
    observe(pf, 2, 6000);
    observe(pf, 2, 6001);
    EXPECT_EQ(pf.markovTable().stats().inserts, inserts_before);
    EXPECT_EQ(pf.markovTable().stats().lookups, lookups_before);
}

TEST(Triangel, Figure1FalseNegative)
{
    // The paper's core critique: after a burst of useless accesses
    // drives PatternConf to the floor, genuinely repeating accesses
    // from the same PC are wrongly rejected.
    TriangelPrefetcher pf(tinyConfig());
    Addr fresh = 300000;
    for (int round = 0; round < 12; ++round) {
        for (Addr key = 7000; key < 7024; ++key) {
            observe(pf, 3, key);
            observe(pf, 3, fresh++);
        }
    }
    ASSERT_LT(pf.patternConf(3), 8);

    // Now a perfectly repeating ring from the same PC: the first
    // traversals are not inserted (the blue stars of Figure 1).
    auto inserts_before = pf.markovTable().stats().inserts;
    runRing(pf, 3, 8000, 16, 1);
    EXPECT_EQ(pf.markovTable().stats().inserts, inserts_before);
}

TEST(Triangel, RepeatingStreamGetsPrefetches)
{
    TriangelPrefetcher pf(tinyConfig());
    runRing(pf, 1, 1000, 16, 6);
    std::vector<PrefetchRequest> out;
    observe(pf, 1, 1000, &out);
    EXPECT_FALSE(out.empty());
    EXPECT_EQ(out[0].lineAddr, 1001u);
}

TEST(Triangel, InsertionFilterCanBeDisabled)
{
    TriangelConfig cfg = tinyConfig();
    cfg.insertionFilter = false;
    TriangelPrefetcher pf(cfg);
    Addr fresh = 400000;
    auto before = pf.markovTable().stats().inserts;
    for (int i = 0; i < 50; ++i)
        observe(pf, 4, fresh++);
    EXPECT_GT(pf.markovTable().stats().inserts, before + 40);
}

TEST(Triangel, ReuseConfDropsWhenWorkingSetExceedsTable)
{
    TriangelConfig cfg = tinyConfig();
    // Tiny table: 64 sets x 2 ways x 12 = 1536 entries.
    TriangelPrefetcher pf(cfg);
    // Ring of 40,000 lines: reuse distance far beyond capacity.
    for (int round = 0; round < 3; ++round)
        for (Addr a = 0; a < 40000; ++a)
            observe(pf, 5, 500000 + a);
    EXPECT_LT(pf.reuseConf(5), 8);
}

TEST(Triangel, ReuseConfStaysHighForSmallRing)
{
    TriangelPrefetcher pf(tinyConfig());
    runRing(pf, 6, 9000, 32, 8);
    EXPECT_GE(pf.reuseConf(6), 8);
}

TEST(Triangel, DuellerResizingAdjustsWays)
{
    TriangelConfig cfg = tinyConfig();
    cfg.duellerResizing = true;
    cfg.duellerWindow = 1 << 12;
    TriangelPrefetcher pf(cfg);
    unsigned initial = pf.metadataWays();
    // Metadata-friendly traffic: repeating ring far larger than the
    // demand working set.
    runRing(pf, 7, 10000, 512, 40);
    // The dueller ran at least once and settled on some partition.
    EXPECT_LE(pf.metadataWays(), cfg.maxWays);
    (void)initial;
}

} // anonymous namespace
} // namespace prophet::pf
