/**
 * @file
 * Unit tests for Triangel's Set Dueller (stack-distance-based
 * partition recommendation).
 */

#include <gtest/gtest.h>

#include "prefetch/set_dueller.hh"

namespace prophet::pf
{
namespace
{

TEST(SetDueller, NoRecommendationBeforeWindow)
{
    SetDueller d(64, 16, 8, 1, 1000);
    for (int i = 0; i < 100; ++i)
        d.observeLlcAccess(static_cast<Addr>(i));
    EXPECT_FALSE(d.poll().has_value());
}

TEST(SetDueller, RecommendsZeroWhenMetadataUseless)
{
    // All reuse lives in the LLC stacks; metadata accesses never
    // repeat, so borrowing ways can only lose LLC hits.
    SetDueller d(64, 16, 8, 1, 4000);
    std::optional<unsigned> rec;
    Addr md_key = 1'000'000;
    for (int round = 0; !rec && round < 10; ++round) {
        for (Addr a = 0; a < 256; ++a) {
            d.observeLlcAccess(a); // tight LLC working set, reused
            d.observeMetadataAccess(md_key++); // never reused
            rec = d.poll();
            if (rec)
                break;
        }
    }
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(*rec, 0u);
}

TEST(SetDueller, RecommendsWaysWhenMetadataReused)
{
    // Metadata keys are heavily reused while demand lines stream;
    // the dueller should hand ways to the metadata table.
    SetDueller d(64, 16, 8, 1, 4000);
    std::optional<unsigned> rec;
    Addr demand = 0;
    for (int round = 0; !rec && round < 20; ++round) {
        for (int i = 0; i < 512; ++i) {
            d.observeLlcAccess(demand);
            demand += 64; // streaming: no LLC reuse
            d.observeMetadataAccess(
                static_cast<Addr>(i % 24)); // tight reuse
            rec = d.poll();
            if (rec)
                break;
        }
    }
    ASSERT_TRUE(rec.has_value());
    EXPECT_GT(*rec, 0u);
}

TEST(SetDueller, WindowResetsHistograms)
{
    SetDueller d(64, 16, 8, 1, 100);
    // First window: metadata-heavy.
    for (int i = 0; i < 100; ++i)
        d.observeMetadataAccess(static_cast<Addr>(i % 8));
    auto first = d.poll();
    ASSERT_TRUE(first.has_value());
    // Second window: demand-only reuse; old metadata evidence must
    // not leak in.
    std::optional<unsigned> second;
    for (int round = 0; !second && round < 5; ++round) {
        for (int i = 0; i < 100; ++i) {
            d.observeLlcAccess(static_cast<Addr>(i % 8));
            second = d.poll();
            if (second)
                break;
        }
    }
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(*second, 0u);
}

TEST(SetDueller, StorageWithinBudget)
{
    // The paper quotes ~2 KB for the Set Dueller (Section 2.1.3);
    // with a 1/64 sampling rate ours stays in that ballpark.
    SetDueller d(2048, 16, 8, 64, 1 << 18);
    EXPECT_LT(d.storageBits() / 8 / 1024, 16u);
}

} // anonymous namespace
} // namespace prophet::pf
