/**
 * @file
 * Tests for the span-trace collector: the emitted document is
 * well-formed Chrome trace_event JSON, nested spans stay contained
 * in their parents, thread ids are stable within a thread and
 * distinct across threads, and a disabled collector records nothing.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <set>
#include <thread>

#include "common/span_trace.hh"
#include "driver/json.hh"

namespace prophet
{
namespace
{

using driver::json::Value;

/** Parse toJson() and return the traceEvents array. */
Value
parsedEvents()
{
    Value doc;
    std::string err;
    EXPECT_TRUE(driver::json::parse(span::toJson(), doc, &err))
        << err;
    const Value *events = doc.find("traceEvents");
    EXPECT_NE(events, nullptr);
    EXPECT_TRUE(events->isArray());
    return *events;
}

/** The "X" (complete) events of @p events, in document order. */
std::vector<const Value *>
completeEvents(const Value &events)
{
    std::vector<const Value *> out;
    for (const auto &e : events.asArray())
        if (e.find("ph") && e.find("ph")->asString() == "X")
            out.push_back(&e);
    return out;
}

class SpanTraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        span::reset();
        span::setEnabled(true);
    }

    void
    TearDown() override
    {
        span::setEnabled(false);
        span::reset();
    }
};

TEST_F(SpanTraceTest, DisabledCollectorRecordsNothing)
{
    span::setEnabled(false);
    {
        span::Span s("ignored");
    }
    EXPECT_EQ(span::eventCount(), 0u);
    // The document is still valid JSON with an empty event list
    // (modulo thread-name metadata).
    Value events = parsedEvents();
    EXPECT_TRUE(completeEvents(events).empty());
}

TEST_F(SpanTraceTest, NestedSpansAreContained)
{
    {
        span::Span outer("outer");
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        {
            span::Span inner("inner", "detail");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(span::eventCount(), 2u);

    Value events = parsedEvents();
    auto xs = completeEvents(events);
    ASSERT_EQ(xs.size(), 2u);
    // Deterministic order sorts parents before children.
    const Value *outer = xs[0], *inner = xs[1];
    EXPECT_EQ(outer->find("name")->asString(), "outer");
    EXPECT_EQ(inner->find("name")->asString(), "inner");
    EXPECT_EQ(inner->find("cat")->asString(), "detail");

    double ots = outer->find("ts")->asNumber();
    double odur = outer->find("dur")->asNumber();
    double its = inner->find("ts")->asNumber();
    double idur = inner->find("dur")->asNumber();
    EXPECT_LE(ots, its);
    EXPECT_GE(ots + odur, its + idur);
    EXPECT_EQ(outer->find("tid")->asNumber(),
              inner->find("tid")->asNumber());
    EXPECT_EQ(outer->find("ph")->asString(), "X");
}

TEST_F(SpanTraceTest, TidStableWithinAThreadDistinctAcross)
{
    std::uint32_t here1 = span::currentTid();
    std::uint32_t here2 = span::currentTid();
    EXPECT_EQ(here1, here2);

    std::uint32_t there = 0;
    std::thread([&there] { there = span::currentTid(); }).join();
    EXPECT_NE(here1, there);

    {
        span::Span a("main-span");
    }
    std::thread([] { span::Span b("worker-span"); }).join();

    Value events = parsedEvents();
    auto xs = completeEvents(events);
    ASSERT_EQ(xs.size(), 2u);
    std::set<double> tids;
    for (const auto *e : xs)
        tids.insert(e->find("tid")->asNumber());
    EXPECT_EQ(tids.size(), 2u);
}

TEST_F(SpanTraceTest, ThreadNameMetadataEventEmitted)
{
    std::thread([] {
        span::setCurrentThreadName("test-worker-7");
        span::Span s("named-thread-span");
    }).join();

    Value events = parsedEvents();
    bool found = false;
    for (const auto &e : events.asArray()) {
        if (e.find("ph")->asString() != "M")
            continue;
        EXPECT_EQ(e.find("name")->asString(), "thread_name");
        const Value *args = e.find("args");
        ASSERT_NE(args, nullptr);
        if (args->find("name")->asString() == "test-worker-7")
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST_F(SpanTraceTest, WriteJsonRoundTrips)
{
    {
        span::Span s("to-disk \"quoted\\name\"");
    }
    std::string path = ::testing::TempDir() + "span_trace_test.json";
    ASSERT_TRUE(span::writeJson(path));

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());

    Value doc;
    std::string err;
    ASSERT_TRUE(driver::json::parse(text, doc, &err)) << err;
    EXPECT_EQ(doc.find("displayTimeUnit")->asString(), "ms");
    auto xs = completeEvents(*doc.find("traceEvents"));
    ASSERT_EQ(xs.size(), 1u);
    // The escaped name survives the round trip.
    EXPECT_EQ(xs[0]->find("name")->asString(),
              "to-disk \"quoted\\name\"");
}

TEST_F(SpanTraceTest, ResetDropsEventsKeepsNames)
{
    span::setCurrentThreadName("kept-name");
    {
        span::Span s("dropped");
    }
    EXPECT_EQ(span::eventCount(), 1u);
    span::reset();
    EXPECT_EQ(span::eventCount(), 0u);

    Value events = parsedEvents();
    EXPECT_TRUE(completeEvents(events).empty());
    bool name_kept = false;
    for (const auto &e : events.asArray())
        if (e.find("ph")->asString() == "M"
            && e.find("args")->find("name")->asString() == "kept-name")
            name_kept = true;
    EXPECT_TRUE(name_kept);
}

} // anonymous namespace
} // namespace prophet
