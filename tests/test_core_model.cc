/**
 * @file
 * Unit tests for the analytic core timing model: issue width, MLP
 * overlap of independent misses, serialization of dependent loads
 * (pointer chasing), ROB-full stalls, and IPC windows.
 */

#include <gtest/gtest.h>

#include "sim/core_model.hh"

namespace prophet::sim
{
namespace
{

TEST(CoreModel, IssueWidthPacesInstructions)
{
    CoreModel core(CoreParams{5.0, 288});
    // 9 gap instructions + 1 access = 10 instructions = 2 cycles.
    Cycle t = core.beginAccess(9, false);
    EXPECT_EQ(t, 2u);
    core.completeAccess(t + 2); // L1 hit
    EXPECT_EQ(core.retiredInstructions(), 10u);
}

TEST(CoreModel, IndependentMissesOverlap)
{
    // Two independent 200-cycle misses issued back to back finish
    // ~1 gap apart, not 200 apart (memory-level parallelism).
    CoreModel core(CoreParams{1.0, 512});
    Cycle t1 = core.beginAccess(0, false);
    core.completeAccess(t1 + 200);
    Cycle t2 = core.beginAccess(0, false);
    core.completeAccess(t2 + 200);
    EXPECT_LE(t2, t1 + 2);
    EXPECT_LE(core.finalCycles(), t1 + 205);
}

TEST(CoreModel, DependentLoadsSerialize)
{
    // Pointer chasing: the second load cannot issue before the
    // first one's data returns.
    CoreModel core(CoreParams{1.0, 512});
    Cycle t1 = core.beginAccess(0, false);
    core.completeAccess(t1 + 200);
    Cycle t2 = core.beginAccess(0, true);
    EXPECT_GE(t2, t1 + 200);
    core.completeAccess(t2 + 200);
    EXPECT_GE(core.finalCycles(), 400u);
}

TEST(CoreModel, RobBoundsRunahead)
{
    // With a 16-entry ROB, issue cannot run hundreds of
    // instructions past an outstanding miss.
    CoreModel core(CoreParams{1.0, 16});
    Cycle t1 = core.beginAccess(0, false);
    core.completeAccess(t1 + 1000);
    // Issue 10 more independent accesses of 15 instructions each:
    // they exceed the ROB and must wait for the miss to retire.
    Cycle last = 0;
    for (int i = 0; i < 10; ++i) {
        last = core.beginAccess(14, false);
        core.completeAccess(last + 1);
    }
    EXPECT_GE(last, 1000u);
}

TEST(CoreModel, LargeRobHidesLatency)
{
    CoreModel big(CoreParams{1.0, 4096});
    CoreModel small(CoreParams{1.0, 16});
    for (int i = 0; i < 50; ++i) {
        Cycle tb = big.beginAccess(4, false);
        big.completeAccess(tb + 300);
        Cycle ts = small.beginAccess(4, false);
        small.completeAccess(ts + 300);
    }
    EXPECT_LT(big.finalCycles(), small.finalCycles());
}

TEST(CoreModel, IpcComputation)
{
    CoreModel core(CoreParams{2.0, 288});
    for (int i = 0; i < 100; ++i) {
        Cycle t = core.beginAccess(9, false);
        core.completeAccess(t + 1);
    }
    // 1000 instructions at width 2 => ~500 cycles => IPC ~2.
    EXPECT_NEAR(core.ipc(), 2.0, 0.1);
}

TEST(CoreModel, MarkWindowsIpc)
{
    CoreModel core(CoreParams{1.0, 512});
    // Slow warmup phase.
    for (int i = 0; i < 20; ++i) {
        Cycle t = core.beginAccess(0, true);
        core.completeAccess(t + 500);
    }
    core.mark();
    // Fast measured phase.
    for (int i = 0; i < 200; ++i) {
        Cycle t = core.beginAccess(0, false);
        core.completeAccess(t + 1);
    }
    EXPECT_GT(core.ipcSinceMark(), core.ipc());
    EXPECT_NEAR(core.ipcSinceMark(), 1.0, 0.2);
}

TEST(CoreModel, PrefetchingShortensChaseAnalytically)
{
    // The whole point of the paper in one test: a dependent chain of
    // misses at 200 cycles vs the same chain hit in the L2 at 11.
    auto run_chain = [](Cycle latency) {
        CoreModel core(CoreParams{5.0, 288});
        for (int i = 0; i < 100; ++i) {
            Cycle t = core.beginAccess(3, true);
            core.completeAccess(t + latency);
        }
        return core.finalCycles();
    };
    Cycle unprefetched = run_chain(200);
    Cycle prefetched = run_chain(11);
    EXPECT_GT(unprefetched, prefetched * 10);
}

} // anonymous namespace
} // namespace prophet::sim
