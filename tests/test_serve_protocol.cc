/**
 * @file
 * Frame-decoder hardening for the serve wire protocol: clean
 * round-trips, every truncation/corruption class, the
 * cap-before-allocate invariant on hostile length prefixes, a
 * seeded bit-flip corpus, and the serve.frame_read/write fault
 * sites. The decoder's contract is simple — it never crashes, never
 * hangs past its deadline, and classifies everything.
 */

#include <cstring>
#include <random>
#include <string>
#include <thread>

#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/fault_injection.hh"
#include "serve/protocol.hh"

namespace prophet::serve
{
namespace
{

/** A connected AF_UNIX socket pair, closed on scope exit. */
struct Pair
{
    int a = -1, b = -1;

    Pair()
    {
        int fds[2];
        EXPECT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds));
        a = fds[0];
        b = fds[1];
    }

    ~Pair()
    {
        if (a >= 0)
            ::close(a);
        if (b >= 0)
            ::close(b);
    }

    void
    closeA()
    {
        ::close(a);
        a = -1;
    }
};

/** Raw bytes of one well-formed frame around @p payload. */
std::string
rawFrame(const std::string &payload)
{
    const std::uint32_t len =
        static_cast<std::uint32_t>(payload.size());
    std::string buf;
    buf.push_back(static_cast<char>(kFrameMagic & 0xff));
    buf.push_back(static_cast<char>((kFrameMagic >> 8) & 0xff));
    buf.push_back(static_cast<char>((kFrameMagic >> 16) & 0xff));
    buf.push_back(static_cast<char>((kFrameMagic >> 24) & 0xff));
    buf.push_back(static_cast<char>(len & 0xff));
    buf.push_back(static_cast<char>((len >> 8) & 0xff));
    buf.push_back(static_cast<char>((len >> 16) & 0xff));
    buf.push_back(static_cast<char>((len >> 24) & 0xff));
    buf += payload;
    return buf;
}

TEST(ServeProtocol, RoundTripsPayloads)
{
    fault::reset();
    for (const std::string &payload :
         {std::string{}, std::string{"{\"type\":\"ping\"}"},
          std::string(100'000, 'x')}) {
        Pair p;
        ASSERT_TRUE(writeFrame(p.a, payload, 1000));
        ReadOutcome out =
            readFrame(p.b, kDefaultMaxFrameBytes, 1000);
        ASSERT_EQ(out.kind, ReadOutcome::Kind::Frame);
        EXPECT_EQ(out.payload, payload);
    }
}

TEST(ServeProtocol, CleanCloseBeforeHeaderIsEof)
{
    fault::reset();
    Pair p;
    p.closeA();
    ReadOutcome out = readFrame(p.b, kDefaultMaxFrameBytes, 1000);
    EXPECT_EQ(out.kind, ReadOutcome::Kind::Eof);
}

TEST(ServeProtocol, BadMagicIsMalformed)
{
    fault::reset();
    Pair p;
    std::string buf = rawFrame("{}");
    buf[0] = 'X';
    ASSERT_GT(::write(p.a, buf.data(), buf.size()), 0);
    ReadOutcome out = readFrame(p.b, kDefaultMaxFrameBytes, 1000);
    EXPECT_EQ(out.kind, ReadOutcome::Kind::Malformed);
    EXPECT_NE(out.error.find("magic"), std::string::npos);
}

TEST(ServeProtocol, OversizeLengthRejectedBeforeAllocation)
{
    fault::reset();
    Pair p;
    // A hostile header advertising ~4 GiB. The decoder must refuse
    // on the 8 header bytes alone — the later payload-allocation
    // would OOM-risk the daemon on a single corrupt frame.
    unsigned char hdr[8] = {
        static_cast<unsigned char>(kFrameMagic & 0xff),
        static_cast<unsigned char>((kFrameMagic >> 8) & 0xff),
        static_cast<unsigned char>((kFrameMagic >> 16) & 0xff),
        static_cast<unsigned char>((kFrameMagic >> 24) & 0xff),
        0xf0, 0xff, 0xff, 0xff,
    };
    ASSERT_EQ(::write(p.a, hdr, sizeof(hdr)),
              static_cast<ssize_t>(sizeof(hdr)));

    // Max-RSS delta check: classifying the frame must not have
    // allocated anything near the advertised length.
    struct rusage before;
    getrusage(RUSAGE_SELF, &before);
    ReadOutcome out = readFrame(p.b, 1 << 20, 1000);
    struct rusage after;
    getrusage(RUSAGE_SELF, &after);
    EXPECT_EQ(out.kind, ReadOutcome::Kind::Malformed);
    EXPECT_NE(out.error.find("cap"), std::string::npos);
    EXPECT_LT(after.ru_maxrss - before.ru_maxrss,
              512L * 1024); // KiB on Linux: < 512 MiB growth
}

TEST(ServeProtocol, TruncatedHeaderIsMalformed)
{
    fault::reset();
    Pair p;
    const char partial[3] = {'P', 'F', 'R'};
    ASSERT_EQ(::write(p.a, partial, sizeof(partial)),
              static_cast<ssize_t>(sizeof(partial)));
    p.closeA();
    ReadOutcome out = readFrame(p.b, kDefaultMaxFrameBytes, 1000);
    EXPECT_EQ(out.kind, ReadOutcome::Kind::Malformed);
    EXPECT_NE(out.error.find("header"), std::string::npos);
}

TEST(ServeProtocol, TruncatedPayloadIsMalformed)
{
    fault::reset();
    Pair p;
    std::string buf = rawFrame("{\"type\":\"ping\"}");
    buf.resize(buf.size() - 4); // drop the payload tail
    ASSERT_GT(::write(p.a, buf.data(), buf.size()), 0);
    p.closeA();
    ReadOutcome out = readFrame(p.b, kDefaultMaxFrameBytes, 1000);
    EXPECT_EQ(out.kind, ReadOutcome::Kind::Malformed);
    EXPECT_NE(out.error.find("payload"), std::string::npos);
}

TEST(ServeProtocol, StalledPeerTimesOut)
{
    fault::reset();
    Pair p;
    // Header promises 64 bytes; none arrive. The deadline, not the
    // peer, decides when the worker gets its thread back.
    std::string buf = rawFrame(std::string(64, 'y'));
    buf.resize(8);
    ASSERT_EQ(::write(p.a, buf.data(), buf.size()),
              static_cast<ssize_t>(buf.size()));
    ReadOutcome out = readFrame(p.b, kDefaultMaxFrameBytes, 50);
    EXPECT_EQ(out.kind, ReadOutcome::Kind::Timeout);
}

TEST(ServeProtocol, WriteToClosedPeerFailsWithoutSignal)
{
    fault::reset();
    Pair p;
    p.closeA();
    // Large enough to overrun the socket buffer and hit the dead
    // peer; MSG_NOSIGNAL turns the SIGPIPE into a clean false.
    EXPECT_FALSE(writeFrame(p.b, std::string(1 << 20, 'z'), 200));
}

TEST(ServeProtocol, FrameReadFaultSiteFires)
{
    fault::reset();
    fault::arm("serve.frame_read", 1, 1);
    Pair p;
    ASSERT_TRUE(writeFrame(p.a, "{}", 1000));
    ReadOutcome out = readFrame(p.b, kDefaultMaxFrameBytes, 1000);
    EXPECT_EQ(out.kind, ReadOutcome::Kind::IoError);
    // The frame is still in the buffer: the next read succeeds, the
    // contract a daemon restart path relies on.
    out = readFrame(p.b, kDefaultMaxFrameBytes, 1000);
    EXPECT_EQ(out.kind, ReadOutcome::Kind::Frame);
    fault::reset();
}

TEST(ServeProtocol, FrameWriteFaultSiteFires)
{
    fault::reset();
    fault::arm("serve.frame_write", 1, 1);
    Pair p;
    EXPECT_FALSE(writeFrame(p.a, "{}", 1000));
    EXPECT_TRUE(writeFrame(p.a, "{}", 1000));
    fault::reset();
}

TEST(ServeProtocol, SeededBitFlipCorpusNeverCrashesOrHangs)
{
    fault::reset();
    // Deterministic corpus: one random bit of a valid frame flipped
    // per iteration. Every outcome class is legal — payload-bit
    // flips still frame correctly, header flips classify — but the
    // decoder must return within its deadline, never crash, and
    // never report a Frame with the wrong byte count.
    const std::string payload =
        "{\"type\":\"run\",\"spec_text\":\"{\\\"workloads\\\":"
        "[\\\"mcf\\\"]}\"}";
    const std::string base = rawFrame(payload);
    std::mt19937_64 rng(0xC0FFEE);
    std::uniform_int_distribution<std::size_t> pick_bit(
        0, base.size() * 8 - 1);
    for (int iter = 0; iter < 500; ++iter) {
        std::string buf = base;
        const std::size_t bit = pick_bit(rng);
        buf[bit / 8] = static_cast<char>(
            static_cast<unsigned char>(buf[bit / 8])
            ^ (1u << (bit % 8)));
        Pair p;
        ASSERT_GT(::write(p.a, buf.data(), buf.size()), 0);
        p.closeA();
        // Cap well below the flipped-length worst case so a length
        // flip classifies instead of waiting for gigabytes.
        ReadOutcome out = readFrame(p.b, 1 << 20, 500);
        switch (out.kind) {
          case ReadOutcome::Kind::Frame:
            // A payload-bit flip frames intact at the original
            // length; a cleared length bit frames a shorter prefix.
            // Either way the decoder must never claim more bytes
            // than the sender put on the wire.
            EXPECT_LE(out.payload.size(), payload.size());
            break;
          case ReadOutcome::Kind::Malformed:
          case ReadOutcome::Kind::Timeout:
          case ReadOutcome::Kind::Eof:
          case ReadOutcome::Kind::IoError:
            break; // all legal classifications of corruption
        }
    }
}

} // anonymous namespace
} // namespace prophet::serve
