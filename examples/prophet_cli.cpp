/**
 * @file
 * General-purpose simulation driver: run any registered workload
 * under any system configuration from the command line, optionally
 * dumping or replaying trace files — the everyday tool a user of
 * this library reaches for.
 *
 * Usage:
 *   prophet_cli <workload> [--system NAME]  (any registered
 *                pipeline — see `prophet list-pipelines`)
 *               [--l1 stride|ipcp|none] [--channels N]
 *               [--records N] [--dump-trace FILE] [--load-trace FILE]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/pipelines.hh"
#include "sim/runner.hh"
#include "stats/table.hh"
#include "trace/trace_io.hh"

namespace
{

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <workload> [--system NAME] [--l1 NAME]\n"
        "          [--channels N] [--records N]\n"
        "          [--dump-trace FILE] [--load-trace FILE]\n"
        "systems: %s\n",
        argv0, prophet::sim::registeredPipelineList().c_str());
    std::exit(1);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace prophet;
    if (argc < 2)
        usage(argv[0]);

    std::string workload = argv[1];
    std::string system = "prophet";
    std::string l1 = "stride";
    unsigned channels = 1;
    std::size_t records = 0;
    std::string dump_path, load_path;

    for (int i = 2; i < argc; ++i) {
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                usage(argv[0]);
            }
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--system"))
            system = need("--system");
        else if (!std::strcmp(argv[i], "--l1"))
            l1 = need("--l1");
        else if (!std::strcmp(argv[i], "--channels"))
            channels = static_cast<unsigned>(
                std::strtoul(need("--channels"), nullptr, 10));
        else if (!std::strcmp(argv[i], "--records"))
            records = std::strtoul(need("--records"), nullptr, 10);
        else if (!std::strcmp(argv[i], "--dump-trace"))
            dump_path = need("--dump-trace");
        else if (!std::strcmp(argv[i], "--load-trace"))
            load_path = need("--load-trace");
        else
            usage(argv[0]);
    }

    sim::SystemConfig base = sim::SystemConfig::table1();
    base.hier.dram.channels = channels;
    if (l1 == "stride")
        base.l1Pf = sim::L1PfKind::Stride;
    else if (l1 == "ipcp")
        base.l1Pf = sim::L1PfKind::Ipcp;
    else if (l1 == "none")
        base.l1Pf = sim::L1PfKind::None;
    else
        usage(argv[0]);

    sim::Runner runner(base, records);

    if (!dump_path.empty()) {
        const auto &t = runner.traceFor(workload);
        if (!trace::saveBinary(t, dump_path)) {
            std::fprintf(stderr, "failed to write %s\n",
                         dump_path.c_str());
            return 1;
        }
        std::printf("wrote %zu records to %s\n", t.size(),
                    dump_path.c_str());
    }

    sim::RunStats stats;
    if (!load_path.empty()) {
        trace::Trace t;
        if (!trace::loadBinary(t, load_path)) {
            std::fprintf(stderr, "failed to read %s\n",
                         load_path.c_str());
            return 1;
        }
        std::printf("replaying %zu records from %s\n", t.size(),
                    load_path.c_str());
        sim::SystemConfig cfg = base;
        cfg.l2Pf = sim::L2PfKind::Triangel;
        sim::System sys(cfg);
        stats = sys.run(t);
    } else if (sim::findPipeline(system)) {
        // One registry lookup replaces the old per-system chain:
        // every registered pipeline is runnable from here.
        stats = runner.run(system, workload);
    } else {
        std::fprintf(stderr, "unknown system \"%s\"\n",
                     system.c_str());
        usage(argv[0]);
    }

    stats::Table t({"metric", "value"});
    t.addRow({"IPC", stats::Table::fmt(stats.ipc)});
    t.addRow({"speedup vs baseline",
              stats::Table::fmt(runner.speedup(workload, stats))});
    t.addRow({"L2 demand misses",
              std::to_string(stats.l2DemandMisses)});
    t.addRow({"coverage",
              stats::Table::fmt(runner.coverage(workload, stats))});
    t.addRow({"prefetch accuracy",
              stats::Table::fmt(stats.prefetchAccuracy())});
    t.addRow({"DRAM reads+writes", std::to_string(stats.dramTraffic())});
    t.addRow({"DRAM traffic (norm)",
              stats::Table::fmt(runner.trafficNorm(workload, stats))});
    if (stats.offchipMeta.total() > 0)
        t.addRow({"off-chip metadata lines",
                  std::to_string(stats.offchipMeta.total())});
    t.addRow({"metadata ways", std::to_string(stats.finalMetadataWays)});
    std::printf("\n%s: %s\n\n%s", workload.c_str(), system.c_str(),
                t.render().c_str());
    return 0;
}
