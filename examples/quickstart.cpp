/**
 * @file
 * Quickstart: simulate one workload under the baseline, Triangel,
 * and Prophet, and print the headline comparison the paper's
 * Figure 10 makes. Start here to see the whole pipeline: workload
 * generation, profiling with the simplified temporal prefetcher,
 * hint analysis, and the optimized run.
 */

#include <cstdio>

#include "sim/runner.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "mcf";

    prophet::sim::Runner runner;

    std::printf("Simulating '%s' (this runs four systems)...\n\n",
                workload.c_str());

    const auto &base = runner.baseline(workload);
    auto triangel = runner.run("triangel", workload);
    auto prophet_out = runner.runProphet(workload);

    prophet::stats::Table table(
        {"system", "IPC", "speedup", "coverage", "accuracy",
         "DRAM traffic"});
    auto row = [&](const char *name,
                   const prophet::sim::RunStats &s) {
        table.addRow({name, prophet::stats::Table::fmt(s.ipc),
                      prophet::stats::Table::fmt(
                          runner.speedup(workload, s)),
                      prophet::stats::Table::fmt(
                          runner.coverage(workload, s)),
                      prophet::stats::Table::fmt(s.prefetchAccuracy()),
                      prophet::stats::Table::fmt(
                          runner.trafficNorm(workload, s))});
    };
    row("baseline", base);
    row("triangel", triangel);
    row("prophet", prophet_out.stats);
    std::printf("%s\n", table.render().c_str());

    std::printf("Prophet hint buffer: %zu PCs; CSR: %u metadata "
                "ways%s\n",
                prophet_out.binary.hints.size(),
                prophet_out.binary.csr.metadataWays,
                prophet_out.binary.csr.temporalDisabled
                    ? " (temporal disabled)" : "");
    return 0;
}
