/**
 * @file
 * Input adaptation walkthrough (the Section 4.3 / Figure 13 story):
 * profile one gcc input, watch the optimized binary underperform on
 * a different input, then merge the second input's counters with the
 * Learner and watch a single binary serve both.
 *
 * Usage: input_adaptation [inputA] [inputB]   (default 166 typeck)
 */

#include <cstdio>

#include "core/analyzer.hh"
#include "core/learner.hh"
#include "sim/runner.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace prophet;
    std::string input_a =
        std::string("gcc_") + (argc > 1 ? argv[1] : "166");
    std::string input_b =
        std::string("gcc_") + (argc > 2 ? argv[2] : "typeck");

    sim::Runner runner;
    core::Analyzer analyzer;
    core::Learner learner;

    std::printf("Step 1+2: profile %s and build the optimized "
                "binary...\n",
                input_a.c_str());
    learner.learn(runner.profileWorkload(input_a));
    auto binary_a = analyzer.analyze(learner.merged());

    std::printf("Step 3: merge counters from %s (Eq. 4/5)...\n\n",
                input_b.c_str());
    auto snap_b = runner.profileWorkload(input_b);
    learner.learn(snap_b);
    auto binary_ab = analyzer.analyze(learner.merged());

    // The "Direct" reference: profiling input B alone.
    core::Learner direct;
    direct.learn(snap_b);
    auto binary_direct = analyzer.analyze(direct.merged());

    auto speedup = [&](const std::string &w,
                       const core::OptimizedBinary &bin) {
        return runner.speedup(w, runner.runProphetWithBinary(w, bin));
    };

    stats::Table t({"binary", "on " + input_a, "on " + input_b});
    t.addRow({"hints(" + input_a + ")",
              stats::Table::fmt(speedup(input_a, binary_a)),
              stats::Table::fmt(speedup(input_b, binary_a))});
    t.addRow({"hints(" + input_a + "+" + input_b + ")",
              stats::Table::fmt(speedup(input_a, binary_ab)),
              stats::Table::fmt(speedup(input_b, binary_ab))});
    t.addRow({"hints(" + input_b + " direct)",
              "-",
              stats::Table::fmt(speedup(input_b, binary_direct))});
    std::printf("%s\n", t.render().c_str());

    std::printf("After one learning round the merged binary should "
                "approach the direct\nprofile on %s without losing "
                "its edge on %s (loops=%u).\n",
                input_b.c_str(), input_a.c_str(), learner.loops());
    return 0;
}
