/**
 * @file
 * Graph-analytics scenario (the Section 5.5 / Figure 15 setting):
 * run a CRONO-like kernel and compare the software (RPG2) and
 * hardware (Triangel) baselines against Prophet, including RPG2's
 * kernel identification and distance tuning — the workflow a
 * performance engineer would follow on a graph workload.
 *
 * Usage: graph_analytics [workload]   (default sssp_100000_5)
 */

#include <cstdio>

#include "sim/runner.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    using namespace prophet;
    std::string workload = argc > 1 ? argv[1] : "sssp_100000_5";

    sim::Runner runner;

    std::printf("RPG2: identifying stride prefetch kernels and "
                "tuning the distance...\n");
    auto rpg2 = runner.runRpg2(workload);
    std::printf("  %zu kernel(s) identified", rpg2.kernels.size());
    if (!rpg2.kernels.empty())
        std::printf(", tuned distance %lld",
                    static_cast<long long>(rpg2.tunedDistance));
    std::printf("\n");
    for (const auto &k : rpg2.kernels)
        std::printf("  kernel PC %#llx: stride %+lld B, %.0f%% of "
                    "misses\n",
                    static_cast<unsigned long long>(k.pc),
                    static_cast<long long>(k.stride),
                    100.0 * k.missShare);

    std::printf("\nTriangel and Prophet...\n\n");
    auto tri = runner.run("triangel", workload);
    auto pro = runner.runProphet(workload);

    stats::Table t({"system", "speedup", "coverage", "accuracy",
                    "DRAM traffic"});
    auto row = [&](const char *name, const sim::RunStats &s) {
        t.addRow({name, stats::Table::fmt(runner.speedup(workload, s)),
                  stats::Table::fmt(runner.coverage(workload, s)),
                  stats::Table::fmt(s.prefetchAccuracy()),
                  stats::Table::fmt(runner.trafficNorm(workload, s))});
    };
    row("RPG2", rpg2.stats);
    row("Triangel", tri);
    row("Prophet", pro.stats);
    std::printf("%s\n", t.render().c_str());

    std::printf("Graph kernels are RPG2's home turf (stride-indexed "
                "indirect accesses),\nyet Prophet still covers the "
                "temporal patterns RPG2 cannot compute.\n");
    return 0;
}
