/**
 * @file
 * Profile explorer: runs the Prophet pipeline on a workload and dumps
 * the per-PC profiling counters, the hints the analyzer derived, and
 * the per-PC behaviour of the final optimized run — the data a
 * performance engineer would inspect to understand what Prophet
 * decided and why (the paper's Figure 6 view).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/analyzer.hh"
#include "sim/runner.hh"
#include "sim/system.hh"
#include "stats/table.hh"

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "omnetpp";

    prophet::sim::Runner runner;

    // Step 1: profile with the simplified temporal prefetcher.
    auto profile = runner.profileWorkload(workload);

    // Step 2: analyze into hints.
    prophet::core::Analyzer analyzer;
    auto binary = analyzer.analyze(profile);

    std::printf("== %s: profiling snapshot (Step 1) ==\n",
                workload.c_str());
    std::vector<std::pair<prophet::PC, prophet::core::PcProfile>> pcs(
        profile.perPc.begin(), profile.perPc.end());
    std::sort(pcs.begin(), pcs.end(), [](auto &a, auto &b) {
        return a.second.l2Misses > b.second.l2Misses;
    });

    prophet::stats::Table t1(
        {"PC", "L2 misses", "issued", "accuracy", "hint", "prio"});
    for (const auto &[pc, prof] : pcs) {
        auto hint = binary.hints.lookup(pc);
        t1.addRow({std::to_string(pc & 0xffffff),
                   std::to_string(prof.l2Misses),
                   std::to_string(prof.issuedPrefetches),
                   prophet::stats::Table::fmt(prof.accuracy),
                   hint ? (hint->allowInsert ? "insert" : "DROP")
                        : "-",
                   hint ? std::to_string(hint->priority) : "-"});
    }
    std::printf("%s\n", t1.render().c_str());
    std::printf("allocated entries: %llu -> CSR ways %u%s\n\n",
                static_cast<unsigned long long>(
                    profile.allocatedEntries),
                binary.csr.metadataWays,
                binary.csr.temporalDisabled ? " (disabled)" : "");

    // Step 3 equivalent: run the optimized binary and compare the
    // realized per-PC accuracy against the profile's prediction.
    prophet::sim::SystemConfig cfg = runner.baseConfig();
    cfg.l2Pf = prophet::sim::L2PfKind::Prophet;
    cfg.binary = binary;
    prophet::sim::System system(cfg, runner.resolverFor(workload));
    auto stats = system.run(runner.traceFor(workload));

    std::printf("== optimized run ==\n");
    std::printf("IPC %.3f (baseline %.3f), coverage %.3f, "
                "accuracy %.3f, DRAM traffic x%.3f\n\n",
                stats.ipc, runner.baseline(workload).ipc,
                runner.coverage(workload, stats),
                stats.prefetchAccuracy(),
                runner.trafficNorm(workload, stats));

    prophet::stats::Table t2({"PC", "issued", "useful", "accuracy"});
    auto final_profile = system.prophet()->takeSnapshot();
    std::vector<std::pair<prophet::PC, prophet::core::PcProfile>>
        final_pcs(final_profile.perPc.begin(),
                  final_profile.perPc.end());
    std::sort(final_pcs.begin(), final_pcs.end(), [](auto &a, auto &b) {
        return a.second.issuedPrefetches > b.second.issuedPrefetches;
    });
    for (const auto &[pc, prof] : final_pcs) {
        auto raw = system.prophet()->collector().rawCounters(pc);
        t2.addRow({std::to_string(pc & 0xffffff),
                   std::to_string(raw.issuedPrefetches),
                   std::to_string(raw.usefulPrefetches),
                   prophet::stats::Table::fmt(raw.accuracy())});
    }
    std::printf("%s", t2.render().c_str());
    return 0;
}
