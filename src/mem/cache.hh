/**
 * @file
 * Set-associative cache with prefetch-bit accounting, fill-time
 * tracking (so late prefetches earn only partial latency credit), and
 * way reservation for the LLC-resident metadata table.
 */

#ifndef PROPHET_MEM_CACHE_HH
#define PROPHET_MEM_CACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/prefetch.hh"
#include "common/types.hh"
#include "mem/cache_config.hh"
#include "mem/replacement.hh"

namespace prophet::mem
{

/** Who issued the prefetch that installed a line. */
enum class PfClass : std::uint8_t { None, L1, L2 };

/** Outcome of a cache lookup. */
struct LookupResult
{
    /** The line is present (possibly still in flight). */
    bool hit = false;

    /**
     * Cycle at which the data is available; for a plain hit this is
     * access cycle + hit latency, for a hit on an in-flight prefetch
     * it also waits for the fill to land.
     */
    Cycle readyAt = 0;

    /** The hit consumed a prefetched line (first demand touch). */
    bool wasPrefetched = false;

    /** Which prefetcher installed the line when wasPrefetched. */
    PfClass prefetchClass = PfClass::None;

    /** PC credited with the prefetch when wasPrefetched. */
    PC prefetchPc = kInvalidPC;

    /** The fill had not yet landed (late prefetch). */
    bool wasLate = false;
};

/** Description of a line evicted by a fill. */
struct Eviction
{
    bool valid = false;
    Addr lineAddr = 0;
    bool dirty = false;
    /** Evicted line was prefetched and never used by a demand. */
    bool unusedPrefetch = false;
};

/** Aggregate per-cache statistics. */
struct CacheStats
{
    std::uint64_t demandHits = 0;
    std::uint64_t demandMisses = 0;
    std::uint64_t prefetchHits = 0;  ///< demand hits on prefetched lines
    std::uint64_t latePrefetchHits = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t fills = 0;
    std::uint64_t unusedPrefetchEvictions = 0;
};

/**
 * One cache level. Lines are identified by line address; fills install
 * immediately with a readiness time, which subsumes MSHR-style
 * in-flight tracking for the trace-driven timing model.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Demand lookup. On a hit the replacement state is updated and
     * prefetch-bit bookkeeping performed.
     *
     * @param line_addr Line address accessed.
     * @param cycle Access cycle.
     */
    LookupResult lookupDemand(Addr line_addr, Cycle cycle);

    /**
     * Presence probe that does not update replacement state or clear
     * prefetch bits (used by prefetchers to squash redundant issues).
     */
    bool contains(Addr line_addr) const;

    /**
     * Lookup on behalf of a prefetch from an upper level: touches
     * replacement state on a hit but does not perturb demand
     * statistics or prefetch-bit bookkeeping.
     */
    LookupResult lookupPrefetch(Addr line_addr, Cycle cycle);

    /**
     * Install a line.
     *
     * @param line_addr Line address to fill.
     * @param ready_at Cycle the data arrives.
     * @param pf_class Prefetcher class that triggered the fill
     *        (PfClass::None for demand fills).
     * @param pf_pc PC credited when pf_class != None.
     * @param dirty Install in dirty state (writeback from above).
     * @return The eviction this fill caused, if any.
     */
    Eviction fill(Addr line_addr, Cycle ready_at, PfClass pf_class,
                  PC pf_pc, bool dirty);

    /** Mark an existing line dirty (store hit / writeback merge). */
    void markDirty(Addr line_addr);

    /** Invalidate a line if present; returns its eviction record. */
    Eviction invalidate(Addr line_addr);

    /**
     * Reserve the first @p ways ways of every set (metadata-table
     * partition). Growing the reservation invalidates the affected
     * demand lines; their evictions are dropped (metadata handover).
     */
    void setReservedWays(unsigned ways);

    /** Currently reserved ways. */
    unsigned reservedWays() const { return reserved; }

    /** Geometry and latency access. */
    unsigned numSets() const { return sets; }
    unsigned assoc() const { return waysTotal; }
    Cycle hitLatency() const { return latency; }
    const std::string &name() const { return label; }

    /** Statistics. */
    const CacheStats &stats() const { return statsData; }
    void resetStats() { statsData = CacheStats{}; }

    /** Demand-visible capacity in bytes under the current partition. */
    std::uint64_t effectiveBytes() const;

    /**
     * Warm the tag scan array of @p line_addr's set ahead of an
     * upcoming lookup/fill (the record loop's lookahead). Pure
     * software prefetch: no state, statistics, or replacement
     * update — results are bit-identical with or without it.
     */
    void
    prefetchSets(Addr line_addr) const
    {
        const std::size_t base = lineIndex(setIndex(line_addr), 0);
        // The 32-bit scan array: 16 per 64 B line covers any set in
        // one prefetch.
        prefetchRead(tagLo.data() + base);
        // The full tags, read on a match and written on a fill (8
        // per line; the 16-way LLC spans two).
        constexpr unsigned kTagsPerLine = kLineSize / sizeof(Addr);
        const Addr *t = tags.data() + base;
        for (unsigned w = 0; w < waysTotal; w += kTagsPerLine)
            prefetchRead(t + w);
    }

  private:
    /**
     * Line state is split structure-of-arrays style so the tag probe
     * — the operation every lookup, fill, and invalidate performs —
     * streams through nothing but tags:
     *
     *  - `tags`: one Addr per line, contiguous per set, so findWay
     *    scans at most assoc adjacent words (an 8-way set is a single
     *    64 B cache line of tags). Invalid lines hold kInvalidTag,
     *    which doubles as the invalid-way marker: no flags byte is
     *    consulted until after a tag matches.
     *  - `tagLo`: the low 32 bits of each tag, kept in lockstep with
     *    `tags`. This is the scan array: on x86-64 findWay compares
     *    four ways per SSE2 instruction against it and verifies the
     *    rare low-word match against the full tag, so a whole 16-way
     *    set scans in four vector compares and half the memory
     *    traffic of the 64-bit array.
     *  - `flags`: packed dirty/prefetched/demandTouched bits plus
     *    the 2-bit PfClass, one byte per line (validity has a single
     *    source of truth: the tag sentinel).
     *  - `cold`: readyAt + prefetchPc, touched only on the hit/fill
     *    paths that need timing or credit information.
     */
    enum LineFlag : std::uint8_t
    {
        kFlagDirty = 1u << 0,
        kFlagPrefetched = 1u << 1,
        kFlagDemandTouched = 1u << 2,
        // bits 4-5: PfClass
    };

    /**
     * Tag sentinel for an invalid way. Callers index lines by *line*
     * address (byte address >> 6), so no reachable line can collide
     * with an all-ones tag.
     */
    static constexpr Addr kInvalidTag = ~static_cast<Addr>(0);

    static constexpr unsigned kPfClassShift = 4;

    /** Low-32 image of kInvalidTag in the scan array. */
    static constexpr std::uint32_t kInvalidTagLo = 0xffffffffu;

    /** Timing/credit state off the tag-probe path. */
    struct ColdLine
    {
        Cycle readyAt = 0;
        PC prefetchPc = kInvalidPC;
    };

    std::string label;
    unsigned sets;
    unsigned waysTotal;
    Cycle latency;
    unsigned reserved = 0;
    std::vector<Addr> tags;
    std::vector<std::uint32_t> tagLo;
    std::vector<std::uint8_t> flags;
    std::vector<ColdLine> cold;

    /**
     * The way indices 0..assoc-1, built once at construction. The
     * demand partition [reserved, assoc) is a contiguous suffix, so
     * eviction candidates are always the span
     * (wayIds.data() + reserved, assoc - reserved) — the steady-state
     * miss path never builds a candidate vector.
     */
    std::vector<unsigned> wayIds;

    std::unique_ptr<ReplacementPolicy> repl;
    CacheStats statsData;

    unsigned
    setIndex(Addr line_addr) const
    {
        return static_cast<unsigned>(line_addr & (sets - 1));
    }

    std::size_t
    lineIndex(unsigned set, unsigned way) const
    {
        return static_cast<std::size_t>(set) * waysTotal + way;
    }

    int findWay(unsigned set, Addr line_addr) const;
    int findInvalidWay(unsigned set) const;

    /** Write a tag through to both the full and the scan array. */
    void
    setTag(std::size_t idx, Addr tag)
    {
        tags[idx] = tag;
        tagLo[idx] = static_cast<std::uint32_t>(tag);
    }

    static PfClass
    pfClassOf(std::uint8_t f)
    {
        return static_cast<PfClass>((f >> kPfClassShift) & 0x3u);
    }
};

} // namespace prophet::mem

#endif // PROPHET_MEM_CACHE_HH
