/**
 * @file
 * Three-level cache hierarchy plus DRAM. This is the observation and
 * actuation substrate for every prefetcher in the repository: demand
 * accesses flow L1D -> L2 -> LLC -> DRAM; temporal prefetchers watch
 * the L2 access stream (including L1-prefetcher requests, per the
 * paper's Section 5.1) and inject fills at L2.
 *
 * Simplification vs. the paper's gem5 configuration: the hierarchy is
 * weakly inclusive (fills propagate to all levels) rather than
 * mostly-inclusive L2 / mostly-exclusive LLC. Partitioning, prefetch
 * usefulness, timeliness, and DRAM traffic — the quantities the
 * evaluation depends on — are unaffected by this simplification.
 */

#ifndef PROPHET_MEM_HIERARCHY_HH
#define PROPHET_MEM_HIERARCHY_HH

#include <cstdint>

#include "common/types.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"

namespace prophet::mem
{

/** Where a demand access was satisfied. */
enum class HitLevel { L1, L2, LLC, Dram };

/** Full configuration of the memory subsystem. */
struct HierarchyConfig
{
    CacheConfig l1d{"L1D", 64 * 1024, 4, 2, 16, "plru"};
    CacheConfig l2{"L2", 512 * 1024, 8, 9, 32, "plru"};
    CacheConfig llc{"LLC", 2 * 1024 * 1024, 16, 20, 36, "lru"};
    DramConfig dram{};
};

/** Everything a caller learns from one demand access. */
struct AccessOutcome
{
    HitLevel level = HitLevel::L1;

    /** Cycle the data becomes available to the core. */
    Cycle readyAt = 0;

    /** Line address of the access. */
    Addr lineAddr = 0;

    /** The access reached the L2 (observation point for temporal
     *  prefetchers). */
    bool l2Accessed = false;

    /** It hit in the L2. */
    bool l2Hit = false;

    /** A prefetched line satisfied this demand (at any level). */
    bool prefetchUseful = false;

    /** Which prefetcher installed that line. */
    PfClass prefetchClass = PfClass::None;

    /** PC credited with that useful prefetch. */
    PC prefetchPc = kInvalidPC;

    /** The useful prefetch had not finished filling (late). */
    bool prefetchLate = false;
};

/** Outcome of an L1 prefetch probe (for temporal-prefetcher training). */
struct L1PrefetchOutcome
{
    bool issued = false;      ///< not redundant with L1 contents
    bool l2Accessed = false;  ///< probe reached L2
    bool l2Hit = false;
};

/**
 * The assembled memory subsystem.
 */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyConfig &config);

    /** One demand access (load or store, write-allocate). */
    AccessOutcome access(PC pc, Addr addr, bool is_write, Cycle cycle);

    /**
     * L1 prefetch (stride/IPCP). Fills L1 (and below on deeper
     * misses). Returns what the probe did at L2 so the temporal
     * prefetcher can observe it.
     */
    L1PrefetchOutcome prefetchL1(PC pc, Addr line_addr, Cycle cycle);

    /**
     * L2 prefetch (temporal prefetcher). @p pc is the PC credited
     * with the prefetch when a demand later consumes the line.
     * @return true if the prefetch was actually issued (line was not
     * already in L2).
     */
    bool prefetchL2(PC pc, Addr line_addr, Cycle cycle);

    Cache &l1() { return l1Cache; }
    Cache &l2() { return l2Cache; }
    Cache &llc() { return llcCache; }
    Dram &dram() { return dramModel; }
    const Cache &l1() const { return l1Cache; }
    const Cache &l2() const { return l2Cache; }
    const Cache &llc() const { return llcCache; }
    const Dram &dram() const { return dramModel; }

    /** L2 prefetches actually issued via prefetchL2(). */
    std::uint64_t l2PrefetchesIssued() const { return l2PfIssued; }

    /**
     * Warm the tag scan arrays an access() of @p line_addr would
     * probe at every level (the record loop's lookahead). Pure
     * software prefetch; see Cache::prefetchSets.
     */
    void
    prefetchSets(Addr line_addr) const
    {
        l1Cache.prefetchSets(line_addr);
        l2Cache.prefetchSets(line_addr);
        llcCache.prefetchSets(line_addr);
    }

    /** Reset all statistics (warmup boundary). */
    void resetStats();

  private:
    Cache l1Cache;
    Cache l2Cache;
    Cache llcCache;
    Dram dramModel;
    std::uint64_t l2PfIssued = 0;

    /** Route a dirty eviction from the given level downward. */
    void writeback(const Eviction &ev, int from_level, Cycle cycle);
};

} // namespace prophet::mem

#endif // PROPHET_MEM_HIERARCHY_HH
