#include "mem/hierarchy.hh"

#include "common/log.hh"

namespace prophet::mem
{

Hierarchy::Hierarchy(const HierarchyConfig &config)
    : l1Cache(config.l1d),
      l2Cache(config.l2),
      llcCache(config.llc),
      dramModel(config.dram)
{}

void
Hierarchy::writeback(const Eviction &ev, int from_level, Cycle cycle)
{
    if (!ev.valid || !ev.dirty)
        return;
    if (from_level <= 0 && l2Cache.contains(ev.lineAddr)) {
        l2Cache.markDirty(ev.lineAddr);
        return;
    }
    if (from_level <= 1 && llcCache.contains(ev.lineAddr)) {
        llcCache.markDirty(ev.lineAddr);
        return;
    }
    dramModel.write(cycle);
}

AccessOutcome
Hierarchy::access(PC pc, Addr addr, bool is_write, Cycle cycle)
{
    (void)pc;
    Addr line = lineAddr(addr);
    AccessOutcome out;
    out.lineAddr = line;

    auto note_prefetch_hit = [&](const LookupResult &r) {
        if (r.wasPrefetched) {
            out.prefetchUseful = true;
            out.prefetchClass = r.prefetchClass;
            out.prefetchPc = r.prefetchPc;
            out.prefetchLate = r.wasLate;
        }
    };

    // L1 lookup.
    LookupResult r1 = l1Cache.lookupDemand(line, cycle);
    if (r1.hit) {
        out.level = HitLevel::L1;
        out.readyAt = r1.readyAt;
        note_prefetch_hit(r1);
        if (is_write)
            l1Cache.markDirty(line);
        return out;
    }

    // L2 lookup: this is the temporal prefetcher's observation point.
    out.l2Accessed = true;
    Cycle l2_cycle = cycle + l1Cache.hitLatency();
    LookupResult r2 = l2Cache.lookupDemand(line, l2_cycle);
    if (r2.hit) {
        out.level = HitLevel::L2;
        out.l2Hit = true;
        out.readyAt = r2.readyAt;
        note_prefetch_hit(r2);
        writeback(l1Cache.fill(line, r2.readyAt, PfClass::None, kInvalidPC,
                               is_write),
                  0, cycle);
        return out;
    }

    // LLC lookup.
    Cycle llc_cycle = l2_cycle + l2Cache.hitLatency();
    LookupResult r3 = llcCache.lookupDemand(line, llc_cycle);
    if (r3.hit) {
        out.level = HitLevel::LLC;
        out.readyAt = r3.readyAt;
        note_prefetch_hit(r3);
        writeback(l2Cache.fill(line, r3.readyAt, PfClass::None, kInvalidPC,
                               false),
                  1, cycle);
        writeback(l1Cache.fill(line, r3.readyAt, PfClass::None, kInvalidPC,
                               is_write),
                  0, cycle);
        return out;
    }

    // DRAM.
    Cycle dram_cycle = llc_cycle + llcCache.hitLatency();
    Cycle done = dramModel.read(dram_cycle, false);
    out.level = HitLevel::Dram;
    out.readyAt = done;
    writeback(llcCache.fill(line, done, PfClass::None, kInvalidPC, false), 2,
              cycle);
    writeback(l2Cache.fill(line, done, PfClass::None, kInvalidPC, false), 1,
              cycle);
    writeback(l1Cache.fill(line, done, PfClass::None, kInvalidPC, is_write), 0,
              cycle);
    return out;
}

L1PrefetchOutcome
Hierarchy::prefetchL1(PC pc, Addr line_addr, Cycle cycle)
{
    L1PrefetchOutcome out;
    if (l1Cache.contains(line_addr))
        return out;
    out.issued = true;
    out.l2Accessed = true;

    Cycle l2_cycle = cycle + l1Cache.hitLatency();
    LookupResult r2 = l2Cache.lookupPrefetch(line_addr, l2_cycle);
    if (r2.hit) {
        out.l2Hit = true;
        writeback(l1Cache.fill(line_addr, r2.readyAt, PfClass::L1, pc, false),
                  0, cycle);
        return out;
    }

    Cycle llc_cycle = l2_cycle + l2Cache.hitLatency();
    LookupResult r3 = llcCache.lookupPrefetch(line_addr, llc_cycle);
    Cycle ready;
    if (r3.hit) {
        ready = r3.readyAt;
    } else {
        Cycle dram_cycle = llc_cycle + llcCache.hitLatency();
        ready = dramModel.read(dram_cycle, true);
        writeback(llcCache.fill(line_addr, ready, PfClass::L1, pc,
                                 false),
                  2, cycle);
    }
    writeback(l2Cache.fill(line_addr, ready, PfClass::L1, pc, false),
              1, cycle);
    writeback(l1Cache.fill(line_addr, ready, PfClass::L1, pc, false),
              0, cycle);
    return out;
}

bool
Hierarchy::prefetchL2(PC pc, Addr line_addr, Cycle cycle)
{
    if (l2Cache.contains(line_addr))
        return false;
    ++l2PfIssued;

    Cycle llc_cycle = cycle + l2Cache.hitLatency();
    LookupResult r3 = llcCache.lookupPrefetch(line_addr, llc_cycle);
    Cycle ready;
    if (r3.hit) {
        ready = r3.readyAt;
    } else {
        Cycle dram_cycle = llc_cycle + llcCache.hitLatency();
        ready = dramModel.read(dram_cycle, true);
        writeback(llcCache.fill(line_addr, ready, PfClass::L2, pc,
                                 false),
                  2, cycle);
    }
    writeback(l2Cache.fill(line_addr, ready, PfClass::L2, pc, false),
              1, cycle);
    return true;
}

void
Hierarchy::resetStats()
{
    l1Cache.resetStats();
    l2Cache.resetStats();
    llcCache.resetStats();
    dramModel.resetStats();
    l2PfIssued = 0;
}

} // namespace prophet::mem
