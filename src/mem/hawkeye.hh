/**
 * @file
 * Hawkeye replacement (Jain & Lin, ISCA'16), as used by Triage for
 * its metadata table (Section 2.1.2 of the paper). Sampled sets feed
 * an OPTgen occupancy-vector model of Belady's OPT; a signature-
 * indexed predictor of 3-bit saturating counters classifies incoming
 * lines as cache-friendly or cache-averse.
 *
 * The paper notes this policy costs ~13 KB of state for ~0.25%
 * speedup, which is why Triangel replaced it with SRRIP; we implement
 * it so that comparison can be reproduced (storage model in
 * sim/storage, ablation in tests/bench).
 */

#ifndef PROPHET_MEM_HAWKEYE_HH
#define PROPHET_MEM_HAWKEYE_HH

#include <cstdint>
#include <vector>

#include "common/flat_map.hh"
#include "mem/replacement.hh"

namespace prophet::mem
{

/**
 * Hawkeye policy. Callers that know an access signature (a PC or a
 * hashed trigger address) should call setSignature() before the
 * touch()/insert() that the access generates; the signature trains
 * the predictor via OPTgen outcomes on sampled sets.
 */
class HawkeyePolicy : public ReplacementPolicy
{
  public:
    /**
     * @param sampled_sets Number of sets fed to OPTgen (power of 2).
     * @param predictor_entries Size of the signature predictor table.
     */
    explicit HawkeyePolicy(unsigned sampled_sets = 64,
                           unsigned predictor_entries = 2048);

    using ReplacementPolicy::victim;

    void reset(unsigned num_sets, unsigned assoc) override;
    void touch(unsigned set, unsigned way) override;
    void insert(unsigned set, unsigned way) override;
    unsigned victim(unsigned set, const unsigned *cands,
                    unsigned n) override;
    std::string name() const override { return "Hawkeye"; }

    /** Provide the signature of the access about to touch/insert. */
    void setSignature(std::uint64_t sig) { currentSig = sig; }

    /**
     * Provide the (line) address of the access about to touch/insert;
     * needed by the OPTgen sampler to detect reuse.
     */
    void setAddress(std::uint64_t line_addr) { currentAddr = line_addr; }

    /** Predictor counter value for a signature (tests/inspection). */
    unsigned predictorValue(std::uint64_t sig) const;

    /** True if the predictor currently classifies sig as friendly. */
    bool isFriendly(std::uint64_t sig) const;

  private:
    /** One entry of a sampled set's access history. */
    struct SampleEntry
    {
        std::uint64_t addr = 0;
        std::uint64_t sig = 0;
        std::uint64_t timestamp = 0;
        bool valid = false;
    };

    /** Per sampled set: OPTgen occupancy vector + history. */
    struct SamplerSet
    {
        std::vector<SampleEntry> history;
        std::vector<std::uint8_t> occupancy;
        std::uint64_t clock = 0;
        std::size_t headIdx = 0;
    };

    unsigned numSets = 0;
    unsigned numWays = 0;
    unsigned sampledSets;
    unsigned predictorSize;

    /** numSets / sampledSets, fixed at reset(). */
    unsigned sampleStride = 0;
    /** sampleStride - 1 when the stride is a power of two, else 0. */
    unsigned sampleMask = 0;

    /** 3-bit saturating counters; >= 4 means cache-friendly. */
    std::vector<std::uint8_t> predictor;

    /** RRPV-like ages used for victim selection. */
    std::vector<std::uint8_t> rrip;
    /** Signature that inserted each line (for eviction training). */
    std::vector<std::uint64_t> lineSig;

    FlatMap<unsigned, SamplerSet> sampler;

    std::uint64_t currentSig = 0;
    std::uint64_t currentAddr = 0;

    static constexpr std::uint8_t maxRrip = 7;
    static constexpr unsigned historyPerWay = 8;

    bool isSampled(unsigned set) const;
    void samplerAccess(unsigned set);
    void trainPositive(std::uint64_t sig);
    void trainNegative(std::uint64_t sig);
    std::size_t predIdx(std::uint64_t sig) const;
    void onAccess(unsigned set, unsigned way);
};

} // namespace prophet::mem

#endif // PROPHET_MEM_HAWKEYE_HH
