#include "mem/cache.hh"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/intmath.hh"
#include "common/log.hh"

namespace prophet::mem
{

Cache::Cache(const CacheConfig &config)
    : label(config.name),
      sets(config.numSets()),
      waysTotal(config.assoc),
      latency(config.hitLatency),
      tags(static_cast<std::size_t>(config.numSets()) * config.assoc,
           kInvalidTag),
      tagLo(tags.size(), kInvalidTagLo),
      flags(tags.size(), 0),
      cold(tags.size()),
      wayIds(config.assoc),
      repl(makePolicy(config.replacement))
{
    prophet_assert(sets > 0 && isPowerOf2(sets));
    prophet_assert(waysTotal > 0);
    for (unsigned w = 0; w < waysTotal; ++w)
        wayIds[w] = w;
    repl->reset(sets, waysTotal);
}

int
Cache::findWay(unsigned set, Addr line_addr) const
{
    // Invalid ways hold kInvalidTag, which never equals a real line
    // address, and ways below `reserved` are never filled, so a
    // whole-set scan can only match in the demand partition.
    const std::size_t base = lineIndex(set, 0);
    const Addr *t = tags.data() + base;
#if defined(__SSE2__)
    // Vector scan of the 32-bit tag array, four ways per compare;
    // the rare low-word match is verified against the full tag.
    // Candidate ways resolve in ascending order, so the result is
    // the same lowest matching way the scalar loop returns.
    const std::uint32_t *tl = tagLo.data() + base;
    const __m128i vlo = _mm_set1_epi32(
        static_cast<int>(static_cast<std::uint32_t>(line_addr)));
    const unsigned vec_end = waysTotal & ~3u;
    unsigned w = 0;
    for (; w < vec_end; w += 4) {
        const __m128i hit = _mm_cmpeq_epi32(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(tl + w)),
            vlo);
        int m = _mm_movemask_ps(_mm_castsi128_ps(hit));
        while (m) {
            const unsigned way =
                w + static_cast<unsigned>(__builtin_ctz(
                    static_cast<unsigned>(m)));
            if (way >= reserved && t[way] == line_addr)
                return static_cast<int>(way);
            m &= m - 1;
        }
    }
    for (; w < waysTotal; ++w) {
        if (w >= reserved && t[w] == line_addr)
            return static_cast<int>(w);
    }
#else
    for (unsigned w = reserved; w < waysTotal; ++w) {
        if (t[w] == line_addr)
            return static_cast<int>(w);
    }
#endif
    return -1;
}

int
Cache::findInvalidWay(unsigned set) const
{
    // First invalid way of the demand partition, or -1 when the set
    // is full — the fill path's pre-eviction scan, vectorized the
    // same way as findWay (the sentinel's low word never verifies
    // against a filled way's full tag).
    const std::size_t base = lineIndex(set, 0);
    const Addr *t = tags.data() + base;
#if defined(__SSE2__)
    const std::uint32_t *tl = tagLo.data() + base;
    const __m128i vlo = _mm_set1_epi32(
        static_cast<int>(kInvalidTagLo));
    const unsigned vec_end = waysTotal & ~3u;
    unsigned w = 0;
    for (; w < vec_end; w += 4) {
        const __m128i hit = _mm_cmpeq_epi32(
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(tl + w)),
            vlo);
        int m = _mm_movemask_ps(_mm_castsi128_ps(hit));
        while (m) {
            const unsigned way =
                w + static_cast<unsigned>(__builtin_ctz(
                    static_cast<unsigned>(m)));
            if (way >= reserved && t[way] == kInvalidTag)
                return static_cast<int>(way);
            m &= m - 1;
        }
    }
    for (; w < waysTotal; ++w) {
        if (w >= reserved && t[w] == kInvalidTag)
            return static_cast<int>(w);
    }
#else
    for (unsigned w = reserved; w < waysTotal; ++w) {
        if (t[w] == kInvalidTag)
            return static_cast<int>(w);
    }
#endif
    return -1;
}

LookupResult
Cache::lookupDemand(Addr line_addr, Cycle cycle)
{
    unsigned set = setIndex(line_addr);
    int way = findWay(set, line_addr);
    LookupResult res;
    if (way < 0) {
        ++statsData.demandMisses;
        return res;
    }

    std::size_t idx = lineIndex(set, static_cast<unsigned>(way));
    std::uint8_t f = flags[idx];
    const ColdLine &c = cold[idx];
    res.hit = true;
    res.readyAt = cycle + latency;
    if (c.readyAt > cycle) {
        // In-flight fill: pay the residual latency on top.
        res.readyAt = c.readyAt + latency;
        res.wasLate = true;
    }
    if ((f & kFlagPrefetched) && !(f & kFlagDemandTouched)) {
        res.wasPrefetched = true;
        res.prefetchClass = pfClassOf(f);
        res.prefetchPc = c.prefetchPc;
        flags[idx] = f | kFlagDemandTouched;
        ++statsData.prefetchHits;
        if (res.wasLate)
            ++statsData.latePrefetchHits;
    }
    ++statsData.demandHits;
    repl->touch(set, static_cast<unsigned>(way));
    return res;
}

bool
Cache::contains(Addr line_addr) const
{
    return findWay(setIndex(line_addr), line_addr) >= 0;
}

LookupResult
Cache::lookupPrefetch(Addr line_addr, Cycle cycle)
{
    unsigned set = setIndex(line_addr);
    int way = findWay(set, line_addr);
    LookupResult res;
    if (way < 0)
        return res;
    res.hit = true;
    res.readyAt =
        std::max(cycle,
                 cold[lineIndex(set, static_cast<unsigned>(way))]
                     .readyAt)
        + latency;
    repl->touch(set, static_cast<unsigned>(way));
    return res;
}

Eviction
Cache::fill(Addr line_addr, Cycle ready_at, PfClass pf_class, PC pf_pc,
            bool dirty)
{
    unsigned set = setIndex(line_addr);
    int existing = findWay(set, line_addr);
    if (existing >= 0) {
        // Refill of a present line: merge state. An in-flight line
        // refilled with an earlier ready time takes that earlier
        // time, otherwise late-prefetch hits would keep paying the
        // stale later timestamp.
        std::size_t idx =
            lineIndex(set, static_cast<unsigned>(existing));
        if (dirty)
            flags[idx] |= kFlagDirty;
        if (ready_at < cold[idx].readyAt)
            cold[idx].readyAt = ready_at;
        repl->touch(set, static_cast<unsigned>(existing));
        return Eviction{};
    }

    ++statsData.fills;

    // Prefer an invalid way in the demand partition.
    int target = findInvalidWay(set);

    Eviction ev;
    if (target < 0) {
        // All demand ways hold valid lines: the candidate set is the
        // contiguous [reserved, waysTotal) suffix of wayIds, so no
        // per-miss candidate vector is ever built.
        prophet_assert(reserved < waysTotal);
        unsigned victim = repl->victim(set, wayIds.data() + reserved,
                                       waysTotal - reserved);
        std::size_t vidx = lineIndex(set, victim);
        std::uint8_t vf = flags[vidx];
        ev.valid = true;
        ev.lineAddr = tags[vidx];
        ev.dirty = (vf & kFlagDirty) != 0;
        ev.unusedPrefetch = (vf & kFlagPrefetched)
            && !(vf & kFlagDemandTouched);
        if (ev.dirty)
            ++statsData.writebacks;
        if (ev.unusedPrefetch)
            ++statsData.unusedPrefetchEvictions;
        target = static_cast<int>(victim);
    }

    std::size_t idx = lineIndex(set, static_cast<unsigned>(target));
    setTag(idx, line_addr);
    std::uint8_t f = 0;
    if (dirty)
        f |= kFlagDirty;
    if (pf_class != PfClass::None)
        f |= kFlagPrefetched;
    f |= static_cast<std::uint8_t>(static_cast<unsigned>(pf_class)
                                   << kPfClassShift);
    flags[idx] = f;
    cold[idx].prefetchPc = pf_pc;
    cold[idx].readyAt = ready_at;
    repl->insert(set, static_cast<unsigned>(target));
    return ev;
}

void
Cache::markDirty(Addr line_addr)
{
    unsigned set = setIndex(line_addr);
    int way = findWay(set, line_addr);
    if (way >= 0)
        flags[lineIndex(set, static_cast<unsigned>(way))] |= kFlagDirty;
}

Eviction
Cache::invalidate(Addr line_addr)
{
    unsigned set = setIndex(line_addr);
    int way = findWay(set, line_addr);
    Eviction ev;
    if (way < 0)
        return ev;
    std::size_t idx = lineIndex(set, static_cast<unsigned>(way));
    std::uint8_t f = flags[idx];
    ev.valid = true;
    ev.lineAddr = tags[idx];
    ev.dirty = (f & kFlagDirty) != 0;
    ev.unusedPrefetch = (f & kFlagPrefetched)
        && !(f & kFlagDemandTouched);
    setTag(idx, kInvalidTag);
    flags[idx] = 0;
    return ev;
}

void
Cache::setReservedWays(unsigned ways)
{
    prophet_assert(ways < waysTotal);
    if (ways > reserved) {
        // Metadata partition grows: drop demand lines in the newly
        // reserved ways.
        for (unsigned set = 0; set < sets; ++set) {
            for (unsigned w = reserved; w < ways; ++w) {
                std::size_t idx = lineIndex(set, w);
                setTag(idx, kInvalidTag);
                flags[idx] = 0;
            }
        }
    }
    reserved = ways;
}

std::uint64_t
Cache::effectiveBytes() const
{
    return static_cast<std::uint64_t>(sets) * (waysTotal - reserved)
        * kLineSize;
}

} // namespace prophet::mem
