#include "mem/cache.hh"

#include "common/intmath.hh"
#include "common/log.hh"

namespace prophet::mem
{

Cache::Cache(const CacheConfig &config)
    : label(config.name),
      sets(config.numSets()),
      waysTotal(config.assoc),
      latency(config.hitLatency),
      tags(static_cast<std::size_t>(config.numSets()) * config.assoc,
           kInvalidTag),
      flags(tags.size(), 0),
      cold(tags.size()),
      wayIds(config.assoc),
      repl(makePolicy(config.replacement))
{
    prophet_assert(sets > 0 && isPowerOf2(sets));
    prophet_assert(waysTotal > 0);
    for (unsigned w = 0; w < waysTotal; ++w)
        wayIds[w] = w;
    repl->reset(sets, waysTotal);
}

unsigned
Cache::setIndex(Addr line_addr) const
{
    return static_cast<unsigned>(line_addr & (sets - 1));
}

std::size_t
Cache::lineIndex(unsigned set, unsigned way) const
{
    return static_cast<std::size_t>(set) * waysTotal + way;
}

int
Cache::findWay(unsigned set, Addr line_addr) const
{
    // Only the dense tag array is touched: invalid ways hold
    // kInvalidTag, which never equals a real line address.
    const Addr *t = tags.data() + lineIndex(set, 0);
    for (unsigned w = reserved; w < waysTotal; ++w) {
        if (t[w] == line_addr)
            return static_cast<int>(w);
    }
    return -1;
}

LookupResult
Cache::lookupDemand(Addr line_addr, Cycle cycle)
{
    unsigned set = setIndex(line_addr);
    int way = findWay(set, line_addr);
    LookupResult res;
    if (way < 0) {
        ++statsData.demandMisses;
        return res;
    }

    std::size_t idx = lineIndex(set, static_cast<unsigned>(way));
    std::uint8_t f = flags[idx];
    const ColdLine &c = cold[idx];
    res.hit = true;
    res.readyAt = cycle + latency;
    if (c.readyAt > cycle) {
        // In-flight fill: pay the residual latency on top.
        res.readyAt = c.readyAt + latency;
        res.wasLate = true;
    }
    if ((f & kFlagPrefetched) && !(f & kFlagDemandTouched)) {
        res.wasPrefetched = true;
        res.prefetchClass = pfClassOf(f);
        res.prefetchPc = c.prefetchPc;
        flags[idx] = f | kFlagDemandTouched;
        ++statsData.prefetchHits;
        if (res.wasLate)
            ++statsData.latePrefetchHits;
    }
    ++statsData.demandHits;
    repl->touch(set, static_cast<unsigned>(way));
    return res;
}

bool
Cache::contains(Addr line_addr) const
{
    return findWay(setIndex(line_addr), line_addr) >= 0;
}

LookupResult
Cache::lookupPrefetch(Addr line_addr, Cycle cycle)
{
    unsigned set = setIndex(line_addr);
    int way = findWay(set, line_addr);
    LookupResult res;
    if (way < 0)
        return res;
    res.hit = true;
    res.readyAt =
        std::max(cycle,
                 cold[lineIndex(set, static_cast<unsigned>(way))]
                     .readyAt)
        + latency;
    repl->touch(set, static_cast<unsigned>(way));
    return res;
}

Eviction
Cache::fill(Addr line_addr, Cycle ready_at, PfClass pf_class, PC pf_pc,
            bool dirty)
{
    unsigned set = setIndex(line_addr);
    int existing = findWay(set, line_addr);
    if (existing >= 0) {
        // Refill of a present line: merge state. An in-flight line
        // refilled with an earlier ready time takes that earlier
        // time, otherwise late-prefetch hits would keep paying the
        // stale later timestamp.
        std::size_t idx =
            lineIndex(set, static_cast<unsigned>(existing));
        if (dirty)
            flags[idx] |= kFlagDirty;
        if (ready_at < cold[idx].readyAt)
            cold[idx].readyAt = ready_at;
        repl->touch(set, static_cast<unsigned>(existing));
        return Eviction{};
    }

    ++statsData.fills;

    // Prefer an invalid way in the demand partition.
    int target = -1;
    {
        const Addr *t = tags.data() + lineIndex(set, 0);
        for (unsigned w = reserved; w < waysTotal; ++w) {
            if (t[w] == kInvalidTag) {
                target = static_cast<int>(w);
                break;
            }
        }
    }

    Eviction ev;
    if (target < 0) {
        // All demand ways hold valid lines: the candidate set is the
        // contiguous [reserved, waysTotal) suffix of wayIds, so no
        // per-miss candidate vector is ever built.
        prophet_assert(reserved < waysTotal);
        unsigned victim = repl->victim(set, wayIds.data() + reserved,
                                       waysTotal - reserved);
        std::size_t vidx = lineIndex(set, victim);
        std::uint8_t vf = flags[vidx];
        ev.valid = true;
        ev.lineAddr = tags[vidx];
        ev.dirty = (vf & kFlagDirty) != 0;
        ev.unusedPrefetch = (vf & kFlagPrefetched)
            && !(vf & kFlagDemandTouched);
        if (ev.dirty)
            ++statsData.writebacks;
        if (ev.unusedPrefetch)
            ++statsData.unusedPrefetchEvictions;
        target = static_cast<int>(victim);
    }

    std::size_t idx = lineIndex(set, static_cast<unsigned>(target));
    tags[idx] = line_addr;
    std::uint8_t f = 0;
    if (dirty)
        f |= kFlagDirty;
    if (pf_class != PfClass::None)
        f |= kFlagPrefetched;
    f |= static_cast<std::uint8_t>(static_cast<unsigned>(pf_class)
                                   << kPfClassShift);
    flags[idx] = f;
    cold[idx].prefetchPc = pf_pc;
    cold[idx].readyAt = ready_at;
    repl->insert(set, static_cast<unsigned>(target));
    return ev;
}

void
Cache::markDirty(Addr line_addr)
{
    unsigned set = setIndex(line_addr);
    int way = findWay(set, line_addr);
    if (way >= 0)
        flags[lineIndex(set, static_cast<unsigned>(way))] |= kFlagDirty;
}

Eviction
Cache::invalidate(Addr line_addr)
{
    unsigned set = setIndex(line_addr);
    int way = findWay(set, line_addr);
    Eviction ev;
    if (way < 0)
        return ev;
    std::size_t idx = lineIndex(set, static_cast<unsigned>(way));
    std::uint8_t f = flags[idx];
    ev.valid = true;
    ev.lineAddr = tags[idx];
    ev.dirty = (f & kFlagDirty) != 0;
    ev.unusedPrefetch = (f & kFlagPrefetched)
        && !(f & kFlagDemandTouched);
    tags[idx] = kInvalidTag;
    flags[idx] = 0;
    return ev;
}

void
Cache::setReservedWays(unsigned ways)
{
    prophet_assert(ways < waysTotal);
    if (ways > reserved) {
        // Metadata partition grows: drop demand lines in the newly
        // reserved ways.
        for (unsigned set = 0; set < sets; ++set) {
            for (unsigned w = reserved; w < ways; ++w) {
                std::size_t idx = lineIndex(set, w);
                tags[idx] = kInvalidTag;
                flags[idx] = 0;
            }
        }
    }
    reserved = ways;
}

std::uint64_t
Cache::effectiveBytes() const
{
    return static_cast<std::uint64_t>(sets) * (waysTotal - reserved)
        * kLineSize;
}

} // namespace prophet::mem
