#include "mem/cache.hh"

#include "common/intmath.hh"
#include "common/log.hh"

namespace prophet::mem
{

Cache::Cache(const CacheConfig &config)
    : label(config.name),
      sets(config.numSets()),
      waysTotal(config.assoc),
      latency(config.hitLatency),
      lines(static_cast<std::size_t>(config.numSets()) * config.assoc),
      wayIds(config.assoc),
      repl(makePolicy(config.replacement))
{
    prophet_assert(sets > 0 && isPowerOf2(sets));
    prophet_assert(waysTotal > 0);
    for (unsigned w = 0; w < waysTotal; ++w)
        wayIds[w] = w;
    repl->reset(sets, waysTotal);
}

unsigned
Cache::setIndex(Addr line_addr) const
{
    return static_cast<unsigned>(line_addr & (sets - 1));
}

Cache::Line &
Cache::lineAt(unsigned set, unsigned way)
{
    return lines[static_cast<std::size_t>(set) * waysTotal + way];
}

const Cache::Line &
Cache::lineAt(unsigned set, unsigned way) const
{
    return lines[static_cast<std::size_t>(set) * waysTotal + way];
}

int
Cache::findWay(unsigned set, Addr line_addr) const
{
    for (unsigned w = reserved; w < waysTotal; ++w) {
        const Line &l = lineAt(set, w);
        if (l.valid && l.tag == line_addr)
            return static_cast<int>(w);
    }
    return -1;
}

LookupResult
Cache::lookupDemand(Addr line_addr, Cycle cycle)
{
    unsigned set = setIndex(line_addr);
    int way = findWay(set, line_addr);
    LookupResult res;
    if (way < 0) {
        ++statsData.demandMisses;
        return res;
    }

    Line &l = lineAt(set, static_cast<unsigned>(way));
    res.hit = true;
    res.readyAt = cycle + latency;
    if (l.readyAt > cycle) {
        // In-flight fill: pay the residual latency on top.
        res.readyAt = l.readyAt + latency;
        res.wasLate = true;
    }
    if (l.prefetched && !l.demandTouched) {
        res.wasPrefetched = true;
        res.prefetchClass = l.pfClass;
        res.prefetchPc = l.prefetchPc;
        l.demandTouched = true;
        ++statsData.prefetchHits;
        if (res.wasLate)
            ++statsData.latePrefetchHits;
    }
    ++statsData.demandHits;
    repl->touch(set, static_cast<unsigned>(way));
    return res;
}

bool
Cache::contains(Addr line_addr) const
{
    return findWay(setIndex(line_addr), line_addr) >= 0;
}

LookupResult
Cache::lookupPrefetch(Addr line_addr, Cycle cycle)
{
    unsigned set = setIndex(line_addr);
    int way = findWay(set, line_addr);
    LookupResult res;
    if (way < 0)
        return res;
    const Line &l = lineAt(set, static_cast<unsigned>(way));
    res.hit = true;
    res.readyAt = std::max(cycle, l.readyAt) + latency;
    repl->touch(set, static_cast<unsigned>(way));
    return res;
}

Eviction
Cache::fill(Addr line_addr, Cycle ready_at, PfClass pf_class, PC pf_pc,
            bool dirty)
{
    unsigned set = setIndex(line_addr);
    int existing = findWay(set, line_addr);
    if (existing >= 0) {
        // Refill of a present line: merge state. An in-flight line
        // refilled with an earlier ready time takes that earlier
        // time, otherwise late-prefetch hits would keep paying the
        // stale later timestamp.
        Line &l = lineAt(set, static_cast<unsigned>(existing));
        l.dirty = l.dirty || dirty;
        if (ready_at < l.readyAt)
            l.readyAt = ready_at;
        repl->touch(set, static_cast<unsigned>(existing));
        return Eviction{};
    }

    ++statsData.fills;

    // Prefer an invalid way in the demand partition.
    int target = -1;
    for (unsigned w = reserved; w < waysTotal; ++w) {
        if (!lineAt(set, w).valid) {
            target = static_cast<int>(w);
            break;
        }
    }

    Eviction ev;
    if (target < 0) {
        // All demand ways hold valid lines: the candidate set is the
        // contiguous [reserved, waysTotal) suffix of wayIds, so no
        // per-miss candidate vector is ever built.
        prophet_assert(reserved < waysTotal);
        unsigned victim = repl->victim(set, wayIds.data() + reserved,
                                       waysTotal - reserved);
        Line &vl = lineAt(set, victim);
        ev.valid = true;
        ev.lineAddr = vl.tag;
        ev.dirty = vl.dirty;
        ev.unusedPrefetch = vl.prefetched && !vl.demandTouched;
        if (ev.dirty)
            ++statsData.writebacks;
        if (ev.unusedPrefetch)
            ++statsData.unusedPrefetchEvictions;
        target = static_cast<int>(victim);
    }

    Line &l = lineAt(set, static_cast<unsigned>(target));
    l.tag = line_addr;
    l.valid = true;
    l.dirty = dirty;
    l.prefetched = pf_class != PfClass::None;
    l.pfClass = pf_class;
    l.demandTouched = false;
    l.prefetchPc = pf_pc;
    l.readyAt = ready_at;
    repl->insert(set, static_cast<unsigned>(target));
    return ev;
}

void
Cache::markDirty(Addr line_addr)
{
    unsigned set = setIndex(line_addr);
    int way = findWay(set, line_addr);
    if (way >= 0)
        lineAt(set, static_cast<unsigned>(way)).dirty = true;
}

Eviction
Cache::invalidate(Addr line_addr)
{
    unsigned set = setIndex(line_addr);
    int way = findWay(set, line_addr);
    Eviction ev;
    if (way < 0)
        return ev;
    Line &l = lineAt(set, static_cast<unsigned>(way));
    ev.valid = true;
    ev.lineAddr = l.tag;
    ev.dirty = l.dirty;
    ev.unusedPrefetch = l.prefetched && !l.demandTouched;
    l.valid = false;
    l.dirty = false;
    return ev;
}

void
Cache::setReservedWays(unsigned ways)
{
    prophet_assert(ways < waysTotal);
    if (ways > reserved) {
        // Metadata partition grows: drop demand lines in the newly
        // reserved ways.
        for (unsigned set = 0; set < sets; ++set) {
            for (unsigned w = reserved; w < ways; ++w) {
                Line &l = lineAt(set, w);
                l.valid = false;
                l.dirty = false;
            }
        }
    }
    reserved = ways;
}

std::uint64_t
Cache::effectiveBytes() const
{
    return static_cast<std::uint64_t>(sets) * (waysTotal - reserved)
        * kLineSize;
}

} // namespace prophet::mem
