#include "mem/hawkeye.hh"

#include "common/intmath.hh"
#include "common/log.hh"

namespace prophet::mem
{

HawkeyePolicy::HawkeyePolicy(unsigned sampled_sets,
                             unsigned predictor_entries)
    : sampledSets(sampled_sets), predictorSize(predictor_entries)
{
    prophet_assert(isPowerOf2(sampled_sets));
    prophet_assert(isPowerOf2(predictor_entries));
}

void
HawkeyePolicy::reset(unsigned num_sets, unsigned assoc)
{
    numSets = num_sets;
    numWays = assoc;
    if (sampledSets > num_sets)
        sampledSets = num_sets;
    // Sample sets spread uniformly: every (numSets / sampledSets)-th.
    // The stride (and, when it is a power of two, its mask) is
    // computed once here: isSampled runs on every touch/insert, and
    // a divide per access was a measurable slice of Triage runs.
    sampleStride = numSets / sampledSets;
    sampleMask =
        sampleStride != 0 && isPowerOf2(sampleStride)
        ? sampleStride - 1 : 0;
    predictor.assign(predictorSize, 4); // weakly friendly
    rrip.assign(static_cast<std::size_t>(num_sets) * assoc, maxRrip);
    lineSig.assign(static_cast<std::size_t>(num_sets) * assoc, 0);
    sampler.clear();
}

bool
HawkeyePolicy::isSampled(unsigned set) const
{
    if (sampleStride == 0)
        return true;
    if (sampleMask != 0 || sampleStride == 1)
        return (set & sampleMask) == 0;
    return set % sampleStride == 0;
}

std::size_t
HawkeyePolicy::predIdx(std::uint64_t sig) const
{
    // CRC-ish mix then mask.
    sig ^= sig >> 33;
    sig *= 0xff51afd7ed558ccdULL;
    sig ^= sig >> 33;
    return static_cast<std::size_t>(sig & (predictorSize - 1));
}

void
HawkeyePolicy::trainPositive(std::uint64_t sig)
{
    auto &c = predictor[predIdx(sig)];
    if (c < 7)
        ++c;
}

void
HawkeyePolicy::trainNegative(std::uint64_t sig)
{
    auto &c = predictor[predIdx(sig)];
    if (c > 0)
        --c;
}

unsigned
HawkeyePolicy::predictorValue(std::uint64_t sig) const
{
    return predictor[predIdx(sig)];
}

bool
HawkeyePolicy::isFriendly(std::uint64_t sig) const
{
    return predictor[predIdx(sig)] >= 4;
}

void
HawkeyePolicy::samplerAccess(unsigned set)
{
    auto &ss = sampler[set];
    if (ss.history.empty()) {
        ss.history.assign(
            static_cast<std::size_t>(numWays) * historyPerWay, {});
        ss.occupancy.assign(ss.history.size(), 0);
    }

    ++ss.clock;

    // Look for the previous access to the same address in the
    // history window (most recent first). Index arithmetic wraps by
    // compare-and-reset, not `%`: the ring length (ways x 8) is not
    // a power of two, and a modulo per scanned entry dominated this
    // function's cost.
    std::size_t n = ss.history.size();
    std::size_t found = n;
    std::size_t idx = ss.headIdx;
    for (std::size_t back = 1; back <= n; ++back) {
        idx = idx == 0 ? n - 1 : idx - 1;
        const auto &e = ss.history[idx];
        if (e.valid && e.addr == currentAddr) {
            found = idx;
            break;
        }
    }

    if (found != n) {
        // OPTgen: the interval [found, head) can hold the line iff
        // every occupancy slot in it is below associativity.
        bool fits = true;
        for (idx = found; idx != ss.headIdx;
             idx = idx + 1 == n ? 0 : idx + 1) {
            if (ss.occupancy[idx] >= numWays) {
                fits = false;
                break;
            }
        }
        if (fits) {
            for (idx = found; idx != ss.headIdx;
                 idx = idx + 1 == n ? 0 : idx + 1)
                ++ss.occupancy[idx];
            trainPositive(ss.history[found].sig);
        } else {
            trainNegative(ss.history[found].sig);
        }
    }

    // Record this access at the head.
    ss.history[ss.headIdx] = {currentAddr, currentSig, ss.clock, true};
    ss.occupancy[ss.headIdx] = 0;
    ss.headIdx = ss.headIdx + 1 == n ? 0 : ss.headIdx + 1;
}

void
HawkeyePolicy::onAccess(unsigned set, unsigned way)
{
    if (isSampled(set))
        samplerAccess(set);

    std::size_t idx = static_cast<std::size_t>(set) * numWays + way;
    lineSig[idx] = currentSig;
    if (isFriendly(currentSig)) {
        rrip[idx] = 0;
    } else {
        rrip[idx] = maxRrip;
    }
}

void
HawkeyePolicy::touch(unsigned set, unsigned way)
{
    onAccess(set, way);
}

void
HawkeyePolicy::insert(unsigned set, unsigned way)
{
    onAccess(set, way);
}

unsigned
HawkeyePolicy::victim(unsigned set, const unsigned *cands, unsigned n)
{
    prophet_assert(n > 0);
    std::size_t base = static_cast<std::size_t>(set) * numWays;

    // Prefer a cache-averse line (rrip == max).
    for (unsigned i = 0; i < n; ++i)
        if (rrip[base + cands[i]] >= maxRrip)
            return cands[i];

    // Otherwise evict the oldest friendly line and detrain its
    // signature: OPT would not have evicted a friendly line, so the
    // predictor was wrong about it.
    unsigned victim_way = cands[0];
    std::uint8_t oldest = 0;
    for (unsigned i = 0; i < n; ++i) {
        unsigned way = cands[i];
        if (rrip[base + way] >= oldest) {
            oldest = rrip[base + way];
            victim_way = way;
        }
    }
    // Age friendly candidates so ties break toward older lines later.
    for (unsigned i = 0; i < n; ++i)
        if (rrip[base + cands[i]] < maxRrip - 1)
            ++rrip[base + cands[i]];

    trainNegative(lineSig[base + victim_way]);
    return victim_way;
}

} // namespace prophet::mem
