/**
 * @file
 * Cache geometry/latency parameters (Table 1 of the paper supplies
 * the defaults used by sim/system_config).
 */

#ifndef PROPHET_MEM_CACHE_CONFIG_HH
#define PROPHET_MEM_CACHE_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace prophet::mem
{

/** Static configuration of one cache level. */
struct CacheConfig
{
    /** Human-readable level name ("L1D", "L2", "LLC"). */
    std::string name = "cache";

    /** Total capacity in bytes. */
    std::uint64_t sizeBytes = 64 * 1024;

    /** Associativity (ways). */
    unsigned assoc = 4;

    /** Hit latency in core cycles. */
    Cycle hitLatency = 2;

    /** Number of MSHRs (outstanding misses tracked for stats). */
    unsigned mshrs = 16;

    /** Replacement policy name for makePolicy(). */
    std::string replacement = "plru";

    /** Number of sets implied by the geometry. */
    unsigned
    numSets() const
    {
        return static_cast<unsigned>(sizeBytes / (kLineSize * assoc));
    }
};

} // namespace prophet::mem

#endif // PROPHET_MEM_CACHE_CONFIG_HH
