#include "mem/replacement.hh"

#include <limits>

#include "common/intmath.hh"
#include "common/log.hh"

namespace prophet::mem
{

// ---------------------------------------------------------------- LRU

void
LruPolicy::reset(unsigned num_sets, unsigned assoc)
{
    numWays = assoc;
    clock = 0;
    stamps.assign(static_cast<std::size_t>(num_sets) * assoc, 0);
}

void
LruPolicy::touch(unsigned set, unsigned way)
{
    stamps[static_cast<std::size_t>(set) * numWays + way] = ++clock;
}

void
LruPolicy::insert(unsigned set, unsigned way)
{
    touch(set, way);
}

unsigned
LruPolicy::victim(unsigned set, const unsigned *cands, unsigned n)
{
    prophet_assert(n > 0);
    unsigned best = cands[0];
    std::uint64_t best_stamp = std::numeric_limits<std::uint64_t>::max();
    for (unsigned i = 0; i < n; ++i) {
        unsigned way = cands[i];
        std::uint64_t s =
            stamps[static_cast<std::size_t>(set) * numWays + way];
        if (s < best_stamp) {
            best_stamp = s;
            best = way;
        }
    }
    return best;
}

// ----------------------------------------------------------- TreePLRU

void
TreePlruPolicy::reset(unsigned num_sets, unsigned assoc)
{
    prophet_assert(isPowerOf2(assoc));
    numWays = assoc;
    bits.assign(static_cast<std::size_t>(num_sets) * (assoc - 1), 0);
    fallback.reset(num_sets, assoc);
}

void
TreePlruPolicy::touchPath(unsigned set, unsigned way)
{
    // Walk from the root; at each node flip the bit to point away
    // from the touched way.
    std::size_t base = static_cast<std::size_t>(set) * (numWays - 1);
    unsigned node = 0;
    unsigned lo = 0, hi = numWays;
    while (hi - lo > 1) {
        unsigned mid = (lo + hi) / 2;
        bool right = way >= mid;
        bits[base + node] = right ? 0 : 1; // point to the other half
        node = 2 * node + (right ? 2 : 1);
        if (right)
            lo = mid;
        else
            hi = mid;
    }
}

unsigned
TreePlruPolicy::followTree(unsigned set) const
{
    std::size_t base = static_cast<std::size_t>(set) * (numWays - 1);
    unsigned node = 0;
    unsigned lo = 0, hi = numWays;
    while (hi - lo > 1) {
        unsigned mid = (lo + hi) / 2;
        bool right = bits[base + node] != 0;
        node = 2 * node + (right ? 2 : 1);
        if (right)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

void
TreePlruPolicy::touch(unsigned set, unsigned way)
{
    touchPath(set, way);
    fallback.touch(set, way);
}

void
TreePlruPolicy::insert(unsigned set, unsigned way)
{
    touch(set, way);
}

unsigned
TreePlruPolicy::victim(unsigned set, const unsigned *cands, unsigned n)
{
    prophet_assert(n > 0);
    unsigned preferred = followTree(set);
    for (unsigned i = 0; i < n; ++i)
        if (cands[i] == preferred)
            return preferred;
    // The tree's preference is outside the candidate restriction;
    // fall back to timestamp LRU among candidates.
    return fallback.victim(set, cands, n);
}

// -------------------------------------------------------------- SRRIP

SrripPolicy::SrripPolicy(unsigned rrpv_bits)
    : maxRrpv(static_cast<std::uint8_t>((1u << rrpv_bits) - 1))
{
    prophet_assert(rrpv_bits >= 1 && rrpv_bits <= 8);
}

void
SrripPolicy::reset(unsigned num_sets, unsigned assoc)
{
    numWays = assoc;
    rrpvs.assign(static_cast<std::size_t>(num_sets) * assoc, maxRrpv);
}

void
SrripPolicy::touch(unsigned set, unsigned way)
{
    rrpvs[static_cast<std::size_t>(set) * numWays + way] = 0;
}

void
SrripPolicy::insert(unsigned set, unsigned way)
{
    rrpvs[static_cast<std::size_t>(set) * numWays + way] =
        static_cast<std::uint8_t>(maxRrpv - 1);
}

unsigned
SrripPolicy::victim(unsigned set, const unsigned *cands, unsigned n)
{
    prophet_assert(n > 0);
    std::size_t base = static_cast<std::size_t>(set) * numWays;
    for (;;) {
        for (unsigned i = 0; i < n; ++i)
            if (rrpvs[base + cands[i]] >= maxRrpv)
                return cands[i];
        // Age all candidates and retry; bounded by maxRrpv rounds.
        for (unsigned i = 0; i < n; ++i)
            if (rrpvs[base + cands[i]] < maxRrpv)
                ++rrpvs[base + cands[i]];
    }
}

std::uint8_t
SrripPolicy::rrpv(unsigned set, unsigned way) const
{
    return rrpvs[static_cast<std::size_t>(set) * numWays + way];
}

// -------------------------------------------------------------- BRRIP

BrripPolicy::BrripPolicy(double long_insert_prob)
    : longProb(long_insert_prob), rng(0xb1e55edULL)
{}

void
BrripPolicy::reset(unsigned num_sets, unsigned assoc)
{
    numWays = assoc;
    rrpvs.assign(static_cast<std::size_t>(num_sets) * assoc, maxRrpv);
}

void
BrripPolicy::touch(unsigned set, unsigned way)
{
    rrpvs[static_cast<std::size_t>(set) * numWays + way] = 0;
}

void
BrripPolicy::insert(unsigned set, unsigned way)
{
    bool long_rrpv = !rng.chance(longProb);
    rrpvs[static_cast<std::size_t>(set) * numWays + way] =
        static_cast<std::uint8_t>(long_rrpv ? maxRrpv : maxRrpv - 1);
}

unsigned
BrripPolicy::victim(unsigned set, const unsigned *cands, unsigned n)
{
    prophet_assert(n > 0);
    std::size_t base = static_cast<std::size_t>(set) * numWays;
    for (;;) {
        for (unsigned i = 0; i < n; ++i)
            if (rrpvs[base + cands[i]] >= maxRrpv)
                return cands[i];
        for (unsigned i = 0; i < n; ++i)
            if (rrpvs[base + cands[i]] < maxRrpv)
                ++rrpvs[base + cands[i]];
    }
}

// ------------------------------------------------------------- Random

RandomPolicy::RandomPolicy(std::uint64_t seed)
    : rng(seed)
{}

void
RandomPolicy::reset(unsigned, unsigned)
{}

void
RandomPolicy::touch(unsigned, unsigned)
{}

void
RandomPolicy::insert(unsigned, unsigned)
{}

unsigned
RandomPolicy::victim(unsigned, const unsigned *cands, unsigned n)
{
    prophet_assert(n > 0);
    return cands[rng.below(n)];
}

// ------------------------------------------------------------ factory

std::unique_ptr<ReplacementPolicy>
makePolicy(const std::string &name)
{
    if (name == "lru")
        return std::make_unique<LruPolicy>();
    if (name == "plru")
        return std::make_unique<TreePlruPolicy>();
    if (name == "srrip")
        return std::make_unique<SrripPolicy>();
    if (name == "brrip")
        return std::make_unique<BrripPolicy>();
    if (name == "random")
        return std::make_unique<RandomPolicy>();
    prophet_fatal("unknown replacement policy name");
}

} // namespace prophet::mem
