#include "mem/dram.hh"

#include "common/log.hh"

namespace prophet::mem
{

Dram::Dram(const DramConfig &config)
    : cfg(config), channelFree(config.channels, 0)
{
    prophet_assert(config.channels >= 1);
}

Cycle
Dram::schedule(Cycle cycle)
{
    // Earliest-free channel.
    std::size_t best = 0;
    for (std::size_t c = 1; c < channelFree.size(); ++c)
        if (channelFree[c] < channelFree[best])
            best = c;
    Cycle start = std::max(cycle, channelFree[best]);
    channelFree[best] = start + cfg.cyclesPerTransfer;
    return start;
}

Cycle
Dram::read(Cycle cycle, bool is_prefetch)
{
    ++statsData.reads;
    if (is_prefetch)
        ++statsData.prefetchReads;
    Cycle start = schedule(cycle);
    return start + cfg.accessLatency;
}

void
Dram::write(Cycle cycle)
{
    ++statsData.writes;
    schedule(cycle);
}

} // namespace prophet::mem
