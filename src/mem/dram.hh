/**
 * @file
 * DRAM timing/traffic model: fixed access latency plus per-channel
 * bandwidth occupancy (LPDDR5-class single channel by default;
 * Figure 18 doubles the channel count). Traffic counters feed the
 * normalized-DRAM-traffic figures (11, 18, 19b).
 */

#ifndef PROPHET_MEM_DRAM_HH
#define PROPHET_MEM_DRAM_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace prophet::mem
{

/** Static DRAM model parameters. */
struct DramConfig
{
    /** Row access latency in core cycles (device + controller). */
    Cycle accessLatency = 150;

    /** Channel occupancy per 64 B transfer, in core cycles. */
    Cycle cyclesPerTransfer = 8;

    /** Independent channels (Table 1: single channel). */
    unsigned channels = 1;
};

/** DRAM traffic statistics. */
struct DramStats
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t prefetchReads = 0;

    std::uint64_t total() const { return reads + writes; }
};

/**
 * Bandwidth-aware DRAM model. Requests are assigned to the channel
 * that frees up earliest; a request issued while all channels are
 * busy is delayed, which is how constrained-bandwidth workloads
 * (astar in the paper) feel prefetch over-aggressiveness.
 */
class Dram
{
  public:
    explicit Dram(const DramConfig &config);

    /**
     * Issue a read at @p cycle.
     * @param is_prefetch Counted separately for traffic analysis.
     * @return Completion cycle of the read.
     */
    Cycle read(Cycle cycle, bool is_prefetch);

    /** Issue a writeback at @p cycle (consumes bandwidth only). */
    void write(Cycle cycle);

    const DramStats &stats() const { return statsData; }
    void resetStats() { statsData = DramStats{}; }

    const DramConfig &config() const { return cfg; }

  private:
    DramConfig cfg;
    std::vector<Cycle> channelFree;
    DramStats statsData;

    /** Pick the earliest-free channel and occupy it from @p cycle. */
    Cycle schedule(Cycle cycle);
};

} // namespace prophet::mem

#endif // PROPHET_MEM_DRAM_HH
