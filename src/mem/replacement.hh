/**
 * @file
 * Replacement-policy interface and the standard policies used across
 * the hierarchy and the metadata table: LRU, tree-PLRU, SRRIP/BRRIP,
 * and random. Hawkeye (Triage's original metadata policy) lives in
 * hawkeye.hh.
 *
 * The victim() method receives an explicit candidate span so that
 * higher-level policies (Prophet's priority-class replacement,
 * Section 4.2 of the paper) can pre-filter candidates and delegate
 * the final choice to a base policy, exactly as Figure 4 describes
 * ("Prophet Replacement Policy first generates candidate victims for
 * the Runtime Replacement Policy, which then chooses the final
 * victim"). The span form (pointer + count rather than std::vector)
 * keeps the per-miss eviction path free of heap allocation: callers
 * point into pre-built scratch buffers.
 */

#ifndef PROPHET_MEM_REPLACEMENT_HH
#define PROPHET_MEM_REPLACEMENT_HH

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace prophet::mem
{

/**
 * Abstract replacement policy over a (numSets x assoc) structure.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** (Re)initialize state for the given geometry. */
    virtual void reset(unsigned num_sets, unsigned assoc) = 0;

    /** Note a hit on (set, way). */
    virtual void touch(unsigned set, unsigned way) = 0;

    /** Note a fill into (set, way). */
    virtual void insert(unsigned set, unsigned way) = 0;

    /**
     * Choose a victim among the candidate ways of a set. The
     * candidate span is never empty; all candidates hold valid lines.
     * Implementations must not allocate (this sits on the per-miss
     * eviction path).
     */
    virtual unsigned victim(unsigned set, const unsigned *cands,
                            unsigned n) = 0;

    /** Convenience overload for tests and non-hot-path callers. */
    unsigned
    victim(unsigned set, const std::vector<unsigned> &candidates)
    {
        return victim(set, candidates.data(),
                      static_cast<unsigned>(candidates.size()));
    }

    /** Convenience overload so victim(set, {1, 3}) keeps working. */
    unsigned
    victim(unsigned set, std::initializer_list<unsigned> candidates)
    {
        return victim(set, candidates.begin(),
                      static_cast<unsigned>(candidates.size()));
    }

    /** Policy name for reports. */
    virtual std::string name() const = 0;
};

/** True least-recently-used via per-line timestamps. */
class LruPolicy : public ReplacementPolicy
{
  public:
    using ReplacementPolicy::victim;

    void reset(unsigned num_sets, unsigned assoc) override;
    void touch(unsigned set, unsigned way) override;
    void insert(unsigned set, unsigned way) override;
    unsigned victim(unsigned set, const unsigned *cands,
                    unsigned n) override;
    std::string name() const override { return "LRU"; }

  private:
    std::uint64_t clock = 0;
    unsigned numWays = 0;
    std::vector<std::uint64_t> stamps;
};

/**
 * Tree pseudo-LRU, the L1/L2 policy in Table 1. Associativity must be
 * a power of two. Victim selection honours the candidate restriction
 * by falling back to the least-recently-touched candidate when the
 * tree's preferred way is not a candidate.
 */
class TreePlruPolicy : public ReplacementPolicy
{
  public:
    using ReplacementPolicy::victim;

    void reset(unsigned num_sets, unsigned assoc) override;
    void touch(unsigned set, unsigned way) override;
    void insert(unsigned set, unsigned way) override;
    unsigned victim(unsigned set, const unsigned *cands,
                    unsigned n) override;
    std::string name() const override { return "TreePLRU"; }

  private:
    unsigned numWays = 0;
    /** One bit vector of (assoc - 1) tree nodes per set. */
    std::vector<std::uint8_t> bits;
    /** Timestamp fallback for candidate-restricted victims. */
    LruPolicy fallback;

    void touchPath(unsigned set, unsigned way);
    unsigned followTree(unsigned set) const;
};

/**
 * Static re-reference interval prediction (SRRIP), the metadata-table
 * policy Triangel adopts (Section 2.1.2). 2-bit RRPVs, hit-priority
 * promotion, insertion at distant (maxRrpv - 1).
 */
class SrripPolicy : public ReplacementPolicy
{
  public:
    explicit SrripPolicy(unsigned rrpv_bits = 2);

    using ReplacementPolicy::victim;

    void reset(unsigned num_sets, unsigned assoc) override;
    void touch(unsigned set, unsigned way) override;
    void insert(unsigned set, unsigned way) override;
    unsigned victim(unsigned set, const unsigned *cands,
                    unsigned n) override;
    std::string name() const override { return "SRRIP"; }

    /** RRPV of a line, exposed for tests. */
    std::uint8_t rrpv(unsigned set, unsigned way) const;

  private:
    unsigned numWays = 0;
    std::uint8_t maxRrpv;
    std::vector<std::uint8_t> rrpvs;
};

/**
 * Bimodal RRIP: like SRRIP but inserts at maxRrpv with high
 * probability, resisting scans. Used in ablation/property tests.
 */
class BrripPolicy : public ReplacementPolicy
{
  public:
    explicit BrripPolicy(double long_insert_prob = 1.0 / 32.0);

    using ReplacementPolicy::victim;

    void reset(unsigned num_sets, unsigned assoc) override;
    void touch(unsigned set, unsigned way) override;
    void insert(unsigned set, unsigned way) override;
    unsigned victim(unsigned set, const unsigned *cands,
                    unsigned n) override;
    std::string name() const override { return "BRRIP"; }

  private:
    unsigned numWays = 0;
    std::uint8_t maxRrpv = 3;
    double longProb;
    Rng rng;
    std::vector<std::uint8_t> rrpvs;
};

/** Uniform random replacement (lower bound for comparisons). */
class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(std::uint64_t seed = 1);

    using ReplacementPolicy::victim;

    void reset(unsigned num_sets, unsigned assoc) override;
    void touch(unsigned set, unsigned way) override;
    void insert(unsigned set, unsigned way) override;
    unsigned victim(unsigned set, const unsigned *cands,
                    unsigned n) override;
    std::string name() const override { return "Random"; }

  private:
    Rng rng;
};

/** Factory by name: "lru", "plru", "srrip", "brrip", "random". */
std::unique_ptr<ReplacementPolicy> makePolicy(const std::string &name);

} // namespace prophet::mem

#endif // PROPHET_MEM_REPLACEMENT_HH
