/**
 * @file
 * Hint-injection encodings (Section 4.4). The evaluated configuration
 * uses the hint buffer, but the paper also specifies two binary-level
 * encodings; this module models both so their footprint claims can be
 * checked:
 *
 *  - Hint instructions (Whisper-style): one special instruction per
 *    hinted PC executed once at program entry (BOLT-inserted),
 *    populating the hint buffer. Static footprint: one instruction
 *    per hint; dynamic: executed once.
 *  - x86 instruction prefixes: a 3-bit hint rides a one-byte prefix
 *    added to each hinted memory instruction. No extra instructions,
 *    but the code footprint grows; with at most 128 hinted
 *    instructions the I-cache impact is the paper's 3*128/64 = 6 B
 *    equivalent (Section 4.4).
 */

#ifndef PROPHET_CORE_HINT_ENCODING_HH
#define PROPHET_CORE_HINT_ENCODING_HH

#include <cstdint>
#include <vector>

#include "core/hint_buffer.hh"

namespace prophet::core
{

/** Which Section 4.4 encoding a binary uses. */
enum class HintEncoding { HintInstructions, InstructionPrefix };

/** One encoded hint instruction (the Whisper-style scheme). */
struct HintInstruction
{
    PC targetPc = kInvalidPC; ///< memory instruction being hinted
    std::uint8_t payload = 0; ///< 3-bit hint

    /** Encoded size in bytes (opcode + PC tag + payload). */
    static constexpr unsigned encodedBytes = 8;
};

/** Footprint report for an encoding choice. */
struct EncodingFootprint
{
    /** Extra static instructions added to the binary. */
    std::uint64_t staticInstructions = 0;

    /** Extra dynamic instructions per program execution. */
    std::uint64_t dynamicInstructions = 0;

    /** Extra code bytes (I-cache footprint). */
    std::uint64_t codeBytes = 0;

    /** Dedicated hint-buffer storage bits required. */
    std::uint64_t bufferBits = 0;
};

/** Pack a hint into its 3-bit wire form (1 insert bit + 2 priority). */
std::uint8_t packHint(const Hint &hint);

/** Unpack the 3-bit wire form. */
Hint unpackHint(std::uint8_t bits);

/**
 * Lower a hint buffer into the hint-instruction encoding: the
 * sequence BOLT would insert at the program entry point.
 */
std::vector<HintInstruction> encodeHintInstructions(
    const HintBuffer &hints);

/**
 * Replay an encoded hint-instruction sequence into a hint buffer
 * (what the hardware does when the instructions execute at entry).
 */
HintBuffer decodeHintInstructions(
    const std::vector<HintInstruction> &insts, unsigned capacity = 128);

/** Footprint of an encoding for a given hint count (Section 4.4). */
EncodingFootprint footprintOf(HintEncoding encoding,
                              std::size_t hint_count);

} // namespace prophet::core

#endif // PROPHET_CORE_HINT_ENCODING_HH
