#include "core/prophet.hh"

#include <algorithm>

#include "common/log.hh"

namespace prophet::core
{

ProphetPrefetcher::ProphetPrefetcher(const ProphetConfig &config,
                                     OptimizedBinary binary)
    : cfg(config), bin(std::move(binary)),
      table(config.numSets, config.maxWays,
            std::make_unique<mem::SrripPolicy>()),
      mvb(config.mvbEntries, config.mvbCandidates)
{
    prophet_assert(cfg.degree >= 1);

    // Program entry: the CSR manipulation instruction configures the
    // metadata table before the first access (Prophet Resizing).
    if (!cfg.profilingMode && cfg.features.resizing
        && bin.csr.prophetEnabled) {
        if (bin.csr.temporalDisabled) {
            temporalOff = true;
            table.setAllocatedWays(0);
        } else {
            table.setAllocatedWays(bin.csr.metadataWays);
        }
    }

    table.setPriorityAware(!cfg.profilingMode
                           && cfg.features.replacement);

    if (!cfg.profilingMode && cfg.features.mvb) {
        table.setEvictionCallback(
            [this](const pf::MarkovTable::Entry &victim) {
                mvb.offer(victim);
            });
    }
}

unsigned
ProphetPrefetcher::effectiveDegree() const
{
    return cfg.profilingMode ? 1 : cfg.degree;
}

unsigned
ProphetPrefetcher::metadataWays() const
{
    return table.allocatedWays();
}

void
ProphetPrefetcher::notifyIssued(PC pc)
{
    profileData.notifyIssued(pc);
}

void
ProphetPrefetcher::notifyUseful(PC pc)
{
    profileData.notifyUseful(pc);
}

void
ProphetPrefetcher::observe(PC pc, Addr line_addr, bool l2_hit,
                           Cycle cycle,
                           std::vector<pf::PrefetchRequest> &out)
{
    (void)cycle;
    if (temporalOff)
        return;

    if (!l2_hit)
        profileData.notifyL2Miss(pc);

    // Hint lookup: demand requests from hinted PCs carry the 3-bit
    // hint to the prefetcher (Section 4.4).
    bool allow_insert = true;
    std::uint8_t priority = 0;
    bool use_insertion = !cfg.profilingMode && cfg.features.insertion;
    bool use_replacement =
        !cfg.profilingMode && cfg.features.replacement;
    if (use_insertion || use_replacement) {
        if (auto hint = bin.hints.lookup(pc)) {
            if (use_insertion)
                allow_insert = hint->allowInsert;
            if (use_replacement)
                priority = hint->allowInsert ? hint->priority : 0;
        }
    }

    // Condemned PCs are discarded entirely: no training, no
    // prediction (Section 4.2).
    if (!allow_insert)
        return;

    if (auto prev = trainer.swap(pc, line_addr)) {
        if (*prev != line_addr)
            table.insert(*prev, line_addr, priority);
    }

    // Prediction: chase the Markov chain; every lookup key also
    // probes the Multi-path Victim Buffer for alternative paths.
    // Fine-grained aggressiveness: hinted PCs chase a chain depth
    // that scales with their priority level, so low-accuracy PCs do
    // not flood the DRAM channel with deep speculative chains.
    bool use_mvb = !cfg.profilingMode && cfg.features.mvb;
    Addr cur = line_addr;
    unsigned degree = effectiveDegree();
    if (use_insertion && degree > 1) {
        if (auto hint = bin.hints.lookup(pc))
            degree = std::min<unsigned>(
                degree, 1u + hint->priority);
    }
    for (unsigned d = 0; d < degree; ++d) {
        auto target = table.lookup(cur);
        if (use_mvb) {
            std::vector<Addr> extra;
            mvb.lookup(cur, target.value_or(kInvalidAddr), extra);
            for (Addr t : extra)
                out.push_back(pf::PrefetchRequest{t, pc});
        }
        if (!target)
            break;
        out.push_back(pf::PrefetchRequest{*target, pc});
        cur = *target;
    }
}

ProfileSnapshot
ProphetPrefetcher::takeSnapshot()
{
    profileData.setTableCounters(table.stats().inserts,
                                 table.stats().replacements);
    return profileData.snapshot();
}

} // namespace prophet::core
