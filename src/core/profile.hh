/**
 * @file
 * Profiling counters (Step 1, Section 4.1). On real hardware these
 * are PEBS events (MEM_LOAD_RETIRED.L2_Prefetch_Issue / _Useful /
 * L2_MISS) and two standard PMU counters (metadata insertions and
 * replacements); in this reproduction the simulator feeds the same
 * quantities into a ProfileCollector, exactly as the paper's own
 * evaluation does with gem5's facilities (Section 5.1).
 *
 * A ProfileSnapshot is the distilled, mergeable form Step 2 analyzes
 * and Step 3 merges across inputs: per-PC prefetching accuracy plus
 * the application-level allocated-entries count.
 */

#ifndef PROPHET_CORE_PROFILE_HH
#define PROPHET_CORE_PROFILE_HH

#include <cstdint>

#include "common/flat_map.hh"
#include "common/types.hh"

namespace prophet::core
{

/** Raw per-PC PEBS-style event counts. */
struct PcCounters
{
    /** MEM_LOAD_RETIRED.L2_Prefetch_Issue. */
    std::uint64_t issuedPrefetches = 0;

    /** MEM_LOAD_RETIRED.L2_Prefetch_Useful. */
    std::uint64_t usefulPrefetches = 0;

    /** MEM_LOAD_RETIRED.L2_MISS (hint-buffer PC selection, §4.4). */
    std::uint64_t l2Misses = 0;

    /** Prefetching Accuracy = useful / issued (Section 4.1). */
    double
    accuracy() const
    {
        return issuedPrefetches == 0
            ? 0.0
            : static_cast<double>(usefulPrefetches)
                / static_cast<double>(issuedPrefetches);
    }
};

/** Distilled per-PC statistics after one profiling run. */
struct PcProfile
{
    double accuracy = 0.0;
    std::uint64_t issuedPrefetches = 0;
    std::uint64_t l2Misses = 0;
};

/** The mergeable profile of one (or several merged) runs. */
struct ProfileSnapshot
{
    FlatMap<PC, PcProfile> perPc;

    /** Allocated Entries = Insertions - Replacements (Section 4.1). */
    std::uint64_t allocatedEntries = 0;
};

/**
 * Collects the PEBS/PMU events during a profiling run. The simulator
 * invokes the notify methods; snapshot() distills the result.
 */
class ProfileCollector
{
  public:
    /** An L2 prefetch was issued, credited to @p pc. */
    void
    notifyIssued(PC pc)
    {
        ++counters[pc].issuedPrefetches;
    }

    /** A demand hit consumed a prefetched line credited to @p pc. */
    void
    notifyUseful(PC pc)
    {
        ++counters[pc].usefulPrefetches;
    }

    /** A demand access from @p pc missed in the L2. */
    void
    notifyL2Miss(PC pc)
    {
        ++counters[pc].l2Misses;
    }

    /** Final metadata-table counters (standard PMU events). */
    void
    setTableCounters(std::uint64_t insertions,
                     std::uint64_t replacements)
    {
        tableInsertions = insertions;
        tableReplacements = replacements;
    }

    /** Raw counters for a PC (zeroes when never seen). */
    PcCounters
    rawCounters(PC pc) const
    {
        auto it = counters.find(pc);
        return it == counters.end() ? PcCounters{} : it->second;
    }

    /** Number of distinct PCs observed. */
    std::size_t numPcs() const { return counters.size(); }

    /** Distill the collected events into a mergeable snapshot. */
    ProfileSnapshot snapshot() const;

    /** Clear all state for a fresh profiling run. */
    void reset();

  private:
    FlatMap<PC, PcCounters> counters;
    std::uint64_t tableInsertions = 0;
    std::uint64_t tableReplacements = 0;
};

} // namespace prophet::core

#endif // PROPHET_CORE_PROFILE_HH
