/**
 * @file
 * The hint buffer (Section 4.4): a 128-entry, PC-indexed structure
 * near the temporal prefetcher that holds the 3-bit hints Prophet's
 * analysis injects into the binary. Hint instructions executed at
 * program entry populate it; demand requests from matching PCs carry
 * the hint to the prefetcher.
 *
 * Each hint packs the 1-bit insertion decision (Eq. 1) and the
 * (2^n-level, n=2 by default) replacement priority (Eq. 2).
 */

#ifndef PROPHET_CORE_HINT_BUFFER_HH
#define PROPHET_CORE_HINT_BUFFER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/flat_map.hh"
#include "common/types.hh"

namespace prophet::core
{

/** One injected PC-level hint. */
struct Hint
{
    /** Eq. 1: train/insert metadata for this PC at all. */
    bool allowInsert = true;

    /** Eq. 2: replacement priority level (0 .. 2^n - 1). */
    std::uint8_t priority = 0;
};

/**
 * Fixed-capacity PC -> Hint store. Insertion past capacity is
 * rejected (the analysis stage selects which PCs matter most, so the
 * buffer never needs to evict at runtime).
 */
class HintBuffer
{
  public:
    /** @param capacity Entries (the paper's evaluated size is 128). */
    explicit HintBuffer(unsigned capacity = 128);

    /**
     * Install a hint; returns false (and does nothing) when the
     * buffer is full and the PC is not already present.
     */
    bool install(PC pc, Hint hint);

    /** Hint for a PC, if installed. */
    std::optional<Hint> lookup(PC pc) const;

    /** Installed entries. */
    std::size_t size() const { return hints.size(); }

    /** Capacity. */
    unsigned capacity() const { return cap; }

    /** Remove all hints. */
    void clear() { hints.clear(); }

    /** Storage cost in bits: per entry a PC tag (16 b) + 3 b hint. */
    std::uint64_t storageBits() const;

    /** Iteration in installation order (analysis reports, tests). */
    auto begin() const { return hints.begin(); }
    auto end() const { return hints.end(); }

  private:
    unsigned cap;
    FlatMap<PC, Hint> hints;
};

} // namespace prophet::core

#endif // PROPHET_CORE_HINT_BUFFER_HH
