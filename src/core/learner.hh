/**
 * @file
 * Step 3: Learning (Section 4.3). Merges profiling snapshots from
 * successive program inputs so one optimized binary adapts to all of
 * them:
 *
 *  - Per-PC prefetching accuracy merges with Eq. 4:
 *      merged = o + (n - o) / min(l + 1, L)   when the PC was seen
 *      merged = n                             when it is new
 *    so identical behaviour (Load A) keeps its hint, new code paths
 *    (Load C) acquire hints, and context-sensitive PCs (Load E)
 *    converge toward their frequently observed behaviour.
 *  - Allocated entries merge with Eq. 5: max(o, n) — conservative
 *    sizing that accommodates every input seen.
 */

#ifndef PROPHET_CORE_LEARNER_HH
#define PROPHET_CORE_LEARNER_HH

#include <cstdint>

#include "core/profile.hh"

namespace prophet::core
{

/**
 * Accumulates profiles across inputs.
 */
class Learner
{
  public:
    /**
     * @param loop_cap The paper's designer-set parameter L capping
     *        the 1/min(l+1, L) merge weight.
     */
    explicit Learner(unsigned loop_cap = 4);

    /**
     * Merge a fresh snapshot (one more execution of Steps 1+2).
     * The first call simply adopts the snapshot.
     */
    void learn(const ProfileSnapshot &fresh);

    /** The merged profile fed back into the Analyzer. */
    const ProfileSnapshot &merged() const { return state; }

    /** Completed Prophet loops (executions of Step 2). */
    unsigned loops() const { return loopCount; }

    /** Forget everything (new application). */
    void reset();

  private:
    unsigned loopCap;
    unsigned loopCount = 0;
    ProfileSnapshot state;
};

} // namespace prophet::core

#endif // PROPHET_CORE_LEARNER_HH
