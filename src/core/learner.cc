#include "core/learner.hh"

#include <algorithm>

#include "common/log.hh"

namespace prophet::core
{

Learner::Learner(unsigned loop_cap)
    : loopCap(loop_cap)
{
    prophet_assert(loop_cap >= 1);
}

void
Learner::learn(const ProfileSnapshot &fresh)
{
    if (loopCount == 0) {
        state = fresh;
        loopCount = 1;
        return;
    }

    double weight = 1.0
        / static_cast<double>(std::min(loopCount + 1, loopCap));

    for (const auto &[pc, n] : fresh.perPc) {
        auto it = state.perPc.find(pc);
        if (it == state.perPc.end()) {
            // Load C case: previously unrecorded PC adopts the new
            // counters outright (second branch of Eq. 4).
            state.perPc.emplace(pc, n);
            continue;
        }
        // Load A / Load E cases: move the estimate toward the new
        // observation by the loop-weighted offset (first branch).
        PcProfile &o = it->second;
        o.accuracy += weight * (n.accuracy - o.accuracy);
        o.l2Misses = o.l2Misses
            + static_cast<std::uint64_t>(
                  weight * (static_cast<double>(n.l2Misses)
                            - static_cast<double>(o.l2Misses)));
        o.issuedPrefetches = std::max(o.issuedPrefetches,
                                      n.issuedPrefetches);
    }

    // Eq. 5: conservative table sizing across inputs.
    state.allocatedEntries =
        std::max(state.allocatedEntries, fresh.allocatedEntries);

    ++loopCount;
}

void
Learner::reset()
{
    state = ProfileSnapshot{};
    loopCount = 0;
}

} // namespace prophet::core
