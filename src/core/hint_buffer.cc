#include "core/hint_buffer.hh"

namespace prophet::core
{

HintBuffer::HintBuffer(unsigned capacity)
    : cap(capacity)
{}

bool
HintBuffer::install(PC pc, Hint hint)
{
    auto it = hints.find(pc);
    if (it != hints.end()) {
        it->second = hint;
        return true;
    }
    if (hints.size() >= cap)
        return false;
    hints.emplace(pc, hint);
    return true;
}

std::optional<Hint>
HintBuffer::lookup(PC pc) const
{
    auto it = hints.find(pc);
    if (it == hints.end())
        return std::nullopt;
    return it->second;
}

std::uint64_t
HintBuffer::storageBits() const
{
    // 16-bit PC tag + 3-bit hint per entry, sized at capacity
    // (0.19 KB for 128 entries, Section 5.10).
    return static_cast<std::uint64_t>(cap) * (16 + 3);
}

} // namespace prophet::core
