/**
 * @file
 * The Prophet temporal prefetcher (Figure 4): a hardware temporal
 * prefetcher whose metadata-table insertion policy, replacement
 * policy, and sizing are driven by profile-guided hints instead of
 * runtime heuristics.
 *
 *  - Insertion: demand requests carry a 1-bit hint (Eq. 1); PCs the
 *    profile condemned are discarded entirely — neither trained on
 *    nor predicted from ("Prophet instructs the temporal prefetcher
 *    to discard all demand requests associated with that PC").
 *  - Replacement: hints carry a 2^n-level priority (Eq. 2) recorded
 *    in the Prophet Replacement State; victim candidates are the
 *    lowest-priority entries, and the runtime policy (SRRIP) picks
 *    the final victim among them.
 *  - Resizing: the CSR written at program entry fixes the table size
 *    to the profiled peak usage (Eq. 3); below half a way, temporal
 *    prefetching is disabled outright.
 *  - Multi-path Victim Buffer: displaced Markov targets with
 *    priority > 0 are buffered and re-prefetched on lookups.
 *
 * Feature flags reproduce the Figure 19 ablation: with all features
 * off this is "Triage4 + Triangel metadata" (degree-4 chained
 * prefetching, SRRIP metadata replacement, fixed table); +Repla,
 * +Insert, +MVB, +Resize layer Prophet's components on one by one.
 *
 * The same class in profiling mode is the paper's "simplified
 * temporal prefetcher" (Section 3.2): insertion policy disabled,
 * fixed 1 MB table, degree 1 — the unbiased configuration Step 1
 * profiles under, with a ProfileCollector standing in for PEBS.
 */

#ifndef PROPHET_CORE_PROPHET_HH
#define PROPHET_CORE_PROPHET_HH

#include <memory>

#include "core/analyzer.hh"
#include "core/mvb.hh"
#include "core/profile.hh"
#include "prefetch/markov_table.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/training_unit.hh"

namespace prophet::core
{

/** Which Prophet components are active (Figure 19 ablation axes). */
struct ProphetFeatures
{
    bool replacement = true;
    bool insertion = true;
    bool mvb = true;
    bool resizing = true;
};

/** Prophet prefetcher configuration. */
struct ProphetConfig
{
    /** Chained prefetch degree in normal operation. */
    unsigned degree = 4;

    /** Markov-table sets (= LLC sets). */
    unsigned numSets = 2048;

    /** Maximum borrowed LLC ways (1 MB). */
    unsigned maxWays = 8;

    /** Active Prophet components. */
    ProphetFeatures features{};

    /** MVB geometry (Section 5.10 / Figure 16(c)). */
    unsigned mvbEntries = 65536;
    unsigned mvbCandidates = 1;

    /**
     * Profiling mode: the simplified temporal prefetcher of Section
     * 3.2 (degree 1, fixed table, no insertion policy).
     */
    bool profilingMode = false;
};

/**
 * The Prophet co-designed temporal prefetcher.
 */
class ProphetPrefetcher : public pf::TemporalPrefetcher
{
  public:
    /**
     * @param config Hardware configuration.
     * @param binary The optimized binary's hints + CSR; pass a
     *        default-constructed OptimizedBinary for profiling mode
     *        or the all-features-off ablation baseline.
     */
    ProphetPrefetcher(const ProphetConfig &config,
                      OptimizedBinary binary = {});

    void observe(PC pc, Addr line_addr, bool l2_hit, Cycle cycle,
                 std::vector<pf::PrefetchRequest> &out) override;

    void notifyIssued(PC pc) override;
    void notifyUseful(PC pc) override;

    unsigned metadataWays() const override;

    void
    collectStats(pf::MarkovStats &markov, pf::OffchipMetadataStats &)
        const override
    {
        markov = table.stats();
    }

    void
    prefetchSets(Addr line_addr) const override
    {
        table.prefetchSets(line_addr);
    }

    std::string name() const override
    {
        return cfg.profilingMode ? "prophet-simplified" : "prophet";
    }

    /** PEBS-style counters gathered during this run. */
    const ProfileCollector &collector() const { return profileData; }

    /**
     * Finalize and return the profiling snapshot (wires the metadata
     * table's insertion/replacement PMU counters in).
     */
    ProfileSnapshot takeSnapshot();

    pf::MarkovTable &markovTable() { return table; }
    const pf::MarkovTable &markovTable() const { return table; }
    const MultiPathVictimBuffer &victimBuffer() const { return mvb; }
    const Csr &csr() const { return bin.csr; }
    const HintBuffer &hints() const { return bin.hints; }

  private:
    ProphetConfig cfg;
    OptimizedBinary bin;
    pf::MarkovTable table;
    pf::TrainingUnit trainer;
    MultiPathVictimBuffer mvb;
    ProfileCollector profileData;
    bool temporalOff = false;

    /** Effective degree (1 in profiling mode). */
    unsigned effectiveDegree() const;
};

} // namespace prophet::core

#endif // PROPHET_CORE_PROPHET_HH
