#include "core/mvb.hh"

#include "common/intmath.hh"
#include "common/log.hh"

namespace prophet::core
{

MultiPathVictimBuffer::MultiPathVictimBuffer(unsigned total_entries,
                                             unsigned candidates,
                                             unsigned ways)
    : numSets(total_entries / ways), numWays(ways),
      maxCandidates(candidates),
      slots(static_cast<std::size_t>(total_entries))
{
    prophet_assert(candidates >= 1);
    prophet_assert(ways >= candidates);
    prophet_assert(total_entries % ways == 0);
    prophet_assert(isPowerOf2(numSets));
}

unsigned
MultiPathVictimBuffer::setIndex(Addr key) const
{
    std::uint64_t h = key;
    h ^= h >> 16;
    h *= 0x45d9f3b3335b369ULL;
    h ^= h >> 19;
    return static_cast<unsigned>(h & (numSets - 1));
}

MultiPathVictimBuffer::Slot &
MultiPathVictimBuffer::at(unsigned set, unsigned way)
{
    return slots[static_cast<std::size_t>(set) * numWays + way];
}

void
MultiPathVictimBuffer::offer(const pf::MarkovTable::Entry &victim)
{
    if (!victim.valid)
        return;
    if (victim.priority == 0) {
        // Only targets with priority level > 0 (acc > EL_ACC) are
        // worth buffer space (Section 4.5, Insertion rule).
        ++statsData.rejectedLowPriority;
        return;
    }

    unsigned set = setIndex(victim.key);

    // Already buffered? Refresh its counter instead of duplicating.
    unsigned key_slots = 0;
    for (unsigned w = 0; w < numWays; ++w) {
        Slot &s = at(set, w);
        if (s.valid && s.key == victim.key) {
            if (s.target == victim.target) {
                if (s.counter < 3)
                    ++s.counter;
                return;
            }
            ++key_slots;
        }
    }

    // Victim choice: invalid slot first; otherwise the slot with the
    // smallest counter (the MVB reuses Prophet's replacement idea
    // with per-target counters as priorities). When this key already
    // holds `maxCandidates` targets, replace among its own slots so
    // one key cannot monopolize a set.
    int target_way = -1;
    std::uint8_t best_counter = 255;
    for (unsigned w = 0; w < numWays; ++w) {
        Slot &s = at(set, w);
        if (!s.valid && key_slots < maxCandidates) {
            target_way = static_cast<int>(w);
            break;
        }
        if (!s.valid)
            continue;
        bool same_key = s.key == victim.key;
        bool eligible = key_slots >= maxCandidates ? same_key : true;
        if (eligible && s.counter < best_counter) {
            best_counter = s.counter;
            target_way = static_cast<int>(w);
        }
    }
    if (target_way < 0)
        return;

    at(set, static_cast<unsigned>(target_way)) =
        Slot{victim.key, victim.target, 1, true};
    ++statsData.inserts;
}

void
MultiPathVictimBuffer::lookup(Addr key, Addr table_target,
                              std::vector<Addr> &out)
{
    ++statsData.lookups;
    unsigned set = setIndex(key);
    unsigned found = 0;
    for (unsigned w = 0; w < numWays && found < maxCandidates; ++w) {
        Slot &s = at(set, w);
        if (!s.valid || s.key != key)
            continue;
        if (s.counter < 3)
            ++s.counter;
        if (s.target == table_target)
            continue; // the table already supplies this path
        out.push_back(s.target);
        ++statsData.extraTargets;
        ++found;
    }
    if (found > 0)
        ++statsData.hits;
}

std::uint64_t
MultiPathVictimBuffer::storageBits() const
{
    return static_cast<std::uint64_t>(slots.size()) * 43;
}

} // namespace prophet::core
