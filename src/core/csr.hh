/**
 * @file
 * Application-level Control and Status Register (Sections 3.1, 4.2).
 * A CSR-manipulation instruction at program entry enables Prophet's
 * building blocks and configures the metadata-table size computed by
 * Eq. 3; "we completely disable temporal prefetching when the outcome
 * of the above equation is less than 0.5".
 */

#ifndef PROPHET_CORE_CSR_HH
#define PROPHET_CORE_CSR_HH

namespace prophet::core
{

/** The Prophet CSR contents injected at program start. */
struct Csr
{
    /** Prophet building blocks are active (vs pure runtime mode). */
    bool prophetEnabled = false;

    /** Eq. 3 outcome: LLC ways allocated to the metadata table. */
    unsigned metadataWays = 8;

    /** Eq. 3 outcome fell below 0.5 ways: disable temporal
     *  prefetching entirely. */
    bool temporalDisabled = false;
};

} // namespace prophet::core

#endif // PROPHET_CORE_CSR_HH
