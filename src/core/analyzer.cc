#include "core/analyzer.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/intmath.hh"
#include "common/log.hh"
#include "prefetch/metadata_format.hh"

namespace prophet::core
{

Analyzer::Analyzer(const AnalyzerConfig &config)
    : cfg(config)
{
    prophet_assert(cfg.nBits >= 1 && cfg.nBits <= 4);
    prophet_assert(cfg.elAcc >= 0.0 && cfg.elAcc < 1.0);
}

bool
Analyzer::insertionAllowed(double accuracy) const
{
    // Eq. 1: I(acc) = 1 iff acc >= EL_ACC.
    return accuracy >= cfg.elAcc;
}

std::uint8_t
Analyzer::priorityLevel(double accuracy) const
{
    // Eq. 2: level k covers [k/2^n, (k+1)/2^n), clamped to 2^n - 1.
    unsigned levels = 1u << cfg.nBits;
    auto level = static_cast<unsigned>(
        std::floor(accuracy * static_cast<double>(levels)));
    return static_cast<std::uint8_t>(std::min(level, levels - 1));
}

Csr
Analyzer::resize(std::uint64_t allocated_entries) const
{
    Csr csr;
    csr.prophetEnabled = true;

    // Round to the nearest power of two, capped at the entries a
    // 1 MB table accommodates (footnote 4).
    std::uint64_t target = roundNearestPowerOf2(allocated_entries);
    target = std::min<std::uint64_t>(
        target, static_cast<std::uint64_t>(cfg.llcSets)
            * cfg.maxWays * pf::kEntriesPerLine);

    std::uint64_t entries_per_way =
        static_cast<std::uint64_t>(cfg.llcSets) * pf::kEntriesPerLine;
    double ways_real = static_cast<double>(target)
        / static_cast<double>(entries_per_way);

    if (ways_real < 0.5) {
        csr.temporalDisabled = true;
        csr.metadataWays = 0;
        return csr;
    }
    csr.metadataWays = static_cast<unsigned>(std::min<std::uint64_t>(
        divCeil(target, entries_per_way), cfg.maxWays));
    return csr;
}

OptimizedBinary
Analyzer::analyze(const ProfileSnapshot &profile) const
{
    OptimizedBinary bin;
    bin.hints = HintBuffer(cfg.hintCapacity);

    // The hint buffer is limited: focus on the memory instructions
    // contributing the most cache misses (Section 4.4, selected with
    // the MEM_LOAD_RETIRED.L2_MISS event).
    std::vector<std::pair<PC, PcProfile>> by_misses(
        profile.perPc.begin(), profile.perPc.end());
    std::sort(by_misses.begin(), by_misses.end(),
              [](const auto &a, const auto &b) {
                  if (a.second.l2Misses != b.second.l2Misses)
                      return a.second.l2Misses > b.second.l2Misses;
                  return a.first < b.first; // deterministic ties
              });

    for (const auto &[pc, prof] : by_misses) {
        if (bin.hints.size() >= cfg.hintCapacity)
            break;
        Hint hint;
        bool enough_evidence =
            prof.issuedPrefetches >= cfg.minIssuedForFilter;
        hint.allowInsert =
            !enough_evidence || insertionAllowed(prof.accuracy);
        hint.priority =
            hint.allowInsert ? priorityLevel(prof.accuracy) : 0;
        bin.hints.install(pc, hint);
    }

    bin.csr = resize(profile.allocatedEntries);
    return bin;
}

} // namespace prophet::core
