#include "core/hint_encoding.hh"

namespace prophet::core
{

std::uint8_t
packHint(const Hint &hint)
{
    // Bit 0: insertion decision (Eq. 1); bits 1-2: priority (Eq. 2).
    return static_cast<std::uint8_t>((hint.allowInsert ? 1 : 0)
                                     | ((hint.priority & 0x3) << 1));
}

Hint
unpackHint(std::uint8_t bits)
{
    Hint h;
    h.allowInsert = (bits & 1) != 0;
    h.priority = static_cast<std::uint8_t>((bits >> 1) & 0x3);
    return h;
}

std::vector<HintInstruction>
encodeHintInstructions(const HintBuffer &hints)
{
    std::vector<HintInstruction> out;
    out.reserve(hints.size());
    for (const auto &[pc, hint] : hints)
        out.push_back(HintInstruction{pc, packHint(hint)});
    return out;
}

HintBuffer
decodeHintInstructions(const std::vector<HintInstruction> &insts,
                       unsigned capacity)
{
    HintBuffer hb(capacity);
    for (const auto &inst : insts)
        hb.install(inst.targetPc, unpackHint(inst.payload));
    return hb;
}

EncodingFootprint
footprintOf(HintEncoding encoding, std::size_t hint_count)
{
    EncodingFootprint fp;
    switch (encoding) {
      case HintEncoding::HintInstructions:
        // One instruction per hint, executed once at entry; the
        // hint buffer stores PC tag + 3-bit payload per entry.
        fp.staticInstructions = hint_count;
        fp.dynamicInstructions = hint_count;
        fp.codeBytes = hint_count * HintInstruction::encodedBytes;
        fp.bufferBits = hint_count * (16 + 3);
        break;
      case HintEncoding::InstructionPrefix:
        // No extra instructions; one prefix byte per hinted memory
        // instruction. The paper's I-cache figure counts the 3 hint
        // bits: 3 x 128 / 64 = 6 bytes of effective footprint.
        fp.staticInstructions = 0;
        fp.dynamicInstructions = 0;
        fp.codeBytes = (hint_count * 3 + 63) / 64;
        fp.bufferBits = 0;
        break;
    }
    return fp;
}

} // namespace prophet::core
