#include "core/profile.hh"

namespace prophet::core
{

ProfileSnapshot
ProfileCollector::snapshot() const
{
    ProfileSnapshot snap;
    snap.perPc.reserve(counters.size());
    for (const auto &[pc, c] : counters) {
        PcProfile p;
        p.accuracy = c.accuracy();
        p.issuedPrefetches = c.issuedPrefetches;
        p.l2Misses = c.l2Misses;
        snap.perPc.emplace(pc, p);
    }
    snap.allocatedEntries = tableInsertions >= tableReplacements
        ? tableInsertions - tableReplacements : 0;
    return snap;
}

void
ProfileCollector::reset()
{
    counters.clear();
    tableInsertions = 0;
    tableReplacements = 0;
}

} // namespace prophet::core
