/**
 * @file
 * Step 2: Analysis (Section 4.2). Offline processing of the profiling
 * counters into PC-level hints (insertion, Eq. 1; replacement
 * priority, Eq. 2) and the application-level resizing CSR (Eq. 3).
 * The result models the "new binary": a hint buffer image plus a CSR
 * value injected at program entry.
 */

#ifndef PROPHET_CORE_ANALYZER_HH
#define PROPHET_CORE_ANALYZER_HH

#include <cstdint>

#include "core/csr.hh"
#include "core/hint_buffer.hh"
#include "core/profile.hh"

namespace prophet::core
{

/** Analysis parameters (the Figure 16 sensitivity knobs). */
struct AnalyzerConfig
{
    /**
     * EL_ACC (Eq. 1): extremely-low accuracy threshold below which a
     * PC's demand requests are discarded. Default 0.15, the paper's
     * chosen middle value in Figure 16(a).
     */
    double elAcc = 0.15;

    /**
     * n (Eq. 2): replacement priorities use 2^n levels. Default 2
     * (2-bit Prophet Replacement State, Section 5.6).
     */
    unsigned nBits = 2;

    /** Hint-buffer capacity (top miss PCs are selected, §4.4). */
    unsigned hintCapacity = 128;

    /**
     * Minimum issued prefetches before the insertion filter may
     * condemn a PC; below this the profile carries too little
     * evidence and Prophet stays conservative ("filtering out only
     * metadata that is highly unlikely to originate from temporal
     * patterns").
     */
    std::uint64_t minIssuedForFilter = 32;

    /** LLC sets (Eq. 3 denominator via entries-per-way). */
    unsigned llcSets = 2048;

    /** Maximum metadata ways (1 MB cap, footnote 4). */
    unsigned maxWays = 8;
};

/** The "optimized binary": injected hints plus the entry CSR. */
struct OptimizedBinary
{
    HintBuffer hints{128};
    Csr csr{};
};

/**
 * The offline analysis pass.
 */
class Analyzer
{
  public:
    explicit Analyzer(const AnalyzerConfig &config = {});

    /** Generate hints + CSR from a (possibly merged) profile. */
    OptimizedBinary analyze(const ProfileSnapshot &profile) const;

    /** Eq. 1: insertion decision for an accuracy value. */
    bool insertionAllowed(double accuracy) const;

    /** Eq. 2: priority level for an accuracy value. */
    std::uint8_t priorityLevel(double accuracy) const;

    /** Eq. 3: ways for an allocated-entries count; sets
     *  temporalDisabled when the real-valued result is < 0.5. */
    Csr resize(std::uint64_t allocated_entries) const;

    const AnalyzerConfig &config() const { return cfg; }

  private:
    AnalyzerConfig cfg;
};

} // namespace prophet::core

#endif // PROPHET_CORE_ANALYZER_HH
