/**
 * @file
 * Multi-path Victim Buffer (Section 4.5, Figure 9). The same address
 * can participate in several temporal patterns — (A,B,C) and (A,B,D)
 * give B two Markov targets — but the metadata table stores one
 * target per entry. The MVB captures targets displaced from the
 * table (by replacement or by target overwrite) so that lookups can
 * prefetch the alternative paths too.
 *
 * Management rules from the paper:
 *  - Insertion: only targets whose Prophet priority level is > 0
 *    (accuracy above EL_ACC) are buffered.
 *  - Replacement: per-target 2-bit counters, incremented on access;
 *    the entry's priority is the maximal counter among its targets,
 *    and lowest-priority entries are evicted first (Prophet
 *    replacement policy reused).
 *  - Prefetch: every metadata-table lookup also searches the MVB
 *    with the same key; distinct targets found are prefetched.
 */

#ifndef PROPHET_CORE_MVB_HH
#define PROPHET_CORE_MVB_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "prefetch/markov_table.hh"

namespace prophet::core
{

/** MVB statistics. */
struct MvbStats
{
    std::uint64_t inserts = 0;
    std::uint64_t rejectedLowPriority = 0;
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t extraTargets = 0;
};

/**
 * The Multi-path Victim Buffer.
 */
class MultiPathVictimBuffer
{
  public:
    /**
     * @param total_entries Total target slots (65,536 in §5.10).
     * @param candidates Max distinct targets buffered per key
     *        (Figure 16(c) sweeps 1/2/4).
     * @param ways Set associativity in keys.
     */
    explicit MultiPathVictimBuffer(unsigned total_entries = 65536,
                                   unsigned candidates = 1,
                                   unsigned ways = 4);

    /**
     * Offer a displaced metadata entry (wired to
     * MarkovTable::setEvictionCallback). Rejected unless the entry's
     * priority level is > 0.
     */
    void offer(const pf::MarkovTable::Entry &victim);

    /**
     * Look up alternative targets for @p key, excluding
     * @p table_target (the target the metadata table itself
     * supplied). Appends at most `candidates` line addresses and
     * increments the matched targets' counters.
     */
    void lookup(Addr key, Addr table_target, std::vector<Addr> &out);

    const MvbStats &stats() const { return statsData; }
    void resetStats() { statsData = MvbStats{}; }

    /** Storage in bits: 43 per slot (31 target + 10 tag + 2 counter),
     *  §5.10. */
    std::uint64_t storageBits() const;

    /** Candidate capacity per key. */
    unsigned candidatesPerKey() const { return maxCandidates; }

  private:
    struct Slot
    {
        Addr key = kInvalidAddr;
        Addr target = kInvalidAddr;
        std::uint8_t counter = 0; ///< 2-bit reuse counter
        bool valid = false;
    };

    unsigned numSets;
    unsigned numWays;
    unsigned maxCandidates;
    std::vector<Slot> slots;
    MvbStats statsData;

    unsigned setIndex(Addr key) const;
    Slot &at(unsigned set, unsigned way);
};

} // namespace prophet::core

#endif // PROPHET_CORE_MVB_HH
