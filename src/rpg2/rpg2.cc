#include "rpg2/rpg2.hh"

namespace prophet::rpg2
{

void
Rpg2Plan::setDistance(std::int64_t distance)
{
    for (auto &[pc, k] : kernels)
        k.distance = distance;
}

std::vector<Addr>
Rpg2Plan::prefetchAddrs(PC pc, Addr addr,
                        const trace::IndirectResolver *resolver) const
{
    std::vector<Addr> out;
    prefetchAddrs(pc, addr, resolver, out);
    return out;
}

void
Rpg2Plan::prefetchAddrs(PC pc, Addr addr,
                        const trace::IndirectResolver *resolver,
                        std::vector<Addr> &out) const
{
    out.clear();
    auto it = kernels.find(pc);
    if (it == kernels.end())
        return;
    const ArmedKernel &k = it->second;

    // The kernel line `distance` iterations ahead (b[i + d]) ...
    std::int64_t kernel_target = static_cast<std::int64_t>(addr)
        + k.stride * k.distance;
    if (kernel_target > 0)
        out.push_back(static_cast<Addr>(kernel_target));

    // ... and the indirect target it selects (a[b[i + d]]).
    if (resolver) {
        if (auto t = resolver->resolve(pc, addr, k.distance))
            out.push_back(*t);
    }
}

Rpg2Plan
buildPlan(const std::vector<Kernel> &kernels,
          std::int64_t initial_distance)
{
    Rpg2Plan plan;
    for (const auto &k : kernels)
        plan.arm(k.pc, k.stride, initial_distance);
    return plan;
}

} // namespace prophet::rpg2
