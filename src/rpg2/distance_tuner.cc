#include "rpg2/distance_tuner.hh"

#include "common/log.hh"

namespace prophet::rpg2
{

TuneResult
tuneDistance(const std::function<double(std::int64_t)> &evaluate,
             const TunerConfig &cfg)
{
    prophet_assert(cfg.minDistance <= cfg.maxDistance);

    TuneResult result;
    auto eval = [&](std::int64_t d) {
        double ipc = evaluate(d);
        ++result.evaluations;
        if (ipc > result.bestIpc) {
            result.bestIpc = ipc;
            result.bestDistance = d;
        }
        return ipc;
    };

    std::int64_t lo = cfg.minDistance;
    std::int64_t hi = cfg.maxDistance;
    double ipc_lo = eval(lo);
    double ipc_hi = eval(hi);

    while (hi - lo > 1) {
        std::int64_t mid = lo + (hi - lo) / 2;
        double ipc_mid = eval(mid);
        // Move toward the better endpoint; keep the midpoint as the
        // new opposite bound.
        if (ipc_lo >= ipc_hi) {
            hi = mid;
            ipc_hi = ipc_mid;
        } else {
            lo = mid;
            ipc_lo = ipc_mid;
        }
    }
    return result;
}

} // namespace prophet::rpg2
