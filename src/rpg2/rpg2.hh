/**
 * @file
 * The RPG2 runtime: a software-prefetch plan (kernel PC -> stride,
 * distance) produced by kernel identification and distance tuning,
 * applied during simulation via the hint-buffer mechanism the paper
 * uses to emulate inserted prefetch instructions (Section 5.1: "we
 * record the PC of identified memory instructions along with an
 * initial prefetch distance in the hint buffer. Upon encountering
 * recorded PCs, we issue a prefetch request").
 */

#ifndef PROPHET_RPG2_RPG2_HH
#define PROPHET_RPG2_RPG2_HH

#include <cstdint>
#include <vector>

#include "common/flat_map.hh"
#include "rpg2/kernel_id.hh"
#include "trace/generator.hh"

namespace prophet::rpg2
{

/** One armed software-prefetch site. */
struct ArmedKernel
{
    std::int64_t stride = 0;
    std::int64_t distance = 8;
};

/**
 * The software-prefetch plan the simulator consults on every demand
 * access: for a recorded kernel PC, the addresses an inserted
 * prefetch sequence would touch are (a) the kernel line `distance`
 * strides ahead and (b) the resolved indirect target at that
 * distance.
 */
class Rpg2Plan
{
  public:
    Rpg2Plan() = default;

    /** Arm a kernel with a distance. */
    void
    arm(PC pc, std::int64_t stride, std::int64_t distance)
    {
        kernels[pc] = ArmedKernel{stride, distance};
    }

    /** Change every armed kernel's distance (tuning step). */
    void setDistance(std::int64_t distance);

    /** True when no kernels qualified (mcf/omnetpp/soplex case). */
    bool empty() const { return kernels.empty(); }

    std::size_t size() const { return kernels.size(); }

    /**
     * Addresses the inserted prefetch code would issue for a demand
     * access at (pc, addr); empty when pc is not an armed kernel.
     */
    std::vector<Addr> prefetchAddrs(
        PC pc, Addr addr, const trace::IndirectResolver *resolver) const;

    /**
     * Allocation-free variant for the record loop: appends into a
     * caller-owned scratch buffer (cleared first).
     */
    void prefetchAddrs(PC pc, Addr addr,
                       const trace::IndirectResolver *resolver,
                       std::vector<Addr> &out) const;

  private:
    FlatMap<PC, ArmedKernel> kernels;
};

/** Build an (untuned) plan from identified kernels. */
Rpg2Plan buildPlan(const std::vector<Kernel> &kernels,
                   std::int64_t initial_distance = 8);

} // namespace prophet::rpg2

#endif // PROPHET_RPG2_RPG2_HH
