/**
 * @file
 * RPG2's prefetch-distance tuning: a binary search over candidate
 * distances that maximizes measured IPC (Section 5.1: "we tune the
 * distance using RPG2's binary search method and record the
 * performance with the optimal distance as the final report").
 *
 * The tuner is evaluation-agnostic: it calls back into a
 * caller-provided IPC oracle (in practice, a simulator run with the
 * candidate distance installed), mirroring RPG2's online
 * measure-and-adjust loop.
 */

#ifndef PROPHET_RPG2_DISTANCE_TUNER_HH
#define PROPHET_RPG2_DISTANCE_TUNER_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace prophet::rpg2
{

/** Result of a tuning session. */
struct TuneResult
{
    std::int64_t bestDistance = 0;
    double bestIpc = 0.0;
    unsigned evaluations = 0;
};

/** Tuning parameters. */
struct TunerConfig
{
    std::int64_t minDistance = 1;
    std::int64_t maxDistance = 64;
};

/**
 * Binary search over the distance range: evaluate the endpoints and
 * midpoint, then repeatedly halve toward the better-performing side,
 * exactly the shape of RPG2's runtime search.
 *
 * @param evaluate Maps a candidate distance to measured IPC.
 */
TuneResult tuneDistance(
    const std::function<double(std::int64_t)> &evaluate,
    const TunerConfig &cfg = {});

} // namespace prophet::rpg2

#endif // PROPHET_RPG2_DISTANCE_TUNER_HH
