/**
 * @file
 * RPG2 kernel identification (Zhang et al., ASPLOS'24; Section 5.1 of
 * the Prophet paper): find memory instructions that (a) cause at
 * least 10% of cache misses, (b) whose own access stream follows a
 * stride pattern (the prefetch kernel b[i]), and (c) whose indirect
 * consumer the runtime can compute (an IndirectResolver exists).
 * Only such kernels are within RPG2's reach — pointer chasing and
 * computed kernels are not, which is the limitation the paper's
 * Section 2.2 analyzes.
 */

#ifndef PROPHET_RPG2_KERNEL_ID_HH
#define PROPHET_RPG2_KERNEL_ID_HH

#include <cstdint>
#include <vector>

#include "common/flat_map.hh"
#include "trace/generator.hh"
#include "trace/trace.hh"

namespace prophet::rpg2
{

/** One identified prefetch kernel. */
struct Kernel
{
    PC pc = kInvalidPC;

    /** Dominant byte stride of the kernel's access stream. */
    std::int64_t stride = 0;

    /** Fraction of the PC's deltas matching the dominant stride. */
    double strideCoverage = 0.0;

    /** Fraction of all profiled L2 misses attributed to this PC. */
    double missShare = 0.0;
};

/** Kernel-identification parameters (RPG2 defaults). */
struct KernelIdConfig
{
    /** Minimum share of total misses (the paper's 10%). */
    double minMissShare = 0.10;

    /** Minimum fraction of stride-matching deltas. */
    double minStrideCoverage = 0.85;

    /** Minimum dynamic accesses before a PC is considered. */
    std::uint64_t minAccesses = 256;
};

/**
 * Identify RPG2-qualified kernels in a trace.
 *
 * @param t The profiled trace.
 * @param pc_misses Per-PC L2 miss counts from a profiling run.
 * @param resolver The workload's indirect resolver (nullptr when the
 *        workload exposes none — then no kernel qualifies, as for
 *        mcf/omnetpp/soplex in the paper).
 */
std::vector<Kernel> identifyKernels(
    const trace::Trace &t,
    const FlatMap<PC, std::uint64_t> &pc_misses,
    const trace::IndirectResolver *resolver,
    const KernelIdConfig &cfg = {});

} // namespace prophet::rpg2

#endif // PROPHET_RPG2_KERNEL_ID_HH
