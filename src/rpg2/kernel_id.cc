#include "rpg2/kernel_id.hh"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace prophet::rpg2
{

std::vector<Kernel>
identifyKernels(const trace::Trace &t,
                const FlatMap<PC, std::uint64_t> &pc_misses,
                const trace::IndirectResolver *resolver,
                const KernelIdConfig &cfg)
{
    std::vector<Kernel> kernels;
    if (!resolver)
        return kernels;

    std::uint64_t total_misses = 0;
    for (const auto &[pc, misses] : pc_misses)
        total_misses += misses;
    if (total_misses == 0)
        return kernels;

    // Per-PC stride statistics over the trace, plus the dependent
    // consumer that follows each PC (the indirect load a[b[i]] whose
    // misses the kernel's prefetches would cover).
    struct PcStat
    {
        Addr last = kInvalidAddr;
        std::uint64_t accesses = 0;
        std::map<std::int64_t, std::uint64_t> deltas;
        PC consumer = kInvalidPC;
    };
    // The scan reads the trace's SoA arrays directly: this pass only
    // needs PCs, byte addresses, and the depends flag, so it streams
    // those arrays instead of dragging whole records through cache.
    const std::size_t n = t.size();
    const PC *pcs = t.pcData();
    const Addr *addrs = t.addrData();
    const std::uint32_t *metas = t.metaData();

    std::unordered_map<PC, PcStat> stats;
    for (std::size_t i = 0; i < n; ++i) {
        const PC pc = pcs[i];
        PcStat &s = stats[pc];
        ++s.accesses;
        if (s.last != kInvalidAddr) {
            auto d = static_cast<std::int64_t>(addrs[i])
                - static_cast<std::int64_t>(s.last);
            if (d != 0)
                ++s.deltas[d];
        }
        s.last = addrs[i];
        // Find this PC's dependent consumer within a short forward
        // window (other accesses, e.g. edge weights, may interleave
        // between the kernel load and the indirect use).
        if (s.consumer == kInvalidPC) {
            for (std::size_t j = i + 1; j < n && j <= i + 4; ++j) {
                if (pcs[j] == pc)
                    break;
                if (trace::Trace::dependsOf(metas[j])
                    && pcs[j] != pc) {
                    s.consumer = pcs[j];
                    break;
                }
            }
        }
    }

    for (const auto &[pc, s] : stats) {
        if (s.accesses < cfg.minAccesses || s.deltas.empty())
            continue;

        // Miss share counts the kernel's own misses plus its
        // dependent consumer's: the prefetch covers both the kernel
        // line and the indirect target.
        std::uint64_t misses = 0;
        if (auto it = pc_misses.find(pc); it != pc_misses.end())
            misses += it->second;
        if (s.consumer != kInvalidPC) {
            if (auto it = pc_misses.find(s.consumer);
                it != pc_misses.end())
                misses += it->second;
        }
        double share = static_cast<double>(misses)
            / static_cast<double>(total_misses);
        std::int64_t best_delta = 0;
        std::uint64_t best_count = 0, delta_total = 0;
        for (const auto &[d, c] : s.deltas) {
            delta_total += c;
            if (c > best_count) {
                best_count = c;
                best_delta = d;
            }
        }
        double coverage = static_cast<double>(best_count)
            / static_cast<double>(delta_total);

        if (coverage < cfg.minStrideCoverage)
            continue;

        // The runtime must be able to compute the indirect target.
        auto probe = resolver->resolve(pc, addrs[0], 0);
        bool resolvable = false;
        // Probe with an address actually from this PC.
        for (std::size_t i = 0; i < n; ++i) {
            if (pcs[i] == pc) {
                resolvable =
                    resolver->resolve(pc, addrs[i], 1).has_value();
                break;
            }
        }
        (void)probe;
        if (!resolvable)
            continue;

        if (share < cfg.minMissShare)
            continue;

        kernels.push_back(Kernel{pc, best_delta, coverage, share});
    }

    std::sort(kernels.begin(), kernels.end(),
              [](const Kernel &a, const Kernel &b) {
                  return a.missShare > b.missShare;
              });
    return kernels;
}

} // namespace prophet::rpg2
