/**
 * @file
 * Named scalar counters. The simulator's statistics are plain
 * integers grouped in structs; this header provides a tiny registry
 * used where a dynamic set of named counters is convenient (e.g. the
 * PMU-style counter dump in Prophet's profiler).
 */

#ifndef PROPHET_STATS_COUNTER_HH
#define PROPHET_STATS_COUNTER_HH

#include <cstdint>
#include <map>
#include <string>

namespace prophet::stats
{

/**
 * A group of named monotonically increasing counters, in the spirit
 * of a PMU counter file. Lookup creates counters on demand.
 */
class CounterGroup
{
  public:
    /** Access (and create if absent) the counter with this name. */
    std::uint64_t &
    operator[](const std::string &name)
    {
        return counters[name];
    }

    /** Read a counter; returns 0 if it was never touched. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters.find(name);
        return it == counters.end() ? 0 : it->second;
    }

    /** Number of distinct counters. */
    std::size_t size() const { return counters.size(); }

    /** Reset all counters to zero (keeps names). */
    void
    reset()
    {
        for (auto &kv : counters)
            kv.second = 0;
    }

    /** Iteration support for reporting. */
    auto begin() const { return counters.begin(); }
    auto end() const { return counters.end(); }

  private:
    std::map<std::string, std::uint64_t> counters;
};

} // namespace prophet::stats

#endif // PROPHET_STATS_COUNTER_HH
