/**
 * @file
 * Aggregation helpers for the evaluation harness: geometric means for
 * speedup figures and weighted means for checkpoint aggregation.
 */

#ifndef PROPHET_STATS_SUMMARY_HH
#define PROPHET_STATS_SUMMARY_HH

#include <vector>

namespace prophet::stats
{

/**
 * Geometric mean of strictly positive values. Returns 0 for an empty
 * input. Used for the "Geomean" bar in every speedup figure.
 */
double geomean(const std::vector<double> &values);

/**
 * Weighted arithmetic mean; weights need not be normalized. Returns 0
 * if the weights sum to zero. Used to aggregate SimPoint-style
 * checkpoint results.
 */
double weightedMean(const std::vector<double> &values,
                    const std::vector<double> &weights);

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &values);

} // namespace prophet::stats

#endif // PROPHET_STATS_SUMMARY_HH
