#include "stats/summary.hh"

#include <cmath>

#include "common/log.hh"

namespace prophet::stats
{

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        prophet_assert(v > 0.0);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
weightedMean(const std::vector<double> &values,
             const std::vector<double> &weights)
{
    prophet_assert(values.size() == weights.size());
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        num += values[i] * weights[i];
        den += weights[i];
    }
    return den == 0.0 ? 0.0 : num / den;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double s = 0.0;
    for (double v : values)
        s += v;
    return s / static_cast<double>(values.size());
}

} // namespace prophet::stats
