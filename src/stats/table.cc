#include "stats/table.hh"

#include <cstdio>
#include <sstream>

#include "common/log.hh"

namespace prophet::stats
{

Table::Table(std::vector<std::string> header)
    : headerRow(std::move(header))
{
    prophet_assert(!headerRow.empty());
}

void
Table::addRow(std::vector<std::string> row)
{
    prophet_assert(row.size() == headerRow.size());
    rows.push_back(std::move(row));
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headerRow.size(), 0);
    for (std::size_t c = 0; c < headerRow.size(); ++c)
        widths[c] = headerRow[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](std::ostringstream &os,
                        const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "" : "  ");
            os << row[c];
            for (std::size_t p = row[c].size(); p < widths[c]; ++p)
                os << ' ';
        }
        os << '\n';
    };

    std::ostringstream os;
    emit_row(os, headerRow);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c == 0 ? 0 : 2);
    for (std::size_t i = 0; i < total; ++i)
        os << '-';
    os << '\n';
    for (const auto &row : rows)
        emit_row(os, row);
    return os.str();
}

} // namespace prophet::stats
