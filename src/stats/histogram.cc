#include "stats/histogram.hh"

#include "common/log.hh"

namespace prophet::stats
{

Histogram::Histogram(std::size_t num_buckets)
    : buckets(num_buckets, 0)
{
    prophet_assert(num_buckets >= 1);
}

void
Histogram::add(std::uint64_t sample)
{
    std::size_t idx = sample < buckets.size()
        ? static_cast<std::size_t>(sample) : buckets.size() - 1;
    ++buckets[idx];
    ++totalSamples;
    sum += sample < buckets.size() ? sample : buckets.size() - 1;
}

std::uint64_t
Histogram::bucket(std::size_t i) const
{
    prophet_assert(i < buckets.size());
    return buckets[i];
}

double
Histogram::fraction(std::size_t i) const
{
    if (totalSamples == 0)
        return 0.0;
    return static_cast<double>(bucket(i))
        / static_cast<double>(totalSamples);
}

double
Histogram::mean() const
{
    if (totalSamples == 0)
        return 0.0;
    return static_cast<double>(sum) / static_cast<double>(totalSamples);
}

void
Histogram::reset()
{
    for (auto &b : buckets)
        b = 0;
    totalSamples = 0;
    sum = 0;
}

} // namespace prophet::stats
