/**
 * @file
 * Simple integer histogram used for reuse-distance distributions and
 * the Markov-target-count distribution of Figure 8.
 */

#ifndef PROPHET_STATS_HISTOGRAM_HH
#define PROPHET_STATS_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace prophet::stats
{

/**
 * Histogram over non-negative integer samples with a saturating
 * overflow bucket. Bucket i counts samples equal to i; samples >=
 * numBuckets land in the last bucket.
 */
class Histogram
{
  public:
    /** Construct with the given number of exact buckets (>= 1). */
    explicit Histogram(std::size_t num_buckets);

    /** Record one sample. */
    void add(std::uint64_t sample);

    /** Count in bucket i (i < numBuckets()). */
    std::uint64_t bucket(std::size_t i) const;

    /** Total samples recorded. */
    std::uint64_t total() const { return totalSamples; }

    /** Number of buckets, including the overflow bucket. */
    std::size_t numBuckets() const { return buckets.size(); }

    /** Fraction of samples in bucket i; 0 if the histogram is empty. */
    double fraction(std::size_t i) const;

    /** Mean of recorded samples (overflow samples counted at cap). */
    double mean() const;

    /** Reset all buckets. */
    void reset();

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t totalSamples = 0;
    std::uint64_t sum = 0;
};

} // namespace prophet::stats

#endif // PROPHET_STATS_HISTOGRAM_HH
