/**
 * @file
 * Aligned text-table rendering for benchmark output. Each bench binary
 * prints the rows/series its paper figure reports; this class keeps
 * that output readable and uniform.
 */

#ifndef PROPHET_STATS_TABLE_HH
#define PROPHET_STATS_TABLE_HH

#include <string>
#include <vector>

namespace prophet::stats
{

/**
 * A simple column-aligned table. Populate a header and rows of string
 * cells, then render. Numeric helpers format doubles consistently.
 */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> header);

    /** Append a row; must have exactly as many cells as the header. */
    void addRow(std::vector<std::string> row);

    /** Format a double with the given precision (default 3). */
    static std::string fmt(double v, int precision = 3);

    /** Render the table with aligned columns and a separator line. */
    std::string render() const;

    /** Number of data rows. */
    std::size_t numRows() const { return rows.size(); }

  private:
    std::vector<std::string> headerRow;
    std::vector<std::vector<std::string>> rows;
};

} // namespace prophet::stats

#endif // PROPHET_STATS_TABLE_HH
