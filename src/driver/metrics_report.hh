/**
 * @file
 * Renders one driver run's observability data — the full metrics
 * registry, per-phase timings, thread-pool utilization, peak RSS,
 * and per-job timings — as a single JSON document (the --metrics-out
 * file). Lives in driver/ rather than common/ because it composes
 * driver::json and the ExperimentReport; the registry itself stays
 * dependency-free in common/.
 */

#ifndef PROPHET_DRIVER_METRICS_REPORT_HH
#define PROPHET_DRIVER_METRICS_REPORT_HH

#include <string>

#include "driver/driver.hh"
#include "driver/json.hh"

namespace prophet::driver
{

/**
 * Build the metrics document for a finished run: run metadata from
 * @p report, every counter/gauge/histogram in the metrics registry,
 * a "phases" summary derived from the "phase.*_ns" histograms, the
 * thread-pool utilization, peak RSS, and one "jobs" entry per
 * JobResult.
 */
json::Value buildMetricsReport(const ExperimentReport &report);

/**
 * Current peak resident set size of this process in bytes (0 when
 * the platform cannot report it).
 */
std::uint64_t peakRssBytes();

/**
 * Write buildMetricsReport() to @p path. Returns false (after a
 * warning on stderr) when the file cannot be written.
 */
bool writeMetricsReport(const ExperimentReport &report,
                        const std::string &path);

} // namespace prophet::driver

#endif // PROPHET_DRIVER_METRICS_REPORT_HH
