/**
 * @file
 * Pluggable result sinks for the experiment driver. The driver feeds
 * every (workload x pipeline) result in deterministic spec order —
 * never completion order — then finishes with run metadata, so a
 * sink's output is bit-identical across thread counts.
 *
 *   table — the human-readable per-metric tables with a Geomean row
 *           (the same numbers the figure benches print);
 *   json  — one machine-readable document with full RunStats per
 *           job plus run metadata, for perf tracking;
 *   csv   — one row per job, for spreadsheets.
 */

#ifndef PROPHET_DRIVER_SINK_HH
#define PROPHET_DRIVER_SINK_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "driver/spec.hh"
#include "sim/system.hh"

namespace prophet::driver
{

/** Metadata about one driver run, written by every file sink. */
struct RunMeta
{
    std::string specName;
    std::uint64_t specHash = 0;
    std::size_t records = 0;   ///< trace-length override (0=default)
    unsigned threads = 1;
    double wallSeconds = 0.0;
    std::string timestamp;     ///< ISO-8601 UTC
    std::uint64_t traceCacheHits = 0;
    std::uint64_t traceCacheMisses = 0;

    /**
     * Cumulative phase wall time across all jobs (summed over
     * workers, so on N threads these can exceed wallSeconds). Pulled
     * from the "phase.trace_load_ns" / "phase.warmup_ns" /
     * "phase.simulate_ns" registry histograms at the end of the run.
     */
    double traceLoadSeconds = 0.0;
    double simulateSeconds = 0.0;
};

/** One (workload, pipeline) job: its stats, or why it failed. */
struct JobResult
{
    std::string workload;
    std::string pipeline;
    sim::RunStats stats; ///< zeroed when !ok
    /** (metric name, value) in the spec's metric order; empty on
     *  failure. */
    std::vector<std::pair<std::string, double>> metrics;

    /** False when the job failed (or was skipped by fail-fast). */
    bool ok = true;

    /** Failure classification (Ok when the job succeeded). */
    ErrorCode errorCode = ErrorCode::Ok;
    std::string errorMessage;

    /** Simulation attempts (> 1 after transient-error retries). */
    unsigned attempts = 1;

    /**
     * Replayed from the resume journal rather than simulated. The
     * sinks never render it (a resumed run's output must stay
     * byte-identical to a from-scratch run); metrics.json's "jobs"
     * section reports it for observability.
     */
    bool resumed = false;

    /**
     * Wall time of this job's final attempt, including retry backoff
     * sleeps. Diagnostics only (metrics.json "jobs" section): the
     * sinks never render it, so their outputs stay deterministic.
     */
    double seconds = 0.0;
};

/** A result consumer. result() calls arrive in spec order. */
class Sink
{
  public:
    virtual ~Sink() = default;

    /** One job's result (workload-major, pipeline-minor order). */
    virtual void result(const JobResult &r) = 0;

    /**
     * All results delivered; render/write output. Returns false on
     * failure (e.g. an unwritable file) so the driver can surface a
     * nonzero exit instead of silently dropping archived results.
     */
    virtual bool finish(const ExperimentSpec &spec,
                        const RunMeta &meta) = 0;
};

/** Instantiate the sink a SinkSpec requests. */
std::unique_ptr<Sink> makeSink(const SinkSpec &spec);

/**
 * The same sink, but rendering into @p out instead of stdout/its
 * file: finish() assigns the byte-identical text the plain sink
 * would have emitted, touches no file, and prints no "wrote ..."
 * note. The serve daemon uses this to ship a request's rendered
 * sinks back in the response frame — the client, not the daemon,
 * then writes them where the spec said. @p out must outlive the
 * sink's finish().
 */
std::unique_ptr<Sink> makeCapturingSink(const SinkSpec &spec,
                                        std::string *out);

/** Figure-style heading for a metric ("speedup" ->
 *  "Performance Speedup"). */
std::string metricDisplayName(const std::string &metric);

} // namespace prophet::driver

#endif // PROPHET_DRIVER_SINK_HH
