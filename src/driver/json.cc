#include "driver/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace prophet::driver::json
{

const Value *
Value::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : objVal)
        if (k == key)
            return &v;
    return nullptr;
}

namespace
{

/** Recursive-descent parser over a raw character range. */
class Parser
{
  public:
    Parser(const char *begin, const char *end)
        : cur(begin), end(end)
    {}

    bool
    run(Value &out, std::string *err)
    {
        bool ok = parseValue(out) && expectEnd();
        if (!ok && err)
            *err = error;
        return ok;
    }

  private:
    /** Recursion bound: a hostile or garbage file must produce a
     *  parse error, not a stack overflow. Real specs nest ~3 deep. */
    static constexpr int kMaxDepth = 256;

    const char *cur;
    const char *end;
    std::size_t line = 1;
    std::size_t col = 1;
    int depth = 0;
    std::string error;

    bool
    fail(const std::string &reason)
    {
        if (error.empty())
            error = "line " + std::to_string(line) + ", column "
                + std::to_string(col) + ": " + reason;
        return false;
    }

    bool atEnd() const { return cur == end; }
    char peek() const { return *cur; }

    char
    advance()
    {
        char c = *cur++;
        if (c == '\n') {
            ++line;
            col = 1;
        } else {
            ++col;
        }
        return c;
    }

    void
    skipWs()
    {
        while (!atEnd()) {
            char c = peek();
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                advance();
            } else if (c == '/' && end - cur >= 2 && cur[1] == '/') {
                while (!atEnd() && peek() != '\n')
                    advance();
            } else {
                break;
            }
        }
    }

    bool
    expectEnd()
    {
        skipWs();
        if (!atEnd())
            return fail("trailing characters after JSON value");
        return true;
    }

    bool
    consume(char want, const char *what)
    {
        skipWs();
        if (atEnd() || peek() != want)
            return fail(std::string("expected ") + what);
        advance();
        return true;
    }

    bool
    literal(const char *word, std::size_t len)
    {
        if (static_cast<std::size_t>(end - cur) < len)
            return false;
        for (std::size_t i = 0; i < len; ++i)
            if (cur[i] != word[i])
                return false;
        for (std::size_t i = 0; i < len; ++i)
            advance();
        return true;
    }

    bool
    parseValue(Value &out)
    {
        skipWs();
        if (atEnd())
            return fail("unexpected end of input");
        if (depth >= kMaxDepth)
            return fail("nesting deeper than "
                        + std::to_string(kMaxDepth) + " levels");
        char c = peek();
        switch (c) {
          case '{': {
            ++depth;
            bool ok = parseObject(out);
            --depth;
            return ok;
          }
          case '[': {
            ++depth;
            bool ok = parseArray(out);
            --depth;
            return ok;
          }
          case '"':
            return parseString(out);
          case 't':
            if (literal("true", 4)) {
                out = Value(true);
                return true;
            }
            return fail("invalid literal");
          case 'f':
            if (literal("false", 5)) {
                out = Value(false);
                return true;
            }
            return fail("invalid literal");
          case 'n':
            if (literal("null", 4)) {
                out = Value();
                return true;
            }
            return fail("invalid literal");
          default:
            if (c == '-' || (c >= '0' && c <= '9'))
                return parseNumber(out);
            return fail("unexpected character");
        }
    }

    bool
    parseNumber(Value &out)
    {
        const char *start = cur;
        if (!atEnd() && peek() == '-')
            advance();
        if (atEnd() || peek() < '0' || peek() > '9')
            return fail("malformed number");
        while (!atEnd()
               && ((peek() >= '0' && peek() <= '9') || peek() == '.'
                   || peek() == 'e' || peek() == 'E' || peek() == '+'
                   || peek() == '-'))
            advance();
        std::string text(start, cur);
        char *parsed_end = nullptr;
        double v = std::strtod(text.c_str(), &parsed_end);
        if (parsed_end != text.c_str() + text.size()
            || !std::isfinite(v))
            return fail("malformed number");
        out = Value(v);
        return true;
    }

    bool
    parseString(Value &out)
    {
        std::string s;
        if (!parseStringRaw(s))
            return false;
        out = Value(std::move(s));
        return true;
    }

    bool
    parseStringRaw(std::string &s)
    {
        skipWs();
        if (atEnd() || peek() != '"')
            return fail("expected string");
        advance();
        while (true) {
            if (atEnd())
                return fail("unterminated string");
            char c = advance();
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                s.push_back(c);
                continue;
            }
            if (atEnd())
                return fail("unterminated escape");
            char e = advance();
            switch (e) {
              case '"': s.push_back('"'); break;
              case '\\': s.push_back('\\'); break;
              case '/': s.push_back('/'); break;
              case 'b': s.push_back('\b'); break;
              case 'f': s.push_back('\f'); break;
              case 'n': s.push_back('\n'); break;
              case 'r': s.push_back('\r'); break;
              case 't': s.push_back('\t'); break;
              case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    if (atEnd())
                        return fail("truncated \\u escape");
                    char h = advance();
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad hex digit in \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs
                // are not needed for spec files; a lone surrogate
                // encodes as-is, matching lenient parsers).
                if (code < 0x80) {
                    s.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    s.push_back(static_cast<char>(0xc0 | (code >> 6)));
                    s.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    s.push_back(static_cast<char>(0xe0 | (code >> 12)));
                    s.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f)));
                    s.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
              }
              default:
                return fail("unknown escape character");
            }
        }
    }

    bool
    parseArray(Value &out)
    {
        if (!consume('[', "'['"))
            return false;
        out = Value::makeArray();
        skipWs();
        if (!atEnd() && peek() == ']') {
            advance();
            return true;
        }
        while (true) {
            skipWs();
            if (!atEnd() && peek() == ']') { // trailing comma
                advance();
                return true;
            }
            Value elem;
            if (!parseValue(elem))
                return false;
            out.push(std::move(elem));
            skipWs();
            if (atEnd())
                return fail("unterminated array");
            if (peek() == ',') {
                advance();
                continue;
            }
            if (peek() == ']') {
                advance();
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseObject(Value &out)
    {
        if (!consume('{', "'{'"))
            return false;
        out = Value::makeObject();
        skipWs();
        if (!atEnd() && peek() == '}') {
            advance();
            return true;
        }
        while (true) {
            skipWs();
            if (!atEnd() && peek() == '}') { // trailing comma
                advance();
                return true;
            }
            std::string key;
            if (!parseStringRaw(key))
                return false;
            if (out.find(key))
                return fail("duplicate object key \"" + key + "\"");
            if (!consume(':', "':' after object key"))
                return false;
            Value member;
            if (!parseValue(member))
                return false;
            out.set(std::move(key), std::move(member));
            skipWs();
            if (atEnd())
                return fail("unterminated object");
            if (peek() == ',') {
                advance();
                continue;
            }
            if (peek() == '}') {
                advance();
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }
};

void
dumpString(const std::string &s, std::string &out)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
dumpNumber(double v, std::string &out)
{
    char buf[32];
    // Integral doubles inside the exactly-representable range print
    // as integers (counters, record counts); others as %.17g, which
    // round-trips any double through strtod.
    constexpr double kExact = 9007199254740992.0; // 2^53
    if (std::nearbyint(v) == v && std::fabs(v) < kExact) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    out += buf;
}

void
dumpImpl(const Value &v, int indent, int depth, std::string &out)
{
    auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out.push_back('\n');
        out.append(static_cast<std::size_t>(indent * d), ' ');
    };
    switch (v.kind()) {
      case Value::Kind::Null:
        out += "null";
        break;
      case Value::Kind::Bool:
        out += v.asBool() ? "true" : "false";
        break;
      case Value::Kind::Number:
        dumpNumber(v.asNumber(), out);
        break;
      case Value::Kind::String:
        dumpString(v.asString(), out);
        break;
      case Value::Kind::Array: {
        if (v.asArray().empty()) {
            out += "[]";
            break;
        }
        out.push_back('[');
        bool first = true;
        for (const auto &elem : v.asArray()) {
            if (!first)
                out.push_back(',');
            first = false;
            newline(depth + 1);
            dumpImpl(elem, indent, depth + 1, out);
        }
        newline(depth);
        out.push_back(']');
        break;
      }
      case Value::Kind::Object: {
        if (v.asObject().empty()) {
            out += "{}";
            break;
        }
        out.push_back('{');
        bool first = true;
        for (const auto &[key, member] : v.asObject()) {
            if (!first)
                out.push_back(',');
            first = false;
            newline(depth + 1);
            dumpString(key, out);
            out.push_back(':');
            if (indent > 0)
                out.push_back(' ');
            dumpImpl(member, indent, depth + 1, out);
        }
        newline(depth);
        out.push_back('}');
        break;
      }
    }
}

} // anonymous namespace

bool
parse(const std::string &text, Value &out, std::string *err)
{
    Parser p(text.data(), text.data() + text.size());
    return p.run(out, err);
}

std::string
dump(const Value &v, int indent)
{
    std::string out;
    dumpImpl(v, indent, 0, out);
    if (indent > 0)
        out.push_back('\n');
    return out;
}

} // namespace prophet::driver::json
