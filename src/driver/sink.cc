#include "driver/sink.hh"

#include <cstdarg>
#include <cstdio>
#include <fstream>

#include "common/log.hh"
#include "stats/summary.hh"
#include "stats/table.hh"

namespace prophet::driver
{

namespace
{

/**
 * printf-append into a string — the table sink renders through this
 * so one code path feeds both stdout and the serve daemon's captured
 * response bytes, and the two cannot drift.
 */
void
appendf(std::string &out, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n > 0) {
        const std::size_t old = out.size();
        out.resize(old + static_cast<std::size_t>(n) + 1);
        std::vsnprintf(&out[old], static_cast<std::size_t>(n) + 1,
                       fmt, ap2);
        out.resize(old + static_cast<std::size_t>(n));
    }
    va_end(ap2);
}

/** Metric value for a job (metrics are precomputed by the driver). */
double
metricValue(const JobResult &r, const std::string &metric)
{
    for (const auto &[name, value] : r.metrics)
        if (name == metric)
            return value;
    prophet_panic("job result missing a spec metric");
}

/**
 * stdout tables, one per metric: workloads as rows, pipelines as
 * columns, plus the figures' Geomean row (geomean over the positive
 * values only — the same rule bench_util applies, so a pipeline
 * stuck at zero reports 0 instead of poisoning the mean).
 */
class TableSink : public Sink
{
  public:
    explicit TableSink(std::string *capture = nullptr)
        : capture(capture)
    {
    }

    void
    result(const JobResult &r) override
    {
        results.push_back(r);
    }

    bool
    finish(const ExperimentSpec &spec, const RunMeta &meta) override
    {
        std::string out;
        appendf(out,
                "\n== %s: %zu workload%s x %zu pipeline%s "
                "(records=%zu, threads=%u, spec %016llx) ==\n\n",
                spec.name.c_str(), spec.workloads.size(),
                spec.workloads.size() == 1 ? "" : "s",
                spec.pipelines.size(),
                spec.pipelines.size() == 1 ? "" : "s", meta.records,
                meta.threads,
                static_cast<unsigned long long>(meta.specHash));
        for (const auto &metric : spec.metrics)
            printMetric(out, spec, metric);
        printFailures(out);
        // Cumulative phase split from the metrics registry: summed
        // over workers, so the parenthesis can exceed the wall time
        // on multiple threads. Golden-output comparisons already
        // exclude the "wall-clock: " line (its value is nondeterministic),
        // so extending it costs no byte-identity.
        appendf(out,
                "wall-clock: %.2f s (trace-load %.2f s, "
                "simulate %.2f s across %u thread%s)\n",
                meta.wallSeconds, meta.traceLoadSeconds,
                meta.simulateSeconds, meta.threads,
                meta.threads == 1 ? "" : "s");
        if (capture)
            *capture = std::move(out);
        else
            std::fwrite(out.data(), 1, out.size(), stdout);
        return true;
    }

  private:
    std::string *capture; ///< null = stdout (the CLI path)
    std::vector<JobResult> results;

    const JobResult &
    at(const std::string &w, const std::string &p) const
    {
        for (const auto &r : results)
            if (r.workload == w && r.pipeline == p)
                return r;
        prophet_panic("table sink missing a (workload, pipeline)");
    }

    void
    printMetric(std::string &out, const ExperimentSpec &spec,
                const std::string &metric)
    {
        // Column titles and order come straight from the registry-
        // validated pipeline instances (label, else display name).
        std::vector<std::string> hdr{"workload"};
        for (const auto &p : spec.pipelines)
            hdr.push_back(sim::pipelineColumnTitle(p));
        stats::Table table(std::move(hdr));

        std::vector<std::vector<double>> cols(spec.pipelines.size());
        for (const auto &w : spec.workloads) {
            std::vector<std::string> row{w};
            for (std::size_t i = 0; i < spec.pipelines.size(); ++i) {
                const JobResult &r =
                    at(w, spec.pipelines[i].resultName());
                if (!r.ok) {
                    // A failed job renders as a marked cell and stays
                    // out of the geomean: the partial table reports
                    // every number that was actually computed.
                    row.push_back("FAILED");
                    continue;
                }
                double v = metricValue(r, metric);
                row.push_back(stats::Table::fmt(v));
                if (v > 0.0)
                    cols[i].push_back(v);
            }
            table.addRow(std::move(row));
        }
        std::vector<std::string> geo{"Geomean"};
        for (const auto &c : cols)
            geo.push_back(stats::Table::fmt(stats::geomean(c)));
        table.addRow(std::move(geo));
        appendf(out, "%s\n%s\n", metricDisplayName(metric).c_str(),
                table.render().c_str());
    }

    /** Printed only when failures exist: no-failure output is
     *  byte-identical to the pre-failure-handling renderer. */
    void
    printFailures(std::string &out) const
    {
        std::size_t failed = 0;
        for (const auto &r : results)
            if (!r.ok)
                ++failed;
        if (failed == 0)
            return;
        appendf(out, "failures: %zu of %zu job%s\n", failed,
                results.size(), results.size() == 1 ? "" : "s");
        for (const auto &r : results) {
            if (r.ok)
                continue;
            // errorMessage self-describes (recordFailure guarantees
            // the code-name prefix), so no code column here.
            appendf(out, "  %s/%s: %s (attempts=%u)\n",
                    r.workload.c_str(), r.pipeline.c_str(),
                    r.errorMessage.c_str(), r.attempts);
        }
        appendf(out, "\n");
    }
};

json::Value
statsToJson(const sim::RunStats &s)
{
    json::Value o = json::Value::makeObject();
    o.set("ipc", json::Value(s.ipc));
    o.set("cycles", json::Value(s.cycles));
    o.set("instructions", json::Value(s.instructions));
    o.set("records", json::Value(s.records));
    o.set("l1_misses", json::Value(s.l1Misses));
    o.set("l2_demand_accesses", json::Value(s.l2DemandAccesses));
    o.set("l2_demand_misses", json::Value(s.l2DemandMisses));
    o.set("llc_misses", json::Value(s.llcMisses));
    o.set("l2_prefetches_issued", json::Value(s.l2PrefetchesIssued));
    o.set("l2_prefetches_useful", json::Value(s.l2PrefetchesUseful));
    o.set("late_prefetches", json::Value(s.latePrefetches));
    o.set("dram_reads", json::Value(s.dramReads));
    o.set("dram_writes", json::Value(s.dramWrites));
    o.set("dram_prefetch_reads", json::Value(s.dramPrefetchReads));
    o.set("final_metadata_ways",
          json::Value(static_cast<double>(s.finalMetadataWays)));
    // Sampled-run keys exist only on sampled rows: documents from
    // specs without "sampling" stay byte-identical to the
    // pre-sampling schema.
    if (s.sampled) {
        o.set("sampled", json::Value(true));
        o.set("sampled_records", json::Value(s.sampledRecords));
        o.set("sample_scale", json::Value(s.sampleScale));
    }
    return o;
}

/** The whole run as one JSON document. */
class JsonFileSink : public Sink
{
  public:
    explicit JsonFileSink(std::string path,
                          std::string *capture = nullptr)
        : path(std::move(path)), capture(capture)
    {
    }

    void
    result(const JobResult &r) override
    {
        json::Value o = json::Value::makeObject();
        o.set("workload", json::Value(r.workload));
        o.set("pipeline", json::Value(r.pipeline));
        json::Value metrics = json::Value::makeObject();
        for (const auto &[name, value] : r.metrics)
            metrics.set(name, json::Value(value));
        o.set("metrics", std::move(metrics));
        o.set("stats", statsToJson(r.stats));
        // The "error" key exists only on failed rows, so a fully
        // successful document stays byte-identical to the
        // pre-failure-handling schema.
        if (!r.ok) {
            ++failedCount;
            json::Value err = json::Value::makeObject();
            err.set("code", json::Value(errorCodeName(r.errorCode)));
            err.set("message", json::Value(r.errorMessage));
            err.set("attempts",
                    json::Value(static_cast<double>(r.attempts)));
            o.set("error", std::move(err));
        }
        rows.push(std::move(o));
    }

    bool
    finish(const ExperimentSpec &spec, const RunMeta &meta) override
    {
        json::Value root = json::Value::makeObject();
        root.set("experiment", json::Value(meta.specName));
        char hash_buf[24];
        std::snprintf(hash_buf, sizeof(hash_buf), "%016llx",
                      static_cast<unsigned long long>(meta.specHash));
        root.set("spec_hash", json::Value(hash_buf));
        root.set("timestamp", json::Value(meta.timestamp));
        root.set("records", json::Value(meta.records));
        root.set("threads",
                 json::Value(static_cast<double>(meta.threads)));
        root.set("wall_seconds", json::Value(meta.wallSeconds));
        json::Value cache = json::Value::makeObject();
        cache.set("hits", json::Value(meta.traceCacheHits));
        cache.set("misses", json::Value(meta.traceCacheMisses));
        root.set("trace_cache", std::move(cache));
        root.set("spec", spec.toJson());
        if (failedCount > 0)
            root.set("failed_jobs",
                     json::Value(static_cast<double>(failedCount)));
        root.set("results", std::move(rows));

        std::string doc = json::dump(root, 2);
        if (capture) {
            *capture = std::move(doc);
            return true;
        }
        std::ofstream out(path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "json sink: cannot write %s\n",
                         path.c_str());
            return false;
        }
        out << doc;
        out.flush();
        if (!out) {
            std::fprintf(stderr, "json sink: write to %s failed\n",
                         path.c_str());
            return false;
        }
        std::fprintf(stderr, "json sink: wrote %s\n", path.c_str());
        return true;
    }

  private:
    std::string path;
    std::string *capture; ///< null = write the file (the CLI path)
    json::Value rows = json::Value::makeArray();
    std::size_t failedCount = 0;
};

/**
 * One CSV row per (workload, pipeline). Rows are buffered and
 * rendered in finish(): the header comes from the spec's metric list
 * (not the first row, which may have failed and carry no metrics),
 * and a trailing "error" column is appended only when at least one
 * job failed — a fully successful file is byte-identical to the
 * pre-failure-handling format.
 */
class CsvFileSink : public Sink
{
  public:
    explicit CsvFileSink(std::string path,
                         std::string *capture = nullptr)
        : path(std::move(path)), capture(capture)
    {
    }

    void
    result(const JobResult &r) override
    {
        results.push_back(r);
    }

    bool
    finish(const ExperimentSpec &spec, const RunMeta &) override
    {
        bool any_failed = false;
        for (const auto &r : results)
            if (!r.ok)
                any_failed = true;

        std::string doc;
        std::string hdr = "workload,pipeline";
        for (const auto &name : spec.metrics)
            hdr += "," + name;
        // stats_ prefix keeps these distinct from a requested
        // "ipc" metric column.
        hdr += ",stats_ipc,stats_cycles,stats_l2_demand_misses,"
               "stats_dram_reads,stats_dram_writes";
        if (any_failed)
            hdr += ",error";
        doc += hdr;
        doc += "\n";

        char buf[64];
        for (const auto &r : results) {
            std::string line = r.workload + "," + r.pipeline;
            if (r.ok) {
                for (const auto &[name, value] : r.metrics) {
                    (void)name;
                    std::snprintf(buf, sizeof(buf), ",%.17g", value);
                    line += buf;
                }
                std::snprintf(buf, sizeof(buf), ",%.17g",
                              r.stats.ipc);
                line += buf;
                line += "," + std::to_string(r.stats.cycles);
                line += "," + std::to_string(r.stats.l2DemandMisses);
                line += "," + std::to_string(r.stats.dramReads);
                line += "," + std::to_string(r.stats.dramWrites);
                if (any_failed)
                    line += ",";
            } else {
                // Metric and stats cells stay empty — an empty cell
                // cannot be mistaken for a measured zero.
                for (std::size_t i = 0;
                     i < spec.metrics.size() + 5; ++i)
                    line += ",";
                line += ",";
                line += csvQuote(r.errorMessage);
            }
            doc += line;
            doc += "\n";
        }
        if (capture) {
            *capture = std::move(doc);
            return true;
        }
        std::ofstream out(path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "csv sink: cannot write %s\n",
                         path.c_str());
            return false;
        }
        out << doc;
        out.flush();
        if (!out) {
            std::fprintf(stderr, "csv sink: write to %s failed\n",
                         path.c_str());
            return false;
        }
        std::fprintf(stderr, "csv sink: wrote %s\n", path.c_str());
        return true;
    }

  private:
    std::string path;
    std::string *capture; ///< null = write the file (the CLI path)
    std::vector<JobResult> results;

    static std::string
    csvQuote(const std::string &s)
    {
        std::string q = "\"";
        for (char c : s) {
            if (c == '"')
                q += '"';
            q += c;
        }
        q += '"';
        return q;
    }
};

} // anonymous namespace

std::string
metricDisplayName(const std::string &metric)
{
    if (metric == "speedup")
        return "Performance Speedup";
    if (metric == "traffic")
        return "Normalized DRAM Traffic";
    if (metric == "coverage")
        return "Prefetching Coverage";
    if (metric == "accuracy")
        return "Prefetching Accuracy";
    if (metric == "ipc")
        return "IPC";
    if (metric == "meta_lines")
        return "Off-chip Metadata Lines";
    return metric;
}

std::unique_ptr<Sink>
makeSink(const SinkSpec &spec)
{
    switch (spec.kind) {
      case SinkSpec::Kind::Table:
        return std::make_unique<TableSink>();
      case SinkSpec::Kind::JsonFile:
        return std::make_unique<JsonFileSink>(spec.path);
      case SinkSpec::Kind::CsvFile:
        return std::make_unique<CsvFileSink>(spec.path);
    }
    prophet_panic("unhandled sink kind");
}

std::unique_ptr<Sink>
makeCapturingSink(const SinkSpec &spec, std::string *out)
{
    switch (spec.kind) {
      case SinkSpec::Kind::Table:
        return std::make_unique<TableSink>(out);
      case SinkSpec::Kind::JsonFile:
        return std::make_unique<JsonFileSink>(spec.path, out);
      case SinkSpec::Kind::CsvFile:
        return std::make_unique<CsvFileSink>(spec.path, out);
    }
    prophet_panic("unhandled sink kind");
}

} // namespace prophet::driver
