#include "driver/sink.hh"

#include <cstdio>
#include <fstream>

#include "common/log.hh"
#include "stats/summary.hh"
#include "stats/table.hh"

namespace prophet::driver
{

namespace
{

/** Metric value for a job (metrics are precomputed by the driver). */
double
metricValue(const JobResult &r, const std::string &metric)
{
    for (const auto &[name, value] : r.metrics)
        if (name == metric)
            return value;
    prophet_panic("job result missing a spec metric");
}

/**
 * stdout tables, one per metric: workloads as rows, pipelines as
 * columns, plus the figures' Geomean row (geomean over the positive
 * values only — the same rule bench_util applies, so a pipeline
 * stuck at zero reports 0 instead of poisoning the mean).
 */
class TableSink : public Sink
{
  public:
    void
    result(const JobResult &r) override
    {
        results.push_back(r);
    }

    bool
    finish(const ExperimentSpec &spec, const RunMeta &meta) override
    {
        std::printf("\n== %s: %zu workload%s x %zu pipeline%s "
                    "(records=%zu, threads=%u, spec %016llx) ==\n\n",
                    spec.name.c_str(), spec.workloads.size(),
                    spec.workloads.size() == 1 ? "" : "s",
                    spec.pipelines.size(),
                    spec.pipelines.size() == 1 ? "" : "s",
                    meta.records, meta.threads,
                    static_cast<unsigned long long>(meta.specHash));
        for (const auto &metric : spec.metrics)
            printMetric(spec, metric);
        std::printf("wall-clock: %.2f s\n", meta.wallSeconds);
        return true;
    }

  private:
    std::vector<JobResult> results;

    const JobResult &
    at(const std::string &w, const std::string &p) const
    {
        for (const auto &r : results)
            if (r.workload == w && r.pipeline == p)
                return r;
        prophet_panic("table sink missing a (workload, pipeline)");
    }

    void
    printMetric(const ExperimentSpec &spec, const std::string &metric)
    {
        // Column titles and order come straight from the registry-
        // validated pipeline instances (label, else display name).
        std::vector<std::string> hdr{"workload"};
        for (const auto &p : spec.pipelines)
            hdr.push_back(sim::pipelineColumnTitle(p));
        stats::Table table(std::move(hdr));

        std::vector<std::vector<double>> cols(spec.pipelines.size());
        for (const auto &w : spec.workloads) {
            std::vector<std::string> row{w};
            for (std::size_t i = 0; i < spec.pipelines.size(); ++i) {
                double v = metricValue(
                    at(w, spec.pipelines[i].resultName()), metric);
                row.push_back(stats::Table::fmt(v));
                if (v > 0.0)
                    cols[i].push_back(v);
            }
            table.addRow(std::move(row));
        }
        std::vector<std::string> geo{"Geomean"};
        for (const auto &c : cols)
            geo.push_back(stats::Table::fmt(stats::geomean(c)));
        table.addRow(std::move(geo));
        std::printf("%s\n%s\n", metricDisplayName(metric).c_str(),
                    table.render().c_str());
    }
};

json::Value
statsToJson(const sim::RunStats &s)
{
    json::Value o = json::Value::makeObject();
    o.set("ipc", json::Value(s.ipc));
    o.set("cycles", json::Value(s.cycles));
    o.set("instructions", json::Value(s.instructions));
    o.set("records", json::Value(s.records));
    o.set("l1_misses", json::Value(s.l1Misses));
    o.set("l2_demand_accesses", json::Value(s.l2DemandAccesses));
    o.set("l2_demand_misses", json::Value(s.l2DemandMisses));
    o.set("llc_misses", json::Value(s.llcMisses));
    o.set("l2_prefetches_issued", json::Value(s.l2PrefetchesIssued));
    o.set("l2_prefetches_useful", json::Value(s.l2PrefetchesUseful));
    o.set("late_prefetches", json::Value(s.latePrefetches));
    o.set("dram_reads", json::Value(s.dramReads));
    o.set("dram_writes", json::Value(s.dramWrites));
    o.set("dram_prefetch_reads", json::Value(s.dramPrefetchReads));
    o.set("final_metadata_ways",
          json::Value(static_cast<double>(s.finalMetadataWays)));
    return o;
}

/** The whole run as one JSON document. */
class JsonFileSink : public Sink
{
  public:
    explicit JsonFileSink(std::string path) : path(std::move(path)) {}

    void
    result(const JobResult &r) override
    {
        json::Value o = json::Value::makeObject();
        o.set("workload", json::Value(r.workload));
        o.set("pipeline", json::Value(r.pipeline));
        json::Value metrics = json::Value::makeObject();
        for (const auto &[name, value] : r.metrics)
            metrics.set(name, json::Value(value));
        o.set("metrics", std::move(metrics));
        o.set("stats", statsToJson(r.stats));
        rows.push(std::move(o));
    }

    bool
    finish(const ExperimentSpec &spec, const RunMeta &meta) override
    {
        json::Value root = json::Value::makeObject();
        root.set("experiment", json::Value(meta.specName));
        char hash_buf[24];
        std::snprintf(hash_buf, sizeof(hash_buf), "%016llx",
                      static_cast<unsigned long long>(meta.specHash));
        root.set("spec_hash", json::Value(hash_buf));
        root.set("timestamp", json::Value(meta.timestamp));
        root.set("records", json::Value(meta.records));
        root.set("threads",
                 json::Value(static_cast<double>(meta.threads)));
        root.set("wall_seconds", json::Value(meta.wallSeconds));
        json::Value cache = json::Value::makeObject();
        cache.set("hits", json::Value(meta.traceCacheHits));
        cache.set("misses", json::Value(meta.traceCacheMisses));
        root.set("trace_cache", std::move(cache));
        root.set("spec", spec.toJson());
        root.set("results", std::move(rows));

        std::ofstream out(path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "json sink: cannot write %s\n",
                         path.c_str());
            return false;
        }
        out << json::dump(root, 2);
        out.flush();
        if (!out) {
            std::fprintf(stderr, "json sink: write to %s failed\n",
                         path.c_str());
            return false;
        }
        std::fprintf(stderr, "json sink: wrote %s\n", path.c_str());
        return true;
    }

  private:
    std::string path;
    json::Value rows = json::Value::makeArray();
};

/** One CSV row per (workload, pipeline). */
class CsvFileSink : public Sink
{
  public:
    explicit CsvFileSink(std::string path) : path(std::move(path)) {}

    void
    result(const JobResult &r) override
    {
        if (lines.empty()) {
            std::string hdr = "workload,pipeline";
            for (const auto &[name, value] : r.metrics) {
                (void)value;
                hdr += "," + name;
            }
            // stats_ prefix keeps these distinct from a requested
            // "ipc" metric column.
            hdr += ",stats_ipc,stats_cycles,stats_l2_demand_misses,"
                   "stats_dram_reads,stats_dram_writes";
            lines.push_back(std::move(hdr));
        }
        char buf[64];
        std::string line = r.workload + "," + r.pipeline;
        for (const auto &[name, value] : r.metrics) {
            (void)name;
            std::snprintf(buf, sizeof(buf), ",%.17g", value);
            line += buf;
        }
        std::snprintf(buf, sizeof(buf), ",%.17g", r.stats.ipc);
        line += buf;
        line += "," + std::to_string(r.stats.cycles);
        line += "," + std::to_string(r.stats.l2DemandMisses);
        line += "," + std::to_string(r.stats.dramReads);
        line += "," + std::to_string(r.stats.dramWrites);
        lines.push_back(std::move(line));
    }

    bool
    finish(const ExperimentSpec &, const RunMeta &) override
    {
        std::ofstream out(path, std::ios::binary);
        if (!out) {
            std::fprintf(stderr, "csv sink: cannot write %s\n",
                         path.c_str());
            return false;
        }
        for (const auto &line : lines)
            out << line << "\n";
        out.flush();
        if (!out) {
            std::fprintf(stderr, "csv sink: write to %s failed\n",
                         path.c_str());
            return false;
        }
        std::fprintf(stderr, "csv sink: wrote %s\n", path.c_str());
        return true;
    }

  private:
    std::string path;
    std::vector<std::string> lines;
};

} // anonymous namespace

std::string
metricDisplayName(const std::string &metric)
{
    if (metric == "speedup")
        return "Performance Speedup";
    if (metric == "traffic")
        return "Normalized DRAM Traffic";
    if (metric == "coverage")
        return "Prefetching Coverage";
    if (metric == "accuracy")
        return "Prefetching Accuracy";
    if (metric == "ipc")
        return "IPC";
    if (metric == "meta_lines")
        return "Off-chip Metadata Lines";
    return metric;
}

std::unique_ptr<Sink>
makeSink(const SinkSpec &spec)
{
    switch (spec.kind) {
      case SinkSpec::Kind::Table:
        return std::make_unique<TableSink>();
      case SinkSpec::Kind::JsonFile:
        return std::make_unique<JsonFileSink>(spec.path);
      case SinkSpec::Kind::CsvFile:
        return std::make_unique<CsvFileSink>(spec.path);
    }
    prophet_panic("unhandled sink kind");
}

} // namespace prophet::driver
