#include "driver/metrics_report.hh"

#include <cstdio>
#include <fstream>

#include <sys/resource.h>

#include "common/metrics.hh"

namespace prophet::driver
{

namespace
{

/**
 * "phase.trace_load_ns" -> "trace_load"; empty when @p name is not a
 * phase histogram. The phases section is the part CI and
 * bench_compare --phases consume, so its keys are the bare phase
 * names rather than the raw registry names.
 */
std::string
phaseKey(const std::string &name)
{
    const std::string prefix = "phase.";
    const std::string suffix = "_ns";
    if (name.size() <= prefix.size() + suffix.size()
        || name.compare(0, prefix.size(), prefix) != 0
        || name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix)
            != 0)
        return "";
    return name.substr(prefix.size(),
                       name.size() - prefix.size() - suffix.size());
}

json::Value
histogramToJson(const metrics::Histogram::Snapshot &s)
{
    json::Value o = json::Value::makeObject();
    o.set("count", json::Value(s.count));
    o.set("sum", json::Value(s.sum));
    o.set("min", json::Value(s.min));
    o.set("max", json::Value(s.max));
    // Sparse bucket list: [[lower_bound, count], ...] — 64 mostly
    // empty buckets per histogram would drown the document.
    json::Value buckets = json::Value::makeArray();
    for (std::size_t i = 0; i < s.buckets.size(); ++i) {
        if (s.buckets[i] == 0)
            continue;
        json::Value pair = json::Value::makeArray();
        pair.push(
            json::Value(metrics::Histogram::bucketLowerBound(i)));
        pair.push(json::Value(s.buckets[i]));
        buckets.push(std::move(pair));
    }
    o.set("buckets", std::move(buckets));
    return o;
}

} // anonymous namespace

std::uint64_t
peakRssBytes()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    // ru_maxrss is KiB on Linux (bytes on macOS; this simulator's CI
    // targets are Linux, where the * 1024 is correct).
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

json::Value
buildMetricsReport(const ExperimentReport &report)
{
    metrics::RegistrySnapshot snap =
        metrics::Registry::instance().snapshot();

    json::Value root = json::Value::makeObject();
    root.set("experiment", json::Value(report.meta.specName));
    root.set("timestamp", json::Value(report.meta.timestamp));
    root.set("threads",
             json::Value(static_cast<double>(report.meta.threads)));
    root.set("wall_seconds", json::Value(report.meta.wallSeconds));
    root.set("peak_rss_bytes", json::Value(peakRssBytes()));
    root.set("failed_jobs",
             json::Value(
                 static_cast<std::uint64_t>(report.failedJobs)));

    // Phases: {"trace_load": {"seconds": S, "count": N}, ...} from
    // every "phase.*_ns" histogram. Seconds are cumulative across
    // workers (sum over all recordings).
    json::Value phases = json::Value::makeObject();
    for (const auto &h : snap.histograms) {
        std::string key = phaseKey(h.name);
        if (key.empty())
            continue;
        json::Value p = json::Value::makeObject();
        p.set("seconds",
              json::Value(static_cast<double>(h.snap.sum) / 1e9));
        p.set("count", json::Value(h.snap.count));
        phases.set(key, std::move(p));
    }
    root.set("phases", std::move(phases));

    // Thread-pool utilization: busy time summed over workers against
    // workers * wall. A single-threaded run has no pool, so workers
    // falls back to 1 and busy stays 0.
    json::Value pool = json::Value::makeObject();
    double busy_s = 0.0;
    for (const auto &c : snap.counters)
        if (c.name == "threadpool.busy_ns")
            busy_s = static_cast<double>(c.value) / 1e9;
    unsigned workers =
        report.meta.threads > 0 ? report.meta.threads : 1;
    pool.set("workers",
             json::Value(static_cast<double>(workers)));
    pool.set("busy_seconds", json::Value(busy_s));
    double capacity = report.meta.wallSeconds * workers;
    pool.set("utilization",
             json::Value(capacity > 0.0 ? busy_s / capacity : 0.0));
    root.set("thread_pool", std::move(pool));

    json::Value counters = json::Value::makeObject();
    for (const auto &c : snap.counters)
        counters.set(c.name, json::Value(c.value));
    root.set("counters", std::move(counters));

    if (!snap.gauges.empty()) {
        json::Value gauges = json::Value::makeObject();
        for (const auto &g : snap.gauges)
            gauges.set(g.name,
                       json::Value(static_cast<double>(g.value)));
        root.set("gauges", std::move(gauges));
    }

    json::Value histograms = json::Value::makeObject();
    for (const auto &h : snap.histograms)
        histograms.set(h.name, histogramToJson(h.snap));
    root.set("histograms", std::move(histograms));

    json::Value jobs = json::Value::makeArray();
    for (const auto &r : report.results) {
        json::Value j = json::Value::makeObject();
        j.set("workload", json::Value(r.workload));
        j.set("pipeline", json::Value(r.pipeline));
        j.set("ok", json::Value(r.ok));
        j.set("seconds", json::Value(r.seconds));
        j.set("records", json::Value(r.stats.records));
        j.set("attempts",
              json::Value(static_cast<double>(r.attempts)));
        // Sampled jobs carry their detailed-record count; full jobs
        // keep the pre-sampling document shape.
        if (r.stats.sampled) {
            j.set("sampled", json::Value(true));
            j.set("sampled_records",
                  json::Value(r.stats.sampledRecords));
            j.set("sample_scale", json::Value(r.stats.sampleScale));
        }
        // Replayed-from-journal jobs keep the pre-resume document
        // shape when the flag is unused, like "sampled" above.
        if (r.resumed)
            j.set("resumed", json::Value(true));
        jobs.push(std::move(j));
    }
    root.set("jobs", std::move(jobs));
    return root;
}

bool
writeMetricsReport(const ExperimentReport &report,
                   const std::string &path)
{
    json::Value doc = buildMetricsReport(report);
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        std::fprintf(stderr, "metrics: cannot write %s\n",
                     path.c_str());
        return false;
    }
    out << json::dump(doc, 2);
    out.flush();
    if (!out) {
        std::fprintf(stderr, "metrics: write to %s failed\n",
                     path.c_str());
        return false;
    }
    std::fprintf(stderr, "metrics: wrote %s\n", path.c_str());
    return true;
}

} // namespace prophet::driver
