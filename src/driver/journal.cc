#include "driver/journal.hh"

#include <cstring>

#include <unistd.h>

#include "common/checksum.hh"
#include "common/fault_injection.hh"
#include "common/log.hh"
#include "common/metrics.hh"
#include "driver/spec.hh"

namespace prophet::driver
{

namespace
{

constexpr std::uint32_t kFileMagic = 0x4C4E4A50; // "PJNL"
constexpr std::uint32_t kEntryMagic = 0x454A5250; // "PRJE"
constexpr std::uint32_t kFormatVersion = 1;

// header: magic, version, spec result hash
constexpr std::size_t kHeaderBytes = 4 + 4 + 8;

// Largest payload load() will accept. Generous: the dominant cost is
// the per-PC miss map at 16 bytes/PC, so this covers ~4M distinct
// miss PCs — far beyond any workload here — while still bounding a
// corrupt length field.
constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

/** Append-only byte buffer with fixed-width little helpers. */
struct ByteWriter
{
    std::string buf;

    void
    raw(const void *p, std::size_t n)
    {
        buf.append(static_cast<const char *>(p), n);
    }

    void put8(std::uint8_t v) { raw(&v, 1); }
    void put32(std::uint32_t v) { raw(&v, 4); }
    void put64(std::uint64_t v) { raw(&v, 8); }

    /** Doubles as raw bit patterns: bit-exact round-trip. */
    void
    putDouble(double v)
    {
        static_assert(sizeof(double) == 8, "64-bit doubles required");
        raw(&v, 8);
    }

    void
    putString(const std::string &s)
    {
        put32(static_cast<std::uint32_t>(s.size()));
        raw(s.data(), s.size());
    }
};

/** Bounds-checked reader over one entry payload. */
struct ByteReader
{
    const char *p;
    std::size_t left;

    void
    raw(void *out, std::size_t n)
    {
        if (n > left)
            throw Error(ErrorCode::JournalCorrupt,
                        "entry payload truncated");
        std::memcpy(out, p, n);
        p += n;
        left -= n;
    }

    std::uint8_t
    get8()
    {
        std::uint8_t v;
        raw(&v, 1);
        return v;
    }

    std::uint32_t
    get32()
    {
        std::uint32_t v;
        raw(&v, 4);
        return v;
    }

    std::uint64_t
    get64()
    {
        std::uint64_t v;
        raw(&v, 8);
        return v;
    }

    double
    getDouble()
    {
        double v;
        raw(&v, 8);
        return v;
    }

    std::string
    getString()
    {
        std::uint32_t n = get32();
        if (n > left)
            throw Error(ErrorCode::JournalCorrupt,
                        "entry string truncated");
        std::string s(p, n);
        p += n;
        left -= n;
        return s;
    }
};

/**
 * The full RunStats, field by field. Every statistic a sink or a
 * downstream pipeline can consume must round-trip bit-exactly — the
 * per-PC miss map included, because RPG2 kernel identification reads
 * the *baseline's* pcMisses — or a resumed run would diverge from a
 * from-scratch run.
 */
void
putStats(ByteWriter &w, const sim::RunStats &s)
{
    w.putDouble(s.ipc);
    w.put64(s.cycles);
    w.put64(s.instructions);
    w.put64(s.records);
    w.put64(s.l1Misses);
    w.put64(s.l2DemandAccesses);
    w.put64(s.l2DemandMisses);
    w.put64(s.llcMisses);
    w.put64(s.l2PrefetchesIssued);
    w.put64(s.l2PrefetchesUseful);
    w.put64(s.latePrefetches);
    w.put64(s.dramReads);
    w.put64(s.dramWrites);
    w.put64(s.dramPrefetchReads);
    w.put64(s.markov.lookups);
    w.put64(s.markov.hits);
    w.put64(s.markov.inserts);
    w.put64(s.markov.updates);
    w.put64(s.markov.replacements);
    w.put64(s.markov.resizeDrops);
    w.put32(s.finalMetadataWays);
    w.put8(s.sampled ? 1 : 0);
    w.put64(s.sampledRecords);
    w.putDouble(s.sampleScale);
    w.put64(s.offchipMeta.metadataReads);
    w.put64(s.offchipMeta.metadataWrites);
    w.put64(s.l1Accesses);
    w.put64(s.l2Accesses);
    w.put64(s.llcAccesses);
    // Insertion order is FlatMap's iteration order, so the replayed
    // map iterates identically to the original.
    w.put64(s.pcMisses.size());
    for (const auto &[pc, count] : s.pcMisses) {
        w.put64(static_cast<std::uint64_t>(pc));
        w.put64(count);
    }
}

sim::RunStats
getStats(ByteReader &r)
{
    sim::RunStats s;
    s.ipc = r.getDouble();
    s.cycles = r.get64();
    s.instructions = r.get64();
    s.records = r.get64();
    s.l1Misses = r.get64();
    s.l2DemandAccesses = r.get64();
    s.l2DemandMisses = r.get64();
    s.llcMisses = r.get64();
    s.l2PrefetchesIssued = r.get64();
    s.l2PrefetchesUseful = r.get64();
    s.latePrefetches = r.get64();
    s.dramReads = r.get64();
    s.dramWrites = r.get64();
    s.dramPrefetchReads = r.get64();
    s.markov.lookups = r.get64();
    s.markov.hits = r.get64();
    s.markov.inserts = r.get64();
    s.markov.updates = r.get64();
    s.markov.replacements = r.get64();
    s.markov.resizeDrops = r.get64();
    s.finalMetadataWays = r.get32();
    s.sampled = r.get8() != 0;
    s.sampledRecords = r.get64();
    s.sampleScale = r.getDouble();
    s.offchipMeta.metadataReads = r.get64();
    s.offchipMeta.metadataWrites = r.get64();
    s.l1Accesses = r.get64();
    s.l2Accesses = r.get64();
    s.llcAccesses = r.get64();
    std::uint64_t n = r.get64();
    // 16 bytes per pair: a corrupt count cannot out-allocate the
    // payload it must fit inside.
    if (n > r.left / 16)
        throw Error(ErrorCode::JournalCorrupt,
                    "pc-miss map count exceeds payload");
    s.pcMisses.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t pc = r.get64();
        s.pcMisses.emplace(static_cast<PC>(pc), r.get64());
    }
    return s;
}

std::string
serializeEntry(const JournalEntry &e)
{
    ByteWriter payload;
    payload.put8(static_cast<std::uint8_t>(e.kind));
    payload.put32(e.jobIndex);
    payload.putString(e.workload);
    payload.putString(e.pipeline);
    payload.put32(e.attempts);
    putStats(payload, e.stats);

    ByteWriter frame;
    frame.put32(kEntryMagic);
    frame.put32(static_cast<std::uint32_t>(payload.buf.size()));
    frame.raw(payload.buf.data(), payload.buf.size());
    frame.put64(fnv1a64(payload.buf.data(), payload.buf.size()));
    return std::move(frame.buf);
}

JournalEntry
parsePayload(const char *data, std::size_t size)
{
    ByteReader r{data, size};
    JournalEntry e;
    std::uint8_t kind = r.get8();
    if (kind > static_cast<std::uint8_t>(JournalEntry::Kind::Baseline))
        throw Error(ErrorCode::JournalCorrupt,
                    "unknown entry kind "
                        + std::to_string(unsigned(kind)));
    e.kind = static_cast<JournalEntry::Kind>(kind);
    e.jobIndex = r.get32();
    e.workload = r.getString();
    e.pipeline = r.getString();
    e.attempts = r.get32();
    e.stats = getStats(r);
    return e;
}

} // anonymous namespace

ResultJournal::ResultJournal(std::string path,
                             std::uint64_t spec_hash, Options opts)
    : filePath(std::move(path)), specHash(spec_hash), options(opts)
{
    load();
    file = std::fopen(filePath.c_str(), "ab");
    if (!file)
        prophet_warnf("journal: cannot open %s for append; "
                      "checkpointing disabled for this run",
                      filePath.c_str());
}

ResultJournal::~ResultJournal()
{
    if (file)
        std::fclose(file);
}

void
ResultJournal::load()
{
    std::FILE *in = std::fopen(filePath.c_str(), "rb");
    std::string bytes;
    if (in) {
        char chunk[1 << 16];
        std::size_t n;
        while ((n = std::fread(chunk, 1, sizeof(chunk), in)) > 0)
            bytes.append(chunk, n);
        std::fclose(in);
    }

    auto recreate = [&] {
        std::FILE *out = std::fopen(filePath.c_str(), "wb");
        if (!out) {
            prophet_warnf("journal: cannot create %s",
                          filePath.c_str());
            return;
        }
        ByteWriter header;
        header.put32(kFileMagic);
        header.put32(kFormatVersion);
        header.put64(specHash);
        std::fwrite(header.buf.data(), 1, header.buf.size(), out);
        std::fflush(out);
        if (options.fsyncEachAppend)
            ::fsync(fileno(out));
        std::fclose(out);
    };

    if (bytes.empty()) {
        recreate();
        return;
    }
    if (bytes.size() < kHeaderBytes) {
        prophet_warnf("journal: %s has a truncated header; "
                      "starting it over",
                      filePath.c_str());
        recreate();
        return;
    }

    std::uint32_t magic, version;
    std::uint64_t file_hash;
    std::memcpy(&magic, bytes.data(), 4);
    std::memcpy(&version, bytes.data() + 4, 4);
    std::memcpy(&file_hash, bytes.data() + 8, 8);
    if (magic != kFileMagic || version != kFormatVersion) {
        prophet_warnf("journal: %s is not a v%u prophet journal; "
                      "starting it over",
                      filePath.c_str(), kFormatVersion);
        recreate();
        return;
    }
    if (file_hash != specHash) {
        char want[17], have[17];
        std::snprintf(want, sizeof(want), "%016llx",
                      static_cast<unsigned long long>(specHash));
        std::snprintf(have, sizeof(have), "%016llx",
                      static_cast<unsigned long long>(file_hash));
        ErrorContext ctx;
        ctx.path = filePath;
        // Refusal, not recovery: silently replaying another
        // experiment's numbers is the one failure mode a resume
        // journal must never have.
        throw SpecError(
            "journal " + filePath
                + " was written by a different experiment (spec "
                  "result hash "
                + have + ", this run is " + want
                + "); delete it or run without --resume",
            std::move(ctx));
    }

    // Entry scan. validEnd trails the last fully intact frame so a
    // torn tail — a crash mid-append — is truncated away and the
    // next append starts on a clean frame boundary.
    std::size_t off = kHeaderBytes;
    std::size_t valid_end = kHeaderBytes;
    while (off + 8 <= bytes.size()) {
        std::uint32_t entry_magic, len;
        std::memcpy(&entry_magic, bytes.data() + off, 4);
        std::memcpy(&len, bytes.data() + off + 4, 4);
        if (entry_magic != kEntryMagic || len > kMaxPayloadBytes
            || off + 8 + len + 8 > bytes.size())
            break; // torn tail: frame never finished
        const char *payload = bytes.data() + off + 8;
        std::uint64_t stored_sum;
        std::memcpy(&stored_sum, payload + len, 8);
        std::size_t next = off + 8 + len + 8;
        bool corrupt = fnv1a64(payload, len) != stored_sum
            || fault::shouldFail("journal.load");
        if (!corrupt) {
            try {
                loaded.push_back(parsePayload(payload, len));
            } catch (const Error &) {
                corrupt = true;
            }
        }
        if (corrupt) {
            // The frame is intact (magic + length landed), only the
            // contents are bad — bit rot, not a torn write. Skip it
            // and keep replaying; this one job re-simulates.
            ++skippedEntries;
            metrics::counter("journal.corrupt_skipped").inc();
            prophet_warnf("journal: %s: entry at offset %zu failed "
                          "its checksum; skipped (the job will "
                          "re-simulate)",
                          filePath.c_str(), off);
        }
        valid_end = next;
        off = next;
    }

    if (valid_end < bytes.size()) {
        tornBytes = bytes.size() - valid_end;
        prophet_warnf("journal: %s: truncating %llu torn byte(s) "
                      "after offset %zu (crashed mid-append)",
                      filePath.c_str(),
                      static_cast<unsigned long long>(tornBytes),
                      valid_end);
        if (::truncate(filePath.c_str(),
                       static_cast<off_t>(valid_end))
            != 0)
            prophet_warnf("journal: truncate(%s) failed",
                          filePath.c_str());
    }
}

bool
ResultJournal::append(const JournalEntry &entry)
{
    std::string frame = serializeEntry(entry);
    std::lock_guard<std::mutex> lock(appendMu);
    if (!file)
        return false;
    if (fault::shouldFail("journal.append")) {
        // Simulated I/O failure: nothing reaches the file, so the
        // journal stays well-formed and later appends still land.
        metrics::counter("journal.append_failures").inc();
        if (!appendFailedOnce)
            prophet_warnf("journal: append to %s failed (injected); "
                          "this job will re-simulate on resume",
                          filePath.c_str());
        appendFailedOnce = true;
        return false;
    }
    std::size_t wrote =
        std::fwrite(frame.data(), 1, frame.size(), file);
    if (wrote != frame.size() || std::fflush(file) != 0) {
        // A partial frame is on disk: the next load truncates it as
        // a torn tail, but appending after it would be garbage, so
        // journaling stops for this run.
        metrics::counter("journal.append_failures").inc();
        if (!appendFailedOnce)
            prophet_warnf("journal: write to %s failed (disk full?); "
                          "checkpointing disabled for the rest of "
                          "this run",
                          filePath.c_str());
        appendFailedOnce = true;
        std::fclose(file);
        file = nullptr;
        return false;
    }
    if (options.fsyncEachAppend)
        ::fsync(fileno(file));
    metrics::counter("journal.appends").inc();
    return true;
}

} // namespace prophet::driver
