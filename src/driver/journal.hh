/**
 * @file
 * The crash-safe result journal: an append-only binary file the
 * experiment driver writes one entry to per completed job (and per
 * warmed baseline), so a sweep killed mid-run — SIGTERM, OOM, power —
 * resumes from its last completed job instead of starting over.
 *
 * Durability model, in the spirit of the trace cache's frame format:
 *
 *  - the header carries the spec's *result hash*, so a journal can
 *    never replay into a different experiment (a mismatch refuses
 *    loudly rather than merging foreign numbers);
 *  - every entry is framed (magic, length, payload, FNV-1a-64
 *    checksum) and written with a single fwrite + flush (+ optional
 *    fsync), so a torn tail from a crashed writer is detected and
 *    truncated on the next load — everything before it replays;
 *  - a mid-file entry whose checksum fails (bit rot) is skipped and
 *    logged; intact entries after it still replay, and the skipped
 *    job simply re-simulates.
 *
 * Entries serialize the full RunStats — including the per-PC miss
 * map, which downstream RPG2 kernel identification consumes — so a
 * resumed run's merged output is bit-identical to a from-scratch run
 * (regression-gated in tests/test_journal.cc). The format is
 * host-endian: a journal is a same-machine resume artifact, not an
 * interchange format.
 */

#ifndef PROPHET_DRIVER_JOURNAL_HH
#define PROPHET_DRIVER_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "sim/system.hh"

namespace prophet::driver
{

/** One replayable journal record. */
struct JournalEntry
{
    enum class Kind : std::uint8_t
    {
        Job = 0,      ///< one (workload, pipeline) slot's stats
        Baseline = 1, ///< a warmed per-workload baseline run
    };

    Kind kind = Kind::Job;

    /** Job-matrix slot index (unused for Baseline entries). */
    std::uint32_t jobIndex = 0;

    std::string workload;
    std::string pipeline; ///< result name; empty for Baseline
    unsigned attempts = 1;
    sim::RunStats stats;
};

/**
 * The journal file. Constructing it loads and validates any existing
 * entries (replayable via entries()), truncates a torn tail, then
 * holds the file open for appends. One instance per driver run;
 * append() is thread-safe (sweep workers call it concurrently).
 */
class ResultJournal
{
  public:
    struct Options
    {
        // Explicit ctor instead of member initializers: the
        // enclosing class uses Options() as a default argument,
        // which GCC rejects for NSDMIs of a nested class.
        Options() : fsyncEachAppend(true) {}

        /**
         * fsync after every append (the default): an entry survives
         * power loss, not just process death. --no-journal-fsync
         * trades that for append latency on slow disks.
         */
        bool fsyncEachAppend;
    };

    /**
     * Open @p path (creating it if absent) for an experiment whose
     * spec resultHash is @p spec_hash.
     *
     * Throws SpecError when the file holds a valid header for a
     * *different* spec hash — replaying it would merge numbers from
     * another experiment. Every other defect recovers: a torn tail
     * is truncated (logged), a checksum-failed entry is skipped
     * (logged), an unreadable header restarts the journal from
     * scratch. The fault site "journal.load" injects a per-entry
     * corruption; "journal.append" injects an append I/O failure.
     */
    ResultJournal(std::string path, std::uint64_t spec_hash,
                  Options opts = Options());

    ResultJournal(const ResultJournal &) = delete;
    ResultJournal &operator=(const ResultJournal &) = delete;

    ~ResultJournal();

    /** Valid entries found at construction, in file order. */
    const std::vector<JournalEntry> &entries() const
    {
        return loaded;
    }

    /**
     * Append one entry: a single buffered write, flushed (and
     * fsynced per Options) before returning, so a completed job is
     * durable before the next one starts. Returns false on an I/O
     * failure — journaling degrades (the run continues, this job
     * just re-simulates on resume) and the failure is logged once.
     */
    bool append(const JournalEntry &entry);

    /** Entries dropped at load time for failing their checksum. */
    std::size_t corruptSkipped() const { return skippedEntries; }

    /** Bytes of torn tail truncated at load time. */
    std::uint64_t truncatedBytes() const { return tornBytes; }

    const std::string &path() const { return filePath; }

  private:
    std::string filePath;
    std::uint64_t specHash;
    Options options;

    std::vector<JournalEntry> loaded;
    std::size_t skippedEntries = 0;
    std::uint64_t tornBytes = 0;

    std::mutex appendMu;
    std::FILE *file = nullptr; ///< open for append after load
    bool appendFailedOnce = false;

    void load();
};

} // namespace prophet::driver

#endif // PROPHET_DRIVER_JOURNAL_HH
