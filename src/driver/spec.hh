/**
 * @file
 * The declarative experiment spec: a JSON file names the workloads,
 * the pipelines to compare, the system-config overrides, the metrics
 * to report, and the output sinks. The driver expands a spec into
 * sweep jobs; every checked-in spec under specs/ reproduces one of the
 * paper's figures through this schema.
 *
 * Schema (all keys optional except "workloads" and "pipelines"):
 *
 *   {
 *     "name": "fig10",               // experiment label
 *     "workloads": ["@spec"],        // names or @spec/@graph/@gcc
 *     "pipelines": ["rpg2", "triangel",
 *       // an element may also be an object with parameter
 *       // overrides and a display label; names, parameters and
 *       // their types come from the pipeline registry
 *       // (sim/pipelines.hh, `prophet list-pipelines`)
 *       {"name": "triage", "degree": 4, "label": "triage-d4"},
 *       {"name": "prophet", "features": ["replacement"]}],
 *     "sweep": {                     // optional knob axis: every
 *       "param": "el_acc",           // pipeline is instantiated
 *       "values": [0.05, 0.15, 0.25] // once per value
 *     },
 *     "metrics": ["speedup"],        // speedup traffic coverage
 *                                    // accuracy ipc meta_lines
 *     "records": 0,                  // trace-length override
 *     "threads": 1,                  // 0 = hardware concurrency
 *     "l1": "stride",                // stride | ipcp | none
 *     "dram_channels": 1,
 *     "warmup_records": 200000,
 *     "sampling": {                  // sampled fast-mode execution
 *       "warmup_records": 100000,    // functional warm before window
 *       "window_records": 50000,     // detailed records per window
 *       "interval_records": 1000000, // schedule period (>= window)
 *       "offset": 0                  // shift the whole schedule
 *     },
 *     "trace_cache": true,           // consult the on-disk cache
 *     "deadline_s": 120.5,           // per-job watchdog deadline
 *     "sinks": [{"type": "table"},   // table | json | csv
 *               {"type": "json", "path": "out.json"}]
 *   }
 *
 * A spec may instead request a static report —
 * {"name": "table1", "report": "system-config"} — which prints the
 * Table 1 configuration without running jobs.
 *
 * Unknown keys anywhere are errors — a typoed knob, pipeline name,
 * or pipeline parameter must not silently run the default
 * experiment.
 */

#ifndef PROPHET_DRIVER_SPEC_HH
#define PROPHET_DRIVER_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"
#include "driver/json.hh"
#include "sim/pipelines.hh"
#include "sim/system_config.hh"

namespace prophet::driver
{

/**
 * A malformed or invalid experiment spec. Part of the prophet::Error
 * taxonomy (code SpecParse), so the CLI maps it onto the documented
 * spec-error exit code without string matching.
 */
class SpecError : public Error
{
  public:
    explicit SpecError(const std::string &message,
                       ErrorContext ctx = {})
        : Error(ErrorCode::SpecParse, message, std::move(ctx))
    {}
};

/** One output sink request. */
struct SinkSpec
{
    enum class Kind { Table, JsonFile, CsvFile };
    Kind kind = Kind::Table;
    std::string path; ///< required for JsonFile/CsvFile
};

/** The parsed, validated experiment description. */
struct ExperimentSpec
{
    /** A static report instead of a job matrix. */
    enum class Report { None, SystemConfig };

    std::string name = "experiment";
    Report report = Report::None;
    std::vector<std::string> workloads; ///< aliases expanded
    /** Validated against the registry; the sweep axis expanded. */
    std::vector<sim::PipelineInstance> pipelines;
    std::vector<std::string> metrics{"speedup"};
    std::size_t records = 0;
    unsigned threads = 1;
    std::string l1 = "stride";
    unsigned dramChannels = 1;
    std::size_t warmupRecords = kWarmupDefault;

    /**
     * Sampled fast-mode execution (sampling.enabled == false when
     * the spec has no "sampling" key — the exact full-trace loop).
     * Included in toJson()/resultHash() only when enabled, so
     * pre-sampling specs keep their hashes.
     */
    sim::SamplingConfig sampling{};

    bool traceCache = true;

    /**
     * Failure policy: true runs every job even after one fails (the
     * partial table marks failed cells and the CLI exits with the
     * partial-failure code); false (default) fails fast, cancelling
     * in-flight jobs. Excluded from resultHash — the policy cannot
     * change any number a completed job reports.
     */
    bool keepGoing = false;

    /**
     * Per-job watchdog deadline in seconds (0 = none): a job still
     * simulating past it is cancelled and recorded as a transient
     * JobTimeout failure, eligible for the retry path. The CLI's
     * --job-timeout overrides it. Excluded from resultHash like
     * keep_going — a deadline can fail a job, never change the
     * numbers a completed job reports.
     */
    double deadlineS = 0.0;

    std::vector<SinkSpec> sinks; ///< empty = one table sink

    /** Sentinel: keep SystemConfig::table1()'s warmup. */
    static constexpr std::size_t kWarmupDefault =
        static_cast<std::size_t>(-1);

    /** Parse and validate a JSON document. Throws SpecError. */
    static ExperimentSpec fromJson(const json::Value &root);

    /** Parse a spec file (I/O errors also throw SpecError). */
    static ExperimentSpec fromFile(const std::string &path);

    /**
     * Canonical JSON form: every field, fully expanded and in fixed
     * key order, so the hash identifies the experiment's content
     * regardless of spelling, comments, or key order in the file.
     */
    json::Value toJson() const;

    /** FNV-1a 64 over the compact dump of toJson(). */
    std::uint64_t hash() const;

    /**
     * Identity of the experiment's *results*: hashes only the
     * fields that can change the numbers (workloads, pipelines,
     * metrics, records — as actually run, so CLI overrides count —
     * l1, dram_channels, warmup_records). Thread count, sinks, the
     * trace-cache switch and the display name are excluded: two
     * runs with equal resultHash are comparable bit for bit.
     */
    std::uint64_t resultHash(std::size_t effective_records) const;

    /** The base SystemConfig the overrides produce. */
    sim::SystemConfig baseConfig() const;
};

/** The metric names the driver can compute. */
const std::vector<std::string> &knownMetrics();

} // namespace prophet::driver

#endif // PROPHET_DRIVER_SPEC_HH
