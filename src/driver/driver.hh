/**
 * @file
 * The experiment driver: expands a declarative ExperimentSpec into
 * (workload x pipeline) SweepEngine jobs, runs them across the
 * thread pool, derives the requested metrics, and streams the
 * results — in spec order, so output is independent of scheduling —
 * to the spec's sinks. This is the layer the `prophet` CLI and the
 * end-to-end tests drive; the figure benches it supersedes each
 * hardcoded one slice of what a spec file now describes.
 */

#ifndef PROPHET_DRIVER_DRIVER_HH
#define PROPHET_DRIVER_DRIVER_HH

#include <memory>
#include <vector>

#include "driver/sink.hh"
#include "driver/spec.hh"
#include "sim/runner.hh"
#include "trace/trace_cache.hh"

namespace prophet::driver
{

/** CLI-level overrides applied on top of the spec. */
struct DriverOptions
{
    static constexpr unsigned kNoThreads = ~0u;
    static constexpr std::size_t kNoRecords =
        static_cast<std::size_t>(-1);

    unsigned threads = kNoThreads;      ///< kNoThreads = spec value
    std::size_t records = kNoRecords;   ///< kNoRecords = spec value
    int traceCache = -1;                ///< -1 spec, 0 off, 1 on
    std::string traceCacheDir;          ///< empty = default dir

    /** -1 spec value, 0 fail-fast, 1 keep-going (--keep-going). */
    int keepGoing = -1;

    /**
     * Per-job simulation attempts: a job failing with a *transient*
     * error class (isTransientError — trace I/O, cache lock) is
     * retried with backoff up to this many total tries. Permanent
     * errors never retry.
     */
    unsigned maxAttempts = 2;

    /** Base backoff before retry k is k * this (0 in tests). */
    unsigned retryBackoffMs = 50;

    // ---- crash-safe sweeps (all default-off: a run with none of
    // these set produces byte-identical outputs to one without) ----

    /**
     * Path of the result journal (--resume / --journal). Empty
     * disables checkpointing. When set, entries valid at startup
     * replay — those jobs are not re-simulated — and every completed
     * job is appended, so an interrupted run continues where it
     * stopped. A journal written for a different spec resultHash is
     * refused with SpecError.
     */
    std::string journalPath;

    /** fsync the journal after every append (--no-journal-fsync). */
    bool journalFsync = true;

    /**
     * Per-job watchdog deadline in seconds. < 0 defers to the
     * spec's "deadline_s"; 0 forces the watchdog off; > 0 overrides
     * (--job-timeout). An expired job is cancelled and recorded as
     * a transient JobTimeout failure (retried once by default).
     */
    double jobTimeoutS = -1.0;

    /**
     * External shutdown token (the CLI's SIGINT/SIGTERM handler
     * fires it). When it fires mid-run: in-flight jobs are
     * cancelled and drained, queued jobs never start, the journal
     * and sinks flush what completed, and run() still returns its
     * (partial) report. Null = no external shutdown. Non-const:
     * the run's fail-fast policy shares the token, so a first
     * failure may fire it too.
     */
    CancellationToken *shutdown = nullptr;

    // ---- resident-server execution (the serve daemon) -------------

    /**
     * External resident Runner to execute against instead of
     * constructing a per-run one. The caller owns its lifetime,
     * trace-cache attachment, and base configuration (which must
     * match the spec's baseConfig()/records — the serve daemon keys
     * its runner pool on exactly those fields). The driver never
     * calls setCancellation or setTraceCache on an external runner:
     * per-job cancellation rides the watchdog's thread-local tokens,
     * so concurrent requests sharing one Runner cannot clobber each
     * other's tokens (or leave a dangling one behind).
     */
    sim::Runner *runner = nullptr;

    /**
     * Reset the process-wide metrics registry at the start of run()
     * — the historical CLI behavior, so a --metrics-out document
     * never carries a previous run's counts. The serve daemon turns
     * this off: its serve.* counters, request-latency histogram, and
     * resident-cache counters must survive across requests (the
     * `health` request reports cumulative daemon-lifetime values).
     */
    bool resetMetrics = true;

    /**
     * Ignore the spec's own sinks and deliver results only to
     * addSink() sinks. The serve daemon substitutes capturing sinks
     * (driver/sink.hh makeCapturingSink) so rendered output travels
     * back in the response frame and the daemon never writes files
     * in its own working directory on a client's behalf.
     */
    bool suppressSpecSinks = false;

    // ---- observability (all default-off: a run with none of these
    // set produces byte-identical outputs to a build without them) --

    /** --progress: live jobs/records-per-second/ETA line on stderr. */
    bool progress = false;

    /** --metrics-out FILE: write the run's metrics JSON report. */
    std::string metricsOut;

    /** --trace-out FILE: write a Chrome/Perfetto span trace. */
    std::string traceOut;
};

/** Everything a run produced, for callers beyond the sinks. */
struct ExperimentReport
{
    RunMeta meta;
    std::vector<JobResult> results; ///< workload-major spec order
    bool sinksOk = true; ///< every sink wrote its output successfully

    /** Jobs that failed or were skipped by fail-fast. */
    std::size_t failedJobs = 0;

    /** Jobs replayed from the resume journal, not simulated. */
    std::size_t resumedJobs = 0;

    /** The external shutdown token fired during the run. */
    bool interrupted = false;

    /** True when every job completed and every sink wrote. */
    bool ok() const { return failedJobs == 0 && sinksOk; }
};

/**
 * Runs one spec. Construct, optionally add extra sinks on top of the
 * spec's own, then run() once.
 */
class ExperimentDriver
{
  public:
    explicit ExperimentDriver(ExperimentSpec spec,
                              DriverOptions opts = {});

    /** A sink in addition to the spec's sinks (tests, CLI). */
    void addSink(std::unique_ptr<Sink> sink);

    /** Thread count after overrides (as SweepEngine resolves it). */
    unsigned effectiveThreads() const;

    /** Records override after CLI overrides. */
    std::size_t effectiveRecords() const;

    /** Whether the on-disk trace cache will be consulted. */
    bool traceCacheEnabled() const;

    /** Failure policy after overrides (true = keep going). */
    bool keepGoingEnabled() const;

    /**
     * Expand, execute, and deliver to sinks. Results are
     * deterministic for a given spec: identical across thread
     * counts and trace-cache states.
     */
    ExperimentReport run();

  private:
    ExperimentSpec spec;
    DriverOptions opts;
    std::vector<std::unique_ptr<Sink>> extraSinks;
};

/** Compute one metric by name for a finished run. */
double computeMetric(sim::Runner &runner, const std::string &metric,
                     const std::string &workload,
                     const sim::RunStats &stats);

/**
 * The documented process exit code a finished report maps onto —
 * shared by the `prophet run` CLI and the serve daemon's response
 * frames, so the two paths cannot disagree: 0 success, 5 partial
 * under keep-going, 4 runtime failure (including a failed sink),
 * 6 interrupted (the external shutdown token drained the run).
 */
int exitCodeForReport(const ExperimentReport &report, bool keepGoing);

} // namespace prophet::driver

#endif // PROPHET_DRIVER_DRIVER_HH
