#include "driver/driver.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <thread>

#include "common/cancellation.hh"
#include "common/error.hh"
#include "common/fault_injection.hh"
#include "common/log.hh"
#include "common/metrics.hh"
#include "common/span_trace.hh"
#include "common/time.hh"
#include "driver/metrics_report.hh"
#include "sim/config_report.hh"
#include "sim/pipelines.hh"
#include "sim/sweep.hh"

namespace prophet::driver
{

namespace
{

/**
 * Classify a captured job failure into the JobResult error fields.
 * Skipped slots (fail-fast cancelled them before they started) and
 * every exception class get a code the CLI can map to an exit code.
 */
void
recordFailure(JobResult &slot, const sim::SweepEngine::JobFailure &f)
{
    slot.ok = false;
    slot.stats = sim::RunStats{};
    slot.metrics.clear();
    // Invariant the sinks rely on: errorMessage always starts with
    // the code name, so they print it without re-prefixing.
    // Error::what() is pre-rendered that way; the wrapped classes
    // get the prefix here.
    if (f.skipped) {
        slot.errorCode = ErrorCode::Cancelled;
        slot.errorMessage = "cancelled: skipped after an earlier "
                            "job failure (fail-fast)";
        return;
    }
    try {
        std::rethrow_exception(f.error);
    } catch (const Error &e) {
        slot.errorCode = e.code();
        slot.errorMessage = e.what();
    } catch (const std::exception &e) {
        slot.errorCode = ErrorCode::Internal;
        slot.errorMessage = std::string("internal: ") + e.what();
    } catch (...) {
        slot.errorCode = ErrorCode::Internal;
        slot.errorMessage = "internal: unknown exception";
    }
}

/**
 * Run one (workload, pipeline) job with bounded retry: a *transient*
 * failure (trace I/O, cache lock — classes where a second try can
 * genuinely succeed) retries with linear backoff up to
 * @p max_attempts total tries; permanent failures and cancellation
 * propagate immediately. The fault points "job.<w>/<p>" and
 * "job-transient.<w>/<p>" let tests fail exactly one job — the
 * latter with a retryable class, so arming it for a single shot
 * exercises the retry-then-succeed path.
 */
void
runJobWithRetry(sim::Runner &runner,
                const sim::PipelineInstance &inst, JobResult &slot,
                const CancellationToken &token,
                unsigned max_attempts, unsigned backoff_ms)
{
    const std::string job_key = slot.workload + "/" + slot.pipeline;
    if (max_attempts == 0)
        max_attempts = 1;
    for (unsigned attempt = 1;; ++attempt) {
        slot.attempts = attempt;
        try {
            ErrorContext ctx;
            ctx.workload = slot.workload;
            ctx.pipeline = slot.pipeline;
            if (fault::shouldFail("job." + job_key))
                throw Error(ErrorCode::FaultInjected,
                            "injected job failure", std::move(ctx));
            if (fault::shouldFail("job-transient." + job_key))
                throw Error(ErrorCode::TraceIo,
                            "injected transient job failure",
                            std::move(ctx));
            slot.stats = runner.run(inst, slot.workload);
            return;
        } catch (const Error &e) {
            if (!e.transient() || attempt >= max_attempts
                || token.cancelled())
                throw;
            metrics::counter("driver.retries").inc();
            prophet_warnf("  %s: transient failure (%s); retrying "
                          "(attempt %u/%u)",
                          job_key.c_str(), e.what(), attempt + 1,
                          max_attempts);
            if (backoff_ms > 0) {
                metrics::ScopedTimer backoff_timer(
                    metrics::histogram("phase.retry_backoff_ns"));
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(backoff_ms * attempt));
            }
        }
    }
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * --progress: a monitor thread repainting one '\r'-terminated stderr
 * status line every ~200 ms — jobs done/total, the aggregate
 * simulation rate from the "sim.records" counter, and a linear ETA.
 * stdout is never touched, so result output stays byte-identical;
 * the driver suppresses the per-job "done" stderr lines while the
 * monitor owns the line.
 */
class ProgressMonitor
{
  public:
    ProgressMonitor(std::string name, std::size_t total,
                    const std::atomic<std::size_t> &done)
        : specName(std::move(name)), totalJobs(total), doneJobs(done),
          start(std::chrono::steady_clock::now()),
          recordsCounter(metrics::counter("sim.records"))
    {
        worker = std::thread([this] { loop(); });
    }

    ProgressMonitor(const ProgressMonitor &) = delete;
    ProgressMonitor &operator=(const ProgressMonitor &) = delete;

    ~ProgressMonitor() { stop(); }

    /** Idempotent: final repaint, newline, join the thread. */
    void
    stop()
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            if (stopping)
                return;
            stopping = true;
        }
        wake.notify_all();
        worker.join();
        paint();
        std::fputc('\n', stderr);
    }

  private:
    void
    loop()
    {
        std::unique_lock<std::mutex> lock(mu);
        while (!wake.wait_for(lock, std::chrono::milliseconds(200),
                              [this] { return stopping; })) {
            lock.unlock();
            paint();
            lock.lock();
        }
    }

    void
    paint() const
    {
        double elapsed = secondsSince(start);
        std::size_t done = doneJobs.load(std::memory_order_relaxed);
        double mrecs = elapsed > 0.0
            ? static_cast<double>(recordsCounter.value()) / elapsed
                / 1e6
            : 0.0;
        char eta[32];
        if (done >= totalJobs)
            std::snprintf(eta, sizeof(eta), "done");
        else if (done == 0)
            std::snprintf(eta, sizeof(eta), "ETA --");
        else
            std::snprintf(eta, sizeof(eta), "ETA %.0fs",
                          elapsed / static_cast<double>(done)
                              * static_cast<double>(totalJobs - done));
        // One write per repaint; the trailing spaces erase leftovers
        // of a longer previous line.
        std::fprintf(stderr,
                     "\r%s: %zu/%zu jobs, %.1f Mrec/s, %s      ",
                     specName.c_str(), done, totalJobs, mrecs, eta);
    }

    std::string specName;
    std::size_t totalJobs;
    const std::atomic<std::size_t> &doneJobs;
    std::chrono::steady_clock::time_point start;
    metrics::Counter &recordsCounter;

    std::mutex mu;
    std::condition_variable wake;
    bool stopping = false;
    std::thread worker;
};

/** Does any requested output need the per-workload baseline run? */
bool
needsBaseline(const ExperimentSpec &spec)
{
    for (const auto &m : spec.metrics)
        if (m == "speedup" || m == "traffic" || m == "coverage")
            return true;
    for (const auto &p : spec.pipelines) {
        const sim::PipelineDef *def = sim::findPipeline(p.name);
        if (def && def->needsBaseline)
            return true;
    }
    return false;
}

} // anonymous namespace

double
computeMetric(sim::Runner &runner, const std::string &metric,
              const std::string &workload,
              const sim::RunStats &stats)
{
    if (metric == "speedup")
        return runner.speedup(workload, stats);
    if (metric == "traffic")
        return runner.trafficNorm(workload, stats);
    if (metric == "coverage")
        return runner.coverage(workload, stats);
    if (metric == "accuracy")
        return stats.prefetchAccuracy();
    if (metric == "ipc")
        return stats.ipc;
    if (metric == "meta_lines")
        return static_cast<double>(stats.offchipMeta.total());
    prophet_fatal("unknown metric name");
}

ExperimentDriver::ExperimentDriver(ExperimentSpec spec_in,
                                   DriverOptions opts_in)
    : spec(std::move(spec_in)), opts(std::move(opts_in))
{}

void
ExperimentDriver::addSink(std::unique_ptr<Sink> sink)
{
    extraSinks.push_back(std::move(sink));
}

unsigned
ExperimentDriver::effectiveThreads() const
{
    return opts.threads == DriverOptions::kNoThreads ? spec.threads
                                                     : opts.threads;
}

std::size_t
ExperimentDriver::effectiveRecords() const
{
    return opts.records == DriverOptions::kNoRecords ? spec.records
                                                     : opts.records;
}

bool
ExperimentDriver::traceCacheEnabled() const
{
    return opts.traceCache < 0 ? spec.traceCache
                               : opts.traceCache != 0;
}

bool
ExperimentDriver::keepGoingEnabled() const
{
    return opts.keepGoing < 0 ? spec.keepGoing : opts.keepGoing != 0;
}

ExperimentReport
ExperimentDriver::run()
{
    auto start = std::chrono::steady_clock::now();

    // Fresh instruments per run: a metrics report never carries a
    // previous run's counts. resetValues() keeps every registration,
    // so references cached across runs stay valid. Invisible without
    // the observability flags — it writes no output by itself.
    metrics::Registry::instance().resetValues();
    const bool tracing = !opts.traceOut.empty();
    if (tracing) {
        span::reset();
        span::setEnabled(true);
    }

    // Static reports short-circuit the job matrix entirely.
    if (spec.report == ExperimentSpec::Report::SystemConfig) {
        std::fputs(sim::systemConfigReport(spec.baseConfig()).c_str(),
                   stdout);
        ExperimentReport report;
        report.meta.specName = spec.name;
        report.meta.timestamp = iso8601UtcNow();
        return report;
    }

    sim::Runner runner(spec.baseConfig(), effectiveRecords());
    std::shared_ptr<trace::TraceCache> cache;
    if (traceCacheEnabled()) {
        cache =
            std::make_shared<trace::TraceCache>(opts.traceCacheDir);
        runner.setTraceCache(cache);
    }

    sim::SweepEngine engine(runner, effectiveThreads());
    prophet_infof("%s: %zu workloads x %zu pipelines on %u "
                  "thread%s%s",
                  spec.name.c_str(), spec.workloads.size(),
                  spec.pipelines.size(), engine.threads(),
                  engine.threads() == 1 ? "" : "s",
                  cache ? " (trace cache on)" : "");

    // The experiment-wide span is heap-held so it can be closed
    // explicitly before the trace file is written.
    auto experiment_span = std::make_unique<span::Span>(
        "experiment " + spec.name, "experiment");

    const bool keep_going = keepGoingEnabled();
    const auto policy = keep_going
        ? sim::SweepEngine::FailurePolicy::KeepGoing
        : sim::SweepEngine::FailurePolicy::FailFast;

    // Fail-fast cancellation: the first failure fires the token and
    // every in-flight System unwinds within a bounded number of
    // records. Attaching the token is bit-identical when it never
    // fires, so the no-failure path is unchanged.
    CancellationToken token;
    runner.setCancellation(&token);

    // Phase 1: baselines, one job per workload, when any metric or
    // pipeline normalizes to them (keeps the fan-out phase from
    // computing them redundantly inside racing jobs). A warm-up
    // failure is not final — the workload's jobs recompute the
    // baseline themselves and fail individually if it truly cannot
    // be built — so warm-up always runs keep-going.
    if (needsBaseline(spec)) {
        auto warm = engine.tryForEach(
            spec.workloads.size(),
            [&](std::size_t i) {
                span::Span warm_span(
                    "baseline " + spec.workloads[i], "job");
                runner.baseline(spec.workloads[i]);
            },
            sim::SweepEngine::FailurePolicy::KeepGoing);
        for (std::size_t i = 0; i < warm.size(); ++i)
            if (!warm[i].ok())
                prophet_warnf("  baseline warm-up failed for %s; its "
                              "jobs will retry individually",
                              spec.workloads[i].c_str());
    }

    // Phase 2: every (workload x pipeline) as an independent,
    // fault-isolated job, workload-major. Slots are pre-sized: jobs
    // write disjoint indices and the merge order is the spec order
    // by construction. One failing job cannot take down its
    // siblings; its slot records why it failed instead.
    ExperimentReport report;
    std::size_t per = spec.pipelines.size();
    report.results.resize(spec.workloads.size() * per);
    std::atomic<std::size_t> jobs_done{0};
    std::unique_ptr<ProgressMonitor> monitor;
    if (opts.progress)
        monitor = std::make_unique<ProgressMonitor>(
            spec.name, report.results.size(), jobs_done);
    auto failures = engine.tryForEach(
        report.results.size(),
        [&](std::size_t i) {
            JobResult &slot = report.results[i];
            const sim::PipelineInstance &inst =
                spec.pipelines[i % per];
            slot.workload = spec.workloads[i / per];
            slot.pipeline = inst.resultName();
            span::Span job_span(
                "job " + slot.workload + "/" + slot.pipeline, "job");
            auto t0 = std::chrono::steady_clock::now();
            try {
                runJobWithRetry(runner, inst, slot, token,
                                opts.maxAttempts,
                                opts.retryBackoffMs);
            } catch (...) {
                // Failed jobs still report their duration and count
                // toward progress; the failure handling below fills
                // in why.
                slot.seconds = secondsSince(t0);
                jobs_done.fetch_add(1, std::memory_order_relaxed);
                throw;
            }
            slot.seconds = secondsSince(t0);
            jobs_done.fetch_add(1, std::memory_order_relaxed);
            // The per-job line would fight the monitor's single
            // repainted line, so --progress replaces it.
            if (!opts.progress)
                prophet_infof("  %s/%s done", slot.workload.c_str(),
                              slot.pipeline.c_str());
        },
        policy, &token);
    if (monitor)
        monitor->stop();

    for (std::size_t i = 0; i < failures.size(); ++i) {
        if (failures[i].ok())
            continue;
        // Fail-fast skips before the slot's identity was filled in.
        JobResult &slot = report.results[i];
        if (slot.workload.empty()) {
            slot.workload = spec.workloads[i / per];
            slot.pipeline = spec.pipelines[i % per].resultName();
        }
        recordFailure(slot, failures[i]);
        ++report.failedJobs;
    }

    // Metric derivation is sequential: baselines are cached by now
    // and the division is trivial. Still fault-isolated per job — a
    // metric that needs an uncomputable baseline fails that job, not
    // the run.
    for (auto &r : report.results) {
        if (!r.ok)
            continue;
        try {
            for (const auto &m : spec.metrics)
                r.metrics.emplace_back(
                    m, computeMetric(runner, m, r.workload, r.stats));
        } catch (...) {
            sim::SweepEngine::JobFailure f;
            f.error = std::current_exception();
            recordFailure(r, f);
            ++report.failedJobs;
        }
    }

    auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start);
    report.meta.specName = spec.name;
    report.meta.specHash = spec.resultHash(effectiveRecords());
    report.meta.records = effectiveRecords();
    report.meta.threads = engine.threads();
    report.meta.wallSeconds = elapsed.count();
    report.meta.timestamp = iso8601UtcNow();
    if (cache) {
        auto cs = cache->stats();
        report.meta.traceCacheHits = cs.hits;
        report.meta.traceCacheMisses = cs.misses;
    }
    // Cumulative phase split for the table sink's wall-clock line:
    // "simulate" covers every System::run (warmup + functional warm +
    // measured window + Prophet's profiling pass), "trace-load" the
    // generate-or-cache-load phase. The finer per-phase split — with
    // profiling broken out so sampled-vs-full speedups compare pure
    // timing simulation — is in --metrics-out "phases".
    report.meta.traceLoadSeconds =
        static_cast<double>(
            metrics::histogram("phase.trace_load_ns").sum())
        / 1e9;
    report.meta.simulateSeconds =
        static_cast<double>(
            metrics::histogram("phase.warmup_ns").sum()
            + metrics::histogram("phase.warm_ns").sum()
            + metrics::histogram("phase.profile_ns").sum()
            + metrics::histogram("phase.simulate_ns").sum())
        / 1e9;

    // Deliver in spec order to the spec's sinks plus any extras.
    std::vector<std::unique_ptr<Sink>> sinks;
    if (spec.sinks.empty()) {
        sinks.push_back(makeSink(SinkSpec{}));
    } else {
        for (const auto &s : spec.sinks)
            sinks.push_back(makeSink(s));
    }
    for (auto &s : extraSinks)
        sinks.push_back(std::move(s));
    extraSinks.clear();
    {
        span::Span sink_span("sink-render", "phase");
        metrics::ScopedTimer sink_timer(
            metrics::histogram("phase.sink_render_ns"));
        for (const auto &s : sinks) {
            for (const auto &r : report.results)
                s->result(r);
            if (!s->finish(spec, report.meta))
                report.sinksOk = false;
        }
    }

    // Observability outputs last, so they cover the sink phase too.
    // A requested-but-unwritable file fails the run like any sink.
    experiment_span.reset();
    if (tracing) {
        span::setEnabled(false);
        if (!span::writeJson(opts.traceOut))
            report.sinksOk = false;
    }
    if (!opts.metricsOut.empty()
        && !writeMetricsReport(report, opts.metricsOut))
        report.sinksOk = false;
    return report;
}

} // namespace prophet::driver
