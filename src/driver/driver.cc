#include "driver/driver.hh"

#include <chrono>
#include <cstdio>

#include "common/log.hh"
#include "common/time.hh"
#include "sim/config_report.hh"
#include "sim/pipelines.hh"
#include "sim/sweep.hh"

namespace prophet::driver
{

namespace
{

/** Does any requested output need the per-workload baseline run? */
bool
needsBaseline(const ExperimentSpec &spec)
{
    for (const auto &m : spec.metrics)
        if (m == "speedup" || m == "traffic" || m == "coverage")
            return true;
    for (const auto &p : spec.pipelines) {
        const sim::PipelineDef *def = sim::findPipeline(p.name);
        if (def && def->needsBaseline)
            return true;
    }
    return false;
}

} // anonymous namespace

double
computeMetric(sim::Runner &runner, const std::string &metric,
              const std::string &workload,
              const sim::RunStats &stats)
{
    if (metric == "speedup")
        return runner.speedup(workload, stats);
    if (metric == "traffic")
        return runner.trafficNorm(workload, stats);
    if (metric == "coverage")
        return runner.coverage(workload, stats);
    if (metric == "accuracy")
        return stats.prefetchAccuracy();
    if (metric == "ipc")
        return stats.ipc;
    if (metric == "meta_lines")
        return static_cast<double>(stats.offchipMeta.total());
    prophet_fatal("unknown metric name");
}

ExperimentDriver::ExperimentDriver(ExperimentSpec spec_in,
                                   DriverOptions opts_in)
    : spec(std::move(spec_in)), opts(std::move(opts_in))
{}

void
ExperimentDriver::addSink(std::unique_ptr<Sink> sink)
{
    extraSinks.push_back(std::move(sink));
}

unsigned
ExperimentDriver::effectiveThreads() const
{
    return opts.threads == DriverOptions::kNoThreads ? spec.threads
                                                     : opts.threads;
}

std::size_t
ExperimentDriver::effectiveRecords() const
{
    return opts.records == DriverOptions::kNoRecords ? spec.records
                                                     : opts.records;
}

bool
ExperimentDriver::traceCacheEnabled() const
{
    return opts.traceCache < 0 ? spec.traceCache
                               : opts.traceCache != 0;
}

ExperimentReport
ExperimentDriver::run()
{
    auto start = std::chrono::steady_clock::now();

    // Static reports short-circuit the job matrix entirely.
    if (spec.report == ExperimentSpec::Report::SystemConfig) {
        std::fputs(sim::systemConfigReport(spec.baseConfig()).c_str(),
                   stdout);
        ExperimentReport report;
        report.meta.specName = spec.name;
        report.meta.timestamp = iso8601UtcNow();
        return report;
    }

    sim::Runner runner(spec.baseConfig(), effectiveRecords());
    std::shared_ptr<trace::TraceCache> cache;
    if (traceCacheEnabled()) {
        cache =
            std::make_shared<trace::TraceCache>(opts.traceCacheDir);
        runner.setTraceCache(cache);
    }

    sim::SweepEngine engine(runner, effectiveThreads());
    std::fprintf(stderr,
                 "%s: %zu workloads x %zu pipelines on %u "
                 "thread%s%s\n",
                 spec.name.c_str(), spec.workloads.size(),
                 spec.pipelines.size(), engine.threads(),
                 engine.threads() == 1 ? "" : "s",
                 cache ? " (trace cache on)" : "");

    // Phase 1: baselines, one job per workload, when any metric or
    // pipeline normalizes to them (keeps the fan-out phase from
    // computing them redundantly inside racing jobs).
    if (needsBaseline(spec))
        engine.warmBaselines(spec.workloads);

    // Phase 2: every (workload x pipeline) as an independent job,
    // workload-major. Slots are pre-sized: jobs write disjoint
    // indices and the merge order is the spec order by construction.
    ExperimentReport report;
    std::size_t per = spec.pipelines.size();
    report.results.resize(spec.workloads.size() * per);
    engine.forEach(report.results.size(), [&](std::size_t i) {
        JobResult &slot = report.results[i];
        const sim::PipelineInstance &inst = spec.pipelines[i % per];
        slot.workload = spec.workloads[i / per];
        slot.pipeline = inst.resultName();
        slot.stats = runner.run(inst, slot.workload);
        std::fprintf(stderr, "  %s/%s done\n", slot.workload.c_str(),
                     slot.pipeline.c_str());
    });

    // Metric derivation is sequential: baselines are cached by now
    // and the division is trivial.
    for (auto &r : report.results)
        for (const auto &m : spec.metrics)
            r.metrics.emplace_back(
                m, computeMetric(runner, m, r.workload, r.stats));

    auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start);
    report.meta.specName = spec.name;
    report.meta.specHash = spec.resultHash(effectiveRecords());
    report.meta.records = effectiveRecords();
    report.meta.threads = engine.threads();
    report.meta.wallSeconds = elapsed.count();
    report.meta.timestamp = iso8601UtcNow();
    if (cache) {
        auto cs = cache->stats();
        report.meta.traceCacheHits = cs.hits;
        report.meta.traceCacheMisses = cs.misses;
    }

    // Deliver in spec order to the spec's sinks plus any extras.
    std::vector<std::unique_ptr<Sink>> sinks;
    if (spec.sinks.empty()) {
        sinks.push_back(makeSink(SinkSpec{}));
    } else {
        for (const auto &s : spec.sinks)
            sinks.push_back(makeSink(s));
    }
    for (auto &s : extraSinks)
        sinks.push_back(std::move(s));
    extraSinks.clear();
    for (const auto &s : sinks) {
        for (const auto &r : report.results)
            s->result(r);
        if (!s->finish(spec, report.meta))
            report.sinksOk = false;
    }
    return report;
}

} // namespace prophet::driver
