#include "driver/driver.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <set>
#include <thread>

#include "common/cancellation.hh"
#include "common/error.hh"
#include "common/exit_codes.hh"
#include "common/fault_injection.hh"
#include "common/log.hh"
#include "common/metrics.hh"
#include "common/span_trace.hh"
#include "common/time.hh"
#include "driver/journal.hh"
#include "driver/metrics_report.hh"
#include "sim/config_report.hh"
#include "sim/pipelines.hh"
#include "sim/sweep.hh"

namespace prophet::driver
{

namespace
{

/**
 * Classify a captured job failure into the JobResult error fields.
 * Skipped slots (fail-fast cancelled them before they started) and
 * every exception class get a code the CLI can map to an exit code.
 */
void
recordFailure(JobResult &slot, const sim::SweepEngine::JobFailure &f,
              bool interrupted)
{
    slot.ok = false;
    slot.stats = sim::RunStats{};
    slot.metrics.clear();
    // Invariant the sinks rely on: errorMessage always starts with
    // the code name, so they print it without re-prefixing.
    // Error::what() is pre-rendered that way; the wrapped classes
    // get the prefix here.
    if (f.skipped) {
        slot.errorCode = ErrorCode::Cancelled;
        slot.errorMessage = interrupted
            ? "cancelled: run interrupted before this job started; "
              "rerun with --resume to continue"
            : "cancelled: skipped after an earlier "
              "job failure (fail-fast)";
        return;
    }
    try {
        std::rethrow_exception(f.error);
    } catch (const Error &e) {
        slot.errorCode = e.code();
        slot.errorMessage = e.what();
    } catch (const std::exception &e) {
        slot.errorCode = ErrorCode::Internal;
        slot.errorMessage = std::string("internal: ") + e.what();
    } catch (...) {
        slot.errorCode = ErrorCode::Internal;
        slot.errorMessage = "internal: unknown exception";
    }
}

/**
 * Watchdog over in-flight job attempts. One monitor thread polls a
 * registry of active attempts and fires an attempt's private
 * CancellationToken when (a) the attempt outlives the per-job
 * deadline — counted under "watchdog.fires" and surfaced to the
 * retry loop as a transient JobTimeout — or (b) the run's global
 * token fires (graceful shutdown / fail-fast), which must reach
 * Systems that are polling their private token instead of the
 * global one.
 *
 * Created only when a deadline or an external shutdown token is in
 * play: without it, jobs poll the runner-wide token exactly as
 * before, so the default path is untouched.
 */
class JobWatchdog
{
  public:
    struct Watch
    {
        CancellationToken token; ///< this attempt's private token
        std::string jobKey;
        std::chrono::steady_clock::time_point deadline{};
        bool hasDeadline = false;
        std::atomic<bool> timedOut{false};
    };

    JobWatchdog(double deadline_s, const CancellationToken *global)
        : deadlineS(deadline_s), globalToken(global)
    {
        worker = std::thread([this] { loop(); });
    }

    JobWatchdog(const JobWatchdog &) = delete;
    JobWatchdog &operator=(const JobWatchdog &) = delete;

    ~JobWatchdog()
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            stopping = true;
        }
        wake.notify_all();
        worker.join();
    }

    double deadlineSeconds() const { return deadlineS; }

    /**
     * Register one attempt. Each retry gets a fresh Watch: tokens
     * cannot un-cancel, so a timed-out attempt's token must not
     * poison the retry.
     */
    std::shared_ptr<Watch>
    beginAttempt(const std::string &job_key)
    {
        auto w = std::make_shared<Watch>();
        w->jobKey = job_key;
        if (deadlineS > 0.0) {
            w->deadline = std::chrono::steady_clock::now()
                + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(deadlineS));
            w->hasDeadline = true;
        }
        // An attempt started after shutdown fired is born cancelled
        // — the monitor's next poll would catch it, but this closes
        // the window.
        if (globalToken && globalToken->cancelled())
            w->token.cancel();
        std::lock_guard<std::mutex> lock(mu);
        active.push_back(w);
        return w;
    }

    void
    endAttempt(const std::shared_ptr<Watch> &w)
    {
        std::lock_guard<std::mutex> lock(mu);
        active.erase(std::remove(active.begin(), active.end(), w),
                     active.end());
    }

  private:
    void
    loop()
    {
        // Poll at a quarter of the deadline (clamped to [1, 100] ms)
        // so the overshoot past a deadline is bounded without
        // burning a core; 100 ms when only shutdown propagation is
        // needed.
        auto interval = std::chrono::milliseconds(100);
        if (deadlineS > 0.0)
            interval = std::chrono::milliseconds(std::min(
                100L,
                std::max(1L, static_cast<long>(deadlineS * 250.0))));
        std::unique_lock<std::mutex> lock(mu);
        while (!wake.wait_for(lock, interval,
                              [this] { return stopping; })) {
            bool shutdown_fired =
                globalToken && globalToken->cancelled();
            auto now = std::chrono::steady_clock::now();
            std::vector<std::string> expired;
            for (const auto &w : active) {
                if (shutdown_fired) {
                    w->token.cancel();
                    continue;
                }
                if (w->hasDeadline && now >= w->deadline
                    && !w->timedOut.load(std::memory_order_relaxed)) {
                    w->timedOut.store(true,
                                      std::memory_order_relaxed);
                    w->token.cancel();
                    metrics::counter("watchdog.fires").inc();
                    expired.push_back(w->jobKey);
                }
            }
            // Log outside the registry lock: begin/endAttempt on
            // worker threads must never wait on stderr.
            lock.unlock();
            for (const auto &key : expired)
                prophet_warnf("  %s: exceeded the %.3gs job "
                              "deadline; cancelling this attempt",
                              key.c_str(), deadlineS);
            lock.lock();
        }
    }

    double deadlineS;
    const CancellationToken *globalToken;

    std::mutex mu;
    std::condition_variable wake;
    bool stopping = false;
    std::vector<std::shared_ptr<Watch>> active;
    std::thread worker;
};

/**
 * RAII scope of one supervised attempt: registers a Watch and routes
 * every System the calling thread builds to the attempt's private
 * token (Runner's thread-local override). No-op without a watchdog —
 * jobs then poll the runner-wide token, the pre-watchdog behaviour.
 */
class AttemptScope
{
  public:
    AttemptScope(JobWatchdog *watchdog, const std::string &job_key)
        : wd(watchdog)
    {
        if (!wd)
            return;
        watch = wd->beginAttempt(job_key);
        sim::Runner::setThreadJobCancellation(&watch->token);
    }

    AttemptScope(const AttemptScope &) = delete;
    AttemptScope &operator=(const AttemptScope &) = delete;

    ~AttemptScope()
    {
        if (!watch)
            return;
        sim::Runner::setThreadJobCancellation(nullptr);
        wd->endAttempt(watch);
    }

    bool
    timedOut() const
    {
        return watch
            && watch->timedOut.load(std::memory_order_relaxed);
    }

  private:
    JobWatchdog *wd;
    std::shared_ptr<JobWatchdog::Watch> watch;
};

/**
 * Run one (workload, pipeline) job with bounded retry: a *transient*
 * failure (trace I/O, cache lock, watchdog timeout — classes where a
 * second try can genuinely succeed) retries with linear backoff up
 * to @p max_attempts total tries; permanent failures and
 * cancellation propagate immediately. The fault points "job.<w>/<p>"
 * and "job-transient.<w>/<p>" let tests fail exactly one job — the
 * latter with a retryable class, so arming it for a single shot
 * exercises the retry-then-succeed path.
 */
void
runJobWithRetry(sim::Runner &runner,
                const sim::PipelineInstance &inst, JobResult &slot,
                const CancellationToken &token,
                JobWatchdog *watchdog, unsigned max_attempts,
                unsigned backoff_ms)
{
    const std::string job_key = slot.workload + "/" + slot.pipeline;
    if (max_attempts == 0)
        max_attempts = 1;
    for (unsigned attempt = 1;; ++attempt) {
        slot.attempts = attempt;
        try {
            AttemptScope scope(watchdog, job_key);
            try {
                ErrorContext ctx;
                ctx.workload = slot.workload;
                ctx.pipeline = slot.pipeline;
                if (fault::shouldFail("job." + job_key))
                    throw Error(ErrorCode::FaultInjected,
                                "injected job failure",
                                std::move(ctx));
                if (fault::shouldFail("job-transient." + job_key))
                    throw Error(ErrorCode::TraceIo,
                                "injected transient job failure",
                                std::move(ctx));
                slot.stats = runner.run(inst, slot.workload);
                return;
            } catch (const Error &e) {
                // A cancellation caused by this attempt's own
                // deadline is a timeout — transient, so the loop
                // below retries it with a fresh deadline. External
                // cancellation (shutdown, fail-fast) stays
                // Cancelled and propagates.
                if (e.code() == ErrorCode::Cancelled
                    && scope.timedOut()) {
                    char msg[96];
                    std::snprintf(msg, sizeof(msg),
                                  "job exceeded its %.3gs deadline "
                                  "and was cancelled by the watchdog",
                                  watchdog->deadlineSeconds());
                    ErrorContext tctx;
                    tctx.workload = slot.workload;
                    tctx.pipeline = slot.pipeline;
                    throw Error(ErrorCode::JobTimeout, msg,
                                std::move(tctx));
                }
                throw;
            }
        } catch (const Error &e) {
            if (!e.transient() || attempt >= max_attempts
                || token.cancelled())
                throw;
            metrics::counter("driver.retries").inc();
            prophet_warnf("  %s: transient failure (%s); retrying "
                          "(attempt %u/%u)",
                          job_key.c_str(), e.what(), attempt + 1,
                          max_attempts);
            if (backoff_ms > 0) {
                metrics::ScopedTimer backoff_timer(
                    metrics::histogram("phase.retry_backoff_ns"));
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(backoff_ms * attempt));
            }
        }
    }
}

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * --progress: a monitor thread repainting one '\r'-terminated stderr
 * status line every ~200 ms — jobs done/total, the aggregate
 * simulation rate from the "sim.records" counter, and a linear ETA.
 * stdout is never touched, so result output stays byte-identical;
 * the driver suppresses the per-job "done" stderr lines while the
 * monitor owns the line.
 */
class ProgressMonitor
{
  public:
    ProgressMonitor(std::string name, std::size_t total,
                    const std::atomic<std::size_t> &done)
        : specName(std::move(name)), totalJobs(total), doneJobs(done),
          start(std::chrono::steady_clock::now()),
          recordsCounter(metrics::counter("sim.records"))
    {
        worker = std::thread([this] { loop(); });
    }

    ProgressMonitor(const ProgressMonitor &) = delete;
    ProgressMonitor &operator=(const ProgressMonitor &) = delete;

    ~ProgressMonitor() { stop(); }

    /** Idempotent: final repaint, newline, join the thread. */
    void
    stop()
    {
        {
            std::lock_guard<std::mutex> lock(mu);
            if (stopping)
                return;
            stopping = true;
        }
        wake.notify_all();
        worker.join();
        paint();
        std::fputc('\n', stderr);
    }

  private:
    void
    loop()
    {
        std::unique_lock<std::mutex> lock(mu);
        while (!wake.wait_for(lock, std::chrono::milliseconds(200),
                              [this] { return stopping; })) {
            lock.unlock();
            paint();
            lock.lock();
        }
    }

    void
    paint() const
    {
        double elapsed = secondsSince(start);
        std::size_t done = doneJobs.load(std::memory_order_relaxed);
        double mrecs = elapsed > 0.0
            ? static_cast<double>(recordsCounter.value()) / elapsed
                / 1e6
            : 0.0;
        char eta[32];
        if (done >= totalJobs)
            std::snprintf(eta, sizeof(eta), "done");
        else if (done == 0)
            std::snprintf(eta, sizeof(eta), "ETA --");
        else
            std::snprintf(eta, sizeof(eta), "ETA %.0fs",
                          elapsed / static_cast<double>(done)
                              * static_cast<double>(totalJobs - done));
        // One write per repaint; the trailing spaces erase leftovers
        // of a longer previous line.
        std::fprintf(stderr,
                     "\r%s: %zu/%zu jobs, %.1f Mrec/s, %s      ",
                     specName.c_str(), done, totalJobs, mrecs, eta);
    }

    std::string specName;
    std::size_t totalJobs;
    const std::atomic<std::size_t> &doneJobs;
    std::chrono::steady_clock::time_point start;
    metrics::Counter &recordsCounter;

    std::mutex mu;
    std::condition_variable wake;
    bool stopping = false;
    std::thread worker;
};

/** Does any requested output need the per-workload baseline run? */
bool
needsBaseline(const ExperimentSpec &spec)
{
    for (const auto &m : spec.metrics)
        if (m == "speedup" || m == "traffic" || m == "coverage")
            return true;
    for (const auto &p : spec.pipelines) {
        const sim::PipelineDef *def = sim::findPipeline(p.name);
        if (def && def->needsBaseline)
            return true;
    }
    return false;
}

} // anonymous namespace

double
computeMetric(sim::Runner &runner, const std::string &metric,
              const std::string &workload,
              const sim::RunStats &stats)
{
    if (metric == "speedup")
        return runner.speedup(workload, stats);
    if (metric == "traffic")
        return runner.trafficNorm(workload, stats);
    if (metric == "coverage")
        return runner.coverage(workload, stats);
    if (metric == "accuracy")
        return stats.prefetchAccuracy();
    if (metric == "ipc")
        return stats.ipc;
    if (metric == "meta_lines")
        return static_cast<double>(stats.offchipMeta.total());
    prophet_fatal("unknown metric name");
}

ExperimentDriver::ExperimentDriver(ExperimentSpec spec_in,
                                   DriverOptions opts_in)
    : spec(std::move(spec_in)), opts(std::move(opts_in))
{}

void
ExperimentDriver::addSink(std::unique_ptr<Sink> sink)
{
    extraSinks.push_back(std::move(sink));
}

unsigned
ExperimentDriver::effectiveThreads() const
{
    return opts.threads == DriverOptions::kNoThreads ? spec.threads
                                                     : opts.threads;
}

std::size_t
ExperimentDriver::effectiveRecords() const
{
    return opts.records == DriverOptions::kNoRecords ? spec.records
                                                     : opts.records;
}

bool
ExperimentDriver::traceCacheEnabled() const
{
    return opts.traceCache < 0 ? spec.traceCache
                               : opts.traceCache != 0;
}

bool
ExperimentDriver::keepGoingEnabled() const
{
    return opts.keepGoing < 0 ? spec.keepGoing : opts.keepGoing != 0;
}

ExperimentReport
ExperimentDriver::run()
{
    auto start = std::chrono::steady_clock::now();

    // Fresh instruments per run: a metrics report never carries a
    // previous run's counts. resetValues() keeps every registration,
    // so references cached across runs stay valid. Invisible without
    // the observability flags — it writes no output by itself. The
    // serve daemon opts out: its counters are daemon-lifetime values
    // and concurrent requests must not zero each other mid-flight.
    if (opts.resetMetrics)
        metrics::Registry::instance().resetValues();
    const bool tracing = !opts.traceOut.empty();
    if (tracing) {
        span::reset();
        span::setEnabled(true);
    }

    // Static reports short-circuit the job matrix entirely.
    if (spec.report == ExperimentSpec::Report::SystemConfig) {
        std::fputs(sim::systemConfigReport(spec.baseConfig()).c_str(),
                   stdout);
        ExperimentReport report;
        report.meta.specName = spec.name;
        report.meta.timestamp = iso8601UtcNow();
        return report;
    }

    // Either a per-run Runner (the historical path) or the caller's
    // resident one (the serve daemon — trace/baseline caches then
    // outlive this run and warm the next request for the same
    // configuration).
    std::unique_ptr<sim::Runner> owned_runner;
    if (!opts.runner)
        owned_runner = std::make_unique<sim::Runner>(
            spec.baseConfig(), effectiveRecords());
    sim::Runner &runner = opts.runner ? *opts.runner : *owned_runner;
    std::shared_ptr<trace::TraceCache> cache;
    if (owned_runner && traceCacheEnabled()) {
        cache =
            std::make_shared<trace::TraceCache>(opts.traceCacheDir);
        runner.setTraceCache(cache);
    }

    sim::SweepEngine engine(runner, effectiveThreads());
    prophet_infof("%s: %zu workloads x %zu pipelines on %u "
                  "thread%s%s",
                  spec.name.c_str(), spec.workloads.size(),
                  spec.pipelines.size(), engine.threads(),
                  engine.threads() == 1 ? "" : "s",
                  cache ? " (trace cache on)" : "");

    // The experiment-wide span is heap-held so it can be closed
    // explicitly before the trace file is written.
    auto experiment_span = std::make_unique<span::Span>(
        "experiment " + spec.name, "experiment");

    const bool keep_going = keepGoingEnabled();
    const auto policy = keep_going
        ? sim::SweepEngine::FailurePolicy::KeepGoing
        : sim::SweepEngine::FailurePolicy::FailFast;

    // Fail-fast cancellation: the first failure fires the token and
    // every in-flight System unwinds within a bounded number of
    // records. Attaching the token is bit-identical when it never
    // fires, so the no-failure path is unchanged. When the caller
    // supplied an external shutdown token (the CLI's signal handler
    // fires it), fail-fast and shutdown share one token: either
    // cause drains in-flight jobs the same way.
    CancellationToken local_token;
    CancellationToken &token =
        opts.shutdown ? *opts.shutdown : local_token;
    // An external (resident) runner is shared by concurrent runs, so
    // the runner-wide token stays untouched — a per-run token wired
    // there would dangle after this frame returns and clobber the
    // other runs' cancellation. The watchdog (forced on by
    // opts.shutdown below) routes both shutdown and fail-fast to its
    // per-attempt thread-local tokens instead.
    if (owned_runner)
        runner.setCancellation(&token);

    const std::uint64_t result_hash =
        spec.resultHash(effectiveRecords());
    const std::size_t per = spec.pipelines.size();
    const std::size_t total_jobs = spec.workloads.size() * per;

    // Resume journal: load what a previous (interrupted) run already
    // completed, and checkpoint every completion of this one. A
    // journal written for a different spec is a refusal (SpecError —
    // replaying its results would silently mix experiments); an
    // unreadable/uncreatable journal merely downgrades to running
    // without checkpointing.
    std::unique_ptr<ResultJournal> journal;
    if (!opts.journalPath.empty()) {
        try {
            ResultJournal::Options jopts;
            jopts.fsyncEachAppend = opts.journalFsync;
            journal = std::make_unique<ResultJournal>(
                opts.journalPath, result_hash, jopts);
        } catch (const SpecError &) {
            throw;
        } catch (const std::exception &e) {
            prophet_warnf("journal: %s unusable (%s); running "
                          "without checkpointing",
                          opts.journalPath.c_str(), e.what());
        }
    }
    std::vector<const JournalEntry *> replay(total_jobs, nullptr);
    std::set<std::string> replayed_baselines;
    if (journal) {
        for (const JournalEntry &e : journal->entries()) {
            if (e.kind == JournalEntry::Kind::Baseline) {
                runner.injectBaseline(e.workload, e.stats);
                replayed_baselines.insert(e.workload);
                continue;
            }
            const std::size_t idx = e.jobIndex;
            // Identity check per entry: hashes collide with
            // near-zero probability, but a journal edited or grown
            // by hand must not inject a wrong slot.
            if (idx >= total_jobs
                || e.workload != spec.workloads[idx / per]
                || e.pipeline
                    != spec.pipelines[idx % per].resultName()) {
                prophet_warnf("journal: entry for %s/%s does not "
                              "match this spec's job grid; ignored",
                              e.workload.c_str(), e.pipeline.c_str());
                continue;
            }
            replay[idx] = &e;
        }
        std::size_t hits = 0;
        for (const auto *e : replay)
            if (e)
                ++hits;
        if (hits > 0 || !replayed_baselines.empty())
            prophet_infof("%s: resuming — %zu of %zu completed "
                          "job(s) replayed from %s",
                          spec.name.c_str(), hits, total_jobs,
                          journal->path().c_str());
    }

    // Watchdog: only when a per-job deadline or an external shutdown
    // token is in play. API users who set neither get exactly the
    // old execution path (no monitor thread, no per-attempt tokens).
    const double deadline_s =
        opts.jobTimeoutS < 0.0 ? spec.deadlineS : opts.jobTimeoutS;
    std::unique_ptr<JobWatchdog> watchdog;
    if (deadline_s > 0.0 || opts.shutdown)
        watchdog =
            std::make_unique<JobWatchdog>(deadline_s, &token);

    // Phase 1: baselines, one job per workload, when any metric or
    // pipeline normalizes to them (keeps the fan-out phase from
    // computing them redundantly inside racing jobs). A warm-up
    // failure is not final — the workload's jobs recompute the
    // baseline themselves and fail individually if it truly cannot
    // be built — so warm-up always runs keep-going. Baselines
    // journal too: they are the expensive half of a resumed run.
    if (needsBaseline(spec)) {
        auto warm = engine.tryForEach(
            spec.workloads.size(),
            [&](std::size_t i) {
                const std::string &w = spec.workloads[i];
                span::Span warm_span("baseline " + w, "job");
                // Scope the warm-up under the watchdog too: on a
                // shared resident runner this is the only cancellation
                // route, and a deadline applies to baselines as much
                // as to the jobs they feed.
                AttemptScope scope(watchdog.get(), w + "/baseline");
                const sim::RunStats &stats = runner.baseline(w);
                if (journal && !replayed_baselines.count(w)) {
                    JournalEntry e;
                    e.kind = JournalEntry::Kind::Baseline;
                    e.workload = w;
                    e.stats = stats;
                    journal->append(e);
                }
            },
            sim::SweepEngine::FailurePolicy::KeepGoing);
        for (std::size_t i = 0; i < warm.size(); ++i)
            if (!warm[i].ok())
                prophet_warnf("  baseline warm-up failed for %s; its "
                              "jobs will retry individually",
                              spec.workloads[i].c_str());
    }

    // Phase 2: every (workload x pipeline) as an independent,
    // fault-isolated job, workload-major. Slots are pre-sized: jobs
    // write disjoint indices and the merge order is the spec order
    // by construction. One failing job cannot take down its
    // siblings; its slot records why it failed instead.
    ExperimentReport report;
    report.results.resize(total_jobs);
    std::atomic<std::size_t> jobs_done{0};
    std::unique_ptr<ProgressMonitor> monitor;
    if (opts.progress)
        monitor = std::make_unique<ProgressMonitor>(
            spec.name, report.results.size(), jobs_done);
    auto failures = engine.tryForEach(
        report.results.size(),
        [&](std::size_t i) {
            JobResult &slot = report.results[i];
            const sim::PipelineInstance &inst =
                spec.pipelines[i % per];
            slot.workload = spec.workloads[i / per];
            slot.pipeline = inst.resultName();
            // A journaled completion replays instead of simulating:
            // same stats bits, so downstream metrics and sinks are
            // indistinguishable from a from-scratch run.
            if (replay[i]) {
                slot.stats = replay[i]->stats;
                slot.attempts = replay[i]->attempts;
                slot.resumed = true;
                metrics::counter("journal.hits").inc();
                jobs_done.fetch_add(1, std::memory_order_relaxed);
                if (!opts.progress)
                    prophet_infof("  %s/%s replayed from journal",
                                  slot.workload.c_str(),
                                  slot.pipeline.c_str());
                return;
            }
            span::Span job_span(
                "job " + slot.workload + "/" + slot.pipeline, "job");
            auto t0 = std::chrono::steady_clock::now();
            try {
                runJobWithRetry(runner, inst, slot, token,
                                watchdog.get(), opts.maxAttempts,
                                opts.retryBackoffMs);
            } catch (...) {
                // Failed jobs still report their duration and count
                // toward progress; the failure handling below fills
                // in why.
                slot.seconds = secondsSince(t0);
                jobs_done.fetch_add(1, std::memory_order_relaxed);
                throw;
            }
            slot.seconds = secondsSince(t0);
            jobs_done.fetch_add(1, std::memory_order_relaxed);
            if (journal) {
                JournalEntry e;
                e.kind = JournalEntry::Kind::Job;
                e.jobIndex = static_cast<std::uint32_t>(i);
                e.workload = slot.workload;
                e.pipeline = slot.pipeline;
                e.attempts = slot.attempts;
                e.stats = slot.stats;
                journal->append(e);
            }
            // The per-job line would fight the monitor's single
            // repainted line, so --progress replaces it.
            if (!opts.progress)
                prophet_infof("  %s/%s done", slot.workload.c_str(),
                              slot.pipeline.c_str());
        },
        policy, &token);
    if (monitor)
        monitor->stop();

    // Whether the external token fired decides how skipped slots
    // read: "interrupted, --resume continues" vs fail-fast's
    // "earlier job failure". Fail-fast also fires the shared
    // shutdown token, so a hard (non-skipped) failure keeps the
    // fail-fast wording; only a pure cancellation — nothing failed,
    // the token simply fired — reads as an interrupt.
    // In-flight jobs drained by the interrupt fail with Cancelled —
    // that is the interrupt's own signature, not a hard failure.
    bool hard_failure = false;
    for (const auto &f : failures) {
        if (f.ok() || f.skipped)
            continue;
        try {
            std::rethrow_exception(f.error);
        } catch (const Error &e) {
            if (e.code() != ErrorCode::Cancelled)
                hard_failure = true;
        } catch (...) {
            hard_failure = true;
        }
    }
    const bool interrupted = opts.shutdown
        && opts.shutdown->cancelled() && !hard_failure;
    report.interrupted = interrupted;

    for (std::size_t i = 0; i < failures.size(); ++i) {
        if (failures[i].ok())
            continue;
        // Fail-fast skips before the slot's identity was filled in.
        JobResult &slot = report.results[i];
        if (slot.workload.empty()) {
            slot.workload = spec.workloads[i / per];
            slot.pipeline = spec.pipelines[i % per].resultName();
        }
        recordFailure(slot, failures[i], interrupted);
        ++report.failedJobs;
    }
    for (const auto &r : report.results)
        if (r.resumed)
            ++report.resumedJobs;

    // Metric derivation is sequential: baselines are cached by now
    // and the division is trivial. Still fault-isolated per job — a
    // metric that needs an uncomputable baseline fails that job, not
    // the run.
    for (auto &r : report.results) {
        if (!r.ok)
            continue;
        try {
            for (const auto &m : spec.metrics)
                r.metrics.emplace_back(
                    m, computeMetric(runner, m, r.workload, r.stats));
        } catch (...) {
            sim::SweepEngine::JobFailure f;
            f.error = std::current_exception();
            recordFailure(r, f, interrupted);
            ++report.failedJobs;
        }
    }

    auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start);
    report.meta.specName = spec.name;
    report.meta.specHash = result_hash;
    report.meta.records = effectiveRecords();
    report.meta.threads = engine.threads();
    report.meta.wallSeconds = elapsed.count();
    report.meta.timestamp = iso8601UtcNow();
    if (trace::TraceCache *tc =
            cache ? cache.get() : runner.traceCache()) {
        auto cs = tc->stats();
        report.meta.traceCacheHits = cs.hits;
        report.meta.traceCacheMisses = cs.misses;
    }
    // Cumulative phase split for the table sink's wall-clock line:
    // "simulate" covers every System::run (warmup + functional warm +
    // measured window + Prophet's profiling pass), "trace-load" the
    // generate-or-cache-load phase. The finer per-phase split — with
    // profiling broken out so sampled-vs-full speedups compare pure
    // timing simulation — is in --metrics-out "phases".
    report.meta.traceLoadSeconds =
        static_cast<double>(
            metrics::histogram("phase.trace_load_ns").sum())
        / 1e9;
    report.meta.simulateSeconds =
        static_cast<double>(
            metrics::histogram("phase.warmup_ns").sum()
            + metrics::histogram("phase.warm_ns").sum()
            + metrics::histogram("phase.profile_ns").sum()
            + metrics::histogram("phase.simulate_ns").sum())
        / 1e9;

    // Deliver in spec order to the spec's sinks plus any extras. A
    // suppressing caller (the serve daemon) replaced the spec's sinks
    // with its own capturing ones via addSink, so only extras run —
    // including the implicit default table.
    std::vector<std::unique_ptr<Sink>> sinks;
    if (opts.suppressSpecSinks) {
        // nothing from the spec
    } else if (spec.sinks.empty()) {
        sinks.push_back(makeSink(SinkSpec{}));
    } else {
        for (const auto &s : spec.sinks)
            sinks.push_back(makeSink(s));
    }
    for (auto &s : extraSinks)
        sinks.push_back(std::move(s));
    extraSinks.clear();
    {
        span::Span sink_span("sink-render", "phase");
        metrics::ScopedTimer sink_timer(
            metrics::histogram("phase.sink_render_ns"));
        for (const auto &s : sinks) {
            for (const auto &r : report.results)
                s->result(r);
            if (!s->finish(spec, report.meta))
                report.sinksOk = false;
        }
    }

    // Observability outputs last, so they cover the sink phase too.
    // A requested-but-unwritable file fails the run like any sink.
    experiment_span.reset();
    if (tracing) {
        span::setEnabled(false);
        if (!span::writeJson(opts.traceOut))
            report.sinksOk = false;
    }
    if (!opts.metricsOut.empty()
        && !writeMetricsReport(report, opts.metricsOut))
        report.sinksOk = false;
    return report;
}

int
exitCodeForReport(const ExperimentReport &report, bool keepGoing)
{
    // An interrupt wins even when the drain left failed slots behind
    // — those are the interrupt's own signature, not a verdict on
    // the spec.
    if (report.interrupted)
        return static_cast<int>(ExitCode::Interrupted);
    if (report.failedJobs > 0)
        return static_cast<int>(keepGoing ? ExitCode::PartialFailure
                                          : ExitCode::RuntimeFailure);
    if (!report.sinksOk)
        return static_cast<int>(ExitCode::RuntimeFailure);
    return static_cast<int>(ExitCode::Success);
}

} // namespace prophet::driver
