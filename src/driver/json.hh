/**
 * @file
 * Minimal self-contained JSON: a value model, a recursive-descent
 * parser, and a deterministic writer. Experiment specs, the JSON
 * stats sink, and the trace-cache manifest all go through this, so
 * the repo stays free of external dependencies.
 *
 * Deviations from strict JSON, both for human-edited spec files:
 *  - `//` line comments are skipped as whitespace;
 *  - a trailing comma before `]` or `}` is accepted.
 * The writer emits strict JSON only.
 */

#ifndef PROPHET_DRIVER_JSON_HH
#define PROPHET_DRIVER_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace prophet::driver::json
{

/**
 * One JSON value. Objects preserve insertion order (a std::map would
 * re-sort keys and make spec hashing depend on spelling, not
 * content order), and duplicate keys are a parse error.
 */
class Value
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    using Array = std::vector<Value>;
    using Member = std::pair<std::string, Value>;
    using Object = std::vector<Member>;

    Value() = default;
    Value(bool b) : kind_(Kind::Bool), boolVal(b) {}
    Value(double d) : kind_(Kind::Number), numVal(d) {}
    Value(int i) : kind_(Kind::Number), numVal(i) {}
    Value(std::uint64_t u)
        : kind_(Kind::Number), numVal(static_cast<double>(u))
    {}
    Value(std::string s) : kind_(Kind::String), strVal(std::move(s)) {}
    Value(const char *s) : kind_(Kind::String), strVal(s) {}

    static Value makeArray() { Value v; v.kind_ = Kind::Array; return v; }
    static Value makeObject() { Value v; v.kind_ = Kind::Object; return v; }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return boolVal; }
    double asNumber() const { return numVal; }
    const std::string &asString() const { return strVal; }
    const Array &asArray() const { return arrVal; }
    const Object &asObject() const { return objVal; }

    /** Append to an array value. */
    void
    push(Value v)
    {
        arrVal.push_back(std::move(v));
    }

    /** Append a member to an object value. */
    void
    set(std::string key, Value v)
    {
        objVal.emplace_back(std::move(key), std::move(v));
    }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;

  private:
    Kind kind_ = Kind::Null;
    bool boolVal = false;
    double numVal = 0.0;
    std::string strVal;
    Array arrVal;
    Object objVal;
};

/**
 * Parse @p text into @p out. On failure returns false and, when
 * @p err is non-null, stores a "line L, column C: reason" message.
 * Trailing non-whitespace after the top-level value is an error.
 */
bool parse(const std::string &text, Value &out,
           std::string *err = nullptr);

/**
 * Serialize to strict JSON. @p indent > 0 pretty-prints with that
 * many spaces per level; 0 emits the compact one-line form the spec
 * hash is computed over. Numbers that are integral and exactly
 * representable print without a decimal point; everything else uses
 * %.17g so doubles round-trip bit-for-bit.
 */
std::string dump(const Value &v, int indent = 0);

} // namespace prophet::driver::json

#endif // PROPHET_DRIVER_JSON_HH
