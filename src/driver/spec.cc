#include "driver/spec.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/checksum.hh"
#include "workloads/registry.hh"

namespace prophet::driver
{

namespace
{

[[noreturn]] void
specFail(const std::string &msg)
{
    throw SpecError("spec: " + msg);
}

/**
 * A non-negative integer field (JSON numbers are doubles), bounded
 * by @p max: an out-of-range value must fail loudly, never wrap or
 * truncate into a silently different experiment.
 */
std::size_t
asCount(const json::Value &v, const char *key,
        double max = 9007199254740992.0 /* 2^53 */)
{
    if (!v.isNumber())
        specFail(std::string("\"") + key + "\" must be a number");
    double d = v.asNumber();
    if (d < 0 || std::nearbyint(d) != d)
        specFail(std::string("\"") + key
                 + "\" must be a non-negative integer");
    if (d > max)
        specFail(std::string("\"") + key + "\" is out of range");
    return static_cast<std::size_t>(d);
}

std::vector<std::string>
asStringList(const json::Value &v, const char *key)
{
    std::vector<std::string> out;
    if (!v.isArray())
        specFail(std::string("\"") + key
                 + "\" must be an array of strings");
    for (const auto &elem : v.asArray()) {
        if (!elem.isString())
            specFail(std::string("\"") + key
                     + "\" must be an array of strings");
        out.push_back(elem.asString());
    }
    return out;
}

void
rejectUnknownKeys(const json::Value &obj,
                  const std::vector<std::string> &known,
                  const char *where)
{
    for (const auto &[key, value] : obj.asObject()) {
        (void)value;
        if (std::find(known.begin(), known.end(), key) == known.end())
            specFail(std::string("unknown key \"") + key + "\" in "
                     + where);
    }
}

std::vector<std::string>
expandWorkloads(const std::vector<std::string> &raw)
{
    // First mention wins, duplicates collapse: "[@spec, mcf]" must
    // not simulate (and report) mcf's jobs twice.
    std::vector<std::string> out;
    auto add = [&out](const std::string &w) {
        if (std::find(out.begin(), out.end(), w) == out.end())
            out.push_back(w);
    };
    for (const auto &w : raw) {
        if (w == "@spec") {
            for (const auto &l : workloads::specWorkloads())
                add(l);
        } else if (w == "@graph") {
            for (const auto &l : workloads::graphWorkloads())
                add(l);
        } else if (w == "@gcc") {
            for (const auto &l : workloads::gccInputs())
                add(l);
        } else if (!w.empty() && w[0] == '@') {
            specFail("unknown workload alias \"" + w
                     + "\" (known: @spec @graph @gcc)");
        } else if (!workloads::isKnown(w)) {
            specFail("unknown workload \"" + w + "\"");
        } else {
            add(w);
        }
    }
    if (out.empty())
        specFail("\"workloads\" must name at least one workload");
    return out;
}

sim::ParamValue
paramFromJson(const json::Value &v, const std::string &key,
              const std::string &pipeline)
{
    if (v.isNumber())
        return sim::ParamValue::makeNumber(v.asNumber());
    if (v.isBool())
        return sim::ParamValue::makeBool(v.asBool());
    if (v.isString())
        return sim::ParamValue::makeString(v.asString());
    if (v.isArray()) {
        std::vector<std::string> list;
        for (const auto &elem : v.asArray()) {
            if (!elem.isString())
                specFail("parameter \"" + key + "\" of pipeline \""
                         + pipeline
                         + "\" must be an array of strings");
            list.push_back(elem.asString());
        }
        return sim::ParamValue::makeList(std::move(list));
    }
    specFail("parameter \"" + key + "\" of pipeline \"" + pipeline
             + "\" must be a number, boolean, string, or array of "
               "strings");
}

/**
 * A pipeline element: either a registered name, or an object with
 * parameter overrides and an optional display label. Every name,
 * parameter key, parameter type, and parameter value is checked
 * against the pipeline registry here, at parse time.
 */
sim::PipelineInstance
parsePipeline(const json::Value &v)
{
    sim::PipelineInstance inst;
    if (v.isString()) {
        inst.name = v.asString();
    } else if (v.isObject()) {
        const json::Value *name = v.find("name");
        if (!name || !name->isString())
            specFail("each pipeline object needs a string \"name\"");
        inst.name = name->asString();
        for (const auto &[key, value] : v.asObject()) {
            if (key == "name")
                continue;
            if (key == "label") {
                if (!value.isString() || value.asString().empty())
                    specFail("pipeline \"label\" must be a "
                             "non-empty string");
                inst.label = value.asString();
                continue;
            }
            inst.params.emplace(key,
                                paramFromJson(value, key, inst.name));
        }
    } else {
        specFail("each pipeline must be a name or an object with a "
                 "\"name\"");
    }
    try {
        sim::validatePipeline(inst);
    } catch (const sim::PipelineError &e) {
        specFail(e.what());
    }
    return inst;
}

/**
 * The "sweep" axis: cross-product every pipeline with every value of
 * one parameter. Each product gets a derived label so columns stay
 * distinguishable.
 */
std::vector<sim::PipelineInstance>
expandSweep(const json::Value &v,
            const std::vector<sim::PipelineInstance> &pipelines)
{
    if (!v.isObject())
        specFail("\"sweep\" must be an object");
    rejectUnknownKeys(v, {"param", "values"}, "sweep");
    const json::Value *param = v.find("param");
    if (!param || !param->isString())
        specFail("\"sweep\" needs a string \"param\"");
    const json::Value *values = v.find("values");
    if (!values || !values->isArray() || values->asArray().empty())
        specFail("\"sweep\" needs a non-empty \"values\" array");

    const std::string &key = param->asString();
    std::vector<sim::PipelineInstance> expanded;
    for (const auto &inst : pipelines) {
        // The registry entry exists — parsePipeline validated it.
        const sim::PipelineDef *def = sim::findPipeline(inst.name);
        if (!def->findParam(key))
            specFail("sweep parameter \"" + key
                     + "\" is not accepted by pipeline \""
                     + inst.name + "\"");
        if (inst.params.count(key))
            specFail("sweep parameter \"" + key
                     + "\" is already set on pipeline \"" + inst.name
                     + "\"");
        for (const auto &value : values->asArray()) {
            sim::PipelineInstance point = inst;
            sim::ParamValue pv = paramFromJson(value, key, inst.name);
            point.label = inst.resultName() + " " + key + "="
                + pv.display();
            point.params[key] = std::move(pv);
            try {
                sim::validatePipeline(point);
            } catch (const sim::PipelineError &e) {
                specFail(e.what());
            }
            expanded.push_back(std::move(point));
        }
    }
    return expanded;
}

/**
 * Canonical JSON of one pipeline instance. Plain instances stay the
 * bare name (so pre-registry spec hashes are unchanged); everything
 * else becomes the object form with parameters in sorted key order.
 * The result hash excludes the label — it names a column, it cannot
 * change a number.
 */
json::Value
pipelineToJson(const sim::PipelineInstance &p, bool with_label)
{
    if (p.params.empty() && (p.label.empty() || !with_label))
        return json::Value(p.name);
    json::Value obj = json::Value::makeObject();
    obj.set("name", json::Value(p.name));
    if (with_label && !p.label.empty())
        obj.set("label", json::Value(p.label));
    for (const auto &[key, v] : p.params) {
        switch (v.type) {
          case sim::ParamValue::Type::Number:
            obj.set(key, json::Value(v.num));
            break;
          case sim::ParamValue::Type::Bool:
            obj.set(key, json::Value(v.flag));
            break;
          case sim::ParamValue::Type::String:
            obj.set(key, json::Value(v.str));
            break;
          case sim::ParamValue::Type::StringList: {
            json::Value arr = json::Value::makeArray();
            for (const auto &s : v.list)
                arr.push(json::Value(s));
            obj.set(key, std::move(arr));
            break;
          }
        }
    }
    return obj;
}

json::Value
pipelinesToJson(const std::vector<sim::PipelineInstance> &pipelines,
                bool with_labels)
{
    json::Value arr = json::Value::makeArray();
    for (const auto &p : pipelines)
        arr.push(pipelineToJson(p, with_labels));
    return arr;
}

SinkSpec
parseSink(const json::Value &v)
{
    if (!v.isObject())
        specFail("each sink must be an object");
    rejectUnknownKeys(v, {"type", "path"}, "sink");
    const json::Value *type = v.find("type");
    if (!type || !type->isString())
        specFail("sink needs a string \"type\"");
    SinkSpec s;
    const std::string &t = type->asString();
    if (t == "table")
        s.kind = SinkSpec::Kind::Table;
    else if (t == "json")
        s.kind = SinkSpec::Kind::JsonFile;
    else if (t == "csv")
        s.kind = SinkSpec::Kind::CsvFile;
    else
        specFail("unknown sink type \"" + t
                 + "\" (known: table json csv)");
    if (const json::Value *path = v.find("path")) {
        if (!path->isString())
            specFail("sink \"path\" must be a string");
        s.path = path->asString();
    }
    if (s.kind != SinkSpec::Kind::Table && s.path.empty())
        specFail("sink type \"" + t + "\" needs a \"path\"");
    return s;
}

/**
 * The "sampling" object: sampled fast-mode execution knobs. Every
 * value is validated here at parse time — a schedule the simulator
 * would have to clamp (zero-record windows, a window longer than its
 * interval) is a spec error, not a silent reinterpretation.
 */
sim::SamplingConfig
parseSampling(const json::Value &v)
{
    if (!v.isObject())
        specFail("\"sampling\" must be an object");
    rejectUnknownKeys(v,
                      {"warmup_records", "window_records",
                       "interval_records", "offset"},
                      "sampling");
    sim::SamplingConfig s;
    s.enabled = true;
    if (const json::Value *w = v.find("warmup_records"))
        s.warmupRecords = asCount(*w, "warmup_records");
    if (const json::Value *w = v.find("window_records")) {
        s.windowRecords = asCount(*w, "window_records");
        if (s.windowRecords == 0)
            specFail("sampling \"window_records\" must be at "
                     "least 1");
    }
    if (const json::Value *w = v.find("interval_records")) {
        s.intervalRecords = asCount(*w, "interval_records");
        if (s.intervalRecords == 0)
            specFail("sampling \"interval_records\" must be at "
                     "least 1");
    }
    if (s.intervalRecords < s.windowRecords)
        specFail("sampling \"interval_records\" must be >= "
                 "\"window_records\" (one window per interval)");
    if (const json::Value *w = v.find("offset"))
        s.offset = asCount(*w, "offset");
    return s;
}

/** Canonical JSON of an enabled sampling config (every knob). */
json::Value
samplingToJson(const sim::SamplingConfig &s)
{
    json::Value obj = json::Value::makeObject();
    obj.set("warmup_records", json::Value(s.warmupRecords));
    obj.set("window_records", json::Value(s.windowRecords));
    obj.set("interval_records", json::Value(s.intervalRecords));
    obj.set("offset", json::Value(s.offset));
    return obj;
}

} // anonymous namespace

const std::vector<std::string> &
knownMetrics()
{
    static const std::vector<std::string> names = {
        "speedup", "traffic", "coverage", "accuracy", "ipc",
        "meta_lines",
    };
    return names;
}

ExperimentSpec
ExperimentSpec::fromJson(const json::Value &root)
{
    if (!root.isObject())
        specFail("top-level value must be an object");
    rejectUnknownKeys(root,
                      {"name", "report", "workloads", "pipelines",
                       "sweep", "metrics", "records", "threads", "l1",
                       "dram_channels", "warmup_records", "sampling",
                       "trace_cache", "keep_going", "deadline_s",
                       "sinks"},
                      "spec");

    ExperimentSpec spec;
    if (const json::Value *v = root.find("name")) {
        if (!v->isString())
            specFail("\"name\" must be a string");
        spec.name = v->asString();
    }

    if (const json::Value *v = root.find("report")) {
        if (!v->isString() || v->asString() != "system-config")
            specFail("\"report\" must be \"system-config\"");
        spec.report = Report::SystemConfig;
        // A report runs no jobs: job-matrix keys would be silently
        // ignored, so they are errors. Config keys (l1,
        // dram_channels, warmup_records) stay legal — they change
        // the reported configuration.
        for (const char *key :
             {"workloads", "pipelines", "sweep", "metrics", "sinks",
              "records", "threads", "trace_cache", "sampling",
              "deadline_s"})
            if (root.find(key))
                specFail(std::string("\"") + key
                         + "\" has no effect in a \"report\" spec");
    }

    const json::Value *wl = root.find("workloads");
    if (wl)
        spec.workloads =
            expandWorkloads(asStringList(*wl, "workloads"));
    else if (spec.report == Report::None)
        specFail("missing required key \"workloads\"");

    const json::Value *pl = root.find("pipelines");
    if (pl) {
        if (!pl->isArray())
            specFail("\"pipelines\" must be an array");
        for (const auto &elem : pl->asArray())
            spec.pipelines.push_back(parsePipeline(elem));
        if (spec.pipelines.empty())
            specFail("\"pipelines\" must name at least one pipeline");
    } else if (spec.report == Report::None) {
        specFail("missing required key \"pipelines\"");
    }

    if (const json::Value *v = root.find("sweep")) {
        if (!pl)
            specFail("\"sweep\" needs a \"pipelines\" list to "
                     "expand");
        spec.pipelines = expandSweep(*v, spec.pipelines);
    }

    // Results are keyed by (workload, pipeline label): two instances
    // reporting under one key would be indistinguishable downstream.
    for (std::size_t i = 0; i < spec.pipelines.size(); ++i)
        for (std::size_t j = i + 1; j < spec.pipelines.size(); ++j)
            if (spec.pipelines[i].resultName()
                == spec.pipelines[j].resultName())
                specFail("duplicate pipeline \""
                         + spec.pipelines[i].resultName()
                         + "\" (give each instance a distinct "
                           "\"label\")");

    if (const json::Value *v = root.find("metrics")) {
        spec.metrics = asStringList(*v, "metrics");
        if (spec.metrics.empty())
            specFail("\"metrics\" must name at least one metric");
        for (const auto &m : spec.metrics) {
            const auto &known = knownMetrics();
            if (std::find(known.begin(), known.end(), m)
                == known.end())
                specFail("unknown metric \"" + m + "\"");
        }
    }

    if (const json::Value *v = root.find("records"))
        spec.records = asCount(*v, "records");
    if (const json::Value *v = root.find("threads"))
        spec.threads = static_cast<unsigned>(
            asCount(*v, "threads", 65536.0));
    if (const json::Value *v = root.find("l1")) {
        if (!v->isString())
            specFail("\"l1\" must be a string");
        spec.l1 = v->asString();
        if (spec.l1 != "stride" && spec.l1 != "ipcp"
            && spec.l1 != "none")
            specFail("\"l1\" must be stride, ipcp or none");
    }
    if (const json::Value *v = root.find("dram_channels")) {
        spec.dramChannels = static_cast<unsigned>(
            asCount(*v, "dram_channels", 1024.0));
        if (spec.dramChannels == 0)
            specFail("\"dram_channels\" must be at least 1");
    }
    if (const json::Value *v = root.find("warmup_records"))
        spec.warmupRecords = asCount(*v, "warmup_records");
    if (const json::Value *v = root.find("sampling"))
        spec.sampling = parseSampling(*v);
    if (const json::Value *v = root.find("trace_cache")) {
        if (!v->isBool())
            specFail("\"trace_cache\" must be a boolean");
        spec.traceCache = v->asBool();
    }
    if (const json::Value *v = root.find("keep_going")) {
        if (!v->isBool())
            specFail("\"keep_going\" must be a boolean");
        spec.keepGoing = v->asBool();
    }
    if (const json::Value *v = root.find("deadline_s")) {
        // Fractional deadlines are legal (sub-second tests); zero or
        // negative would silently disable the watchdog the spec
        // asked for, so they are errors.
        if (!v->isNumber() || !(v->asNumber() > 0.0)
            || !(v->asNumber() < 1e9))
            specFail("\"deadline_s\" must be a positive number of "
                     "seconds");
        spec.deadlineS = v->asNumber();
    }
    if (const json::Value *v = root.find("sinks")) {
        if (!v->isArray())
            specFail("\"sinks\" must be an array");
        for (const auto &elem : v->asArray())
            spec.sinks.push_back(parseSink(elem));
    }
    return spec;
}

ExperimentSpec
ExperimentSpec::fromFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        specFail("cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    json::Value root;
    std::string err;
    if (!json::parse(buf.str(), root, &err))
        specFail(path + ": " + err);
    try {
        return fromJson(root);
    } catch (const SpecError &e) {
        throw SpecError(path + ": " + e.what());
    }
}

json::Value
ExperimentSpec::toJson() const
{
    json::Value root = json::Value::makeObject();
    root.set("name", json::Value(name));
    if (report == Report::SystemConfig)
        root.set("report", json::Value(std::string("system-config")));
    auto list = [](const std::vector<std::string> &v) {
        json::Value arr = json::Value::makeArray();
        for (const auto &s : v)
            arr.push(json::Value(s));
        return arr;
    };
    root.set("workloads", list(workloads));
    root.set("pipelines", pipelinesToJson(pipelines, true));
    root.set("metrics", list(metrics));
    root.set("records", json::Value(records));
    root.set("threads", json::Value(static_cast<double>(threads)));
    root.set("l1", json::Value(l1));
    root.set("dram_channels",
             json::Value(static_cast<double>(dramChannels)));
    if (warmupRecords != kWarmupDefault)
        root.set("warmup_records", json::Value(warmupRecords));
    // Emitted only when enabled: pre-sampling specs keep their
    // canonical form (and hash) byte-identical.
    if (sampling.enabled)
        root.set("sampling", samplingToJson(sampling));
    root.set("trace_cache", json::Value(traceCache));
    // Emitted only when set: the default leaves the canonical form
    // (and thus hash() and archived spec dumps) byte-identical to
    // pre-keep_going documents.
    if (keepGoing)
        root.set("keep_going", json::Value(true));
    if (deadlineS > 0.0)
        root.set("deadline_s", json::Value(deadlineS));
    json::Value sink_arr = json::Value::makeArray();
    for (const auto &s : sinks) {
        json::Value obj = json::Value::makeObject();
        const char *t = s.kind == SinkSpec::Kind::Table ? "table"
            : s.kind == SinkSpec::Kind::JsonFile      ? "json"
                                                      : "csv";
        obj.set("type", json::Value(t));
        if (!s.path.empty())
            obj.set("path", json::Value(s.path));
        sink_arr.push(std::move(obj));
    }
    root.set("sinks", std::move(sink_arr));
    return root;
}

namespace
{

std::uint64_t
hashDump(const std::string &text)
{
    return fnv1a64(text.data(), text.size());
}

} // anonymous namespace

std::uint64_t
ExperimentSpec::hash() const
{
    // FNV-1a 64 over the canonical compact dump: two spec files that
    // expand to the same experiment hash identically, regardless of
    // aliases, comments or formatting.
    return hashDump(json::dump(toJson()));
}

std::uint64_t
ExperimentSpec::resultHash(std::size_t effective_records) const
{
    json::Value root = json::Value::makeObject();
    auto list = [](const std::vector<std::string> &v) {
        json::Value arr = json::Value::makeArray();
        for (const auto &s : v)
            arr.push(json::Value(s));
        return arr;
    };
    if (report == Report::SystemConfig)
        root.set("report", json::Value(std::string("system-config")));
    root.set("workloads", list(workloads));
    root.set("pipelines", pipelinesToJson(pipelines, false));
    root.set("metrics", list(metrics));
    root.set("records", json::Value(effective_records));
    root.set("l1", json::Value(l1));
    root.set("dram_channels",
             json::Value(static_cast<double>(dramChannels)));
    if (warmupRecords != kWarmupDefault)
        root.set("warmup_records", json::Value(warmupRecords));
    // Sampling changes every reported number: two runs differing
    // only in schedule must never compare as bit-identical.
    if (sampling.enabled)
        root.set("sampling", samplingToJson(sampling));
    return hashDump(json::dump(root));
}

sim::SystemConfig
ExperimentSpec::baseConfig() const
{
    sim::SystemConfig cfg = sim::SystemConfig::table1();
    if (l1 == "ipcp")
        cfg.l1Pf = sim::L1PfKind::Ipcp;
    else if (l1 == "none")
        cfg.l1Pf = sim::L1PfKind::None;
    else
        cfg.l1Pf = sim::L1PfKind::Stride;
    cfg.hier.dram.channels = dramChannels;
    if (warmupRecords != kWarmupDefault)
        cfg.warmupRecords = warmupRecords;
    cfg.sampling = sampling;
    return cfg;
}

} // namespace prophet::driver
