#include "driver/spec.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "workloads/registry.hh"

namespace prophet::driver
{

namespace
{

[[noreturn]] void
specFail(const std::string &msg)
{
    throw SpecError("spec: " + msg);
}

/**
 * A non-negative integer field (JSON numbers are doubles), bounded
 * by @p max: an out-of-range value must fail loudly, never wrap or
 * truncate into a silently different experiment.
 */
std::size_t
asCount(const json::Value &v, const char *key,
        double max = 9007199254740992.0 /* 2^53 */)
{
    if (!v.isNumber())
        specFail(std::string("\"") + key + "\" must be a number");
    double d = v.asNumber();
    if (d < 0 || std::nearbyint(d) != d)
        specFail(std::string("\"") + key
                 + "\" must be a non-negative integer");
    if (d > max)
        specFail(std::string("\"") + key + "\" is out of range");
    return static_cast<std::size_t>(d);
}

std::vector<std::string>
asStringList(const json::Value &v, const char *key)
{
    std::vector<std::string> out;
    if (!v.isArray())
        specFail(std::string("\"") + key
                 + "\" must be an array of strings");
    for (const auto &elem : v.asArray()) {
        if (!elem.isString())
            specFail(std::string("\"") + key
                     + "\" must be an array of strings");
        out.push_back(elem.asString());
    }
    return out;
}

void
rejectUnknownKeys(const json::Value &obj,
                  const std::vector<std::string> &known,
                  const char *where)
{
    for (const auto &[key, value] : obj.asObject()) {
        (void)value;
        if (std::find(known.begin(), known.end(), key) == known.end())
            specFail(std::string("unknown key \"") + key + "\" in "
                     + where);
    }
}

std::vector<std::string>
expandWorkloads(const std::vector<std::string> &raw)
{
    // First mention wins, duplicates collapse: "[@spec, mcf]" must
    // not simulate (and report) mcf's jobs twice.
    std::vector<std::string> out;
    auto add = [&out](const std::string &w) {
        if (std::find(out.begin(), out.end(), w) == out.end())
            out.push_back(w);
    };
    for (const auto &w : raw) {
        if (w == "@spec") {
            for (const auto &l : workloads::specWorkloads())
                add(l);
        } else if (w == "@graph") {
            for (const auto &l : workloads::graphWorkloads())
                add(l);
        } else if (w == "@gcc") {
            for (const auto &l : workloads::gccInputs())
                add(l);
        } else if (!w.empty() && w[0] == '@') {
            specFail("unknown workload alias \"" + w
                     + "\" (known: @spec @graph @gcc)");
        } else if (!workloads::isKnown(w)) {
            specFail("unknown workload \"" + w + "\"");
        } else {
            add(w);
        }
    }
    if (out.empty())
        specFail("\"workloads\" must name at least one workload");
    return out;
}

SinkSpec
parseSink(const json::Value &v)
{
    if (!v.isObject())
        specFail("each sink must be an object");
    rejectUnknownKeys(v, {"type", "path"}, "sink");
    const json::Value *type = v.find("type");
    if (!type || !type->isString())
        specFail("sink needs a string \"type\"");
    SinkSpec s;
    const std::string &t = type->asString();
    if (t == "table")
        s.kind = SinkSpec::Kind::Table;
    else if (t == "json")
        s.kind = SinkSpec::Kind::JsonFile;
    else if (t == "csv")
        s.kind = SinkSpec::Kind::CsvFile;
    else
        specFail("unknown sink type \"" + t
                 + "\" (known: table json csv)");
    if (const json::Value *path = v.find("path")) {
        if (!path->isString())
            specFail("sink \"path\" must be a string");
        s.path = path->asString();
    }
    if (s.kind != SinkSpec::Kind::Table && s.path.empty())
        specFail("sink type \"" + t + "\" needs a \"path\"");
    return s;
}

} // anonymous namespace

const std::vector<std::string> &
knownPipelines()
{
    static const std::vector<std::string> names = {
        "baseline", "rpg2",  "triage", "triage4",
        "triangel", "stms",  "domino", "prophet",
    };
    return names;
}

const std::vector<std::string> &
knownMetrics()
{
    static const std::vector<std::string> names = {
        "speedup", "traffic", "coverage", "accuracy", "ipc",
    };
    return names;
}

std::string
pipelineDisplayName(const std::string &pipeline)
{
    if (pipeline == "baseline")
        return "Baseline";
    if (pipeline == "rpg2")
        return "RPG2";
    if (pipeline == "triage")
        return "Triage";
    if (pipeline == "triage4")
        return "Triage4";
    if (pipeline == "triangel")
        return "Triangel";
    if (pipeline == "stms")
        return "STMS";
    if (pipeline == "domino")
        return "Domino";
    if (pipeline == "prophet")
        return "Prophet";
    return pipeline;
}

ExperimentSpec
ExperimentSpec::fromJson(const json::Value &root)
{
    if (!root.isObject())
        specFail("top-level value must be an object");
    rejectUnknownKeys(root,
                      {"name", "workloads", "pipelines", "metrics",
                       "records", "threads", "l1", "dram_channels",
                       "warmup_records", "trace_cache", "sinks"},
                      "spec");

    ExperimentSpec spec;
    if (const json::Value *v = root.find("name")) {
        if (!v->isString())
            specFail("\"name\" must be a string");
        spec.name = v->asString();
    }

    const json::Value *wl = root.find("workloads");
    if (!wl)
        specFail("missing required key \"workloads\"");
    spec.workloads = expandWorkloads(asStringList(*wl, "workloads"));

    const json::Value *pl = root.find("pipelines");
    if (!pl)
        specFail("missing required key \"pipelines\"");
    spec.pipelines = asStringList(*pl, "pipelines");
    if (spec.pipelines.empty())
        specFail("\"pipelines\" must name at least one pipeline");
    for (const auto &p : spec.pipelines) {
        const auto &known = knownPipelines();
        if (std::find(known.begin(), known.end(), p) == known.end())
            specFail("unknown pipeline \"" + p + "\"");
    }

    if (const json::Value *v = root.find("metrics")) {
        spec.metrics = asStringList(*v, "metrics");
        if (spec.metrics.empty())
            specFail("\"metrics\" must name at least one metric");
        for (const auto &m : spec.metrics) {
            const auto &known = knownMetrics();
            if (std::find(known.begin(), known.end(), m)
                == known.end())
                specFail("unknown metric \"" + m + "\"");
        }
    }

    if (const json::Value *v = root.find("records"))
        spec.records = asCount(*v, "records");
    if (const json::Value *v = root.find("threads"))
        spec.threads = static_cast<unsigned>(
            asCount(*v, "threads", 65536.0));
    if (const json::Value *v = root.find("l1")) {
        if (!v->isString())
            specFail("\"l1\" must be a string");
        spec.l1 = v->asString();
        if (spec.l1 != "stride" && spec.l1 != "ipcp"
            && spec.l1 != "none")
            specFail("\"l1\" must be stride, ipcp or none");
    }
    if (const json::Value *v = root.find("dram_channels")) {
        spec.dramChannels = static_cast<unsigned>(
            asCount(*v, "dram_channels", 1024.0));
        if (spec.dramChannels == 0)
            specFail("\"dram_channels\" must be at least 1");
    }
    if (const json::Value *v = root.find("warmup_records"))
        spec.warmupRecords = asCount(*v, "warmup_records");
    if (const json::Value *v = root.find("trace_cache")) {
        if (!v->isBool())
            specFail("\"trace_cache\" must be a boolean");
        spec.traceCache = v->asBool();
    }
    if (const json::Value *v = root.find("sinks")) {
        if (!v->isArray())
            specFail("\"sinks\" must be an array");
        for (const auto &elem : v->asArray())
            spec.sinks.push_back(parseSink(elem));
    }
    return spec;
}

ExperimentSpec
ExperimentSpec::fromFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        specFail("cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    json::Value root;
    std::string err;
    if (!json::parse(buf.str(), root, &err))
        specFail(path + ": " + err);
    try {
        return fromJson(root);
    } catch (const SpecError &e) {
        throw SpecError(path + ": " + e.what());
    }
}

json::Value
ExperimentSpec::toJson() const
{
    json::Value root = json::Value::makeObject();
    root.set("name", json::Value(name));
    auto list = [](const std::vector<std::string> &v) {
        json::Value arr = json::Value::makeArray();
        for (const auto &s : v)
            arr.push(json::Value(s));
        return arr;
    };
    root.set("workloads", list(workloads));
    root.set("pipelines", list(pipelines));
    root.set("metrics", list(metrics));
    root.set("records", json::Value(records));
    root.set("threads", json::Value(static_cast<double>(threads)));
    root.set("l1", json::Value(l1));
    root.set("dram_channels",
             json::Value(static_cast<double>(dramChannels)));
    if (warmupRecords != kWarmupDefault)
        root.set("warmup_records", json::Value(warmupRecords));
    root.set("trace_cache", json::Value(traceCache));
    json::Value sink_arr = json::Value::makeArray();
    for (const auto &s : sinks) {
        json::Value obj = json::Value::makeObject();
        const char *t = s.kind == SinkSpec::Kind::Table ? "table"
            : s.kind == SinkSpec::Kind::JsonFile      ? "json"
                                                      : "csv";
        obj.set("type", json::Value(t));
        if (!s.path.empty())
            obj.set("path", json::Value(s.path));
        sink_arr.push(std::move(obj));
    }
    root.set("sinks", std::move(sink_arr));
    return root;
}

namespace
{

std::uint64_t
fnv1a64(const std::string &text)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

} // anonymous namespace

std::uint64_t
ExperimentSpec::hash() const
{
    // FNV-1a 64 over the canonical compact dump: two spec files that
    // expand to the same experiment hash identically, regardless of
    // aliases, comments or formatting.
    return fnv1a64(json::dump(toJson()));
}

std::uint64_t
ExperimentSpec::resultHash(std::size_t effective_records) const
{
    json::Value root = json::Value::makeObject();
    auto list = [](const std::vector<std::string> &v) {
        json::Value arr = json::Value::makeArray();
        for (const auto &s : v)
            arr.push(json::Value(s));
        return arr;
    };
    root.set("workloads", list(workloads));
    root.set("pipelines", list(pipelines));
    root.set("metrics", list(metrics));
    root.set("records", json::Value(effective_records));
    root.set("l1", json::Value(l1));
    root.set("dram_channels",
             json::Value(static_cast<double>(dramChannels)));
    if (warmupRecords != kWarmupDefault)
        root.set("warmup_records", json::Value(warmupRecords));
    return fnv1a64(json::dump(root));
}

sim::SystemConfig
ExperimentSpec::baseConfig() const
{
    sim::SystemConfig cfg = sim::SystemConfig::table1();
    if (l1 == "ipcp")
        cfg.l1Pf = sim::L1PfKind::Ipcp;
    else if (l1 == "none")
        cfg.l1Pf = sim::L1PfKind::None;
    else
        cfg.l1Pf = sim::L1PfKind::Stride;
    cfg.hier.dram.channels = dramChannels;
    if (warmupRecords != kWarmupDefault)
        cfg.warmupRecords = warmupRecords;
    return cfg;
}

} // namespace prophet::driver
