#include "prefetch/ipcp.hh"

#include "common/intmath.hh"
#include "common/log.hh"

namespace prophet::pf
{

namespace
{

/** Lines per GS tracking region. */
constexpr unsigned kRegionLines = 32;

/** Touched-line density that promotes a region to "stream". */
constexpr unsigned kDenseThreshold = 24;

} // anonymous namespace

IpcpPrefetcher::IpcpPrefetcher(unsigned cs_degree, unsigned gs_degree)
    : csDegree(cs_degree), gsDegree(gs_degree),
      ipTable(256), cplxTable(4096), regions(64)
{
    prophet_assert(cs_degree >= 1 && gs_degree >= 1);
}

IpcpPrefetcher::IpEntry &
IpcpPrefetcher::ipEntry(PC pc)
{
    return ipTable[static_cast<std::size_t>(pc) & (ipTable.size() - 1)];
}

IpcpPrefetcher::CplxEntry &
IpcpPrefetcher::cplxEntry(std::uint16_t sig)
{
    return cplxTable[sig & (cplxTable.size() - 1)];
}

std::uint16_t
IpcpPrefetcher::updateSignature(std::uint16_t sig, std::int64_t delta)
{
    // Fold the delta into a rolling 12-bit signature.
    std::uint16_t d = static_cast<std::uint16_t>(delta & 0x3f);
    return static_cast<std::uint16_t>(((sig << 3) ^ d) & 0xfff);
}

bool
IpcpPrefetcher::regionDense(Addr line_addr)
{
    Addr base = line_addr / kRegionLines;
    Region &r = regions[static_cast<std::size_t>(base)
                        & (regions.size() - 1)];
    if (!r.valid || r.base != base) {
        r.base = base;
        r.touched = 0;
        r.valid = true;
    }
    unsigned off = static_cast<unsigned>(line_addr % kRegionLines);
    r.touched |= (1u << off);
    unsigned count = 0;
    for (std::uint32_t bits = r.touched; bits; bits &= bits - 1)
        ++count;
    return count >= kDenseThreshold;
}

void
IpcpPrefetcher::observe(PC pc, Addr line_addr, bool l1_hit,
                        std::vector<Addr> &out)
{
    (void)l1_hit;
    IpEntry &e = ipEntry(pc);
    if (e.pc != pc) {
        e = IpEntry{};
        e.pc = pc;
        e.lastLine = line_addr;
        return;
    }

    std::int64_t delta = static_cast<std::int64_t>(line_addr)
        - static_cast<std::int64_t>(e.lastLine);
    if (delta == 0)
        return;

    // Train the constant-stride class.
    if (delta == e.stride) {
        if (e.strideConf < 3)
            ++e.strideConf;
    } else {
        if (e.strideConf > 0)
            --e.strideConf;
        else
            e.stride = delta;
    }

    // Train the complex class: last signature predicts this delta.
    CplxEntry &ce = cplxEntry(e.signature);
    if (ce.delta == delta) {
        if (ce.conf < 3)
            ++ce.conf;
    } else {
        if (ce.conf > 0)
            --ce.conf;
        else
            ce.delta = delta;
    }
    std::uint16_t new_sig = updateSignature(e.signature, delta);
    e.signature = new_sig;
    e.lastLine = line_addr;

    // Classify, highest priority first: CS, then CPLX, then GS.
    if (e.strideConf >= 2) {
        for (unsigned d = 1; d <= csDegree; ++d) {
            std::int64_t t = static_cast<std::int64_t>(line_addr)
                + e.stride * static_cast<std::int64_t>(d);
            if (t > 0)
                out.push_back(static_cast<Addr>(t));
        }
        return;
    }

    // CPLX: walk the signature chain while confident.
    {
        std::uint16_t sig = new_sig;
        Addr cur = line_addr;
        unsigned issued = 0;
        while (issued < csDegree) {
            const CplxEntry &pred = cplxEntry(sig);
            if (pred.conf < 2 || pred.delta == 0)
                break;
            std::int64_t t = static_cast<std::int64_t>(cur) + pred.delta;
            if (t <= 0)
                break;
            cur = static_cast<Addr>(t);
            out.push_back(cur);
            sig = updateSignature(sig, pred.delta);
            ++issued;
        }
        if (issued > 0)
            return;
    }

    // GS: dense region => next-line burst.
    if (regionDense(line_addr)) {
        for (unsigned d = 1; d <= gsDegree; ++d)
            out.push_back(line_addr + d);
    }
}

} // namespace prophet::pf
