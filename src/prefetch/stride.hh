/**
 * @file
 * Classic per-PC stride prefetcher, the degree-8 L1D prefetcher of
 * Table 1. A PC-indexed table tracks the last address and a stride
 * with a 2-bit confidence counter; confident entries prefetch
 * `degree` strides ahead.
 */

#ifndef PROPHET_PREFETCH_STRIDE_HH
#define PROPHET_PREFETCH_STRIDE_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace prophet::pf
{

/** Per-PC stride prefetcher. */
class StridePrefetcher : public L1Prefetcher
{
  public:
    /**
     * @param degree Prefetch depth in strides (Table 1: 8).
     * @param table_entries PC table size (direct-mapped, power of 2).
     */
    explicit StridePrefetcher(unsigned degree = 8,
                              unsigned table_entries = 256);

    void observe(PC pc, Addr line_addr, bool l1_hit,
                 std::vector<Addr> &out) override;

    std::string name() const override { return "stride"; }

  private:
    struct Entry
    {
        PC pc = kInvalidPC;
        Addr lastLine = 0;
        std::int64_t stride = 0;
        std::uint8_t confidence = 0;
    };

    unsigned degree;
    std::vector<Entry> table;

    Entry &entryFor(PC pc);
};

} // namespace prophet::pf

#endif // PROPHET_PREFETCH_STRIDE_HH
