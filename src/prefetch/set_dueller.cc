#include "prefetch/set_dueller.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/log.hh"

namespace prophet::pf
{

SetDueller::SetDueller(unsigned num_sets, unsigned llc_ways,
                       unsigned md_max_ways, unsigned sample_stride,
                       std::uint64_t window, double md_weight)
    : llcWays(llc_ways), mdMaxWays(md_max_ways),
      sampleStride(sample_stride), window(window), mdWeight(md_weight),
      llcDepthHist(llc_ways + 1, 0),
      mdDepthHist(static_cast<std::size_t>(md_max_ways)
                  * kEntriesPerLine + 1, 0),
      numSetsMask(num_sets - 1)
{
    prophet_assert(isPowerOf2(num_sets));
    prophet_assert(sample_stride >= 1);
}

void
SetDueller::stackAccess(std::vector<Addr> &stack, Addr addr,
                        std::vector<std::uint64_t> &hist,
                        std::size_t max_depth)
{
    auto it = std::find(stack.begin(), stack.end(), addr);
    if (it == stack.end()) {
        // Miss at every depth: overflow bucket.
        ++hist.back();
        stack.insert(stack.begin(), addr);
        if (stack.size() > max_depth)
            stack.pop_back();
        return;
    }
    std::size_t depth = static_cast<std::size_t>(it - stack.begin());
    ++hist[std::min(depth, hist.size() - 1)];
    stack.erase(it);
    stack.insert(stack.begin(), addr);
}

void
SetDueller::observeLlcAccess(Addr line_addr)
{
    ++accessCount;
    unsigned set = static_cast<unsigned>(line_addr) & numSetsMask;
    if (!sampled(set))
        return;
    stackAccess(llcStacks[set], line_addr, llcDepthHist, llcWays);
}

void
SetDueller::observeMetadataAccess(Addr key)
{
    ++accessCount;
    unsigned set = static_cast<unsigned>(key) & numSetsMask;
    if (!sampled(set))
        return;
    stackAccess(mdStacks[set], key, mdDepthHist,
                static_cast<std::size_t>(mdMaxWays) * kEntriesPerLine);
}

std::optional<unsigned>
SetDueller::recommend()
{
    accessCount = 0;

    // Cumulative hit counts by available depth.
    auto cum = [](const std::vector<std::uint64_t> &hist,
                  std::size_t depth) {
        std::uint64_t s = 0;
        for (std::size_t d = 0; d < depth && d + 1 < hist.size(); ++d)
            s += hist[d];
        return s;
    };

    double best_score = -1.0;
    unsigned best_ways = 0;
    for (unsigned w = 0; w <= mdMaxWays; ++w) {
        double llc_hits =
            static_cast<double>(cum(llcDepthHist, llcWays - w));
        double md_hits = static_cast<double>(
            cum(mdDepthHist,
                static_cast<std::size_t>(w) * kEntriesPerLine));
        double score = llc_hits + mdWeight * md_hits;
        if (score > best_score) {
            best_score = score;
            best_ways = w;
        }
    }

    std::fill(llcDepthHist.begin(), llcDepthHist.end(), 0);
    std::fill(mdDepthHist.begin(), mdDepthHist.end(), 0);
    return best_ways;
}

std::uint64_t
SetDueller::storageBits() const
{
    // Hardware cost: sampled-set tag stacks plus the two histograms
    // (the software maps above are a modelling convenience). Per
    // sampled set: llcWays + md assoc tags of ~16 bits each.
    std::uint64_t sampled_sets =
        (static_cast<std::uint64_t>(numSetsMask) + 1) / sampleStride;
    std::uint64_t tags = sampled_sets
        * (llcWays + static_cast<std::uint64_t>(mdMaxWays)
           * kEntriesPerLine);
    return tags * 16 + (llcDepthHist.size() + mdDepthHist.size()) * 32;
}

} // namespace prophet::pf
