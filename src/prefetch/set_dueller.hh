/**
 * @file
 * Triangel's Set Dueller (Section 2.1.3): decides how many LLC ways
 * the metadata table should borrow by modelling, on a small sample of
 * sets, the hit rates of every partitioning configuration.
 *
 * Implementation uses Mattson stack distances: for sampled sets we
 * maintain full LRU stacks for (a) demand lines reaching the LLC and
 * (b) metadata keys, and histogram the depth of each hit. The hits a
 * configuration with w metadata ways would see are then
 *   llcHits(16 - w)  = sum of demand depths  < 16 - w
 *   mdHits(w * 12)   = sum of metadata depths < w * 12
 * and the dueller recommends the w maximizing their weighted sum.
 * This reproduces the paper's observation that the dueller sometimes
 * picks overly conservative sizes: hit-rate balance is not the same
 * as performance (metadata hits are worth more than LLC hits when
 * coverage is the bottleneck, and less when pollution dominates).
 */

#ifndef PROPHET_PREFETCH_SET_DUELLER_HH
#define PROPHET_PREFETCH_SET_DUELLER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/flat_map.hh"
#include "common/types.hh"
#include "prefetch/metadata_format.hh"

namespace prophet::pf
{

/** Sampled-set partition dueller. */
class SetDueller
{
  public:
    /**
     * @param num_sets Total sets in the modelled structures.
     * @param llc_ways LLC associativity (16).
     * @param md_max_ways Maximum metadata ways (8).
     * @param sample_stride Every sample_stride-th set is sampled.
     * @param window Accesses between recommendations.
     * @param md_weight Relative value of one metadata hit vs one LLC
     *        hit in the duelling score.
     */
    SetDueller(unsigned num_sets, unsigned llc_ways,
               unsigned md_max_ways, unsigned sample_stride = 64,
               std::uint64_t window = 1 << 18, double md_weight = 1.0);

    /** Observe a demand access reaching the LLC. */
    void observeLlcAccess(Addr line_addr);

    /** Observe a metadata-table lookup key. */
    void observeMetadataAccess(Addr key);

    /**
     * After each observation, poll: returns the recommended metadata
     * way count once per window, std::nullopt otherwise. The
     * every-access not-yet path is inline; the once-per-window
     * scoring runs out of line.
     */
    std::optional<unsigned>
    poll()
    {
        if (accessCount < window)
            return std::nullopt;
        return recommend();
    }

    /** Storage cost of the dueller state in bits (~2 KB, §2.1.3). */
    std::uint64_t storageBits() const;

  private:
    unsigned llcWays;
    unsigned mdMaxWays;
    unsigned sampleStride;
    std::uint64_t window;
    double mdWeight;
    std::uint64_t accessCount = 0;

    /** Per sampled set: LRU stack (most recent front). */
    FlatMap<unsigned, std::vector<Addr>> llcStacks;
    FlatMap<unsigned, std::vector<Addr>> mdStacks;

    std::vector<std::uint64_t> llcDepthHist;
    std::vector<std::uint64_t> mdDepthHist;

    unsigned numSetsMask;

    bool sampled(unsigned set) const { return set % sampleStride == 0; }
    void stackAccess(std::vector<Addr> &stack, Addr addr,
                     std::vector<std::uint64_t> &hist,
                     std::size_t max_depth);
    std::optional<unsigned> recommend();
};

} // namespace prophet::pf

#endif // PROPHET_PREFETCH_SET_DUELLER_HH
