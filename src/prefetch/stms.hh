/**
 * @file
 * STMS-style off-chip temporal prefetcher (Wenisch et al., HPCA'09;
 * reference [55] of the paper). Metadata lives in DRAM: a global
 * history buffer of the miss stream plus an index table mapping each
 * address to its latest history position. Every prediction requires
 * metadata reads from DRAM and every training append a metadata
 * write — the bandwidth cost that motivated moving metadata on-chip
 * ("fetching metadata from DRAM consumes a substantial amount of
 * memory bandwidth that could otherwise be used for demand memory
 * accesses", Section 2.1).
 *
 * This implementation models both the prediction mechanics (history
 * replay from the indexed position) and the DRAM metadata traffic,
 * so bench_offchip can reproduce the on-chip-vs-off-chip trade-off.
 */

#ifndef PROPHET_PREFETCH_STMS_HH
#define PROPHET_PREFETCH_STMS_HH

#include <cstdint>
#include <vector>

#include "common/flat_map.hh"
#include "prefetch/prefetcher.hh"

namespace prophet::pf
{

/** STMS configuration. */
struct StmsConfig
{
    /** Global history buffer length (entries, circular). */
    std::size_t historyEntries = 1 << 20;

    /** Addresses replayed per prediction (stream burst). */
    unsigned degree = 4;

    /**
     * History entries packed per 64 B DRAM line (traffic
     * accounting): 16 x 4-byte compressed pointers.
     */
    unsigned entriesPerLine = 16;

    /** Only misses train (classic STMS trains on the miss stream). */
    bool trainOnMissesOnly = true;
};

/**
 * The STMS prefetcher.
 */
class StmsPrefetcher : public TemporalPrefetcher
{
  public:
    explicit StmsPrefetcher(const StmsConfig &config = {});

    void observe(PC pc, Addr line_addr, bool l2_hit, Cycle cycle,
                 std::vector<PrefetchRequest> &out) override;

    /** Off-chip metadata occupies no LLC ways. */
    unsigned metadataWays() const override { return 0; }

    void
    collectStats(MarkovStats &, OffchipMetadataStats &offchip)
        const override
    {
        offchip = mdStats;
    }

    std::string name() const override { return "stms"; }

    /** DRAM traffic caused by metadata management. */
    const OffchipMetadataStats &metadataStats() const
    {
        return mdStats;
    }

    /** Current history occupancy (tests). */
    std::size_t historySize() const
    {
        return full ? cfg.historyEntries : head;
    }

  private:
    StmsConfig cfg;
    std::vector<Addr> history;
    FlatMap<Addr, std::size_t> indexTable;
    std::size_t head = 0;
    bool full = false;
    OffchipMetadataStats mdStats;

    void append(Addr line_addr);
};

} // namespace prophet::pf

#endif // PROPHET_PREFETCH_STMS_HH
