#include "prefetch/stride.hh"

#include "common/intmath.hh"
#include "common/log.hh"

namespace prophet::pf
{

StridePrefetcher::StridePrefetcher(unsigned degree,
                                   unsigned table_entries)
    : degree(degree), table(table_entries)
{
    prophet_assert(degree >= 1);
    prophet_assert(isPowerOf2(table_entries));
}

StridePrefetcher::Entry &
StridePrefetcher::entryFor(PC pc)
{
    return table[static_cast<std::size_t>(pc) & (table.size() - 1)];
}

void
StridePrefetcher::observe(PC pc, Addr line_addr, bool l1_hit,
                          std::vector<Addr> &out)
{
    (void)l1_hit;
    Entry &e = entryFor(pc);
    if (e.pc != pc) {
        // Direct-mapped conflict or cold entry: take over.
        e.pc = pc;
        e.lastLine = line_addr;
        e.stride = 0;
        e.confidence = 0;
        return;
    }

    std::int64_t new_stride = static_cast<std::int64_t>(line_addr)
        - static_cast<std::int64_t>(e.lastLine);
    if (new_stride == 0)
        return; // same-line re-access carries no stride information

    if (new_stride == e.stride) {
        if (e.confidence < 3)
            ++e.confidence;
    } else {
        if (e.confidence > 0) {
            --e.confidence;
        } else {
            e.stride = new_stride;
        }
    }
    e.lastLine = line_addr;

    if (e.confidence >= 2) {
        for (unsigned d = 1; d <= degree; ++d) {
            std::int64_t target = static_cast<std::int64_t>(line_addr)
                + e.stride * static_cast<std::int64_t>(d);
            if (target > 0)
                out.push_back(static_cast<Addr>(target));
        }
    }
}

} // namespace prophet::pf
