#include "prefetch/training_unit.hh"

#include "common/intmath.hh"
#include "common/log.hh"

namespace prophet::pf
{

TrainingUnit::TrainingUnit(unsigned sets, unsigned ways)
    : numSets(sets), numWays(ways),
      entries(static_cast<std::size_t>(sets) * ways)
{
    prophet_assert(isPowerOf2(sets));
    prophet_assert(ways >= 1);
}

unsigned
TrainingUnit::setIndex(PC pc) const
{
    std::uint64_t h = pc;
    h ^= h >> 13;
    h *= 0x9e3779b97f4a7c15ULL;
    h ^= h >> 29;
    return static_cast<unsigned>(h & (numSets - 1));
}

std::optional<Addr>
TrainingUnit::swap(PC pc, Addr line_addr)
{
    unsigned set = setIndex(pc);
    std::size_t base = static_cast<std::size_t>(set) * numWays;
    ++clock;

    // Hit: exchange the remembered address.
    for (unsigned w = 0; w < numWays; ++w) {
        Entry &e = entries[base + w];
        if (e.valid && e.pc == pc) {
            Addr prev = e.last;
            e.last = line_addr;
            e.stamp = clock;
            return prev;
        }
    }

    // Miss: allocate (invalid first, else LRU victim).
    unsigned victim = 0;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (unsigned w = 0; w < numWays; ++w) {
        Entry &e = entries[base + w];
        if (!e.valid) {
            victim = w;
            break;
        }
        if (e.stamp < oldest) {
            oldest = e.stamp;
            victim = w;
        }
    }
    entries[base + victim] =
        Entry{pc, line_addr, clock, true};
    return std::nullopt;
}

std::optional<Addr>
TrainingUnit::peek(PC pc) const
{
    unsigned set = setIndex(pc);
    std::size_t base = static_cast<std::size_t>(set) * numWays;
    for (unsigned w = 0; w < numWays; ++w) {
        const Entry &e = entries[base + w];
        if (e.valid && e.pc == pc)
            return e.last;
    }
    return std::nullopt;
}

} // namespace prophet::pf
