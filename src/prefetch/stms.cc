#include "prefetch/stms.hh"

#include "common/log.hh"

namespace prophet::pf
{

StmsPrefetcher::StmsPrefetcher(const StmsConfig &config)
    : cfg(config)
{
    prophet_assert(cfg.historyEntries >= 2);
    prophet_assert(cfg.degree >= 1);
    history.resize(cfg.historyEntries, kInvalidAddr);
}

void
StmsPrefetcher::append(Addr line_addr)
{
    history[head] = line_addr;
    indexTable[line_addr] = head;
    head = (head + 1) % cfg.historyEntries;
    if (head == 0)
        full = true;

    // Metadata traffic: the history append is write-combined per
    // line; the index-table update is a read-modify-write, modelled
    // as one write per update (the index entry line).
    if (head % cfg.entriesPerLine == 0)
        ++mdStats.metadataWrites; // history line spill
    ++mdStats.metadataWrites;     // index-table update
}

void
StmsPrefetcher::observe(PC pc, Addr line_addr, bool l2_hit,
                        Cycle cycle, std::vector<PrefetchRequest> &out)
{
    (void)cycle;
    if (cfg.trainOnMissesOnly && l2_hit)
        return;

    // Prediction: look up the address's previous position in the
    // history (one index-table DRAM read) and replay the stream that
    // followed it (history-line DRAM reads).
    auto it = indexTable.find(line_addr);
    if (it != indexTable.end()) {
        ++mdStats.metadataReads; // index table lookup
        std::size_t pos = it->second;
        std::size_t lines_read = 0;
        for (unsigned d = 1; d <= cfg.degree; ++d) {
            std::size_t next = (pos + d) % cfg.historyEntries;
            if (!full && next >= head)
                break;
            if (next == head)
                break;
            // Reading the history in line-sized chunks.
            if (d == 1 || next % cfg.entriesPerLine == 0)
                ++lines_read;
            Addr target = history[next];
            if (target != kInvalidAddr && target != line_addr)
                out.push_back(PrefetchRequest{target, pc});
        }
        mdStats.metadataReads += lines_read;
    }

    append(line_addr);
}

} // namespace prophet::pf
