/**
 * @file
 * Counting Bloom filter with cardinality estimation, the mechanism
 * Triage uses to size its metadata table (Section 2.1.3: "Triage
 * employs a Bloom Filter to calculate the effective entries in the
 * metadata table", at ~200 KB of state for ~200K entries — the cost
 * the Set Dueller and Prophet's profile-guided sizing both avoid).
 */

#ifndef PROPHET_PREFETCH_BLOOM_HH
#define PROPHET_PREFETCH_BLOOM_HH

#include <cstdint>
#include <vector>

namespace prophet::pf
{

/**
 * Counting Bloom filter over 64-bit keys with k independent hash
 * functions, plus the standard occupancy-based estimate of how many
 * distinct keys have been inserted.
 */
class BloomFilter
{
  public:
    /**
     * @param bits Filter size in counters (power of 2).
     * @param hashes Number of hash functions (>= 1).
     */
    explicit BloomFilter(std::size_t bits = 1 << 18,
                         unsigned hashes = 4);

    /** Insert a key. */
    void insert(std::uint64_t key);

    /** Remove a key previously inserted (counting variant). */
    void remove(std::uint64_t key);

    /** Possibly-present test (no false negatives). */
    bool mayContain(std::uint64_t key) const;

    /**
     * Estimated number of distinct keys currently in the filter:
     * n ~= -(m/k) * ln(1 - X/m), X = non-zero counters.
     */
    double estimateCardinality() const;

    /** Reset to empty. */
    void clear();

    /** Storage cost of the filter in bits (4-bit counters). */
    std::uint64_t storageBits() const;

  private:
    std::vector<std::uint8_t> counters;
    unsigned numHashes;
    std::size_t nonZero = 0;

    std::size_t hashIdx(std::uint64_t key, unsigned i) const;
};

} // namespace prophet::pf

#endif // PROPHET_PREFETCH_BLOOM_HH
