/**
 * @file
 * Domino-style off-chip temporal prefetcher (Bakhshalipour et al.,
 * HPCA'18; reference [10] of the paper). Improves on single-address
 * indexing (STMS) by indexing the history with the *pair* of the two
 * most recent miss addresses, which disambiguates addresses that
 * appear in multiple streams — the same multi-target phenomenon the
 * paper's Figure 8 quantifies and the Multi-path Victim Buffer
 * attacks on-chip.
 *
 * Metadata (pair index + history) stays in DRAM, so like STMS it
 * pays metadata bandwidth for every training and prediction event.
 */

#ifndef PROPHET_PREFETCH_DOMINO_HH
#define PROPHET_PREFETCH_DOMINO_HH

#include <cstdint>
#include <vector>

#include "common/flat_map.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/stms.hh"

namespace prophet::pf
{

/** Domino configuration. */
struct DominoConfig
{
    /** Global history buffer length (entries, circular). */
    std::size_t historyEntries = 1 << 20;

    /** Addresses replayed per prediction. */
    unsigned degree = 4;

    /** History entries per 64 B DRAM line (traffic accounting). */
    unsigned entriesPerLine = 16;

    /** Train on the full L2 access stream or misses only. */
    bool trainOnMissesOnly = true;
};

/**
 * The Domino prefetcher: pair-indexed temporal streaming.
 */
class DominoPrefetcher : public TemporalPrefetcher
{
  public:
    explicit DominoPrefetcher(const DominoConfig &config = {});

    void observe(PC pc, Addr line_addr, bool l2_hit, Cycle cycle,
                 std::vector<PrefetchRequest> &out) override;

    unsigned metadataWays() const override { return 0; }

    void
    collectStats(MarkovStats &, OffchipMetadataStats &offchip)
        const override
    {
        offchip = mdStats;
    }

    std::string name() const override { return "domino"; }

    const OffchipMetadataStats &metadataStats() const
    {
        return mdStats;
    }

  private:
    DominoConfig cfg;
    std::vector<Addr> history;
    /** (prev, cur) pair -> history position of cur. */
    FlatMap<std::uint64_t, std::size_t> pairIndex;
    /** Single-address fallback index (Domino's first-miss path). */
    FlatMap<Addr, std::size_t> singleIndex;
    Addr lastAddr = kInvalidAddr;
    std::size_t head = 0;
    bool full = false;
    OffchipMetadataStats mdStats;

    static std::uint64_t pairKey(Addr a, Addr b);
    void append(Addr line_addr);
    void replay(std::size_t pos, Addr trigger, PC pc,
                std::vector<PrefetchRequest> &out);
};

} // namespace prophet::pf

#endif // PROPHET_PREFETCH_DOMINO_HH
