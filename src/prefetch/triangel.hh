/**
 * @file
 * Triangel (Ainsworth & Mukhanov, ISCA'24), the state-of-the-art
 * hardware temporal prefetcher Prophet is compared against. On top
 * of Triage it adds:
 *
 *  - PatternConf: a 4-bit per-PC confidence that the PC's accesses
 *    exhibit a temporal pattern, trained by checking whether the
 *    previously sampled successor of an address recurs. Below
 *    threshold, Triangel neither inserts metadata nor prefetches
 *    (Figure 1's "not insert metadata + not prefetch").
 *  - ReuseConf: a 4-bit per-PC confidence that the pattern's reuse
 *    distance fits the metadata table, trained by a sampled
 *    reuse-distance monitor.
 *  - SRRIP metadata replacement (replacing Triage's Hawkeye).
 *  - Set-Dueller resizing (replacing the Bloom filter).
 *  - Aggressive prefetching: degree-4 chained lookahead, the source
 *    of most of Triangel's gain per its own ablation study.
 *
 * The paper's critique (Section 2.1.1) is reproduced faithfully by
 * this construction: short-term confidences mis-filter interleaved
 * useful/useless patterns with high reuse-distance variance.
 */

#ifndef PROPHET_PREFETCH_TRIANGEL_HH
#define PROPHET_PREFETCH_TRIANGEL_HH

#include <cstdint>
#include <vector>

#include "prefetch/markov_table.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/set_dueller.hh"
#include "prefetch/training_unit.hh"

namespace prophet::pf
{

/** Triangel configuration. */
struct TriangelConfig
{
    /** Chained prefetch degree (aggressive default). */
    unsigned degree = 4;

    /** Markov-table sets (= LLC sets). */
    unsigned numSets = 2048;

    /** Maximum borrowed LLC ways. */
    unsigned maxWays = 8;

    /** PatternConf/ReuseConf are 4-bit; start at the threshold. */
    std::uint8_t confInit = 8;
    std::uint8_t confThreshold = 8;
    std::uint8_t confMax = 15;

    /** Enable the insertion filter (ablations switch it off). */
    bool insertionFilter = true;

    /** Enable Set-Dueller resizing. */
    bool duellerResizing = true;

    /** Accesses per dueller window. */
    std::uint64_t duellerWindow = 1 << 18;

    /** Sample-cache entries for pattern checking. */
    unsigned sampleEntries = 4096;

    /** 1-in-N address sampling rate for the reuse monitor. */
    unsigned reuseSampleRate = 16;
};

/**
 * The Triangel temporal prefetcher.
 */
class TriangelPrefetcher : public TemporalPrefetcher
{
  public:
    explicit TriangelPrefetcher(const TriangelConfig &config);

    void observe(PC pc, Addr line_addr, bool l2_hit, Cycle cycle,
                 std::vector<PrefetchRequest> &out) override;

    unsigned metadataWays() const override
    {
        return table.allocatedWays();
    }

    void
    collectStats(MarkovStats &markov, OffchipMetadataStats &)
        const override
    {
        markov = table.stats();
    }

    void
    prefetchSets(Addr line_addr) const override
    {
        table.prefetchSets(line_addr);
    }

    std::string name() const override { return "triangel"; }

    MarkovTable &markovTable() { return table; }
    const MarkovTable &markovTable() const { return table; }

    /** Current PatternConf of a PC (tests; confInit when untracked). */
    std::uint8_t patternConf(PC pc) const;

    /** Current ReuseConf of a PC (tests; confInit when untracked). */
    std::uint8_t reuseConf(PC pc) const;

  private:
    /** Per-PC confidence state. */
    struct ConfEntry
    {
        PC pc = kInvalidPC;
        std::uint8_t pattern = 0;
        std::uint8_t reuse = 0;
        bool valid = false;
    };

    /** Sampled (addr -> observed successor) for pattern checking. */
    struct SampleEntry
    {
        Addr addr = kInvalidAddr;
        Addr next = kInvalidAddr;
        bool valid = false;
    };

    /** Sampled (addr -> last access index) for reuse distances. */
    struct ReuseEntry
    {
        Addr addr = kInvalidAddr;
        std::uint64_t when = 0;
        bool valid = false;
    };

    TriangelConfig cfg;
    MarkovTable table;
    TrainingUnit trainer;
    SetDueller dueller;
    std::vector<ConfEntry> confs;
    std::vector<SampleEntry> samples;
    std::vector<ReuseEntry> reuseSamples;
    std::uint64_t accessIndex = 0;

    ConfEntry &confFor(PC pc);
    const ConfEntry *confPeek(PC pc) const;
    void trainPattern(ConfEntry &conf, Addr prev, Addr cur);
    void trainReuse(ConfEntry &conf, Addr cur);
    static void bump(std::uint8_t &v, bool up, std::uint8_t max);
};

} // namespace prophet::pf

#endif // PROPHET_PREFETCH_TRIANGEL_HH
