/**
 * @file
 * Compressed metadata format constants (Section 3.1): Prophet packs
 * 12 compressed metadata entries inside each 64-byte cache line, each
 * entry holding a 10-bit tag and a 31-bit target address.
 *
 * The functional simulator keys entries by full line address (tag
 * compression changes storage cost, not behaviour, under the paper's
 * assumption of adequate tag bits within a set); these constants
 * drive capacity and storage-overhead arithmetic everywhere.
 */

#ifndef PROPHET_PREFETCH_METADATA_FORMAT_HH
#define PROPHET_PREFETCH_METADATA_FORMAT_HH

#include <cstdint>

#include "common/types.hh"

namespace prophet::pf
{

/** Metadata entries packed per 64 B cache line. */
constexpr unsigned kEntriesPerLine = 12;

/** Tag bits per compressed entry. */
constexpr unsigned kTagBits = 10;

/** Target-address bits per compressed entry. */
constexpr unsigned kTargetBits = 31;

/** Bits per compressed entry (tag + target; 41 bits, 12 per line). */
constexpr unsigned kEntryBits = kTagBits + kTargetBits;

/**
 * Entries in a metadata table of @p bytes capacity.
 * 1 MB -> 196,608 entries, the maximum the paper supports (§5.10).
 */
constexpr std::uint64_t
entriesForBytes(std::uint64_t bytes)
{
    return bytes / kLineSize * kEntriesPerLine;
}

/** Maximum metadata table capacity (Section 3.2 / 5.10): 1 MB. */
constexpr std::uint64_t kMaxTableBytes = 1024 * 1024;

/** Maximum entry count: 196,608. */
constexpr std::uint64_t kMaxTableEntries = entriesForBytes(kMaxTableBytes);

/** Compressed tag of a line address (the 10-bit field). */
constexpr std::uint64_t
compressedTag(Addr line_addr)
{
    return (line_addr ^ (line_addr >> 10) ^ (line_addr >> 20))
        & ((1u << kTagBits) - 1);
}

} // namespace prophet::pf

#endif // PROPHET_PREFETCH_METADATA_FORMAT_HH
