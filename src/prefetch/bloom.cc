#include "prefetch/bloom.hh"

#include <cmath>

#include "common/intmath.hh"
#include "common/log.hh"

namespace prophet::pf
{

BloomFilter::BloomFilter(std::size_t bits, unsigned hashes)
    : counters(bits, 0), numHashes(hashes)
{
    prophet_assert(isPowerOf2(bits));
    prophet_assert(hashes >= 1);
}

std::size_t
BloomFilter::hashIdx(std::uint64_t key, unsigned i) const
{
    // Kirsch-Mitzenmacher double hashing: h1 + i*h2.
    std::uint64_t h = key;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    std::uint64_t h1 = h;
    std::uint64_t h2 = (h >> 32) | 1;
    return static_cast<std::size_t>((h1 + i * h2)
                                    & (counters.size() - 1));
}

void
BloomFilter::insert(std::uint64_t key)
{
    for (unsigned i = 0; i < numHashes; ++i) {
        auto &c = counters[hashIdx(key, i)];
        if (c == 0)
            ++nonZero;
        if (c < 15)
            ++c;
    }
}

void
BloomFilter::remove(std::uint64_t key)
{
    if (!mayContain(key))
        return;
    for (unsigned i = 0; i < numHashes; ++i) {
        auto &c = counters[hashIdx(key, i)];
        if (c > 0) {
            --c;
            if (c == 0)
                --nonZero;
        }
    }
}

bool
BloomFilter::mayContain(std::uint64_t key) const
{
    for (unsigned i = 0; i < numHashes; ++i)
        if (counters[hashIdx(key, i)] == 0)
            return false;
    return true;
}

double
BloomFilter::estimateCardinality() const
{
    double m = static_cast<double>(counters.size());
    double x = static_cast<double>(nonZero);
    if (x >= m)
        return m; // saturated; caller treats as "very large"
    return -(m / static_cast<double>(numHashes))
        * std::log(1.0 - x / m);
}

void
BloomFilter::clear()
{
    counters.assign(counters.size(), 0);
    nonZero = 0;
}

std::uint64_t
BloomFilter::storageBits() const
{
    return static_cast<std::uint64_t>(counters.size()) * 4;
}

} // namespace prophet::pf
