#include "prefetch/domino.hh"

#include "common/log.hh"

namespace prophet::pf
{

DominoPrefetcher::DominoPrefetcher(const DominoConfig &config)
    : cfg(config)
{
    prophet_assert(cfg.historyEntries >= 2);
    prophet_assert(cfg.degree >= 1);
    history.resize(cfg.historyEntries, kInvalidAddr);
}

std::uint64_t
DominoPrefetcher::pairKey(Addr a, Addr b)
{
    std::uint64_t h = a * 0x9e3779b97f4a7c15ULL;
    h ^= b + 0x7f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
}

void
DominoPrefetcher::append(Addr line_addr)
{
    history[head] = line_addr;
    singleIndex[line_addr] = head;
    if (lastAddr != kInvalidAddr)
        pairIndex[pairKey(lastAddr, line_addr)] = head;

    head = (head + 1) % cfg.historyEntries;
    if (head == 0)
        full = true;

    if (head % cfg.entriesPerLine == 0)
        ++mdStats.metadataWrites; // history line spill
    ++mdStats.metadataWrites;     // index update(s)
}

void
DominoPrefetcher::replay(std::size_t pos, Addr trigger, PC pc,
                         std::vector<PrefetchRequest> &out)
{
    std::size_t lines_read = 0;
    for (unsigned d = 1; d <= cfg.degree; ++d) {
        std::size_t next = (pos + d) % cfg.historyEntries;
        if (!full && next >= head)
            break;
        if (next == head)
            break;
        if (d == 1 || next % cfg.entriesPerLine == 0)
            ++lines_read;
        Addr target = history[next];
        if (target != kInvalidAddr && target != trigger)
            out.push_back(PrefetchRequest{target, pc});
    }
    mdStats.metadataReads += lines_read;
}

void
DominoPrefetcher::observe(PC pc, Addr line_addr, bool l2_hit,
                          Cycle cycle,
                          std::vector<PrefetchRequest> &out)
{
    (void)cycle;
    if (cfg.trainOnMissesOnly && l2_hit) {
        return;
    }

    // Prefer the pair index (disambiguated stream); fall back to the
    // single-address index when the pair is cold. Each consulted
    // index costs one metadata DRAM read.
    if (lastAddr != kInvalidAddr) {
        auto it = pairIndex.find(pairKey(lastAddr, line_addr));
        ++mdStats.metadataReads;
        if (it != pairIndex.end()) {
            replay(it->second, line_addr, pc, out);
            append(line_addr);
            lastAddr = line_addr;
            return;
        }
    }
    auto sit = singleIndex.find(line_addr);
    ++mdStats.metadataReads;
    if (sit != singleIndex.end())
        replay(sit->second, line_addr, pc, out);

    append(line_addr);
    lastAddr = line_addr;
}

} // namespace prophet::pf
