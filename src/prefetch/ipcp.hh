/**
 * @file
 * IPCP-style L1 prefetcher (Pakalapati & Panda, ISCA'20), used in the
 * Figure 17 sensitivity study to emulate a richer commercial L1
 * prefetcher (Neoverse V2-class stream+stride+spatial mix).
 *
 * Instruction pointers are classified per access into one of three
 * classes, checked in priority order:
 *  - CS (constant stride): stable per-PC stride, deep prefetching.
 *  - CPLX (complex): per-PC delta-signature predictor covering
 *    repeating non-constant stride sequences.
 *  - GS (global stream): dense region streaming, next-line burst.
 */

#ifndef PROPHET_PREFETCH_IPCP_HH
#define PROPHET_PREFETCH_IPCP_HH

#include <cstdint>
#include <vector>

#include "prefetch/prefetcher.hh"

namespace prophet::pf
{

/** IPCP-style classifying L1 prefetcher. */
class IpcpPrefetcher : public L1Prefetcher
{
  public:
    /**
     * @param cs_degree Prefetch depth for constant-stride PCs.
     * @param gs_degree Next-line burst length for global streams.
     */
    explicit IpcpPrefetcher(unsigned cs_degree = 6,
                            unsigned gs_degree = 4);

    void observe(PC pc, Addr line_addr, bool l1_hit,
                 std::vector<Addr> &out) override;

    std::string name() const override { return "ipcp"; }

  private:
    struct IpEntry
    {
        PC pc = kInvalidPC;
        Addr lastLine = 0;
        std::int64_t stride = 0;
        std::uint8_t strideConf = 0;
        std::uint16_t signature = 0;
    };

    /** CPLX delta predictor entry. */
    struct CplxEntry
    {
        std::int64_t delta = 0;
        std::uint8_t conf = 0;
    };

    /** Region tracker for GS classification. */
    struct Region
    {
        Addr base = 0;
        std::uint32_t touched = 0; ///< bitmap of touched lines
        bool valid = false;
    };

    unsigned csDegree;
    unsigned gsDegree;
    std::vector<IpEntry> ipTable;
    std::vector<CplxEntry> cplxTable;
    std::vector<Region> regions;

    IpEntry &ipEntry(PC pc);
    CplxEntry &cplxEntry(std::uint16_t sig);
    static std::uint16_t updateSignature(std::uint16_t sig,
                                         std::int64_t delta);
    bool regionDense(Addr line_addr);
};

} // namespace prophet::pf

#endif // PROPHET_PREFETCH_IPCP_HH
