#include "prefetch/markov_table.hh"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include <algorithm>

#include "common/intmath.hh"
#include "common/log.hh"
#include "mem/hawkeye.hh"

namespace prophet::pf
{

MarkovTable::MarkovTable(unsigned num_sets, unsigned max_ways,
                         std::unique_ptr<mem::ReplacementPolicy> policy)
    : numSets(num_sets), maxWays(max_ways), curWays(max_ways),
      fps(static_cast<std::size_t>(num_sets) * max_ways
              * kEntriesPerLine,
          fingerprint(kInvalidAddr)),
      keys(fps.size(), kInvalidAddr),
      targets(keys.size(), kInvalidAddr),
      priorities(keys.size(), 0),
      setValid(num_sets, 0),
      candScratch(static_cast<std::size_t>(max_ways) * kEntriesPerLine),
      repl(std::move(policy)),
      curA(max_ways * kEntriesPerLine)
{
    prophet_assert(isPowerOf2(num_sets));
    prophet_assert(max_ways >= 1);
    prophet_assert(repl != nullptr);
    hawkeye = dynamic_cast<mem::HawkeyePolicy *>(repl.get());
    repl->reset(numSets, maxAssoc());
}

int
MarkovTable::findWay(unsigned set, Addr key) const
{
    // Scan fingerprints; verify a hit against the full key (keys are
    // unique within a set, so the first verified match is the only
    // one). Invalid slots hold kInvalidAddr in the key array and can
    // never verify against a real key.
    //
    // The scan is bounded by the set's valid prefix: inserts always
    // fill the lowest invalid slot, replacements refill their victim
    // slot in place, and resizes drop only the tail beyond the new
    // capacity, so valid entries occupy exactly ways
    // [0, setValid[set]). Slots past the prefix hold kInvalidAddr
    // keys and can never verify, so skipping them loses no match —
    // and a partially trained 96-way set scans only what it holds.
    const std::uint32_t fp = fingerprint(key);
    const std::size_t base = slotIndex(set, 0);
    const std::uint32_t *f = fps.data() + base;
    const Addr *k = keys.data() + base;
    const unsigned limit = setValid[set];
    // The first few metadata lines scan scalar: trained lookups
    // mostly resolve early (slots fill lowest-first), and for the
    // short scans of a resized-down table the early exit beats
    // vector setup outright. Only the long tail of a near-full
    // 96-way set is worth vectorizing.
    constexpr unsigned kScalarHead = 3 * kEntriesPerLine;
    const unsigned head = std::min(limit, kScalarHead);
    for (unsigned w = 0; w < head; ++w) {
        if (f[w] == fp && k[w] == key)
            return static_cast<int>(w);
    }
#if defined(__SSE2__)
    static_assert(kEntriesPerLine == 12,
                  "chunked scan assumes 12 fingerprints per line");
    // Remaining lines chunk-at-a-time: each 12-entry chunk is
    // reduced to an any-match flag with three SSE2 compares, and
    // only a chunk whose flag fires is rescanned scalar. Chunks are
    // visited in order and rescans resolve in order, so the result
    // is the same first match the scalar loop produces. A chunk may
    // read a few slots past `limit` (never past the allocation);
    // their invalid keys cannot verify.
    const __m128i vfp = _mm_set1_epi32(static_cast<int>(fp));
    for (unsigned w = kScalarHead; w < limit;
         w += kEntriesPerLine) {
        const __m128i a = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(f + w));
        const __m128i b = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(f + w + 4));
        const __m128i c = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(f + w + 8));
        const __m128i hit = _mm_or_si128(
            _mm_or_si128(_mm_cmpeq_epi32(a, vfp),
                         _mm_cmpeq_epi32(b, vfp)),
            _mm_cmpeq_epi32(c, vfp));
        if (_mm_movemask_epi8(hit)) {
            for (unsigned j = 0; j < kEntriesPerLine; ++j) {
                if (f[w + j] == fp && k[w + j] == key)
                    return static_cast<int>(w + j);
            }
        }
    }
#else
    for (unsigned w = head; w < limit; ++w) {
        if (f[w] == fp && k[w] == key)
            return static_cast<int>(w);
    }
#endif
    return -1;
}

void
MarkovTable::hawkeyeHints(Addr key)
{
    // Hawkeye needs the access signature/address to run its OPTgen
    // sampler; for metadata, the key address plays both roles.
    if (hawkeye) {
        hawkeye->setSignature(key >> 4);
        hawkeye->setAddress(key);
    }
}

std::uint64_t
MarkovTable::capacityEntries() const
{
    return static_cast<std::uint64_t>(numSets) * curAssoc();
}

std::optional<Addr>
MarkovTable::lookup(Addr key)
{
    if (curWays == 0)
        return std::nullopt;
    ++statsData.lookups;
    unsigned set = setIndex(key);
    int way = findWay(set, key);
    if (way < 0)
        return std::nullopt;
    ++statsData.hits;
    hawkeyeHints(key);
    repl->touch(set, static_cast<unsigned>(way));
    return targets[slotIndex(set, static_cast<unsigned>(way))];
}

std::optional<Addr>
MarkovTable::peek(Addr key) const
{
    if (curWays == 0)
        return std::nullopt;
    unsigned set = setIndex(key);
    int way = findWay(set, key);
    if (way < 0)
        return std::nullopt;
    return targets[slotIndex(set, static_cast<unsigned>(way))];
}

void
MarkovTable::insert(Addr key, Addr target, std::uint8_t priority)
{
    if (curWays == 0)
        return;
    unsigned set = setIndex(key);
    int existing = findWay(set, key);
    if (existing >= 0) {
        std::size_t idx =
            slotIndex(set, static_cast<unsigned>(existing));
        if (targets[idx] != target) {
            // Target overwrite: the old target is displaced; the
            // Multi-path Victim Buffer captures it.
            ++statsData.updates;
            if (evictionCb)
                evictionCb(
                    Entry{keys[idx], targets[idx], priorities[idx],
                          true});
            targets[idx] = target;
        }
        priorities[idx] = priority;
        hawkeyeHints(key);
        repl->touch(set, static_cast<unsigned>(existing));
        return;
    }

    // Allocate: valid slots are a contiguous prefix (see findWay),
    // so the first invalid slot is setValid[set] itself — no scan.
    int slot = -1;
    if (setValid[set] < curA) {
        slot = static_cast<int>(setValid[set]);
        prophet_assert(
            keys[slotIndex(set, static_cast<unsigned>(slot))]
            == kInvalidAddr);
    }

    if (slot < 0) {
        unsigned n = 0;
        if (priorityAware) {
            // Prophet replacement: restrict candidates to the lowest
            // priority level present; the runtime policy then picks
            // the final victim among them (Figure 4).
            const std::uint8_t *p =
                priorities.data() + slotIndex(set, 0);
            std::uint8_t min_prio = 255;
            for (unsigned w = 0; w < curA; ++w)
                min_prio = std::min(min_prio, p[w]);
            for (unsigned w = 0; w < curA; ++w)
                if (p[w] == min_prio)
                    candScratch[n++] = w;
        } else {
            for (unsigned w = 0; w < curA; ++w)
                candScratch[n++] = w;
        }
        unsigned victim = repl->victim(set, candScratch.data(), n);
        std::size_t vidx = slotIndex(set, victim);
        ++statsData.replacements;
        if (evictionCb)
            evictionCb(Entry{keys[vidx], targets[vidx],
                             priorities[vidx], true});
        keys[vidx] = kInvalidAddr;
        fps[vidx] = fingerprint(kInvalidAddr);
        --validCount;
        --setValid[set];
        slot = static_cast<int>(victim);
    }

    std::size_t idx = slotIndex(set, static_cast<unsigned>(slot));
    keys[idx] = key;
    fps[idx] = fingerprint(key);
    targets[idx] = target;
    priorities[idx] = priority;
    ++validCount;
    ++setValid[set];
    ++statsData.inserts;
    hawkeyeHints(key);
    repl->insert(set, static_cast<unsigned>(slot));
}

void
MarkovTable::setAllocatedWays(unsigned ways)
{
    prophet_assert(ways <= maxWays);
    if (ways < curWays) {
        unsigned new_assoc = ways * kEntriesPerLine;
        for (unsigned set = 0; set < numSets; ++set) {
            for (unsigned w = new_assoc; w < curAssoc(); ++w) {
                std::size_t idx = slotIndex(set, w);
                if (keys[idx] != kInvalidAddr) {
                    keys[idx] = kInvalidAddr;
                    fps[idx] = fingerprint(kInvalidAddr);
                    --validCount;
                    --setValid[set];
                    ++statsData.resizeDrops;
                }
            }
        }
    }
    curWays = ways;
    curA = ways * kEntriesPerLine;
}

void
MarkovTable::clear()
{
    std::fill(keys.begin(), keys.end(), kInvalidAddr);
    std::fill(fps.begin(), fps.end(), fingerprint(kInvalidAddr));
    std::fill(setValid.begin(), setValid.end(), 0);
    validCount = 0;
    repl->reset(numSets, maxAssoc());
}

std::optional<std::uint8_t>
MarkovTable::priorityOf(Addr key) const
{
    unsigned set = setIndex(key);
    int way = findWay(set, key);
    if (way < 0)
        return std::nullopt;
    return priorities[slotIndex(set, static_cast<unsigned>(way))];
}

} // namespace prophet::pf
