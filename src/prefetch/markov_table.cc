#include "prefetch/markov_table.hh"

#include "common/intmath.hh"
#include "common/log.hh"
#include "mem/hawkeye.hh"

namespace prophet::pf
{

MarkovTable::MarkovTable(unsigned num_sets, unsigned max_ways,
                         std::unique_ptr<mem::ReplacementPolicy> policy)
    : numSets(num_sets), maxWays(max_ways), curWays(max_ways),
      entries(static_cast<std::size_t>(num_sets) * max_ways
              * kEntriesPerLine),
      candScratch(static_cast<std::size_t>(max_ways) * kEntriesPerLine),
      repl(std::move(policy))
{
    prophet_assert(isPowerOf2(num_sets));
    prophet_assert(max_ways >= 1);
    prophet_assert(repl != nullptr);
    repl->reset(numSets, maxAssoc());
}

unsigned
MarkovTable::setIndex(Addr key) const
{
    // Mix the key so that metadata for dense regions spreads across
    // sets (the LLC uses low bits directly; the table hashes).
    std::uint64_t h = key;
    h ^= h >> 17;
    h *= 0xed5ad4bbULL;
    h ^= h >> 11;
    return static_cast<unsigned>(h & (numSets - 1));
}

MarkovTable::Entry &
MarkovTable::at(unsigned set, unsigned way)
{
    return entries[static_cast<std::size_t>(set) * maxAssoc() + way];
}

const MarkovTable::Entry &
MarkovTable::at(unsigned set, unsigned way) const
{
    return entries[static_cast<std::size_t>(set) * maxAssoc() + way];
}

int
MarkovTable::findWay(unsigned set, Addr key) const
{
    for (unsigned w = 0; w < curAssoc(); ++w) {
        const Entry &e = at(set, w);
        if (e.valid && e.key == key)
            return static_cast<int>(w);
    }
    return -1;
}

void
MarkovTable::hawkeyeHints(Addr key)
{
    // Hawkeye needs the access signature/address to run its OPTgen
    // sampler; for metadata, the key address plays both roles.
    if (auto *hk = dynamic_cast<mem::HawkeyePolicy *>(repl.get())) {
        hk->setSignature(key >> 4);
        hk->setAddress(key);
    }
}

std::uint64_t
MarkovTable::capacityEntries() const
{
    return static_cast<std::uint64_t>(numSets) * curAssoc();
}

std::optional<Addr>
MarkovTable::lookup(Addr key)
{
    if (curWays == 0)
        return std::nullopt;
    ++statsData.lookups;
    unsigned set = setIndex(key);
    int way = findWay(set, key);
    if (way < 0)
        return std::nullopt;
    ++statsData.hits;
    hawkeyeHints(key);
    repl->touch(set, static_cast<unsigned>(way));
    return at(set, static_cast<unsigned>(way)).target;
}

std::optional<Addr>
MarkovTable::peek(Addr key) const
{
    if (curWays == 0)
        return std::nullopt;
    unsigned set = setIndex(key);
    int way = findWay(set, key);
    if (way < 0)
        return std::nullopt;
    return at(set, static_cast<unsigned>(way)).target;
}

void
MarkovTable::insert(Addr key, Addr target, std::uint8_t priority)
{
    if (curWays == 0)
        return;
    unsigned set = setIndex(key);
    int existing = findWay(set, key);
    if (existing >= 0) {
        Entry &e = at(set, static_cast<unsigned>(existing));
        if (e.target != target) {
            // Target overwrite: the old target is displaced; the
            // Multi-path Victim Buffer captures it.
            ++statsData.updates;
            if (evictionCb)
                evictionCb(e);
            e.target = target;
        }
        e.priority = priority;
        hawkeyeHints(key);
        repl->touch(set, static_cast<unsigned>(existing));
        return;
    }

    // Allocate: prefer an invalid slot within the current partition.
    int slot = -1;
    for (unsigned w = 0; w < curAssoc(); ++w) {
        if (!at(set, w).valid) {
            slot = static_cast<int>(w);
            break;
        }
    }

    if (slot < 0) {
        unsigned n = 0;
        if (priorityAware) {
            // Prophet replacement: restrict candidates to the lowest
            // priority level present; the runtime policy then picks
            // the final victim among them (Figure 4).
            std::uint8_t min_prio = 255;
            for (unsigned w = 0; w < curAssoc(); ++w)
                min_prio = std::min(min_prio, at(set, w).priority);
            for (unsigned w = 0; w < curAssoc(); ++w)
                if (at(set, w).priority == min_prio)
                    candScratch[n++] = w;
        } else {
            for (unsigned w = 0; w < curAssoc(); ++w)
                candScratch[n++] = w;
        }
        unsigned victim = repl->victim(set, candScratch.data(), n);
        Entry &v = at(set, victim);
        ++statsData.replacements;
        if (evictionCb)
            evictionCb(v);
        v.valid = false;
        --validCount;
        slot = static_cast<int>(victim);
    }

    Entry &e = at(set, static_cast<unsigned>(slot));
    e.key = key;
    e.target = target;
    e.priority = priority;
    e.valid = true;
    ++validCount;
    ++statsData.inserts;
    hawkeyeHints(key);
    repl->insert(set, static_cast<unsigned>(slot));
}

void
MarkovTable::setAllocatedWays(unsigned ways)
{
    prophet_assert(ways <= maxWays);
    if (ways < curWays) {
        unsigned new_assoc = ways * kEntriesPerLine;
        for (unsigned set = 0; set < numSets; ++set) {
            for (unsigned w = new_assoc; w < curAssoc(); ++w) {
                Entry &e = at(set, w);
                if (e.valid) {
                    e.valid = false;
                    --validCount;
                    ++statsData.resizeDrops;
                }
            }
        }
    }
    curWays = ways;
}

void
MarkovTable::clear()
{
    for (auto &e : entries)
        e.valid = false;
    validCount = 0;
    repl->reset(numSets, maxAssoc());
}

std::optional<std::uint8_t>
MarkovTable::priorityOf(Addr key) const
{
    unsigned set = setIndex(key);
    int way = findWay(set, key);
    if (way < 0)
        return std::nullopt;
    return at(set, static_cast<unsigned>(way)).priority;
}

} // namespace prophet::pf
