/**
 * @file
 * The on-chip metadata (Markov) table shared with the LLC, the
 * structure at the heart of on-chip temporal prefetching (Triage,
 * Triangel, Prophet). Maps a line address to the line address that
 * followed it in the training stream.
 *
 * Geometry mirrors the LLC partition: the table borrows whole LLC
 * ways; each borrowed way contributes one 64 B line = 12 compressed
 * entries per set (metadata_format.hh). With 2048 LLC sets and 8 ways
 * the table holds 196,608 entries = 1 MB, the paper's maximum.
 *
 * Replacement is pluggable (SRRIP for Triangel, Hawkeye for original
 * Triage, LRU for the simplified profiling configuration). Prophet's
 * profile-guided replacement layers on top: entries carry a priority
 * level (Eq. 2); when priority-aware mode is on, victim candidates
 * are restricted to the lowest-priority valid entries and the runtime
 * policy chooses the final victim among them (Figure 4).
 */

#ifndef PROPHET_PREFETCH_MARKOV_TABLE_HH
#define PROPHET_PREFETCH_MARKOV_TABLE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/prefetch.hh"
#include "common/types.hh"
#include "mem/replacement.hh"
#include "prefetch/metadata_format.hh"

namespace prophet::mem
{
class HawkeyePolicy;
} // namespace prophet::mem

namespace prophet::pf
{

/** Aggregate metadata-table statistics. */
struct MarkovStats
{
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t inserts = 0;       ///< new-entry allocations
    std::uint64_t updates = 0;       ///< target overwrites on hits
    std::uint64_t replacements = 0;  ///< valid entries displaced
    std::uint64_t resizeDrops = 0;   ///< entries lost to shrinking

    /**
     * The paper's application-level profiling metric (Section 4.1):
     * Allocated Entries = Insertions - Replacements.
     */
    std::uint64_t
    allocatedEntries() const
    {
        return inserts >= replacements ? inserts - replacements : 0;
    }
};

/**
 * The metadata table.
 */
class MarkovTable
{
  public:
    /** One stored correlation. */
    struct Entry
    {
        Addr key = kInvalidAddr;
        Addr target = kInvalidAddr;
        std::uint8_t priority = 0; ///< Prophet replacement state
        bool valid = false;
    };

    /**
     * Called with an entry whose target is being displaced — either
     * the victim of a replacement or the old target of an overwrite.
     * The Multi-path Victim Buffer (Section 4.5) subscribes here.
     */
    using EvictionCallback = std::function<void(const Entry &)>;

    /**
     * @param num_sets Sets (= LLC sets), power of 2.
     * @param max_ways Maximum borrowed LLC ways (8 for 1 MB).
     * @param policy Runtime replacement policy (takes ownership).
     */
    MarkovTable(unsigned num_sets, unsigned max_ways,
                std::unique_ptr<mem::ReplacementPolicy> policy);

    /**
     * Adjust the number of borrowed LLC ways. Shrinking drops entries
     * stored beyond the new capacity.
     */
    void setAllocatedWays(unsigned ways);

    /** Currently borrowed LLC ways. */
    unsigned allocatedWays() const { return curWays; }

    /** Maximum borrowed ways. */
    unsigned maxAllocatedWays() const { return maxWays; }

    /** Entry capacity at the current size. */
    std::uint64_t capacityEntries() const;

    /** Currently valid entries. */
    std::uint64_t size() const { return validCount; }

    /**
     * Look up the successor of @p key; touches replacement state on a
     * hit. Returns std::nullopt when the table holds no entry (or has
     * zero allocated ways).
     */
    std::optional<Addr> lookup(Addr key);

    /** Non-destructive probe (no replacement-state update). */
    std::optional<Addr> peek(Addr key) const;

    /**
     * Record the correlation key -> target with the given Prophet
     * priority (0 when Prophet replacement is off). No-op when zero
     * ways are allocated.
     */
    void insert(Addr key, Addr target, std::uint8_t priority);

    /** Enable/disable priority-filtered victim selection. */
    void setPriorityAware(bool aware) { priorityAware = aware; }

    /** Subscribe to displaced targets (Multi-path Victim Buffer). */
    void setEvictionCallback(EvictionCallback cb)
    {
        evictionCb = std::move(cb);
    }

    const MarkovStats &stats() const { return statsData; }
    void resetStats() { statsData = MarkovStats{}; }

    /** Invalidate everything (program switch). */
    void clear();

    /** Priority of the entry holding @p key, if present (tests). */
    std::optional<std::uint8_t> priorityOf(Addr key) const;

    /**
     * Warm the fingerprint scan array of @p key's set ahead of an
     * upcoming lookup/insert (the record loop's lookahead). Pure
     * software prefetch: no replacement or statistics update, so
     * results are bit-identical with or without it.
     */
    void
    prefetchSets(Addr key) const
    {
        if (curA == 0)
            return;
        const unsigned set = setIndex(key);
        // Valid entries are a contiguous prefix (see findWay), so
        // only the lines the scan and the hit path can actually
        // touch are warmed: the fingerprint span (16 per 64 B line)
        // and the successor span (8 per line) up to the valid count.
        const unsigned limit = setValid[set];
        if (limit == 0)
            return;
        const std::size_t base = slotIndex(set, 0);
        constexpr unsigned kFpsPerLine =
            kLineSize / sizeof(std::uint32_t);
        const std::uint32_t *f = fps.data() + base;
        for (unsigned w = 0; w < limit; w += kFpsPerLine)
            prefetchRead(f + w);
        constexpr unsigned kTargetsPerLine = kLineSize / sizeof(Addr);
        const Addr *tg = targets.data() + base;
        for (unsigned w = 0; w < limit; w += kTargetsPerLine)
            prefetchRead(tg + w);
    }

  private:
    unsigned numSets;
    unsigned maxWays;
    unsigned curWays;
    bool priorityAware = false;
    std::uint64_t validCount = 0;

    /**
     * Entry state, structure-of-arrays: the per-access findWay scan
     * reads a dense array of 32-bit key fingerprints (one 64 B line
     * covers 16 candidate ways); only a fingerprint hit is verified
     * against the full key array, so the common all-miss scan of a
     * 96-way set touches 6 lines instead of the 24 the old
     * array-of-structs layout dragged through the cache. Targets and
     * priorities sit in side arrays touched only after a verified
     * match. kInvalidAddr in the full-key array marks an invalid
     * slot (keys are line addresses, which never collide with the
     * all-ones sentinel); its fingerprint may collide with a real
     * key's, which the full-key verification rejects.
     */
    std::vector<std::uint32_t> fps;
    std::vector<Addr> keys;
    std::vector<Addr> targets;
    std::vector<std::uint8_t> priorities;

    /**
     * Valid entries per set. When a set is full (the steady state of
     * a trained table), the insert path skips its invalid-slot scan
     * outright instead of re-reading every key.
     */
    std::vector<std::uint16_t> setValid;

    /** 32-bit fold of a key for the scan array. */
    static std::uint32_t
    fingerprint(Addr key)
    {
        return static_cast<std::uint32_t>(key ^ (key >> 32));
    }

    /**
     * Scratch candidate buffer for victim selection, sized maxAssoc()
     * at construction so the insert/evict hot path never allocates.
     */
    std::vector<unsigned> candScratch;

    std::unique_ptr<mem::ReplacementPolicy> repl;

    /**
     * repl downcast to Hawkeye when it is one (resolved once at
     * construction; the old per-access dynamic_cast was a measurable
     * slice of every lookup and insert).
     */
    mem::HawkeyePolicy *hawkeye = nullptr;

    EvictionCallback evictionCb;
    MarkovStats statsData;

    unsigned maxAssoc() const { return maxWays * kEntriesPerLine; }
    unsigned curAssoc() const { return curA; }
    /** curWays * kEntriesPerLine, cached off the scan path. */
    unsigned curA;

    unsigned
    setIndex(Addr key) const
    {
        // Mix the key so that metadata for dense regions spreads
        // across sets (the LLC uses low bits directly; the table
        // hashes).
        std::uint64_t h = key;
        h ^= h >> 17;
        h *= 0xed5ad4bbULL;
        h ^= h >> 11;
        return static_cast<unsigned>(h & (numSets - 1));
    }
    std::size_t slotIndex(unsigned set, unsigned way) const
    {
        return static_cast<std::size_t>(set) * maxAssoc() + way;
    }
    int findWay(unsigned set, Addr key) const;
    void hawkeyeHints(Addr key);
};

} // namespace prophet::pf

#endif // PROPHET_PREFETCH_MARKOV_TABLE_HH
