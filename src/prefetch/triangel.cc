#include "prefetch/triangel.hh"

#include "common/intmath.hh"
#include "common/log.hh"

namespace prophet::pf
{

namespace
{

std::size_t
mix(std::uint64_t v, std::size_t mask)
{
    v ^= v >> 21;
    v *= 0x2545f4914f6cdd1dULL;
    v ^= v >> 35;
    return static_cast<std::size_t>(v) & mask;
}

} // anonymous namespace

TriangelPrefetcher::TriangelPrefetcher(const TriangelConfig &config)
    : cfg(config),
      table(config.numSets, config.maxWays,
            std::make_unique<mem::SrripPolicy>()),
      dueller(config.numSets, 16, config.maxWays, 64,
              config.duellerWindow),
      confs(1024),
      samples(config.sampleEntries),
      reuseSamples(config.sampleEntries)
{
    prophet_assert(cfg.degree >= 1);
    prophet_assert(isPowerOf2(config.sampleEntries));
}

TriangelPrefetcher::ConfEntry &
TriangelPrefetcher::confFor(PC pc)
{
    ConfEntry &e = confs[mix(pc, confs.size() - 1)];
    if (!e.valid || e.pc != pc) {
        e.pc = pc;
        e.pattern = cfg.confInit;
        e.reuse = cfg.confInit;
        e.valid = true;
    }
    return e;
}

const TriangelPrefetcher::ConfEntry *
TriangelPrefetcher::confPeek(PC pc) const
{
    const ConfEntry &e = confs[mix(pc, confs.size() - 1)];
    return (e.valid && e.pc == pc) ? &e : nullptr;
}

std::uint8_t
TriangelPrefetcher::patternConf(PC pc) const
{
    const ConfEntry *e = confPeek(pc);
    return e ? e->pattern : cfg.confInit;
}

std::uint8_t
TriangelPrefetcher::reuseConf(PC pc) const
{
    const ConfEntry *e = confPeek(pc);
    return e ? e->reuse : cfg.confInit;
}

void
TriangelPrefetcher::bump(std::uint8_t &v, bool up, std::uint8_t max)
{
    if (up) {
        if (v < max)
            ++v;
    } else {
        if (v > 0)
            --v;
    }
}

void
TriangelPrefetcher::trainPattern(ConfEntry &conf, Addr prev, Addr cur)
{
    // Did the previously sampled successor of `prev` recur? A match
    // means the PC's stream repeats (temporal pattern); a mismatch
    // means the correlation is unstable. The sample cache is the
    // short-term history whose blind spots Figure 1 illustrates.
    SampleEntry &s = samples[mix(prev, samples.size() - 1)];
    if (s.valid && s.addr == prev)
        bump(conf.pattern, s.next == cur, cfg.confMax);
    s.addr = prev;
    s.next = cur;
    s.valid = true;
}

void
TriangelPrefetcher::trainReuse(ConfEntry &conf, Addr cur)
{
    // Sample 1/reuseSampleRate of addresses; on re-access, compare
    // the observed reuse distance against the table's capacity.
    if (mix(cur * 0x517cc1b727220a95ULL, cfg.reuseSampleRate - 1) != 0)
        return;
    ReuseEntry &r = reuseSamples[mix(cur, reuseSamples.size() - 1)];
    if (r.valid && r.addr == cur) {
        std::uint64_t distance = accessIndex - r.when;
        std::uint64_t capacity = static_cast<std::uint64_t>(cfg.numSets)
            * cfg.maxWays * kEntriesPerLine;
        bump(conf.reuse, distance <= capacity, cfg.confMax);
    }
    r.addr = cur;
    r.when = accessIndex;
    r.valid = true;
}

void
TriangelPrefetcher::observe(PC pc, Addr line_addr, bool l2_hit,
                            Cycle cycle,
                            std::vector<PrefetchRequest> &out)
{
    (void)l2_hit;
    (void)cycle;
    ++accessIndex;

    ConfEntry &conf = confFor(pc);
    auto prev = trainer.swap(pc, line_addr);

    if (prev && *prev != line_addr)
        trainPattern(conf, *prev, line_addr);
    trainReuse(conf, line_addr);

    bool pattern_ok = conf.pattern >= cfg.confThreshold;
    bool reuse_ok = conf.reuse >= cfg.confThreshold;
    bool allow = !cfg.insertionFilter || (pattern_ok && reuse_ok);

    // Training-data filtering: below confidence, neither insert nor
    // predict for this PC.
    if (allow && prev && *prev != line_addr)
        table.insert(*prev, line_addr, 0);

    if (!cfg.insertionFilter || pattern_ok) {
        Addr cur = line_addr;
        for (unsigned d = 0; d < cfg.degree; ++d) {
            auto target = table.lookup(cur);
            if (!target)
                break;
            out.push_back(PrefetchRequest{*target, pc});
            cur = *target;
        }
        if (cfg.duellerResizing)
            dueller.observeMetadataAccess(line_addr);
    }

    if (cfg.duellerResizing) {
        dueller.observeLlcAccess(line_addr);
        if (auto ways = dueller.poll())
            table.setAllocatedWays(*ways);
    }
}

} // namespace prophet::pf
