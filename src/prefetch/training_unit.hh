/**
 * @file
 * PC-indexed training unit shared by the temporal prefetchers: tracks
 * the last line address each memory instruction touched so that
 * consecutive accesses from the same PC form the (previous -> current)
 * correlations stored in the metadata table (Figure 3's "Training
 * Phase": PC1 touching Addr1, Addr2, Addr3 records Addr1->Addr2,
 * Addr2->Addr3).
 */

#ifndef PROPHET_PREFETCH_TRAINING_UNIT_HH
#define PROPHET_PREFETCH_TRAINING_UNIT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace prophet::pf
{

/**
 * Fixed-capacity, set-associative training unit. Evicts LRU entries
 * when PCs overflow a set (hardware cost: ~tens of entries; we model
 * a generous 256 x 4).
 */
class TrainingUnit
{
  public:
    explicit TrainingUnit(unsigned sets = 256, unsigned ways = 4);

    /**
     * Record that @p pc touched @p line_addr; returns the previous
     * line this PC touched, if the unit still remembers it.
     */
    std::optional<Addr> swap(PC pc, Addr line_addr);

    /** Last address for a PC without updating (tests). */
    std::optional<Addr> peek(PC pc) const;

  private:
    struct Entry
    {
        PC pc = kInvalidPC;
        Addr last = kInvalidAddr;
        std::uint64_t stamp = 0;
        bool valid = false;
    };

    unsigned numSets;
    unsigned numWays;
    std::uint64_t clock = 0;
    std::vector<Entry> entries;

    unsigned setIndex(PC pc) const;
};

} // namespace prophet::pf

#endif // PROPHET_PREFETCH_TRAINING_UNIT_HH
