/**
 * @file
 * Triage (Wu et al., MICRO'19 / IEEE TC'21): the first on-chip
 * temporal prefetcher. PC-localized training inserts every observed
 * correlation into the LLC-resident Markov table (no insertion
 * policy, Section 2.1.1); replacement is Hawkeye (original) or SRRIP;
 * table sizing uses a counting Bloom filter estimating the live
 * metadata working set (Section 2.1.3).
 *
 * Also provides the "simplified temporal prefetcher" configuration
 * Prophet profiles with (Section 3.2): fixed 1 MB table, degree 1,
 * no insertion policy.
 */

#ifndef PROPHET_PREFETCH_TRIAGE_HH
#define PROPHET_PREFETCH_TRIAGE_HH

#include <memory>
#include <string>

#include "prefetch/bloom.hh"
#include "prefetch/markov_table.hh"
#include "prefetch/prefetcher.hh"
#include "prefetch/training_unit.hh"

namespace prophet::pf
{

/** Triage configuration. */
struct TriageConfig
{
    /** Prefetch degree (1 for classic Triage, 4 for "Triage4"). */
    unsigned degree = 1;

    /** Metadata replacement: "hawkeye", "srrip", or "lru". */
    std::string metaReplacement = "hawkeye";

    /** Markov-table sets (= LLC sets). */
    unsigned numSets = 2048;

    /** Maximum LLC ways the table may borrow (8 = 1 MB). */
    unsigned maxWays = 8;

    /** Enable Bloom-filter-driven resizing. */
    bool bloomResizing = true;

    /** L2 accesses between resize decisions. */
    std::uint64_t resizeWindow = 1 << 18;
};

/**
 * The Triage temporal prefetcher.
 */
class TriagePrefetcher : public TemporalPrefetcher
{
  public:
    explicit TriagePrefetcher(const TriageConfig &config);

    void observe(PC pc, Addr line_addr, bool l2_hit, Cycle cycle,
                 std::vector<PrefetchRequest> &out) override;

    unsigned metadataWays() const override
    {
        return table.allocatedWays();
    }

    void
    collectStats(MarkovStats &markov, OffchipMetadataStats &)
        const override
    {
        markov = table.stats();
    }

    void
    prefetchSets(Addr line_addr) const override
    {
        table.prefetchSets(line_addr);
    }

    std::string name() const override { return "triage"; }

    /** Direct access for tests and the storage model. */
    MarkovTable &markovTable() { return table; }
    const MarkovTable &markovTable() const { return table; }
    const BloomFilter &bloom() const { return bloomFilter; }

  private:
    TriageConfig cfg;
    MarkovTable table;
    TrainingUnit trainer;
    BloomFilter bloomFilter;
    std::uint64_t accessesSinceResize = 0;

    void maybeResize();
};

} // namespace prophet::pf

#endif // PROPHET_PREFETCH_TRIAGE_HH
