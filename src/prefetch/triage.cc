#include "prefetch/triage.hh"

#include <algorithm>

#include "common/intmath.hh"
#include "common/log.hh"
#include "mem/hawkeye.hh"

namespace prophet::pf
{

namespace
{

std::unique_ptr<mem::ReplacementPolicy>
makeMetaPolicy(const std::string &name)
{
    if (name == "hawkeye")
        return std::make_unique<mem::HawkeyePolicy>();
    return mem::makePolicy(name);
}

} // anonymous namespace

TriagePrefetcher::TriagePrefetcher(const TriageConfig &config)
    : cfg(config),
      table(config.numSets, config.maxWays,
            makeMetaPolicy(config.metaReplacement)),
      bloomFilter(1 << 18, 4)
{
    prophet_assert(cfg.degree >= 1);
}

void
TriagePrefetcher::observe(PC pc, Addr line_addr, bool l2_hit,
                          Cycle cycle, std::vector<PrefetchRequest> &out)
{
    (void)l2_hit;
    (void)cycle;

    // Training: link the PC's previous access to this one. Triage has
    // no insertion policy — every correlation is inserted.
    if (auto prev = trainer.swap(pc, line_addr)) {
        if (*prev != line_addr) {
            if (cfg.bloomResizing && !bloomFilter.mayContain(*prev))
                bloomFilter.insert(*prev);
            table.insert(*prev, line_addr, 0);
        }
    }

    // Prediction: follow the Markov chain `degree` steps.
    Addr cur = line_addr;
    for (unsigned d = 0; d < cfg.degree; ++d) {
        auto target = table.lookup(cur);
        if (!target)
            break;
        out.push_back(PrefetchRequest{*target, pc});
        cur = *target;
    }

    if (cfg.bloomResizing) {
        ++accessesSinceResize;
        maybeResize();
    }
}

void
TriagePrefetcher::maybeResize()
{
    if (accessesSinceResize < cfg.resizeWindow)
        return;
    accessesSinceResize = 0;

    // Size the table to hold the estimated live metadata working set.
    double estimate = bloomFilter.estimateCardinality();
    std::uint64_t entries_per_way =
        static_cast<std::uint64_t>(cfg.numSets) * kEntriesPerLine;
    auto ways = static_cast<unsigned>(
        divCeil(static_cast<std::uint64_t>(estimate), entries_per_way));
    ways = std::min(ways, cfg.maxWays);
    table.setAllocatedWays(ways);
    bloomFilter.clear();
}

} // namespace prophet::pf
