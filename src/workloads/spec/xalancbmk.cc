/**
 * @file
 * xalancbmk-like workload. XSLT processing walks DOM trees whose
 * node layout is pointer-linked and re-traversed per template match:
 * medium-sized chase patterns with some multi-successor nodes
 * (elements visited via different axes) and a computed-kernel
 * indirect component (string-table lookups).
 */

#include "workloads/spec/spec.hh"

#include "workloads/spec/spec_common.hh"

namespace prophet::workloads::spec
{

trace::GeneratorPtr
makeXalancbmk(std::size_t records)
{
    constexpr unsigned kId = 4;
    auto g = std::make_unique<CompositeGenerator>("xalancbmk", records,
                                                  0x78616cULL);
    // DOM traversal: the dominant chase.
    g->addStream(std::make_unique<ChaseStream>(
                     slotParams(kId, 0, 4), 40960, 0.05),
                 0.30);
    // Axis-dependent revisits: branching chase.
    g->addStream(std::make_unique<BranchingChaseStream>(
                     slotParams(kId, 1, 4), 10240, 0.15),
                 0.14);
    // String-table lookups: computed kernel, RPG2-opaque.
    g->addStream(std::make_unique<IndirectStream>(
                     slotParams(kId, 2, 4), 16384, 16384,
                     /*stride_kernel=*/false),
                 0.15);
    // Output buffer stride writes modelled as accesses.
    g->addStream(std::make_unique<StrideStream>(
                     slotParams(kId, 3, 3), 12288),
                 0.10);
    // Allocator churn.
    g->addStream(std::make_unique<NoiseStream>(
                     slotParams(kId, 4, 5), 98304),
                 0.31);
    return g;
}

} // namespace prophet::workloads::spec
