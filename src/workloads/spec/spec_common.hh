/**
 * @file
 * Shared plumbing for the SPEC-like workload factories: stable
 * PC/region assignment per stream slot so that the same logical
 * stream keeps the same PC across workload inputs (the property
 * Prophet's learning step depends on — Figure 7's Load A/E cases
 * require PC stability across inputs).
 */

#ifndef PROPHET_WORKLOADS_SPEC_SPEC_COMMON_HH
#define PROPHET_WORKLOADS_SPEC_SPEC_COMMON_HH

#include "workloads/pattern_lib.hh"

namespace prophet::workloads::spec
{

/**
 * StreamParams for logical stream slot @p slot of the workload with
 * id @p workload_id. PCs and regions are disjoint across slots and
 * workloads, and deterministic.
 */
inline StreamParams
slotParams(unsigned workload_id, unsigned slot,
           std::uint16_t inst_gap = 4)
{
    StreamParams p;
    p.pc = 0x400000 + static_cast<PC>(workload_id) * 0x10000
        + static_cast<PC>(slot) * 0x40;
    p.regionBase = (Addr{1} << 36)
        + (static_cast<Addr>(workload_id) << 30) * 16
        + (static_cast<Addr>(slot) << 28);
    // SPEC workloads retire substantial compute between irregular
    // accesses; the scale factor keeps simulated IPC and speedups in
    // the range the paper's gem5 runs report.
    p.instGap = static_cast<std::uint16_t>(inst_gap * 10);
    p.seed = 0x5eed0000ULL + workload_id * 131 + slot;
    return p;
}

} // namespace prophet::workloads::spec

#endif // PROPHET_WORKLOADS_SPEC_SPEC_COMMON_HH
