/**
 * @file
 * astar-like workload, inputs "biglakes" and "rivers". Pathfinding
 * mixes an open-list chase with map-tile scans; the paper notes
 * astar is "sensitive to cache pollution and memory bandwidth
 * wastage" (Section 5.6) — the stride component keeps the DRAM
 * channel busy, so useless prefetched lines cost real bandwidth and
 * over-aggressive multi-path prefetching backfires. The two inputs
 * share the solver PCs but differ in map working-set size and chase
 * stability (Figure 14's learning pair).
 */

#include "workloads/spec/spec.hh"

#include "common/log.hh"
#include "workloads/spec/spec_common.hh"

namespace prophet::workloads::spec
{

trace::GeneratorPtr
makeAstar(const std::string &input, std::size_t records)
{
    constexpr unsigned kId = 5;
    bool biglakes = input == "biglakes";
    if (!biglakes && input != "rivers")
        prophet_fatal("astar input must be biglakes or rivers");

    auto g = std::make_unique<CompositeGenerator>(
        "astar_" + input, records, 0x617374ULL + (biglakes ? 0 : 1));

    // Open-list chase: same PC under both inputs, different working
    // set and stability (the Load E case of Figure 7).
    g->addStream(std::make_unique<ChaseStream>(
                     slotParams(kId, 0, 4),
                     biglakes ? 20480 : 28672,
                     biglakes ? 0.12 : 0.18),
                 0.28);
    // Map-tile scan: bandwidth pressure.
    g->addStream(std::make_unique<StrideStream>(
                     slotParams(kId, 1, 3),
                     biglakes ? 65536 : 81920),
                 0.30);
    // Neighbour expansion: branching revisits.
    g->addStream(std::make_unique<BranchingChaseStream>(
                     slotParams(kId, 2, 4), 12288, 0.20),
                 0.10);
    // Heuristic-table probes: input-exclusive PCs (Loads B/C).
    unsigned exclusive_slot = biglakes ? 3 : 4;
    g->addStream(std::make_unique<ChaseStream>(
                     slotParams(kId, exclusive_slot, 4), 8192, 0.06),
                 0.07);
    // Tie-breaking randomness.
    g->addStream(std::make_unique<NoiseStream>(
                     slotParams(kId, 5, 5), 65536),
                 0.17);
    // Nearly-dead reopened-node scan: borderline accuracy whose
    // metadata pollutes the table and wastes bandwidth — keeping it
    // (EL_ACC = 0.05) costs more than it covers (Figure 16(a)).
    g->addStream(std::make_unique<ChaseStream>(
                     slotParams(kId, 6, 4), 32768, 0.88),
                 0.08);
    return g;
}

} // namespace prophet::workloads::spec
