/**
 * @file
 * sphinx3-like workload. Speech decoding touches a compact set of
 * language-model structures: the temporal working set is well under
 * the 1 MB metadata maximum ("sphinx3, which requires less than 1 MB
 * of metadata table", Section 5.9), so Prophet's profile-guided
 * resizing shrinks the table and returns LLC ways to demand data —
 * the resizing feature's showcase. The rest of the mix is
 * stride-friendly acoustic scoring.
 */

#include "workloads/spec/spec.hh"

#include "workloads/spec/spec_common.hh"

namespace prophet::workloads::spec
{

trace::GeneratorPtr
makeSphinx3(std::size_t records)
{
    constexpr unsigned kId = 3;
    auto g = std::make_unique<CompositeGenerator>("sphinx3", records,
                                                  0x737068ULL);
    // Small, highly repetitive lexicon chase (< one table way).
    g->addStream(std::make_unique<ChaseStream>(
                     slotParams(kId, 0, 4), 6144, 0.01),
                 0.45);
    // Acoustic feature scan: dense strides, L1 prefetcher fodder,
    // and LLC capacity pressure that freed ways relieve.
    g->addStream(std::make_unique<StrideStream>(
                     slotParams(kId, 1, 3), 49152),
                 0.35);
    // HMM state walk: small branching chase.
    g->addStream(std::make_unique<BranchingChaseStream>(
                     slotParams(kId, 2, 4), 4096, 0.10),
                 0.15);
    // Scatter lookups into the senone table.
    g->addStream(std::make_unique<NoiseStream>(
                     slotParams(kId, 3, 5), 32768),
                 0.05);
    return g;
}

} // namespace prophet::workloads::spec
