/**
 * @file
 * omnetpp-like workload. The discrete-event simulator's future-event
 * set produces the Figure 1 access pattern: from one hot PC, bursts
 * of accesses that repeat earlier sequences (events re-enqueued on
 * stable schedules — useful metadata) interleave with bursts of
 * one-off addresses (freshly allocated messages — useless metadata),
 * with large reuse-distance variance. Short-term confidence like
 * Triangel's PatternConf collapses during the useless bursts and
 * then wrongly rejects the useful ones; profile-level accuracy stays
 * mid-range, so Prophet keeps inserting. This is the workload the
 * paper calls out as where "Triangel shows limited effectiveness".
 */

#include "workloads/spec/spec.hh"

#include "workloads/spec/spec_common.hh"

namespace prophet::workloads::spec
{

trace::GeneratorPtr
makeOmnetpp(std::size_t records)
{
    constexpr unsigned kId = 2;
    auto g = std::make_unique<CompositeGenerator>("omnetpp", records,
                                                  0x6f6d6eULL);
    // The Figure 1 pattern: the hot event-queue PC.
    g->addStream(std::make_unique<AlternatingStream>(
                     slotParams(kId, 0, 3), 24576,
                     /*useful_len=*/64, /*useless_len=*/14,
                     /*noise_lines=*/65536),
                 0.33);
    // A second event class with a longer useless tail.
    g->addStream(std::make_unique<AlternatingStream>(
                     slotParams(kId, 1, 4), 12288,
                     /*useful_len=*/32, /*useless_len=*/24,
                     /*noise_lines=*/65536),
                 0.20);
    // Module-state chase: clean temporal pattern.
    g->addStream(std::make_unique<ChaseStream>(
                     slotParams(kId, 2, 4), 16384, 0.07),
                 0.22);
    // Message-pool churn: pure pollution.
    g->addStream(std::make_unique<NoiseStream>(
                     slotParams(kId, 3, 5), 131072),
                 0.17);
    // Self-message timers: weak repetition near the EL_ACC band.
    g->addStream(std::make_unique<ChaseStream>(
                     slotParams(kId, 4, 4), 20480, 0.82),
                 0.08);
    return g;
}

} // namespace prophet::workloads::spec
