/**
 * @file
 * Factories for the SPEC-CPU-like synthetic workloads used across
 * the paper's figures. Each factory returns a CompositeGenerator
 * whose streams reproduce the benchmark's documented memory
 * behaviour (see per-file comments); gcc/astar/soplex take an input
 * label because Prophet's learning evaluation (Figures 13/14)
 * exercises multiple inputs per application.
 */

#ifndef PROPHET_WORKLOADS_SPEC_SPEC_HH
#define PROPHET_WORKLOADS_SPEC_SPEC_HH

#include <cstddef>
#include <string>

#include "trace/generator.hh"

namespace prophet::workloads::spec
{

/** Default trace length for SPEC-like workloads. */
constexpr std::size_t kDefaultRecords = 1'200'000;

/** mcf: repeated pointer chasing over arc lists. */
trace::GeneratorPtr makeMcf(std::size_t records = kDefaultRecords);

/** omnetpp: event-queue churn with interleaved useful/useless. */
trace::GeneratorPtr makeOmnetpp(std::size_t records = kDefaultRecords);

/**
 * gcc with one of nine inputs: 166, 200, cpdecl, expr, expr2, g23,
 * s04, scilab, typeck.
 */
trace::GeneratorPtr makeGcc(const std::string &input,
                            std::size_t records = kDefaultRecords);

/** astar with input "biglakes" or "rivers". */
trace::GeneratorPtr makeAstar(const std::string &input,
                              std::size_t records = kDefaultRecords);

/** soplex with input "pds-50" or "ref". */
trace::GeneratorPtr makeSoplex(const std::string &input,
                               std::size_t records = kDefaultRecords);

/** sphinx3: small temporal working set (resizing showcase). */
trace::GeneratorPtr makeSphinx3(std::size_t records = kDefaultRecords);

/** xalancbmk: DOM-tree pointer chasing. */
trace::GeneratorPtr makeXalancbmk(std::size_t records =
                                      kDefaultRecords);

} // namespace prophet::workloads::spec

#endif // PROPHET_WORKLOADS_SPEC_SPEC_HH
