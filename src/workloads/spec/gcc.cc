/**
 * @file
 * gcc-like workload with nine inputs (166, 200, cpdecl, expr, expr2,
 * g23, s04, scilab, typeck) — the learning evaluation's main subject
 * (Figure 13). The stream structure realizes Figure 7's three cases:
 *
 *  - Load A: three compiler-core chase streams with identical PCs
 *    and behaviour under every input (shared code paths).
 *  - Loads B/C: an input-family-exclusive stream; inputs in the same
 *    family (e.g. gcc_200 and gcc_expr, which the paper observes
 *    "share similar memory access patterns") execute the same
 *    exclusive PCs, other families execute disjoint ones.
 *  - Load E: a context-sensitive stream with the *same* PC under all
 *    inputs but input-dependent pattern stability, so hints learned
 *    from one input can be wrong for another until Eq. 4's merge
 *    converges.
 */

#include "workloads/spec/spec.hh"

#include "common/log.hh"
#include "workloads/spec/spec_common.hh"

namespace prophet::workloads::spec
{

namespace
{

/** Per-input shape: exclusive-family slot + Load E stability. */
struct GccInput
{
    const char *name;
    unsigned familySlot;     ///< exclusive-stream slot (Loads B/C)
    std::size_t familyNodes; ///< exclusive working set (lines)
    double eMutation;        ///< Load E per-round mutation rate
};

constexpr GccInput kInputs[] = {
    {"166",    10, 12288, 0.02},
    {"200",    11, 16384, 0.40},
    {"expr",   11, 16384, 0.40},
    {"expr2",  12, 10240, 0.04},
    {"cpdecl", 13, 14336, 0.45},
    {"typeck", 13, 14336, 0.45},
    {"g23",    14, 20480, 0.10},
    {"scilab", 14, 20480, 0.12},
    {"s04",    15,  8192, 0.30},
};

} // anonymous namespace

trace::GeneratorPtr
makeGcc(const std::string &input, std::size_t records)
{
    constexpr unsigned kId = 7;
    const GccInput *in = nullptr;
    for (const auto &cand : kInputs)
        if (input == cand.name)
            in = &cand;
    if (!in)
        prophet_fatal("unknown gcc input");

    auto g = std::make_unique<CompositeGenerator>(
        "gcc_" + input, records,
        0x676363ULL + in->familySlot * 7 + input.size());

    // Load A: shared compiler-core paths (RTL walk, symbol table,
    // df-chain scan) at three distinct accuracy levels.
    g->addStream(std::make_unique<ChaseStream>(
                     slotParams(kId, 0, 4), 16384, 0.08),
                 0.09);
    g->addStream(std::make_unique<ChaseStream>(
                     slotParams(kId, 1, 4), 12288, 0.15),
                 0.09);
    g->addStream(std::make_unique<ChaseStream>(
                     slotParams(kId, 2, 5), 8192, 0.45),
                 0.06);

    // Loads B/C: input-family-exclusive pass.
    g->addStream(std::make_unique<ChaseStream>(
                     slotParams(kId, in->familySlot, 4),
                     in->familyNodes, 0.06),
                 0.14);

    // Load E: same PC everywhere, input-dependent stability.
    g->addStream(std::make_unique<ChaseStream>(
                     slotParams(kId, 5, 4), 14336, in->eMutation),
                 0.16);

    // Token scan + allocator churn (pollution sensitivity).
    g->addStream(std::make_unique<StrideStream>(
                     slotParams(kId, 6, 3), 20480),
                 0.13);
    g->addStream(std::make_unique<NoiseStream>(
                     slotParams(kId, 7, 5), 98304),
                 0.33);
    return g;
}

} // namespace prophet::workloads::spec
