/**
 * @file
 * soplex-like workload, inputs "pds-50" and "ref". The simplex LP
 * solver walks sparse-matrix rows whose element order repeats across
 * pivots but alternates between column orderings — the multi-target
 * Markov pattern the Multi-path Victim Buffer targets (soplex gains
 * 13.46% from the MVB in Figure 19). Its sparse index computations
 * are RPG2-opaque (the paper sets RPG2's accuracy to 0 here: "RPG2
 * does not identify qualified prefetch kernels for mcf, omnetpp, and
 * soplex").
 */

#include "workloads/spec/spec.hh"

#include "common/log.hh"
#include "workloads/spec/spec_common.hh"

namespace prophet::workloads::spec
{

trace::GeneratorPtr
makeSoplex(const std::string &input, std::size_t records)
{
    constexpr unsigned kId = 6;
    bool pds = input == "pds-50" || input == "pds";
    if (!pds && input != "ref")
        prophet_fatal("soplex input must be pds-50 or ref");

    auto g = std::make_unique<CompositeGenerator>(
        "soplex_" + std::string(pds ? "pds-50" : "ref"), records,
        0x736f70ULL + (pds ? 0 : 1));

    // Sparse-row walk with alternating successors: MVB showcase.
    g->addStream(std::make_unique<BranchingChaseStream>(
                     slotParams(kId, 0, 4),
                     pds ? 32768 : 24576,
                     /*branch_fraction=*/0.35,
                     /*three_way_fraction=*/0.10),
                 0.33);
    // Column-index indirect walk, computed kernel.
    g->addStream(std::make_unique<IndirectStream>(
                     slotParams(kId, 1, 4), 24576, 24576,
                     /*stride_kernel=*/false),
                 0.20);
    // Dense vector sweep (pricing).
    g->addStream(std::make_unique<StrideStream>(
                     slotParams(kId, 2, 3), 24576),
                 0.15);
    // Input-exclusive basis-update chase (Loads B/C of Figure 7).
    unsigned exclusive_slot = pds ? 3 : 4;
    g->addStream(std::make_unique<ChaseStream>(
                     slotParams(kId, exclusive_slot, 4),
                     pds ? 12288 : 16384, pds ? 0.04 : 0.09),
                 0.08);
    // Pricing scatter: no temporal structure.
    g->addStream(std::make_unique<NoiseStream>(
                     slotParams(kId, 5, 5), 131072),
                 0.24);
    return g;
}

} // namespace prophet::workloads::spec
