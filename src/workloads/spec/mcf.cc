/**
 * @file
 * mcf-like workload. SPEC mcf's network-simplex solver repeatedly
 * scans arc linked lists whose traversal order is stable between
 * pricing iterations — a long-chain pointer-chasing temporal pattern
 * the paper highlights ("in mcf, the index of a prefetch kernel is
 * derived through a series of logical operations and multi-step
 * arithmetic computations", i.e. nothing RPG2 can handle). A large
 * chase working set pressures the metadata table, and a random
 * node-inspection stream pollutes it — the combination Prophet's
 * insertion filter and priority replacement exploit (+16.72% from
 * the insertion policy in Figure 19).
 */

#include "workloads/spec/spec.hh"

#include "workloads/spec/spec_common.hh"

namespace prophet::workloads::spec
{

trace::GeneratorPtr
makeMcf(std::size_t records)
{
    constexpr unsigned kId = 1;
    auto g = std::make_unique<CompositeGenerator>("mcf", records,
                                                  0x6d6366ULL);
    // Arc-list chase: dominant, highly repetitive, dependent.
    g->addStream(std::make_unique<ChaseStream>(
                     slotParams(kId, 0, 3), 98304, 0.03),
                 0.42);
    // Node-array indirect walk with a computed (non-stride) kernel.
    g->addStream(std::make_unique<IndirectStream>(
                     slotParams(kId, 1, 4), 32768, 32768,
                     /*stride_kernel=*/false),
                 0.25);
    // Pricing-candidate inspection: effectively random, no pattern.
    g->addStream(std::make_unique<NoiseStream>(
                     slotParams(kId, 2, 5), 262144),
                 0.18);
    // Bookkeeping stride over the arc flow array.
    g->addStream(std::make_unique<StrideStream>(
                     slotParams(kId, 3, 6), 16384),
                 0.05);
    // Weakly repeating candidate scan: accuracy sits in the
    // EL_ACC-sensitive band (~0.1-0.2); useful coverage at a low
    // threshold, filtered at a high one (Figure 16(a)).
    g->addStream(std::make_unique<ChaseStream>(
                     slotParams(kId, 4, 4), 24576, 0.80),
                 0.10);
    return g;
}

} // namespace prophet::workloads::spec
