/**
 * @file
 * Compressed-sparse-row graph and deterministic generators for the
 * CRONO-like workloads (Figure 15). The kernels in
 * graph_workloads.hh walk these structures and emit the access
 * traces; the graph itself is real data, so indirect targets
 * (`nodeData[col[e]]`) are genuinely data-dependent.
 */

#ifndef PROPHET_WORKLOADS_GRAPH_GRAPH_HH
#define PROPHET_WORKLOADS_GRAPH_GRAPH_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace prophet::workloads::graph
{

/** CSR graph. */
struct CsrGraph
{
    /** rowOffsets[v] .. rowOffsets[v+1] index colIndices. */
    std::vector<std::uint32_t> rowOffsets;

    /** Edge destinations. */
    std::vector<std::uint32_t> colIndices;

    /** Edge weights (SSSP). */
    std::vector<std::uint32_t> weights;

    std::uint32_t
    numVertices() const
    {
        return rowOffsets.empty()
            ? 0u
            : static_cast<std::uint32_t>(rowOffsets.size() - 1);
    }

    std::uint64_t numEdges() const { return colIndices.size(); }

    /** Degree of a vertex. */
    std::uint32_t
    degree(std::uint32_t v) const
    {
        return rowOffsets[v + 1] - rowOffsets[v];
    }
};

/**
 * Uniform random graph: each vertex gets ~avg_degree out-edges to
 * uniformly random destinations. Deterministic per seed.
 */
CsrGraph makeUniformGraph(std::uint32_t vertices, unsigned avg_degree,
                          std::uint64_t seed);

/**
 * Skewed (power-law-ish) graph: destination probability proportional
 * to a Zipf-like rank, modelling social/web graphs where hub
 * vertices concentrate reuse.
 */
CsrGraph makeSkewedGraph(std::uint32_t vertices, unsigned avg_degree,
                         std::uint64_t seed);

} // namespace prophet::workloads::graph

#endif // PROPHET_WORKLOADS_GRAPH_GRAPH_HH
