#include "workloads/graph/graph_workloads.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/log.hh"

namespace prophet::workloads::graph
{

namespace
{

/** Per-vertex data element size in bytes (dist/rank/visited). */
constexpr Addr kDataElem = 64;

/** PC slot offsets within a kernel's PC block. */
enum PcSlot : unsigned
{
    PcQueue = 0,   ///< frontier/stack/queue accesses
    PcOffsets = 1, ///< rowOffsets[v]
    PcEdges = 2,   ///< colIndices[e] (the stride prefetch kernel)
    PcData = 3,    ///< vertexData[colIndices[e]] (indirect)
    PcUpdate = 4,  ///< vertexData[v] update
    PcWeights = 5, ///< edge weights
};

} // anonymous namespace

GraphWorkload::GraphWorkload(GraphKernel kernel, std::string label_in,
                             std::uint32_t vertices,
                             unsigned avg_degree, std::size_t records,
                             std::uint64_t seed)
    : kernel(kernel), label(std::move(label_in)), budget(records),
      seed(seed)
{
    bool skewed =
        kernel == GraphKernel::PageRank || kernel == GraphKernel::Bc;
    g = skewed ? makeSkewedGraph(vertices, avg_degree, seed)
               : makeUniformGraph(vertices, avg_degree, seed);

    // Distinct PC/address blocks per kernel type.
    auto kid = static_cast<unsigned>(kernel);
    pcBase = 0x800000 + static_cast<PC>(kid) * 0x1000;
    memBase = (Addr{1} << 40) + (static_cast<Addr>(kid) << 36);

    // RPG2 resolver: the colIndices scan is a stride kernel; the
    // indirect access it feeds is vertexData[colIndices[e]]. This is
    // the address computation RPG2's inserted code performs.
    resolverPtr = std::make_unique<PcResolver>();
    resolverPtr->registerKernel(
        edgeScanPc(),
        [this](Addr kernel_addr,
               std::int64_t distance) -> std::optional<Addr> {
            Addr base = edgeAddr(0);
            if (kernel_addr < base)
                return std::nullopt;
            std::uint64_t e = (kernel_addr - base) / 4;
            std::uint64_t target_e =
                e + static_cast<std::uint64_t>(distance);
            if (target_e >= g.numEdges())
                return std::nullopt;
            return dataAddr(g.colIndices[target_e]);
        });
}

const trace::IndirectResolver *
GraphWorkload::resolver() const
{
    return resolverPtr.get();
}

Addr
GraphWorkload::offAddr(std::uint32_t v) const
{
    return memBase + static_cast<Addr>(v) * 4;
}

Addr
GraphWorkload::edgeAddr(std::uint64_t e) const
{
    Addr base = memBase + (Addr{1} << 30);
    return base + e * 4;
}

Addr
GraphWorkload::dataAddr(std::uint32_t v, unsigned array) const
{
    Addr base = memBase + (Addr{2} << 30)
        + (static_cast<Addr>(array) << 28);
    return base + static_cast<Addr>(v) * kDataElem;
}

Addr
GraphWorkload::queueAddr(std::uint64_t slot) const
{
    Addr base = memBase + (Addr{3} << 30);
    return base + (slot % 65536) * 4;
}

trace::Trace
GraphWorkload::generate()
{
    trace::Trace t;
    t.reserve(budget + 64);
    while (t.size() < budget) {
        switch (kernel) {
          case GraphKernel::Bfs:
            emitBfs(t);
            break;
          case GraphKernel::Dfs:
            emitDfs(t);
            break;
          case GraphKernel::Sssp:
            emitSssp(t);
            break;
          case GraphKernel::PageRank:
            emitPageRank(t);
            break;
          case GraphKernel::Bc:
            emitBc(t);
            break;
        }
    }
    return t;
}

void
GraphWorkload::emitBfs(trace::Trace &t)
{
    // One full BFS; callers re-invoke from rotating roots until the
    // budget is filled, so traversals repeat and temporal patterns
    // form. Roots rotate deterministically.
    std::uint32_t &root_counter = rootCounter;
    std::uint32_t v_count = g.numVertices();
    std::uint32_t root = (root_counter++ % 4) * (v_count / 7) + 1;
    root %= v_count;

    std::vector<bool> visited(v_count, false);
    std::vector<std::uint32_t> queue;
    queue.reserve(v_count);
    queue.push_back(root);
    visited[root] = true;
    std::size_t head = 0;

    while (head < queue.size() && t.size() < budget) {
        std::uint32_t v = queue[head];
        t.append(pcBase + PcQueue * 0x40, queueAddr(head), 4);
        ++head;
        t.append(pcBase + PcOffsets * 0x40, offAddr(v), 5);
        for (std::uint32_t e = g.rowOffsets[v];
             e < g.rowOffsets[v + 1] && t.size() < budget; ++e) {
            t.append(pcBase + PcEdges * 0x40, edgeAddr(e), 5);
            std::uint32_t n = g.colIndices[e];
            t.append(pcBase + PcData * 0x40, dataAddr(n), 9,
                     /*depends=*/true);
            if (!visited[n]) {
                visited[n] = true;
                queue.push_back(n);
                t.append(pcBase + PcQueue * 0x40,
                         queueAddr(queue.size() - 1), 1, false,
                         /*write=*/true);
            }
        }
    }
}

void
GraphWorkload::emitDfs(trace::Trace &t)
{
    std::uint32_t &root_counter = rootCounter;
    std::uint32_t v_count = g.numVertices();
    std::uint32_t root = (root_counter++ % 4) * (v_count / 5) + 3;
    root %= v_count;

    std::vector<bool> visited(v_count, false);
    std::vector<std::uint32_t> stack;
    stack.push_back(root);

    while (!stack.empty() && t.size() < budget) {
        std::uint32_t v = stack.back();
        stack.pop_back();
        t.append(pcBase + PcQueue * 0x40, queueAddr(stack.size()), 4);
        if (visited[v])
            continue;
        visited[v] = true;
        t.append(pcBase + PcOffsets * 0x40, offAddr(v), 5);
        t.append(pcBase + PcUpdate * 0x40, dataAddr(v), 6, false,
                 /*write=*/true);
        for (std::uint32_t e = g.rowOffsets[v];
             e < g.rowOffsets[v + 1] && t.size() < budget; ++e) {
            t.append(pcBase + PcEdges * 0x40, edgeAddr(e), 5);
            std::uint32_t n = g.colIndices[e];
            t.append(pcBase + PcData * 0x40, dataAddr(n), 9,
                     /*depends=*/true);
            if (!visited[n])
                stack.push_back(n);
        }
    }
}

void
GraphWorkload::emitSssp(trace::Trace &t)
{
    // One Bellman-Ford relaxation round over every edge; rounds
    // repeat identically — dense temporal and stride structure.
    std::uint32_t v_count = g.numVertices();
    for (std::uint32_t v = 0; v < v_count && t.size() < budget; ++v) {
        t.append(pcBase + PcOffsets * 0x40, offAddr(v), 5);
        t.append(pcBase + PcUpdate * 0x40, dataAddr(v), 4);
        for (std::uint32_t e = g.rowOffsets[v];
             e < g.rowOffsets[v + 1] && t.size() < budget; ++e) {
            t.append(pcBase + PcEdges * 0x40, edgeAddr(e), 5);
            std::uint32_t n = g.colIndices[e];
            t.append(pcBase + PcData * 0x40, dataAddr(n), 9,
                     /*depends=*/true);
            t.append(pcBase + PcWeights * 0x40,
                     memBase + (Addr{5} << 30) + e * 4, 3);
        }
    }
}

void
GraphWorkload::emitPageRank(trace::Trace &t)
{
    // One iteration; the rank arrays double-buffer, so the indirect
    // targets alternate between two regions across iterations —
    // multi-target Markov entries (the MVB's pattern).

    unsigned src = iteration % 2;
    unsigned dst = 1 - src;
    ++iteration;

    std::uint32_t v_count = g.numVertices();
    for (std::uint32_t v = 0; v < v_count && t.size() < budget; ++v) {
        t.append(pcBase + PcOffsets * 0x40, offAddr(v), 5);
        for (std::uint32_t e = g.rowOffsets[v];
             e < g.rowOffsets[v + 1] && t.size() < budget; ++e) {
            t.append(pcBase + PcEdges * 0x40, edgeAddr(e), 5);
            std::uint32_t n = g.colIndices[e];
            t.append(pcBase + PcData * 0x40, dataAddr(n, src), 2,
                     /*depends=*/true);
        }
        t.append(pcBase + PcUpdate * 0x40, dataAddr(v, dst), 6, false,
                 /*write=*/true);
    }
}

void
GraphWorkload::emitBc(trace::Trace &t)
{
    // Brandes-style: forward BFS recording the visit order, then a
    // reverse accumulation pass over that order.
    std::uint32_t &root_counter = rootCounter;
    std::uint32_t v_count = g.numVertices();
    std::uint32_t root = (root_counter++ % 6) * (v_count / 11) + 5;
    root %= v_count;

    std::vector<bool> visited(v_count, false);
    std::vector<std::uint32_t> order;
    order.reserve(v_count);
    order.push_back(root);
    visited[root] = true;
    std::size_t head = 0;

    while (head < order.size() && t.size() < budget) {
        std::uint32_t v = order[head];
        t.append(pcBase + PcQueue * 0x40, queueAddr(head), 4);
        ++head;
        t.append(pcBase + PcOffsets * 0x40, offAddr(v), 5);
        for (std::uint32_t e = g.rowOffsets[v];
             e < g.rowOffsets[v + 1] && t.size() < budget; ++e) {
            t.append(pcBase + PcEdges * 0x40, edgeAddr(e), 5);
            std::uint32_t n = g.colIndices[e];
            t.append(pcBase + PcData * 0x40, dataAddr(n), 9,
                     /*depends=*/true);
            if (!visited[n]) {
                visited[n] = true;
                order.push_back(n);
            }
        }
    }

    // Reverse accumulation: dependency accumulation δ over the order.
    for (std::size_t i = order.size(); i-- > 0 && t.size() < budget;) {
        std::uint32_t v = order[i];
        t.append(pcBase + PcUpdate * 0x40, dataAddr(v, 1), 6);
        t.append(pcBase + PcOffsets * 0x40, offAddr(v), 3);
    }
}

trace::GeneratorPtr
makeGraphWorkload(const std::string &label, std::size_t records)
{
    // Parse "<kernel>_<vertices>_<degree>".
    auto first = label.find('_');
    auto second = label.find('_', first + 1);
    if (first == std::string::npos || second == std::string::npos)
        prophet_fatal("bad graph workload label");
    std::string kname = label.substr(0, first);
    auto vertices = static_cast<std::uint32_t>(
        std::strtoul(label.substr(first + 1,
                                  second - first - 1).c_str(),
                     nullptr, 10));
    auto degree = static_cast<unsigned>(
        std::strtoul(label.substr(second + 1).c_str(), nullptr, 10));

    GraphKernel kernel;
    if (kname == "bfs")
        kernel = GraphKernel::Bfs;
    else if (kname == "dfs")
        kernel = GraphKernel::Dfs;
    else if (kname == "sssp")
        kernel = GraphKernel::Sssp;
    else if (kname == "pagerank")
        kernel = GraphKernel::PageRank;
    else if (kname == "bc")
        kernel = GraphKernel::Bc;
    else
        prophet_fatal("unknown graph kernel");

    // Offline scaling (header comment): cap vertices and degree so
    // several traversal rounds fit the trace budget (temporal
    // patterns require re-traversal) while the data working set
    // still exceeds the LLC.
    std::uint64_t scaled_v = std::min<std::uint64_t>(vertices, 65536);
    unsigned scaled_d = std::min(degree, 5u);
    if (scaled_d == 0)
        scaled_d = 8;
    std::uint64_t seed = 0x6772617068ULL ^ (vertices * 2654435761ULL)
        ^ (degree * 40503ULL);

    return std::make_unique<GraphWorkload>(
        kernel, label, static_cast<std::uint32_t>(scaled_v), scaled_d,
        records, seed);
}

bool
isKnownGraphLabel(const std::string &label)
{
    auto first = label.find('_');
    auto second = label.find('_', first + 1);
    if (first == std::string::npos || second == std::string::npos
        || second + 1 >= label.size() || second == first + 1)
        return false;

    std::string kname = label.substr(0, first);
    if (kname != "bfs" && kname != "dfs" && kname != "sssp"
        && kname != "pagerank" && kname != "bc")
        return false;

    auto numeric = [&](std::size_t from, std::size_t to) {
        for (std::size_t i = from; i < to; ++i)
            if (label[i] < '0' || label[i] > '9')
                return false;
        return true;
    };
    if (!numeric(first + 1, second)
        || !numeric(second + 1, label.size()))
        return false;

    // The graph builders assert vertices >= 2, and the factory casts
    // through uint32 (so larger values would wrap). Degree needs no
    // bound: the factory clamps it to [1, 5] (0 maps to 8).
    errno = 0;
    unsigned long long vertices = std::strtoull(
        label.c_str() + first + 1, nullptr, 10);
    return errno == 0 && vertices >= 2 && vertices <= 0xffffffffull;
}

} // namespace prophet::workloads::graph
