/**
 * @file
 * CRONO-like graph kernels (Figure 15): BFS, DFS, SSSP
 * (Bellman-Ford), PageRank, and betweenness centrality over CSR
 * graphs. Each kernel genuinely executes over the graph and emits
 * its memory accesses:
 *
 *  - frontier/queue/stack accesses (dense),
 *  - rowOffsets[v] lookups,
 *  - colIndices[e] scans — *stride prefetch kernels*: an
 *    IndirectResolver is exposed for the data accesses they index,
 *    which is exactly the structure RPG2 supports ("CRONO features
 *    more prefetch kernels with stride patterns, aligning with
 *    RPG2's strengths"),
 *  - vertexData[colIndices[e]] indirect accesses (data-dependent).
 *
 * Repeated traversals (multiple roots / relaxation rounds /
 * iterations) produce the temporal patterns hardware prefetchers
 * learn, so Prophet and Triangel compete with RPG2 on its home turf.
 *
 * Scaling note: paper inputs like dfs_800000_800 exceed an offline
 * simulation budget; vertex counts are capped at 65,536 and average
 * degrees at 5 so several traversal rounds fit one trace (temporal
 * prefetchers need re-traversal to train) while the 64 B/vertex data
 * array still exceeds the LLC. The
 * original input name is preserved as the workload label.
 */

#ifndef PROPHET_WORKLOADS_GRAPH_GRAPH_WORKLOADS_HH
#define PROPHET_WORKLOADS_GRAPH_GRAPH_WORKLOADS_HH

#include <cstddef>
#include <memory>
#include <string>

#include "trace/generator.hh"
#include "workloads/graph/graph.hh"
#include "workloads/pattern_lib.hh"

namespace prophet::workloads::graph
{

/** Which kernel a GraphWorkload runs. */
enum class GraphKernel { Bfs, Dfs, Sssp, PageRank, Bc };

/** Default trace length for graph workloads. */
constexpr std::size_t kDefaultGraphRecords = 3'000'000;

/**
 * A graph-analytics workload: one kernel over one generated graph.
 */
class GraphWorkload : public trace::TraceGenerator
{
  public:
    /**
     * @param kernel Kernel to run.
     * @param label Workload name (paper input label, e.g.
     *        "bfs_100000_16").
     * @param vertices Vertex count (after scaling).
     * @param avg_degree Average out-degree (after scaling).
     * @param records Trace-length budget.
     * @param seed Graph/workload seed.
     */
    GraphWorkload(GraphKernel kernel, std::string label,
                  std::uint32_t vertices, unsigned avg_degree,
                  std::size_t records, std::uint64_t seed);

    std::string name() const override { return label; }
    trace::Trace generate() override;
    const trace::IndirectResolver *resolver() const override;

    /** The kernel's colIndices-scan PC (the RPG2 prefetch kernel). */
    PC edgeScanPc() const { return pcBase + 2 * 0x40; }

  private:
    GraphKernel kernel;
    std::string label;
    std::size_t budget;
    std::uint64_t seed;
    CsrGraph g;
    PC pcBase;
    Addr memBase;
    std::unique_ptr<PcResolver> resolverPtr;

    /** Traversal-restart state (deterministic per instance). */
    std::uint32_t rootCounter = 0;
    unsigned iteration = 0;

    // Memory map of the kernel's data structures.
    Addr offAddr(std::uint32_t v) const;
    Addr edgeAddr(std::uint64_t e) const;
    Addr dataAddr(std::uint32_t v, unsigned array = 0) const;
    Addr queueAddr(std::uint64_t slot) const;

    void emitBfs(trace::Trace &t);
    void emitDfs(trace::Trace &t);
    void emitSssp(trace::Trace &t);
    void emitPageRank(trace::Trace &t);
    void emitBc(trace::Trace &t);
};

/**
 * Factory from a paper input label like "bfs_100000_16",
 * "pagerank_100000_100", "bc_40000_10". Unknown labels abort.
 */
trace::GeneratorPtr makeGraphWorkload(
    const std::string &label,
    std::size_t records = kDefaultGraphRecords);

/**
 * Non-aborting companion of makeGraphWorkload: true when @p label
 * parses as "<kernel>_<vertices>_<degree>" with a known kernel and
 * bounds the generators accept (vertices in [2, 2^32-1]; any
 * numeric degree — the factory clamps it). Front ends validate with
 * this so a bad label is a recoverable error, and the bounds live
 * next to the factory they guard.
 */
bool isKnownGraphLabel(const std::string &label);

} // namespace prophet::workloads::graph

#endif // PROPHET_WORKLOADS_GRAPH_GRAPH_WORKLOADS_HH
