#include "workloads/graph/graph.hh"

#include <cmath>

#include "common/log.hh"

namespace prophet::workloads::graph
{

CsrGraph
makeUniformGraph(std::uint32_t vertices, unsigned avg_degree,
                 std::uint64_t seed)
{
    prophet_assert(vertices >= 2 && avg_degree >= 1);
    Rng rng(seed);
    CsrGraph g;
    g.rowOffsets.resize(vertices + 1);
    g.rowOffsets[0] = 0;

    // Degrees vary between avg/2 and 3*avg/2 for some irregularity.
    std::vector<std::uint32_t> degrees(vertices);
    for (std::uint32_t v = 0; v < vertices; ++v) {
        unsigned lo = std::max(1u, avg_degree / 2);
        degrees[v] = static_cast<std::uint32_t>(
            rng.range(lo, avg_degree + avg_degree / 2));
        g.rowOffsets[v + 1] = g.rowOffsets[v] + degrees[v];
    }
    g.colIndices.resize(g.rowOffsets[vertices]);
    g.weights.resize(g.colIndices.size());
    for (auto &c : g.colIndices)
        c = static_cast<std::uint32_t>(rng.below(vertices));
    for (auto &w : g.weights)
        w = static_cast<std::uint32_t>(rng.range(1, 64));
    return g;
}

CsrGraph
makeSkewedGraph(std::uint32_t vertices, unsigned avg_degree,
                std::uint64_t seed)
{
    prophet_assert(vertices >= 2 && avg_degree >= 1);
    Rng rng(seed);
    CsrGraph g;
    g.rowOffsets.resize(vertices + 1);
    g.rowOffsets[0] = 0;
    for (std::uint32_t v = 0; v < vertices; ++v) {
        unsigned lo = std::max(1u, avg_degree / 2);
        auto deg = static_cast<std::uint32_t>(
            rng.range(lo, avg_degree + avg_degree / 2));
        g.rowOffsets[v + 1] = g.rowOffsets[v] + deg;
    }
    g.colIndices.resize(g.rowOffsets[vertices]);
    g.weights.resize(g.colIndices.size());

    // Zipf-ish destinations via inverse-power transform of a uniform
    // draw: rank = floor(V * u^2) concentrates edges on low ranks.
    for (auto &c : g.colIndices) {
        double u = rng.uniform();
        c = static_cast<std::uint32_t>(
            static_cast<double>(vertices) * u * u);
        if (c >= vertices)
            c = vertices - 1;
    }
    for (auto &w : g.weights)
        w = static_cast<std::uint32_t>(rng.range(1, 64));
    return g;
}

} // namespace prophet::workloads::graph
