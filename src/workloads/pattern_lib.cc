#include "workloads/pattern_lib.hh"

#include "common/log.hh"

namespace prophet::workloads
{

namespace
{

/** Build a single-cycle successor permutation over n nodes. */
std::vector<std::uint32_t>
buildRing(std::size_t n, Rng &rng, std::vector<std::uint32_t> *order_out)
{
    std::vector<std::uint32_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = static_cast<std::uint32_t>(i);
    rng.shuffle(order);
    std::vector<std::uint32_t> next(n);
    for (std::size_t i = 0; i < n; ++i)
        next[order[i]] = order[(i + 1) % n];
    if (order_out)
        *order_out = std::move(order);
    return next;
}

} // anonymous namespace

// --------------------------------------------------------- ChaseStream

ChaseStream::ChaseStream(const StreamParams &params, std::size_t nodes,
                         double mutation_rate)
    : prm(params), mutationRate(mutation_rate), rng(params.seed)
{
    prophet_assert(nodes >= 2);
    next = buildRing(nodes, rng, nullptr);
    pos = 0;
}

void
ChaseStream::emit(trace::Trace &t)
{
    Addr addr = prm.regionBase
        + static_cast<Addr>(pos) * kLineSize;
    t.append(prm.pc, addr, prm.instGap, /*depends=*/true);
    pos = next[pos];
    ++steps;

    // After each full traversal, re-randomize a fraction of the
    // successor links: swapping the successors of two nodes keeps
    // the structure traversable while perturbing the pattern.
    if (mutationRate > 0.0 && steps % next.size() == 0) {
        auto swaps = static_cast<std::size_t>(
            mutationRate * static_cast<double>(next.size()) / 2.0);
        for (std::size_t s = 0; s < swaps; ++s) {
            auto a = static_cast<std::size_t>(rng.below(next.size()));
            auto b = static_cast<std::size_t>(rng.below(next.size()));
            std::swap(next[a], next[b]);
        }
    }
}

// --------------------------------------------------- AlternatingStream

AlternatingStream::AlternatingStream(const StreamParams &params,
                                     std::size_t nodes,
                                     unsigned useful_len,
                                     unsigned useless_len,
                                     std::size_t noise_lines)
    : prm(params), usefulLen(useful_len), uselessLen(useless_len),
      noiseLines(noise_lines), rng(params.seed)
{
    prophet_assert(nodes >= 2 && useful_len >= 1 && useless_len >= 1);
    next = buildRing(nodes, rng, nullptr);
}

void
AlternatingStream::emit(trace::Trace &t)
{
    if (inUseful) {
        Addr addr = prm.regionBase
            + static_cast<Addr>(pos) * kLineSize;
        t.append(prm.pc, addr, prm.instGap, /*depends=*/true);
        pos = next[pos]; // the ring position persists across bursts
        if (++phasePos >= usefulLen) {
            phasePos = 0;
            inUseful = false;
        }
    } else {
        // Useless burst: fresh random lines from a disjoint region;
        // no correlation ever repeats.
        Addr noise_base = prm.regionBase
            + static_cast<Addr>(next.size() + 4096) * kLineSize;
        Addr addr = noise_base
            + static_cast<Addr>(rng.below(noiseLines)) * kLineSize;
        t.append(prm.pc, addr, prm.instGap, /*depends=*/true);
        if (++phasePos >= uselessLen) {
            phasePos = 0;
            inUseful = true;
        }
    }
}

// ----------------------------------------------- BranchingChaseStream

BranchingChaseStream::BranchingChaseStream(const StreamParams &params,
                                           std::size_t nodes,
                                           double branch_fraction,
                                           double three_way_fraction)
    : prm(params)
{
    prophet_assert(nodes >= 4);
    Rng rng(params.seed);
    std::vector<std::uint32_t> next = buildRing(nodes, rng, nullptr);

    succ.resize(nodes);
    numSucc.assign(nodes, 1);
    visitCount.assign(nodes, 0);
    for (std::size_t v = 0; v < nodes; ++v) {
        succ[v][0] = next[v];
        // Alternative successors skip ahead on the ring, so the walk
        // always remains covering while the per-node target varies.
        succ[v][1] = next[next[v]];
        succ[v][2] = next[next[next[v]]];
        double draw = rng.uniform();
        if (draw < three_way_fraction)
            numSucc[v] = 3;
        else if (draw < three_way_fraction + branch_fraction)
            numSucc[v] = 2;
    }
}

void
BranchingChaseStream::emit(trace::Trace &t)
{
    Addr addr = prm.regionBase
        + static_cast<Addr>(pos) * kLineSize;
    t.append(prm.pc, addr, prm.instGap, /*depends=*/true);
    std::uint8_t k = visitCount[pos] % numSucc[pos];
    ++visitCount[pos];
    pos = succ[pos][k];
}

// ------------------------------------------------------ IndirectStream

IndirectStream::IndirectStream(const StreamParams &params,
                               std::size_t kernel_len,
                               std::size_t target_lines,
                               bool stride_kernel)
    : prm(params), strideMode(stride_kernel), targetLines(target_lines)
{
    prophet_assert(kernel_len >= 1 && target_lines >= 1);
    Rng rng(params.seed);
    indexArray.resize(kernel_len);
    for (auto &v : indexArray)
        v = static_cast<std::uint32_t>(rng.below(target_lines));
    order.resize(kernel_len);
    for (std::size_t i = 0; i < kernel_len; ++i)
        order[i] = static_cast<std::uint32_t>(i);
    if (!strideMode)
        rng.shuffle(order);
}

Addr
IndirectStream::kernelAddr(std::size_t i) const
{
    return prm.regionBase + static_cast<Addr>(i) * 4;
}

Addr
IndirectStream::targetAddr(std::uint32_t index) const
{
    // Target region sits well past the index array.
    Addr target_base = prm.regionBase
        + (static_cast<Addr>(indexArray.size()) * 4 + (64u << 20));
    return target_base + static_cast<Addr>(index) * kLineSize;
}

void
IndirectStream::emit(trace::Trace &t)
{
    std::uint32_t i = order[pos];
    t.append(kernelPc(), kernelAddr(i), prm.instGap,
             /*depends=*/false);
    t.append(targetPc(), targetAddr(indexArray[i]), 2,
             /*depends=*/true);
    pos = (pos + 1) % order.size();
}

std::optional<Addr>
IndirectStream::resolve(Addr kernel_addr, std::int64_t distance) const
{
    if (!strideMode)
        return std::nullopt;
    if (kernel_addr < prm.regionBase)
        return std::nullopt;
    std::uint64_t i = (kernel_addr - prm.regionBase) / 4;
    if (i >= indexArray.size())
        return std::nullopt;
    std::uint64_t idx =
        (i + static_cast<std::uint64_t>(distance)) % indexArray.size();
    return targetAddr(indexArray[idx]);
}

// -------------------------------------------------------- StrideStream

StrideStream::StrideStream(const StreamParams &params,
                           std::size_t region_lines, unsigned stride)
    : prm(params), regionLines(region_lines), stride(stride)
{
    prophet_assert(region_lines >= 1 && stride >= 1);
}

void
StrideStream::emit(trace::Trace &t)
{
    Addr line = (static_cast<Addr>(pos) * stride) % regionLines;
    t.append(prm.pc, prm.regionBase + line * kLineSize, prm.instGap,
             /*depends=*/false);
    ++pos;
}

// --------------------------------------------------------- NoiseStream

NoiseStream::NoiseStream(const StreamParams &params,
                         std::size_t region_lines)
    : prm(params), regionLines(region_lines), rng(params.seed)
{
    prophet_assert(region_lines >= 1);
}

void
NoiseStream::emit(trace::Trace &t)
{
    Addr line = rng.below(regionLines);
    t.append(prm.pc, prm.regionBase + line * kLineSize, prm.instGap,
             /*depends=*/false);
}

// -------------------------------------------------- CompositeGenerator

CompositeGenerator::CompositeGenerator(std::string name,
                                       std::size_t total_records,
                                       std::uint64_t seed)
    : label(std::move(name)), totalRecords(total_records), rng(seed)
{}

void
CompositeGenerator::addStream(std::unique_ptr<Stream> stream,
                              double weight)
{
    prophet_assert(weight > 0.0);
    streams.push_back(std::move(stream));
    weights.push_back(weight);
}

trace::Trace
CompositeGenerator::generate()
{
    prophet_assert(!streams.empty());
    double total_w = 0.0;
    for (double w : weights)
        total_w += w;

    trace::Trace t;
    t.reserve(totalRecords + 8);
    while (t.size() < totalRecords) {
        double draw = rng.uniform() * total_w;
        std::size_t pick = 0;
        for (; pick + 1 < streams.size(); ++pick) {
            if (draw < weights[pick])
                break;
            draw -= weights[pick];
        }
        streams[pick]->emit(t);
    }
    return t;
}

} // namespace prophet::workloads
