/**
 * @file
 * Name-based workload factory covering every workload label used in
 * the paper's figures, so benches and tests can instantiate
 * workloads uniformly.
 */

#ifndef PROPHET_WORKLOADS_REGISTRY_HH
#define PROPHET_WORKLOADS_REGISTRY_HH

#include <cstddef>
#include <string>
#include <vector>

#include "trace/generator.hh"

namespace prophet::workloads
{

/**
 * Instantiate a workload by its paper label ("mcf", "gcc_166",
 * "astar_biglakes", "bfs_100000_16", ...). Aborts on unknown names.
 *
 * @param records Trace-length budget (0 = workload default).
 */
trace::GeneratorPtr makeWorkload(const std::string &name,
                                 std::size_t records = 0);

/**
 * True when @p name is a label makeWorkload accepts — the
 * non-aborting check front ends (spec validation, CLI) use to reject
 * bad names with a recoverable error instead of a fatal().
 */
bool isKnown(const std::string &name);

/** The seven SPEC workloads of Figures 10-12 and 16-19, in order. */
const std::vector<std::string> &specWorkloads();

/** The nine graph workloads of Figure 15, in order. */
const std::vector<std::string> &graphWorkloads();

/** The nine gcc inputs of Figure 13, in order. */
const std::vector<std::string> &gccInputs();

} // namespace prophet::workloads

#endif // PROPHET_WORKLOADS_REGISTRY_HH
