/**
 * @file
 * Building blocks for synthetic workload traces. Each Stream models
 * one memory-access idiom the paper's evaluation exercises; a
 * CompositeGenerator interleaves weighted streams into a whole
 * workload trace.
 *
 * Streams construct real data structures (shuffled rings, index
 * arrays) and walk them, so temporal prefetchers learn genuine
 * address correlations rather than scripted outcomes:
 *
 *  - ChaseStream: pointer chasing over a shuffled ring, repeated
 *    traversals (the classic temporal pattern; mcf/xalancbmk). An
 *    optional per-round mutation rate degrades pattern stability.
 *  - AlternatingStream: bursts of repeating traversal interleaved
 *    with bursts of garbage from the same PC — the Figure 1 pattern
 *    that defeats short-term confidence like Triangel's PatternConf.
 *  - BranchingChaseStream: ring nodes with multiple successors taken
 *    alternately — multi-target Markov nodes (Figure 8, the MVB's
 *    reason to exist).
 *  - IndirectStream: a[b[i]] with a stride or shuffled kernel; the
 *    stride variant exposes an IndirectResolver (RPG2's sweet spot),
 *    the shuffled variant models mcf-style computed kernels that
 *    defeat software prefetching.
 *  - StrideStream: dense sequential walk (L1 prefetcher fodder).
 *  - NoiseStream: uniform random accesses, no temporal pattern —
 *    metadata pollution that insertion filtering should reject.
 */

#ifndef PROPHET_WORKLOADS_PATTERN_LIB_HH
#define PROPHET_WORKLOADS_PATTERN_LIB_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/flat_map.hh"
#include "common/rng.hh"
#include "trace/generator.hh"

namespace prophet::workloads
{

/**
 * One access-pattern engine. emit() appends the stream's next access
 * (or short dependent group) to the trace.
 */
class Stream
{
  public:
    virtual ~Stream() = default;

    /** Append the next access(es). */
    virtual void emit(trace::Trace &t) = 0;
};

/** Parameters shared by every stream. */
struct StreamParams
{
    /** First PC assigned to the stream. */
    PC pc = 0x400000;

    /** Byte base of the stream's private address region. */
    Addr regionBase = 1ull << 32;

    /** Non-memory instructions between accesses. */
    std::uint16_t instGap = 4;

    /** RNG seed (streams are deterministic per seed). */
    std::uint64_t seed = 1;
};

/** Pointer chasing over a shuffled ring of lines. */
class ChaseStream : public Stream
{
  public:
    /**
     * @param nodes Ring length in cache lines.
     * @param mutation_rate Fraction of successor links re-randomized
     *        after every full traversal (0 = perfectly repeating).
     */
    ChaseStream(const StreamParams &params, std::size_t nodes,
                double mutation_rate = 0.0);

    void emit(trace::Trace &t) override;

  private:
    StreamParams prm;
    double mutationRate;
    std::vector<std::uint32_t> next; ///< successor permutation
    std::uint32_t pos = 0;
    std::size_t steps = 0;
    Rng rng;
};

/** Figure 1 pattern: interleaved useful and useless bursts. */
class AlternatingStream : public Stream
{
  public:
    /**
     * @param nodes Ring length of the useful (repeating) phase.
     * @param useful_len Accesses per useful burst.
     * @param useless_len Accesses per useless (random) burst.
     * @param noise_lines Size of the garbage region in lines.
     */
    AlternatingStream(const StreamParams &params, std::size_t nodes,
                      unsigned useful_len, unsigned useless_len,
                      std::size_t noise_lines);

    void emit(trace::Trace &t) override;

  private:
    StreamParams prm;
    unsigned usefulLen;
    unsigned uselessLen;
    std::size_t noiseLines;
    std::vector<std::uint32_t> next;
    std::uint32_t pos = 0;
    unsigned phasePos = 0;
    bool inUseful = true;
    Rng rng;
};

/** Ring with alternating multi-successor nodes. */
class BranchingChaseStream : public Stream
{
  public:
    /**
     * @param nodes Ring length in lines.
     * @param branch_fraction Fraction of nodes with a second
     *        successor (taken on every other visit).
     * @param three_way_fraction Fraction with a third successor.
     */
    BranchingChaseStream(const StreamParams &params, std::size_t nodes,
                         double branch_fraction,
                         double three_way_fraction = 0.0);

    void emit(trace::Trace &t) override;

  private:
    StreamParams prm;
    std::vector<std::array<std::uint32_t, 3>> succ;
    std::vector<std::uint8_t> numSucc;
    std::vector<std::uint8_t> visitCount;
    std::uint32_t pos = 0;
};

/** a[b[i]] indirect access stream. */
class IndirectStream : public Stream
{
  public:
    /**
     * @param kernel_len Length of the index array b.
     * @param target_lines Size of the target region a, in lines.
     * @param stride_kernel True: i advances by +1 (RPG2-supported);
     *        false: i follows a shuffled permutation (computed
     *        kernel, unsupported by software prefetching).
     */
    IndirectStream(const StreamParams &params, std::size_t kernel_len,
                   std::size_t target_lines, bool stride_kernel);

    void emit(trace::Trace &t) override;

    /** Kernel-access PC (b[i]). */
    PC kernelPc() const { return prm.pc; }

    /** Indirect-access PC (a[b[i]]). */
    PC targetPc() const { return prm.pc + 4; }

    /** True when the kernel follows a stride. */
    bool strideKernel() const { return strideMode; }

    /**
     * Resolve the indirect target at @p distance kernel iterations
     * past the kernel access at @p kernel_addr (the software-prefetch
     * address computation). Only valid for stride kernels.
     */
    std::optional<Addr> resolve(Addr kernel_addr,
                                std::int64_t distance) const;

  private:
    StreamParams prm;
    bool strideMode;
    std::vector<std::uint32_t> indexArray;   ///< b
    std::vector<std::uint32_t> order;        ///< traversal permutation
    std::size_t targetLines;
    std::size_t pos = 0;

    Addr kernelAddr(std::size_t i) const;
    Addr targetAddr(std::uint32_t index) const;
};

/** Dense sequential walk. */
class StrideStream : public Stream
{
  public:
    /**
     * @param region_lines Lines walked before wrapping.
     * @param stride Line stride per access.
     */
    StrideStream(const StreamParams &params, std::size_t region_lines,
                 unsigned stride = 1);

    void emit(trace::Trace &t) override;

  private:
    StreamParams prm;
    std::size_t regionLines;
    unsigned stride;
    std::size_t pos = 0;
};

/** Uniform random accesses (no pattern). */
class NoiseStream : public Stream
{
  public:
    /** @param region_lines Region size in lines. */
    NoiseStream(const StreamParams &params, std::size_t region_lines);

    void emit(trace::Trace &t) override;

  private:
    StreamParams prm;
    std::size_t regionLines;
    Rng rng;
};

/**
 * PC-dispatching IndirectResolver: workloads with stride-indexed
 * indirect kernels register a resolver callback per kernel PC; RPG2
 * queries it exactly as its inserted prefetch code would compute the
 * address.
 */
class PcResolver : public trace::IndirectResolver
{
  public:
    using ResolveFn =
        std::function<std::optional<Addr>(Addr, std::int64_t)>;

    /** Register @p fn as the resolver for kernel PC @p pc. */
    void
    registerKernel(PC pc, ResolveFn fn)
    {
        kernels[pc] = std::move(fn);
    }

    std::optional<Addr>
    resolve(PC pc, Addr kernel_addr,
            std::int64_t distance) const override
    {
        auto it = kernels.find(pc);
        if (it == kernels.end())
            return std::nullopt;
        return it->second(kernel_addr, distance);
    }

    /** Number of registered kernel PCs. */
    std::size_t size() const { return kernels.size(); }

  private:
    FlatMap<PC, ResolveFn> kernels;
};

/**
 * Weighted interleaving of streams into one workload trace.
 */
class CompositeGenerator : public trace::TraceGenerator
{
  public:
    /**
     * @param name Workload name (figure labels).
     * @param total_records Trace length in memory accesses.
     * @param seed Scheduler seed.
     */
    CompositeGenerator(std::string name, std::size_t total_records,
                       std::uint64_t seed);

    /** Add a stream with a scheduling weight. */
    void addStream(std::unique_ptr<Stream> stream, double weight);

    /** Attach a resolver for RPG2-supported kernels. */
    void
    setResolver(std::unique_ptr<trace::IndirectResolver> r)
    {
        resolverPtr = std::move(r);
    }

    std::string name() const override { return label; }
    trace::Trace generate() override;

    const trace::IndirectResolver *
    resolver() const override
    {
        return resolverPtr.get();
    }

  private:
    std::string label;
    std::size_t totalRecords;
    Rng rng;
    std::vector<std::unique_ptr<Stream>> streams;
    std::vector<double> weights;
    std::unique_ptr<trace::IndirectResolver> resolverPtr;
};

} // namespace prophet::workloads

#endif // PROPHET_WORKLOADS_PATTERN_LIB_HH
