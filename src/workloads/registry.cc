#include "workloads/registry.hh"

#include "common/log.hh"
#include "workloads/graph/graph_workloads.hh"
#include "workloads/spec/spec.hh"

namespace prophet::workloads
{

trace::GeneratorPtr
makeWorkload(const std::string &name, std::size_t records)
{
    std::size_t n = records ? records : spec::kDefaultRecords;

    if (name == "mcf")
        return spec::makeMcf(n);
    if (name == "omnetpp")
        return spec::makeOmnetpp(n);
    if (name == "sphinx3")
        return spec::makeSphinx3(n);
    if (name == "xalancbmk")
        return spec::makeXalancbmk(n);
    if (name.rfind("gcc_", 0) == 0)
        return spec::makeGcc(name.substr(4), n);
    if (name.rfind("astar_", 0) == 0)
        return spec::makeAstar(name.substr(6), n);
    if (name.rfind("soplex_", 0) == 0)
        return spec::makeSoplex(name.substr(7), n);
    if (name.rfind("bfs_", 0) == 0 || name.rfind("dfs_", 0) == 0
        || name.rfind("sssp_", 0) == 0 || name.rfind("bc_", 0) == 0
        || name.rfind("pagerank_", 0) == 0)
        return graph::makeGraphWorkload(
            name, records ? records : graph::kDefaultGraphRecords);

    prophet_fatal("unknown workload name");
}

bool
isKnown(const std::string &name)
{
    if (name == "mcf" || name == "omnetpp" || name == "sphinx3"
        || name == "xalancbmk")
        return true;
    if (name.rfind("gcc_", 0) == 0) {
        for (const auto &in : gccInputs())
            if (name == in)
                return true;
        return false;
    }
    if (name.rfind("astar_", 0) == 0)
        return name == "astar_biglakes" || name == "astar_rivers";
    if (name.rfind("soplex_", 0) == 0)
        return name == "soplex_pds-50" || name == "soplex_ref";
    if (name.rfind("bfs_", 0) == 0 || name.rfind("dfs_", 0) == 0
        || name.rfind("sssp_", 0) == 0 || name.rfind("bc_", 0) == 0
        || name.rfind("pagerank_", 0) == 0)
        return graph::isKnownGraphLabel(name);
    return false;
}

const std::vector<std::string> &
specWorkloads()
{
    static const std::vector<std::string> names = {
        "astar_biglakes", "gcc_166",       "mcf",     "omnetpp",
        "soplex_pds-50",  "sphinx3",       "xalancbmk",
    };
    return names;
}

const std::vector<std::string> &
graphWorkloads()
{
    static const std::vector<std::string> names = {
        "bc_40000_10",        "bc_56384_8",    "bfs_100000_16",
        "bfs_80000_8",        "bfs_90000_10",  "dfs_800000_800",
        "dfs_900000_400",     "pagerank_100000_100",
        "sssp_100000_5",
    };
    return names;
}

const std::vector<std::string> &
gccInputs()
{
    static const std::vector<std::string> names = {
        "gcc_166",    "gcc_200",    "gcc_cpdecl",
        "gcc_expr",   "gcc_expr2",  "gcc_g23",
        "gcc_s04",    "gcc_scilab", "gcc_typeck",
    };
    return names;
}

} // namespace prophet::workloads
