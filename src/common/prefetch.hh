/**
 * @file
 * Portable software-prefetch wrapper. The record loop hides the
 * latency of its dependent tag/key probes by prefetching the scan
 * arrays a few records ahead; on toolchains without
 * __builtin_prefetch the hint degrades to a no-op (results never
 * depend on it — a prefetch has no architectural effect).
 */

#ifndef PROPHET_COMMON_PREFETCH_HH
#define PROPHET_COMMON_PREFETCH_HH

namespace prophet
{

/** Hint that @p p will be read soon (no-op where unsupported). */
inline void
prefetchRead(const void *p)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, 0 /* read */, 3 /* high locality */);
#else
    (void)p;
#endif
}

} // namespace prophet

#endif // PROPHET_COMMON_PREFETCH_HH
