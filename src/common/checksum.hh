/**
 * @file
 * FNV-1a 64-bit checksums. One implementation shared by the spec
 * hasher (content-addressed experiment identity) and the trace-cache
 * v3 frame (per-array integrity verification): dependency-free, a
 * few instructions per byte, and byte-order independent because it
 * hashes the serialized bytes themselves.
 *
 * FNV-1a is an integrity check against torn writes and bit rot, not
 * a cryptographic MAC — a deliberate corruption could forge it, but
 * the threat model here is a crashed writer or a flaky disk.
 */

#ifndef PROPHET_COMMON_CHECKSUM_HH
#define PROPHET_COMMON_CHECKSUM_HH

#include <cstddef>
#include <cstdint>

namespace prophet
{

constexpr std::uint64_t kFnv1a64Offset = 1469598103934665603ull;
constexpr std::uint64_t kFnv1a64Prime = 1099511628211ull;

/** FNV-1a 64 over a byte range, continuing from @p seed. */
inline std::uint64_t
fnv1a64(const void *data, std::size_t bytes,
        std::uint64_t seed = kFnv1a64Offset)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= kFnv1a64Prime;
    }
    return h;
}

} // namespace prophet

#endif // PROPHET_COMMON_CHECKSUM_HH
