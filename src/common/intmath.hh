/**
 * @file
 * Small integer-math helpers used by cache geometry computation and
 * Prophet's resizing arithmetic (Eq. 3 of the paper).
 */

#ifndef PROPHET_COMMON_INTMATH_HH
#define PROPHET_COMMON_INTMATH_HH

#include <cstdint>

#include "common/log.hh"

namespace prophet
{

/** True iff n is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** Floor of log2(n); n must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t n)
{
    unsigned l = 0;
    while (n >>= 1)
        ++l;
    return l;
}

/** Ceiling of log2(n); n must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t n)
{
    return floorLog2(n) + (isPowerOf2(n) ? 0 : 1);
}

/** Smallest power of two >= n (n > 0). */
constexpr std::uint64_t
nextPowerOf2(std::uint64_t n)
{
    return std::uint64_t{1} << ceilLog2(n);
}

/**
 * Round n to the *nearest* power of two, as Prophet's resizing does
 * with the allocated-entries counter before Eq. 3. Ties round up.
 * Returns 0 for n == 0.
 */
constexpr std::uint64_t
roundNearestPowerOf2(std::uint64_t n)
{
    if (n == 0)
        return 0;
    std::uint64_t lo = std::uint64_t{1} << floorLog2(n);
    std::uint64_t hi = lo << 1;
    return (n - lo < hi - n) ? lo : hi;
}

/** Integer ceiling division; divisor must be non-zero. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace prophet

#endif // PROPHET_COMMON_INTMATH_HH
