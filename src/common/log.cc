#include "common/log.hh"

#include <cstdarg>
#include <cstring>

namespace prophet
{

namespace
{

LogLevel
parseLevel()
{
    const char *env = std::getenv("PROPHET_LOG");
    if (!env || !*env)
        return LogLevel::Info;
    if (!std::strcmp(env, "error"))
        return LogLevel::Error;
    if (!std::strcmp(env, "warn"))
        return LogLevel::Warn;
    if (!std::strcmp(env, "info"))
        return LogLevel::Info;
    if (!std::strcmp(env, "debug"))
        return LogLevel::Debug;
    // A typo should be loud, not silently filter everything: keep
    // the default and say so (directly — the logger is mid-init).
    std::fprintf(stderr,
                 "warn: PROPHET_LOG=\"%s\" is not one of "
                 "error|warn|info|debug; using info\n",
                 env);
    return LogLevel::Info;
}

} // anonymous namespace

LogLevel
logLevel()
{
    static const LogLevel level = parseLevel();
    return level;
}

void
logfImpl(LogLevel level, const char *file, int line, const char *fmt,
         ...)
{
    if (!logEnabled(level))
        return;

    // Render the whole line into one buffer and emit it with a
    // single fprintf: stderr writes are atomic enough per call that
    // concurrent workers never interleave mid-message.
    char buf[1024];
    std::size_t off = 0;
    if (level == LogLevel::Error)
        off = std::snprintf(buf, sizeof(buf), "error: ");
    else if (level == LogLevel::Warn)
        off = std::snprintf(buf, sizeof(buf), "warn: ");

    std::va_list args;
    va_start(args, fmt);
    int n = std::vsnprintf(buf + off, sizeof(buf) - off, fmt, args);
    va_end(args);
    if (n > 0) {
        off += static_cast<std::size_t>(n);
        if (off >= sizeof(buf))
            off = sizeof(buf) - 1; // truncated
    }

    if (file
        && (level == LogLevel::Error || level == LogLevel::Warn)
        && off < sizeof(buf) - 1) {
        std::snprintf(buf + off, sizeof(buf) - off, " (%s:%d)", file,
                      line);
    }
    std::fprintf(stderr, "%s\n", buf);
}

} // namespace prophet
