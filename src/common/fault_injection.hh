/**
 * @file
 * Deterministic fault injection: named fault points compiled
 * permanently into the error-handling paths, armed per-site from
 * the environment or programmatically, so every recovery path in
 * the tree is exercised by tests rather than by luck.
 *
 * A fault *site* is a stable string the failure path checks, e.g.
 *
 *   trace_io.fread     every payload read in the binary trace loader
 *   trace_io.fwrite    every payload write in the binary trace saver
 *                      (fires as a simulated ENOSPC mid-store)
 *   cache.store        the trace-cache store entry point
 *   job.<w>/<p>        the driver job for workload w, pipeline p
 *                      (permanent failure, marked in the results)
 *   job-transient.<w>/<p>  same, but raised as a transient I/O
 *                      error, so the driver's bounded retry clears
 *                      it once the armed count is exhausted
 *   journal.load       per-entry corruption while loading the resume
 *                      journal: the entry is dropped as if its
 *                      checksum failed (logged, counted under
 *                      "journal.corrupt_skipped"; the job
 *                      re-simulates)
 *   journal.append     an append I/O failure in the resume journal:
 *                      nothing is written (the file stays
 *                      well-formed), the run continues, that job
 *                      just re-simulates on the next resume
 *   serve.accept       the serve daemon's accept(2): the connection
 *                      is dropped and counted under
 *                      "serve.accept_errors"; the daemon keeps
 *                      accepting
 *   serve.frame_read   a frame read on a serve connection fails as
 *                      a simulated I/O error; the daemon closes that
 *                      connection and keeps serving the rest
 *   serve.frame_write  a frame write fails mid-response; the request
 *                      slot is freed and the daemon keeps serving
 *
 * Arming: PROPHET_FAULTS="site:nth[:count]" (comma-separated list).
 * The site's hit counter starts at 1; the fault fires on hits
 * [nth, nth+count), so "trace_io.fread:3:1" fails exactly the third
 * fread and "job.mcf/triage:1" fails that job on every attempt
 * (count defaults to unlimited). Hits are counted per site across
 * the whole process, under a mutex, so a given spec + fault spec
 * always fails at the same point regardless of thread scheduling
 * *per site*; keep multi-threaded fault tests to sites hit by one
 * job to stay fully deterministic.
 *
 * Cost when idle: one relaxed atomic load per fault point — the
 * harness stays compiled in everywhere, including release builds.
 */

#ifndef PROPHET_COMMON_FAULT_INJECTION_HH
#define PROPHET_COMMON_FAULT_INJECTION_HH

#include <cstdint>
#include <string>
#include <vector>

namespace prophet::fault
{

/**
 * Should the fault at @p site fire on this hit? Counts the hit when
 * any fault anywhere is armed; free (one atomic load, no counting)
 * when the harness is idle. The very first call in a process also
 * arms sites from $PROPHET_FAULTS.
 */
bool shouldFail(const std::string &site);

/**
 * Arm @p site: fire on hit numbers [nth, nth + count). Hit numbers
 * are 1-based; count 0 means unlimited (every hit from nth on).
 */
void arm(const std::string &site, std::uint64_t nth,
         std::uint64_t count = 0);

/**
 * Arm sites from a "site:nth[:count],site2:nth2..." spec (the
 * $PROPHET_FAULTS syntax). Returns false (arming nothing further)
 * on a malformed spec.
 */
bool armFromSpec(const std::string &spec);

/** Disarm every site and zero all counters (tests). */
void reset();

/** Times @p site was hit (0 when the harness has been idle). */
std::uint64_t hits(const std::string &site);

/** Times @p site actually fired. */
std::uint64_t fired(const std::string &site);

/** Total faults fired across all sites. */
std::uint64_t totalFired();

/** The armed sites, for diagnostics ("site:nth:count"). */
std::vector<std::string> armedSites();

} // namespace prophet::fault

#endif // PROPHET_COMMON_FAULT_INJECTION_HH
