/**
 * @file
 * The structured error model every recoverable failure folds into.
 *
 * A prophet::Error carries a machine-readable ErrorCode (what class
 * of thing went wrong), a context block (which workload, pipeline,
 * spec path, file offset — whatever the failure site knows), and the
 * human-readable message runtime_error already provides. The
 * taxonomy exists so layers can make policy decisions without string
 * matching: the experiment driver retries transient I/O classes and
 * isolates permanent ones per job, the trace cache distinguishes
 * corruption (quarantine) from absence (regenerate), and the CLI
 * maps codes onto documented exit codes.
 *
 * SpecError (driver/spec.hh) and PipelineError (sim/pipelines.hh)
 * derive from Error, so one `catch (const prophet::Error &)` at the
 * top of the CLI sees every structured failure the tree can raise.
 */

#ifndef PROPHET_COMMON_ERROR_HH
#define PROPHET_COMMON_ERROR_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace prophet
{

/** Failure classes, coarse enough that policy can key off them. */
enum class ErrorCode : std::uint8_t
{
    Ok = 0,          ///< not an error (sentinel for JobResult)
    SpecParse,       ///< malformed or invalid experiment spec
    PipelineConfig,  ///< unknown pipeline / parameter / value
    WorkloadUnknown, ///< unregistered workload name
    TraceIo,         ///< read/write/open failure on trace data
    TraceCorrupt,    ///< checksum or structural mismatch on a trace
    CacheLock,       ///< trace-cache lock could not be taken
    DiskFull,        ///< no space left while writing (ENOSPC class)
    Cancelled,       ///< cooperative cancellation observed
    FaultInjected,   ///< a deterministic test fault fired
    Internal,        ///< everything else (wrapped std::exception)
    JournalCorrupt,  ///< result-journal entry failed validation
    JobTimeout,      ///< watchdog deadline cancelled the job
    ServerOverloaded,///< serve daemon shed the request (queue full)
    ProtocolError,   ///< malformed/oversize serve frame or request
    SocketBusy,      ///< a live daemon already owns the socket path
};

/** Canonical lower-case name of a code ("trace-corrupt", ...). */
const char *errorCodeName(ErrorCode code);

/**
 * Whether a failure class is worth retrying: the condition can
 * plausibly clear on its own (an I/O hiccup, a lock held briefly by
 * another process). Corruption, bad specs, cancellation, and
 * injected permanent faults are not transient — retrying them burns
 * time to reach the same failure.
 */
bool isTransientError(ErrorCode code);

/**
 * Where a failure happened, as precisely as the site knows. Every
 * field is optional; what() renders only the populated ones.
 */
struct ErrorContext
{
    std::string workload; ///< workload being processed
    std::string pipeline; ///< pipeline (result name) being run
    std::string path;     ///< spec or trace file involved
    /** Byte offset within path (kNoOffset = not applicable). */
    std::uint64_t offset = kNoOffset;

    static constexpr std::uint64_t kNoOffset = ~std::uint64_t{0};
};

/**
 * The structured exception. what() is pre-rendered at construction:
 * "trace-corrupt: pc[] checksum mismatch [workload=mcf,
 * path=.../mcf-r0.g1.ptrc, offset=16]".
 */
class Error : public std::runtime_error
{
  public:
    Error(ErrorCode code, const std::string &message,
          ErrorContext ctx = {});

    ErrorCode code() const { return errorCode; }
    const ErrorContext &context() const { return errorCtx; }

    /** Shorthand for isTransientError(code()). */
    bool transient() const { return isTransientError(errorCode); }

  private:
    ErrorCode errorCode;
    ErrorContext errorCtx;

    static std::string render(ErrorCode code,
                              const std::string &message,
                              const ErrorContext &ctx);
};

} // namespace prophet

#endif // PROPHET_COMMON_ERROR_HH
