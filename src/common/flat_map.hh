/**
 * @file
 * Open-addressing hash map for integer keys, built for the simulator's
 * per-record hot path. `std::unordered_map` puts every entry in its own
 * heap node, so the record loop's PC/address-keyed lookups each chase a
 * pointer into cold memory; FlatMap keeps entries in one contiguous
 * insertion-order array and resolves keys through a power-of-two
 * index table with linear probing:
 *
 *  - lookups touch the index table plus one dense array slot (no node
 *    chasing, no bucket lists);
 *  - iteration walks the dense array in insertion order, so every
 *    consumer (snapshots, reports, merges) is deterministic across
 *    runs, platforms, and standard libraries;
 *  - `reserve(n)` pre-sizes both arrays, after which up to n entries
 *    insert without any heap allocation (the record loop's requirement,
 *    enforced by tests/test_flat_map.cc with a counting allocator);
 *  - `clear()` keeps capacity, so warmup-boundary resets stay free.
 *
 * Deliberate non-goals, fine for the structures it replaces: erase()
 * is O(n) (it rebuilds the index to preserve insertion order), and
 * iterators/references into the dense array are invalidated by
 * mutation, like a std::vector's.
 */

#ifndef PROPHET_COMMON_FLAT_MAP_HH
#define PROPHET_COMMON_FLAT_MAP_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/intmath.hh"
#include "common/log.hh"

namespace prophet
{

/**
 * Map from an integer key to an arbitrary value.
 *
 * @tparam Key Integral key type (converted to uint64 for hashing).
 * @tparam Value Mapped type.
 * @tparam Allocator Allocator for the entry array (rebound for the
 *         index table); defaults to the heap, swapped out by tests.
 */
template <typename Key, typename Value,
          typename Allocator = std::allocator<std::pair<Key, Value>>>
class FlatMap
{
  public:
    using value_type = std::pair<Key, Value>;
    using EntryVector = std::vector<value_type, Allocator>;
    using iterator = typename EntryVector::iterator;
    using const_iterator = typename EntryVector::const_iterator;

    FlatMap() = default;

    explicit FlatMap(const Allocator &alloc)
        : entries(alloc), slots(SlotAllocator(alloc))
    {}

    /** Iteration, in insertion order. */
    iterator begin() { return entries.begin(); }
    iterator end() { return entries.end(); }
    const_iterator begin() const { return entries.begin(); }
    const_iterator end() const { return entries.end(); }

    std::size_t size() const { return entries.size(); }
    bool empty() const { return entries.empty(); }

    /** Entries insertable before the dense array reallocates. */
    std::size_t capacity() const { return entries.capacity(); }

    /**
     * Pre-size for @p n entries: the next n insertions perform no
     * heap allocation.
     */
    void
    reserve(std::size_t n)
    {
        entries.reserve(n);
        std::size_t want = slotCountFor(n);
        if (want > slots.size())
            rebuildIndex(want);
    }

    /** Drop all entries; capacity (and the no-alloc guarantee) stays. */
    void
    clear()
    {
        entries.clear();
        std::fill(slots.begin(), slots.end(), kEmptySlot);
    }

    iterator
    find(Key key)
    {
        std::size_t pos = findPos(key);
        return pos == kNoEntry ? entries.end() : entries.begin() + pos;
    }

    const_iterator
    find(Key key) const
    {
        std::size_t pos = findPos(key);
        return pos == kNoEntry ? entries.end() : entries.begin() + pos;
    }

    std::size_t count(Key key) const { return findPos(key) == kNoEntry ? 0 : 1; }
    bool contains(Key key) const { return findPos(key) != kNoEntry; }

    /** Reference to the value of a present key (asserts presence). */
    Value &
    at(Key key)
    {
        std::size_t pos = findPos(key);
        prophet_assert(pos != kNoEntry);
        return entries[pos].second;
    }

    const Value &
    at(Key key) const
    {
        std::size_t pos = findPos(key);
        prophet_assert(pos != kNoEntry);
        return entries[pos].second;
    }

    /** Value of @p key, value-initialized and inserted if absent. */
    Value &
    operator[](Key key)
    {
        return emplace(key).first->second;
    }

    /**
     * Insert (key, value-constructed-from-args) if the key is absent
     * (with no args, the value is value-initialized). The probe that
     * rules the key out also yields the insertion slot, so a miss
     * costs one chain walk, not two.
     *
     * @return (iterator to the entry, whether it was inserted).
     */
    template <typename... Args>
    std::pair<iterator, bool>
    emplace(Key key, Args &&...args)
    {
        std::size_t slot = kNoEntry;
        if (!slots.empty()) {
            std::size_t mask = slots.size() - 1;
            for (std::size_t i = mix(key) & mask;;
                 i = (i + 1) & mask) {
                std::uint32_t s = slots[i];
                if (s == kEmptySlot) {
                    slot = i;
                    break;
                }
                if (entries[s].first == key)
                    return {entries.begin() + s, false};
            }
        }

        if (needsGrowth()) {
            rebuildIndex(slotCountFor(entries.size() + 1));
            slot = probeFor(key);
        }

        prophet_assert(entries.size() < kEmptySlot);
        entries.emplace_back(std::piecewise_construct,
                             std::forward_as_tuple(key),
                             std::forward_as_tuple(
                                 std::forward<Args>(args)...));
        slots[slot] = static_cast<std::uint32_t>(entries.size() - 1);
        return {entries.end() - 1, true};
    }

    std::pair<iterator, bool>
    insert(const value_type &v)
    {
        return emplace(v.first, v.second);
    }

    /**
     * Remove @p key if present; O(n) — later entries shift down one
     * position (insertion order is preserved) and the index table is
     * rebuilt. Cold-path only.
     *
     * @return Number of entries removed (0 or 1).
     */
    std::size_t
    erase(Key key)
    {
        std::size_t pos = findPos(key);
        if (pos == kNoEntry)
            return 0;
        entries.erase(entries.begin() + pos);
        rebuildIndex(slots.size());
        return 1;
    }

    /** Order-independent content equality (unordered_map semantics). */
    bool
    operator==(const FlatMap &other) const
    {
        if (entries.size() != other.entries.size())
            return false;
        for (const auto &e : entries) {
            std::size_t pos = other.findPos(e.first);
            if (pos == kNoEntry
                || !(other.entries[pos].second == e.second))
                return false;
        }
        return true;
    }

    bool operator!=(const FlatMap &other) const { return !(*this == other); }

  private:
    using SlotAllocator = typename std::allocator_traits<
        Allocator>::template rebind_alloc<std::uint32_t>;

    /** Sentinel for an unoccupied index slot. */
    static constexpr std::uint32_t kEmptySlot = ~std::uint32_t{0};

    /** findPos() result for an absent key. */
    static constexpr std::size_t kNoEntry = ~std::size_t{0};

    /** Index capacity for n entries at a max load factor of 3/4. */
    static std::size_t
    slotCountFor(std::size_t n)
    {
        std::size_t min_slots = divCeil(n * 4, 3);
        return nextPowerOf2(min_slots < 8 ? 8 : min_slots);
    }

    bool
    needsGrowth() const
    {
        return slots.empty()
            || (entries.size() + 1) * 4 > slots.size() * 3;
    }

    /** Finalizer-strength integer mix (splitmix64). */
    static std::size_t
    mix(Key key)
    {
        auto x = static_cast<std::uint64_t>(key);
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return static_cast<std::size_t>(x);
    }

    /** Entry position of @p key, or kNoEntry. */
    std::size_t
    findPos(Key key) const
    {
        if (slots.empty())
            return kNoEntry;
        std::size_t mask = slots.size() - 1;
        for (std::size_t i = mix(key) & mask;; i = (i + 1) & mask) {
            std::uint32_t s = slots[i];
            if (s == kEmptySlot)
                return kNoEntry;
            if (entries[s].first == key)
                return s;
        }
    }

    /** First free index slot on @p key's probe chain (key absent). */
    std::size_t
    probeFor(Key key) const
    {
        std::size_t mask = slots.size() - 1;
        std::size_t i = mix(key) & mask;
        while (slots[i] != kEmptySlot)
            i = (i + 1) & mask;
        return i;
    }

    /** Re-key every entry into an index of @p slot_count slots. */
    void
    rebuildIndex(std::size_t slot_count)
    {
        slots.assign(slot_count, kEmptySlot);
        for (std::size_t pos = 0; pos < entries.size(); ++pos)
            slots[probeFor(entries[pos].first)] =
                static_cast<std::uint32_t>(pos);
    }

    EntryVector entries;
    std::vector<std::uint32_t, SlotAllocator> slots;
};

} // namespace prophet

#endif // PROPHET_COMMON_FLAT_MAP_HH
