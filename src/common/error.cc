#include "common/error.hh"

namespace prophet
{

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return "ok";
      case ErrorCode::SpecParse:
        return "spec-parse";
      case ErrorCode::PipelineConfig:
        return "pipeline-config";
      case ErrorCode::WorkloadUnknown:
        return "workload-unknown";
      case ErrorCode::TraceIo:
        return "trace-io";
      case ErrorCode::TraceCorrupt:
        return "trace-corrupt";
      case ErrorCode::CacheLock:
        return "cache-lock";
      case ErrorCode::DiskFull:
        return "disk-full";
      case ErrorCode::Cancelled:
        return "cancelled";
      case ErrorCode::FaultInjected:
        return "fault-injected";
      case ErrorCode::Internal:
        return "internal";
      case ErrorCode::JournalCorrupt:
        return "journal-corrupt";
      case ErrorCode::JobTimeout:
        return "job-timeout";
      case ErrorCode::ServerOverloaded:
        return "server-overloaded";
      case ErrorCode::ProtocolError:
        return "protocol-error";
      case ErrorCode::SocketBusy:
        return "socket-busy";
    }
    return "unknown";
}

bool
isTransientError(ErrorCode code)
{
    switch (code) {
      case ErrorCode::TraceIo:
      case ErrorCode::CacheLock:
      // A deadline expiry says nothing permanent about the job: the
      // machine may simply have been overloaded, so a fresh attempt
      // (with a fresh deadline) is worth one retry.
      case ErrorCode::JobTimeout:
      // Overload clears as soon as the daemon's queue drains, and the
      // response carries a retry-after hint saying when to try.
      case ErrorCode::ServerOverloaded:
        return true;
      default:
        return false;
    }
}

std::string
Error::render(ErrorCode code, const std::string &message,
              const ErrorContext &ctx)
{
    std::string out = errorCodeName(code);
    out += ": ";
    out += message;

    std::string fields;
    auto add = [&fields](const char *key, const std::string &value) {
        if (value.empty())
            return;
        if (!fields.empty())
            fields += ", ";
        fields += key;
        fields += '=';
        fields += value;
    };
    add("workload", ctx.workload);
    add("pipeline", ctx.pipeline);
    add("path", ctx.path);
    if (ctx.offset != ErrorContext::kNoOffset)
        add("offset", std::to_string(ctx.offset));
    if (!fields.empty())
        out += " [" + fields + "]";
    return out;
}

Error::Error(ErrorCode code, const std::string &message,
             ErrorContext ctx)
    : std::runtime_error(render(code, message, ctx)),
      errorCode(code), errorCtx(std::move(ctx))
{}

} // namespace prophet
