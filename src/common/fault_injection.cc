#include "common/fault_injection.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/metrics.hh"

namespace prophet::fault
{

namespace
{

struct SiteState
{
    std::uint64_t nth = 0;   ///< 0 = not armed, counting only
    std::uint64_t count = 0; ///< 0 = unlimited once armed
    std::uint64_t hits = 0;
    std::uint64_t fired = 0;
};

struct Harness
{
    std::mutex mu;
    std::map<std::string, SiteState> sites;
    std::uint64_t firedTotal = 0;
};

Harness &
harness()
{
    static Harness h;
    return h;
}

/**
 * Fast-path gate: number of armed sites. Zero (the normal case)
 * means shouldFail returns immediately without touching the mutex —
 * hit counters are only maintained while something is armed, which
 * keeps the idle cost to one relaxed load.
 */
std::atomic<std::uint64_t> armedCount{0};

/** One-time $PROPHET_FAULTS pickup, before the first gate check. */
std::once_flag envOnce;

void
armFromEnv()
{
    const char *env = std::getenv("PROPHET_FAULTS");
    if (!env || !*env)
        return;
    if (!armFromSpec(env))
        std::fprintf(stderr,
                     "fault-injection: malformed PROPHET_FAULTS "
                     "\"%s\" (want site:nth[:count],...)\n",
                     env);
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end != s.c_str() + s.size() || errno == ERANGE)
        return false;
    out = v;
    return true;
}

} // anonymous namespace

bool
shouldFail(const std::string &site)
{
    std::call_once(envOnce, armFromEnv);
    if (armedCount.load(std::memory_order_relaxed) == 0)
        return false;

    Harness &h = harness();
    std::lock_guard<std::mutex> lock(h.mu);
    SiteState &st = h.sites[site];
    ++st.hits;
    if (st.nth == 0)
        return false; // counted, but this site is not armed
    bool fire = st.hits >= st.nth
        && (st.count == 0 || st.hits < st.nth + st.count);
    if (fire) {
        ++st.fired;
        ++h.firedTotal;
        // Adopted into the metrics registry so a fault-injected run's
        // metrics.json shows how many faults actually fired.
        metrics::counter("fault.fired").inc();
        std::fprintf(stderr,
                     "fault-injection: %s fired (hit %llu)\n",
                     site.c_str(),
                     static_cast<unsigned long long>(st.hits));
    }
    return fire;
}

void
arm(const std::string &site, std::uint64_t nth, std::uint64_t count)
{
    if (nth == 0)
        nth = 1;
    Harness &h = harness();
    std::lock_guard<std::mutex> lock(h.mu);
    SiteState &st = h.sites[site];
    if (st.nth == 0)
        armedCount.fetch_add(1, std::memory_order_relaxed);
    st.nth = nth;
    st.count = count;
}

bool
armFromSpec(const std::string &spec)
{
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        std::string item = spec.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        pos = comma == std::string::npos ? spec.size() : comma + 1;
        if (item.empty())
            continue;

        // site:nth[:count] — the site itself may contain '/' and
        // '.', so split from the right.
        std::uint64_t nth = 0, count = 0;
        std::size_t c1 = item.rfind(':');
        if (c1 == std::string::npos || c1 == 0)
            return false;
        std::size_t c2 = item.rfind(':', c1 - 1);
        std::string site;
        if (c2 != std::string::npos
            && parseU64(item.substr(c2 + 1, c1 - c2 - 1), nth)
            && parseU64(item.substr(c1 + 1), count)) {
            site = item.substr(0, c2);
        } else if (parseU64(item.substr(c1 + 1), nth)) {
            site = item.substr(0, c1);
        } else {
            return false;
        }
        if (site.empty() || nth == 0)
            return false;
        arm(site, nth, count);
    }
    return true;
}

void
reset()
{
    Harness &h = harness();
    std::lock_guard<std::mutex> lock(h.mu);
    h.sites.clear();
    h.firedTotal = 0;
    armedCount.store(0, std::memory_order_relaxed);
}

std::uint64_t
hits(const std::string &site)
{
    Harness &h = harness();
    std::lock_guard<std::mutex> lock(h.mu);
    auto it = h.sites.find(site);
    return it == h.sites.end() ? 0 : it->second.hits;
}

std::uint64_t
fired(const std::string &site)
{
    Harness &h = harness();
    std::lock_guard<std::mutex> lock(h.mu);
    auto it = h.sites.find(site);
    return it == h.sites.end() ? 0 : it->second.fired;
}

std::uint64_t
totalFired()
{
    Harness &h = harness();
    std::lock_guard<std::mutex> lock(h.mu);
    return h.firedTotal;
}

std::vector<std::string>
armedSites()
{
    Harness &h = harness();
    std::lock_guard<std::mutex> lock(h.mu);
    std::vector<std::string> out;
    for (const auto &[site, st] : h.sites)
        if (st.nth != 0)
            out.push_back(site + ":" + std::to_string(st.nth) + ":"
                          + std::to_string(st.count));
    return out;
}

} // namespace prophet::fault
