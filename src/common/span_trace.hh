/**
 * @file
 * Scoped span tracing emitting Chrome trace_event / Perfetto-
 * compatible JSON: `prophet run --trace-out run.trace.json` turns
 * the collector on, every instrumented scope (experiment, baseline
 * warm-up, per-job pipeline runs, trace loads, warmup/measure
 * simulation phases, sink rendering) records a complete ("X") event
 * on its thread's track, and the driver writes the file at the end.
 * Open the result in https://ui.perfetto.dev or chrome://tracing.
 *
 * Cost model: when the collector is disabled (the default), a Span
 * is one relaxed atomic load at construction and a dead branch at
 * destruction — cheap enough to leave compiled into every path,
 * like the fault-injection harness. When enabled, ending a span
 * takes a short mutex-guarded append; spans are phase/job-grained
 * (never per record), so contention is negligible next to the work
 * they time.
 *
 * Thread tracks: each thread gets a stable small tid on first use
 * (currentTid()), and ThreadPool workers name their tracks
 * ("worker-0", ...) via setCurrentThreadName — names are kept even
 * while disabled so pools built before enabling still label their
 * tracks.
 */

#ifndef PROPHET_COMMON_SPAN_TRACE_HH
#define PROPHET_COMMON_SPAN_TRACE_HH

#include <cstdint>
#include <string>

namespace prophet::span
{

/** Is the collector recording? One relaxed load. */
bool enabled();

/** Turn the collector on/off (driver: on at run start when
 *  --trace-out is given, off before writing the file). */
void setEnabled(bool on);

/** Drop every recorded event (thread ids and names persist). */
void reset();

/** Events currently buffered (tests, overflow diagnostics). */
std::size_t eventCount();

/** Events dropped after the buffer cap (also counted in the
 *  "span.dropped" registry counter). */
std::uint64_t droppedCount();

/**
 * This thread's stable track id: assigned on first call, never
 * reused, identical across every span the thread emits.
 */
std::uint32_t currentTid();

/** Name this thread's track in the trace ("worker-3"). Recorded
 *  even while disabled. */
void setCurrentThreadName(const std::string &name);

/**
 * The buffered events as a Chrome trace_event JSON document
 * ({"traceEvents": [...], "displayTimeUnit": "ms"}). Deterministic
 * order: thread-name metadata first, then events sorted by
 * (tid, start, -duration) so parents precede their children.
 */
std::string toJson();

/** Write toJson() to @p path; false (with a warning) on I/O error. */
bool writeJson(const std::string &path);

/**
 * RAII span: captures the wall-clock interval from construction to
 * destruction on the current thread's track. The enabled check
 * happens at construction; a span that began while enabled records
 * even if the collector is disabled before it ends (the driver only
 * disables after every worker has finished).
 */
class Span
{
  public:
    explicit Span(std::string name, const char *category = "phase");

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    ~Span();

  private:
    std::string name;
    const char *category;
    std::uint64_t startNs = 0;
    bool active = false;
};

} // namespace prophet::span

#endif // PROPHET_COMMON_SPAN_TRACE_HH
