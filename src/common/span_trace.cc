#include "common/span_trace.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/metrics.hh"

namespace prophet::span
{

namespace
{

/** One completed ("X") event. */
struct Event
{
    std::string name;
    const char *category;
    std::uint32_t tid;
    std::uint64_t startNs;
    std::uint64_t durNs;
};

/**
 * Hard cap on buffered events: spans are job/phase-grained, so even
 * a huge sweep stays far below this — the cap only guards against an
 * instrumentation bug flooding memory. Overflow is counted, never
 * silent.
 */
constexpr std::size_t kMaxEvents = 1 << 20;

struct Collector
{
    std::mutex mu;
    std::vector<Event> events;
    std::map<std::uint32_t, std::string> threadNames;
    std::atomic<bool> on{false};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint32_t> nextTid{0};

    /** One steady-clock epoch per process: every ts is relative to
     *  it, so spans from different threads share a timeline. */
    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
};

Collector &
collector()
{
    // Leaked like the metrics registry: worker threads may emit
    // spans during static destruction otherwise.
    static Collector *c = new Collector();
    return *c;
}

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - collector().epoch)
            .count());
}

/** JSON string escaping for event/thread names. */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // anonymous namespace

bool
enabled()
{
    return collector().on.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    collector().on.store(on, std::memory_order_relaxed);
}

void
reset()
{
    Collector &c = collector();
    std::lock_guard<std::mutex> lock(c.mu);
    c.events.clear();
    c.dropped.store(0, std::memory_order_relaxed);
}

std::size_t
eventCount()
{
    Collector &c = collector();
    std::lock_guard<std::mutex> lock(c.mu);
    return c.events.size();
}

std::uint64_t
droppedCount()
{
    return collector().dropped.load(std::memory_order_relaxed);
}

std::uint32_t
currentTid()
{
    thread_local std::uint32_t tid =
        collector().nextTid.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

void
setCurrentThreadName(const std::string &name)
{
    Collector &c = collector();
    std::uint32_t tid = currentTid();
    std::lock_guard<std::mutex> lock(c.mu);
    c.threadNames[tid] = name;
}

Span::Span(std::string name_in, const char *category_in)
    : name(std::move(name_in)), category(category_in)
{
    if (!enabled())
        return;
    active = true;
    startNs = nowNs();
}

Span::~Span()
{
    if (!active)
        return;
    std::uint64_t end = nowNs();
    Collector &c = collector();
    std::lock_guard<std::mutex> lock(c.mu);
    if (c.events.size() >= kMaxEvents) {
        c.dropped.fetch_add(1, std::memory_order_relaxed);
        metrics::counter("span.dropped").inc();
        return;
    }
    c.events.push_back(Event{std::move(name), category, currentTid(),
                             startNs, end - startNs});
}

std::string
toJson()
{
    Collector &c = collector();
    std::vector<Event> events;
    std::map<std::uint32_t, std::string> names;
    {
        std::lock_guard<std::mutex> lock(c.mu);
        events = c.events;
        names = c.threadNames;
    }
    // Deterministic order independent of completion interleaving:
    // by track, then start time, longest-first on ties so a parent
    // span precedes the child it fully encloses.
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  if (a.startNs != b.startNs)
                      return a.startNs < b.startNs;
                  return a.durNs > b.durNs;
              });

    std::string out = "{\"traceEvents\": [\n";
    char buf[160];
    bool first = true;
    for (const auto &[tid, name] : names) {
        std::snprintf(buf, sizeof(buf),
                      "%s  {\"name\": \"thread_name\", \"ph\": \"M\", "
                      "\"pid\": 1, \"tid\": %u, \"args\": {\"name\": ",
                      first ? "" : ",\n", tid);
        out += buf;
        out += "\"" + escape(name) + "\"}}";
        first = false;
    }
    for (const auto &e : events) {
        // ts/dur are microseconds in the trace_event format; keep
        // nanosecond precision with three decimals.
        std::snprintf(buf, sizeof(buf),
                      "%s  {\"ph\": \"X\", \"pid\": 1, \"tid\": %u, "
                      "\"ts\": %llu.%03llu, \"dur\": %llu.%03llu, "
                      "\"cat\": \"%s\", \"name\": ",
                      first ? "" : ",\n", e.tid,
                      static_cast<unsigned long long>(e.startNs
                                                      / 1000),
                      static_cast<unsigned long long>(e.startNs
                                                      % 1000),
                      static_cast<unsigned long long>(e.durNs / 1000),
                      static_cast<unsigned long long>(e.durNs % 1000),
                      e.category);
        out += buf;
        out += "\"" + escape(e.name) + "\"}";
        first = false;
    }
    out += "\n], \"displayTimeUnit\": \"ms\"}\n";
    return out;
}

bool
writeJson(const std::string &path)
{
    std::string doc = toJson();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        prophet_warnf("span-trace: cannot write %s", path.c_str());
        return false;
    }
    bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    ok = std::fclose(f) == 0 && ok;
    if (!ok)
        prophet_warnf("span-trace: write to %s failed", path.c_str());
    return ok;
}

} // namespace prophet::span
