/**
 * @file
 * The process exit codes every prophet entry point shares — the
 * `prophet run` CLI, the `prophet serve` daemon, and `prophet
 * client`. One enum, one help blurb, one ErrorCode mapping: the
 * documented list cannot drift between --help and the serve/client
 * paths because they all print and compute from this module.
 */

#ifndef PROPHET_COMMON_EXIT_CODES_HH
#define PROPHET_COMMON_EXIT_CODES_HH

#include "common/error.hh"

namespace prophet
{

/** Documented process exit codes (1 is left to the OS/sanitizers). */
enum class ExitCode : int
{
    Success = 0,        ///< everything ran and every sink wrote
    Usage = 2,          ///< bad command line
    SpecInvalid = 3,    ///< spec parse/validation error
    RuntimeFailure = 4, ///< a job, sink, or server request failed
    PartialFailure = 5, ///< keep-going: some jobs failed, rest wrote
    Interrupted = 6,    ///< signal drain / server drained the request
};

/**
 * The canonical --help "exit codes:" block, shared verbatim by
 * `prophet --help` and the serve/client usage text. Ends with a
 * newline.
 */
const char *exitCodesHelp();

/**
 * The exit code a structured error maps onto: spec problems are the
 * documented spec-error code, cooperative cancellation is the
 * interrupt code, everything else is a runtime failure.
 */
ExitCode exitCodeForError(ErrorCode code);

} // namespace prophet

#endif // PROPHET_COMMON_EXIT_CODES_HH
