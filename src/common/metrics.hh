/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * log2-bucketed histograms every subsystem reports through — the
 * trace cache, thread pool, fault-injection harness, driver phases,
 * and simulation runs all land here, and `prophet run --metrics-out`
 * snapshots the lot into one machine-readable document.
 *
 * Design constraints, in order:
 *  - the PR-4/5 record hot path must stay allocation-free and
 *    regression-gate clean: instruments are plain atomics, lookups
 *    happen once (callers cache the returned reference — a
 *    function-local `static Counter &` is the idiom), and nothing on
 *    the per-record path touches the registry at all (phase timers
 *    fire per *run*, never per record);
 *  - references returned by the registry are valid for the process
 *    lifetime: instruments are never erased, resetValues() zeroes
 *    values but keeps every registration, so cached references in
 *    long-lived subsystems survive driver-run resets;
 *  - snapshots are deterministic: instruments are stored and
 *    reported in name order regardless of registration order.
 */

#ifndef PROPHET_COMMON_METRICS_HH
#define PROPHET_COMMON_METRICS_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace prophet::metrics
{

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    inc(std::uint64_t n = 1)
    {
        val.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return val.load(std::memory_order_relaxed);
    }

    void reset() { val.store(0, std::memory_order_relaxed); }

  private:
    /** Own cache line: counters from different subsystems are
     *  registered together but bumped from different threads. */
    alignas(64) std::atomic<std::uint64_t> val{0};
};

/** A point-in-time signed level (queue depth, reserved ways, ...). */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        val.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t delta)
    {
        val.fetch_add(delta, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return val.load(std::memory_order_relaxed);
    }

    void reset() { val.store(0, std::memory_order_relaxed); }

  private:
    alignas(64) std::atomic<std::int64_t> val{0};
};

/**
 * Log2-bucketed histogram for latency-style samples (nanoseconds by
 * convention for the "phase.*_ns" family). Bucket 0 counts exact
 * zeros; bucket i >= 1 counts samples in [2^(i-1), 2^i). Recording
 * is a handful of relaxed atomic ops — safe from any thread, never
 * allocating.
 */
class Histogram
{
  public:
    static constexpr std::size_t kBuckets = 64;

    void record(std::uint64_t sample);

    /** Convenience: record a duration in nanoseconds. */
    void
    recordDuration(std::chrono::nanoseconds d)
    {
        record(d.count() < 0 ? 0
                             : static_cast<std::uint64_t>(d.count()));
    }

    /** Bucket index a sample lands in. */
    static std::size_t bucketOf(std::uint64_t sample);

    /** Smallest sample mapping to bucket @p i (inclusive). */
    static std::uint64_t bucketLowerBound(std::size_t i);

    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    /** Smallest recorded sample (0 when empty). */
    std::uint64_t min() const;

    /** Largest recorded sample (0 when empty). */
    std::uint64_t
    max() const
    {
        return max_.load(std::memory_order_relaxed);
    }

    std::uint64_t
    bucket(std::size_t i) const
    {
        return buckets[i].load(std::memory_order_relaxed);
    }

    void reset();

    /** Coherent-enough copy for reporting (values race benignly). */
    struct Snapshot
    {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t min = 0;
        std::uint64_t max = 0;
        std::vector<std::uint64_t> buckets; ///< kBuckets entries
    };

    Snapshot snapshot() const;

  private:
    alignas(64) std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max_{0};
    std::atomic<std::uint64_t> buckets[kBuckets] = {};
};

/** One instrument's value in a registry snapshot. */
struct CounterSample
{
    std::string name;
    std::uint64_t value = 0;
};

struct GaugeSample
{
    std::string name;
    std::int64_t value = 0;
};

struct HistogramSample
{
    std::string name;
    Histogram::Snapshot snap;
};

/** Every instrument's value, each section sorted by name. */
struct RegistrySnapshot
{
    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;
};

/**
 * The process-wide instrument registry. Lookup is mutex-guarded and
 * creates on first use; the returned reference never dangles (see
 * file comment). A name identifies exactly one instrument kind —
 * asking for an existing name as a different kind panics, since two
 * subsystems silently sharing a name would corrupt both reports.
 */
class Registry
{
  public:
    static Registry &instance();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Deterministic (name-ordered) copy of every value. */
    RegistrySnapshot snapshot() const;

    /**
     * Zero every value, keeping every registration (and therefore
     * every cached reference) intact. The driver calls this at the
     * start of each run so a report never carries a previous run's
     * counts.
     */
    void resetValues();

  private:
    Registry() = default;

    mutable std::mutex mu;
    // Node-based maps: instrument addresses are stable forever.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

/** Shorthands for the common "look up once, cache the ref" idiom. */
inline Counter &
counter(const std::string &name)
{
    return Registry::instance().counter(name);
}

inline Gauge &
gauge(const std::string &name)
{
    return Registry::instance().gauge(name);
}

inline Histogram &
histogram(const std::string &name)
{
    return Registry::instance().histogram(name);
}

/**
 * RAII phase timer: records the scope's duration (ns) into a
 * histogram on destruction. Two steady-clock reads per scope —
 * intended for run/phase granularity, never per record.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(Histogram &h)
        : hist(&h), start(std::chrono::steady_clock::now())
    {}

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /** Record now instead of at scope exit; returns the ns. */
    std::uint64_t
    stop()
    {
        if (!hist)
            return 0;
        auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count();
        std::uint64_t v =
            ns < 0 ? 0 : static_cast<std::uint64_t>(ns);
        hist->record(v);
        hist = nullptr;
        return v;
    }

    ~ScopedTimer()
    {
        if (hist)
            stop();
    }

  private:
    Histogram *hist;
    std::chrono::steady_clock::time_point start;
};

} // namespace prophet::metrics

#endif // PROPHET_COMMON_METRICS_HH
