/**
 * @file
 * Shared wall-clock formatting: run metadata (JSON sinks,
 * BENCH_micro.json) stamps results with an ISO-8601 UTC timestamp
 * so archives from different machines line up.
 */

#ifndef PROPHET_COMMON_TIME_HH
#define PROPHET_COMMON_TIME_HH

#include <ctime>
#include <string>

namespace prophet
{

/** The current UTC time as "YYYY-MM-DDTHH:MM:SSZ". */
inline std::string
iso8601UtcNow()
{
    std::time_t now = std::time(nullptr);
    std::tm tm_utc{};
    gmtime_r(&now, &tm_utc);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    return buf;
}

} // namespace prophet

#endif // PROPHET_COMMON_TIME_HH
