#include "common/exit_codes.hh"

namespace prophet
{

const char *
exitCodesHelp()
{
    return "exit codes (shared by run, serve, and client):\n"
           "  0  success\n"
           "  2  usage error\n"
           "  3  spec parse/validation error\n"
           "  4  runtime failure (job, pipeline, sink, or server\n"
           "     request — including an overloaded or unreachable\n"
           "     serve daemon)\n"
           "  5  partial failure (--keep-going: some jobs failed,\n"
           "     the rest completed)\n"
           "  6  interrupted (SIGINT/SIGTERM drained the run or\n"
           "     daemon; completed jobs were journaled when\n"
           "     --resume/--journal was on)\n";
}

ExitCode
exitCodeForError(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return ExitCode::Success;
      case ErrorCode::SpecParse:
        return ExitCode::SpecInvalid;
      case ErrorCode::Cancelled:
        return ExitCode::Interrupted;
      default:
        return ExitCode::RuntimeFailure;
    }
}

} // namespace prophet
