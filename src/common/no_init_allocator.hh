/**
 * @file
 * std::allocator variant whose value-construction is default-init:
 * `std::vector<T, NoInitAllocator<T>> v(n)` for trivial T allocates
 * without writing the elements. Bulk deserialization (the trace
 * cache's v2 loader) sizes a vector and then freads straight into
 * it; with the standard allocator that touches every page twice —
 * once for the value-init memset, once for the read.
 */

#ifndef PROPHET_COMMON_NO_INIT_ALLOCATOR_HH
#define PROPHET_COMMON_NO_INIT_ALLOCATOR_HH

#include <memory>
#include <type_traits>
#include <utility>

namespace prophet
{

template <typename T>
class NoInitAllocator : public std::allocator<T>
{
  public:
    template <typename U>
    struct rebind
    {
        using other = NoInitAllocator<U>;
    };

    NoInitAllocator() = default;

    template <typename U>
    NoInitAllocator(const NoInitAllocator<U> &) noexcept
    {}

    /** Value-construction with no arguments becomes default-init. */
    template <typename U>
    void
    construct(U *p) noexcept(
        std::is_nothrow_default_constructible<U>::value)
    {
        ::new (static_cast<void *>(p)) U;
    }

    /** Every other construction is untouched. */
    template <typename U, typename... Args>
    void
    construct(U *p, Args &&...args)
    {
        ::new (static_cast<void *>(p)) U(std::forward<Args>(args)...);
    }
};

} // namespace prophet

#endif // PROPHET_COMMON_NO_INIT_ALLOCATOR_HH
