/**
 * @file
 * Fundamental type aliases and cache-line address helpers shared by
 * every module in the Prophet reproduction.
 */

#ifndef PROPHET_COMMON_TYPES_HH
#define PROPHET_COMMON_TYPES_HH

#include <cstdint>

namespace prophet
{

/** Byte-granularity physical/virtual address. */
using Addr = std::uint64_t;

/** Program counter of a memory instruction. */
using PC = std::uint64_t;

/** Simulation time, in core clock cycles. */
using Cycle = std::uint64_t;

/** Cache line size used throughout (Table 1: 64 B lines). */
constexpr unsigned kLineSize = 64;

/** log2 of the cache line size. */
constexpr unsigned kLineShift = 6;

/** An invalid/sentinel address value. */
constexpr Addr kInvalidAddr = ~static_cast<Addr>(0);

/** An invalid/sentinel PC value. */
constexpr PC kInvalidPC = ~static_cast<PC>(0);

/**
 * Convert a byte address to a line address (line index, not byte
 * address of the line start).
 */
constexpr Addr
lineAddr(Addr byte_addr)
{
    return byte_addr >> kLineShift;
}

/** Convert a line address back to the byte address of its first byte. */
constexpr Addr
lineToByte(Addr line_addr)
{
    return line_addr << kLineShift;
}

/** Align a byte address down to its containing line start. */
constexpr Addr
alignToLine(Addr byte_addr)
{
    return byte_addr & ~static_cast<Addr>(kLineSize - 1);
}

} // namespace prophet

#endif // PROPHET_COMMON_TYPES_HH
