/**
 * @file
 * Minimal gem5-style diagnostics: panic() for internal invariant
 * violations, fatal() for user/configuration errors, and a
 * level-filtered logger for everything recoverable.
 *
 * The logger is controlled by $PROPHET_LOG (error|warn|info|debug,
 * parsed once per process, default info — which preserves the
 * historical stderr chatter: trace-cache hit lines, per-job done
 * lines). Every message is rendered into one buffer and emitted
 * with a single fprintf, so concurrent worker warnings never
 * interleave mid-line. Formats by level:
 *
 *   error/warn  "warn: <msg> (<file>:<line>)"  — the historical
 *               prophet_warn format, kept verbatim;
 *   info/debug  "<msg>" verbatim — these wrap pre-existing raw
 *               fprintf lines (e.g. "trace-cache: hit ..."), whose
 *               exact text tests and CI greps rely on.
 */

#ifndef PROPHET_COMMON_LOG_HH
#define PROPHET_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>

namespace prophet
{

/** Severity levels, most severe first. */
enum class LogLevel
{
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
};

/** The process log level ($PROPHET_LOG, parsed once; default Info). */
LogLevel logLevel();

/** Would a message at @p level be emitted? */
inline bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <= static_cast<int>(logLevel());
}

/**
 * Emit one message at @p level (printf-style), dropped when the
 * level is filtered out. @p file/@p line appear only in error/warn
 * output; pass nullptr/0 where no location is meaningful.
 */
#if defined(__GNUC__)
__attribute__((format(printf, 4, 5)))
#endif
void
logfImpl(LogLevel level, const char *file, int line, const char *fmt,
         ...);

/**
 * Abort the process because an internal invariant was violated.
 * Use for conditions that indicate a simulator bug, never for bad
 * user input.
 */
[[noreturn]] inline void
panicImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg, file, line);
    std::abort();
}

/**
 * Exit cleanly because the simulation cannot continue due to a
 * user-caused condition (bad configuration, invalid arguments).
 */
[[noreturn]] inline void
fatalImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg, file, line);
    std::exit(1);
}

} // namespace prophet

#define prophet_panic(msg) ::prophet::panicImpl(__FILE__, __LINE__, (msg))
#define prophet_fatal(msg) ::prophet::fatalImpl(__FILE__, __LINE__, (msg))

/** Non-fatal warning (plain string — never interpreted as a format). */
#define prophet_warn(msg) \
    ::prophet::logfImpl(::prophet::LogLevel::Warn, __FILE__, \
                        __LINE__, "%s", (msg))

/** printf-style variants at each level. */
#define prophet_warnf(...) \
    ::prophet::logfImpl(::prophet::LogLevel::Warn, __FILE__, \
                        __LINE__, __VA_ARGS__)
#define prophet_errorf(...) \
    ::prophet::logfImpl(::prophet::LogLevel::Error, __FILE__, \
                        __LINE__, __VA_ARGS__)
#define prophet_infof(...) \
    ::prophet::logfImpl(::prophet::LogLevel::Info, nullptr, 0, \
                        __VA_ARGS__)
#define prophet_debugf(...) \
    ::prophet::logfImpl(::prophet::LogLevel::Debug, nullptr, 0, \
                        __VA_ARGS__)

/** gem5-style checked assertion that survives NDEBUG builds. */
#define prophet_assert(cond) \
    do { \
        if (!(cond)) \
            ::prophet::panicImpl(__FILE__, __LINE__, \
                                 "assertion failed: " #cond); \
    } while (0)

#endif // PROPHET_COMMON_LOG_HH
