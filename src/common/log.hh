/**
 * @file
 * Minimal gem5-style diagnostics: panic() for internal invariant
 * violations, fatal() for user/configuration errors, warn() for
 * recoverable oddities.
 */

#ifndef PROPHET_COMMON_LOG_HH
#define PROPHET_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>

namespace prophet
{

/**
 * Abort the process because an internal invariant was violated.
 * Use for conditions that indicate a simulator bug, never for bad
 * user input.
 */
[[noreturn]] inline void
panicImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg, file, line);
    std::abort();
}

/**
 * Exit cleanly because the simulation cannot continue due to a
 * user-caused condition (bad configuration, invalid arguments).
 */
[[noreturn]] inline void
fatalImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg, file, line);
    std::exit(1);
}

/** Print a non-fatal warning to stderr. */
inline void
warnImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg, file, line);
}

} // namespace prophet

#define prophet_panic(msg) ::prophet::panicImpl(__FILE__, __LINE__, (msg))
#define prophet_fatal(msg) ::prophet::fatalImpl(__FILE__, __LINE__, (msg))
#define prophet_warn(msg) ::prophet::warnImpl(__FILE__, __LINE__, (msg))

/** gem5-style checked assertion that survives NDEBUG builds. */
#define prophet_assert(cond) \
    do { \
        if (!(cond)) \
            ::prophet::panicImpl(__FILE__, __LINE__, \
                                 "assertion failed: " #cond); \
    } while (0)

#endif // PROPHET_COMMON_LOG_HH
