/**
 * @file
 * Deterministic pseudo-random number generation for workload
 * synthesis. Every workload trace must be exactly reproducible from a
 * seed, so we use a self-contained xorshift64* generator rather than
 * std::mt19937 (whose distributions are not guaranteed identical
 * across standard library implementations).
 */

#ifndef PROPHET_COMMON_RNG_HH
#define PROPHET_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace prophet
{

/**
 * xorshift64* pseudo-random generator. Deterministic across
 * platforms, cheap, and of sufficient quality for workload shuffles
 * and phase scheduling.
 */
class Rng
{
  public:
    /** Construct with a non-zero seed (zero is remapped internally). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state(seed ? seed : 0x9e3779b97f4a7c15ULL)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dULL;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Fisher-Yates shuffle of a vector, in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(below(i));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t state;
};

} // namespace prophet

#endif // PROPHET_COMMON_RNG_HH
