/**
 * @file
 * Cooperative cancellation: a shared flag long-running work polls at
 * coarse intervals. The sweep driver's fail-fast policy sets it when
 * the first job fails, so multi-minute simulations already in flight
 * unwind within a bounded number of records instead of running to
 * completion for a result nobody will read.
 *
 * Polling has no side effects on simulation state, so a run with a
 * token attached but never cancelled is bit-identical to a run
 * without one (regression-gated in tests/test_system.cc).
 */

#ifndef PROPHET_COMMON_CANCELLATION_HH
#define PROPHET_COMMON_CANCELLATION_HH

#include <atomic>

namespace prophet
{

/**
 * A one-way cancel flag. cancel() may be called from any thread,
 * any number of times; observers poll cancelled(). There is no
 * un-cancel: one token serves one logical run.
 */
class CancellationToken
{
  public:
    void
    cancel() noexcept
    {
        flag.store(true, std::memory_order_relaxed);
    }

    bool
    cancelled() const noexcept
    {
        return flag.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> flag{false};
};

} // namespace prophet

#endif // PROPHET_COMMON_CANCELLATION_HH
