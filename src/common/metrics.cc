#include "common/metrics.hh"

#include "common/log.hh"

namespace prophet::metrics
{

std::size_t
Histogram::bucketOf(std::uint64_t sample)
{
    if (sample == 0)
        return 0;
    // Bucket i covers [2^(i-1), 2^i): 1 -> bucket 1, 2..3 -> 2,
    // 4..7 -> 3, ... The top bucket absorbs the rest.
    std::size_t b = 64 - static_cast<std::size_t>(
                             __builtin_clzll(sample));
    return b < kBuckets ? b : kBuckets - 1;
}

std::uint64_t
Histogram::bucketLowerBound(std::size_t i)
{
    if (i == 0)
        return 0;
    return std::uint64_t{1} << (i - 1);
}

void
Histogram::record(std::uint64_t sample)
{
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
    buckets[bucketOf(sample)].fetch_add(1,
                                        std::memory_order_relaxed);

    // min/max via CAS loops: contention is negligible at phase
    // granularity, and a lock here would invert the "instruments are
    // plain atomics" promise.
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (sample < cur
           && !min_.compare_exchange_weak(cur, sample,
                                          std::memory_order_relaxed))
        ;
    cur = max_.load(std::memory_order_relaxed);
    while (sample > cur
           && !max_.compare_exchange_weak(cur, sample,
                                          std::memory_order_relaxed))
        ;
}

std::uint64_t
Histogram::min() const
{
    std::uint64_t v = min_.load(std::memory_order_relaxed);
    return v == ~std::uint64_t{0} ? 0 : v;
}

void
Histogram::reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    for (auto &b : buckets)
        b.store(0, std::memory_order_relaxed);
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot s;
    s.count = count();
    s.sum = sum();
    s.min = min();
    s.max = max();
    s.buckets.reserve(kBuckets);
    for (std::size_t i = 0; i < kBuckets; ++i)
        s.buckets.push_back(bucket(i));
    return s;
}

Registry &
Registry::instance()
{
    // Leaked intentionally: instruments are bumped from worker
    // threads that may outlive main()'s static destructors.
    static Registry *reg = new Registry();
    return *reg;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    if (gauges.count(name) || histograms.count(name))
        prophet_panic("metric name registered as a different kind");
    auto it = counters.find(name);
    if (it == counters.end())
        it = counters.emplace(name, std::make_unique<Counter>())
                 .first;
    return *it->second;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    if (counters.count(name) || histograms.count(name))
        prophet_panic("metric name registered as a different kind");
    auto it = gauges.find(name);
    if (it == gauges.end())
        it = gauges.emplace(name, std::make_unique<Gauge>()).first;
    return *it->second;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu);
    if (counters.count(name) || gauges.count(name))
        prophet_panic("metric name registered as a different kind");
    auto it = histograms.find(name);
    if (it == histograms.end())
        it = histograms.emplace(name, std::make_unique<Histogram>())
                 .first;
    return *it->second;
}

RegistrySnapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    RegistrySnapshot s;
    s.counters.reserve(counters.size());
    for (const auto &[name, c] : counters)
        s.counters.push_back({name, c->value()});
    s.gauges.reserve(gauges.size());
    for (const auto &[name, g] : gauges)
        s.gauges.push_back({name, g->value()});
    s.histograms.reserve(histograms.size());
    for (const auto &[name, h] : histograms)
        s.histograms.push_back({name, h->snapshot()});
    return s;
}

void
Registry::resetValues()
{
    std::lock_guard<std::mutex> lock(mu);
    for (auto &[name, c] : counters)
        c->reset();
    for (auto &[name, g] : gauges)
        g->reset();
    for (auto &[name, h] : histograms)
        h->reset();
}

} // namespace prophet::metrics
