/**
 * @file
 * Interfaces between workloads and the rest of the system: trace
 * generation and the indirect-access resolver RPG2-style software
 * prefetching needs.
 */

#ifndef PROPHET_TRACE_GENERATOR_HH
#define PROPHET_TRACE_GENERATOR_HH

#include <memory>
#include <optional>
#include <string>

#include "trace/trace.hh"

namespace prophet::trace
{

/**
 * Resolves the target of a stride-indexed indirect access, emulating
 * the address computation an inserted software-prefetch sequence
 * would perform (load b[i+d], then compute &a[b[i+d]]).
 *
 * Only workloads whose prefetch kernels follow stride patterns (the
 * subset RPG2 supports, Section 2.2 of the paper) provide a resolver;
 * pointer-chasing and complex-kernel workloads return std::nullopt,
 * which is exactly why RPG2 is ineffective on them.
 */
class IndirectResolver
{
  public:
    virtual ~IndirectResolver() = default;

    /**
     * Given the PC of an indirect load and the byte address of its
     * *kernel* access (e.g. &b[i]), return the byte address the
     * indirect access would touch if the kernel were advanced by
     * @p distance iterations (i.e. &a[b[i + distance]]), or
     * std::nullopt if this PC is not a supported kernel.
     */
    virtual std::optional<Addr>
    resolve(PC pc, Addr kernel_addr, std::int64_t distance) const = 0;
};

/**
 * A workload: produces a deterministic trace and, optionally, an
 * indirect resolver for RPG2. The @c input label distinguishes
 * multiple inputs of one application (gcc_166 vs gcc_expr, ...),
 * which drives Prophet's learning evaluation.
 */
class TraceGenerator
{
  public:
    virtual ~TraceGenerator() = default;

    /** Workload name as used in the paper's figures. */
    virtual std::string name() const = 0;

    /** Generate the full access trace. Deterministic per instance. */
    virtual Trace generate() = 0;

    /**
     * Resolver for software indirect prefetching; nullptr when the
     * workload has no RPG2-supported kernels.
     */
    virtual const IndirectResolver *resolver() const { return nullptr; }
};

using GeneratorPtr = std::unique_ptr<TraceGenerator>;

} // namespace prophet::trace

#endif // PROPHET_TRACE_GENERATOR_HH
