/**
 * @file
 * Trace serialization: a compact binary format so traces can be
 * generated once, archived, and replayed (the SimPoint-checkpoint
 * workflow's moral equivalent), plus a human-readable text form for
 * debugging and interop with external tools.
 *
 * Binary format v3 mirrors the in-memory SoA layout and adds
 * per-array integrity: after the header, one FNV-1a 64 checksum per
 * array, then the pc, addr, and packed-meta arrays written whole —
 * three bulk fwrite calls instead of one per record. Loads read the
 * arrays back the same way and verify every checksum, so a
 * bit-flipped or torn entry is detected deterministically instead of
 * only when the header happens to be implausible. v2 (same layout,
 * no checksums) and v1 (packed array-of-structs records) files
 * remain loadable; loadBinary reports which version it read so the
 * trace cache can transparently repair old entries.
 *
 * | v3 layout | bytes        | content                              |
 * |-----------|--------------|--------------------------------------|
 * | magic     | 4            | "PTRC"                               |
 * | version   | 4            | 3 (little-endian u32)                |
 * | count     | 8            | record count N (u64)                 |
 * | cksum[3]  | 8 x 3        | FNV-1a 64 of pc[], addr[], meta[]    |
 * | pc[]      | 8 x N        | PC per record                        |
 * | addr[]    | 8 x N        | byte address per record              |
 * | meta[]    | 4 x N        | instGap (bits 0-15), depends (16),   |
 * |           |              | write (17); other bits zero          |
 *
 * Fault points (common/fault_injection.hh): "trace_io.fread" fails a
 * payload read, "trace_io.fwrite" fails a payload write (the
 * simulated-ENOSPC path) — both exercised by the recovery tests.
 */

#ifndef PROPHET_TRACE_TRACE_IO_HH
#define PROPHET_TRACE_TRACE_IO_HH

#include <cstdint>
#include <string>

#include "trace/trace.hh"

namespace prophet::trace
{

/** Binary-format versions loadBinary understands. */
constexpr std::uint32_t kTraceFormatV1 = 1;
constexpr std::uint32_t kTraceFormatV2 = 2;
constexpr std::uint32_t kTraceFormatV3 = 3;

/** Why a binary load failed (or that it didn't). */
enum class LoadStatus
{
    Ok = 0,
    OpenFail,         ///< file missing or unreadable — not corruption
    BadHeader,        ///< magic/version/count implausible
    Truncated,        ///< payload shorter than the header promises
    ReadFail,         ///< a read failed mid-payload (I/O error)
    ChecksumMismatch, ///< v3 array checksum did not verify
};

/** Human-readable name of a LoadStatus ("checksum-mismatch", ...). */
const char *loadStatusName(LoadStatus status);

/** Everything a binary load can report beyond success. */
struct LoadReport
{
    LoadStatus status = LoadStatus::OpenFail;
    std::uint32_t version = 0; ///< format version (0 = unknown)
    /** Byte offset of the failing structure (kNoOffset = n/a). */
    std::uint64_t offset = ~std::uint64_t{0};

    bool ok() const { return status == LoadStatus::Ok; }

    /**
     * The file exists but its contents are damaged — the states the
     * trace cache quarantines rather than silently regenerates over.
     */
    bool
    corrupt() const
    {
        return status == LoadStatus::BadHeader
            || status == LoadStatus::Truncated
            || status == LoadStatus::ChecksumMismatch;
    }
};

/**
 * Write a trace in the current (v3, checksummed) binary format.
 * Returns false on I/O failure.
 */
bool saveBinary(const Trace &t, const std::string &path);

/**
 * Write a trace in the legacy v2 format (bulk SoA arrays, no
 * checksums). Kept so backward-compatibility tests can fabricate
 * old cache entries.
 */
bool saveBinaryV2(const Trace &t, const std::string &path);

/**
 * Write a trace in the legacy v1 format (packed 24-byte records).
 * Kept so backward-compatibility tests can fabricate old files; the
 * struct's tail padding is explicitly zeroed, so output is
 * deterministic byte-for-byte.
 */
bool saveBinaryV1(const Trace &t, const std::string &path);

/**
 * Read a binary trace written by any of the savers above. Returns
 * an empty trace and false on failure or format mismatch. When
 * @p version_out is non-null and the load succeeds, it receives the
 * format version the file used.
 */
bool loadBinary(Trace &out, const std::string &path,
                std::uint32_t *version_out = nullptr);

/**
 * As loadBinary, but reports *why* a load failed: the trace cache
 * uses the distinction between "file absent" (a plain miss) and
 * "file damaged" (quarantine the entry) to pick its recovery path.
 */
bool loadBinary(Trace &out, const std::string &path,
                LoadReport &report);

/**
 * Write a text form: one record per line,
 * "pc addr inst_gap depends is_write" in hex/dec.
 */
bool saveText(const Trace &t, const std::string &path);

/** Read the text form. */
bool loadText(Trace &out, const std::string &path);

} // namespace prophet::trace

#endif // PROPHET_TRACE_TRACE_IO_HH
