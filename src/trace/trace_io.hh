/**
 * @file
 * Trace serialization: a compact binary format so traces can be
 * generated once, archived, and replayed (the SimPoint-checkpoint
 * workflow's moral equivalent), plus a human-readable text form for
 * debugging and interop with external tools.
 */

#ifndef PROPHET_TRACE_TRACE_IO_HH
#define PROPHET_TRACE_TRACE_IO_HH

#include <string>

#include "trace/trace.hh"

namespace prophet::trace
{

/**
 * Write a trace in the binary format (magic "PTRC", version, record
 * count, packed records). Returns false on I/O failure.
 */
bool saveBinary(const Trace &t, const std::string &path);

/**
 * Read a binary trace written by saveBinary. Returns an empty trace
 * and false on failure or format mismatch.
 */
bool loadBinary(Trace &out, const std::string &path);

/**
 * Write a text form: one record per line,
 * "pc addr inst_gap depends is_write" in hex/dec.
 */
bool saveText(const Trace &t, const std::string &path);

/** Read the text form. */
bool loadText(Trace &out, const std::string &path);

} // namespace prophet::trace

#endif // PROPHET_TRACE_TRACE_IO_HH
