/**
 * @file
 * Trace serialization: a compact binary format so traces can be
 * generated once, archived, and replayed (the SimPoint-checkpoint
 * workflow's moral equivalent), plus a human-readable text form for
 * debugging and interop with external tools.
 *
 * Binary format v2 mirrors the in-memory SoA layout: after the
 * header, the pc, addr, and packed-meta arrays are written whole —
 * three bulk fwrite calls instead of one per record — and loads read
 * them back the same way. v1 files (packed array-of-structs records)
 * remain loadable; loadBinary reports which version it read so the
 * trace cache can transparently repair old entries.
 *
 * | v2 layout | bytes        | content                              |
 * |-----------|--------------|--------------------------------------|
 * | magic     | 4            | "PTRC"                               |
 * | version   | 4            | 2 (little-endian u32)                |
 * | count     | 8            | record count N (u64)                 |
 * | pc[]      | 8 x N        | PC per record                        |
 * | addr[]    | 8 x N        | byte address per record              |
 * | meta[]    | 4 x N        | instGap (bits 0-15), depends (16),   |
 * |           |              | write (17); other bits zero          |
 */

#ifndef PROPHET_TRACE_TRACE_IO_HH
#define PROPHET_TRACE_TRACE_IO_HH

#include <cstdint>
#include <string>

#include "trace/trace.hh"

namespace prophet::trace
{

/** Binary-format versions loadBinary understands. */
constexpr std::uint32_t kTraceFormatV1 = 1;
constexpr std::uint32_t kTraceFormatV2 = 2;

/**
 * Write a trace in the current (v2) binary format: header followed
 * by bulk writes of the SoA arrays. Returns false on I/O failure.
 */
bool saveBinary(const Trace &t, const std::string &path);

/**
 * Write a trace in the legacy v1 format (packed 24-byte records).
 * Kept so backward-compatibility tests can fabricate old files; the
 * struct's tail padding is explicitly zeroed, so output is
 * deterministic byte-for-byte.
 */
bool saveBinaryV1(const Trace &t, const std::string &path);

/**
 * Read a binary trace written by saveBinary (v2) or saveBinaryV1
 * (v1). Returns an empty trace and false on failure or format
 * mismatch. When @p version_out is non-null and the load succeeds,
 * it receives the format version the file used.
 */
bool loadBinary(Trace &out, const std::string &path,
                std::uint32_t *version_out = nullptr);

/**
 * Write a text form: one record per line,
 * "pc addr inst_gap depends is_write" in hex/dec.
 */
bool saveText(const Trace &t, const std::string &path);

/** Read the text form. */
bool loadText(Trace &out, const std::string &path);

} // namespace prophet::trace

#endif // PROPHET_TRACE_TRACE_IO_HH
