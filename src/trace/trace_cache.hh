/**
 * @file
 * On-disk trace cache: workload traces are deterministic per
 * (workload, record-override), so once generated they can be stored
 * in the trace_io binary format and reloaded by later invocations,
 * skipping regeneration entirely. The Runner consults a cache when
 * one is attached; the `prophet trace-cache` CLI subcommands manage
 * the directory.
 *
 * Robustness:
 *  - stores write to a temp file and rename into place, so a crashed
 *    writer never leaves a half-written entry under the final name;
 *  - an flock(2)-based lock file (".lock") serializes writers across
 *    processes sharing the directory (advisory, auto-released on
 *    process death — no stale-lock recovery needed);
 *  - entries are stored in the checksummed v3 format and verified on
 *    load; a damaged entry (bad header, truncation, checksum
 *    mismatch) is *quarantined* — renamed to "<entry>.corrupt" — so
 *    the evidence survives for inspection while the caller
 *    regenerates a good entry under the original name;
 *  - checksum-failure, quarantine, lock-contention, and
 *    store-failure counters persist in "cache-counters.txt", so
 *    `prophet trace-cache stats` reports them across processes.
 */

#ifndef PROPHET_TRACE_TRACE_CACHE_HH
#define PROPHET_TRACE_TRACE_CACHE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace prophet::trace
{

/**
 * Generation schema version, part of every cache key. BUMP THIS
 * whenever any workload generator's output changes (new streams,
 * parameter tweaks, seed changes, record-layout semantics): stale
 * entries under the old version then miss instead of silently
 * serving pre-change traces as if they were current.
 */
constexpr unsigned kGeneratorSchemaVersion = 1;

/** A file-backed cache of generated traces, one .ptrc per key. */
class TraceCache
{
  public:
    /** Hit/miss/store counters (per TraceCache instance). */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t stores = 0;

        /** Legacy (v1/v2) entries rewritten as v3 on load. */
        std::uint64_t upgrades = 0;

        /** Entries whose v3 array checksum failed verification. */
        std::uint64_t checksumFailures = 0;

        /** Damaged entries renamed to "<entry>.corrupt". */
        std::uint64_t quarantines = 0;

        /** Times the writer lock was held by someone else. */
        std::uint64_t lockContention = 0;

        /** Failed stores (I/O error, ENOSPC, injected faults). */
        std::uint64_t storeFailures = 0;
    };

    /**
     * The durable counter subset, accumulated across processes in
     * "cache-counters.txt" (best-effort: a read-only directory
     * simply stops accumulating).
     */
    struct PersistentCounters
    {
        std::uint64_t checksumFailures = 0;
        std::uint64_t quarantines = 0;
        std::uint64_t lockContention = 0;
        std::uint64_t storeFailures = 0;
    };

    /** One cached file, for `trace-cache stats`. */
    struct Entry
    {
        std::string file;       ///< file name within the cache dir
        std::uint64_t bytes = 0;

        /** Binary-format version from the file header (0: unreadable). */
        std::uint32_t version = 0;
    };

    /**
     * @param dir Cache directory; created on first store. Empty
     *        selects defaultDir().
     */
    explicit TraceCache(std::string dir = "");

    /** $PROPHET_TRACE_CACHE when set, else ".prophet-trace-cache". */
    static std::string defaultDir();

    /** The cache directory. */
    const std::string &dir() const { return dirPath; }

    /**
     * Cache file for a (workload, records-override,
     * kGeneratorSchemaVersion) key. The override is part of the key
     * verbatim: 0 means "workload default length" and is itself a
     * distinct, deterministic key.
     */
    std::string path(const std::string &workload,
                     std::size_t records) const;

    /**
     * Load a cached trace. Returns false (and leaves @p out empty)
     * on miss or on a damaged file; never throws. A damaged entry is
     * quarantined (renamed to "<entry>.corrupt") so the next run
     * regenerates it while the bad bytes stay inspectable. A hit is
     * logged to stderr so cache effectiveness is observable without
     * changing stdout. A hit on a legacy v1/v2 entry is
     * transparently repaired: the loaded trace is re-stored in the
     * current checksummed (v3) format, so old cache directories
     * upgrade in place.
     */
    bool load(const std::string &workload, std::size_t records,
              Trace &out);

    /**
     * Store a trace atomically (temp file + rename) while holding
     * the cross-process writer lock. Fault point "cache.store"
     * simulates an out-of-space store; a failed store never leaves a
     * partial entry under the final name.
     */
    bool store(const std::string &workload, std::size_t records,
               const Trace &t);

    /** Delete every cached trace; returns the number removed. */
    std::size_t clear();

    /** The cached files, sorted by name. */
    std::vector<Entry> entries() const;

    /** Quarantined "<entry>.corrupt" files, sorted by name. */
    std::vector<Entry> quarantined() const;

    /** Counter snapshot (this instance). */
    Stats stats() const;

    /** The durable counters accumulated in the cache directory. */
    PersistentCounters persistentCounters() const;

  private:
    std::string dirPath;
    mutable std::mutex mu;
    Stats counters;

    void quarantineEntry(const std::string &file, bool checksum);
    void bumpPersistent(std::uint64_t PersistentCounters::*field,
                        std::uint64_t delta = 1);
};

} // namespace prophet::trace

#endif // PROPHET_TRACE_TRACE_CACHE_HH
