/**
 * @file
 * The unit of the trace-driven simulation: one retired memory
 * instruction with enough microarchitectural context for the timing
 * model (instruction gap since the previous memory access, and whether
 * the address depends on the previous load's value).
 */

#ifndef PROPHET_TRACE_RECORD_HH
#define PROPHET_TRACE_RECORD_HH

#include <cstdint>

#include "common/types.hh"

namespace prophet::trace
{

/**
 * One memory access in a workload trace.
 *
 * @c dependsOnPrev models pointer chasing: when set, this access's
 * address was computed from the previous load's data, so its issue
 * cannot overlap with that load's miss. Independent accesses may
 * overlap within the core's ROB window (memory-level parallelism).
 */
struct TraceRecord
{
    /** PC of the memory instruction. */
    PC pc = kInvalidPC;

    /** Byte address accessed. */
    Addr addr = kInvalidAddr;

    /** Non-memory instructions retired since the previous record. */
    std::uint16_t instGap = 1;

    /** Address depends on the previous load's value. */
    bool dependsOnPrev = false;

    /** Store (writeback-generating) access rather than a load. */
    bool isWrite = false;
};

} // namespace prophet::trace

#endif // PROPHET_TRACE_RECORD_HH
