#include "trace/trace_cache.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <unistd.h>

#include "trace/trace_io.hh"

namespace fs = std::filesystem;

namespace prophet::trace
{

namespace
{

/**
 * Workload labels become file names; anything outside the portable
 * set maps to '_' ("soplex_pds-50" is fine as-is).
 */
std::string
sanitize(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
            || (c >= '0' && c <= '9') || c == '_' || c == '-'
            || c == '.';
        if (!ok)
            c = '_';
    }
    return out;
}

/** Binary-format version from a .ptrc header (0 when unreadable). */
std::uint32_t
fileVersion(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return 0;
    char magic[4];
    std::uint32_t version = 0;
    bool ok = std::fread(magic, 1, 4, f) == 4
        && std::memcmp(magic, "PTRC", 4) == 0
        && std::fread(&version, sizeof(version), 1, f) == 1;
    std::fclose(f);
    return ok ? version : 0;
}

} // anonymous namespace

TraceCache::TraceCache(std::string dir)
    : dirPath(dir.empty() ? defaultDir() : std::move(dir))
{}

std::string
TraceCache::defaultDir()
{
    if (const char *env = std::getenv("PROPHET_TRACE_CACHE"))
        if (*env)
            return env;
    return ".prophet-trace-cache";
}

std::string
TraceCache::path(const std::string &workload,
                 std::size_t records) const
{
    return dirPath + "/" + sanitize(workload) + "-r"
        + std::to_string(records) + ".g"
        + std::to_string(kGeneratorSchemaVersion) + ".ptrc";
}

bool
TraceCache::load(const std::string &workload, std::size_t records,
                 Trace &out)
{
    std::string file = path(workload, records);
    std::error_code ec;
    if (!fs::exists(file, ec)) {
        std::lock_guard<std::mutex> lock(mu);
        ++counters.misses;
        return false;
    }
    std::uint32_t version = 0;
    if (!loadBinary(out, file, &version)) {
        // Corrupt or truncated entry: treat as a miss; the caller
        // regenerates and store() replaces the bad file.
        std::fprintf(stderr,
                     "trace-cache: corrupt entry %s, regenerating\n",
                     file.c_str());
        std::lock_guard<std::mutex> lock(mu);
        ++counters.misses;
        return false;
    }
    if (version < kTraceFormatV2) {
        // Legacy entry: repair in place so the next load takes the
        // bulk path. A failed rewrite is harmless — the v1 file
        // stays behind and keeps serving hits.
        if (store(workload, records, out)) {
            std::fprintf(stderr,
                         "trace-cache: upgraded %s v%u -> v%u\n",
                         file.c_str(), version, kTraceFormatV2);
            std::lock_guard<std::mutex> lock(mu);
            ++counters.upgrades;
            --counters.stores; // the rewrite is not a caller store
        }
    }
    std::fprintf(stderr, "trace-cache: hit %s (%zu records) <- %s\n",
                 workload.c_str(), out.size(), file.c_str());
    std::lock_guard<std::mutex> lock(mu);
    ++counters.hits;
    return true;
}

bool
TraceCache::store(const std::string &workload, std::size_t records,
                  const Trace &t)
{
    std::error_code ec;
    fs::create_directories(dirPath, ec);
    if (ec)
        return false;
    std::string final_path = path(workload, records);
    // Unique temp name per store: the pid separates processes
    // sharing a cache directory (which the README allows) and the
    // counter separates concurrent stores within this process, so
    // two writers can never interleave into one temp file; rename
    // is atomic within the directory.
    static std::atomic<unsigned long> storeSeq{0};
    std::string tmp = final_path + ".tmp"
        + std::to_string(static_cast<unsigned long>(::getpid())) + "."
        + std::to_string(storeSeq.fetch_add(1));
    if (!saveBinary(t, tmp)) {
        fs::remove(tmp, ec);
        return false;
    }
    fs::rename(tmp, final_path, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return false;
    }
    std::lock_guard<std::mutex> lock(mu);
    ++counters.stores;
    return true;
}

std::size_t
TraceCache::clear()
{
    std::size_t removed = 0;
    std::error_code ec;
    if (!fs::is_directory(dirPath, ec))
        return 0;
    for (const auto &de : fs::directory_iterator(dirPath, ec)) {
        // Also sweep ".ptrc.tmp<pid>.<tid>" leftovers from crashed
        // writers; only completed entries count toward the total.
        std::string name = de.path().filename().string();
        if (name.find(".ptrc") == std::string::npos)
            continue;
        bool completed = de.path().extension() == ".ptrc";
        if (fs::remove(de.path(), ec) && completed)
            ++removed;
    }
    return removed;
}

std::vector<TraceCache::Entry>
TraceCache::entries() const
{
    std::vector<Entry> out;
    std::error_code ec;
    if (!fs::is_directory(dirPath, ec))
        return out;
    for (const auto &de : fs::directory_iterator(dirPath, ec)) {
        if (de.path().extension() != ".ptrc")
            continue;
        Entry e;
        e.file = de.path().filename().string();
        e.bytes = static_cast<std::uint64_t>(
            fs::file_size(de.path(), ec));
        e.version = fileVersion(de.path().string());
        out.push_back(std::move(e));
    }
    std::sort(out.begin(), out.end(),
              [](const Entry &a, const Entry &b) {
                  return a.file < b.file;
              });
    return out;
}

TraceCache::Stats
TraceCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return counters;
}

} // namespace prophet::trace
